#include "util/log.hpp"

#include <cctype>
#include <cstdlib>
#include <iostream>

namespace vrmr {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {

bool parse_level(const char* text, LogLevel* out) {
  if (text == nullptr || *text == '\0') return false;
  std::string lower;
  for (const char* p = text; *p; ++p) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (lower.size() == 1 && lower[0] >= '0' && lower[0] <= '5') {
    *out = static_cast<LogLevel>(lower[0] - '0');
    return true;
  }
  if (lower == "trace") { *out = LogLevel::Trace; return true; }
  if (lower == "debug") { *out = LogLevel::Debug; return true; }
  if (lower == "info") { *out = LogLevel::Info; return true; }
  if (lower == "warn" || lower == "warning") { *out = LogLevel::Warn; return true; }
  if (lower == "error") { *out = LogLevel::Error; return true; }
  if (lower == "off" || lower == "none") { *out = LogLevel::Off; return true; }
  return false;
}

}  // namespace

Logger::Logger() {
  LogLevel level = LogLevel::Warn;
  if (parse_level(std::getenv("VRMR_LOG_LEVEL"), &level)) level_ = level;
}

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}

}  // namespace

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  if (!enabled(level)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostream& os = level >= LogLevel::Warn ? std::cerr : std::clog;
  os << "[" << level_name(level) << "] [" << component << "] " << message << "\n";
}

}  // namespace vrmr
