#include "util/log.hpp"

#include <iostream>

namespace vrmr {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}

}  // namespace

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  if (!enabled(level)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostream& os = level >= LogLevel::Warn ? std::cerr : std::clog;
  os << "[" << level_name(level) << "] [" << component << "] " << message << "\n";
}

}  // namespace vrmr
