#pragma once

// Aligned text tables + CSV output for the benchmark harness. Every
// figure-reproduction bench prints one of these, matching the rows /
// series of the paper's plots.

#include <string>
#include <vector>

namespace vrmr {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with fixed precision.
  static std::string num(double v, int precision = 3);

  std::string to_string() const;
  std::string to_csv() const;

  size_t rows() const { return rows_.size(); }
  size_t columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vrmr
