#pragma once

// Axis-aligned bounding box and ray/box intersection (slab method).
// The ray caster intersects every ray against the brick's box and
// immediately discards non-intersecting rays, as in the paper (§3.2).

#include <algorithm>
#include <limits>

#include "util/vec.hpp"

namespace vrmr {

/// A ray with precomputed inverse direction for slab tests.
struct Ray {
  Vec3 origin;
  Vec3 dir;  // need not be normalized; t is in units of |dir|

  Vec3 at(float t) const { return origin + dir * t; }
};

struct Aabb {
  Vec3 lo{std::numeric_limits<float>::max(), std::numeric_limits<float>::max(),
          std::numeric_limits<float>::max()};
  Vec3 hi{std::numeric_limits<float>::lowest(), std::numeric_limits<float>::lowest(),
          std::numeric_limits<float>::lowest()};

  constexpr Aabb() = default;
  constexpr Aabb(Vec3 l, Vec3 h) : lo(l), hi(h) {}

  constexpr bool empty() const { return lo.x > hi.x || lo.y > hi.y || lo.z > hi.z; }
  constexpr Vec3 extent() const { return hi - lo; }
  constexpr Vec3 center() const { return (lo + hi) * 0.5f; }

  void expand(Vec3 p) {
    lo = min(lo, p);
    hi = max(hi, p);
  }
  void expand(const Aabb& b) {
    lo = min(lo, b.lo);
    hi = max(hi, b.hi);
  }

  constexpr bool contains(Vec3 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y && p.z >= lo.z &&
           p.z <= hi.z;
  }

  constexpr bool overlaps(const Aabb& b) const {
    return lo.x <= b.hi.x && hi.x >= b.lo.x && lo.y <= b.hi.y && hi.y >= b.lo.y &&
           lo.z <= b.hi.z && hi.z >= b.lo.z;
  }

  /// Slab-method intersection. On hit, [t_enter, t_exit] is the
  /// parametric overlap of the ray with the box, clipped to
  /// [t_min, t_max]. Returns false when the ray misses entirely.
  bool intersect(const Ray& ray, float t_min, float t_max, float* t_enter,
                 float* t_exit) const {
    float t0 = t_min;
    float t1 = t_max;
    for (int axis = 0; axis < 3; ++axis) {
      const float o = ray.origin[axis];
      const float d = ray.dir[axis];
      if (d == 0.0f) {
        // Parallel ray: miss if origin outside the slab.
        if (o < lo[axis] || o > hi[axis]) return false;
        continue;
      }
      const float inv = 1.0f / d;
      float tn = (lo[axis] - o) * inv;
      float tf = (hi[axis] - o) * inv;
      if (tn > tf) std::swap(tn, tf);
      t0 = std::max(t0, tn);
      t1 = std::min(t1, tf);
      if (t0 > t1) return false;
    }
    if (t_enter) *t_enter = t0;
    if (t_exit) *t_exit = t1;
    return true;
  }
};

}  // namespace vrmr
