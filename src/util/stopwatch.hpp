#pragma once

// Wall-clock stopwatch. Used only for host-side measurement (benchmark
// harness overhead reporting); all *reported experiment times* come from
// the simulated clock in vrmr::sim.

#include <chrono>

namespace vrmr {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace vrmr
