#pragma once

// Minimal leveled, thread-safe logger. Quiet by default (Warn) so tests
// and benches stay readable; examples raise the level explicitly, and
// the VRMR_LOG_LEVEL environment variable (trace|debug|info|warn|error|
// off, or 0-5) overrides the default at startup.

#include <mutex>
#include <sstream>
#include <string>

namespace vrmr {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, const std::string& component, const std::string& message);

 private:
  Logger();  // reads VRMR_LOG_LEVEL
  LogLevel level_ = LogLevel::Warn;
  std::mutex mutex_;
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* component) : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().write(level_, component_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace vrmr

#define VRMR_LOG(level, component)                          \
  if (!::vrmr::Logger::instance().enabled(level)) {         \
  } else                                                    \
    ::vrmr::detail::LogLine(level, component)

#define VRMR_TRACE(component) VRMR_LOG(::vrmr::LogLevel::Trace, component)
#define VRMR_DEBUG(component) VRMR_LOG(::vrmr::LogLevel::Debug, component)
#define VRMR_INFO(component) VRMR_LOG(::vrmr::LogLevel::Info, component)
#define VRMR_WARN(component) VRMR_LOG(::vrmr::LogLevel::Warn, component)
#define VRMR_ERROR(component) VRMR_LOG(::vrmr::LogLevel::Error, component)
