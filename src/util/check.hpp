#pragma once

// Runtime checking macros.
//
// VRMR_CHECK       - always-on invariant check; throws vrmr::CheckError.
// VRMR_CHECK_MSG   - same, with a user-supplied explanatory message.
// VRMR_DCHECK      - debug-only check (compiled out in NDEBUG builds).
//
// The library throws rather than aborts so that tests can assert on
// misuse (e.g. the MapReduce restrictions of paper section 3.1.1) and so
// that example programs can print actionable diagnostics.

#include <sstream>
#include <stdexcept>
#include <string>

namespace vrmr {

/// Error thrown when a VRMR_CHECK fails. Carries the failed expression,
/// source location and optional message.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace vrmr

#define VRMR_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::vrmr::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                 \
  } while (false)

#define VRMR_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream vrmr_check_os_;                              \
      vrmr_check_os_ << msg;                                          \
      ::vrmr::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                   vrmr_check_os_.str());             \
    }                                                                 \
  } while (false)

#ifdef NDEBUG
#define VRMR_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define VRMR_DCHECK(expr) VRMR_CHECK(expr)
#endif
