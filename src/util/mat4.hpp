#pragma once

// 4x4 matrix used for camera transforms (view, projection, inverses).
// Row-major storage; vectors are treated as columns (m * v).

#include <array>
#include <cmath>
#include <ostream>

#include "util/check.hpp"
#include "util/vec.hpp"

namespace vrmr {

struct Mat4 {
  // m[row][col], row-major.
  std::array<std::array<float, 4>, 4> m{};

  constexpr Mat4() = default;

  static constexpr Mat4 identity() {
    Mat4 r;
    for (int i = 0; i < 4; ++i) r.m[i][i] = 1.0f;
    return r;
  }

  static constexpr Mat4 zero() { return Mat4{}; }

  float& at(int r, int c) { return m[r][c]; }
  constexpr float at(int r, int c) const { return m[r][c]; }

  friend Mat4 operator*(const Mat4& a, const Mat4& b) {
    Mat4 r;
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        float s = 0.0f;
        for (int k = 0; k < 4; ++k) s += a.m[i][k] * b.m[k][j];
        r.m[i][j] = s;
      }
    }
    return r;
  }

  friend constexpr bool operator==(const Mat4& a, const Mat4& b) { return a.m == b.m; }

  /// Transform a point (w = 1) with perspective divide.
  Vec3 transform_point(Vec3 p) const {
    const float x = m[0][0] * p.x + m[0][1] * p.y + m[0][2] * p.z + m[0][3];
    const float y = m[1][0] * p.x + m[1][1] * p.y + m[1][2] * p.z + m[1][3];
    const float z = m[2][0] * p.x + m[2][1] * p.y + m[2][2] * p.z + m[2][3];
    const float w = m[3][0] * p.x + m[3][1] * p.y + m[3][2] * p.z + m[3][3];
    if (w != 0.0f && w != 1.0f) return {x / w, y / w, z / w};
    return {x, y, z};
  }

  /// Transform a direction (w = 0, no translation).
  Vec3 transform_vector(Vec3 v) const {
    return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
  }

  Mat4 transposed() const {
    Mat4 r;
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j) r.m[i][j] = m[j][i];
    return r;
  }

  static Mat4 translate(Vec3 t) {
    Mat4 r = identity();
    r.m[0][3] = t.x;
    r.m[1][3] = t.y;
    r.m[2][3] = t.z;
    return r;
  }

  static Mat4 scale(Vec3 s) {
    Mat4 r;
    r.m[0][0] = s.x;
    r.m[1][1] = s.y;
    r.m[2][2] = s.z;
    r.m[3][3] = 1.0f;
    return r;
  }

  /// Rotation about an arbitrary axis (Rodrigues), angle in radians.
  static Mat4 rotate(Vec3 axis, float angle) {
    const Vec3 a = normalize(axis);
    const float c = std::cos(angle);
    const float s = std::sin(angle);
    const float t = 1.0f - c;
    Mat4 r = identity();
    r.m[0][0] = c + a.x * a.x * t;
    r.m[0][1] = a.x * a.y * t - a.z * s;
    r.m[0][2] = a.x * a.z * t + a.y * s;
    r.m[1][0] = a.y * a.x * t + a.z * s;
    r.m[1][1] = c + a.y * a.y * t;
    r.m[1][2] = a.y * a.z * t - a.x * s;
    r.m[2][0] = a.z * a.x * t - a.y * s;
    r.m[2][1] = a.z * a.y * t + a.x * s;
    r.m[2][2] = c + a.z * a.z * t;
    return r;
  }

  /// Right-handed look-at view matrix (world -> camera).
  static Mat4 look_at(Vec3 eye, Vec3 target, Vec3 up) {
    const Vec3 f = normalize(target - eye);   // forward
    const Vec3 s = normalize(cross(f, up));   // right
    const Vec3 u = cross(s, f);               // true up
    Mat4 r = identity();
    r.m[0][0] = s.x; r.m[0][1] = s.y; r.m[0][2] = s.z; r.m[0][3] = -dot(s, eye);
    r.m[1][0] = u.x; r.m[1][1] = u.y; r.m[1][2] = u.z; r.m[1][3] = -dot(u, eye);
    r.m[2][0] = -f.x; r.m[2][1] = -f.y; r.m[2][2] = -f.z; r.m[2][3] = dot(f, eye);
    return r;
  }

  /// Right-handed perspective projection; fovy in radians, maps to
  /// clip-space z in [-1, 1].
  static Mat4 perspective(float fovy, float aspect, float znear, float zfar) {
    VRMR_CHECK(fovy > 0.0f && aspect > 0.0f && znear > 0.0f && zfar > znear);
    const float f = 1.0f / std::tan(fovy * 0.5f);
    Mat4 r;
    r.m[0][0] = f / aspect;
    r.m[1][1] = f;
    r.m[2][2] = (zfar + znear) / (znear - zfar);
    r.m[2][3] = (2.0f * zfar * znear) / (znear - zfar);
    r.m[3][2] = -1.0f;
    return r;
  }

  /// General inverse by Gauss-Jordan elimination with partial pivoting.
  /// Throws CheckError for singular matrices.
  Mat4 inverse() const {
    std::array<std::array<double, 8>, 4> a{};
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) a[i][j] = m[i][j];
      a[i][4 + i] = 1.0;
    }
    for (int col = 0; col < 4; ++col) {
      int pivot = col;
      for (int r = col + 1; r < 4; ++r)
        if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
      VRMR_CHECK_MSG(std::fabs(a[pivot][col]) > 1e-12, "singular matrix");
      std::swap(a[col], a[pivot]);
      const double inv = 1.0 / a[col][col];
      for (int j = 0; j < 8; ++j) a[col][j] *= inv;
      for (int r = 0; r < 4; ++r) {
        if (r == col) continue;
        const double f = a[r][col];
        if (f == 0.0) continue;
        for (int j = 0; j < 8; ++j) a[r][j] -= f * a[col][j];
      }
    }
    Mat4 out;
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j) out.m[i][j] = static_cast<float>(a[i][4 + j]);
    return out;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Mat4& mt) {
  for (int i = 0; i < 4; ++i) {
    os << "[";
    for (int j = 0; j < 4; ++j) os << mt.m[i][j] << (j == 3 ? "]" : ", ");
    os << (i == 3 ? "" : "\n");
  }
  return os;
}

}  // namespace vrmr
