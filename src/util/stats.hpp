#pragma once

// Streaming statistics (Welford) and fixed-width histograms, used for
// per-stage timing accumulation and benchmark reporting.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace vrmr {

/// Numerically stable streaming accumulator: count, mean, variance,
/// min, max, sum.
class StatAccumulator {
 public:
  void add(double x);
  void merge(const StatAccumulator& other);
  void reset();

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::max();
  double max_ = std::numeric_limits<double>::lowest();
};

/// Percentile from an explicit sample set (linear interpolation between
/// closest ranks). `p` in [0, 100]. Sorts a copy; intended for
/// end-of-run reporting, not hot paths.
double percentile(std::vector<double> samples, double p);

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void add(double x);
  std::uint64_t bin_count(int i) const { return counts_.at(static_cast<size_t>(i)); }
  int bins() const { return static_cast<int>(counts_.size()); }
  std::uint64_t total() const { return total_; }
  double bin_lo(int i) const;
  double bin_hi(int i) const;

  /// Render an ASCII sparkline-style summary (for bench output).
  std::string ascii(int width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace vrmr
