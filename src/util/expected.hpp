#pragma once

// Minimal expected<T, E> substitute (the toolchain targets C++20;
// std::expected is C++23). Just enough surface for recoverable error
// returns on I/O read paths: construct from a value or an Unexpected<E>,
// query, and take the value or the error.

#include <utility>
#include <variant>

#include "util/check.hpp"

namespace vrmr {

template <typename E>
struct Unexpected {
  E error;
};

template <typename E>
Unexpected<std::decay_t<E>> make_unexpected(E&& e) {
  return Unexpected<std::decay_t<E>>{std::forward<E>(e)};
}

template <typename T, typename E>
class Expected {
 public:
  Expected(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> e) : state_(std::in_place_index<1>, std::move(e.error)) {}

  bool has_value() const { return state_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  T& value() {
    VRMR_CHECK_MSG(has_value(), "Expected::value() on an error");
    return std::get<0>(state_);
  }
  const T& value() const {
    VRMR_CHECK_MSG(has_value(), "Expected::value() on an error");
    return std::get<0>(state_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  E& error() {
    VRMR_CHECK_MSG(!has_value(), "Expected::error() on a value");
    return std::get<1>(state_);
  }
  const E& error() const {
    VRMR_CHECK_MSG(!has_value(), "Expected::error() on a value");
    return std::get<1>(state_);
  }

  template <typename U>
  T value_or(U&& fallback) const {
    return has_value() ? std::get<0>(state_) : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  std::variant<T, E> state_;
};

}  // namespace vrmr
