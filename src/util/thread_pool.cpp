#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/check.hpp"

namespace vrmr {

namespace {
thread_local const ThreadPool* tls_current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  tls_current_pool = this;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task.fn();
  }
}

bool ThreadPool::on_worker_thread() const { return tls_current_pool == this; }

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              const std::function<void(std::int64_t)>& fn,
                              std::int64_t grain) {
  if (begin >= end) return;
  VRMR_CHECK(grain >= 1);

  const std::int64_t total = end - begin;
  // Inline execution: tiny ranges, single worker, or a recursive call
  // from inside this pool (queueing would deadlock the caller).
  if (total <= grain || size() <= 1 || on_worker_thread()) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }

  const std::int64_t chunks = std::min<std::int64_t>(
      (total + grain - 1) / grain, static_cast<std::int64_t>(size()) * 4);
  const std::int64_t chunk_size = (total + chunks - 1) / chunks;

  std::atomic<std::int64_t> remaining{chunks};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::int64_t c = 0; c < chunks; ++c) {
      const std::int64_t lo = begin + c * chunk_size;
      const std::int64_t hi = std::min(end, lo + chunk_size);
      queue_.push_back(Task{[&, lo, hi] {
        try {
          if (!failed.load(std::memory_order_relaxed)) {
            for (std::int64_t i = lo; i < hi; ++i) fn(i);
          }
        } catch (...) {
          std::lock_guard<std::mutex> elock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> dlock(done_mutex);
          done_cv.notify_all();
        }
      }});
    }
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });

  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace vrmr
