#pragma once

// Small fixed-size vector math used throughout the renderer.
//
// These mirror the float3/float4 types of the CUDA kernels in the paper.
// Everything is constexpr-friendly and passed by value; the renderer's
// inner sampling loop relies on these being trivially copyable.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <ostream>

namespace vrmr {

/// 3-component float vector (CUDA float3 analogue).
struct Vec3 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr Vec3() = default;
  constexpr Vec3(float vx, float vy, float vz) : x(vx), y(vy), z(vz) {}
  constexpr explicit Vec3(float v) : x(v), y(v), z(v) {}

  constexpr float operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }
  float& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }

  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr Vec3& operator+=(Vec3 o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr Vec3& operator-=(Vec3 o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  constexpr Vec3& operator*=(float s) { x *= s; y *= s; z *= s; return *this; }
  constexpr Vec3& operator/=(float s) { x /= s; y /= s; z /= s; return *this; }

  friend constexpr Vec3 operator+(Vec3 a, Vec3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
  friend constexpr Vec3 operator-(Vec3 a, Vec3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
  friend constexpr Vec3 operator*(Vec3 a, Vec3 b) { return {a.x * b.x, a.y * b.y, a.z * b.z}; }
  friend constexpr Vec3 operator/(Vec3 a, Vec3 b) { return {a.x / b.x, a.y / b.y, a.z / b.z}; }
  friend constexpr Vec3 operator*(Vec3 a, float s) { return {a.x * s, a.y * s, a.z * s}; }
  friend constexpr Vec3 operator*(float s, Vec3 a) { return a * s; }
  friend constexpr Vec3 operator/(Vec3 a, float s) { return {a.x / s, a.y / s, a.z / s}; }
  friend constexpr bool operator==(Vec3 a, Vec3 b) { return a.x == b.x && a.y == b.y && a.z == b.z; }
};

constexpr float dot(Vec3 a, Vec3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }

constexpr Vec3 cross(Vec3 a, Vec3 b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

inline float length(Vec3 v) { return std::sqrt(dot(v, v)); }
constexpr float length_squared(Vec3 v) { return dot(v, v); }

inline Vec3 normalize(Vec3 v) {
  const float len = length(v);
  return len > 0.0f ? v / len : Vec3{0.0f, 0.0f, 0.0f};
}

constexpr Vec3 min(Vec3 a, Vec3 b) {
  return {std::min(a.x, b.x), std::min(a.y, b.y), std::min(a.z, b.z)};
}
constexpr Vec3 max(Vec3 a, Vec3 b) {
  return {std::max(a.x, b.x), std::max(a.y, b.y), std::max(a.z, b.z)};
}
constexpr Vec3 clamp(Vec3 v, Vec3 lo, Vec3 hi) { return min(max(v, lo), hi); }
constexpr float clampf(float v, float lo, float hi) { return v < lo ? lo : (v > hi ? hi : v); }
constexpr Vec3 lerp(Vec3 a, Vec3 b, float t) { return a + (b - a) * t; }
constexpr float lerpf(float a, float b, float t) { return a + (b - a) * t; }

inline Vec3 floor(Vec3 v) { return {std::floor(v.x), std::floor(v.y), std::floor(v.z)}; }

inline std::ostream& operator<<(std::ostream& os, Vec3 v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

/// 4-component float vector (CUDA float4 analogue).
struct Vec4 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;
  float w = 0.0f;

  constexpr Vec4() = default;
  constexpr Vec4(float vx, float vy, float vz, float vw) : x(vx), y(vy), z(vz), w(vw) {}
  constexpr Vec4(Vec3 v, float vw) : x(v.x), y(v.y), z(v.z), w(vw) {}

  constexpr Vec3 xyz() const { return {x, y, z}; }

  friend constexpr Vec4 operator+(Vec4 a, Vec4 b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z, a.w + b.w};
  }
  friend constexpr Vec4 operator-(Vec4 a, Vec4 b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z, a.w - b.w};
  }
  friend constexpr Vec4 operator*(Vec4 a, float s) { return {a.x * s, a.y * s, a.z * s, a.w * s}; }
  friend constexpr Vec4 operator*(float s, Vec4 a) { return a * s; }
  friend constexpr bool operator==(Vec4 a, Vec4 b) {
    return a.x == b.x && a.y == b.y && a.z == b.z && a.w == b.w;
  }
};

constexpr float dot(Vec4 a, Vec4 b) { return a.x * b.x + a.y * b.y + a.z * b.z + a.w * b.w; }
constexpr Vec4 lerp(Vec4 a, Vec4 b, float t) { return a + (b - a) * t; }

inline std::ostream& operator<<(std::ostream& os, Vec4 v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ", " << v.w << ")";
}

/// Integer 3-vector for voxel coordinates, brick indices and grid dims.
struct Int3 {
  int x = 0;
  int y = 0;
  int z = 0;

  constexpr Int3() = default;
  constexpr Int3(int vx, int vy, int vz) : x(vx), y(vy), z(vz) {}
  constexpr explicit Int3(int v) : x(v), y(v), z(v) {}

  constexpr int operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }
  int& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }

  friend constexpr Int3 operator+(Int3 a, Int3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
  friend constexpr Int3 operator-(Int3 a, Int3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
  friend constexpr Int3 operator*(Int3 a, int s) { return {a.x * s, a.y * s, a.z * s}; }
  friend constexpr bool operator==(Int3 a, Int3 b) { return a.x == b.x && a.y == b.y && a.z == b.z; }
  friend constexpr bool operator!=(Int3 a, Int3 b) { return !(a == b); }

  /// Total element count, as 64-bit to survive 1024^3-scale volumes.
  constexpr std::int64_t volume() const {
    return static_cast<std::int64_t>(x) * y * z;
  }
};

constexpr Vec3 to_vec3(Int3 v) {
  return {static_cast<float>(v.x), static_cast<float>(v.y), static_cast<float>(v.z)};
}

constexpr Int3 min(Int3 a, Int3 b) {
  return {std::min(a.x, b.x), std::min(a.y, b.y), std::min(a.z, b.z)};
}
constexpr Int3 max(Int3 a, Int3 b) {
  return {std::max(a.x, b.x), std::max(a.y, b.y), std::max(a.z, b.z)};
}

/// Ceiling division, used for brick-grid and kernel-grid sizing.
constexpr int ceil_div(int a, int b) { return (a + b - 1) / b; }
constexpr std::int64_t ceil_div64(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

inline std::ostream& operator<<(std::ostream& os, Int3 v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

}  // namespace vrmr
