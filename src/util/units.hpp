#pragma once

// Human-readable formatting of byte counts, rates and durations for the
// benchmark harness output.

#include <cstdint>
#include <sstream>
#include <string>

namespace vrmr {

inline std::string format_bytes(std::uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  std::ostringstream os;
  os.precision(v < 10 ? 2 : (v < 100 ? 1 : 0));
  os << std::fixed << v << " " << kUnits[u];
  return os.str();
}

inline std::string format_seconds(double s) {
  std::ostringstream os;
  os << std::fixed;
  if (s < 1e-6) {
    os.precision(1);
    os << s * 1e9 << " ns";
  } else if (s < 1e-3) {
    os.precision(2);
    os << s * 1e6 << " us";
  } else if (s < 1.0) {
    os.precision(2);
    os << s * 1e3 << " ms";
  } else {
    os.precision(3);
    os << s << " s";
  }
  return os.str();
}

inline std::string format_rate(double per_second, const char* unit) {
  constexpr const char* kPrefix[] = {"", "K", "M", "G", "T"};
  double v = per_second;
  int u = 0;
  while (v >= 1000.0 && u < 4) {
    v /= 1000.0;
    ++u;
  }
  std::ostringstream os;
  os.precision(v < 10 ? 2 : 1);
  os << std::fixed << v << " " << kPrefix[u] << unit << "/s";
  return os.str();
}

}  // namespace vrmr
