#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace vrmr {

void StatAccumulator::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StatAccumulator::merge(const StatAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StatAccumulator::reset() { *this = StatAccumulator{}; }

double StatAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double p) {
  VRMR_CHECK_MSG(!samples.empty(), "percentile of empty sample set");
  VRMR_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  VRMR_CHECK(hi > lo);
  VRMR_CHECK(bins > 0);
  counts_.assign(static_cast<size_t>(bins), 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(int i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(int i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(counts_.size());
}

std::string Histogram::ascii(int width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<int>(static_cast<double>(counts_[i]) /
                                      static_cast<double>(peak) * width);
    os << "[" << bin_lo(static_cast<int>(i)) << ", " << bin_hi(static_cast<int>(i))
       << ") " << std::string(static_cast<size_t>(bar), '#') << " " << counts_[i]
       << "\n";
  }
  return os.str();
}

}  // namespace vrmr
