#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace vrmr {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  VRMR_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  VRMR_CHECK_MSG(cells.size() == headers_.size(),
                 "row has " << cells.size() << " cells, expected " << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t c = 0; c < cells.size(); ++c)
      os << " " << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    os << "\n";
  };
  auto emit_sep = [&] {
    os << "+";
    for (size_t c = 0; c < widths.size(); ++c) os << std::string(widths[c] + 2, '-') << "+";
    os << "\n";
  };

  emit_sep();
  emit_row(headers_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      const bool quote = cells[c].find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        os << '"';
        for (char ch : cells[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cells[c];
      }
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace vrmr
