#pragma once

// Fixed-size worker pool. Two uses in the reproduction:
//   1. gpusim executes CUDA-style (grid x block) kernel launches by
//      fanning blocks out over the pool (the "streaming multiprocessors").
//   2. Host-side data-parallel helpers (counting sort, compositing).
//
// parallel_for is the primary interface; it blocks the caller until the
// range completes, mirroring a synchronous kernel launch.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vrmr {

class ThreadPool {
 public:
  /// `threads == 0` means std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Run fn(i) for i in [begin, end), chunked by `grain`, blocking until
  /// all iterations finish. Exceptions from fn propagate to the caller
  /// (first one wins). Recursive calls from inside a worker execute the
  /// range inline to avoid deadlock.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t)>& fn,
                    std::int64_t grain = 1);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();
  bool on_worker_thread() const;

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace vrmr
