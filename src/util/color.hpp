#pragma once

// RGBA color type and the front-to-back "over" compositing operators
// used by both the ray-cast kernel (within a brick) and the reducer
// (across bricks). Colors are stored with *associated* (premultiplied)
// alpha, which is what makes partial-ray compositing associative: a
// chain of front-to-back composites over ordered fragments yields the
// same result as compositing the whole ray in one pass.

#include <cmath>
#include <cstdint>
#include <ostream>

#include "util/vec.hpp"

namespace vrmr {

/// Premultiplied-alpha RGBA color.
struct Rgba {
  float r = 0.0f;
  float g = 0.0f;
  float b = 0.0f;
  float a = 0.0f;

  constexpr Rgba() = default;
  constexpr Rgba(float cr, float cg, float cb, float ca) : r(cr), g(cg), b(cb), a(ca) {}
  constexpr explicit Rgba(Vec4 v) : r(v.x), g(v.y), b(v.z), a(v.w) {}

  constexpr Vec4 to_vec4() const { return {r, g, b, a}; }

  friend constexpr Rgba operator+(Rgba x, Rgba y) {
    return {x.r + y.r, x.g + y.g, x.b + y.b, x.a + y.a};
  }
  friend constexpr Rgba operator*(Rgba x, float s) {
    return {x.r * s, x.g * s, x.b * s, x.a * s};
  }
  friend constexpr bool operator==(Rgba x, Rgba y) {
    return x.r == y.r && x.g == y.g && x.b == y.b && x.a == y.a;
  }

  static constexpr Rgba transparent() { return {0.0f, 0.0f, 0.0f, 0.0f}; }
};

/// Front-to-back "over": accumulate `back` behind the already
/// accumulated `front`. Both are premultiplied. This is the fragment
/// merge used at every sample step and in the reduce phase.
constexpr Rgba composite_over(Rgba front, Rgba back) {
  const float t = 1.0f - front.a;
  return {front.r + back.r * t, front.g + back.g * t, front.b + back.b * t,
          front.a + back.a * t};
}

/// Blend an accumulated premultiplied color against an opaque
/// background, producing a displayable (non-premultiplied) RGB.
constexpr Vec3 blend_background(Rgba accum, Vec3 background) {
  const float t = 1.0f - accum.a;
  return {accum.r + background.x * t, accum.g + background.y * t,
          accum.b + background.z * t};
}

/// Convert a straight-alpha sample (e.g. a transfer-function lookup) to
/// premultiplied form, applying opacity correction for step size:
/// alpha' = 1 - (1 - alpha)^(step / base_step).
inline Rgba premultiply_corrected(Vec4 straight, float opacity_correction) {
  const float a = 1.0f - std::pow(1.0f - clampf(straight.w, 0.0f, 1.0f),
                                  opacity_correction);
  return {straight.x * a, straight.y * a, straight.z * a, a};
}

/// Straight premultiply without correction.
constexpr Rgba premultiply(Vec4 straight) {
  const float a = clampf(straight.w, 0.0f, 1.0f);
  return {straight.x * a, straight.y * a, straight.z * a, a};
}

/// Early-ray-termination threshold used by the kernel and reducer: once
/// accumulated alpha exceeds this, later samples are invisible.
inline constexpr float kOpaqueAlpha = 0.995f;

inline std::ostream& operator<<(std::ostream& os, Rgba c) {
  return os << "rgba(" << c.r << ", " << c.g << ", " << c.b << ", " << c.a << ")";
}

}  // namespace vrmr
