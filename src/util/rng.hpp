#pragma once

// Deterministic, seedable random number generation.
//
// The reproduction must be bit-deterministic across runs (DESIGN.md §6),
// so we avoid std::random_device / global state. PCG32 is the workhorse;
// SplitMix64 derives stream seeds from a master seed.

#include <cstdint>

namespace vrmr {

/// SplitMix64: tiny, high-quality seed expander.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// PCG32 (XSH-RR variant). Small state, excellent statistical quality,
/// cheap enough for per-voxel procedural noise.
class Pcg32 {
 public:
  constexpr Pcg32() : Pcg32(0x853c49e6748fea9bULL, 0xda3e39cb94b95bdbULL) {}

  constexpr Pcg32(std::uint64_t seed, std::uint64_t stream = 1) : state_(0), inc_((stream << 1u) | 1u) {
    next_u32();
    state_ += seed;
    next_u32();
  }

  constexpr std::uint32_t next_u32() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  constexpr std::uint64_t next_u64() {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  /// Uniform in [0, 1).
  constexpr float next_float() {
    return static_cast<float>(next_u32() >> 8) * (1.0f / 16777216.0f);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform in [lo, hi).
  constexpr float uniform(float lo, float hi) { return lo + (hi - lo) * next_float(); }

  /// Unbiased uniform integer in [0, bound) via Lemire rejection.
  constexpr std::uint32_t next_below(std::uint32_t bound) {
    if (bound == 0) return 0;
    const std::uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      const std::uint32_t r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Integer hash usable as stateless per-cell noise (procedural volumes).
constexpr std::uint32_t hash_u32(std::uint32_t x) {
  x ^= x >> 16;
  x *= 0x7feb352dU;
  x ^= x >> 15;
  x *= 0x846ca68bU;
  x ^= x >> 16;
  return x;
}

/// Hash three lattice coordinates + seed into [0, 1).
constexpr float lattice_noise(int x, int y, int z, std::uint32_t seed) {
  std::uint32_t h = seed;
  h = hash_u32(h ^ static_cast<std::uint32_t>(x) * 0x8da6b343U);
  h = hash_u32(h ^ static_cast<std::uint32_t>(y) * 0xd8163841U);
  h = hash_u32(h ^ static_cast<std::uint32_t>(z) * 0xcb1ab31fU);
  return static_cast<float>(h >> 8) * (1.0f / 16777216.0f);
}

}  // namespace vrmr
