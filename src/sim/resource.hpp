#pragma once

// Simulated serial resources (GPU stream, PCIe link, NIC port, disk) and
// k-server pools (CPU cores).
//
// The model is "time-advance": a serial resource remembers when it next
// becomes free; an acquire arriving at simulated time `now` starts at
// max(now, free_at) and completes `duration` later. Because the engine
// delivers events in deterministic order, this yields exact FIFO
// queueing semantics without an explicit waiter list.
//
// acquire_multi models operations that hold several resources at once —
// e.g. the paper's *synchronous* 3-D-texture H2D copy occupies both the
// node's PCIe link and the target GPU (§3.1.2: "we were forced to use
// synchronous memory copies").

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "util/stats.hpp"

namespace vrmr::sim {

/// Completion callback: receives the interval during which the
/// operation held the resource.
using Completion = std::function<void(SimTime start, SimTime end)>;

class Resource {
 public:
  Resource(Engine& engine, std::string name)
      : engine_(&engine), name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Request exclusive use for `duration` simulated seconds, FIFO.
  /// `on_complete` fires at the end of the granted interval.
  void acquire(SimTime duration, Completion on_complete);

  /// Atomically acquire several resources for the same interval: the
  /// operation starts when the *latest* of them frees up and occupies
  /// all of them until start + duration.
  static void acquire_multi(std::span<Resource* const> resources, SimTime duration,
                            Completion on_complete);

  /// Earliest simulated time a new acquire could start.
  SimTime free_at() const { return free_at_; }

  // --- accounting -------------------------------------------------------
  SimTime busy_time() const { return busy_; }
  std::uint64_t jobs() const { return jobs_; }
  SimTime total_wait() const { return wait_; }
  const StatAccumulator& wait_stats() const { return wait_stats_; }

  /// Fraction of [0, horizon] this resource spent busy.
  double utilization(SimTime horizon) const {
    return horizon > 0.0 ? busy_ / horizon : 0.0;
  }

  void reset_accounting();

 private:
  void charge(SimTime start, SimTime end, SimTime arrived);

  Engine* engine_;
  std::string name_;
  SimTime free_at_ = 0.0;
  SimTime busy_ = 0.0;
  SimTime wait_ = 0.0;
  std::uint64_t jobs_ = 0;
  StatAccumulator wait_stats_;
};

/// k identical servers (e.g. the quad-core CPU of each cluster node).
/// An acquire is placed on the server that frees earliest.
class ResourcePool {
 public:
  ResourcePool(Engine& engine, const std::string& name, int servers);

  void acquire(SimTime duration, Completion on_complete);

  int servers() const { return static_cast<int>(servers_.size()); }
  SimTime busy_time() const;  // summed over servers
  std::uint64_t jobs() const;

  Resource& server(int i) { return servers_[static_cast<size_t>(i)]; }

 private:
  std::vector<Resource> servers_;
};

}  // namespace vrmr::sim
