#pragma once

// Deterministic discrete-event simulation (DES) engine.
//
// Why a DES: the paper's evaluation ran on the 2010 NCSA Accelerator
// Cluster (Tesla S1070 GPUs, QDR InfiniBand). We reproduce the *system*
// functionally on the host, and reproduce the *timing behaviour* by
// charging calibrated costs for every GPU kernel, PCIe copy, network
// message and disk read onto a simulated clock. The engine is strictly
// single-threaded and events at equal times fire in scheduling order,
// so every experiment is bit-reproducible (DESIGN.md §6).
//
// Heavy functional work (actually ray casting a brick) runs inside the
// event callbacks and may internally use the host thread pool; the
// simulated duration of the operation comes from the hardware model,
// never from the wall clock.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/check.hpp"

namespace vrmr::sim {

/// Simulated time in seconds.
using SimTime = double;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute simulated time `t` (must be >= now()).
  void schedule_at(SimTime t, std::function<void()> fn);

  /// Schedule `fn` `dt` seconds after the current simulated time.
  void schedule_after(SimTime dt, std::function<void()> fn) {
    schedule_at(now_ + dt, std::move(fn));
  }

  /// Process events until the queue drains. Returns the final time.
  SimTime run();

  /// Process a single event; false when the queue is empty.
  bool step();

  bool empty() const { return queue_.empty(); }
  std::uint64_t events_processed() const { return processed_; }
  std::uint64_t events_scheduled() const { return next_seq_; }
  /// High-water mark of the pending-event queue — a cheap load signal
  /// for the observability layer (obs::Registry gauges).
  std::size_t max_queue_depth() const { return max_queue_depth_; }

  /// Reset the clock and drop pending events (for reuse across frames).
  void reset();

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break for equal times => determinism
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t max_queue_depth_ = 0;
};

/// Countdown latch for the DES: fires `on_done` when `arrive()` has been
/// called `count` times. Used for "all mappers finished", "all fragments
/// routed" style phase joins.
class Join {
 public:
  Join(int count, std::function<void()> on_done)
      : remaining_(count), on_done_(std::move(on_done)) {
    VRMR_CHECK(count >= 0);
    if (remaining_ == 0 && on_done_) {
      auto fn = std::move(on_done_);
      on_done_ = nullptr;
      fn();
    }
  }

  void arrive() {
    VRMR_CHECK_MSG(remaining_ > 0, "Join::arrive called more times than count");
    if (--remaining_ == 0 && on_done_) {
      auto fn = std::move(on_done_);
      on_done_ = nullptr;
      fn();
    }
  }

  int remaining() const { return remaining_; }

 private:
  int remaining_;
  std::function<void()> on_done_;
};

}  // namespace vrmr::sim
