#include "sim/resource.hpp"

namespace vrmr::sim {

void Resource::charge(SimTime start, SimTime end, SimTime arrived) {
  busy_ += end - start;
  const SimTime waited = start - arrived;
  wait_ += waited;
  wait_stats_.add(waited);
  ++jobs_;
}

void Resource::acquire(SimTime duration, Completion on_complete) {
  VRMR_CHECK_MSG(duration >= 0.0, "negative duration " << duration);
  const SimTime arrived = engine_->now();
  const SimTime start = std::max(arrived, free_at_);
  const SimTime end = start + duration;
  free_at_ = end;
  charge(start, end, arrived);
  if (on_complete) {
    engine_->schedule_at(end, [start, end, cb = std::move(on_complete)] { cb(start, end); });
  }
}

void Resource::acquire_multi(std::span<Resource* const> resources, SimTime duration,
                             Completion on_complete) {
  VRMR_CHECK(!resources.empty());
  VRMR_CHECK(duration >= 0.0);
  Engine& engine = *resources.front()->engine_;
  const SimTime arrived = engine.now();
  SimTime start = arrived;
  for (Resource* r : resources) {
    VRMR_CHECK_MSG(r->engine_ == &engine, "resources belong to different engines");
    start = std::max(start, r->free_at_);
  }
  const SimTime end = start + duration;
  for (Resource* r : resources) {
    r->free_at_ = end;
    r->charge(start, end, arrived);
  }
  if (on_complete) {
    engine.schedule_at(end, [start, end, cb = std::move(on_complete)] { cb(start, end); });
  }
}

void Resource::reset_accounting() {
  busy_ = 0.0;
  wait_ = 0.0;
  jobs_ = 0;
  wait_stats_.reset();
}

ResourcePool::ResourcePool(Engine& engine, const std::string& name, int servers) {
  VRMR_CHECK(servers >= 1);
  servers_.reserve(static_cast<size_t>(servers));
  for (int i = 0; i < servers; ++i) {
    servers_.emplace_back(engine, name + "[" + std::to_string(i) + "]");
  }
}

void ResourcePool::acquire(SimTime duration, Completion on_complete) {
  Resource* best = &servers_.front();
  for (auto& s : servers_) {
    if (s.free_at() < best->free_at()) best = &s;
  }
  best->acquire(duration, std::move(on_complete));
}

SimTime ResourcePool::busy_time() const {
  SimTime total = 0.0;
  for (const auto& s : servers_) total += s.busy_time();
  return total;
}

std::uint64_t ResourcePool::jobs() const {
  std::uint64_t total = 0;
  for (const auto& s : servers_) total += s.jobs();
  return total;
}

}  // namespace vrmr::sim
