#include "sim/engine.hpp"

namespace vrmr::sim {

void Engine::schedule_at(SimTime t, std::function<void()> fn) {
  VRMR_CHECK_MSG(t >= now_, "cannot schedule event in the simulated past (t="
                                << t << ", now=" << now_ << ")");
  VRMR_CHECK(fn != nullptr);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
  if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the function object must be moved
  // out before pop. const_cast is confined to this one spot.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++processed_;
  ev.fn();
  return true;
}

SimTime Engine::run() {
  while (step()) {
  }
  return now_;
}

void Engine::reset() {
  while (!queue_.empty()) queue_.pop();
  now_ = 0.0;
  next_seq_ = 0;
  processed_ = 0;
  max_queue_depth_ = 0;
}

}  // namespace vrmr::sim
