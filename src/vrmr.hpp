#pragma once

// Umbrella header for the vrmr public API.
//
// Typical embedding (see examples/quickstart.cpp):
//
//   #include "vrmr.hpp"
//
//   vrmr::sim::Engine engine;
//   vrmr::cluster::Cluster cluster(
//       engine, vrmr::cluster::ClusterConfig::with_total_gpus(8));
//   auto volume = vrmr::volren::datasets::skull({256, 256, 256});
//   vrmr::volren::RenderOptions options;
//   auto result = vrmr::volren::render_mapreduce(cluster, volume, options);
//   result.image.write_ppm("frame.ppm");
//
// Layering (each header is also individually includable):
//   sim      — discrete-event engine and resources (the simulated clock)
//   gpusim   — functional GPU devices, kernel launches, textures
//   net/io   — interconnect fabric, virtual disks, VRBF brick files
//   cluster  — node topology + calibrated hardware model
//   mr       — the MapReduce library (Job, Mapper, Reducer, Combiner)
//   volren   — the volume renderer built on mr
//   service  — session handles, frame scheduler, per-GPU brick cache,
//              sharded multi-cluster frontend
//   obs      — flight recorder (Chrome trace-event export), metrics
//              registry, per-frame critical-path attribution

// Substrates.
#include "cluster/cluster.hpp"
#include "cluster/hardware_model.hpp"
#include "gpusim/device.hpp"
#include "gpusim/texture.hpp"
#include "io/brick_file.hpp"
#include "io/brick_streamer.hpp"
#include "io/disk.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

// MapReduce library.
#include "mr/analysis.hpp"
#include "mr/combiner.hpp"
#include "mr/frame_plan.hpp"
#include "mr/job.hpp"

// Volume renderer.
#include "volren/binary_swap.hpp"
#include "volren/datasets.hpp"
#include "volren/reference.hpp"
#include "volren/renderer.hpp"

// Render service (session handles served on one cluster or sharded
// across several by the frontend).
#include "service/brick_cache.hpp"
#include "service/frontend.hpp"
#include "service/render_service.hpp"
#include "service/session.hpp"

// Observability (attach with RenderService::set_trace /
// ServiceFrontend::set_trace; zero-cost when detached).
#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
