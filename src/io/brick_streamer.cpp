#include "io/brick_streamer.hpp"

namespace vrmr::io {

BrickStreamer::BrickStreamer(BrickFileReader& reader, std::vector<int> schedule,
                             int window)
    : reader_(reader), schedule_(std::move(schedule)), window_(window) {
  VRMR_CHECK_MSG(window >= 1, "window must be positive");
  for (int id : schedule_) {
    VRMR_CHECK_MSG(id >= 0 && id < reader_.num_bricks(),
                   "scheduled brick " << id << " not in file");
  }
  fill_window();
}

std::optional<IoError> BrickStreamer::load(int brick) {
  if (cache_.count(brick)) return std::nullopt;  // already resident (repeat)
  Expected<std::vector<float>, IoError> voxels = reader_.try_read_brick(brick);
  if (!voxels.has_value()) return std::move(voxels.error());
  // Evict only once the read succeeded — a failed read must not cost a
  // resident brick.
  if (static_cast<int>(cache_.size()) >= window_) {
    const int victim = residency_order_.front();
    residency_order_.pop_front();
    cache_.erase(victim);
  }
  ++reads_;
  // Stored bytes, not logical: a compressed (VRBF v2) brick costs one
  // read of its encoded stream, however large it decodes to.
  bytes_read_ += reader_.record(brick).bytes;
  residency_order_.push_back(brick);
  cache_.emplace(brick, std::move(voxels.value()));
  return std::nullopt;
}

void BrickStreamer::fill_window() {
  // Prefetch ahead of the consumer until the window is full or the
  // schedule ends. A brick that fails to read is simply not cached;
  // the consumer re-attempts it and surfaces the error at consume time.
  while (prefetch_cursor_ < schedule_.size() &&
         static_cast<int>(cache_.size()) < window_) {
    (void)load(schedule_[prefetch_cursor_]);
    ++prefetch_cursor_;
  }
}

std::vector<float> BrickStreamer::consume() {
  Expected<std::vector<float>, IoError> result = try_consume();
  VRMR_CHECK_MSG(result.has_value(), result.error().message);
  return std::move(result.value());
}

Expected<std::vector<float>, IoError> BrickStreamer::try_consume() {
  VRMR_CHECK_MSG(!done(), "stream exhausted");
  const int brick = schedule_[cursor_];
  if (!cache_.count(brick)) {
    if (std::optional<IoError> err = load(brick)) {  // prefetch miss or bad brick
      // Corrupt brick: retire it from the schedule so the stream
      // continues past it — the caller decides how to substitute.
      ++cursor_;
      if (prefetch_cursor_ < cursor_) prefetch_cursor_ = cursor_;
      fill_window();
      return make_unexpected(std::move(*err));
    }
  }
  ++cursor_;
  if (prefetch_cursor_ < cursor_) prefetch_cursor_ = cursor_;

  // Hand the payload to the consumer and retire it from the window.
  auto it = cache_.find(brick);
  VRMR_CHECK(it != cache_.end());
  std::vector<float> voxels = std::move(it->second);
  cache_.erase(it);
  for (auto order = residency_order_.begin(); order != residency_order_.end(); ++order) {
    if (*order == brick) {
      residency_order_.erase(order);
      break;
    }
  }

  fill_window();
  return voxels;
}

}  // namespace vrmr::io
