#include "io/brick_file.hpp"

#include <cstring>

#include "util/check.hpp"

namespace vrmr::io {

namespace {

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  return v;
}

void write_record(std::ofstream& out, const BrickRecord& r) {
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(r.grid_pos.x));
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(r.grid_pos.y));
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(r.grid_pos.z));
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(r.padded_dims.x));
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(r.padded_dims.y));
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(r.padded_dims.z));
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(r.codec));
  write_pod<std::uint32_t>(out, 0u);  // reserved
  write_pod<std::uint64_t>(out, r.offset);
  write_pod<std::uint64_t>(out, r.bytes);
  write_pod<std::uint64_t>(out, r.logical_bytes);
}

BrickRecord read_record(std::ifstream& in, std::uint32_t version,
                        std::uint32_t* bad_codec) {
  BrickRecord r;
  r.grid_pos.x = static_cast<int>(read_pod<std::uint32_t>(in));
  r.grid_pos.y = static_cast<int>(read_pod<std::uint32_t>(in));
  r.grid_pos.z = static_cast<int>(read_pod<std::uint32_t>(in));
  r.padded_dims.x = static_cast<int>(read_pod<std::uint32_t>(in));
  r.padded_dims.y = static_cast<int>(read_pod<std::uint32_t>(in));
  r.padded_dims.z = static_cast<int>(read_pod<std::uint32_t>(in));
  if (version >= 2) {
    const auto codec = read_pod<std::uint32_t>(in);
    if (codec > static_cast<std::uint32_t>(compress::Codec::ZfpStyle)) {
      *bad_codec = codec;
    } else {
      r.codec = static_cast<compress::Codec>(codec);
    }
    (void)read_pod<std::uint32_t>(in);  // reserved
  }
  r.offset = read_pod<std::uint64_t>(in);
  r.bytes = read_pod<std::uint64_t>(in);
  r.logical_bytes = version >= 2 ? read_pod<std::uint64_t>(in) : r.bytes;
  return r;
}

std::uint64_t record_bytes(std::uint32_t version) {
  // v1: 6 u32 + 2 u64. v2 adds codec + reserved u32 and logical u64.
  return version >= 2 ? 8 * 4 + 3 * 8 : 6 * 4 + 2 * 8;
}

std::uint64_t directory_bytes(int num_bricks, std::uint32_t version) {
  return static_cast<std::uint64_t>(num_bricks) * record_bytes(version);
}

constexpr std::uint64_t kFixedHeaderBytes = 4u * 8;  // 8 u32 fields

}  // namespace

BrickFileWriter::BrickFileWriter(const std::filesystem::path& path, Int3 volume_dims,
                                 int brick_size, int ghost, int num_bricks,
                                 compress::Codec codec)
    : out_(path, std::ios::binary | std::ios::trunc),
      expected_bricks_(num_bricks),
      codec_(codec),
      coder_(compress::make_codec(codec)) {
  VRMR_CHECK_MSG(out_.good(), "cannot open " << path << " for writing");
  VRMR_CHECK(volume_dims.x > 0 && volume_dims.y > 0 && volume_dims.z > 0);
  VRMR_CHECK(brick_size > 0 && ghost >= 0 && num_bricks > 0);
  VRMR_CHECK_MSG(codec != compress::Codec::ZfpStyle,
                 "zfp-style sizes are modeled in-sim only; VRBF stores None or Rle");
  header_.volume_dims = volume_dims;
  header_.brick_size = brick_size;
  header_.ghost = ghost;

  // Reserve header + directory space; rewritten by finalize().
  write_pod<std::uint32_t>(out_, kBrickFileMagic);
  write_pod<std::uint32_t>(out_, kBrickFileVersion);
  write_pod<std::uint32_t>(out_, static_cast<std::uint32_t>(volume_dims.x));
  write_pod<std::uint32_t>(out_, static_cast<std::uint32_t>(volume_dims.y));
  write_pod<std::uint32_t>(out_, static_cast<std::uint32_t>(volume_dims.z));
  write_pod<std::uint32_t>(out_, static_cast<std::uint32_t>(brick_size));
  write_pod<std::uint32_t>(out_, static_cast<std::uint32_t>(ghost));
  write_pod<std::uint32_t>(out_, static_cast<std::uint32_t>(num_bricks));
  const std::vector<char> zeros(directory_bytes(num_bricks, kBrickFileVersion), 0);
  out_.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
}

BrickFileWriter::~BrickFileWriter() {
  if (!finalized_ && out_.is_open()) {
    // Best effort: leave a valid file even if the caller forgot.
    try {
      finalize();
    } catch (...) {
      // Destructor must not throw.
    }
  }
}

void BrickFileWriter::append_brick(Int3 grid_pos, Int3 padded_dims,
                                   const std::vector<float>& voxels) {
  VRMR_CHECK_MSG(!finalized_, "append after finalize");
  VRMR_CHECK_MSG(static_cast<std::int64_t>(voxels.size()) == padded_dims.volume(),
                 "payload " << voxels.size() << " voxels != dims " << padded_dims);
  VRMR_CHECK_MSG(static_cast<int>(header_.bricks.size()) < expected_bricks_,
                 "more bricks than declared (" << expected_bricks_ << ")");
  BrickRecord rec;
  rec.grid_pos = grid_pos;
  rec.padded_dims = padded_dims;
  rec.codec = codec_;
  rec.offset = static_cast<std::uint64_t>(out_.tellp());
  rec.logical_bytes = voxels.size() * sizeof(float);
  if (coder_ != nullptr) {
    // Real encoded stream on disk (raw fallback lives inside the
    // codec's framing, so decode needs no per-brick flag).
    const std::vector<std::uint8_t> stream = coder_->encode(voxels);
    rec.bytes = stream.size();
    out_.write(reinterpret_cast<const char*>(stream.data()),
               static_cast<std::streamsize>(stream.size()));
  } else {
    rec.bytes = rec.logical_bytes;
    out_.write(reinterpret_cast<const char*>(voxels.data()),
               static_cast<std::streamsize>(rec.bytes));
  }
  VRMR_CHECK_MSG(out_.good(), "short write");
  header_.bricks.push_back(rec);
}

void BrickFileWriter::finalize() {
  VRMR_CHECK_MSG(!finalized_, "finalize called twice");
  VRMR_CHECK_MSG(static_cast<int>(header_.bricks.size()) == expected_bricks_,
                 "wrote " << header_.bricks.size() << " of " << expected_bricks_
                          << " declared bricks");
  out_.seekp(static_cast<std::streamoff>(kFixedHeaderBytes));
  for (const auto& rec : header_.bricks) write_record(out_, rec);
  VRMR_CHECK_MSG(out_.good(), "directory rewrite failed");
  out_.close();
  finalized_ = true;
}

BrickFileReader::BrickFileReader(const std::filesystem::path& path) {
  const std::optional<IoError> err = init(path);
  VRMR_CHECK_MSG(!err.has_value(), err->message);
}

Expected<BrickFileReader, IoError> BrickFileReader::open(
    const std::filesystem::path& path) {
  BrickFileReader reader;
  if (std::optional<IoError> err = reader.init(path)) {
    return make_unexpected(std::move(*err));
  }
  return reader;
}

std::optional<IoError> BrickFileReader::init(const std::filesystem::path& path) {
  in_.open(path, std::ios::binary);
  if (!in_.good()) {
    return IoError{IoError::Code::OpenFailed, "cannot open " + path.string()};
  }
  const auto magic = read_pod<std::uint32_t>(in_);
  if (!in_.good() || magic != kBrickFileMagic) {
    return IoError{IoError::Code::BadMagic,
                   "bad magic in " + path.string() + " (not a VRBF file)"};
  }
  const auto version = read_pod<std::uint32_t>(in_);
  if (!in_.good() || version < 1 || version > kBrickFileVersion) {
    return IoError{IoError::Code::BadVersion,
                   "unsupported VRBF version " + std::to_string(version)};
  }
  header_.version = version;
  header_.volume_dims.x = static_cast<int>(read_pod<std::uint32_t>(in_));
  header_.volume_dims.y = static_cast<int>(read_pod<std::uint32_t>(in_));
  header_.volume_dims.z = static_cast<int>(read_pod<std::uint32_t>(in_));
  header_.brick_size = static_cast<int>(read_pod<std::uint32_t>(in_));
  header_.ghost = static_cast<int>(read_pod<std::uint32_t>(in_));
  const auto count = read_pod<std::uint32_t>(in_);
  if (!in_.good()) {
    return IoError{IoError::Code::TruncatedDirectory,
                   "truncated header in " + path.string()};
  }
  header_.bricks.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t bad_codec = 0;
    header_.bricks.push_back(read_record(in_, version, &bad_codec));
    if (bad_codec != 0) {
      return IoError{IoError::Code::CorruptPayload,
                     "unknown codec id " + std::to_string(bad_codec) +
                         " in directory of " + path.string()};
    }
  }
  if (!in_.good()) {
    return IoError{IoError::Code::TruncatedDirectory,
                   "truncated directory in " + path.string()};
  }
  return std::nullopt;
}

const BrickRecord& BrickFileReader::record(int index) const {
  VRMR_CHECK_MSG(index >= 0 && index < num_bricks(), "brick index " << index
                                                                    << " out of range");
  return header_.bricks[static_cast<size_t>(index)];
}

std::vector<float> BrickFileReader::read_brick(int index) {
  (void)record(index);  // preserves the out-of-range CheckError contract
  Expected<std::vector<float>, IoError> result = try_read_brick(index);
  VRMR_CHECK_MSG(result.has_value(), result.error().message);
  return std::move(result.value());
}

Expected<std::vector<float>, IoError> BrickFileReader::try_read_brick(int index) {
  if (index < 0 || index >= num_bricks()) {
    return make_unexpected(IoError{
        IoError::Code::BadIndex,
        "brick index " + std::to_string(index) + " out of range"});
  }
  const BrickRecord& rec = header_.bricks[static_cast<size_t>(index)];
  // A prior failed read leaves the stream in a fail state; clear it so
  // one truncated brick does not poison reads of the intact ones.
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(rec.offset));
  if (rec.codec == compress::Codec::None) {
    std::vector<float> voxels(rec.bytes / sizeof(float));
    in_.read(reinterpret_cast<char*>(voxels.data()),
             static_cast<std::streamsize>(rec.bytes));
    if (!in_.good()) {
      in_.clear();
      return make_unexpected(IoError{
          IoError::Code::TruncatedPayload,
          "short read for brick " + std::to_string(index)});
    }
    return voxels;
  }
  std::vector<std::uint8_t> stream(rec.bytes);
  in_.read(reinterpret_cast<char*>(stream.data()),
           static_cast<std::streamsize>(rec.bytes));
  if (!in_.good()) {
    in_.clear();
    return make_unexpected(IoError{
        IoError::Code::TruncatedPayload,
        "short read for brick " + std::to_string(index)});
  }
  const std::unique_ptr<compress::BrickCodec> coder = compress::make_codec(rec.codec);
  if (coder == nullptr) {
    return make_unexpected(IoError{
        IoError::Code::CorruptPayload,
        "no codec for brick " + std::to_string(index)});
  }
  try {
    return coder->decode(stream, rec.logical_bytes / sizeof(float));
  } catch (const CheckError& e) {
    return make_unexpected(IoError{
        IoError::Code::CorruptPayload,
        "brick " + std::to_string(index) + " failed to decode: " + e.what()});
  }
}

}  // namespace vrmr::io
