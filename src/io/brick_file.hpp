#pragma once

// On-disk bricked-volume file format ("VRBF").
//
// The paper bricks volumes offline and streams bricks to mappers;
// bricking time is excluded from its measurements (§5). This format is
// the offline artifact: a self-describing header, a brick directory
// (grid position, padded dims, byte offset/size per brick), then raw
// little-endian float voxel payloads. Random access to any brick is a
// single directory lookup plus one contiguous read — which is what the
// out-of-core streamer exploits.
//
// Layout (all integers little-endian):
//   u32 magic 'VRBF' (0x46425256)   u32 version (1)
//   u32 dims.x dims.y dims.z        u32 brick_size (core voxels/side)
//   u32 ghost                       u32 num_bricks
//   num_bricks × BrickRecord { u32 grid.x,y,z; u32 dims.x,y,z; u64 offset; u64 bytes }
//   payload...

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/vec.hpp"

namespace vrmr::io {

inline constexpr std::uint32_t kBrickFileMagic = 0x46425256u;  // "VRBF"
inline constexpr std::uint32_t kBrickFileVersion = 1;

struct BrickRecord {
  Int3 grid_pos;        // brick coordinates within the brick grid
  Int3 padded_dims;     // stored voxels incl. ghost shell (edge-clamped)
  std::uint64_t offset = 0;  // absolute file offset of the payload
  std::uint64_t bytes = 0;   // payload size (padded_dims.volume()*4)
};

struct BrickFileHeader {
  Int3 volume_dims;
  int brick_size = 0;  // core voxels per side
  int ghost = 0;
  std::vector<BrickRecord> bricks;
};

/// Streams bricks into a VRBF file. Usage: construct, append_brick for
/// every brick (any order), finalize (writes the directory).
class BrickFileWriter {
 public:
  BrickFileWriter(const std::filesystem::path& path, Int3 volume_dims, int brick_size,
                  int ghost, int num_bricks);
  ~BrickFileWriter();

  BrickFileWriter(const BrickFileWriter&) = delete;
  BrickFileWriter& operator=(const BrickFileWriter&) = delete;

  void append_brick(Int3 grid_pos, Int3 padded_dims, const std::vector<float>& voxels);

  /// Rewrites the directory with final offsets and closes the file.
  void finalize();

 private:
  std::ofstream out_;
  BrickFileHeader header_;
  int expected_bricks_;
  bool finalized_ = false;
};

/// Random-access reader over a VRBF file.
class BrickFileReader {
 public:
  explicit BrickFileReader(const std::filesystem::path& path);

  const BrickFileHeader& header() const { return header_; }
  int num_bricks() const { return static_cast<int>(header_.bricks.size()); }

  /// Reads brick `index`'s voxel payload.
  std::vector<float> read_brick(int index);

  const BrickRecord& record(int index) const;

 private:
  std::ifstream in_;
  BrickFileHeader header_;
};

}  // namespace vrmr::io
