#pragma once

// On-disk bricked-volume file format ("VRBF").
//
// The paper bricks volumes offline and streams bricks to mappers;
// bricking time is excluded from its measurements (§5). This format is
// the offline artifact: a self-describing header, a brick directory
// (grid position, padded dims, codec, byte offset/size per brick), then
// per-brick payloads. Random access to any brick is a single directory
// lookup plus one contiguous read — which is what the out-of-core
// streamer exploits.
//
// Version 2 adds per-brick compression: the directory records a codec
// id and the logical (decompressed) payload size, and RLE-coded bricks
// store the real encoded stream — fewer disk bytes, bit-exact
// round-trip through read_brick(). The zfp-style codec is size-MODELED
// in the simulation only (a lossless file cannot actually shrink to the
// modeled rate), so the writer accepts None or Rle. The reader accepts
// v1 and v2 files; v1 records load as uncompressed.
//
// Layout (all integers little-endian):
//   u32 magic 'VRBF' (0x46425256)   u32 version (2)
//   u32 dims.x dims.y dims.z        u32 brick_size (core voxels/side)
//   u32 ghost                       u32 num_bricks
//   num_bricks × BrickRecord:
//     v1: { u32 grid.x,y,z; u32 dims.x,y,z; u64 offset; u64 bytes }
//     v2: { u32 grid.x,y,z; u32 dims.x,y,z; u32 codec; u32 reserved;
//           u64 offset; u64 bytes; u64 logical_bytes }
//   payload...

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "compress/brick_codec.hpp"
#include "util/expected.hpp"
#include "util/vec.hpp"

namespace vrmr::io {

/// Recoverable I/O failure. A corrupt or truncated VRBF file is a
/// servable condition for the farm (fall back to a peer or degrade),
/// not a process abort — read paths return these instead of CHECKing.
struct IoError {
  enum class Code {
    OpenFailed,          // file missing or unreadable
    BadMagic,            // not a VRBF file
    BadVersion,          // VRBF version outside [1, kBrickFileVersion]
    TruncatedDirectory,  // header/directory cut short
    TruncatedPayload,    // brick payload cut short (truncated file)
    CorruptPayload,      // payload present but fails to decode
    BadIndex,            // brick index outside the directory
  };
  Code code = Code::OpenFailed;
  std::string message;
};

inline constexpr std::uint32_t kBrickFileMagic = 0x46425256u;  // "VRBF"
inline constexpr std::uint32_t kBrickFileVersion = 2;

struct BrickRecord {
  Int3 grid_pos;        // brick coordinates within the brick grid
  Int3 padded_dims;     // stored voxels incl. ghost shell (edge-clamped)
  /// Payload coding. Rle payloads hold the codec's encoded stream
  /// (which falls back to raw bytes internally when incompressible —
  /// decode handles both); None payloads hold raw little-endian floats.
  compress::Codec codec = compress::Codec::None;
  std::uint64_t offset = 0;  // absolute file offset of the payload
  std::uint64_t bytes = 0;   // STORED payload size (what one read costs)
  /// Decompressed size (padded_dims.volume()*4); == bytes for None.
  std::uint64_t logical_bytes = 0;
};

struct BrickFileHeader {
  Int3 volume_dims;
  int brick_size = 0;  // core voxels per side
  int ghost = 0;
  std::uint32_t version = kBrickFileVersion;  // as read from the file
  std::vector<BrickRecord> bricks;
};

/// Streams bricks into a VRBF file. Usage: construct, append_brick for
/// every brick (any order), finalize (writes the directory).
class BrickFileWriter {
 public:
  /// `codec` must be None or Rle (zfp-style sizes are modeled in-sim
  /// only; a lossless file cannot store them).
  BrickFileWriter(const std::filesystem::path& path, Int3 volume_dims, int brick_size,
                  int ghost, int num_bricks,
                  compress::Codec codec = compress::Codec::None);
  ~BrickFileWriter();

  BrickFileWriter(const BrickFileWriter&) = delete;
  BrickFileWriter& operator=(const BrickFileWriter&) = delete;

  void append_brick(Int3 grid_pos, Int3 padded_dims, const std::vector<float>& voxels);

  /// Rewrites the directory with final offsets and closes the file.
  void finalize();

 private:
  std::ofstream out_;
  BrickFileHeader header_;
  int expected_bricks_;
  compress::Codec codec_;
  std::unique_ptr<compress::BrickCodec> coder_;  // null for None
  bool finalized_ = false;
};

/// Random-access reader over a VRBF file (v1 or v2).
class BrickFileReader {
 public:
  /// Throwing constructor (back-compat): CHECK-fails on a missing or
  /// malformed file. Prefer open() where a bad file must be survivable.
  explicit BrickFileReader(const std::filesystem::path& path);

  /// Recoverable open: returns the parse failure instead of throwing.
  static Expected<BrickFileReader, IoError> open(const std::filesystem::path& path);

  BrickFileReader(BrickFileReader&&) = default;
  BrickFileReader& operator=(BrickFileReader&&) = default;

  const BrickFileHeader& header() const { return header_; }
  int num_bricks() const { return static_cast<int>(header_.bricks.size()); }

  /// Reads brick `index`'s voxel payload, decoding compressed bricks —
  /// always returns the logical voxels, bit-exact with what was
  /// appended. record(index).bytes is what the read itself moved.
  /// Throws CheckError on a short or corrupt read (back-compat).
  std::vector<float> read_brick(int index);

  /// Recoverable read: a truncated or corrupt payload comes back as an
  /// IoError and the reader stays usable — other bricks still read.
  Expected<std::vector<float>, IoError> try_read_brick(int index);

  const BrickRecord& record(int index) const;

 private:
  BrickFileReader() = default;
  /// Parses the header + directory; returns the failure, if any.
  std::optional<IoError> init(const std::filesystem::path& path);

  std::ifstream in_;
  BrickFileHeader header_;
};

}  // namespace vrmr::io
