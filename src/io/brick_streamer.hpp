#pragma once

// Prefetching out-of-core brick reader.
//
// The paper's library "handles all I/O, thus allowing the user to focus
// on the computation" and supports out-of-core rendering by streaming
// bricks (§1). This component is the host-side half of that promise: it
// walks a VRBF file in a caller-supplied schedule, keeps a bounded
// window of bricks resident (prefetched ahead of consumption), and
// evicts in FIFO order — so a volume far larger than host memory
// streams through a fixed-size working set.
//
// Functional only (real file reads); the simulated *cost* of reads in
// experiments is charged by io::VirtualDisk inside the MapReduce
// runtime. Used by the out-of-core example and tests.

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "io/brick_file.hpp"
#include "util/check.hpp"

namespace vrmr::io {

class BrickStreamer {
 public:
  /// Streams bricks of `reader` in `schedule` order, holding at most
  /// `window` bricks resident. The reader must outlive the streamer.
  BrickStreamer(BrickFileReader& reader, std::vector<int> schedule, int window = 2);

  /// Bricks remaining (incl. the current one).
  std::size_t remaining() const { return schedule_.size() - cursor_; }
  bool done() const { return cursor_ >= schedule_.size(); }

  /// Index (into the file) of the next brick the consumer will get.
  int next_brick() const {
    VRMR_CHECK_MSG(!done(), "stream exhausted");
    return schedule_[cursor_];
  }

  /// Take ownership of the next brick's voxels (loads + prefetches as
  /// needed). The brick leaves the resident window; a later repeat in
  /// the schedule re-reads it. Throws CheckError if the brick is
  /// truncated or corrupt (back-compat).
  std::vector<float> consume();

  /// Recoverable consume: a truncated/corrupt brick comes back as an
  /// IoError, the bad brick is retired from the schedule, and the
  /// stream continues past it — one bad brick never kills the stream.
  Expected<std::vector<float>, IoError> try_consume();

  /// Currently resident brick count (<= window).
  std::size_t resident() const { return cache_.size(); }
  /// Total bricks read from the file so far (each exactly once per
  /// scheduled appearance unless still cached).
  std::uint64_t reads() const { return reads_; }
  /// STORED bytes moved off disk — for compressed (VRBF v2) files this
  /// is the encoded stream size, smaller than the voxels delivered.
  std::uint64_t bytes_read() const { return bytes_read_; }

 private:
  void fill_window();
  /// Reads `brick` into the window; returns the read failure, if any
  /// (the brick is simply not cached — nothing is evicted for it).
  std::optional<IoError> load(int brick);

  BrickFileReader& reader_;
  std::vector<int> schedule_;
  std::size_t cursor_ = 0;
  std::size_t prefetch_cursor_ = 0;  // schedule position of next load
  int window_;

  std::deque<int> residency_order_;           // FIFO eviction
  std::map<int, std::vector<float>> cache_;   // brick id -> voxels
  std::uint64_t reads_ = 0;
  std::uint64_t bytes_read_ = 0;
};

}  // namespace vrmr::io
