#pragma once

// Simulated per-node disk.
//
// Calibrated to the paper's measured anchor: "loading a 64³ block from
// disk takes approximately 20 ms on our cluster" (§3). With a 1 MiB
// float brick, 5 ms seek + 75 MB/s sustained reproduces that point.
// Reads on one node serialize (single spindle); different nodes'
// disks are independent.

#include <cstdint>
#include <functional>

#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace vrmr::io {

struct DiskModel {
  double seek_latency_s = 5e-3;
  double bandwidth_Bps = 75e6;

  double read_time(std::uint64_t bytes) const {
    return seek_latency_s + static_cast<double>(bytes) / bandwidth_Bps;
  }
};

class VirtualDisk {
 public:
  VirtualDisk(sim::Engine& engine, DiskModel model, std::string name)
      : model_(model), resource_(engine, std::move(name)) {}

  const DiskModel& model() const { return model_; }

  /// Queue a read of `bytes`; `on_complete` fires when it finishes.
  void read(std::uint64_t bytes, std::function<void()> on_complete) {
    bytes_read_ += bytes;
    resource_.acquire(model_.read_time(bytes),
                      [cb = std::move(on_complete)](sim::SimTime, sim::SimTime) {
                        if (cb) cb();
                      });
  }

  std::uint64_t bytes_read() const { return bytes_read_; }
  sim::Resource& resource() { return resource_; }

 private:
  DiskModel model_;
  sim::Resource resource_;
  std::uint64_t bytes_read_ = 0;
};

}  // namespace vrmr::io
