#include "compress/brick_codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/check.hpp"

namespace vrmr::compress {

namespace {

std::uint32_t bits_of(float v) {
  std::uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

float float_of(std::uint32_t u) {
  float v;
  std::memcpy(&v, &u, sizeof(v));
  return v;
}

void append_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  const auto at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

std::uint32_t read_u32(const std::vector<std::uint8_t>& in, std::size_t at) {
  std::uint32_t v;
  std::memcpy(&v, in.data() + at, sizeof(v));
  return v;
}

std::vector<std::uint8_t> raw_bytes(const std::vector<float>& voxels) {
  std::vector<std::uint8_t> out(voxels.size() * sizeof(float));
  if (!out.empty()) std::memcpy(out.data(), voxels.data(), out.size());
  return out;
}

std::vector<float> raw_floats(const std::vector<std::uint8_t>& stream,
                              std::size_t voxel_count) {
  std::vector<float> out(voxel_count);
  if (voxel_count > 0)
    std::memcpy(out.data(), stream.data(), voxel_count * sizeof(float));
  return out;
}

}  // namespace

const char* to_string(Codec codec) {
  switch (codec) {
    case Codec::None: return "none";
    case Codec::Rle: return "rle";
    case Codec::ZfpStyle: return "zfp-style";
  }
  return "?";
}

// --- RleCodec ----------------------------------------------------------------

std::vector<std::uint8_t> RleCodec::encode(
    const std::vector<float>& voxels) const {
  // Runs compare 32-bit patterns, not float values: NaN payloads and
  // -0.0 vs +0.0 must survive the round trip bit-exactly.
  std::vector<std::uint8_t> out;
  std::size_t i = 0;
  while (i < voxels.size()) {
    const std::uint32_t pattern = bits_of(voxels[i]);
    std::uint32_t run = 1;
    while (i + run < voxels.size() && run < 0xFFFFFFFFu &&
           bits_of(voxels[i + run]) == pattern) {
      ++run;
    }
    append_u32(&out, run);
    append_u32(&out, pattern);
    i += run;
    // An RLE stream must be STRICTLY smaller than raw — decode keys the
    // raw fallback on size equality — so bail to raw the moment pairs
    // stop paying for themselves.
    if (out.size() >= voxels.size() * sizeof(float)) return raw_bytes(voxels);
  }
  if (out.size() >= voxels.size() * sizeof(float)) return raw_bytes(voxels);
  return out;
}

std::vector<float> RleCodec::decode(const std::vector<std::uint8_t>& stream,
                                    std::size_t voxel_count) const {
  if (stream.size() == voxel_count * sizeof(float))
    return raw_floats(stream, voxel_count);  // incompressible fallback
  VRMR_CHECK_MSG(stream.size() % 8 == 0,
                 "RLE stream of " << stream.size() << " bytes is neither raw ("
                                  << voxel_count * sizeof(float)
                                  << ") nor (count, value) pairs");
  std::vector<float> out;
  out.reserve(voxel_count);
  for (std::size_t at = 0; at < stream.size(); at += 8) {
    const std::uint32_t run = read_u32(stream, at);
    const float value = float_of(read_u32(stream, at + 4));
    out.insert(out.end(), run, value);
  }
  VRMR_CHECK_MSG(out.size() == voxel_count,
                 "RLE stream decoded " << out.size() << " voxels, expected "
                                       << voxel_count);
  return out;
}

std::uint64_t RleCodec::stored_bytes(const std::vector<float>& voxels,
                                     Int3 /*dims*/) const {
  return static_cast<std::uint64_t>(encode(voxels).size());
}

// --- ZfpStyleCodec -----------------------------------------------------------

std::vector<std::uint8_t> ZfpStyleCodec::encode(
    const std::vector<float>& voxels) const {
  return raw_bytes(voxels);  // modeled codec: the ratio is in stored_bytes()
}

std::vector<float> ZfpStyleCodec::decode(
    const std::vector<std::uint8_t>& stream, std::size_t voxel_count) const {
  VRMR_CHECK_MSG(stream.size() == voxel_count * sizeof(float),
                 "zfp-style stream is the raw payload; got " << stream.size()
                     << " bytes for " << voxel_count << " voxels");
  return raw_floats(stream, voxel_count);
}

int ZfpStyleCodec::bits_for_width(double width) {
  if (width <= 0.0) return 1;  // uniform cell: the header carries the value
  const int bits = static_cast<int>(std::ceil(32.0 + std::log2(width)));
  return std::clamp(bits, 1, 32);
}

std::uint64_t ZfpStyleCodec::modeled_bytes(const lod::BrickOccupancy& occupancy,
                                           Int3 padded_dims, int cell_voxels) {
  const std::uint64_t logical =
      static_cast<std::uint64_t>(padded_dims.volume()) * sizeof(float);
  std::uint64_t stored = 0;
  const Int3 cells = occupancy.cells;
  for (int cz = 0; cz < cells.z; ++cz) {
    for (int cy = 0; cy < cells.y; ++cy) {
      for (int cx = 0; cx < cells.x; ++cx) {
        const std::size_t c = occupancy.cell_index(Int3{cx, cy, cz});
        const double width = static_cast<double>(occupancy.cell_max[c]) -
                             static_cast<double>(occupancy.cell_min[c]);
        const std::int64_t nx =
            std::min((cx + 1) * cell_voxels, padded_dims.x) - cx * cell_voxels;
        const std::int64_t ny =
            std::min((cy + 1) * cell_voxels, padded_dims.y) - cy * cell_voxels;
        const std::int64_t nz =
            std::min((cz + 1) * cell_voxels, padded_dims.z) - cz * cell_voxels;
        const std::uint64_t n = static_cast<std::uint64_t>(nx * ny * nz);
        const std::uint64_t bits =
            n * static_cast<std::uint64_t>(bits_for_width(width));
        stored += 8 + (bits + 7) / 8;  // 8-byte cell header (min + scale)
      }
    }
  }
  // A full-range (noise) brick models past raw size once headers are
  // counted; stored bytes must never exceed logical bytes or byte
  // budgets computed on logical sizes would underflow.
  return std::min(stored, logical);
}

std::uint64_t ZfpStyleCodec::stored_bytes(const std::vector<float>& voxels,
                                          Int3 dims) const {
  VRMR_CHECK_MSG(static_cast<std::int64_t>(voxels.size()) == dims.volume(),
                 "payload of " << voxels.size() << " voxels does not match dims "
                               << dims);
  // Build the same cell thumbnail lod::OccupancyIndex would (x-fastest
  // voxels, cells of kCellVoxels per side) and feed the size model.
  lod::BrickOccupancy occ;
  occ.cells = Int3{(dims.x + kCellVoxels - 1) / kCellVoxels,
                   (dims.y + kCellVoxels - 1) / kCellVoxels,
                   (dims.z + kCellVoxels - 1) / kCellVoxels};
  const std::size_t num_cells = static_cast<std::size_t>(occ.cells.volume());
  occ.cell_min.assign(num_cells, std::numeric_limits<float>::max());
  occ.cell_max.assign(num_cells, std::numeric_limits<float>::lowest());
  for (int z = 0; z < dims.z; ++z) {
    for (int y = 0; y < dims.y; ++y) {
      for (int x = 0; x < dims.x; ++x) {
        const float v =
            voxels[(static_cast<std::size_t>(z) * dims.y + y) * dims.x + x];
        const std::size_t c = occ.cell_index(
            Int3{x / kCellVoxels, y / kCellVoxels, z / kCellVoxels});
        occ.cell_min[c] = std::min(occ.cell_min[c], v);
        occ.cell_max[c] = std::max(occ.cell_max[c], v);
      }
    }
  }
  return modeled_bytes(occ, dims, kCellVoxels);
}

// --- factory + plan ----------------------------------------------------------

std::unique_ptr<BrickCodec> make_codec(Codec codec) {
  switch (codec) {
    case Codec::None: return nullptr;
    case Codec::Rle: return std::make_unique<RleCodec>();
    case Codec::ZfpStyle: return std::make_unique<ZfpStyleCodec>();
  }
  return nullptr;
}

CompressionPlan analyze(const volren::Volume& volume,
                        const volren::BrickLayout& layout,
                        const BrickCodec& codec,
                        const lod::OccupancyIndex* occupancy) {
  CompressionPlan plan;
  plan.codec = codec.id();
  plan.cost = codec.cost();
  plan.bricks.reserve(static_cast<std::size_t>(layout.num_bricks()));
  const bool thumbnails_usable =
      codec.id() == Codec::ZfpStyle && occupancy != nullptr &&
      occupancy->num_bricks() == layout.num_bricks();
  for (const volren::BrickInfo& info : layout.bricks()) {
    BrickCompression bc;
    bc.logical_bytes = info.device_bytes();
    if (thumbnails_usable) {
      bc.stored_bytes = ZfpStyleCodec::modeled_bytes(
          occupancy->brick(info.id), info.padded_dims, occupancy->cell_voxels());
    } else {
      const std::vector<float> voxels =
          volume.materialize(info.padded_origin, info.padded_dims);
      bc.stored_bytes = codec.stored_bytes(voxels, info.padded_dims);
    }
    bc.stored_bytes = std::min(bc.stored_bytes, bc.logical_bytes);
    // Quanta are charged against logical bytes: the expand pass touches
    // every decompressed voxel however small the stream was.
    bc.compress_s =
        plan.cost.compress_s_per_byte * static_cast<double>(bc.logical_bytes);
    bc.decompress_s =
        plan.cost.decompress_s_per_byte * static_cast<double>(bc.logical_bytes);
    plan.logical_total += bc.logical_bytes;
    plan.stored_total += bc.stored_bytes;
    plan.bricks.push_back(bc);
  }
  return plan;
}

}  // namespace vrmr::compress
