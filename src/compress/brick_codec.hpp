#pragma once

// Brick compression codecs and the per-layout compression plan.
//
// Two deterministic codecs, both lossless-by-construction in the
// simulation (payload values round-trip bit-exactly; only sizes and
// modeled times change):
//
//   RleCodec      — real run-length coding over the brick's voxel bit
//                   patterns (uniform/empty runs collapse to one
//                   (count, value) pair). The encoded stream is what a
//                   VRBF v2 file actually stores, so disk bytes shrink
//                   for real. Incompressible payloads fall back to the
//                   raw stream inside the format itself (an RLE stream
//                   is always strictly smaller than raw; equal size
//                   means raw), so stored bytes never exceed logical
//                   bytes.
//   ZfpStyleCodec — zfp-style fixed-rate block coding, *modeled*: the
//                   per-brick ratio derives from the occupancy cell
//                   thumbnail intervals lod::OccupancyIndex already
//                   exports (bits/voxel from each cell's [min, max]
//                   width — sparse supernova bricks compress hard,
//                   full-range noise approaches 1.0x and clamps at
//                   logical). encode/decode pass the raw floats
//                   through; only the stored-size and time models
//                   differ from RLE.
//
// Each codec carries a CodecCostModel (compress/decompress seconds per
// LOGICAL byte on a GPU lane); mr::FramePlan charges the decompress
// quantum on the brick's GPU stream between H2D and the map kernel.
//
// CompressionPlan is the once-per-(volume, layout, codec) analysis the
// service memoizes: per-brick logical/stored bytes and quantum
// durations, indexed by brick id.

#include <cstdint>
#include <memory>
#include <vector>

#include "lod/occupancy.hpp"
#include "volren/bricking.hpp"
#include "volren/volume.hpp"

namespace vrmr::compress {

enum class Codec : std::uint32_t {
  None = 0,
  Rle = 1,
  ZfpStyle = 2,
};

const char* to_string(Codec codec);

/// Seconds per LOGICAL byte on a GPU lane. Charged against the
/// decompressed size: a 2048-voxel brick takes the same kernel passes
/// however well it compressed.
struct CodecCostModel {
  double compress_s_per_byte = 0.0;
  double decompress_s_per_byte = 0.0;
};

class BrickCodec {
 public:
  virtual ~BrickCodec() = default;

  virtual Codec id() const = 0;
  virtual const char* name() const = 0;
  virtual CodecCostModel cost() const = 0;

  /// Encode a brick payload. The returned stream round-trips through
  /// decode() bit-exactly. For modeled codecs this is the raw bytes
  /// (the modeled ratio lives in stored_bytes()).
  virtual std::vector<std::uint8_t> encode(
      const std::vector<float>& voxels) const = 0;

  /// Inverse of encode(). `voxel_count` is the logical payload size
  /// (streams are not self-describing; the brick record carries it).
  virtual std::vector<float> decode(const std::vector<std::uint8_t>& stream,
                                    std::size_t voxel_count) const = 0;

  /// Stored bytes for this payload — what the cache holds, the fabric
  /// ships and (for real codecs) the disk stores. Always
  /// <= voxels.size() * sizeof(float): a ratio ~1.0 payload must not
  /// blow a byte budget computed on logical sizes.
  virtual std::uint64_t stored_bytes(const std::vector<float>& voxels,
                                     Int3 dims) const = 0;
};

/// Real RLE over the payload's 32-bit patterns (NaN and -0.0 safe).
class RleCodec final : public BrickCodec {
 public:
  Codec id() const override { return Codec::Rle; }
  const char* name() const override { return "rle"; }
  CodecCostModel cost() const override {
    // GPU-lane RLE: ~25 GB/s scan-compress, ~160 GB/s expand.
    return CodecCostModel{4.0e-11, 6.25e-12};
  }
  std::vector<std::uint8_t> encode(
      const std::vector<float>& voxels) const override;
  std::vector<float> decode(const std::vector<std::uint8_t>& stream,
                            std::size_t voxel_count) const override;
  std::uint64_t stored_bytes(const std::vector<float>& voxels,
                             Int3 dims) const override;
};

/// zfp-style fixed-rate block codec, size-modeled from cell intervals.
class ZfpStyleCodec final : public BrickCodec {
 public:
  /// Thumbnail cell edge used when no occupancy index supplies one.
  static constexpr int kCellVoxels = 8;

  Codec id() const override { return Codec::ZfpStyle; }
  const char* name() const override { return "zfp-style"; }
  CodecCostModel cost() const override {
    // Transform coding costs more per byte than RLE both ways.
    return CodecCostModel{2.5e-11, 1.25e-11};
  }
  std::vector<std::uint8_t> encode(
      const std::vector<float>& voxels) const override;
  std::vector<float> decode(const std::vector<std::uint8_t>& stream,
                            std::size_t voxel_count) const override;
  std::uint64_t stored_bytes(const std::vector<float>& voxels,
                             Int3 dims) const override;

  /// Modeled stored bytes straight from an occupancy thumbnail (no
  /// payload materialization): per-cell bits/voxel from the cell's
  /// [min, max] width, plus an 8-byte per-cell header, clamped to
  /// logical size.
  static std::uint64_t modeled_bytes(const lod::BrickOccupancy& occupancy,
                                     Int3 padded_dims, int cell_voxels);

  /// Fixed-rate bits per voxel for a cell whose values span `width`
  /// (values are normalized to [0, 1]): 32 + log2(width) rounded up,
  /// clamped to [1, 32] — zero-width cells store one bit, full-range
  /// cells stay at raw precision.
  static int bits_for_width(double width);
};

/// nullptr for Codec::None.
std::unique_ptr<BrickCodec> make_codec(Codec codec);

/// Per-brick compression outcome, all the simulation layers consume.
struct BrickCompression {
  std::uint64_t logical_bytes = 0;  // padded voxels * sizeof(float)
  std::uint64_t stored_bytes = 0;   // <= logical_bytes
  double compress_s = 0.0;          // GPU-lane quantum durations
  double decompress_s = 0.0;
};

/// Once-per-(volume, layout, codec) analysis, indexed by brick id.
struct CompressionPlan {
  Codec codec = Codec::None;
  CodecCostModel cost;
  std::vector<BrickCompression> bricks;
  std::uint64_t logical_total = 0;
  std::uint64_t stored_total = 0;

  const BrickCompression& brick(int id) const {
    return bricks.at(static_cast<std::size_t>(id));
  }
  /// logical / stored (>= 1.0); 1.0 when empty.
  double ratio() const {
    return stored_total > 0 ? static_cast<double>(logical_total) /
                                  static_cast<double>(stored_total)
                            : 1.0;
  }
};

/// Analyze every brick of (volume, layout) under `codec`. When an
/// occupancy index for the same layout is supplied, the zfp-style size
/// model reads its thumbnail intervals instead of re-scanning voxels
/// (RLE always materializes: its size is the real encoded stream).
CompressionPlan analyze(const volren::Volume& volume,
                        const volren::BrickLayout& layout,
                        const BrickCodec& codec,
                        const lod::OccupancyIndex* occupancy = nullptr);

}  // namespace vrmr::compress
