#include "obs/critical_path.hpp"

#include <algorithm>
#include <cstdio>

#include "mr/frame_plan.hpp"
#include "util/check.hpp"

namespace vrmr::obs {

const char* to_string(PathSegment segment) {
  switch (segment) {
    case PathSegment::QueueWait: return "queue_wait";
    case PathSegment::StageMap: return "stage_map";
    case PathSegment::Send: return "send";
    case PathSegment::SortWait: return "sort_wait";
    case PathSegment::Sort: return "sort";
    case PathSegment::Reduce: return "reduce";
    case PathSegment::Delivery: return "delivery";
  }
  return "?";
}

PathSegment CriticalPath::dominant() const {
  int best = 0;
  double best_s = -1.0;
  for (int i = 0; i < kNumPathSegments; ++i) {
    const double s = boundary_s[static_cast<std::size_t>(i) + 1] -
                     boundary_s[static_cast<std::size_t>(i)];
    if (s > best_s) {
      best_s = s;
      best = i;
    }
  }
  return static_cast<PathSegment>(best);
}

std::string CriticalPath::to_string() const {
  if (!valid) return "<invalid critical path>";
  const double total = total_s();
  std::string out;
  char buf[96];
  for (int i = 0; i < kNumPathSegments; ++i) {
    const auto seg = static_cast<PathSegment>(i);
    const double s = segment_s(seg);
    std::snprintf(buf, sizeof(buf), "%s%s %.3fms (%.0f%%)", i ? " | " : "",
                  obs::to_string(seg), s * 1e3,
                  total > 0.0 ? 100.0 * s / total : 0.0);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), " | r*=%d dominant=%s", critical_reducer,
                obs::to_string(dominant()));
  out += buf;
  return out;
}

CriticalPath analyze_plan(const mr::FramePlan& plan, double arrival_s,
                          double start_s, double finish_s) {
  CriticalPath path;
  if (!plan.finished() || plan.num_reducers() == 0) return path;

  // The critical reducer: the tile that finished last. Every other
  // reducer's chain completed earlier, so this chain *is* the frame.
  int critical = 0;
  for (int r = 1; r < plan.num_reducers(); ++r) {
    if (plan.tile_finish_s(r) > plan.tile_finish_s(critical)) critical = r;
  }
  path.critical_reducer = critical;

  // Raw absolute boundaries along r*'s dependency chain. t_map_done is
  // plan-relative; everything else is already absolute engine time.
  const double raw[kNumPathSegments + 1] = {
      arrival_s,
      start_s,
      plan.t0_s() + plan.stats().t_map_done,
      plan.reducer_ready_s(critical),
      plan.sort_issue_s(critical),
      plan.sort_done_s(critical),
      plan.tile_finish_s(critical),
      finish_s,
  };

  // Monotone forward clamp: per-(mapper, reducer) final flushes can
  // make r* ready before the globally last map quantum ends; clamping
  // collapses the affected segment to zero while keeping the interval
  // partition exact (t7 - t0 == sum of segments, by construction).
  path.boundary_s[0] = raw[0];
  for (int i = 1; i <= kNumPathSegments; ++i) {
    path.boundary_s[static_cast<std::size_t>(i)] = std::max(
        path.boundary_s[static_cast<std::size_t>(i) - 1], raw[i]);
  }
  // The frame cannot be delivered before it finished; a finish stamp
  // below the tile time would mean the caller passed stamps from a
  // different frame.
  VRMR_CHECK(path.boundary_s[kNumPathSegments] == finish_s);
  path.valid = true;
  return path;
}

}  // namespace vrmr::obs
