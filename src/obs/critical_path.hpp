#pragma once

// Per-frame critical-path attribution: the per-frame version of the
// paper's Fig. 3 stage breakdown. Given a finished FramePlan plus the
// serving-layer arrival/start/finish stamps, decompose the frame's
// end-to-end latency into seven segments that sum *exactly* to
// finish - arrival (an interval partition over shared boundaries, so
// the identity holds to the last ulp — tested on the 4 seed scenes).
//
// The path follows the dependency chain of the critical reducer r*
// (the reducer whose tile finished last — every other chain ended
// earlier, so r*'s chain is what the frame's latency consists of):
//
//   t0 arrival   -> QueueWait -> t1 first quantum issued
//   t1           -> StageMap  -> t2 last map quantum done (disk/H2D/kernel/D2H)
//   t2           -> Send      -> t3 r*'s inbox complete (barrier reached)
//   t3           -> SortWait  -> t4 r*'s sort quantum issued
//   t4           -> Sort      -> t5 r*'s sort done
//   t5           -> Reduce    -> t6 r*'s tile finished
//   t6           -> Delivery  -> t7 frame delivered
//
// Boundaries are clamped monotonically forward (t[i+1] = max(t[i],
// raw)): with per-(mapper, reducer) final-flush readiness, r* can
// become ready *before* the globally last map quantum ends, in which
// case the Send segment collapses to zero instead of going negative.
//
// Compressed serving (ServiceConfig::compression != None) folds into
// StageMap by construction: the decompress quantum is charged on the
// SAME gpu stream whose map-kernel completion stamps t2, strictly
// before the kernel (hit path: decompress -> map; miss path: disk ->
// H2D -> decompress -> map). No new boundary is introduced, so the
// seven segments still partition finish - arrival exactly — StageMap
// simply absorbs the expansion time, the same way it already absorbs
// disk and H2D. Per-frame decompress seconds are reported separately
// in mr::JobStats::decompress_s_total.

#include <array>
#include <cstdint>
#include <string>

namespace vrmr::mr {
class FramePlan;
}  // namespace vrmr::mr

namespace vrmr::obs {

enum class PathSegment {
  QueueWait = 0,
  StageMap,
  Send,
  SortWait,
  Sort,
  Reduce,
  Delivery,
};

inline constexpr int kNumPathSegments = 7;

const char* to_string(PathSegment segment);

struct CriticalPath {
  bool valid = false;
  int critical_reducer = -1;
  /// Absolute boundaries t0..t7 (simulated seconds); adjacent segments
  /// share a boundary, which is what makes the sum exact.
  std::array<double, kNumPathSegments + 1> boundary_s{};

  double segment_s(PathSegment segment) const {
    const auto i = static_cast<std::size_t>(segment);
    return boundary_s[i + 1] - boundary_s[i];
  }
  double total_s() const { return boundary_s[kNumPathSegments] - boundary_s[0]; }
  PathSegment dominant() const;

  /// "send 3.1ms (42%) | map 2.0ms ..." — one-line debug rendering.
  std::string to_string() const;
};

/// Decompose a *finished* plan. `arrival_s`/`start_s`/`finish_s` are
/// the serving layer's FrameRecord stamps (for a bare plan run, pass
/// plan.t0_s() for arrival and start, and the last tile time for
/// finish).
CriticalPath analyze_plan(const mr::FramePlan& plan, double arrival_s,
                          double start_s, double finish_s);

}  // namespace vrmr::obs
