#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace vrmr::obs {

LogHistogram::LogHistogram(double min_value, double growth)
    : min_value_(min_value), growth_(growth),
      inv_log_growth_(1.0 / std::log(growth)) {
  VRMR_CHECK(min_value > 0.0);
  VRMR_CHECK(growth > 1.0);
}

void LogHistogram::observe(double v) {
  VRMR_CHECK(std::isfinite(v));
  if (count_ == 0) {
    min_seen_ = max_seen_ = v;
  } else {
    min_seen_ = std::min(min_seen_, v);
    max_seen_ = std::max(max_seen_, v);
  }
  ++count_;
  sum_ += v;
  if (v < min_value_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>(
      std::floor(std::log(v / min_value_) * inv_log_growth_));
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
}

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, ceil — the "nearest rank" method).
  const auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(count_))));
  if (rank <= underflow_) return min_value_;
  std::uint64_t seen = underflow_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Geometric midpoint of bucket i: min * g^(i + 0.5).
      return min_value_ * std::pow(growth_, static_cast<double>(i) + 0.5);
    }
  }
  return max_seen_;
}

LogHistogram::Summary LogHistogram::summary() const {
  Summary s;
  s.count = count_;
  s.sum = sum_;
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  s.p999 = quantile(0.999);
  return s;
}

LogHistogram& Registry::histogram(const std::string& name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, LogHistogram()).first;
  }
  return it->second;
}

const LogHistogram* Registry::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string Registry::to_string() const {
  std::string out;
  char buf[160];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "%-36s count %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c.value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof(buf), "%-36s gauge %.6g\n", name.c_str(), g.value());
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    const LogHistogram::Summary s = h.summary();
    std::snprintf(buf, sizeof(buf),
                  "%-36s n %-7llu p50 %.4g p95 %.4g p99 %.4g p99.9 %.4g\n",
                  name.c_str(), static_cast<unsigned long long>(s.count), s.p50,
                  s.p95, s.p99, s.p999);
    out += buf;
  }
  return out;
}

}  // namespace vrmr::obs
