#include "obs/trace.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/log.hpp"

namespace vrmr::obs {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void TraceRecorder::begin(double ts_s, int pid, int tid, std::string name,
                          std::string cat, TraceArgs args) {
  events_.push_back(TraceEvent{'B', ts_s, pid, tid, 0, std::move(name),
                               std::move(cat), std::move(args)});
}

void TraceRecorder::end(double ts_s, int pid, int tid) {
  events_.push_back(TraceEvent{'E', ts_s, pid, tid, 0, {}, {}, {}});
}

void TraceRecorder::instant(double ts_s, int pid, int tid, std::string name,
                            std::string cat, TraceArgs args) {
  events_.push_back(TraceEvent{'i', ts_s, pid, tid, 0, std::move(name),
                               std::move(cat), std::move(args)});
}

void TraceRecorder::async_begin(double ts_s, int pid, std::uint64_t id,
                                std::string name, std::string cat,
                                TraceArgs args) {
  events_.push_back(TraceEvent{'b', ts_s, pid, 0, id, std::move(name),
                               std::move(cat), std::move(args)});
}

void TraceRecorder::async_end(double ts_s, int pid, std::uint64_t id,
                              std::string name, std::string cat) {
  events_.push_back(
      TraceEvent{'e', ts_s, pid, 0, id, std::move(name), std::move(cat), {}});
}

void TraceRecorder::set_process_name(int pid, const std::string& name) {
  events_.push_back(
      TraceEvent{'M', 0.0, pid, 0, 0, "process_name", {}, {{"name", name}}});
}

void TraceRecorder::set_thread_name(int pid, int tid, const std::string& name) {
  events_.push_back(
      TraceEvent{'M', 0.0, pid, tid, 0, "thread_name", {}, {{"name", name}}});
}

std::string TraceRecorder::to_json() const {
  std::string out;
  out.reserve(events_.size() * 96 + 32);
  out += "{\"traceEvents\":[\n";
  char buf[64];
  bool first = true;
  for (const TraceEvent& ev : events_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\":\"";
    out += ev.ph;
    out += "\",\"ts\":";
    // Simulated seconds -> microseconds (the trace-event unit).
    std::snprintf(buf, sizeof(buf), "%.3f", ev.ts_s * 1e6);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"pid\":%d,\"tid\":%d", ev.pid, ev.tid);
    out += buf;
    if (ev.ph == 'b' || ev.ph == 'e') {
      std::snprintf(buf, sizeof(buf), ",\"id\":\"%" PRIu64 "\"", ev.id);
      out += buf;
    }
    if (!ev.name.empty() || ev.ph != 'E') {
      out += ",\"name\":\"";
      append_escaped(out, ev.name);
      out += '"';
    }
    if (!ev.cat.empty()) {
      out += ",\"cat\":\"";
      append_escaped(out, ev.cat);
      out += '"';
    }
    if (ev.ph == 'i') out += ",\"s\":\"t\"";  // thread-scoped instant
    if (!ev.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : ev.args) {
        if (!first_arg) out += ',';
        first_arg = false;
        out += '"';
        append_escaped(out, key);
        out += "\":\"";
        append_escaped(out, value);
        out += '"';
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

bool TraceRecorder::write_file(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    VRMR_ERROR("obs") << "cannot open trace file '" << path << "' for writing";
    return false;
  }
  const std::string json = to_json();
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  file.flush();
  if (!file) {
    VRMR_ERROR("obs") << "short write to trace file '" << path << "'";
    return false;
  }
  VRMR_INFO("obs") << "wrote " << events_.size() << " trace events to " << path;
  return true;
}

}  // namespace vrmr::obs
