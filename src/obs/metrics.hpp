#pragma once

// Unified metrics registry: named counters, gauges, and log-bucketed
// histograms that answer p50/p95/p99/p99.9 without retaining samples.
//
// LogHistogram buckets grow geometrically by `growth` (default 2^(1/8),
// ~9% per bucket), so a reported quantile is off from the true sample
// by at most one bucket width: est / exact ∈ [1/growth, growth]. That
// bound is what tests/obs/test_metrics.cpp pins down. Memory is O(log
// of the dynamic range) — a handful of buckets per decade — which is
// why the serving layer can keep per-priority-class latency histograms
// alive for the whole run (ROADMAP item 5: per-class SLO measurement).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vrmr::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class LogHistogram {
 public:
  /// Values below `min_value` land in the underflow bucket (reported as
  /// `min_value`); `growth` is the per-bucket geometric factor.
  explicit LogHistogram(double min_value = 1e-6, double growth = kDefaultGrowth);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_seen_; }
  double max() const { return max_seen_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Quantile estimate for q in [0, 1]: the geometric midpoint of the
  /// bucket containing the q-th sample. Relative error <= growth - 1.
  double quantile(double q) const;

  /// Max relative error of quantile(): one bucket width.
  double relative_error() const { return growth_ - 1.0; }

  struct Summary {
    std::uint64_t count = 0;
    double sum = 0.0, p50 = 0.0, p95 = 0.0, p99 = 0.0, p999 = 0.0;
  };
  Summary summary() const;

  static constexpr double kDefaultGrowth = 1.0905077326652577;  // 2^(1/8)

 private:
  double min_value_;
  double growth_;
  double inv_log_growth_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
  std::vector<std::uint64_t> buckets_;  // bucket i covers min*g^i .. min*g^(i+1)
};

/// Name-keyed registry. References returned stay valid for the
/// registry's lifetime (node-based map). Naming convention (see
/// src/obs/README.md): dotted lowercase paths, unit-suffixed leaves —
/// e.g. "interactive.queue_wait_s", "cache.hits", "engine.queue_depth".
class Registry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  LogHistogram& histogram(const std::string& name);

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, LogHistogram>& histograms() const { return histograms_; }

  const LogHistogram* find_histogram(const std::string& name) const;

  /// Human-readable dump (one metric per line), for examples and debug.
  std::string to_string() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LogHistogram> histograms_;
};

}  // namespace vrmr::obs
