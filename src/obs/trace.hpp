#pragma once

// Flight recorder: spans and instant events on the *simulated*
// timeline, exported as Chrome trace-event JSON (one file opens a whole
// multi-session, multi-shard run in Perfetto or chrome://tracing).
//
// The recorder is a passive sink below every layer: mr::FramePlan emits
// one span per work quantum (stage+map on the GPU-lane track, sort and
// reduce on per-reducer tracks, partition sends as async arrows), the
// render service emits scheduling events (admission, preemption, batch
// aging, prefetch, cache hit/miss), and the sharded frontend names one
// trace *process* per shard. Track layout:
//
//   pid                 = shard index (0 for a single RenderService)
//   tid 0..G-1          = GPU lanes (map quanta + prefetch staging)
//   tid 990             = service events (admit / preempt / batch_aged)
//   tid base + r        = reducer r's sort+reduce chain, where base is
//                         TraceContext::reducer_tid_base (the service
//                         uses 1000 for Interactive frames and 2000 for
//                         Batch so the two classes' tiles never share a
//                         track — at most one frame per class is active)
//
// Timestamps are simulated seconds converted to microseconds (the
// trace-event unit). Everything is synchronous single-threaded DES
// bookkeeping: no locking, deterministic event order, and with no
// recorder attached every emission site is a single null check
// (verified free by the existing bench gates).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vrmr::obs {

/// One Chrome trace event. `ph` is the trace-event phase: 'B'/'E'
/// (nested span begin/end per (pid, tid)), 'i' (instant), 'b'/'e'
/// (async span, paired by (cat, id) across tracks), 'M' (metadata).
struct TraceEvent {
  char ph = 'i';
  double ts_s = 0.0;  // simulated seconds
  int pid = 0;
  int tid = 0;
  std::uint64_t id = 0;  // async pairing ('b'/'e' only)
  std::string name;
  std::string cat;
  /// Flat string args (rendered into the event's "args" object).
  std::vector<std::pair<std::string, std::string>> args;
};

using TraceArgs = std::vector<std::pair<std::string, std::string>>;

class TraceRecorder {
 public:
  void begin(double ts_s, int pid, int tid, std::string name,
             std::string cat = {}, TraceArgs args = {});
  void end(double ts_s, int pid, int tid);
  void instant(double ts_s, int pid, int tid, std::string name,
               std::string cat = {}, TraceArgs args = {});
  void async_begin(double ts_s, int pid, std::uint64_t id, std::string name,
                   std::string cat, TraceArgs args = {});
  void async_end(double ts_s, int pid, std::uint64_t id, std::string name,
                 std::string cat);
  void set_process_name(int pid, const std::string& name);
  void set_thread_name(int pid, int tid, const std::string& name);

  /// Fresh async-span id, unique within this recorder. Combined with a
  /// category these pair 'b'/'e' events; layers that build ids from
  /// structure (the service's frame spans use pid * 10^6 + frame_id)
  /// stay stable across shards without consulting this counter.
  std::uint64_t next_async_id() { return next_async_id_++; }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  /// The full {"traceEvents": [...]} JSON document.
  std::string to_json() const;

  /// Write to_json() to `path`; false (with a logged error) on failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
  std::uint64_t next_async_id_ = 1;
};

/// Attribution carried from the serving layer down into a FramePlan —
/// plain data, copied by value inside JobConfig / RenderOptions. With
/// `recorder == nullptr` (the default) nothing is recorded anywhere.
struct TraceContext {
  TraceRecorder* recorder = nullptr;
  int pid = 0;             // shard index
  int session = -1;        // backend-local session index (-1: none)
  std::uint64_t frame_id = 0;
  int priority = 0;        // 0 interactive, 1 batch (display only)
  /// Track base for the plan's per-reducer sort+reduce spans.
  int reducer_tid_base = 1000;
};

/// Service-events track (admission / preemption / aging instants).
inline constexpr int kServiceTid = 990;

}  // namespace vrmr::obs
