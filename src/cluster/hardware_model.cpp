#include "cluster/hardware_model.hpp"

namespace vrmr::cluster {

HardwareModel HardwareModel::ncsa_accelerator_cluster() {
  HardwareModel hw;

  hw.gpu.name = "SimTesla C1060";
  hw.gpu.vram_bytes = 4ULL * 1024 * 1024 * 1024;
  hw.gpu.multiprocessors = 30;
  // Effective end-to-end ray-casting rate, calibrated to the paper's
  // §6.3 anchor: a 1024³ render at 512² needs ≈300 M samples, and the
  // paper measures ≈503 ms of map compute on 8 GPUs ⇒ ≈75 M
  // trilinear-sample pipelines per second per GPU (well below the
  // C1060's raw texture-fetch peak — the paper's kernel is bound by
  // transfer-function lookups, compositing arithmetic and divergence).
  hw.gpu.sample_rate_per_s = 75e6;
  hw.gpu.kernel_launch_overhead_s = 40e-6;
  hw.gpu.mem_bandwidth_Bps = 100e9;

  hw.pcie.latency_s = 15e-6;
  hw.pcie.bandwidth_Bps = 6e9;  // 64^3 brick (1 MiB) in ~0.19 ms  (§3 anchor)

  hw.disk.seek_latency_s = 5e-3;
  hw.disk.bandwidth_Bps = 75e6;  // 64^3 brick in ~19 ms            (§3 anchor)

  hw.fabric.latency_s = 5e-6;
  hw.fabric.bandwidth_Bps = 3.2e9;  // QDR 4x effective
  hw.fabric.intra_node_bandwidth_Bps = 5e9;
  hw.fabric.intra_node_latency_s = 1e-6;
  // Effective per-message software cost of the 2010 stack (MPI eager
  // protocol + pinned staging buffers + progress-engine polling). This
  // is what makes direct-send's all-to-all grow superlinearly with GPU
  // count and produces the paper's ≈8-GPU sweet spot for ≤512³ volumes
  // (Fig. 3): at G GPUs every chunk fans out to G reducers.
  hw.fabric.per_message_overhead_s = 1.6e-3;

  hw.cpu.cores = 4;
  hw.cpu.partition_rate_pairs_per_s = 400e6;
  hw.cpu.sort_rate_pairs_per_s = 60e6;
  hw.cpu.reduce_rate_frags_per_s = 45e6;
  hw.cpu.memcpy_bandwidth_Bps = 5e9;

  hw.gpu_sort.sort_rate_pairs_per_s = 900e6;
  hw.gpu_sort.reduce_rate_frags_per_s = 500e6;

  return hw;
}

}  // namespace vrmr::cluster
