#include "cluster/cluster.hpp"

namespace vrmr::cluster {

Cluster::Cluster(sim::Engine& engine, ClusterConfig config, ThreadPool* pool)
    : engine_(&engine), config_(std::move(config)) {
  config_.validate();
  fabric_ = std::make_unique<net::Fabric>(engine, config_.hw.fabric, config_.num_nodes);

  const int gpus = config_.total_gpus();
  gpus_.reserve(static_cast<size_t>(gpus));
  gpu_streams_.reserve(static_cast<size_t>(gpus));
  for (int g = 0; g < gpus; ++g) {
    gpus_.push_back(std::make_unique<gpusim::Device>(g, config_.hw.gpu, pool));
    gpu_streams_.push_back(
        std::make_unique<sim::Resource>(engine, "gpu[" + std::to_string(g) + "]"));
  }

  disks_.reserve(static_cast<size_t>(config_.num_nodes));
  pcie_.reserve(static_cast<size_t>(config_.num_nodes));
  cpus_.reserve(static_cast<size_t>(config_.num_nodes));
  for (int n = 0; n < config_.num_nodes; ++n) {
    disks_.push_back(std::make_unique<io::VirtualDisk>(engine, config_.hw.disk,
                                                       "disk[" + std::to_string(n) + "]"));
    pcie_.push_back(
        std::make_unique<sim::Resource>(engine, "pcie[" + std::to_string(n) + "]"));
    cpus_.push_back(std::make_unique<sim::ResourcePool>(
        engine, "cpu[" + std::to_string(n) + "]", config_.hw.cpu.cores));
  }
}

double Cluster::total_gpu_busy() const {
  double t = 0.0;
  for (const auto& r : gpu_streams_) t += r->busy_time();
  return t;
}

double Cluster::total_pcie_busy() const {
  double t = 0.0;
  for (const auto& r : pcie_) t += r->busy_time();
  return t;
}

double Cluster::total_nic_busy() const {
  double t = 0.0;
  for (int n = 0; n < config_.num_nodes; ++n) t += fabric_->tx(n).busy_time();
  return t;
}

double Cluster::total_disk_busy() const {
  double t = 0.0;
  for (const auto& d : disks_) t += d->resource().busy_time();
  return t;
}

}  // namespace vrmr::cluster
