#pragma once

// Bundled hardware cost model for one cluster configuration.
//
// Defaults are calibrated to the paper's NCSA Accelerator Cluster
// (§4.1: quad-core CPU + 8 GB RAM per node, Tesla S1070-class boards
// with 4 logical GPUs, QDR InfiniBand, Linux 2.6, CUDA 3.0) using the
// paper's own published measurement anchors:
//
//   * 64³ float brick loads from disk in ≈20 ms            (§3)
//   * the same brick reaches the GPU in <0.2 ms (<1% ovh)   (§3)
//   * finished ray fragments copy back in <2 ms             (§3)
//   * 1024³ map compute ≈503 ms on 8 GPUs; ≈97 ms on 16     (§6.3)
//   * 1024³ map-phase communication ≈515 ms on 8 GPUs, >1 s on 16 (§6.3)
//
// Every constant is a plain struct field so benches can sweep them
// (ablation studies) and tests can pin them.

#include "gpusim/device_props.hpp"
#include "io/disk.hpp"
#include "net/fabric.hpp"

namespace vrmr::cluster {

struct PcieModel {
  /// Per-transfer submission latency (driver + DMA setup).
  double latency_s = 15e-6;
  /// Effective PCIe 2.0 x16 host<->device bandwidth.
  double bandwidth_Bps = 6e9;

  double transfer_time(std::uint64_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bandwidth_Bps;
  }
};

struct CpuModel {
  /// Cores per node (quad-core in the paper's cluster).
  int cores = 4;
  /// Partition phase: classify key + scatter pair, per pair per core.
  double partition_rate_pairs_per_s = 400e6;
  /// Counting sort (θ(n) histogram + scatter), per pair per core.
  /// 2010-era core with random 32-byte scatters: ~60 M pairs/s. This
  /// puts the CPU/GPU sort crossover near ~15 K pairs (§3.1.2's
  /// "depending on the amount of data").
  double sort_rate_pairs_per_s = 60e6;
  /// Reduce: per-pixel depth sort + front-to-back composite, per
  /// fragment per core. CPU compositing wins at the paper's scales.
  double reduce_rate_frags_per_s = 45e6;
  /// Host memcpy bandwidth (intra-node staging).
  double memcpy_bandwidth_Bps = 5e9;
};

struct GpuSortModel {
  /// Device counting sort rate once data is resident.
  double sort_rate_pairs_per_s = 900e6;
  /// Device compositing rate (used by the GPU-reduce ablation).
  double reduce_rate_frags_per_s = 500e6;
};

struct HardwareModel {
  gpusim::DeviceProps gpu;
  PcieModel pcie;
  io::DiskModel disk;
  net::FabricModel fabric;
  CpuModel cpu;
  GpuSortModel gpu_sort;

  /// The paper's testbed (see file comment for anchors).
  static HardwareModel ncsa_accelerator_cluster();
};

}  // namespace vrmr::cluster
