#pragma once

// A simulated multi-GPU cluster: N nodes × G GPUs per node, each node
// with a quad-core CPU pool, one disk, one PCIe link shared by its GPUs,
// and one NIC port pair on the shared fabric. This mirrors the paper's
// testbed topology, where 4 logical GPUs share a node's host resources
// — the contention that shapes Fig. 3 at high GPU counts.

#include <memory>
#include <string>
#include <vector>

#include "cluster/hardware_model.hpp"
#include "gpusim/device.hpp"
#include "io/disk.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace vrmr::cluster {

struct ClusterConfig {
  int num_nodes = 1;
  int gpus_per_node = 1;
  HardwareModel hw = HardwareModel::ncsa_accelerator_cluster();

  int total_gpus() const { return num_nodes * gpus_per_node; }

  void validate() const {
    VRMR_CHECK_MSG(num_nodes >= 1, "need at least one node");
    VRMR_CHECK_MSG(gpus_per_node >= 1, "need at least one GPU per node");
  }

  /// The paper's sweep points: `gpus` total GPUs packed up to 4 per
  /// node (§4.1), e.g. 8 GPUs = 2 nodes. Nodes are uniform, so the
  /// per-node count is the largest divisor of `gpus` that fits.
  static ClusterConfig with_total_gpus(int gpus,
                                       HardwareModel hw = HardwareModel::ncsa_accelerator_cluster(),
                                       int max_gpus_per_node = 4) {
    VRMR_CHECK(gpus >= 1);
    VRMR_CHECK(max_gpus_per_node >= 1);
    ClusterConfig cfg;
    cfg.hw = std::move(hw);
    cfg.gpus_per_node = 1;
    for (int per_node = std::min(gpus, max_gpus_per_node); per_node >= 1; --per_node) {
      if (gpus % per_node == 0) {
        cfg.gpus_per_node = per_node;
        break;
      }
    }
    cfg.num_nodes = gpus / cfg.gpus_per_node;
    VRMR_CHECK(cfg.total_gpus() == gpus);
    return cfg;
  }
};

class Cluster {
 public:
  Cluster(sim::Engine& engine, ClusterConfig config, ThreadPool* pool = nullptr);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterConfig& config() const { return config_; }
  sim::Engine& engine() { return *engine_; }
  net::Fabric& fabric() { return *fabric_; }

  int num_nodes() const { return config_.num_nodes; }
  int total_gpus() const { return config_.total_gpus(); }
  int node_of_gpu(int gpu) const {
    VRMR_DCHECK(gpu >= 0 && gpu < total_gpus());
    return gpu / config_.gpus_per_node;
  }

  gpusim::Device& gpu(int gpu) { return *gpus_.at(static_cast<size_t>(gpu)); }
  sim::Resource& gpu_stream(int gpu) { return *gpu_streams_.at(static_cast<size_t>(gpu)); }
  io::VirtualDisk& disk(int node) { return *disks_.at(static_cast<size_t>(node)); }
  sim::Resource& pcie(int node) { return *pcie_.at(static_cast<size_t>(node)); }
  sim::ResourcePool& cpu(int node) { return *cpus_.at(static_cast<size_t>(node)); }

  /// Sum of GPU kernel busy time across all devices.
  double total_gpu_busy() const;
  /// Sum of PCIe busy time across nodes.
  double total_pcie_busy() const;
  /// Sum of NIC (tx) busy time across nodes.
  double total_nic_busy() const;
  /// Sum of disk busy time across nodes.
  double total_disk_busy() const;

 private:
  sim::Engine* engine_;
  ClusterConfig config_;
  std::unique_ptr<net::Fabric> fabric_;
  std::vector<std::unique_ptr<gpusim::Device>> gpus_;
  std::vector<std::unique_ptr<sim::Resource>> gpu_streams_;
  std::vector<std::unique_ptr<io::VirtualDisk>> disks_;
  std::vector<std::unique_ptr<sim::Resource>> pcie_;
  std::vector<std::unique_ptr<sim::ResourcePool>> cpus_;
};

}  // namespace vrmr::cluster
