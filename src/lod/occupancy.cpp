#include "lod/occupancy.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "util/check.hpp"

namespace vrmr::lod {

namespace {

/// Cells per axis for `n` stored voxels with width-`w` cells that cover
/// voxel ranges [c*w, c*w + w] *inclusive* (one-voxel overlap): any
/// stride-1 trilinear support pair (k, k+1) then lies wholly inside
/// cell floor(k / w).
int cells_for(int n, int w) { return n >= 2 ? (n - 2) / w + 1 : 1; }

/// True iff every baked-table entry Texture1D::sample can touch for
/// t in [a, b] has alpha exactly 0. sample() computes x = clamp(t) *
/// N - 0.5 and lerps entries floor(x) and floor(x) + 1, both clamped
/// to [0, N-1] — so the touched index range is
/// clamp(floor(a*N - 0.5)) .. clamp(floor(b*N - 0.5) + 1).
bool tf_empty_interval(const std::vector<Vec4>& table, float a, float b) {
  const int n = static_cast<int>(table.size());
  const float xa = clampf(a, 0.0f, 1.0f) * static_cast<float>(n) - 0.5f;
  const float xb = clampf(b, 0.0f, 1.0f) * static_cast<float>(n) - 0.5f;
  const int lo = std::clamp(static_cast<int>(std::floor(xa)), 0, n - 1);
  const int hi = std::clamp(static_cast<int>(std::floor(xb)) + 1, 0, n - 1);
  for (int i = lo; i <= hi; ++i) {
    if (table[static_cast<std::size_t>(i)].w != 0.0f) return false;
  }
  return true;
}

/// Chessboard (L-inf) distance to the nearest cell with empty[i] ==
/// false — multi-source BFS over the 26-neighborhood, which computes
/// exactly the Chebyshev metric. All-empty grids saturate at the max
/// grid axis.
std::vector<std::uint16_t> chebyshev_transform(Int3 cells,
                                               const std::vector<char>& empty) {
  const std::size_t n = empty.size();
  const std::uint16_t saturate = static_cast<std::uint16_t>(
      std::max({cells.x, cells.y, cells.z}));
  std::vector<std::uint16_t> dist(n, saturate);
  std::deque<Int3> frontier;
  const auto at = [&](Int3 c) -> std::size_t {
    return (static_cast<std::size_t>(c.z) * cells.y + c.y) * cells.x + c.x;
  };
  for (int z = 0; z < cells.z; ++z)
    for (int y = 0; y < cells.y; ++y)
      for (int x = 0; x < cells.x; ++x)
        if (!empty[at({x, y, z})]) {
          dist[at({x, y, z})] = 0;
          frontier.push_back({x, y, z});
        }
  while (!frontier.empty()) {
    const Int3 c = frontier.front();
    frontier.pop_front();
    const std::uint16_t next = static_cast<std::uint16_t>(dist[at(c)] + 1);
    for (int dz = -1; dz <= 1; ++dz)
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx) {
          const Int3 m{c.x + dx, c.y + dy, c.z + dz};
          if (m.x < 0 || m.y < 0 || m.z < 0 || m.x >= cells.x ||
              m.y >= cells.y || m.z >= cells.z)
            continue;
          if (dist[at(m)] > next) {
            dist[at(m)] = next;
            frontier.push_back(m);
          }
        }
  }
  return dist;
}

}  // namespace

OccupancyIndex::OccupancyIndex(const volren::Volume& volume,
                               const volren::BrickLayout& layout, int cell_voxels,
                               int build_stride)
    : cell_voxels_(cell_voxels), build_stride_(build_stride) {
  VRMR_CHECK(cell_voxels >= 2);
  VRMR_CHECK(build_stride >= 1);
  bricks_.reserve(static_cast<std::size_t>(layout.num_bricks()));
  for (const volren::BrickInfo& info : layout.bricks()) {
    BrickOccupancy occ;
    const Int3 n = info.padded_dims;
    occ.cells = Int3{cells_for(n.x, cell_voxels_), cells_for(n.y, cell_voxels_),
                     cells_for(n.z, cell_voxels_)};
    const std::size_t num_cells = static_cast<std::size_t>(occ.cells.volume());
    occ.cell_min.assign(num_cells, std::numeric_limits<float>::infinity());
    occ.cell_max.assign(num_cells, -std::numeric_limits<float>::infinity());

    // Inclusive, one-voxel-overlapping cell ranges: every stored voxel
    // lands in at least one cell, and boundary voxels land in two, so
    // the union of cell intervals covers the whole padded region and
    // per-cell intervals bound every stride-1 interpolant.
    for (int cz = 0; cz < occ.cells.z; ++cz) {
      const int z0 = cz * cell_voxels_;
      const int z1 = std::min(z0 + cell_voxels_, n.z - 1);
      for (int cy = 0; cy < occ.cells.y; ++cy) {
        const int y0 = cy * cell_voxels_;
        const int y1 = std::min(y0 + cell_voxels_, n.y - 1);
        for (int cx = 0; cx < occ.cells.x; ++cx) {
          const int x0 = cx * cell_voxels_;
          const int x1 = std::min(x0 + cell_voxels_, n.x - 1);
          float mn = std::numeric_limits<float>::infinity();
          float mx = -std::numeric_limits<float>::infinity();
          for (int z = z0; z <= z1; z += build_stride_)
            for (int y = y0; y <= y1; y += build_stride_)
              for (int x = x0; x <= x1; x += build_stride_) {
                const float v = volume.voxel_clamped(info.padded_origin +
                                                     Int3{x, y, z});
                mn = std::min(mn, v);
                mx = std::max(mx, v);
              }
          const std::size_t ci = occ.cell_index({cx, cy, cz});
          occ.cell_min[ci] = mn;
          occ.cell_max[ci] = mx;
        }
      }
    }
    occ.min_value = *std::min_element(occ.cell_min.begin(), occ.cell_min.end());
    occ.max_value = *std::max_element(occ.cell_max.begin(), occ.cell_max.end());
    bricks_.push_back(std::move(occ));
  }
}

TfClassification classify(const OccupancyIndex& occupancy,
                          const volren::TransferFunction& tf, int table_entries) {
  TfClassification out;
  out.tf_signature = tf.signature();
  out.table_entries = table_entries;
  out.exact = occupancy.exact();
  const std::vector<Vec4> table = tf.bake(table_entries);
  out.bricks.resize(static_cast<std::size_t>(occupancy.num_bricks()));
  for (int id = 0; id < occupancy.num_bricks(); ++id) {
    const BrickOccupancy& occ = occupancy.brick(id);
    BrickClassification& cls = out.bricks[static_cast<std::size_t>(id)];
    cls.empty_hull = tf_empty_interval(table, occ.min_value, occ.max_value);
    const std::size_t num_cells = occ.cell_min.size();
    std::vector<char> empty(num_cells, 0);
    int empties = 0;
    for (std::size_t c = 0; c < num_cells; ++c) {
      empty[c] = tf_empty_interval(table, occ.cell_min[c], occ.cell_max[c]) ? 1 : 0;
      empties += empty[c];
    }
    cls.empty_cells = empties == static_cast<int>(num_cells);
    cls.empty_cell_fraction =
        num_cells > 0 ? static_cast<float>(empties) / static_cast<float>(num_cells)
                      : 0.0f;
    cls.chebyshev = chebyshev_transform(occ.cells, empty);
    if (cls.empty_hull) ++out.bricks_empty_hull;
    if (cls.empty_cells) ++out.bricks_empty_cells;
  }
  return out;
}

std::shared_ptr<const TfClassification> ClassificationCache::lookup_or_build(
    std::uint64_t volume_id, std::uint64_t layout_sig,
    const OccupancyIndex& occupancy, const volren::TransferFunction& tf,
    int table_entries) {
  const auto key = std::make_tuple(volume_id, layout_sig, tf.signature());
  auto it = entries_.find(key);
  if (it != entries_.end()) return it->second;
  auto built = std::make_shared<const TfClassification>(
      classify(occupancy, tf, table_entries));
  ++built_;
  entries_.emplace(key, built);
  return built;
}

void ClassificationCache::invalidate_volume(std::uint64_t volume_id) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (std::get<0>(it->first) == volume_id)
      it = entries_.erase(it);
    else
      ++it;
  }
}

}  // namespace vrmr::lod
