#pragma once

// LOD brick pyramid: per-volume mip levels sharing the base brick grid.
//
// Level L is the base volume decimated by stride 2^L (every stride-th
// voxel, matching RaycastSettings::decimation semantics — DESIGN.md §2),
// with its own Volume wrapper and its own BrickLayout whose brick core
// dims are the base layout's halved L times. Levels exist only while the
// halving is *exact*: every axis of both the volume dims and the brick
// core dims must be even at each step. That restriction buys the
// property everything downstream leans on:
//
//   * level grids are identical to the base grid, so brick id i names
//     the same spatial region at every level, and
//   * each level brick's world_box is bit-identical to the base
//     brick's (integer halving commutes with the float divisions that
//     produce world extents), so a frame may mix bricks of different
//     levels and the half-open [enter, exit) sample-ownership rule
//     still partitions every ray exactly — no seams, no double
//     compositing.
//
// Coarse bricks carry their own BrickInfo (and therefore their own
// device_bytes()), so BrickCache/ARC treats them as first-class tiny
// entries under the level layout's cache signature; a level-1 brick is
// ~1/8 the payload of its base brick, which is what makes coarse
// levels effectively always-resident under overload.
//
// Lifetime: the pyramid holds a pointer to the base volume and samples
// it lazily through the level wrappers — the base volume must outlive
// the pyramid (the same contract Volume already imposes on frames).

#include <cstdint>
#include <memory>
#include <vector>

#include "volren/bricking.hpp"
#include "volren/volume.hpp"

namespace vrmr::lod {

struct LodLevel {
  int level = 0;           // 0 = full resolution
  int stride = 1;          // 1 << level: base voxels per level voxel
  /// Level-resolution volume (level 0 aliases the base volume).
  std::shared_ptr<const volren::Volume> volume;
  /// Level brick decomposition: same grid as the base layout, halved
  /// brick dims, same ghost.
  std::shared_ptr<const volren::BrickLayout> layout;
  /// Distinct per level (brick dims differ), so coarse payloads never
  /// alias full-resolution cache entries.
  std::uint64_t cache_signature = 0;
  /// Sum of brick device_bytes() at this level (ghost included).
  std::uint64_t device_bytes = 0;
};

class LodPyramid {
 public:
  /// Build levels 0..N-1 for (base, base_layout). Level 0 aliases the
  /// inputs; deeper levels are added while the exact-halving invariant
  /// holds, capped at `max_levels` total. The base volume must outlive
  /// the pyramid; the layout is shared (the service passes its memoized
  /// per-frame layout).
  LodPyramid(const volren::Volume& base,
             std::shared_ptr<const volren::BrickLayout> base_layout,
             int max_levels = 4);

  /// Convenience for tests/benches: copies the layout.
  LodPyramid(const volren::Volume& base, const volren::BrickLayout& base_layout,
             int max_levels = 4)
      : LodPyramid(base,
                   std::make_shared<const volren::BrickLayout>(base_layout),
                   max_levels) {}

  const volren::Volume* base() const { return base_; }
  int num_levels() const { return static_cast<int>(levels_.size()); }
  const LodLevel& level(int l) const {
    return levels_.at(static_cast<std::size_t>(l));
  }
  /// Requested level clamped to what the pyramid actually has.
  int clamp(int lod) const {
    if (lod < 0) return 0;
    const int deepest = num_levels() - 1;
    return lod > deepest ? deepest : lod;
  }

 private:
  const volren::Volume* base_;
  std::vector<LodLevel> levels_;
};

/// Per-brick level selection. `base_level` (RenderOptions::max_lod as
/// clamped by the caller / the SLO controller) is the floor every brick
/// renders at. When `quality` < 1, a brick whose projected footprint is
/// small relative to its voxel resolution may drop further: level L+1
/// is allowed while (max core axis >> (L+1)) >= quality *
/// projected_pixels — i.e. the coarser brick still offers at least
/// `quality` voxels per screen pixel along its widest axis. quality >=
/// 1 disables the footprint path entirely (selection is exactly
/// base_level, preserving the pixel-identity guarantee at level 0).
int select_level(const LodPyramid& pyramid, const volren::BrickInfo& base_brick,
                 int projected_pixels, int base_level, float quality);

}  // namespace vrmr::lod
