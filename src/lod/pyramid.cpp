#include "lod/pyramid.hpp"

#include <string>
#include <utility>

#include "util/check.hpp"

namespace vrmr::lod {

namespace {

bool all_even(Int3 v) { return v.x % 2 == 0 && v.y % 2 == 0 && v.z % 2 == 0; }

Int3 halve(Int3 v) { return {v.x / 2, v.y / 2, v.z / 2}; }

/// Bit-identical world-box comparison: the mixed-level ownership
/// argument needs exact plane constants, not epsilon closeness.
bool same_box(const Aabb& a, const Aabb& b) {
  return a.lo.x == b.lo.x && a.lo.y == b.lo.y && a.lo.z == b.lo.z &&
         a.hi.x == b.hi.x && a.hi.y == b.hi.y && a.hi.z == b.hi.z;
}

}  // namespace

LodPyramid::LodPyramid(const volren::Volume& base,
                       std::shared_ptr<const volren::BrickLayout> base_layout,
                       int max_levels)
    : base_(&base) {
  VRMR_CHECK(base_layout != nullptr);
  VRMR_CHECK(max_levels >= 1);

  LodLevel l0;
  l0.level = 0;
  l0.stride = 1;
  // Alias, not copy: level 0 IS the base volume (non-owning — the
  // caller guarantees the base outlives the pyramid).
  l0.volume = std::shared_ptr<const volren::Volume>(&base,
                                                    [](const volren::Volume*) {});
  l0.layout = base_layout;
  l0.cache_signature = base_layout->signature();
  for (const volren::BrickInfo& brick : base_layout->bricks())
    l0.device_bytes += brick.device_bytes();
  levels_.push_back(std::move(l0));

  Int3 dims = base.dims();
  Int3 brick_dims = base_layout->brick_dims();
  while (num_levels() < max_levels && all_even(dims) && all_even(brick_dims)) {
    dims = halve(dims);
    brick_dims = halve(brick_dims);
    // BrickLayout requires every core axis > 1.
    if (brick_dims.x < 2 || brick_dims.y < 2 || brick_dims.z < 2) break;

    LodLevel lvl;
    lvl.level = num_levels();
    lvl.stride = 1 << lvl.level;
    const int stride = lvl.stride;
    const volren::Volume* base_volume = base_;
    // Decimation-style subsampling: level voxel p is base voxel
    // p * stride. Values are a subset of the base brick region's, so
    // the base occupancy intervals stay conservative for every level.
    lvl.volume = std::make_shared<const volren::Volume>(volren::Volume::procedural(
        base.name() + "@L" + std::to_string(lvl.level), dims,
        [base_volume, stride](Int3 p) {
          return base_volume->voxel_clamped(p * stride);
        }));
    lvl.layout = std::make_shared<const volren::BrickLayout>(
        dims, lvl.volume->world_extent(), brick_dims, base_layout->ghost());
    lvl.cache_signature = lvl.layout->signature();

    // The two invariants mixed-level frames rely on (see file comment).
    VRMR_CHECK_MSG(lvl.layout->grid_dims() == base_layout->grid_dims(),
                   "level " << lvl.level << " grid " << lvl.layout->grid_dims()
                            << " != base grid " << base_layout->grid_dims());
    for (const volren::BrickInfo& brick : lvl.layout->bricks()) {
      VRMR_CHECK_MSG(
          same_box(brick.world_box,
                   base_layout->brick(brick.id).world_box),
          "level " << lvl.level << " brick " << brick.id
                   << " world box drifted from the base layout's");
      lvl.device_bytes += brick.device_bytes();
    }
    levels_.push_back(std::move(lvl));
  }
}

int select_level(const LodPyramid& pyramid, const volren::BrickInfo& base_brick,
                 int projected_pixels, int base_level, float quality) {
  int level = pyramid.clamp(base_level);
  if (quality >= 1.0f || projected_pixels <= 0) return level;
  const int core_max = std::max({base_brick.core_dims.x, base_brick.core_dims.y,
                                 base_brick.core_dims.z});
  const float required = quality * static_cast<float>(projected_pixels);
  while (level + 1 < pyramid.num_levels() &&
         static_cast<float>(core_max >> (level + 1)) >= required) {
    ++level;
  }
  return level;
}

}  // namespace vrmr::lod
