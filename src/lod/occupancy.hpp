#pragma once

// Per-brick occupancy metadata and its transfer-function classification.
//
// OccupancyIndex scans every padded voxel of every brick (stride 1) and
// records (a) the brick's [min, max] scalar range and (b) a coarse
// cell thumbnail of per-cell [min, max] ranges — the same shape as the
// hydrant renderer's `ThumbnailTexture<int> chebyshev` empty-space map
// (SNIPPETS.md), except the distance transform here is computed lazily
// per transfer function at classification time.
//
// Soundness (what lets plan_frame cull a classified-empty brick with
// bit-identical output):
//
//   * Trilinear interpolation is convex: every sample the kernel can
//     take inside a brick lies within the [min, max] of the voxels it
//     interpolates, all of which are padded voxels of that brick. A
//     stride-1 scan therefore bounds every decimated or LOD-downsampled
//     stored grid too (their voxels are subsets).
//   * A scalar interval [a, b] is "TF-empty" iff every baked-table
//     entry Texture1D::sample can touch for t in [a, b] has alpha == 0
//     — sample() lerps entries floor(t*N - 0.5) and +1 (clamped), and a
//     lerp of exact zeros is exactly zero. cast_brick emits a fragment
//     only when accumulated alpha > 0, so a brick whose every sample
//     maps to alpha 0 contributes placeholders only: culling it never
//     changes a pixel.
//   * The brick-interval test is valid at any decimation. The finer
//     per-cell test is valid only at decimation == 1: cells cover their
//     voxel ranges inclusively with one-voxel overlap, so any stride-1
//     trilinear support pair lies inside one cell — a decimated support
//     pair can straddle cells and interpolate across a value gap the
//     cells individually miss. cullable() encodes exactly this rule.
//
// Classification results are memoized by ClassificationCache per
// (volume id, layout signature, TF signature) — volume ids are never
// reused across registration generations, so the id alone carries the
// generation (the keying groundwork ROADMAP item 4's content-addressed
// tile cache builds on).

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "volren/bricking.hpp"
#include "volren/transfer_function.hpp"
#include "volren/volume.hpp"

namespace vrmr::lod {

struct BrickOccupancy {
  float min_value = 0.0f;  // over all padded voxels, stride 1
  float max_value = 0.0f;
  Int3 cells;              // thumbnail grid dims (per padded region)
  std::vector<float> cell_min;  // cells.volume() entries, x-fastest
  std::vector<float> cell_max;

  std::size_t cell_index(Int3 c) const {
    return (static_cast<std::size_t>(c.z) * cells.y + c.y) * cells.x + c.x;
  }
};

class OccupancyIndex {
 public:
  /// Scan (volume, layout): one BrickOccupancy per brick, thumbnail
  /// cells of `cell_voxels` per side. `build_stride` > 1 subsamples the
  /// scan (paper-scale volumes) — the index is then approximate and
  /// exact() is false, so classification never culls from it.
  OccupancyIndex(const volren::Volume& volume, const volren::BrickLayout& layout,
                 int cell_voxels = 8, int build_stride = 1);

  bool exact() const { return build_stride_ == 1; }
  int cell_voxels() const { return cell_voxels_; }
  int num_bricks() const { return static_cast<int>(bricks_.size()); }
  const BrickOccupancy& brick(int id) const {
    return bricks_.at(static_cast<std::size_t>(id));
  }

 private:
  int cell_voxels_;
  int build_stride_;
  std::vector<BrickOccupancy> bricks_;
};

struct BrickClassification {
  /// TF-empty over the whole brick's [min, max] — sound at any
  /// decimation (interval hull covers every interpolant).
  bool empty_hull = false;
  /// Every thumbnail cell TF-empty — the finer test, sound only at
  /// decimation == 1 (implied by empty_hull).
  bool empty_cells = false;
  /// Share of thumbnail cells that are TF-empty (space-skipping
  /// potential even when the brick as a whole survives).
  float empty_cell_fraction = 0.0f;
  /// Chebyshev (L-inf) cell distance to the nearest non-empty cell: 0
  /// for non-empty cells, the hydrant-style safe skip radius for empty
  /// ones (saturates at the grid's max axis when all cells are empty).
  std::vector<std::uint16_t> chebyshev;
};

/// One (volume, layout, transfer function) classification.
struct TfClassification {
  std::uint64_t tf_signature = 0;
  int table_entries = 0;
  /// False when the occupancy scan was subsampled: intervals are then
  /// estimates and cullable() always says no.
  bool exact = false;
  std::vector<BrickClassification> bricks;
  int bricks_empty_hull = 0;
  int bricks_empty_cells = 0;

  /// May plan_frame cull this brick at full LOD, given the frame's
  /// functional decimation? (Coarse-LOD bricks are never occupancy
  /// culled: a level-L ghost shell reaches 2^L base voxels past the
  /// core, beyond what the padded-region scan bounds.)
  bool cullable(int brick, int decimation) const {
    if (!exact) return false;
    const BrickClassification& b = bricks[static_cast<std::size_t>(brick)];
    return decimation == 1 ? b.empty_cells : b.empty_hull;
  }
};

/// Classify `occupancy` against `tf` baked at `table_entries` (must
/// match what RayCastMapper::init bakes: 256).
TfClassification classify(const OccupancyIndex& occupancy,
                          const volren::TransferFunction& tf,
                          int table_entries = 256);

/// Memoizes classify() per (volume id, layout signature, TF signature).
class ClassificationCache {
 public:
  /// Returns the cached classification or builds (and counts) one.
  std::shared_ptr<const TfClassification> lookup_or_build(
      std::uint64_t volume_id, std::uint64_t layout_sig,
      const OccupancyIndex& occupancy, const volren::TransferFunction& tf,
      int table_entries = 256);

  /// How many classifications were actually computed (the memoization
  /// probe: one per distinct (volume, layout, TF), never per frame).
  std::uint64_t classifications_built() const { return built_; }

  void invalidate_volume(std::uint64_t volume_id);

 private:
  std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>,
           std::shared_ptr<const TfClassification>>
      entries_;
  std::uint64_t built_ = 0;
};

}  // namespace vrmr::lod
