#pragma once

// Functional GPU device simulator.
//
// What is real: memory-capacity accounting (allocations fail when VRAM
// is exhausted, which the out-of-core paths rely on), CUDA-style
// (grid × block) kernel execution semantics, and texture objects.
// What is modeled: execution *time*, charged by the DES layer using
// DeviceProps::kernel_time.
//
// Kernels are C++ callables invoked once per thread with a ThreadCtx
// giving blockIdx/threadIdx/blockDim, exactly mirroring how the paper's
// CUDA ray caster addresses its 16×16 blocks over the brick's screen
// footprint. Blocks are distributed over the host thread pool; threads
// within a block run sequentially (kernels in this codebase do not use
// intra-block synchronization).

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "gpusim/device_props.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/vec.hpp"

namespace vrmr::gpusim {

class Device;

/// Thrown when an allocation exceeds remaining VRAM — the signal the
/// MapReduce scheduler uses to enforce the §3.1.1 in-memory restriction.
class DeviceOutOfMemory : public std::runtime_error {
 public:
  DeviceOutOfMemory(const std::string& label, std::uint64_t requested,
                    std::uint64_t available)
      : std::runtime_error("device OOM allocating '" + label + "': requested " +
                           std::to_string(requested) + " B, available " +
                           std::to_string(available) + " B") {}
};

/// RAII handle for a tracked VRAM allocation. Movable, not copyable;
/// releases its bytes back to the device on destruction.
class DeviceAllocation {
 public:
  DeviceAllocation() = default;
  DeviceAllocation(Device* device, std::uint64_t bytes, std::string label);
  ~DeviceAllocation();

  DeviceAllocation(DeviceAllocation&& other) noexcept;
  DeviceAllocation& operator=(DeviceAllocation&& other) noexcept;
  DeviceAllocation(const DeviceAllocation&) = delete;
  DeviceAllocation& operator=(const DeviceAllocation&) = delete;

  std::uint64_t bytes() const { return bytes_; }
  const std::string& label() const { return label_; }
  bool valid() const { return device_ != nullptr; }

  void release();

 private:
  Device* device_ = nullptr;
  std::uint64_t bytes_ = 0;
  std::string label_;
};

/// Per-thread kernel context (CUDA threadIdx/blockIdx analogue).
struct ThreadCtx {
  Int3 block_idx;
  Int3 thread_idx;
  Int3 block_dim;
  Int3 grid_dim;

  /// Global 2-D thread coordinates (the pixel the thread handles).
  int global_x() const { return block_idx.x * block_dim.x + thread_idx.x; }
  int global_y() const { return block_idx.y * block_dim.y + thread_idx.y; }
};

class Device {
 public:
  Device(int id, DeviceProps props, ThreadPool* pool = nullptr)
      : id_(id), props_(std::move(props)),
        pool_(pool ? pool : &ThreadPool::global()) {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  int id() const { return id_; }
  const DeviceProps& props() const { return props_; }

  // --- memory ------------------------------------------------------------
  std::uint64_t vram_used() const { return vram_used_; }
  std::uint64_t vram_available() const { return props_.vram_bytes - vram_used_; }

  /// Tracked allocation; throws DeviceOutOfMemory on exhaustion.
  DeviceAllocation allocate(std::uint64_t bytes, std::string label);

  /// Capacity check without allocating (scheduler-side validation).
  bool can_allocate(std::uint64_t bytes) const { return bytes <= vram_available(); }

  // --- execution ---------------------------------------------------------

  /// Launch a 2-D grid of 2-D blocks; `kernel` is invoked for every
  /// thread. Blocking, like a CUDA launch followed by
  /// cudaDeviceSynchronize. Returns the number of threads launched.
  std::uint64_t launch_2d(Int3 grid, Int3 block,
                          const std::function<void(const ThreadCtx&)>& kernel);

  std::uint64_t kernels_launched() const { return kernels_launched_; }

 private:
  friend class DeviceAllocation;
  void free_bytes(std::uint64_t bytes);

  int id_;
  DeviceProps props_;
  ThreadPool* pool_;
  std::uint64_t vram_used_ = 0;
  std::uint64_t kernels_launched_ = 0;
};

}  // namespace vrmr::gpusim
