#pragma once

// Texture objects with hardware-style filtering.
//
// Texture3D reproduces CUDA's cudaFilterModeLinear + cudaAddressModeClamp
// semantics for *unnormalized* coordinates: a fetch at coordinate x
// linearly interpolates the two texels bracketing (x - 0.5). The paper
// stores each brick in a 3-D float texture precisely to get these
// filtering units for free (§3.2); our renderer's cross-brick seam
// correctness (ghost voxels) depends on matching this sampling rule
// exactly, and the unit tests pin it.
//
// Texture1D is the 1-D transfer-function texture (scalar -> RGBA),
// sampled with normalized coordinates in [0, 1].

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/device.hpp"
#include "util/check.hpp"
#include "util/vec.hpp"

namespace vrmr::gpusim {

class Texture3D {
 public:
  /// Allocates VRAM for `dims` float voxels on `device`.
  ///
  /// `accounted_bytes` overrides how much VRAM the texture charges
  /// against the device (0 = the stored payload size). The renderer's
  /// decimated-proxy mode stores a reduced grid but must still account
  /// the *logical* brick footprint so the fit-in-VRAM restriction and
  /// out-of-core behaviour track paper-scale volumes (DESIGN.md §2).
  Texture3D(Device& device, Int3 dims, std::uint64_t accounted_bytes = 0);

  Int3 dims() const { return dims_; }
  std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(dims_.volume()) * sizeof(float);
  }

  /// Synchronous host-to-device copy of the full extent (the paper notes
  /// CUDA 3-D texture uploads forced synchronous copies; the DES layer
  /// charges this against both the PCIe link and the GPU).
  void upload(std::span<const float> voxels);

  bool uploaded() const { return !data_.empty(); }

  /// Point fetch with clamp addressing (voxel index space).
  float fetch(int x, int y, int z) const {
    x = std::clamp(x, 0, dims_.x - 1);
    y = std::clamp(y, 0, dims_.y - 1);
    z = std::clamp(z, 0, dims_.z - 1);
    return data_[(static_cast<size_t>(z) * dims_.y + y) * dims_.x + x];
  }

  /// Trilinear fetch at unnormalized coordinates (CUDA linear-filter
  /// semantics: interpolates around p - 0.5) with clamp addressing.
  float sample(Vec3 p) const {
    const float fx = p.x - 0.5f;
    const float fy = p.y - 0.5f;
    const float fz = p.z - 0.5f;
    const int x0 = static_cast<int>(std::floor(fx));
    const int y0 = static_cast<int>(std::floor(fy));
    const int z0 = static_cast<int>(std::floor(fz));
    const float tx = fx - static_cast<float>(x0);
    const float ty = fy - static_cast<float>(y0);
    const float tz = fz - static_cast<float>(z0);

    const float c000 = fetch(x0, y0, z0);
    const float c100 = fetch(x0 + 1, y0, z0);
    const float c010 = fetch(x0, y0 + 1, z0);
    const float c110 = fetch(x0 + 1, y0 + 1, z0);
    const float c001 = fetch(x0, y0, z0 + 1);
    const float c101 = fetch(x0 + 1, y0, z0 + 1);
    const float c011 = fetch(x0, y0 + 1, z0 + 1);
    const float c111 = fetch(x0 + 1, y0 + 1, z0 + 1);

    const float c00 = lerpf(c000, c100, tx);
    const float c10 = lerpf(c010, c110, tx);
    const float c01 = lerpf(c001, c101, tx);
    const float c11 = lerpf(c011, c111, tx);
    const float c0 = lerpf(c00, c10, ty);
    const float c1 = lerpf(c01, c11, ty);
    return lerpf(c0, c1, tz);
  }

 private:
  Int3 dims_;
  DeviceAllocation vram_;
  std::vector<float> data_;
};

class Texture1D {
 public:
  /// Allocates VRAM for `entries` RGBA texels.
  Texture1D(Device& device, int entries);

  int entries() const { return static_cast<int>(data_.size()); }
  std::uint64_t bytes() const { return data_.size() * sizeof(Vec4); }

  void upload(std::span<const Vec4> texels);

  /// Linear-filtered lookup at normalized coordinate t in [0, 1].
  Vec4 sample(float t) const {
    VRMR_DCHECK(!data_.empty());
    const float x = clampf(t, 0.0f, 1.0f) * static_cast<float>(data_.size()) - 0.5f;
    const int i0 = static_cast<int>(std::floor(x));
    const float frac = x - static_cast<float>(i0);
    const int lo = std::clamp(i0, 0, static_cast<int>(data_.size()) - 1);
    const int hi = std::clamp(i0 + 1, 0, static_cast<int>(data_.size()) - 1);
    return lerp(data_[static_cast<size_t>(lo)], data_[static_cast<size_t>(hi)], frac);
  }

 private:
  DeviceAllocation vram_;
  std::vector<Vec4> data_;
};

}  // namespace vrmr::gpusim
