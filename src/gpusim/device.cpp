#include "gpusim/device.hpp"

namespace vrmr::gpusim {

DeviceAllocation::DeviceAllocation(Device* device, std::uint64_t bytes, std::string label)
    : device_(device), bytes_(bytes), label_(std::move(label)) {}

DeviceAllocation::~DeviceAllocation() { release(); }

DeviceAllocation::DeviceAllocation(DeviceAllocation&& other) noexcept
    : device_(other.device_), bytes_(other.bytes_), label_(std::move(other.label_)) {
  other.device_ = nullptr;
  other.bytes_ = 0;
}

DeviceAllocation& DeviceAllocation::operator=(DeviceAllocation&& other) noexcept {
  if (this != &other) {
    release();
    device_ = other.device_;
    bytes_ = other.bytes_;
    label_ = std::move(other.label_);
    other.device_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

void DeviceAllocation::release() {
  if (device_ != nullptr) {
    device_->free_bytes(bytes_);
    device_ = nullptr;
    bytes_ = 0;
  }
}

DeviceAllocation Device::allocate(std::uint64_t bytes, std::string label) {
  if (bytes > vram_available()) {
    throw DeviceOutOfMemory(label, bytes, vram_available());
  }
  vram_used_ += bytes;
  return DeviceAllocation(this, bytes, std::move(label));
}

void Device::free_bytes(std::uint64_t bytes) {
  VRMR_CHECK(bytes <= vram_used_);
  vram_used_ -= bytes;
}

std::uint64_t Device::launch_2d(Int3 grid, Int3 block,
                                const std::function<void(const ThreadCtx&)>& kernel) {
  VRMR_CHECK_MSG(grid.x > 0 && grid.y > 0, "empty grid " << grid);
  VRMR_CHECK_MSG(block.x > 0 && block.y > 0, "empty block " << block);
  VRMR_CHECK_MSG(static_cast<std::int64_t>(block.x) * block.y <= 1024,
                 "block exceeds 1024 threads: " << block);

  const std::int64_t num_blocks = static_cast<std::int64_t>(grid.x) * grid.y;
  grid.z = 1;
  block.z = 1;

  pool_->parallel_for(
      0, num_blocks,
      [&](std::int64_t b) {
        ThreadCtx ctx;
        ctx.block_idx = Int3{static_cast<int>(b % grid.x), static_cast<int>(b / grid.x), 0};
        ctx.block_dim = block;
        ctx.grid_dim = grid;
        for (int ty = 0; ty < block.y; ++ty) {
          for (int tx = 0; tx < block.x; ++tx) {
            ctx.thread_idx = Int3{tx, ty, 0};
            kernel(ctx);
          }
        }
      },
      /*grain=*/1);

  ++kernels_launched_;
  return static_cast<std::uint64_t>(num_blocks) * block.x * block.y;
}

}  // namespace vrmr::gpusim
