#pragma once

// Static description of a simulated GPU, plus its analytic cost model.
//
// Defaults model a Tesla C1060-class device (the per-GPU slice of the
// Tesla S1070 boards in the paper's NCSA Accelerator Cluster): 4 GiB of
// VRAM, 30 SMs, ~100 GB/s device memory, and a sustained trilinear
// texture-sampling rate calibrated so that the paper's §6.3 anchor
// (1024³ map compute ≈ 503 ms on 8 GPUs) is reproduced.

#include <cstdint>
#include <string>

namespace vrmr::gpusim {

struct DeviceProps {
  std::string name = "SimTesla C1060";

  /// Device memory capacity. The MapReduce restriction "any single map
  /// task must fit in GPU main memory" (§3.1.1) is enforced against it.
  std::uint64_t vram_bytes = 4ULL * 1024 * 1024 * 1024;

  /// Number of streaming multiprocessors (informational; block-level
  /// parallel execution uses the host pool regardless).
  int multiprocessors = 30;

  /// Sustained ray-casting throughput: trilinear 3-D texture fetch +
  /// 1-D transfer-function lookup + compositing arithmetic, per second.
  double sample_rate_per_s = 1.4e9;

  /// Fixed kernel launch overhead (driver + grid setup).
  double kernel_launch_overhead_s = 40e-6;

  /// Device-memory bandwidth; charged for kv-pair compaction on device.
  double mem_bandwidth_Bps = 100e9;

  // --- cost model --------------------------------------------------------

  /// Simulated duration of a map kernel that takes `samples` volume
  /// samples and writes `bytes_out` of key-value pairs to device memory.
  double kernel_time(std::uint64_t samples, std::uint64_t bytes_out = 0) const {
    return kernel_launch_overhead_s +
           static_cast<double>(samples) / sample_rate_per_s +
           static_cast<double>(bytes_out) / mem_bandwidth_Bps;
  }
};

}  // namespace vrmr::gpusim
