#include "gpusim/texture.hpp"

namespace vrmr::gpusim {

Texture3D::Texture3D(Device& device, Int3 dims, std::uint64_t accounted_bytes)
    : dims_(dims) {
  VRMR_CHECK_MSG(dims.x > 0 && dims.y > 0 && dims.z > 0, "bad texture dims " << dims);
  vram_ = device.allocate(accounted_bytes == 0 ? bytes() : accounted_bytes, "texture3d");
}

void Texture3D::upload(std::span<const float> voxels) {
  VRMR_CHECK_MSG(voxels.size() == static_cast<size_t>(dims_.volume()),
                 "upload size " << voxels.size() << " != extent " << dims_.volume());
  data_.assign(voxels.begin(), voxels.end());
}

Texture1D::Texture1D(Device& device, int entries) {
  VRMR_CHECK(entries > 0);
  data_.assign(static_cast<size_t>(entries), Vec4{});
  vram_ = device.allocate(bytes(), "texture1d");
}

void Texture1D::upload(std::span<const Vec4> texels) {
  VRMR_CHECK_MSG(texels.size() == data_.size(),
                 "upload size " << texels.size() << " != entries " << data_.size());
  std::copy(texels.begin(), texels.end(), data_.begin());
}

}  // namespace vrmr::gpusim
