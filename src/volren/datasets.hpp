#pragma once

// Synthetic proxies for the paper's three datasets (Fig. 2).
//
// The originals (a CT skull, a supernova simulation, a buoyant plume)
// are not redistributable; what the evaluation actually depends on is
// volume *size*, aspect ratio, dynamic range, and rough occupancy
// (empty-space fraction and opacity distribution drive early-ray
// termination and fragment counts). Each proxy is a smooth analytic
// field plus hash-based noise, normalized to [0, 1]:
//
//   skull     — nested ellipsoidal shells (skin / bone / cavity), the
//               classic CT-like density profile;
//   supernova — spherical shock shell modulated by turbulent noise
//               octaves around a dense core;
//   plume     — a rising buoyant column widening with height, with
//               side-entrained vortical noise; defaults to the paper's
//               512×512×2048 aspect.
//
// All fields are pure functions of the voxel coordinate, so they back
// ProceduralSource volumes of *any* logical resolution with no storage.

#include "volren/volume.hpp"

namespace vrmr::volren::datasets {

Volume skull(Int3 dims);
Volume supernova(Int3 dims);
Volume plume(Int3 dims = {512, 512, 2048});

/// Cube convenience used across tests/benches: side^3 skull/supernova.
Volume by_name(const std::string& name, Int3 dims);

}  // namespace vrmr::volren::datasets
