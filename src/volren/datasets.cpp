#include "volren/datasets.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace vrmr::volren::datasets {

namespace {

/// Smooth value noise: trilinear interpolation of lattice hashes.
float value_noise(Vec3 p, std::uint32_t seed) {
  const Vec3 f = vrmr::floor(p);
  const int x0 = static_cast<int>(f.x), y0 = static_cast<int>(f.y),
            z0 = static_cast<int>(f.z);
  const float tx = p.x - f.x, ty = p.y - f.y, tz = p.z - f.z;
  auto n = [&](int dx, int dy, int dz) {
    return lattice_noise(x0 + dx, y0 + dy, z0 + dz, seed);
  };
  const float c00 = lerpf(n(0, 0, 0), n(1, 0, 0), tx);
  const float c10 = lerpf(n(0, 1, 0), n(1, 1, 0), tx);
  const float c01 = lerpf(n(0, 0, 1), n(1, 0, 1), tx);
  const float c11 = lerpf(n(0, 1, 1), n(1, 1, 1), tx);
  return lerpf(lerpf(c00, c10, ty), lerpf(c01, c11, ty), tz);
}

/// Fractal (fBm) noise, `octaves` layers of value noise.
float fbm(Vec3 p, int octaves, std::uint32_t seed) {
  float sum = 0.0f;
  float amp = 0.5f;
  float freq = 1.0f;
  for (int o = 0; o < octaves; ++o) {
    sum += amp * value_noise(p * freq, seed + static_cast<std::uint32_t>(o) * 101u);
    amp *= 0.5f;
    freq *= 2.0f;
  }
  return sum;
}

/// Normalized coordinates in [-1, 1] from a voxel index.
Vec3 centered(Int3 v, Int3 dims) {
  return {2.0f * (static_cast<float>(v.x) + 0.5f) / static_cast<float>(dims.x) - 1.0f,
          2.0f * (static_cast<float>(v.y) + 0.5f) / static_cast<float>(dims.y) - 1.0f,
          2.0f * (static_cast<float>(v.z) + 0.5f) / static_cast<float>(dims.z) - 1.0f};
}

float smoothstep(float lo, float hi, float x) {
  const float t = clampf((x - lo) / (hi - lo), 0.0f, 1.0f);
  return t * t * (3.0f - 2.0f * t);
}

float skull_field(Int3 v, Int3 dims) {
  const Vec3 p = centered(v, dims);
  // Slightly anisotropic head shape.
  const Vec3 q{p.x / 0.72f, p.y / 0.85f, p.z / 0.80f};
  const float r = length(q);
  // Shells: skin (soft), bone (dense), brain cavity (medium), ventricle.
  const float skin = smoothstep(0.96f, 0.90f, r) * 0.25f;
  const float bone = (smoothstep(0.88f, 0.84f, r) - smoothstep(0.78f, 0.74f, r)) * 0.95f;
  const float brain = smoothstep(0.72f, 0.60f, r) * 0.45f;
  const float ventricle = smoothstep(0.25f, 0.15f, r) * -0.25f;
  // Eye sockets: two low-density wells punched into the bone shell.
  auto socket = [&](float sx) {
    const Vec3 d{q.x - sx, q.y - 0.28f, q.z - 0.78f};
    return smoothstep(0.30f, 0.10f, length(d)) * -0.85f;
  };
  const float noise = 0.06f * fbm(p * 9.0f, 3, 0xBADC0DEu);
  return clampf(skin + bone + brain + ventricle + socket(-0.35f) + socket(0.35f) + noise,
                0.0f, 1.0f);
}

float supernova_field(Int3 v, Int3 dims) {
  const Vec3 p = centered(v, dims);
  const float r = length(p);
  // Dense remnant core.
  const float core = smoothstep(0.22f, 0.05f, r) * 0.9f;
  // Expanding shock shell with turbulent thickness modulation.
  const float shell_r = 0.62f;
  const float turb = fbm(p * 6.0f, 4, 0x5EEDFACEu);
  const float shell_width = 0.10f + 0.12f * turb;
  const float shell = std::exp(-((r - shell_r) * (r - shell_r)) /
                               (2.0f * shell_width * shell_width)) *
                      (0.35f + 0.65f * turb);
  // Wispy ejecta between core and shell.
  const float ejecta = smoothstep(0.6f, 0.2f, r) * 0.30f * fbm(p * 11.0f, 3, 0xA11CE5u);
  return clampf(core + shell + ejecta, 0.0f, 1.0f);
}

float plume_field(Int3 v, Int3 dims) {
  const Vec3 p = centered(v, dims);  // z is the long (rise) axis
  const float h = 0.5f * (p.z + 1.0f);  // height in [0, 1]
  // Column widens as it rises and meanders sideways.
  const float meander_x = 0.18f * std::sin(6.0f * h) * h;
  const float meander_y = 0.18f * std::cos(5.0f * h) * h;
  const float dx = p.x - meander_x;
  const float dy = p.y - meander_y;
  const float radius = 0.08f + 0.45f * h * h;
  const float rr = std::sqrt(dx * dx + dy * dy);
  const float column = smoothstep(radius, radius * 0.35f, rr);
  // Entrained turbulence grows with height; density decays with height.
  const float turb = fbm(Vec3{p.x * 5.0f, p.y * 5.0f, p.z * 2.0f + 3.0f * h}, 4,
                         0x9E3779B9u);
  const float density = column * (1.0f - 0.55f * h) * (0.55f + 0.6f * turb);
  return clampf(density, 0.0f, 1.0f);
}

}  // namespace

Volume skull(Int3 dims) {
  return Volume::procedural("skull", dims, [dims](Int3 v) { return skull_field(v, dims); });
}

Volume supernova(Int3 dims) {
  return Volume::procedural("supernova", dims,
                            [dims](Int3 v) { return supernova_field(v, dims); });
}

Volume plume(Int3 dims) {
  return Volume::procedural("plume", dims, [dims](Int3 v) { return plume_field(v, dims); });
}

Volume by_name(const std::string& name, Int3 dims) {
  if (name == "skull") return skull(dims);
  if (name == "supernova") return supernova(dims);
  if (name == "plume") return plume(dims);
  VRMR_CHECK_MSG(false, "unknown dataset '" << name << "'");
  return skull(dims);  // unreachable
}

}  // namespace vrmr::volren::datasets
