#pragma once

// Float RGB framebuffer + PPM output + comparison metrics used by the
// correctness property tests (MapReduce render vs single-pass
// reference).

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/vec.hpp"

namespace vrmr::volren {

class Image {
 public:
  Image() = default;
  Image(int width, int height, Vec3 fill = {0, 0, 0});

  int width() const { return width_; }
  int height() const { return height_; }
  std::int64_t pixel_count() const {
    return static_cast<std::int64_t>(width_) * height_;
  }

  Vec3& at(int x, int y) { return pixels_[index(x, y)]; }
  const Vec3& at(int x, int y) const { return pixels_[index(x, y)]; }

  Vec3& at_index(std::uint32_t i) { return pixels_[i]; }
  const Vec3& at_index(std::uint32_t i) const { return pixels_[i]; }

  std::vector<Vec3>& pixels() { return pixels_; }
  const std::vector<Vec3>& pixels() const { return pixels_; }

  /// Binary PPM (P6), sRGB-ish gamma 2.2, 8-bit.
  void write_ppm(const std::filesystem::path& path) const;

 private:
  size_t index(int x, int y) const {
    VRMR_DCHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
    return static_cast<size_t>(y) * width_ + x;
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<Vec3> pixels_;
};

struct ImageDiff {
  double max_abs = 0.0;   // max per-channel absolute difference
  double mean_abs = 0.0;  // mean per-channel absolute difference
};

/// Channel-wise comparison; images must match in size.
ImageDiff compare_images(const Image& a, const Image& b);

/// Fraction of pixels with any channel differing by more than `tol`.
double fraction_differing(const Image& a, const Image& b, double tol);

}  // namespace vrmr::volren
