#pragma once

// Perspective pinhole camera: generates the per-pixel rays the map
// kernel casts (§2.1: "for each screen pixel on the plane, a single ray
// is traversed from the eye into the volume") and projects brick
// corners to find each chunk's screen-space footprint (§3.2: "the grid
// is made to match the size of the sub-image onto which the current
// chunk projects").

#include "util/aabb.hpp"
#include "util/mat4.hpp"
#include "util/vec.hpp"

namespace vrmr::volren {

/// Axis-aligned integer pixel rectangle [x0, x1) × [y0, y1).
struct PixelRect {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
  int width() const { return x1 - x0; }
  int height() const { return y1 - y0; }
  bool empty() const { return x1 <= x0 || y1 <= y0; }
  std::int64_t pixels() const {
    return static_cast<std::int64_t>(width()) * height();
  }
};

class Camera {
 public:
  Camera() = default;

  /// `fovy` in radians; image dimensions in pixels.
  Camera(Vec3 eye, Vec3 target, Vec3 up, float fovy, int image_width, int image_height,
         float znear = 0.05f, float zfar = 100.0f);

  /// Orbiting camera around `box`, a turn of `azimuth`/`elevation`
  /// radians at `distance` multiples of the box diagonal.
  static Camera orbit(const Aabb& box, float azimuth, float elevation, float distance,
                      float fovy, int image_width, int image_height);

  int width() const { return width_; }
  int height() const { return height_; }
  Vec3 eye() const { return eye_; }

  /// World-space ray through the center of pixel (px, py); direction is
  /// normalized, so ray parameters are world distances.
  Ray pixel_ray(int px, int py) const;

  /// Project a world point to pixel coordinates; returns false when the
  /// point is behind the near plane.
  bool project(Vec3 world, Vec3* pixel_depth) const;

  /// Conservative screen rectangle covering `box`'s projection, clipped
  /// to the image; the whole image when the box straddles the near
  /// plane. Returns an empty rect when fully off-screen.
  PixelRect project_box(const Aabb& box) const;

 private:
  Vec3 eye_{0, 0, 2};
  Vec3 forward_{0, 0, -1};
  Vec3 right_{1, 0, 0};
  Vec3 up_{0, 1, 0};
  float tan_half_fovy_ = 0.5f;
  float aspect_ = 1.0f;
  int width_ = 512;
  int height_ = 512;
  Mat4 view_proj_ = Mat4::identity();
  float znear_ = 0.05f;
};

}  // namespace vrmr::volren
