#include "volren/renderer.hpp"

#include <memory>

#include "util/check.hpp"

namespace vrmr::volren {

Camera make_camera(const Volume& volume, const RenderOptions& options) {
  if (options.use_explicit_camera) return options.explicit_camera;
  return Camera::orbit(volume.world_box(), options.azimuth, options.elevation,
                       options.distance, options.fovy, options.image_width,
                       options.image_height);
}

FrameSetup make_frame(const Volume& volume, const RenderOptions& options) {
  FrameSetup frame;
  frame.camera = make_camera(volume, options);
  frame.transfer = options.transfer;
  frame.cast = options.cast;
  return frame;
}

BrickLayout choose_layout(const Volume& volume, const RenderOptions& options,
                          int total_gpus) {
  Int3 brick_dims;
  if (options.brick_size > 0) {
    brick_dims = Int3{options.brick_size, options.brick_size, options.brick_size};
  } else {
    const int target = options.target_bricks > 0 ? options.target_bricks : total_gpus;
    brick_dims = BrickLayout::choose_brick_dims(volume.dims(), target);
  }
  return BrickLayout(volume.dims(), volume.world_extent(), brick_dims, options.ghost);
}

RenderResult render_mapreduce(cluster::Cluster& cluster, const Volume& volume,
                              const RenderOptions& options) {
  return render_mapreduce(cluster, volume, options, mr::StagingHook{});
}

RenderResult render_mapreduce(cluster::Cluster& cluster, const Volume& volume,
                              const RenderOptions& options,
                              mr::StagingHook staging_hook) {
  const BrickLayout layout = choose_layout(volume, options, cluster.total_gpus());
  return render_mapreduce(cluster, volume, options, std::move(staging_hook),
                          layout);
}

RenderResult render_mapreduce(cluster::Cluster& cluster, const Volume& volume,
                              const RenderOptions& options,
                              mr::StagingHook staging_hook,
                              const BrickLayout& layout) {
  VRMR_CHECK(options.image_width > 0 && options.image_height > 0);

  const FrameSetup frame = make_frame(volume, options);

  mr::JobConfig config;
  config.value_size = sizeof(RayFragment);
  config.domain.num_keys =
      static_cast<std::uint32_t>(options.image_width) *
      static_cast<std::uint32_t>(options.image_height);
  config.domain.image_width = static_cast<std::uint32_t>(options.image_width);
  config.partition = options.partition;
  config.sort = options.sort;
  config.reduce = options.reduce;
  config.include_disk_io = options.include_disk_io;
  config.staging_hook = std::move(staging_hook);

  mr::Job job(cluster, config);

  job.set_mapper_factory([&volume, &frame](int, gpusim::Device&) {
    return std::make_unique<RayCastMapper>(volume, frame);
  });

  std::vector<std::vector<FinishedPixel>> pieces(
      static_cast<size_t>(cluster.total_gpus()));
  const float ert = options.cast.ert_threshold;
  const Vec3 background = options.background;
  job.set_reducer_factory([&pieces, ert, background](int r) {
    return std::make_unique<CompositeReducer>(ert, background,
                                              &pieces[static_cast<size_t>(r)]);
  });

  for (const BrickInfo& info : layout.bricks()) {
    job.add_chunk(std::make_unique<BrickChunk>(volume, info));
  }

  RenderResult result;
  result.stats = job.run();
  // Stitching is outside the timed pipeline (§5).
  result.image = stitch_image(options.image_width, options.image_height, background,
                              pieces);
  result.camera = frame.camera;
  result.brick_size = layout.brick_size();
  result.num_bricks = layout.num_bricks();
  result.logical_voxels = static_cast<std::uint64_t>(volume.voxel_count());
  return result;
}

}  // namespace vrmr::volren
