#include "volren/renderer.hpp"

#include <algorithm>
#include <memory>

#include "compress/brick_codec.hpp"
#include "lod/occupancy.hpp"
#include "lod/pyramid.hpp"
#include "util/check.hpp"

namespace vrmr::volren {

Camera make_camera(const Volume& volume, const RenderOptions& options) {
  if (options.use_explicit_camera) return options.explicit_camera;
  return Camera::orbit(volume.world_box(), options.azimuth, options.elevation,
                       options.distance, options.fovy, options.image_width,
                       options.image_height);
}

FrameSetup make_frame(const Volume& volume, const RenderOptions& options) {
  FrameSetup frame;
  frame.camera = make_camera(volume, options);
  frame.transfer = options.transfer;
  frame.cast = options.cast;
  return frame;
}

BrickLayout choose_layout(const Volume& volume, const RenderOptions& options,
                          int total_gpus) {
  Int3 brick_dims;
  if (options.brick_size > 0) {
    brick_dims = Int3{options.brick_size, options.brick_size, options.brick_size};
  } else {
    const int target = options.target_bricks > 0 ? options.target_bricks : total_gpus;
    brick_dims = BrickLayout::choose_brick_dims(volume.dims(), target);
  }
  return BrickLayout(volume.dims(), volume.world_extent(), brick_dims, options.ghost);
}

RenderResult render_mapreduce(cluster::Cluster& cluster, const Volume& volume,
                              const RenderOptions& options) {
  return render_mapreduce(cluster, volume, options, mr::StagingHook{});
}

RenderResult render_mapreduce(cluster::Cluster& cluster, const Volume& volume,
                              const RenderOptions& options,
                              mr::StagingHook staging_hook) {
  const BrickLayout layout = choose_layout(volume, options, cluster.total_gpus());
  return render_mapreduce(cluster, volume, options, std::move(staging_hook),
                          layout);
}

RenderResult render_mapreduce(cluster::Cluster& cluster, const Volume& volume,
                              const RenderOptions& options,
                              mr::StagingHook staging_hook,
                              const BrickLayout& layout) {
  auto frame = plan_frame(cluster, volume, options, std::move(staging_hook), layout);
  frame->plan().run_to_completion();
  return frame->finish();
}

std::unique_ptr<PlannedFrame> plan_frame(cluster::Cluster& cluster, const Volume& volume,
                                         const RenderOptions& options,
                                         mr::StagingHook staging_hook,
                                         const BrickLayout& layout) {
  return plan_frame(cluster, volume, options, std::move(staging_hook), layout,
                    AdaptiveQuality{});
}

std::unique_ptr<PlannedFrame> plan_frame(cluster::Cluster& cluster, const Volume& volume,
                                         const RenderOptions& options,
                                         mr::StagingHook staging_hook,
                                         const BrickLayout& layout,
                                         const AdaptiveQuality& aq) {
  VRMR_CHECK(options.image_width > 0 && options.image_height > 0);

  mr::JobConfig config;
  config.value_size = sizeof(RayFragment);
  config.domain.num_keys =
      static_cast<std::uint32_t>(options.image_width) *
      static_cast<std::uint32_t>(options.image_height);
  config.domain.image_width = static_cast<std::uint32_t>(options.image_width);
  config.partition = options.partition;
  config.sort = options.sort;
  config.reduce = options.reduce;
  config.barrier_mode = options.barrier_mode;
  config.include_disk_io = options.include_disk_io;
  config.staging_hook = std::move(staging_hook);
  config.fetch_hook = aq.fetch_hook;
  config.fault_hook = aq.fault_hook;
  config.trace = options.trace;

  auto planned = std::unique_ptr<PlannedFrame>(new PlannedFrame());
  planned->plan_ = std::make_unique<mr::FramePlan>(cluster, std::move(config));
  planned->pieces_.resize(static_cast<std::size_t>(cluster.total_gpus()));
  planned->background_ = options.background;
  planned->width_ = options.image_width;
  planned->height_ = options.image_height;
  planned->brick_size_ = layout.brick_size();
  planned->num_bricks_ = layout.num_bricks();
  planned->logical_voxels_ = static_cast<std::uint64_t>(volume.voxel_count());

  // Factories run at plan().start(), which may be well after this call:
  // capture the frame setup by value and the volume by reference (the
  // caller guarantees it outlives the frame). The result's camera is
  // the one the mapper renders with, by construction.
  const FrameSetup frame = make_frame(volume, options);
  planned->camera_ = frame.camera;
  planned->plan_->set_mapper_factory([&volume, frame](int, gpusim::Device&) {
    return std::make_unique<RayCastMapper>(volume, frame);
  });

  auto* pieces = &planned->pieces_;  // pointer-stable: PlannedFrame is pinned
  const float ert = options.cast.ert_threshold;
  const Vec3 background = options.background;
  planned->plan_->set_reducer_factory([pieces, ert, background](int r) {
    return std::make_unique<CompositeReducer>(
        ert, background, &(*pieces)[static_cast<std::size_t>(r)]);
  });

  const lod::LodPyramid* pyramid = aq.pyramid;
  const int base_level = pyramid != nullptr ? pyramid->clamp(options.max_lod) : 0;

  int chunk_index = 0;
  for (const BrickInfo& info : layout.bricks()) {
    // Exactly the rect cast_brick launches over: off-screen bricks
    // emit nothing, and every emitted key lands inside the rect.
    const PixelRect rect = frame.camera.project_box(info.world_box);
    const int projected_pixels =
        rect.empty() ? 0 : rect.width() * rect.height();

    int level = 0;
    if (pyramid != nullptr) {
      level = lod::select_level(*pyramid, info, projected_pixels, base_level,
                                options.quality);
    }

    // Occupancy culling applies only to full-resolution bricks: a
    // level-L ghost shell reaches 2^L base voxels past the core, beyond
    // the padded region the occupancy scan bounds. cullable() already
    // demands an exact scan and (for the fine per-cell test)
    // decimation == 1 — see lod/occupancy.hpp for the soundness
    // argument that makes this bit-identical.
    if (level == 0 && aq.classification != nullptr &&
        aq.classification->cullable(info.id, options.cast.decimation)) {
      planned->plan_->add_chunk(std::make_unique<BrickChunk>(volume, info));
      planned->plan_->set_chunk_footprint(chunk_index, 0, 0, 0, 0);  // empty: cull
      ++planned->occupancy_culled_;
      ++chunk_index;
      continue;
    }

    // Pyramid levels share the base grid's brick ids, so a level plan
    // (compress::analyze over the level volume + layout) indexes by the
    // same id. A level without a plan stages uncompressed.
    if (level > 0) {
      const lod::LodLevel& lvl = pyramid->level(level);
      auto chunk = std::make_unique<BrickChunk>(
          *lvl.volume, lvl.layout->brick(info.id), lvl.level, lvl.stride,
          lvl.cache_signature);
      if (static_cast<std::size_t>(level) < aq.level_compression.size() &&
          aq.level_compression[static_cast<std::size_t>(level)] != nullptr) {
        const compress::BrickCompression& bc =
            aq.level_compression[static_cast<std::size_t>(level)]->brick(info.id);
        chunk->set_compression(bc.stored_bytes, bc.decompress_s);
      }
      planned->plan_->add_chunk(std::move(chunk));
      planned->max_level_ = std::max(planned->max_level_, level);
    } else {
      auto chunk = std::make_unique<BrickChunk>(volume, info);
      if (aq.compression != nullptr) {
        const compress::BrickCompression& bc = aq.compression->brick(info.id);
        chunk->set_compression(bc.stored_bytes, bc.decompress_s);
      }
      planned->plan_->add_chunk(std::move(chunk));
    }
    if (options.screen_footprints) {
      // Level world boxes are bit-identical to the base brick's, so the
      // same rect is exactly the LOD chunk's launch rect too.
      planned->plan_->set_chunk_footprint(chunk_index, rect.x0, rect.y0, rect.x1,
                                          rect.y1);
    }
    ++chunk_index;
  }
  return planned;
}

RenderResult PlannedFrame::finish() {
  VRMR_CHECK_MSG(plan_->finished(), "PlannedFrame::finish before the plan finished");
  VRMR_CHECK_MSG(!finished_, "PlannedFrame::finish is single-use");
  finished_ = true;
  RenderResult result;
  result.stats = plan_->stats();
  // Stitching is outside the timed pipeline (§5).
  result.image = stitch_image(width_, height_, background_, pieces_);
  result.camera = camera_;
  result.brick_size = brick_size_;
  result.num_bricks = num_bricks_;
  result.logical_voxels = logical_voxels_;
  return result;
}

}  // namespace vrmr::volren
