#include "volren/binary_swap.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "mr/sorter.hpp"
#include "util/check.hpp"
#include "volren/marching.hpp"

namespace vrmr::volren {

namespace {

bool is_power_of_two(int v) { return v > 0 && (v & (v - 1)) == 0; }

/// Per-GPU full-resolution partial image (premultiplied; transparent
/// where no fragment landed).
struct Partial {
  std::vector<Rgba> pixels;
};

}  // namespace

BinarySwapResult render_binary_swap(cluster::Cluster& cluster, const Volume& volume,
                                    const RenderOptions& options) {
  const int num_gpus = cluster.total_gpus();
  VRMR_CHECK_MSG(is_power_of_two(num_gpus),
                 "binary swap requires a power-of-two GPU count, got " << num_gpus);

  const FrameSetup frame = make_frame(volume, options);
  const int width = options.image_width;
  const int height = options.image_height;
  const std::int64_t total_pixels = static_cast<std::int64_t>(width) * height;

  // --- view-sorted slab decomposition -------------------------------------
  // One whole slab of bricks per GPU along the dominant view axis, so
  // GPU rank order equals front-to-back visibility order (see header).
  const Vec3 view = normalize(volume.world_box().center() - frame.camera.eye());
  int axis = 0;
  float best = std::fabs(view.x);
  if (std::fabs(view.y) > best) { axis = 1; best = std::fabs(view.y); }
  if (std::fabs(view.z) > best) { axis = 2; }
  const bool positive = view[axis] >= 0.0f;

  const int brick_size = std::max(2, ceil_div(volume.dims()[axis], num_gpus));
  const BrickLayout layout(volume.dims(), volume.world_extent(), brick_size,
                           options.ghost);
  const Int3 grid = layout.grid_dims();
  const int slabs = grid[axis];
  VRMR_CHECK_MSG(slabs <= num_gpus, "slab count " << slabs << " exceeds GPU count");

  // slab index (in view order) -> owning GPU rank.
  std::vector<std::vector<int>> gpu_bricks(static_cast<size_t>(num_gpus));
  for (const BrickInfo& info : layout.bricks()) {
    const int slab = info.grid_pos[axis];
    const int rank = positive ? slab : (slabs - 1 - slab);
    gpu_bricks[static_cast<size_t>(rank)].push_back(info.id);
  }

  BinarySwapResult result;
  std::vector<Partial> partials(static_cast<size_t>(num_gpus));
  for (auto& p : partials) p.pixels.assign(static_cast<size_t>(total_pixels), Rgba{});

  auto& engine = cluster.engine();
  const double t0 = engine.now();
  const auto& hw = cluster.config().hw;

  // --- phase 1: local render + local composite ----------------------------
  double t_map_end = t0;
  {
    sim::Join map_join(num_gpus, [&] { t_map_end = engine.now(); });
    // Build per-GPU transfer textures once.
    std::vector<std::unique_ptr<gpusim::Texture1D>> transfer_tex;
    for (int g = 0; g < num_gpus; ++g) {
      transfer_tex.push_back(
          std::make_unique<gpusim::Texture1D>(cluster.gpu(g), 256));
      transfer_tex.back()->upload(frame.transfer.bake(256));
    }

    for (int g = 0; g < num_gpus; ++g) {
      const int node = cluster.node_of_gpu(g);
      double ready_at = 0.0;  // accumulated via resource chaining below

      // Render this GPU's bricks sequentially, then composite locally.
      // We run the functional kernels up front (deterministic) and
      // charge the modeled durations as one chain per GPU.
      mr::KvBuffer pairs(sizeof(RayFragment));
      double kernel_time = 0.0;
      std::uint64_t h2d_bytes = 0;
      std::uint64_t d2h_bytes = 0;
      for (int brick_id : gpu_bricks[static_cast<size_t>(g)]) {
        const BrickInfo& info = layout.brick(brick_id);
        const BrickCastOutput cast =
            cast_brick(cluster.gpu(g), volume, info, frame, *transfer_tex[static_cast<size_t>(g)]);
        result.total_samples += cast.samples;
        kernel_time += hw.gpu.kernel_time(
            cast.samples,
            cast.threads * (sizeof(std::uint32_t) + sizeof(RayFragment)));
        h2d_bytes += info.device_bytes();
        d2h_bytes += cast.threads * (sizeof(std::uint32_t) + sizeof(RayFragment));
        for (std::size_t i = 0; i < cast.keys.size(); ++i) {
          if (cast.keys[i] == mr::kPlaceholderKey) continue;
          pairs.append(cast.keys[i], &cast.fragments[i]);
        }
      }
      result.fragments += pairs.size();

      // Local composite: group by pixel, depth-sort, front-to-back.
      if (!pairs.empty()) {
        const mr::SortedGroups groups = mr::counting_sort(
            pairs, 0, static_cast<std::uint32_t>(total_pixels));
        std::vector<RayFragment> scratch;
        auto& out_pixels = partials[static_cast<size_t>(g)].pixels;
        for (std::size_t gi = 0; gi < groups.num_groups(); ++gi) {
          const std::uint32_t lo = groups.group_offsets[gi];
          const std::uint32_t hi = groups.group_offsets[gi + 1];
          scratch.resize(hi - lo);
          std::memcpy(scratch.data(), groups.sorted.value(lo),
                      static_cast<std::size_t>(hi - lo) * sizeof(RayFragment));
          std::sort(scratch.begin(), scratch.end());
          Rgba accum = Rgba::transparent();
          for (const RayFragment& f : scratch) {
            accum = composite_over(accum, f.color());
            if (accum.a >= frame.cast.ert_threshold) break;
          }
          out_pixels[groups.group_keys[gi]] = accum;
        }
      }

      // Charge the chain: H2D + kernels + D2H on GPU/PCIe, then the
      // local composite on a CPU core.
      (void)ready_at;
      const double h2d = hw.pcie.transfer_time(h2d_bytes);
      const double d2h = hw.pcie.transfer_time(d2h_bytes);
      const double composite =
          static_cast<double>(pairs.size()) / hw.cpu.reduce_rate_frags_per_s;
      const std::array<sim::Resource*, 2> links = {&cluster.pcie(node),
                                                   &cluster.gpu_stream(g)};
      sim::Resource::acquire_multi(links, h2d, [&, g, node, kernel_time, d2h, composite](
                                                   sim::SimTime, sim::SimTime) {
        cluster.gpu_stream(g).acquire(kernel_time, [&, g, node, d2h, composite](
                                                       sim::SimTime, sim::SimTime) {
          const std::array<sim::Resource*, 2> back = {&cluster.pcie(node),
                                                      &cluster.gpu_stream(g)};
          sim::Resource::acquire_multi(back, d2h, [&, node, composite](sim::SimTime,
                                                                       sim::SimTime) {
            cluster.cpu(node).acquire(
                composite, [&](sim::SimTime, sim::SimTime) { map_join.arrive(); });
          });
        });
      });
    }
    engine.run();
  }

  // --- phase 2: swap rounds ------------------------------------------------
  // Region owned by every GPU, halved each round. Lower rank is closer
  // to the eye (slab order), so merges are rank-ordered 'over'.
  struct Region {
    std::int64_t lo, hi;
  };
  std::vector<Region> regions(static_cast<size_t>(num_gpus), Region{0, total_pixels});
  const int rounds = num_gpus > 1 ? static_cast<int>(std::log2(num_gpus)) : 0;
  result.rounds = rounds;

  for (int r = 0; r < rounds; ++r) {
    const int bit = 1 << r;
    // Functional merge uses pre-round snapshots so the pair's two
    // merges are symmetric.
    std::vector<Partial> snapshot = partials;

    int deliveries = 0;
    sim::Join round_join(num_gpus, [] {});
    for (int g = 0; g < num_gpus; ++g) {
      const int partner = g ^ bit;
      const Region reg = regions[static_cast<size_t>(g)];
      const std::int64_t mid = (reg.lo + reg.hi) / 2;
      const bool keep_low = (g & bit) == 0;
      const Region kept = keep_low ? Region{reg.lo, mid} : Region{mid, reg.hi};
      const std::uint64_t bytes =
          static_cast<std::uint64_t>(keep_low ? reg.hi - mid : mid - reg.lo) *
          sizeof(Rgba);
      result.bytes_net += bytes;
      ++deliveries;
      cluster.fabric().send(cluster.node_of_gpu(g), cluster.node_of_gpu(partner), bytes,
                            [&round_join] { round_join.arrive(); });

      // Merge the partner's half of our kept region (their send) with
      // ours, in rank order.
      auto& mine = partials[static_cast<size_t>(g)].pixels;
      const auto& theirs = snapshot[static_cast<size_t>(partner)].pixels;
      for (std::int64_t i = kept.lo; i < kept.hi; ++i) {
        const Rgba front = g < partner ? mine[static_cast<size_t>(i)]
                                       : theirs[static_cast<size_t>(i)];
        const Rgba back = g < partner ? theirs[static_cast<size_t>(i)]
                                      : mine[static_cast<size_t>(i)];
        mine[static_cast<size_t>(i)] = composite_over(front, back);
      }
      regions[static_cast<size_t>(g)] = kept;
    }
    VRMR_CHECK(deliveries == num_gpus);
    engine.run();
  }
  const double t_end = engine.now();

  result.map_s = t_map_end - t0;
  result.swap_s = t_end - t_map_end;
  result.runtime_s = t_end - t0;

  // --- gather / stitch (untimed) -------------------------------------------
  result.image = Image(width, height, options.background);
  for (int g = 0; g < num_gpus; ++g) {
    const Region reg = regions[static_cast<size_t>(g)];
    const auto& pix = partials[static_cast<size_t>(g)].pixels;
    for (std::int64_t i = reg.lo; i < reg.hi; ++i) {
      result.image.at_index(static_cast<std::uint32_t>(i)) =
          blend_background(pix[static_cast<size_t>(i)], options.background);
    }
  }
  return result;
}

}  // namespace vrmr::volren
