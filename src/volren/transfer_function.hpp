#pragma once

// 1-D transfer function: scalar in [0, 1] -> straight-alpha RGBA.
//
// Defined by piecewise-linear control points and baked into a 256-entry
// table matching the paper's "texture-based 1D transfer function"
// (§3.2); the map kernel uploads the baked table into a Texture1D and
// samples it per step.

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"
#include "util/vec.hpp"

namespace vrmr::volren {

struct TransferPoint {
  float scalar = 0.0f;  // position in [0, 1]
  Vec4 rgba;            // straight alpha
};

class TransferFunction {
 public:
  /// Points must be sorted by scalar and span at least two entries.
  explicit TransferFunction(std::vector<TransferPoint> points);

  /// Piecewise-linear evaluation (exact, not the baked table).
  Vec4 evaluate(float scalar) const;

  /// Bake to a `entries`-texel table for Texture1D upload.
  std::vector<Vec4> bake(int entries = 256) const;

  const std::vector<TransferPoint>& points() const { return points_; }

  /// Stable content hash over the control-point table (FNV-1a over the
  /// raw float bits). Equal signatures <=> equal point tables for all
  /// practical purposes; occupancy classifications and (eventually)
  /// content-addressed tile caching key on it.
  std::uint64_t signature() const;

  /// Exact point-table equality (bitwise on the floats).
  bool operator==(const TransferFunction& other) const;

  // --- presets ------------------------------------------------------------

  /// Opacity ramps linearly with scalar; grayscale color.
  static TransferFunction grayscale_ramp(float max_opacity = 0.8f);

  /// CT-like: transparent air, amber soft tissue, white bone.
  static TransferFunction bone();

  /// Black-body fire colors for the supernova/plume proxies.
  static TransferFunction fire();

  /// Low-opacity blue-to-white for wispy data.
  static TransferFunction mist();

 private:
  std::vector<TransferPoint> points_;
};

}  // namespace vrmr::volren
