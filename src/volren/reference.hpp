#pragma once

// Single-pass reference ray caster: the whole volume in one texture, no
// bricking, no MapReduce. Serves two roles:
//
//   1. Ground truth for the pipeline-equivalence property tests — it
//      shares march_ray() and the texture sampling rules with the map
//      kernel, so the bricked MapReduce render must agree to
//      floating-point re-association noise.
//   2. The "single GPU renders small volumes in core" end of the
//      paper's scaling story.

#include <cstdint>

#include "volren/image.hpp"
#include "volren/raycast.hpp"
#include "volren/volume.hpp"

namespace vrmr::volren {

struct ReferenceResult {
  Image image;
  std::uint64_t samples = 0;  // logical samples taken
  std::uint64_t rays = 0;     // rays that hit the volume
};

/// Render `volume` with the frame's camera/transfer/sampling settings,
/// blending against `background`.
ReferenceResult render_reference(const Volume& volume, const FrameSetup& frame,
                                 Vec3 background);

}  // namespace vrmr::volren
