#include "volren/camera.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace vrmr::volren {

Camera::Camera(Vec3 eye, Vec3 target, Vec3 up, float fovy, int image_width,
               int image_height, float znear, float zfar) {
  VRMR_CHECK(image_width > 0 && image_height > 0);
  VRMR_CHECK(fovy > 0.0f);
  eye_ = eye;
  forward_ = normalize(target - eye);
  right_ = normalize(cross(forward_, up));
  up_ = cross(right_, forward_);
  tan_half_fovy_ = std::tan(fovy * 0.5f);
  width_ = image_width;
  height_ = image_height;
  aspect_ = static_cast<float>(image_width) / static_cast<float>(image_height);
  znear_ = znear;
  view_proj_ = Mat4::perspective(fovy, aspect_, znear, zfar) *
               Mat4::look_at(eye, target, up);
}

Camera Camera::orbit(const Aabb& box, float azimuth, float elevation, float distance,
                     float fovy, int image_width, int image_height) {
  const Vec3 center = box.center();
  const float diag = length(box.extent());
  const float d = distance * diag;
  const Vec3 eye{center.x + d * std::cos(elevation) * std::sin(azimuth),
                 center.y + d * std::sin(elevation),
                 center.z + d * std::cos(elevation) * std::cos(azimuth)};
  return Camera(eye, center, Vec3{0, 1, 0}, fovy, image_width, image_height,
                0.01f * diag, 10.0f * d + diag);
}

Ray Camera::pixel_ray(int px, int py) const {
  // Pixel centers; NDC y grows upward while pixel y grows downward.
  const float ndc_x =
      (2.0f * (static_cast<float>(px) + 0.5f) / static_cast<float>(width_)) - 1.0f;
  const float ndc_y =
      1.0f - (2.0f * (static_cast<float>(py) + 0.5f) / static_cast<float>(height_));
  const Vec3 dir = forward_ + right_ * (ndc_x * tan_half_fovy_ * aspect_) +
                   up_ * (ndc_y * tan_half_fovy_);
  return Ray{eye_, normalize(dir)};
}

bool Camera::project(Vec3 world, Vec3* pixel_depth) const {
  // Depth along the viewing direction (camera space -z).
  const float view_z = dot(world - eye_, forward_);
  if (view_z < znear_) return false;
  const Vec3 ndc = view_proj_.transform_point(world);
  if (pixel_depth) {
    pixel_depth->x = (ndc.x + 1.0f) * 0.5f * static_cast<float>(width_);
    pixel_depth->y = (1.0f - ndc.y) * 0.5f * static_cast<float>(height_);
    pixel_depth->z = view_z;
  }
  return true;
}

PixelRect Camera::project_box(const Aabb& box) const {
  float min_x = std::numeric_limits<float>::max();
  float min_y = std::numeric_limits<float>::max();
  float max_x = std::numeric_limits<float>::lowest();
  float max_y = std::numeric_limits<float>::lowest();
  bool any_behind = false;

  for (int corner = 0; corner < 8; ++corner) {
    const Vec3 p{(corner & 1) ? box.hi.x : box.lo.x, (corner & 2) ? box.hi.y : box.lo.y,
                 (corner & 4) ? box.hi.z : box.lo.z};
    Vec3 pd;
    if (!project(p, &pd)) {
      any_behind = true;
      continue;
    }
    min_x = std::min(min_x, pd.x);
    min_y = std::min(min_y, pd.y);
    max_x = std::max(max_x, pd.x);
    max_y = std::max(max_y, pd.y);
  }

  PixelRect rect;
  if (any_behind) {
    // Conservative: a box crossing the near plane covers an unbounded
    // projection; fall back to the full image.
    rect = PixelRect{0, 0, width_, height_};
    return rect;
  }
  if (min_x > max_x || min_y > max_y) return rect;  // empty

  rect.x0 = std::clamp(static_cast<int>(std::floor(min_x)), 0, width_);
  rect.y0 = std::clamp(static_cast<int>(std::floor(min_y)), 0, height_);
  rect.x1 = std::clamp(static_cast<int>(std::ceil(max_x)) + 1, 0, width_);
  rect.y1 = std::clamp(static_cast<int>(std::ceil(max_y)) + 1, 0, height_);
  return rect;
}

}  // namespace vrmr::volren
