#pragma once

// Volume bricking (the paper's "bricked input with partial-ray
// compositing", §3).
//
// The volume is cut into a regular grid of core regions of
// `brick_size` voxels per side (edge bricks may be smaller). Each brick
// stores a one-voxel ghost shell around its core (clamped at volume
// faces) so trilinear sampling is continuous across brick boundaries —
// this is what makes the MapReduce render bit-match the single-pass
// reference (DESIGN.md §6). Core regions tile the volume exactly; ray
// ownership of samples uses half-open [enter, exit) intervals, so every
// sample belongs to exactly one brick.

#include <cstdint>
#include <vector>

#include "util/aabb.hpp"
#include "util/check.hpp"
#include "util/vec.hpp"

namespace vrmr::volren {

struct BrickInfo {
  int id = 0;
  Int3 grid_pos;      // position in the brick grid
  Int3 core_origin;   // first core voxel (logical coordinates)
  Int3 core_dims;     // core voxels (<= brick_size per axis)
  Int3 padded_origin; // first stored voxel incl. ghost (clamped)
  Int3 padded_dims;   // stored voxels incl. ghost
  Aabb world_box;     // world-space box of the core region

  std::int64_t core_voxels() const { return core_dims.volume(); }
  std::int64_t padded_voxels() const { return padded_dims.volume(); }

  /// Logical bytes staged to the GPU for this brick (ghost included).
  std::uint64_t device_bytes() const {
    return static_cast<std::uint64_t>(padded_voxels()) * sizeof(float);
  }
};

class BrickLayout {
 public:
  /// `volume_dims` in voxels; `world_extent` the volume's world box
  /// size; `brick_size` core voxels per side (cubic bricks); `ghost`
  /// shell thickness.
  BrickLayout(Int3 volume_dims, Vec3 world_extent, int brick_size, int ghost = 1);

  /// Anisotropic bricks: per-axis core sizes. This is how the paper's
  /// "1024³ split into two bricks" configurations decompose — brick
  /// counts can track GPU counts exactly (16 bricks = 4x2x2) instead of
  /// jumping by 8x as cubic halving would.
  BrickLayout(Int3 volume_dims, Vec3 world_extent, Int3 brick_dims, int ghost = 1);

  Int3 grid_dims() const { return grid_; }
  int brick_size() const { return brick_size_; }
  Int3 brick_dims() const { return brick_dims_; }
  int ghost() const { return ghost_; }
  int num_bricks() const { return static_cast<int>(bricks_.size()); }

  const BrickInfo& brick(int id) const { return bricks_.at(static_cast<size_t>(id)); }
  const std::vector<BrickInfo>& bricks() const { return bricks_; }

  /// Brick id at grid coordinates.
  int brick_id(Int3 grid_pos) const {
    return (grid_pos.z * grid_.y + grid_pos.y) * grid_.x + grid_pos.x;
  }

  /// Stable content hash over (volume dims, brick dims, ghost) — the
  /// fields that determine every brick's stored voxel region. Used to
  /// key cached brick payloads: LOD pyramid levels of one volume and
  /// same-shaped layouts of *different-sized* volumes must never alias
  /// (brick dims alone would collide a level-1 layout with a base
  /// layout of the half-size volume).
  std::uint64_t signature() const;

  /// Smallest cubic brick size that yields at least `target_bricks`
  /// bricks (within the paper's "roughly a factor of four").
  static int choose_brick_size(Int3 volume_dims, int target_bricks);

  /// Anisotropic grid with exactly `target_bricks` bricks when the
  /// target factors cleanly (always a product of per-axis splits):
  /// repeatedly halves the currently longest brick axis. Returns the
  /// per-axis core sizes for the second constructor.
  static Int3 choose_brick_dims(Int3 volume_dims, int target_bricks);

 private:
  Int3 volume_dims_;
  Vec3 world_extent_;
  int brick_size_;
  Int3 brick_dims_;
  int ghost_;
  Int3 grid_;
  std::vector<BrickInfo> bricks_;
};

}  // namespace vrmr::volren
