#pragma once

// High-level public API: render one frame of a volume on a simulated
// multi-GPU cluster via the MapReduce pipeline. This is the facade the
// examples and the figure benches drive; everything it does is also
// reachable piecewise (BrickLayout + Job + RayCastMapper +
// CompositeReducer) for custom pipelines (see examples/mip_pipeline).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "mr/frame_plan.hpp"
#include "mr/job.hpp"
#include "obs/trace.hpp"
#include "volren/composite_reducer.hpp"
#include "volren/raycast.hpp"
#include "volren/volume.hpp"

namespace vrmr::lod {
class LodPyramid;
struct TfClassification;
}  // namespace vrmr::lod

namespace vrmr::compress {
struct CompressionPlan;
}  // namespace vrmr::compress

namespace vrmr::volren {

struct RenderOptions {
  // --- image & camera -----------------------------------------------------
  int image_width = 512;   // the paper evaluates at 512² (§5)
  int image_height = 512;
  float fovy = 0.7f;       // ~40°
  /// Orbit camera placement (ignored when use_explicit_camera).
  float azimuth = 0.65f;
  float elevation = 0.30f;
  float distance = 1.8f;   // multiples of the volume diagonal
  bool use_explicit_camera = false;
  Camera explicit_camera;

  // --- appearance -----------------------------------------------------------
  TransferFunction transfer = TransferFunction::bone();
  Vec3 background{0.0f, 0.0f, 0.0f};
  RaycastSettings cast;

  // --- bricking -------------------------------------------------------------
  /// Core brick edge in voxels; 0 = choose from target_bricks.
  int brick_size = 0;
  /// Desired brick count when brick_size == 0; 0 = the cluster's GPU
  /// count (the paper's bricks ≈ GPUs sweet spot, §6).
  int target_bricks = 0;
  int ghost = 1;

  // --- MapReduce configuration ----------------------------------------------
  mr::PartitionStrategy partition = mr::PartitionStrategy::PixelRoundRobin;
  mr::SortPlacement sort = mr::SortPlacement::Auto;
  mr::ReducePlacement reduce = mr::ReducePlacement::Cpu;
  /// Pipeline barrier enforcement (mr::BarrierMode): Global reproduces
  /// the paper's frame-wide sync points; PerReducer issues each
  /// reducer's sort the moment its own inbox completes and chains its
  /// reduce right after — same pixels, minimum time-to-first-tile.
  mr::BarrierMode barrier_mode = mr::BarrierMode::Global;
  /// Charge disk reads for every brick (out-of-core mode).
  bool include_disk_io = false;

  /// Seed each brick's FramePlan footprint with its screen-space
  /// projection (camera.project_box). Off-screen bricks are culled
  /// before staging, and PerReducer frames flush each (mapper, reducer)
  /// outbox the moment that pair's last contributing brick partitions —
  /// pixels are identical either way (the footprint is exactly the map
  /// kernel's launch rect).
  bool screen_footprints = true;

  // --- adaptive quality -----------------------------------------------------
  /// LOD floor for every brick when a pyramid is supplied to plan_frame:
  /// 0 = full resolution (clamped to the pyramid's depth). The service's
  /// SLO controller raises this under queue pressure.
  int max_lod = 0;
  /// Per-brick footprint-driven refinement knob in (0, 1]: values < 1
  /// let small-on-screen bricks drop below max_lod while they still
  /// offer >= quality voxels per screen pixel (lod::select_level).
  /// 1.0 keeps selection exactly at max_lod — the pixel-identity
  /// default.
  float quality = 1.0f;

  // --- observability --------------------------------------------------------
  /// Flight-recorder attribution; trace.recorder == nullptr (default)
  /// records nothing. Copied into the frame's JobConfig.
  obs::TraceContext trace;
};

struct RenderResult {
  Image image;
  mr::JobStats stats;
  Camera camera;
  int brick_size = 0;
  int num_bricks = 0;
  std::uint64_t logical_voxels = 0;

  /// The paper's figures of merit (§4.2).
  double fps() const { return stats.runtime_s > 0.0 ? 1.0 / stats.runtime_s : 0.0; }
  double voxels_per_second() const {
    return stats.runtime_s > 0.0 ? static_cast<double>(logical_voxels) / stats.runtime_s
                                 : 0.0;
  }
  double mvps() const { return voxels_per_second() / 1e6; }
};

/// Build the frame's camera from the options (orbit or explicit).
Camera make_camera(const Volume& volume, const RenderOptions& options);

/// Bundle camera + transfer + sampling for mapper construction.
FrameSetup make_frame(const Volume& volume, const RenderOptions& options);

/// The brick decomposition the renderer will use for (volume, options)
/// on a cluster with `total_gpus` GPUs. Exposed so serving layers
/// (src/service) can key residency caches and cost models off the very
/// same decomposition the frame job stages.
BrickLayout choose_layout(const Volume& volume, const RenderOptions& options,
                          int total_gpus);

/// Render one frame. The volume must outlive the call; the cluster's
/// simulated clock advances by the frame's runtime.
RenderResult render_mapreduce(cluster::Cluster& cluster, const Volume& volume,
                              const RenderOptions& options);

/// As above, with a chunk-residency hook (see mr::StagingHook): bricks
/// the hook reports GPU-resident skip disk + H2D staging. Used by the
/// render service's per-GPU brick cache.
RenderResult render_mapreduce(cluster::Cluster& cluster, const Volume& volume,
                              const RenderOptions& options,
                              mr::StagingHook staging_hook);

/// As above, with a precomputed brick decomposition — callers that
/// already built the layout (the service memoizes it at submit) skip
/// the per-frame rebuild. `layout` must equal choose_layout(volume,
/// options, cluster.total_gpus()) or residency keys and staging
/// disagree.
RenderResult render_mapreduce(cluster::Cluster& cluster, const Volume& volume,
                              const RenderOptions& options,
                              mr::StagingHook staging_hook,
                              const BrickLayout& layout);

/// Optional adaptive-quality inputs for plan_frame. Both pointers are
/// borrowed for the duration of the call only (levels referenced by
/// planned chunks must outlive the frame, which the pyramid's owner —
/// the service's per-volume quality state — guarantees).
struct AdaptiveQuality {
  /// LOD pyramid for (volume, layout); nullptr = no LOD (all bricks at
  /// base resolution regardless of options.max_lod/quality).
  const lod::LodPyramid* pyramid = nullptr;
  /// TF-emptiness classification for (volume, layout, options.transfer);
  /// nullptr = no occupancy culling. Only bricks selected at level 0
  /// are culled (coarse ghost shells reach beyond the scanned region).
  const lod::TfClassification* classification = nullptr;
  /// Per-brick compression outcomes for the BASE layout
  /// (compress::analyze over (volume, layout)); nullptr = uncompressed
  /// planning. Every planned base-level BrickChunk gets its stored size
  /// and decompress quantum from plan.brick(id).
  const compress::CompressionPlan* compression = nullptr;
  /// Per-pyramid-level plans indexed by level (entries may be null, and
  /// the vector may be shorter than the pyramid — such levels plan
  /// uncompressed). Entry 0 is ignored: base bricks use `compression`.
  std::vector<const compress::CompressionPlan*> level_compression;
  /// Peer-hydration fetch hook, copied into the frame's JobConfig (see
  /// mr::FetchHook): consulted on staging misses before the disk read.
  mr::FetchHook fetch_hook;
  /// Fault-injection hook, copied into the frame's JobConfig (see
  /// mr::FaultHook): consulted at each map-quantum issue.
  mr::FaultHook fault_hook;
};

/// A planned (not yet executed) frame: the ray-cast mapper, compositing
/// reducers and brick chunks wired onto an mr::FramePlan, plus the
/// per-reducer output buffers. This is the quantum-granular entry point
/// the render service's preemptive scheduler drives — the same wiring
/// render_mapreduce runs to completion in one call, with execution
/// control handed to the caller:
///
///   auto frame = plan_frame(cluster, volume, options, hook, layout);
///   frame->plan().on_tile_done(...);        // stream tiles
///   frame->plan().start();                  // then issue quanta, or:
///   frame->plan().run_to_completion();      // the monolithic schedule
///   RenderResult result = frame->finish();  // stitch + stats
///
/// One *tile* is one reducer's share of the key domain (partition
/// strategy decides the pixel set); tile(r) is final from the moment
/// reducer r's reduce quantum completes.
class PlannedFrame {
 public:
  PlannedFrame(const PlannedFrame&) = delete;
  PlannedFrame& operator=(const PlannedFrame&) = delete;

  mr::FramePlan& plan() { return *plan_; }
  const mr::FramePlan& plan() const { return *plan_; }

  /// Tiles == reducers == GPUs.
  int num_tiles() const { return static_cast<int>(pieces_.size()); }

  /// Finished pixels of reducer `r`'s tile. Stable and final once that
  /// reduce quantum completed; empty tiles (a reducer owning no covered
  /// pixels) are legitimate.
  std::span<const FinishedPixel> tile(int r) const {
    return pieces_.at(static_cast<std::size_t>(r));
  }

  /// Stitch the tiles and finalize the RenderResult. Requires
  /// plan().finished(); call once.
  RenderResult finish();

  /// Bricks dropped by occupancy classification (TF-fully-transparent)
  /// before any staging — on top of whatever screen_footprints culled.
  int occupancy_culled() const { return occupancy_culled_; }
  /// Deepest pyramid level any planned chunk renders at (0 = the whole
  /// frame is full resolution).
  int max_level() const { return max_level_; }

 private:
  friend std::unique_ptr<PlannedFrame> plan_frame(cluster::Cluster&, const Volume&,
                                                  const RenderOptions&, mr::StagingHook,
                                                  const BrickLayout&,
                                                  const AdaptiveQuality&);
  PlannedFrame() = default;

  std::unique_ptr<mr::FramePlan> plan_;
  std::vector<std::vector<FinishedPixel>> pieces_;  // per reducer; pointer-stable
  Camera camera_;
  Vec3 background_;
  int width_ = 0, height_ = 0;
  int brick_size_ = 0, num_bricks_ = 0;
  std::uint64_t logical_voxels_ = 0;
  int occupancy_culled_ = 0;
  int max_level_ = 0;
  bool finished_ = false;
};

/// Build a PlannedFrame for (volume, options) on the cluster. `layout`
/// must equal choose_layout(volume, options, cluster.total_gpus());
/// the hook semantics match render_mapreduce. The volume must outlive
/// the returned frame.
std::unique_ptr<PlannedFrame> plan_frame(cluster::Cluster& cluster, const Volume& volume,
                                         const RenderOptions& options,
                                         mr::StagingHook staging_hook,
                                         const BrickLayout& layout);

/// As above with adaptive-quality inputs: per-brick pyramid level
/// selection (options.max_lod / options.quality against aq.pyramid) and
/// pre-staging occupancy culling (aq.classification). With a
/// default-constructed AdaptiveQuality this is exactly the 5-arg
/// overload — bit-identical planning.
std::unique_ptr<PlannedFrame> plan_frame(cluster::Cluster& cluster, const Volume& volume,
                                         const RenderOptions& options,
                                         mr::StagingHook staging_hook,
                                         const BrickLayout& layout,
                                         const AdaptiveQuality& aq);

}  // namespace vrmr::volren
