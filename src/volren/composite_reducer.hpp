#pragma once

// The compositing reducer (§3.1.2 / §3.2): "All ray fragments for a
// given pixel are ascending-depth sorted, composited, and blended
// against the background color." One key group == one pixel's
// fragments from every brick that contributed.
//
// Reducers keep their finished pixels locally; assembling them into the
// framebuffer is the separate stitching phase the paper excludes from
// its timings (§5) — see stitch_image().

#include <cstring>
#include <span>
#include <vector>

#include "mr/reducer.hpp"
#include "volren/fragment.hpp"
#include "volren/image.hpp"

namespace vrmr::volren {

struct FinishedPixel {
  std::uint32_t key = 0;  // y * width + x
  Vec3 rgb;
};

class CompositeReducer final : public mr::Reducer {
 public:
  /// `ert_threshold` mirrors the kernel's: once accumulated opacity
  /// crosses it, remaining (deeper) fragments are skipped. `out` must
  /// outlive the job; each reducer instance owns a disjoint key set so
  /// separate output vectors never conflict.
  CompositeReducer(float ert_threshold, Vec3 background, std::vector<FinishedPixel>* out)
      : ert_threshold_(ert_threshold), background_(background), out_(out) {}

  void begin(int reducer_index) override {
    (void)reducer_index;
    scratch_.clear();
  }

  void reduce(std::uint32_t key, const std::byte* values, std::size_t count) override {
    scratch_.resize(count);
    std::memcpy(scratch_.data(), values, count * sizeof(RayFragment));
    std::sort(scratch_.begin(), scratch_.end());  // ascending (depth, brick)

    Rgba accum = Rgba::transparent();
    for (const RayFragment& frag : scratch_) {
      accum = composite_over(accum, frag.color());
      if (accum.a >= ert_threshold_) break;
    }
    out_->push_back({key, blend_background(accum, background_)});
  }

 private:
  float ert_threshold_;
  Vec3 background_;
  std::vector<FinishedPixel>* out_;
  std::vector<RayFragment> scratch_;
};

/// The stitching phase: scatter every reducer's finished pixels into a
/// framebuffer pre-filled with the background color (pixels no fragment
/// reached are pure background, matching the reference renderer).
Image stitch_image(int width, int height, Vec3 background,
                   std::span<const std::vector<FinishedPixel>> pieces);

}  // namespace vrmr::volren
