#include "volren/transfer_function.hpp"

#include <algorithm>
#include <cstring>

namespace vrmr::volren {

TransferFunction::TransferFunction(std::vector<TransferPoint> points)
    : points_(std::move(points)) {
  VRMR_CHECK_MSG(points_.size() >= 2, "need at least two control points");
  for (size_t i = 1; i < points_.size(); ++i) {
    VRMR_CHECK_MSG(points_[i - 1].scalar <= points_[i].scalar,
                   "control points must be sorted by scalar");
  }
}

Vec4 TransferFunction::evaluate(float scalar) const {
  const float s = clampf(scalar, 0.0f, 1.0f);
  if (s <= points_.front().scalar) return points_.front().rgba;
  if (s >= points_.back().scalar) return points_.back().rgba;
  for (size_t i = 1; i < points_.size(); ++i) {
    if (s <= points_[i].scalar) {
      const float span = points_[i].scalar - points_[i - 1].scalar;
      const float t = span > 0.0f ? (s - points_[i - 1].scalar) / span : 1.0f;
      return lerp(points_[i - 1].rgba, points_[i].rgba, t);
    }
  }
  return points_.back().rgba;
}

std::vector<Vec4> TransferFunction::bake(int entries) const {
  VRMR_CHECK(entries >= 2);
  std::vector<Vec4> table(static_cast<size_t>(entries));
  for (int i = 0; i < entries; ++i) {
    const float s = (static_cast<float>(i) + 0.5f) / static_cast<float>(entries);
    table[static_cast<size_t>(i)] = evaluate(s);
  }
  return table;
}

std::uint64_t TransferFunction::signature() const {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](float f) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &f, sizeof(bits));
    for (int byte = 0; byte < 4; ++byte) {
      h ^= (bits >> (byte * 8)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  for (const TransferPoint& p : points_) {
    mix(p.scalar);
    mix(p.rgba.x);
    mix(p.rgba.y);
    mix(p.rgba.z);
    mix(p.rgba.w);
  }
  return h;
}

bool TransferFunction::operator==(const TransferFunction& other) const {
  if (points_.size() != other.points_.size()) return false;
  for (size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].scalar != other.points_[i].scalar) return false;
    const Vec4& a = points_[i].rgba;
    const Vec4& b = other.points_[i].rgba;
    if (a.x != b.x || a.y != b.y || a.z != b.z || a.w != b.w) return false;
  }
  return true;
}

TransferFunction TransferFunction::grayscale_ramp(float max_opacity) {
  return TransferFunction({{0.0f, {0, 0, 0, 0}}, {1.0f, {1, 1, 1, max_opacity}}});
}

TransferFunction TransferFunction::bone() {
  return TransferFunction({
      {0.00f, {0.0f, 0.0f, 0.0f, 0.00f}},
      {0.10f, {0.0f, 0.0f, 0.0f, 0.00f}},   // air stays invisible
      {0.25f, {0.8f, 0.55f, 0.35f, 0.05f}}, // skin/soft tissue, faint
      {0.45f, {0.9f, 0.65f, 0.45f, 0.15f}},
      {0.65f, {1.0f, 0.95f, 0.85f, 0.60f}}, // bone ramps up fast
      {1.00f, {1.0f, 1.0f, 1.0f, 0.95f}},
  });
}

TransferFunction TransferFunction::fire() {
  return TransferFunction({
      {0.00f, {0.0f, 0.0f, 0.0f, 0.00f}},
      {0.15f, {0.1f, 0.0f, 0.2f, 0.02f}},
      {0.35f, {0.6f, 0.05f, 0.05f, 0.10f}},
      {0.55f, {0.9f, 0.35f, 0.05f, 0.30f}},
      {0.75f, {1.0f, 0.75f, 0.15f, 0.60f}},
      {1.00f, {1.0f, 1.0f, 0.9f, 0.90f}},
  });
}

TransferFunction TransferFunction::mist() {
  return TransferFunction({
      {0.00f, {0.0f, 0.0f, 0.0f, 0.00f}},
      {0.20f, {0.2f, 0.35f, 0.7f, 0.02f}},
      {0.50f, {0.5f, 0.65f, 0.9f, 0.08f}},
      {0.80f, {0.8f, 0.9f, 1.0f, 0.25f}},
      {1.00f, {1.0f, 1.0f, 1.0f, 0.45f}},
  });
}

}  // namespace vrmr::volren
