#pragma once

// Volume abstraction separating *logical* resolution (what the cost
// model sees: staged bytes, sample counts, VPS denominators) from the
// *stored* representation (what the host actually samples).
//
//   StoredVolume     — a real float array at logical resolution; used by
//                      tests and small renders (exact).
//   ProceduralVolume — voxels computed on demand from a field function;
//                      lets paper-scale volumes (1024³ = 4 GiB) run on a
//                      small host with zero storage. The synthetic
//                      Skull/Supernova/Plume proxies live on top of it.
//
// Volumes are normalized: scalar values in [0, 1]. World space places
// the volume in a box whose longest edge is 1, preserving aspect
// (needed for the 512×512×2048 Plume).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/aabb.hpp"
#include "util/check.hpp"
#include "util/vec.hpp"

namespace vrmr::volren {

class VolumeSource {
 public:
  virtual ~VolumeSource() = default;

  /// Scalar value at integer voxel coordinate (clamped by callers).
  virtual float voxel(Int3 p) const = 0;
};

/// Field-function-backed source; evaluated lazily, never stored.
class ProceduralSource final : public VolumeSource {
 public:
  using Field = std::function<float(Int3 voxel)>;
  explicit ProceduralSource(Field field) : field_(std::move(field)) {
    VRMR_CHECK(field_ != nullptr);
  }
  float voxel(Int3 p) const override { return field_(p); }

 private:
  Field field_;
};

/// Dense float array source.
class ArraySource final : public VolumeSource {
 public:
  ArraySource(Int3 dims, std::vector<float> voxels) : dims_(dims), voxels_(std::move(voxels)) {
    VRMR_CHECK_MSG(static_cast<std::int64_t>(voxels_.size()) == dims.volume(),
                   "voxel count " << voxels_.size() << " != dims " << dims);
  }
  float voxel(Int3 p) const override {
    return voxels_[(static_cast<size_t>(p.z) * dims_.y + p.y) * dims_.x + p.x];
  }
  Int3 dims() const { return dims_; }

 private:
  Int3 dims_;
  std::vector<float> voxels_;
};

class Volume {
 public:
  /// `dims` is the logical resolution; `source` supplies voxel values
  /// at logical coordinates.
  Volume(std::string name, Int3 dims, std::shared_ptr<const VolumeSource> source);

  const std::string& name() const { return name_; }
  Int3 dims() const { return dims_; }
  std::int64_t voxel_count() const { return dims_.volume(); }
  std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(voxel_count()) * sizeof(float);
  }

  /// World-space bounding box: longest edge 1, aspect preserved,
  /// anchored at the origin.
  Aabb world_box() const { return Aabb{Vec3{0, 0, 0}, world_extent_}; }
  Vec3 world_extent() const { return world_extent_; }

  /// Voxel value with clamp-to-edge addressing.
  float voxel_clamped(Int3 p) const {
    p = max(Int3{0, 0, 0}, min(p, dims_ - Int3{1, 1, 1}));
    return source_->voxel(p);
  }

  /// Materialize the voxel region [origin, origin + size) with
  /// clamp-at-edges, optionally decimated by `stride` (stored grid
  /// takes every stride-th logical voxel; see DESIGN.md §2).
  /// Returns stored_dims voxels in x-fastest order.
  std::vector<float> materialize(Int3 origin, Int3 size, int stride = 1,
                                 Int3* stored_dims = nullptr) const;

  /// Construct a fully materialized copy (logical == stored); exact but
  /// memory-proportional. Intended for tests and small volumes.
  static Volume materialized(const std::string& name, Int3 dims,
                             const std::function<float(Int3)>& field);

  /// Lazily evaluated volume (no storage).
  static Volume procedural(const std::string& name, Int3 dims,
                           std::function<float(Int3)> field);

 private:
  std::string name_;
  Int3 dims_;
  Vec3 world_extent_;
  std::shared_ptr<const VolumeSource> source_;
};

}  // namespace vrmr::volren
