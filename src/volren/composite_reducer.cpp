#include "volren/composite_reducer.hpp"

#include "util/check.hpp"

namespace vrmr::volren {

Image stitch_image(int width, int height, Vec3 background,
                   std::span<const std::vector<FinishedPixel>> pieces) {
  Image image(width, height, background);
  const auto pixel_count = static_cast<std::uint32_t>(image.pixel_count());
  for (const auto& piece : pieces) {
    for (const FinishedPixel& px : piece) {
      VRMR_CHECK_MSG(px.key < pixel_count, "stitched key " << px.key << " out of range");
      image.at_index(px.key) = px.rgb;
    }
  }
  return image;
}

}  // namespace vrmr::volren
