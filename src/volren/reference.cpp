#include "volren/reference.hpp"

#include <atomic>
#include <limits>

#include "gpusim/device.hpp"
#include "gpusim/texture.hpp"
#include "util/thread_pool.hpp"
#include "volren/marching.hpp"

namespace vrmr::volren {

ReferenceResult render_reference(const Volume& volume, const FrameSetup& frame,
                                 Vec3 background) {
  // Private device big enough for the whole (stored) volume — the
  // reference is the "fits in core on one GPU" configuration.
  gpusim::DeviceProps props;
  props.name = "reference-device";
  props.vram_bytes = volume.bytes() + (64ULL << 20);
  gpusim::Device device(-1, props);

  Int3 stored;
  const std::vector<float> voxels =
      volume.materialize(Int3{0, 0, 0}, volume.dims(), frame.cast.decimation, &stored);
  gpusim::Texture3D texture(device, stored, volume.bytes());
  texture.upload(voxels);

  gpusim::Texture1D transfer_tex(device, 256);
  transfer_tex.upload(frame.transfer.bake(256));

  const Camera& camera = frame.camera;
  const Aabb volume_box = volume.world_box();
  const Vec3 dims_f = to_vec3(volume.dims());
  const Vec3 extent = volume.world_extent();
  const float dt = frame.cast.step_size(volume);
  const int decimation = frame.cast.decimation;
  const float inv_m = 1.0f / static_cast<float>(decimation);
  const float correction = frame.cast.opacity_correction();
  const float ert = frame.cast.ert_threshold;

  ReferenceResult result;
  result.image = Image(camera.width(), camera.height(), background);
  std::atomic<std::uint64_t> samples{0};
  std::atomic<std::uint64_t> rays{0};

  ThreadPool::global().parallel_for(0, camera.height(), [&](std::int64_t py) {
    std::uint64_t row_samples = 0;
    std::uint64_t row_rays = 0;
    for (int px = 0; px < camera.width(); ++px) {
      const Ray ray = camera.pixel_ray(px, static_cast<int>(py));
      float t0 = 0.0f, t1 = 0.0f;
      if (!volume_box.intersect(ray, 0.0f, std::numeric_limits<float>::max(), &t0, &t1)) {
        continue;
      }
      ++row_rays;

      const auto sample = [&](Vec3 p) {
        const Vec3 gv = (p / extent) * dims_f;
        const Vec3 local{(gv.x - 0.5f) * inv_m + 0.5f, (gv.y - 0.5f) * inv_m + 0.5f,
                         (gv.z - 0.5f) * inv_m + 0.5f};
        return texture.sample(local);
      };
      const auto transfer = [&](float s) { return transfer_tex.sample(s); };

      const MarchResult res =
          march_ray(ray, t0, t0, t1, dt, decimation, correction, ert, sample, transfer);
      row_samples += res.samples;
      result.image.at(px, static_cast<int>(py)) = blend_background(res.color, background);
    }
    samples.fetch_add(row_samples, std::memory_order_relaxed);
    rays.fetch_add(row_rays, std::memory_order_relaxed);
  });

  result.samples = samples.load();
  result.rays = rays.load();
  return result;
}

}  // namespace vrmr::volren
