#pragma once

// The ray fragment — the homogeneous value type flowing through the
// MapReduce pipeline (§3.1.1: "Emitted values are homogeneous in size
// and computed in GPU local memory").
//
// One fragment is the front-to-back composite of one ray's samples
// through one brick: a premultiplied RGBA color plus the ray parameter
// at brick entry (the depth the reducer sorts by) and the brick id
// (deterministic tie-break + diagnostics). 24 bytes, trivially
// copyable — safe to memcpy through KvBuffer, PCIe and the fabric.

#include <cstdint>
#include <type_traits>

#include "util/color.hpp"

namespace vrmr::volren {

struct RayFragment {
  float r = 0.0f;  // premultiplied
  float g = 0.0f;
  float b = 0.0f;
  float a = 0.0f;
  float depth = 0.0f;      // ray parameter at brick entry
  std::uint32_t brick = 0; // emitting brick id

  Rgba color() const { return {r, g, b, a}; }

  void set_color(Rgba c) {
    r = c.r;
    g = c.g;
    b = c.b;
    a = c.a;
  }

  /// Depth-then-brick ordering used by the reducer; brick ids increase
  /// along any axis-aligned traversal, so ties at shared faces resolve
  /// deterministically.
  friend bool operator<(const RayFragment& x, const RayFragment& y) {
    if (x.depth != y.depth) return x.depth < y.depth;
    return x.brick < y.brick;
  }
};

static_assert(std::is_trivially_copyable_v<RayFragment>);
static_assert(sizeof(RayFragment) == 24, "fragment layout is part of the wire format");

}  // namespace vrmr::volren
