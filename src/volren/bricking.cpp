#include "volren/bricking.hpp"

#include <algorithm>

namespace vrmr::volren {

BrickLayout::BrickLayout(Int3 volume_dims, Vec3 world_extent, int brick_size, int ghost)
    : BrickLayout(volume_dims, world_extent, Int3{brick_size, brick_size, brick_size},
                  ghost) {}

BrickLayout::BrickLayout(Int3 volume_dims, Vec3 world_extent, Int3 brick_dims, int ghost)
    : volume_dims_(volume_dims),
      world_extent_(world_extent),
      brick_size_(std::max({brick_dims.x, brick_dims.y, brick_dims.z})),
      brick_dims_(brick_dims),
      ghost_(ghost) {
  VRMR_CHECK_MSG(volume_dims.x > 0 && volume_dims.y > 0 && volume_dims.z > 0,
                 "bad volume dims " << volume_dims);
  VRMR_CHECK_MSG(brick_dims.x > 1 && brick_dims.y > 1 && brick_dims.z > 1,
                 "brick dims must exceed 1, got " << brick_dims);
  VRMR_CHECK(ghost >= 0);

  grid_ = Int3{ceil_div(volume_dims.x, brick_dims.x),
               ceil_div(volume_dims.y, brick_dims.y),
               ceil_div(volume_dims.z, brick_dims.z)};

  // World positions are computed as (voxel / dims) * extent so that a
  // shared face between neighboring bricks — and the outer faces versus
  // the volume box — evaluate to bit-identical floats (0/d = 0 and
  // d/d = 1 are exact). Ray/slab intersections at those planes then
  // agree exactly across bricks, which is what makes half-open sample
  // ownership partition every ray without gaps or double-sampling.
  bricks_.reserve(static_cast<size_t>(grid_.volume()));
  const auto to_world = [&](Int3 voxel) {
    return (to_vec3(voxel) / to_vec3(volume_dims_)) * world_extent_;
  };
  int id = 0;
  for (int bz = 0; bz < grid_.z; ++bz) {
    for (int by = 0; by < grid_.y; ++by) {
      for (int bx = 0; bx < grid_.x; ++bx) {
        BrickInfo info;
        info.id = id++;
        info.grid_pos = Int3{bx, by, bz};
        info.core_origin =
            Int3{bx * brick_dims.x, by * brick_dims.y, bz * brick_dims.z};
        info.core_dims = min(brick_dims, volume_dims_ - info.core_origin);
        info.padded_origin = max(Int3{0, 0, 0}, info.core_origin - Int3{ghost, ghost, ghost});
        const Int3 padded_end = min(volume_dims_, info.core_origin + info.core_dims +
                                                      Int3{ghost, ghost, ghost});
        info.padded_dims = padded_end - info.padded_origin;
        info.world_box =
            Aabb{to_world(info.core_origin), to_world(info.core_origin + info.core_dims)};
        bricks_.push_back(info);
      }
    }
  }
}

std::uint64_t BrickLayout::signature() const {
  // FNV-1a over the shape-determining fields. Deterministic across
  // runs (no pointers, no addresses) so replayed schedules hash alike.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xffull;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(volume_dims_.x));
  mix(static_cast<std::uint64_t>(volume_dims_.y));
  mix(static_cast<std::uint64_t>(volume_dims_.z));
  mix(static_cast<std::uint64_t>(brick_dims_.x));
  mix(static_cast<std::uint64_t>(brick_dims_.y));
  mix(static_cast<std::uint64_t>(brick_dims_.z));
  mix(static_cast<std::uint64_t>(ghost_));
  return h;
}

int BrickLayout::choose_brick_size(Int3 volume_dims, int target_bricks) {
  VRMR_CHECK(target_bricks >= 1);
  const int max_dim = std::max({volume_dims.x, volume_dims.y, volume_dims.z});
  // Walk brick sizes down from whole-volume until the grid reaches the
  // target count; prefer the largest size meeting it ("roughly within a
  // factor of four" of the GPU count is acceptable per §6).
  int best = max_dim;
  for (int size = max_dim; size > 1; size = (size + 1) / 2) {
    const std::int64_t count = static_cast<std::int64_t>(ceil_div(volume_dims.x, size)) *
                               ceil_div(volume_dims.y, size) *
                               ceil_div(volume_dims.z, size);
    best = size;
    if (count >= target_bricks) break;
  }
  return best;
}

Int3 BrickLayout::choose_brick_dims(Int3 volume_dims, int target_bricks) {
  VRMR_CHECK(target_bricks >= 1);
  // Repeatedly halve the brick axis that is currently longest (in
  // voxels) until the grid reaches the target count. Axis splits keep
  // bricks as close to cubic as the target allows — minimizing ghost
  // surface and screen-footprint overlap.
  Int3 grid{1, 1, 1};
  while (grid.volume() < target_bricks) {
    int axis = 0;
    float longest = 0.0f;
    for (int a = 0; a < 3; ++a) {
      const float brick_len =
          static_cast<float>(volume_dims[a]) / static_cast<float>(grid[a]);
      // Respect the minimum brick edge of 2 voxels.
      if (brick_len / 2.0f < 2.0f) continue;
      if (brick_len > longest) {
        longest = brick_len;
        axis = a;
      }
    }
    if (longest == 0.0f) break;  // cannot split further
    grid[axis] *= 2;
  }
  return Int3{std::max(2, ceil_div(volume_dims.x, grid.x)),
              std::max(2, ceil_div(volume_dims.y, grid.y)),
              std::max(2, ceil_div(volume_dims.z, grid.z))};
}

}  // namespace vrmr::volren
