#pragma once

// The ray-marching inner loop shared — verbatim — by the map kernel and
// the single-pass reference renderer. Sharing the exact arithmetic is
// what lets the equivalence tests demand near-bit-exact agreement.
//
// Sample grid: t_k = t_anchor + (k + 0.5)·dt, k = 0, 1, 2, …, where
// t_anchor is the ray's entry into the *volume* box (identical for
// every brick along the ray). A segment [t_enter, t_exit) owns step k
// iff t_k (computed in float, the same way the loop computes it) lies
// inside the half-open interval — so consecutive bricks partition the
// ray's steps exactly.

#include <cmath>
#include <cstdint>

#include "util/aabb.hpp"
#include "util/color.hpp"

namespace vrmr::volren {

struct MarchResult {
  Rgba color = Rgba::transparent();  // premultiplied accumulation
  std::uint64_t samples = 0;         // logical samples charged
  bool terminated_early = false;     // ERT fired inside this segment
};

/// March the global sample grid across [t_enter, t_exit) of `ray`.
///
/// `sample(p)` returns the scalar at world position p; `transfer(s)`
/// the straight-alpha RGBA for scalar s. `decimation` strides the
/// functional loop while charging every logical step (DESIGN.md §2).
template <typename SampleFn, typename TransferFn>
inline MarchResult march_ray(const Ray& ray, float t_anchor, float t_enter, float t_exit,
                             float dt, int decimation, float opacity_correction,
                             float ert_threshold, SampleFn&& sample,
                             TransferFn&& transfer) {
  MarchResult result;
  if (!(t_enter < t_exit) || dt <= 0.0f) return result;

  // First candidate step at or after t_enter; start two steps early and
  // advance with the same float comparison the loop uses, so ownership
  // decisions are bit-consistent with the neighboring segment's loop
  // exit (see file comment).
  const double guess =
      std::ceil((static_cast<double>(t_enter) - t_anchor) / dt - 0.5) - 2.0;
  std::int64_t k = guess > 0.0 ? static_cast<std::int64_t>(guess) : 0;
  while (t_anchor + (static_cast<float>(k) + 0.5f) * dt < t_enter) ++k;

  for (;;) {
    const float t = t_anchor + (static_cast<float>(k) + 0.5f) * dt;
    if (!(t < t_exit)) break;
    const float scalar = sample(ray.at(t));
    const Vec4 straight = transfer(scalar);
    result.color =
        composite_over(result.color, premultiply_corrected(straight, opacity_correction));
    result.samples += static_cast<std::uint64_t>(decimation);
    if (result.color.a >= ert_threshold) {
      result.terminated_early = true;
      break;
    }
    k += decimation;
  }
  return result;
}

}  // namespace vrmr::volren
