#pragma once

// Binary-swap compositing (Ma et al. 1994) — the alternative the paper
// weighed against direct-send and rejected (§6: direct-send "allows an
// overlap of communication and computation, and also ... fits within
// the MapReduce model"). Implemented here so the ablation bench can
// reproduce that design decision quantitatively.
//
// Differences from the MapReduce direct-send pipeline:
//   * bricks are assigned to GPUs in view-sorted slabs so each GPU's
//     partial image is depth-orderable against the others';
//   * each GPU first composites its own fragments locally into a full
//     partial image (no network), then runs log2(G) pairwise exchange
//     rounds, each swapping half of the remaining region;
//   * the final gather of the G disjoint regions is the stitch phase
//     and is excluded from the timed pipeline, mirroring how the
//     MapReduce path excludes stitching.
//
// Requires a power-of-two GPU count (the classic algorithm; the paper's
// 2-3 swap reference [30] generalizes it, which we do not need for the
// ablation sweep's 1..32 GPUs).

#include <cstdint>

#include "cluster/cluster.hpp"
#include "volren/image.hpp"
#include "volren/renderer.hpp"
#include "volren/volume.hpp"

namespace vrmr::volren {

struct BinarySwapResult {
  Image image;
  double runtime_s = 0.0;    // simulated: map span + swap rounds
  double map_s = 0.0;        // span of local render + local composite
  double swap_s = 0.0;       // span of the exchange rounds
  int rounds = 0;
  std::uint64_t bytes_net = 0;       // pixels exchanged over the fabric
  std::uint64_t fragments = 0;
  std::uint64_t total_samples = 0;

  double fps() const { return runtime_s > 0.0 ? 1.0 / runtime_s : 0.0; }
};

/// Render one frame with binary-swap compositing. Uses the same kernel,
/// camera, transfer function and brick layout rules as
/// render_mapreduce, so images from the two paths are comparable.
BinarySwapResult render_binary_swap(cluster::Cluster& cluster, const Volume& volume,
                                    const RenderOptions& options);

}  // namespace vrmr::volren
