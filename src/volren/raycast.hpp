#pragma once

// The ray-casting map kernel (§3.2) and its MapReduce adapters.
//
// Kernel behaviour mirrors the paper's CUDA implementation:
//   * volume brick in a 3-D float texture (trilinear, hardware-style);
//   * 16×16 thread blocks over the brick's projected sub-image;
//   * every ray intersected against the brick's bounding box,
//     non-intersecting rays discarded immediately;
//   * fixed-increment, non-adaptive trilinear sampling;
//   * early ray termination;
//   * front-to-back compositing against a 1-D transfer-function
//     texture with opacity correction;
//   * every thread emits exactly one key-value pair — a RayFragment or
//     a later-discarded placeholder (§3.1.1).
//
// Sample-ownership rule: ray steps are a global grid anchored at the
// ray's entry into the *volume* box (t_k = t_vol + (k + 0.5)·dt); a
// brick owns exactly the steps whose t_k fall inside its half-open
// [t_enter, t_exit) interval. Because shared brick faces evaluate to
// bit-identical plane constants (see bricking.cpp), every step belongs
// to exactly one brick and the composited pipeline reproduces the
// single-pass reference bit-for-bit (modulo floating-point
// re-association; see tests/volren/test_pipeline_equivalence.cpp).

#include <cstdint>
#include <memory>

#include "gpusim/device.hpp"
#include "gpusim/texture.hpp"
#include "mr/chunk.hpp"
#include "mr/mapper.hpp"
#include "volren/bricking.hpp"
#include "volren/camera.hpp"
#include "volren/fragment.hpp"
#include "volren/transfer_function.hpp"
#include "volren/volume.hpp"

namespace vrmr::volren {

/// Sampling parameters shared by the map kernel and the reference
/// renderer (they must agree exactly for equivalence tests).
struct RaycastSettings {
  /// Samples per voxel along the ray (1 = one step per voxel edge).
  float sampling_rate = 1.0f;
  /// Early-ray-termination opacity threshold; >= 1 disables ERT.
  float ert_threshold = kOpaqueAlpha;
  /// Functional step stride: the kernel *takes* every decimation-th
  /// step but *charges* every step to the simulated GPU, and the brick
  /// texture stores a correspondingly decimated grid. 1 = exact
  /// (always used by tests); >1 only for paper-scale bench volumes
  /// (DESIGN.md §2).
  int decimation = 1;
  /// LOD pyramid stride (2^level) of the volume being marched. Coarse
  /// levels step at their own (2^level x longer) voxel edge via
  /// step_size(), so the opacity-correction exponent — defined against
  /// the *base* volume's per-voxel-step alpha — must scale with it.
  /// 1 = base resolution.
  int lod_stride = 1;

  /// World-space step between consecutive logical samples for `volume`.
  float step_size(const Volume& volume) const {
    const Vec3 voxel = volume.world_extent() / to_vec3(volume.dims());
    return std::min({voxel.x, voxel.y, voxel.z}) / sampling_rate;
  }

  /// Opacity-correction exponent relative to the transfer function's
  /// per-voxel-step alpha definition.
  float opacity_correction() const {
    return static_cast<float>(decimation * lod_stride) / sampling_rate;
  }
};

/// One brick of one volume, as a MapReduce chunk. Holds references —
/// the Volume must outlive the job.
class BrickChunk final : public mr::Chunk {
 public:
  BrickChunk(const Volume& volume, BrickInfo info) : volume_(&volume), info_(info) {}

  /// LOD pyramid chunk: `volume` and `info` come from the pyramid
  /// *level* (not the base), `lod`/`lod_stride` describe the level, and
  /// `cache_signature` is the level layout's signature so cached coarse
  /// payloads never alias full-resolution ones (0 = caller keys by its
  /// own layout id).
  BrickChunk(const Volume& volume, BrickInfo info, int lod, int lod_stride,
             std::uint64_t cache_signature)
      : volume_(&volume),
        info_(info),
        lod_(lod),
        lod_stride_(lod_stride),
        cache_signature_(cache_signature) {}

  std::uint64_t device_bytes() const override { return info_.device_bytes(); }
  /// Stored (cache / wire / disk) payload size: the compressed size
  /// when set_compression was applied, else the logical size.
  std::uint64_t stored_bytes() const override {
    return stored_bytes_ > 0 ? stored_bytes_ : info_.device_bytes();
  }
  /// Disk delivers the stored payload too (VRBF v2 records compressed
  /// brick streams; io/brick_file.hpp).
  std::uint64_t disk_bytes() const override { return stored_bytes(); }
  double decompress_s() const override { return decompress_s_; }
  std::string label() const override {
    std::string name = volume_->name() + "/brick" + std::to_string(info_.id);
    if (lod_ > 0) name += "@L" + std::to_string(lod_);
    return name;
  }

  /// Attach this brick's compression outcome (compress::CompressionPlan
  /// entry): `stored` bytes move on every byte-touching path and
  /// `decompress_s` is charged as a GPU-stream quantum before the map
  /// kernel. Never called (or called with stored == 0) = uncompressed.
  void set_compression(std::uint64_t stored, double decompress_s) {
    stored_bytes_ = stored;
    decompress_s_ = decompress_s;
  }

  const BrickInfo& info() const { return info_; }
  const Volume& volume() const { return *volume_; }
  int lod() const { return lod_; }
  int lod_stride() const { return lod_stride_; }
  std::uint64_t cache_signature() const { return cache_signature_; }

 private:
  const Volume* volume_;
  BrickInfo info_;
  int lod_ = 0;
  int lod_stride_ = 1;
  std::uint64_t cache_signature_ = 0;
  std::uint64_t stored_bytes_ = 0;  // 0 = uncompressed (logical size)
  double decompress_s_ = 0.0;
};

/// Static per-frame state shared by all of a job's mappers.
struct FrameSetup {
  Camera camera;
  TransferFunction transfer = TransferFunction::grayscale_ramp();
  RaycastSettings cast;
};

/// Raw kernel output for one brick: parallel slot arrays, one entry per
/// launched thread (the every-thread-emits layout the paper requires
/// for efficient device-side output, §3.1.1).
struct BrickCastOutput {
  std::vector<std::uint32_t> keys;      // pixel index or kPlaceholderKey
  std::vector<RayFragment> fragments;   // valid where key != placeholder
  std::uint64_t samples = 0;            // logical samples charged
  std::uint64_t threads = 0;
};

/// Execute the ray-cast kernel for one brick on `device` (functional
/// path used by both the MapReduce mapper and the binary-swap
/// compositor ablation).
BrickCastOutput cast_brick(gpusim::Device& device, const Volume& volume,
                           const BrickInfo& brick, const FrameSetup& frame,
                           const gpusim::Texture1D& transfer_tex);

/// mr::Mapper adapter: stages the brick texture, runs cast_brick,
/// bulk-emits the slots.
class RayCastMapper final : public mr::Mapper {
 public:
  RayCastMapper(const Volume& volume, FrameSetup frame)
      : volume_(&volume), frame_(std::move(frame)) {}

  void init(gpusim::Device& device) override;
  mr::MapOutcome map(gpusim::Device& device, const mr::Chunk& chunk,
                     mr::KvBuffer& out) override;

 private:
  const Volume* volume_;
  FrameSetup frame_;
  std::unique_ptr<gpusim::Texture1D> transfer_tex_;
};

}  // namespace vrmr::volren
