#include "volren/image.hpp"

#include <cmath>
#include <fstream>

namespace vrmr::volren {

Image::Image(int width, int height, Vec3 fill) : width_(width), height_(height) {
  VRMR_CHECK_MSG(width > 0 && height > 0, "bad image dims " << width << "x" << height);
  pixels_.assign(static_cast<size_t>(pixel_count()), fill);
}

void Image::write_ppm(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  VRMR_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out << "P6\n" << width_ << " " << height_ << "\n255\n";
  std::vector<unsigned char> row(static_cast<size_t>(width_) * 3);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const Vec3 c = at(x, y);
      auto encode = [](float v) {
        const float g = std::pow(clampf(v, 0.0f, 1.0f), 1.0f / 2.2f);
        return static_cast<unsigned char>(std::lround(g * 255.0f));
      };
      row[static_cast<size_t>(x) * 3 + 0] = encode(c.x);
      row[static_cast<size_t>(x) * 3 + 1] = encode(c.y);
      row[static_cast<size_t>(x) * 3 + 2] = encode(c.z);
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  VRMR_CHECK_MSG(out.good(), "short write to " << path);
}

ImageDiff compare_images(const Image& a, const Image& b) {
  VRMR_CHECK_MSG(a.width() == b.width() && a.height() == b.height(),
                 "image size mismatch: " << a.width() << "x" << a.height() << " vs "
                                         << b.width() << "x" << b.height());
  ImageDiff diff;
  double sum = 0.0;
  const auto& pa = a.pixels();
  const auto& pb = b.pixels();
  for (size_t i = 0; i < pa.size(); ++i) {
    const double dx = std::fabs(static_cast<double>(pa[i].x) - pb[i].x);
    const double dy = std::fabs(static_cast<double>(pa[i].y) - pb[i].y);
    const double dz = std::fabs(static_cast<double>(pa[i].z) - pb[i].z);
    diff.max_abs = std::max({diff.max_abs, dx, dy, dz});
    sum += (dx + dy + dz) / 3.0;
  }
  diff.mean_abs = pa.empty() ? 0.0 : sum / static_cast<double>(pa.size());
  return diff;
}

double fraction_differing(const Image& a, const Image& b, double tol) {
  VRMR_CHECK(a.width() == b.width() && a.height() == b.height());
  const auto& pa = a.pixels();
  const auto& pb = b.pixels();
  std::int64_t bad = 0;
  for (size_t i = 0; i < pa.size(); ++i) {
    if (std::fabs(static_cast<double>(pa[i].x) - pb[i].x) > tol ||
        std::fabs(static_cast<double>(pa[i].y) - pb[i].y) > tol ||
        std::fabs(static_cast<double>(pa[i].z) - pb[i].z) > tol) {
      ++bad;
    }
  }
  return pa.empty() ? 0.0 : static_cast<double>(bad) / static_cast<double>(pa.size());
}

}  // namespace vrmr::volren
