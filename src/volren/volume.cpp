#include "volren/volume.hpp"

#include <algorithm>

namespace vrmr::volren {

Volume::Volume(std::string name, Int3 dims, std::shared_ptr<const VolumeSource> source)
    : name_(std::move(name)), dims_(dims), source_(std::move(source)) {
  VRMR_CHECK_MSG(dims.x > 0 && dims.y > 0 && dims.z > 0, "bad volume dims " << dims);
  VRMR_CHECK(source_ != nullptr);
  const float longest = static_cast<float>(std::max({dims.x, dims.y, dims.z}));
  world_extent_ = to_vec3(dims) / longest;
}

std::vector<float> Volume::materialize(Int3 origin, Int3 size, int stride,
                                       Int3* stored_dims) const {
  VRMR_CHECK(size.x > 0 && size.y > 0 && size.z > 0);
  VRMR_CHECK(stride >= 1);

  // Stored grid covers the same extent with every stride-th voxel,
  // always keeping at least 2 points per axis so trilinear sampling
  // stays well-defined.
  Int3 sdims{std::max(2, ceil_div(size.x, stride)), std::max(2, ceil_div(size.y, stride)),
             std::max(2, ceil_div(size.z, stride))};
  if (stride == 1) sdims = size;
  if (stored_dims) *stored_dims = sdims;

  std::vector<float> out(static_cast<size_t>(sdims.volume()));
  size_t idx = 0;
  for (int z = 0; z < sdims.z; ++z) {
    for (int y = 0; y < sdims.y; ++y) {
      for (int x = 0; x < sdims.x; ++x) {
        const Int3 p = origin + Int3{x * stride, y * stride, z * stride};
        out[idx++] = voxel_clamped(p);
      }
    }
  }
  return out;
}

Volume Volume::materialized(const std::string& name, Int3 dims,
                            const std::function<float(Int3)>& field) {
  VRMR_CHECK(field != nullptr);
  std::vector<float> voxels(static_cast<size_t>(dims.volume()));
  size_t idx = 0;
  for (int z = 0; z < dims.z; ++z)
    for (int y = 0; y < dims.y; ++y)
      for (int x = 0; x < dims.x; ++x) voxels[idx++] = field(Int3{x, y, z});
  return Volume(name, dims, std::make_shared<ArraySource>(dims, std::move(voxels)));
}

Volume Volume::procedural(const std::string& name, Int3 dims,
                          std::function<float(Int3)> field) {
  return Volume(name, dims, std::make_shared<ProceduralSource>(std::move(field)));
}

}  // namespace vrmr::volren
