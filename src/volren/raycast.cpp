#include "volren/raycast.hpp"

#include <atomic>
#include <limits>

#include "util/check.hpp"
#include "volren/marching.hpp"

namespace vrmr::volren {

BrickCastOutput cast_brick(gpusim::Device& device, const Volume& volume,
                           const BrickInfo& brick, const FrameSetup& frame,
                           const gpusim::Texture1D& transfer_tex) {
  BrickCastOutput out;

  const Camera& camera = frame.camera;
  const PixelRect rect = camera.project_box(brick.world_box);
  if (rect.empty()) return out;

  // Stage the brick texture (decimated proxy grid; logical bytes are
  // accounted against VRAM).
  Int3 stored;
  const std::vector<float> voxels =
      volume.materialize(brick.padded_origin, brick.padded_dims, frame.cast.decimation,
                         &stored);
  gpusim::Texture3D texture(device, stored, brick.device_bytes());
  texture.upload(voxels);

  // 16×16 blocks over the projected sub-image (§3.2), padded to block
  // granularity like a CUDA grid.
  const Int3 block{16, 16, 1};
  const Int3 grid{ceil_div(rect.width(), block.x), ceil_div(rect.height(), block.y), 1};
  const std::int64_t row_threads = static_cast<std::int64_t>(grid.x) * block.x;
  const std::int64_t total_threads = row_threads * grid.y * block.y;

  out.keys.assign(static_cast<size_t>(total_threads), mr::kPlaceholderKey);
  out.fragments.assign(static_cast<size_t>(total_threads), RayFragment{});
  out.threads = static_cast<std::uint64_t>(total_threads);

  // Per-thread output slots live in device memory until the D2H copy
  // (placeholders included, §3.1.1).
  const std::uint64_t slot_bytes =
      static_cast<std::uint64_t>(total_threads) * (sizeof(std::uint32_t) + sizeof(RayFragment));
  const gpusim::DeviceAllocation slots = device.allocate(slot_bytes, "kv-slots");

  const Aabb volume_box = volume.world_box();
  const Vec3 dims_f = to_vec3(volume.dims());
  const Vec3 extent = volume.world_extent();
  const float dt = frame.cast.step_size(volume);
  const int decimation = frame.cast.decimation;
  const float inv_m = 1.0f / static_cast<float>(decimation);
  const float correction = frame.cast.opacity_correction();
  const float ert = frame.cast.ert_threshold;
  const Vec3 padded_origin_f = to_vec3(brick.padded_origin);
  const int image_width = camera.width();
  const std::uint32_t brick_id = static_cast<std::uint32_t>(brick.id);

  std::atomic<std::uint64_t> samples{0};

  device.launch_2d(grid, block, [&](const gpusim::ThreadCtx& ctx) {
    const int gx = ctx.global_x();
    const int gy = ctx.global_y();
    const size_t slot = static_cast<size_t>(gy) * row_threads + gx;
    const int px = rect.x0 + gx;
    const int py = rect.y0 + gy;
    if (px >= rect.x1 || py >= rect.y1) return;  // block padding -> placeholder

    const Ray ray = camera.pixel_ray(px, py);

    float t_vol0 = 0.0f, t_vol1 = 0.0f;
    if (!volume_box.intersect(ray, 0.0f, std::numeric_limits<float>::max(), &t_vol0,
                              &t_vol1)) {
      return;  // ray misses the volume entirely -> placeholder
    }
    float t_enter = 0.0f, t_exit = 0.0f;
    if (!brick.world_box.intersect(ray, t_vol0, t_vol1, &t_enter, &t_exit)) {
      return;  // misses this brick -> placeholder (§3.2 immediate discard)
    }

    const auto sample = [&](Vec3 p) {
      // World -> global voxel coords -> brick-local stored-grid coords.
      const Vec3 gv = (p / extent) * dims_f;
      const Vec3 local{(gv.x - padded_origin_f.x - 0.5f) * inv_m + 0.5f,
                       (gv.y - padded_origin_f.y - 0.5f) * inv_m + 0.5f,
                       (gv.z - padded_origin_f.z - 0.5f) * inv_m + 0.5f};
      return texture.sample(local);
    };
    const auto transfer = [&](float s) { return transfer_tex.sample(s); };

    const MarchResult res = march_ray(ray, t_vol0, t_enter, t_exit, dt, decimation,
                                      correction, ert, sample, transfer);
    samples.fetch_add(res.samples, std::memory_order_relaxed);

    if (res.color.a > 0.0f) {
      out.keys[slot] =
          static_cast<std::uint32_t>(py) * static_cast<std::uint32_t>(image_width) +
          static_cast<std::uint32_t>(px);
      RayFragment frag;
      frag.set_color(res.color);
      frag.depth = t_enter;
      frag.brick = brick_id;
      out.fragments[slot] = frag;
    }
    // else: zero contribution -> placeholder stays (§3.1.1)
  });

  out.samples = samples.load(std::memory_order_relaxed);
  return out;
}

void RayCastMapper::init(gpusim::Device& device) {
  transfer_tex_ = std::make_unique<gpusim::Texture1D>(device, 256);
  const std::vector<Vec4> table = frame_.transfer.bake(256);
  transfer_tex_->upload(table);
}

mr::MapOutcome RayCastMapper::map(gpusim::Device& device, const mr::Chunk& chunk,
                                  mr::KvBuffer& out) {
  const auto* brick_chunk = dynamic_cast<const BrickChunk*>(&chunk);
  VRMR_CHECK_MSG(brick_chunk != nullptr, "RayCastMapper requires BrickChunk inputs");
  // LOD chunks carry their pyramid-level volume (a wrapper over the
  // base); everything the kernel needs (world box, stored grid, dt)
  // comes from the chunk itself, so only base-resolution chunks must
  // match the mapper's volume.
  VRMR_CHECK_MSG(brick_chunk->lod() > 0 || &brick_chunk->volume() == volume_,
                 "chunk belongs to a different volume");
  VRMR_CHECK_MSG(transfer_tex_ != nullptr, "init() was not called");
  VRMR_CHECK_MSG(out.value_size() == sizeof(RayFragment),
                 "job value_size must be sizeof(RayFragment) = " << sizeof(RayFragment));

  BrickCastOutput cast;
  if (brick_chunk->lod_stride() > 1) {
    FrameSetup lod_frame = frame_;
    lod_frame.cast.lod_stride = brick_chunk->lod_stride();
    cast = cast_brick(device, brick_chunk->volume(), brick_chunk->info(), lod_frame,
                      *transfer_tex_);
  } else {
    cast = cast_brick(device, brick_chunk->volume(), brick_chunk->info(), frame_,
                      *transfer_tex_);
  }
  if (cast.threads > 0) {
    out.append_bulk(cast.keys, cast.fragments.data());
  }

  mr::MapOutcome outcome;
  outcome.samples = cast.samples;
  outcome.threads = cast.threads;
  return outcome;
}

}  // namespace vrmr::volren
