#pragma once

// Per-GPU brick residency cache for the render service.
//
// The paper stages every brick onto its GPU anew each frame; real
// serving workloads (turntable orbits, interactive sessions) re-render
// the same volume dozens of times in a row, so most of a frame's H2D
// traffic restages bytes the device already holds. Following the
// paging/residency designs of Zellmann et al. (VDB paging) and Hassan
// et al. (session-oriented distributed rendering), this cache tracks
// which (volume, brick) payloads are resident per GPU under an LRU
// policy with a byte budget derived from gpusim::DeviceProps VRAM, and
// lets mr::Job skip disk + H2D staging for hits (JobConfig::staging_hook).
//
// Residency is *physical*: keys are (volume id, brick id), so two
// sessions orbiting the same volume legitimately share warm bricks,
// while distinct volumes never alias even when their brick ids
// coincide (cross-session isolation).
//
// The cache is a pure bookkeeping structure on the simulated timeline:
// deterministic, no wall-clock dependence.

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "gpusim/device_props.hpp"

namespace vrmr::service {

struct BrickKey {
  std::uint64_t volume_id = 0;
  int brick_id = 0;
  /// Brick-decomposition signature (brick dims + ghost). Brick ids are
  /// only meaningful within one layout: the same volume re-bricked with
  /// different RenderOptions reuses ids 0..N for different extents, and
  /// without this field those would falsely hit stale payloads.
  std::uint64_t layout_id = 0;

  bool operator==(const BrickKey& other) const {
    return volume_id == other.volume_id && brick_id == other.brick_id &&
           layout_id == other.layout_id;
  }
};

struct BrickKeyHash {
  std::size_t operator()(const BrickKey& k) const {
    // Splitmix-style mix of the fields.
    std::uint64_t x = k.volume_id * 0x9e3779b97f4a7c15ULL +
                      k.layout_id * 0xd6e8feb86659fd93ULL +
                      static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.brick_id));
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return static_cast<std::size_t>(x);
  }
};

struct BrickCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejected_oversized = 0;  // bricks larger than the whole budget
  std::uint64_t bytes_saved = 0;         // H2D bytes skipped by hits
  std::uint64_t bytes_evicted = 0;
  /// Bricks admitted by the prefetcher (prefetch()) rather than by a
  /// frame's staging miss. Not counted as misses: the demand stream's
  /// hit rate stays comparable with and without prefetching.
  std::uint64_t prefetch_admissions = 0;
  /// Payload bytes of those admissions — counted at the cache layer so
  /// service-level prefetch telemetry (ServiceStats::bytes_prefetched)
  /// reconciles exactly against cache-level accounting.
  std::uint64_t bytes_prefetched = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

class BrickCache {
 public:
  /// One LRU shard per GPU, each with `capacity_per_gpu` bytes.
  BrickCache(int num_gpus, std::uint64_t capacity_per_gpu);

  /// The serving budget for a device: VRAM minus a reserve for the
  /// working frame (staged brick being mapped, kernel output, textures).
  static std::uint64_t capacity_for(const gpusim::DeviceProps& props,
                                    std::uint64_t reserve_bytes);

  /// The staging-time query: returns true when (key) is already
  /// resident on `gpu` (LRU touch + hit), otherwise admits it —
  /// evicting least-recently-used bricks until it fits — and returns
  /// false (miss). Bricks larger than the whole per-GPU budget are
  /// never admitted and never evict anything.
  bool lookup_or_admit(int gpu, const BrickKey& key, std::uint64_t bytes);

  /// Non-mutating residency probe (no LRU touch, no accounting).
  bool resident(int gpu, const BrickKey& key) const;

  /// Speculative admission (camera-aware prefetch): admit `key` on
  /// `gpu` — evicting LRU bricks to fit — WITHOUT charging a demand
  /// miss, so hit-rate telemetry reflects only what frames actually
  /// asked for. Already-resident keys are refreshed (no accounting);
  /// oversized bricks are rejected exactly like lookup_or_admit.
  /// Returns true when the brick is resident on return; `admitted`
  /// (optional) reports whether this call inserted it (false for a
  /// refresh or a reject) — what prefetch_admissions/bytes_prefetched
  /// count, so callers' telemetry reconciles without probing stats.
  bool prefetch(int gpu, const BrickKey& key, std::uint64_t bytes,
                bool* admitted = nullptr);

  /// Drop every brick of `volume_id` on every GPU (volume updated or
  /// session closed with volume eviction requested).
  void invalidate_volume(std::uint64_t volume_id);

  /// Bytes of `volume_id` resident across all GPUs (no LRU touch). The
  /// frontend's brick-affinity placement reads this to route a session
  /// toward the shard where its volume is already warm.
  std::uint64_t resident_bytes_for_volume(std::uint64_t volume_id) const;

  void clear();

  int num_gpus() const { return static_cast<int>(shards_.size()); }
  std::uint64_t capacity_per_gpu() const { return capacity_; }
  std::uint64_t resident_bytes(int gpu) const;
  std::size_t resident_bricks(int gpu) const;
  const BrickCacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = BrickCacheStats{}; }

 private:
  struct Entry {
    BrickKey key;
    std::uint64_t bytes = 0;
  };
  struct Shard {
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<BrickKey, std::list<Entry>::iterator, BrickKeyHash> index;
    std::uint64_t bytes = 0;
  };

  void evict_lru(Shard& shard);
  /// LRU-refresh `key` if resident; true on presence.
  bool touch(Shard& shard, const BrickKey& key);
  /// Admit `key`, evicting LRU entries until it fits. False (with
  /// rejected_oversized accounting) for bricks larger than the whole
  /// budget. Shared by the demand (lookup_or_admit) and speculative
  /// (prefetch) paths so admission policy lives in one place.
  bool insert_evicting(Shard& shard, const BrickKey& key, std::uint64_t bytes);

  std::vector<Shard> shards_;
  std::uint64_t capacity_;
  BrickCacheStats stats_;
};

}  // namespace vrmr::service
