#pragma once

// Per-GPU brick residency cache for the render service.
//
// The paper stages every brick onto its GPU anew each frame; real
// serving workloads (turntable orbits, interactive sessions) re-render
// the same volume dozens of times in a row, so most of a frame's H2D
// traffic restages bytes the device already holds. Following the
// paging/residency designs of Zellmann et al. (VDB paging) and Hassan
// et al. (session-oriented distributed rendering), this cache tracks
// which (volume, brick) payloads are resident per GPU under a byte
// budget derived from gpusim::DeviceProps VRAM, and lets mr::Job skip
// disk + H2D staging for hits (JobConfig::staging_hook).
//
// Two admission/eviction policies (CachePolicy):
//
//   Lru — plain least-recently-used over one resident list (the
//   original behaviour, and still the default). Recency-only: a batch
//   session's one-pass streaming scan evicts an interactive session's
//   hot working set brick by brick, even though every scan brick is
//   touched exactly once and every hot brick many times.
//
//   Arc — a ghost-list adaptive replacement cache (Megiddo & Modha)
//   over BrickKey, generalized to byte-weighted entries. Residency is
//   split into T1 (bricks demanded exactly once — recency) and T2
//   (bricks demanded at least twice — frequency); B1/B2 are *ghost*
//   lists remembering the keys (not payloads) most recently evicted
//   from T1/T2. A demand miss whose key ghost-hits B1 means "the
//   recency list was too small" and nudges the adaptive target p (the
//   byte share of the budget T1 aims for) up; a B2 ghost hit nudges it
//   down. Eviction takes from T1 while it holds more than p bytes,
//   else from T2 — so a one-pass scan churns through T1 and can never
//   flush twice-touched bricks out of T2 (scan resistance), while a
//   genuine working-set shift migrates the budget via ghost hits.
//
// Residency is *physical*: keys are (volume id, brick id, layout
// signature), so two sessions orbiting the same volume legitimately
// share warm bricks, while distinct volumes never alias even when
// their brick ids coincide (cross-session isolation).
//
// The cache is a pure bookkeeping structure on the simulated timeline:
// deterministic, no wall-clock dependence.

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "gpusim/device_props.hpp"

namespace vrmr::service {

enum class CachePolicy { Lru, Arc };

const char* to_string(CachePolicy policy);

struct BrickKey {
  std::uint64_t volume_id = 0;
  int brick_id = 0;
  /// Brick-decomposition signature (brick dims + ghost). Brick ids are
  /// only meaningful within one layout: the same volume re-bricked with
  /// different RenderOptions reuses ids 0..N for different extents, and
  /// without this field those would falsely hit stale payloads.
  std::uint64_t layout_id = 0;

  bool operator==(const BrickKey& other) const {
    return volume_id == other.volume_id && brick_id == other.brick_id &&
           layout_id == other.layout_id;
  }
};

struct BrickKeyHash {
  std::size_t operator()(const BrickKey& k) const {
    // Splitmix-style mix of the fields.
    std::uint64_t x = k.volume_id * 0x9e3779b97f4a7c15ULL +
                      k.layout_id * 0xd6e8feb86659fd93ULL +
                      static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.brick_id));
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return static_cast<std::size_t>(x);
  }
};

struct BrickCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejected_oversized = 0;  // bricks larger than the whole budget
  std::uint64_t bytes_saved = 0;         // H2D bytes skipped by hits
  std::uint64_t bytes_evicted = 0;
  // --- logical vs stored (compressed payloads) ---------------------------
  // The cache budgets, admits and evicts STORED bytes (`bytes` as
  // passed by callers — the compressed payload is what VRAM holds), so
  // every pre-existing counter above is stored bytes. The logical
  // counters below track the decompressed size each entry expands to:
  // logical_bytes_admitted / stored_bytes_admitted is the residency
  // multiplier compression buys, and (logical_bytes_admitted −
  // logical_bytes_evicted) reconciles with resident_logical_bytes()
  // summed over shards (invalidate_volume withdraws entries without
  // counting them in either, mirroring bytes_evicted). Uncompressed
  // callers leave logical == stored.
  std::uint64_t logical_bytes_admitted = 0;
  std::uint64_t stored_bytes_admitted = 0;
  std::uint64_t logical_bytes_evicted = 0;
  std::uint64_t logical_bytes_saved = 0;  // logical size of hit payloads
  /// Bricks admitted by the prefetcher (prefetch()) rather than by a
  /// frame's staging miss. Not counted as misses: the demand stream's
  /// hit rate stays comparable with and without prefetching.
  std::uint64_t prefetch_admissions = 0;
  /// Payload bytes of those admissions — counted at the cache layer so
  /// service-level prefetch telemetry (ServiceStats::bytes_prefetched)
  /// reconciles exactly against cache-level accounting.
  std::uint64_t bytes_prefetched = 0;

  // --- Arc telemetry (all zero under Lru) --------------------------------
  // Reconciliation rules: hits == t1_hits + t2_hits, and every ghost
  // hit is also counted in `misses` (the payload was gone; the frame
  // restaged it) — so hit_rate() is directly comparable across
  // policies and b1_ghost_hits + b2_ghost_hits <= misses.
  std::uint64_t t1_hits = 0;        // demand hits on once-touched bricks
  std::uint64_t t2_hits = 0;        // demand hits on the frequent list
  std::uint64_t b1_ghost_hits = 0;  // demand misses remembered in B1 (p up)
  std::uint64_t b2_ghost_hits = 0;  // demand misses remembered in B2 (p down)
  /// Sum of the per-GPU adaptive targets p (bytes T1 aims to hold), so
  /// service telemetry can watch the recency/frequency balance drift
  /// without probing each shard.
  double arc_p_bytes = 0.0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

class BrickCache {
 public:
  /// One shard per GPU, each with `capacity_per_gpu` bytes under the
  /// given admission/eviction policy.
  BrickCache(int num_gpus, std::uint64_t capacity_per_gpu,
             CachePolicy policy = CachePolicy::Lru);

  /// Non-copyable: the index stores list iterators, so a copy's
  /// Locators would keep aiming into the source's lists and the first
  /// mutation through the copy would splice another object's nodes.
  /// (Factory returns still work — prvalues materialize in place.)
  BrickCache(const BrickCache&) = delete;
  BrickCache& operator=(const BrickCache&) = delete;

  /// The serving budget for a device: VRAM minus a reserve for the
  /// working frame (staged brick being mapped, kernel output, textures).
  static std::uint64_t capacity_for(const gpusim::DeviceProps& props,
                                    std::uint64_t reserve_bytes);

  /// Per-lookup classification for trace/telemetry consumers. Under Lru
  /// only `hit` is meaningful; under Arc a miss whose key the ghost
  /// directory remembers reports which ghost list it hit (mutually
  /// exclusive, and both false on a cold miss).
  struct LookupOutcome {
    bool hit = false;
    bool ghost_b1 = false;
    bool ghost_b2 = false;
  };

  /// The staging-time query: returns true when (key) is already
  /// resident on `gpu` (recency/frequency refreshed per policy + hit),
  /// otherwise admits it — evicting per policy until it fits — and
  /// returns false (miss). Bricks larger than the whole per-GPU budget
  /// are never admitted and never evict anything. `outcome` (optional)
  /// reports the classification for flight-recorder cache events.
  /// `bytes` is the STORED payload (what VRAM holds — compressed when a
  /// codec is on); `logical_bytes` its decompressed size for the
  /// logical-vs-stored stats counters, 0 meaning "same as bytes".
  bool lookup_or_admit(int gpu, const BrickKey& key, std::uint64_t bytes,
                       LookupOutcome* outcome = nullptr,
                       std::uint64_t logical_bytes = 0);

  /// Non-mutating residency probe (no recency touch, no accounting).
  /// Ghost entries are not resident.
  bool resident(int gpu, const BrickKey& key) const;

  /// Stored/logical payload sizes of a resident entry (no recency
  /// touch, no accounting); nullopt when the key is not resident on
  /// `gpu` (ghosts included). The failover pre-push reads this to ship
  /// a crashed shard's warm bricks at their true stored sizes.
  struct Residency {
    std::uint64_t stored_bytes = 0;
    std::uint64_t logical_bytes = 0;
  };
  std::optional<Residency> payload_of(int gpu, const BrickKey& key) const;

  /// Speculative admission (camera-aware prefetch): admit `key` on
  /// `gpu` — evicting per policy to fit — WITHOUT charging a demand
  /// miss, so hit-rate telemetry reflects only what frames actually
  /// asked for. Already-resident keys are refreshed (no accounting);
  /// oversized bricks are rejected exactly like lookup_or_admit.
  /// Under Arc a speculative insert lands in T1 flagged speculative:
  /// it never nudges p (a ghost entry it displaces is dropped
  /// silently, not "hit"), its first *demand* touch counts as that
  /// brick's first access (re-arming it as a normal T1 entry rather
  /// than promoting a never-demanded brick to T2), and if it is
  /// evicted before any demand touch it leaves NO ghost — so B1/B2
  /// keep recording only the demand stream's history.
  /// Returns true when the brick is resident on return; `admitted`
  /// (optional) reports whether this call inserted it (false for a
  /// refresh or a reject) — what prefetch_admissions/bytes_prefetched
  /// count, so callers' telemetry reconciles without probing stats.
  /// `bytes`/`logical_bytes` follow lookup_or_admit's stored/logical
  /// convention.
  bool prefetch(int gpu, const BrickKey& key, std::uint64_t bytes,
                bool* admitted = nullptr, std::uint64_t logical_bytes = 0);

  /// Drop every brick of `volume_id` on every GPU (volume updated or
  /// session closed with volume eviction requested) — including its
  /// B1/B2 ghost entries: a retired (volume, generation) id can never
  /// be demanded again, and a stale ghost hit would steer p with
  /// evidence from a dead key space.
  void invalidate_volume(std::uint64_t volume_id);

  /// Bytes of `volume_id` resident across all GPUs (no recency touch).
  /// The frontend's brick-affinity placement reads this to route a
  /// session toward the shard where its volume is already warm.
  std::uint64_t resident_bytes_for_volume(std::uint64_t volume_id) const;

  /// One warm payload of a volume, for handoff sizing: the migration /
  /// failover pre-push enumerates these to ship a source shard's
  /// resident bricks to the target at their true stored sizes.
  struct WarmBrick {
    int gpu = 0;  // lowest GPU holding the payload
    BrickKey key;
    std::uint64_t stored_bytes = 0;
    std::uint64_t logical_bytes = 0;
  };
  /// Every resident payload of `volume_id`, one entry per (brick,
  /// layout) — a brick resident on several GPUs reports the lowest —
  /// sorted by (layout_id, brick_id) so handoff traffic is
  /// deterministic regardless of cache-internal list order. No recency
  /// touch, no accounting; ghosts are not resident.
  std::vector<WarmBrick> warm_bricks_for_volume(std::uint64_t volume_id) const;

  void clear();

  int num_gpus() const { return static_cast<int>(shards_.size()); }
  std::uint64_t capacity_per_gpu() const { return capacity_; }
  CachePolicy policy() const { return policy_; }
  std::uint64_t resident_bytes(int gpu) const;
  /// Decompressed size of the shard's resident payloads — what the GPU
  /// *renders from*, vs resident_bytes() which is what VRAM *holds*.
  /// Their ratio is the residency multiplier compression buys.
  std::uint64_t resident_logical_bytes(int gpu) const;
  std::size_t resident_bricks(int gpu) const;
  const BrickCacheStats& stats() const { return stats_; }
  void reset_stats();

  /// Arc introspection for one GPU shard (tests, telemetry debugging).
  /// Under Lru the whole resident list reports as T1 and p stays 0.
  struct ArcProbe {
    std::uint64_t t1_bytes = 0, t2_bytes = 0;  // resident
    std::uint64_t b1_bytes = 0, b2_bytes = 0;  // ghosts (keys only)
    std::size_t t1_entries = 0, t2_entries = 0;
    std::size_t b1_entries = 0, b2_entries = 0;
    double p = 0.0;  // adaptive T1 byte target
  };
  ArcProbe arc_probe(int gpu) const;

 private:
  /// Which list an indexed key currently lives on. Lru uses only T1.
  enum class ListId : std::uint8_t { T1, T2, B1, B2 };

  struct Entry {
    BrickKey key;
    std::uint64_t bytes = 0;          // stored (what the budget charges)
    std::uint64_t logical_bytes = 0;  // decompressed size of the payload
    /// Admitted by prefetch() and not demand-touched yet (Arc, T1
    /// only): first demand touch re-arms instead of promoting, and
    /// eviction leaves no ghost.
    bool speculative = false;
  };
  struct Locator {
    ListId list = ListId::T1;
    std::list<Entry>::iterator it;
  };
  struct Shard {
    // front = most recently used on every list. Lru keeps everything
    // on t1; Arc splits residency t1/t2 with ghost tails b1/b2.
    std::list<Entry> t1, t2, b1, b2;
    std::unordered_map<BrickKey, Locator, BrickKeyHash> index;
    std::uint64_t t1_bytes = 0, t2_bytes = 0;
    std::uint64_t b1_bytes = 0, b2_bytes = 0;
    /// Arc's adaptive target: bytes T1 aims to hold (0 = pure
    /// frequency protection, capacity = pure recency).
    double p = 0.0;

    std::uint64_t resident() const { return t1_bytes + t2_bytes; }
    std::list<Entry>& list_of(ListId id) {
      switch (id) {
        case ListId::T1: return t1;
        case ListId::T2: return t2;
        case ListId::B1: return b1;
        case ListId::B2: return b2;
      }
      return t1;  // unreachable
    }
    std::uint64_t& bytes_of(ListId id) {
      switch (id) {
        case ListId::T1: return t1_bytes;
        case ListId::T2: return t2_bytes;
        case ListId::B1: return b1_bytes;
        case ListId::B2: return b2_bytes;
      }
      return t1_bytes;  // unreachable
    }
  };

  Shard& shard_at(int gpu);
  const Shard& shard_at(int gpu) const;

  /// Move an indexed entry to the MRU end of `to` (updating byte
  /// totals and the locator).
  void move_to_mru(Shard& shard, Locator& loc, ListId to);
  /// Unlink + deindex an entry (byte totals updated); returns its data.
  Entry remove(Shard& shard, const BrickKey& key);
  /// Unlink + deindex the LRU (tail) entry of `from`; returns its data.
  Entry pop_lru(Shard& shard, ListId from);
  /// Push a fresh entry at the MRU end of `to` and index it.
  void insert_mru(Shard& shard, ListId to, Entry entry);

  // --- Lru ---------------------------------------------------------------
  bool lru_touch(Shard& shard, const BrickKey& key);
  bool lru_insert_evicting(Shard& shard, const BrickKey& key, std::uint64_t bytes,
                           std::uint64_t logical_bytes);

  // --- Arc ---------------------------------------------------------------
  /// Evict one resident LRU entry: from T1 while it exceeds the target
  /// p (or exactly meets it on a B2 ghost-hit path), else from T2.
  /// Demand-touched victims leave a ghost in B1/B2; speculative ones
  /// vanish without one.
  void arc_replace(Shard& shard, bool b2_ghost_path);
  /// Evict until `bytes` fit the resident budget, then trim ghosts to
  /// their invariants (t1+b1 <= capacity, everything <= 2x capacity).
  void arc_make_room(Shard& shard, std::uint64_t bytes, bool b2_ghost_path);
  void arc_trim_ghosts(Shard& shard);
  /// Nudge p by the byte-weighted ARC learning rule and keep
  /// stats_.arc_p_bytes (the cross-shard sum) in sync.
  void arc_adapt(Shard& shard, std::uint64_t bytes, bool toward_recency);
  bool arc_lookup_or_admit(Shard& shard, const BrickKey& key, std::uint64_t bytes,
                           std::uint64_t logical_bytes, LookupOutcome* outcome);
  bool arc_prefetch(Shard& shard, const BrickKey& key, std::uint64_t bytes,
                    std::uint64_t logical_bytes, bool* admitted);

  void count_eviction(const Entry& victim);

  std::vector<Shard> shards_;
  std::uint64_t capacity_;
  CachePolicy policy_;
  BrickCacheStats stats_;
};

}  // namespace vrmr::service
