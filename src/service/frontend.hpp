#pragma once

// ServiceFrontend: a sharded serving tier over N independent clusters.
//
// The paper dedicates one cluster to one frame; RenderService
// multiplexes sessions onto one cluster; this frontend owns N
// (engine, cluster, RenderService) shards and places each session onto
// one of them, behind the same Session-handle API — clients cannot tell
// a sharded deployment from a single backend.
//
// Placement happens lazily on the session's FIRST submit (only then is
// the volume known):
//
//   1. brick affinity — shards where the volume already has warm bricks
//      are preferred (a returning user's dataset is still resident);
//   2. least outstanding cost — among candidates, the shard whose
//      queued frames sum to the smallest predicted cost
//      (RenderService::outstanding_cost_s) wins; ties go to the lowest
//      shard index.
//
// Every frame of a session stays on its shard (brick residency is per
// cluster). Shards simulate independent timelines: drain() drains them
// back to back on the host, but the simulated farm runs them in
// parallel, so aggregate makespan is the max over shards and aggregate
// fps is frames / that max. Placement and per-shard scheduling are both
// deterministic, so identical workloads replay byte-identical schedules.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "fault/fault_plan.hpp"
#include "net/fabric.hpp"
#include "service/render_service.hpp"
#include "service/session.hpp"
#include "sim/engine.hpp"

namespace vrmr::service {

struct FrontendConfig {
  int shards = 2;
  int gpus_per_shard = 4;
  /// Hardware model + node packing for every shard's cluster.
  cluster::HardwareModel hw = cluster::HardwareModel::ncsa_accelerator_cluster();
  int max_gpus_per_node = 4;
  /// Per-shard RenderService configuration (policy, cache, ...).
  /// Adaptive quality flows through unchanged: each shard runs its own
  /// SLO controller (service.interactive_slo_s / max_degrade_lod) and
  /// per-session quality floors (SessionProfile::quality) ride the
  /// profile to whichever shard placement picks.
  ServiceConfig service;
  /// Optional per-shard brick-cache policy override: when non-empty it
  /// must name one policy per shard, and shard i's RenderService runs
  /// with cache_policy_per_shard[i] instead of service.cache_policy —
  /// e.g. Arc on the shards that host mixed interactive+batch traffic
  /// while a batch-only shard keeps plain Lru. Empty (default): every
  /// shard uses service.cache_policy.
  std::vector<CachePolicy> cache_policy_per_shard;
  /// Shard-to-shard warm hydration: a shard missing a brick asks its
  /// siblings' caches BEFORE reading disk, and a warm sibling ships the
  /// stored (compressed) payload over the inter-shard fabric — a cold
  /// shard warms from the farm instead of re-reading every brick.
  /// Off by default: hydration reroutes misses, which shifts timings
  /// and telemetry that replay baselines compare against. Pays off for
  /// out-of-core serving (RenderOptions::include_disk_io), where the
  /// fabric transfer replaces a disk read; for in-core frames it only
  /// inserts a fabric hop before the H2D copy.
  bool enable_peer_hydration = false;
  /// Interconnect model for hydration transfers between shards (each
  /// shard pair is one "node" pair on a per-shard fabric instance).
  /// Failover pre-pushes ride the same model.
  net::FabricModel hydration_fabric;
  /// Warm handoff on shard failover: pre-push the crashed shard's
  /// resident bricks for the orphaned volumes to the failover target
  /// over the inter-shard fabric (send_reliable, so injected drops
  /// retransmit), and admit the re-issued frames only after the
  /// handoff window — they render warm instead of re-reading disk.
  /// Off: failover re-pins and re-issues cold (the A/B baseline
  /// bench_fault_tolerance gates against).
  bool failover_prepush = true;
};

struct ShardStats {
  int shard = 0;
  int sessions = 0;  // sessions placed on this shard
  /// Peer hydration (enable_peer_hydration): stored bytes this shard
  /// received from warm siblings instead of reading disk, and the disk
  /// bytes those hydrations avoided (equal today — both paths move the
  /// stored payload; kept separate so a future wire format can diverge).
  std::uint64_t bytes_hydrated_from_peers = 0;
  std::uint64_t bytes_disk_avoided = 0;
  std::uint64_t bricks_hydrated = 0;
  ServiceStats service;
};

/// Cross-shard aggregate; per-shard detail in `shards`.
struct FrontendStats {
  int frames_total = 0;
  /// Shards run in parallel in the simulated farm: the farm's makespan
  /// is the slowest shard's serving window.
  double makespan_s = 0.0;
  double fps = 0.0;  // frames_total / makespan
  double cache_hit_rate = 0.0;  // hits / (hits+misses) across shards
  std::uint64_t bytes_h2d_saved = 0;
  /// Farm-wide peer hydration (sums of the per-shard counters).
  std::uint64_t bytes_hydrated_from_peers = 0;
  std::uint64_t bytes_disk_avoided = 0;
  std::uint64_t bricks_hydrated = 0;
  /// Failover: crashed shards failed over, orphaned sessions re-pinned
  /// to siblings, undelivered frames re-issued there, and the warm
  /// handoff's pre-pushed brick traffic.
  std::uint64_t failovers = 0;
  std::uint64_t sessions_repinned = 0;
  std::uint64_t frames_reissued = 0;
  std::uint64_t bricks_prepushed = 0;
  std::uint64_t bytes_prepushed = 0;
  /// Time-aligned farm windows: every shard's ServiceStats::windows
  /// merged by bin (shards share bin boundaries — same stats_window_s,
  /// parallel simulated timelines), counters summed, utilization over
  /// the FARM's capacity (window_s x shards x gpus_per_shard). A bin's
  /// counters partition exactly into the per-shard bins it merged.
  std::vector<ServiceWindow> windows;
  std::vector<ShardStats> shards;
};

class ServiceFrontend final : public SessionBackend {
 public:
  explicit ServiceFrontend(FrontendConfig config = {});
  ~ServiceFrontend() override;

  ServiceFrontend(const ServiceFrontend&) = delete;
  ServiceFrontend& operator=(const ServiceFrontend&) = delete;

  /// Admit a session. Shard placement is deferred to its first submit.
  Session open_session(SessionProfile profile);
  Session open_session(std::string name, Priority priority = Priority::Batch) {
    SessionProfile profile;
    profile.name = std::move(name);
    profile.priority = priority;
    return open_session(std::move(profile));
  }

  /// Drain every shard's queue (each on its own simulated timeline).
  void drain();

  /// Attach one flight recorder to every shard: shard i records as
  /// trace process pid_base + i, so a single exported file opens the
  /// whole farm in Perfetto with one process block per shard (pass a
  /// nonzero pid_base when other timelines already share the
  /// recorder). nullptr detaches.
  void set_trace(obs::TraceRecorder* recorder, int pid_base = 0);

  /// Cross-shard aggregate statistics, queryable at any time.
  FrontendStats stats() const;

  /// Forward to every shard (the volume may be warm on any of them).
  void invalidate_volume(const volren::Volume* volume);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_sessions() const { return static_cast<int>(sessions_.size()); }
  RenderService& shard(int index);
  /// Shard a frontend session landed on; -1 while still unplaced.
  int shard_of(const Session& session) const;
  const FrontendConfig& config() const { return config_; }

  // --- fault injection & failover ----------------------------------------
  /// Install a seeded fault plan across the farm: each event is routed
  /// to its `shard`'s RenderService (disk/lane/crash faults), except
  /// FabricDrop/FabricDelay, which install one deterministic injector
  /// on the target shard's inter-shard fabric — the drop/delay applies
  /// to that shard's inbound hydration and failover-push messages,
  /// seeded from the plan so replays are bit-identical.
  void install_fault_plan(const fault::FaultPlan& plan);
  /// Fail over a crashed shard: re-pin its sessions onto surviving
  /// siblings (least outstanding cost, ties to the lowest index),
  /// pre-push the crashed cache's warm bricks for the orphaned volumes
  /// (warm handoff; config_.failover_prepush), and re-issue the crash
  /// snapshot (RenderService::unserved_frames) in global submission
  /// order. The re-issued frames arrive after the handoff window, so
  /// they render against the pushed bricks. drain() calls this
  /// automatically when it meets a crashed shard; idempotent.
  void failover(int crashed_shard);
  /// Pin an UNPLACED session to a shard ahead of its first submit.
  /// Range-validated; idempotent — re-pinning to the same shard (or
  /// pinning a session already placed there) is a no-op, while moving
  /// an already-placed session is an error (its frames and brick
  /// residency live on the original shard; only failover relocates
  /// placed sessions).
  void pin_shard(const Session& session, int shard);

  // --- SessionBackend (prefer the Session handle) ------------------------
  std::uint64_t session_submit(int session, RenderRequest request) override;
  void session_on_frame(int session, FrameCallback callback) override;
  void session_on_tile(int session, TileCallback callback) override;
  SessionStats session_stats(int session) const override;
  const SessionProfile& session_profile(int session) const override;

 private:
  struct Shard {
    std::unique_ptr<sim::Engine> engine;
    std::unique_ptr<cluster::Cluster> cluster;
    std::unique_ptr<RenderService> service;
    /// Hydration transfers INTO this shard run on its own engine (a
    /// sibling's residency probe is pure bookkeeping; only the
    /// requesting shard's timeline advances — the bulk-synchronous
    /// approximation the frontend's parallel-timelines model already
    /// makes for placement).
    std::unique_ptr<net::Fabric> fabric;
    int sessions_placed = 0;
    std::uint64_t bytes_hydrated_from_peers = 0;
    std::uint64_t bytes_disk_avoided = 0;
    std::uint64_t bricks_hydrated = 0;
    /// Set once failover() has evacuated this crashed shard.
    bool failed_over = false;
  };
  struct FrontendSession {
    SessionProfile profile;
    /// Client callbacks are RETAINED (not moved into the inner session):
    /// failover re-installs them on the replacement shard's session.
    FrameCallback client_callback;
    TileCallback client_tile_callback;
    int shard = -1;
    Session inner;  // valid once placed
  };

  int place(const volren::Volume* volume) const;  // deterministic choice
  /// The HydrationSource installed on every shard: probe siblings for a
  /// warm copy of (volume -> their id, key.brick_id, key.layout_id) and
  /// ship it over the requesting shard's fabric. Returns false (disk
  /// fallback) when no sibling holds the brick.
  bool hydrate(int shard_index, int gpu, const volren::Volume* volume,
               const BrickKey& key, std::uint64_t stored_bytes,
               std::function<void()> done);
  /// Wrap a client callback so delivered records carry the
  /// frontend-wide session index, not the shard-local one.
  static FrameCallback translate(int session, FrameCallback callback);
  static TileCallback translate_tile(int session, TileCallback callback);

  FrontendConfig config_;
  std::vector<Shard> shards_;
  std::vector<std::unique_ptr<FrontendSession>> sessions_;
  /// Kept for hydrate()'s shard-to-shard arrows (set_trace already
  /// forwards the recorder to every shard for their own spans).
  obs::TraceRecorder* trace_ = nullptr;
  int trace_pid_base_ = 0;
  // Failover accounting (aggregated into FrontendStats by stats()).
  std::uint64_t failovers_ = 0;
  std::uint64_t sessions_repinned_ = 0;
  std::uint64_t frames_reissued_ = 0;
  std::uint64_t bricks_prepushed_ = 0;
  std::uint64_t bytes_prepushed_ = 0;
};

}  // namespace vrmr::service
