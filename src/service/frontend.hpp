#pragma once

// ServiceFrontend: a sharded serving tier over N independent clusters.
//
// The paper dedicates one cluster to one frame; RenderService
// multiplexes sessions onto one cluster; this frontend owns N
// (engine, cluster, RenderService) shards and places each session onto
// one of them, behind the same Session-handle API — clients cannot tell
// a sharded deployment from a single backend.
//
// Placement happens lazily on the session's FIRST submit (only then is
// the volume known):
//
//   1. brick affinity — shards where the volume already has warm bricks
//      are preferred (a returning user's dataset is still resident);
//   2. least outstanding cost — among candidates, the shard whose
//      queued frames sum to the smallest predicted cost
//      (RenderService::outstanding_cost_s) wins; ties go to the lowest
//      shard index.
//
// Every frame of a session stays on its shard (brick residency is per
// cluster). Shards simulate independent timelines: drain() drains them
// back to back on the host, but the simulated farm runs them in
// parallel, so aggregate makespan is the max over shards and aggregate
// fps is frames / that max. Placement and per-shard scheduling are both
// deterministic, so identical workloads replay byte-identical schedules.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "service/render_service.hpp"
#include "service/session.hpp"
#include "sim/engine.hpp"

namespace vrmr::service {

struct FrontendConfig {
  int shards = 2;
  int gpus_per_shard = 4;
  /// Hardware model + node packing for every shard's cluster.
  cluster::HardwareModel hw = cluster::HardwareModel::ncsa_accelerator_cluster();
  int max_gpus_per_node = 4;
  /// Per-shard RenderService configuration (policy, cache, ...).
  /// Adaptive quality flows through unchanged: each shard runs its own
  /// SLO controller (service.interactive_slo_s / max_degrade_lod) and
  /// per-session quality floors (SessionProfile::quality) ride the
  /// profile to whichever shard placement picks.
  ServiceConfig service;
  /// Optional per-shard brick-cache policy override: when non-empty it
  /// must name one policy per shard, and shard i's RenderService runs
  /// with cache_policy_per_shard[i] instead of service.cache_policy —
  /// e.g. Arc on the shards that host mixed interactive+batch traffic
  /// while a batch-only shard keeps plain Lru. Empty (default): every
  /// shard uses service.cache_policy.
  std::vector<CachePolicy> cache_policy_per_shard;
};

struct ShardStats {
  int shard = 0;
  int sessions = 0;  // sessions placed on this shard
  ServiceStats service;
};

/// Cross-shard aggregate; per-shard detail in `shards`.
struct FrontendStats {
  int frames_total = 0;
  /// Shards run in parallel in the simulated farm: the farm's makespan
  /// is the slowest shard's serving window.
  double makespan_s = 0.0;
  double fps = 0.0;  // frames_total / makespan
  double cache_hit_rate = 0.0;  // hits / (hits+misses) across shards
  std::uint64_t bytes_h2d_saved = 0;
  /// Time-aligned farm windows: every shard's ServiceStats::windows
  /// merged by bin (shards share bin boundaries — same stats_window_s,
  /// parallel simulated timelines), counters summed, utilization over
  /// the FARM's capacity (window_s x shards x gpus_per_shard). A bin's
  /// counters partition exactly into the per-shard bins it merged.
  std::vector<ServiceWindow> windows;
  std::vector<ShardStats> shards;
};

class ServiceFrontend final : public SessionBackend {
 public:
  explicit ServiceFrontend(FrontendConfig config = {});
  ~ServiceFrontend() override;

  ServiceFrontend(const ServiceFrontend&) = delete;
  ServiceFrontend& operator=(const ServiceFrontend&) = delete;

  /// Admit a session. Shard placement is deferred to its first submit.
  Session open_session(SessionProfile profile);
  Session open_session(std::string name, Priority priority = Priority::Batch) {
    return open_session(SessionProfile{std::move(name), priority, std::nullopt});
  }

  /// Drain every shard's queue (each on its own simulated timeline).
  void drain();

  /// Attach one flight recorder to every shard: shard i records as
  /// trace process i, so a single exported file opens the whole farm
  /// in Perfetto with one process block per shard. nullptr detaches.
  void set_trace(obs::TraceRecorder* recorder);

  /// Cross-shard aggregate statistics, queryable at any time.
  FrontendStats stats() const;

  /// Forward to every shard (the volume may be warm on any of them).
  void invalidate_volume(const volren::Volume* volume);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_sessions() const { return static_cast<int>(sessions_.size()); }
  RenderService& shard(int index);
  /// Shard a frontend session landed on; -1 while still unplaced.
  int shard_of(const Session& session) const;
  const FrontendConfig& config() const { return config_; }

  // --- SessionBackend (prefer the Session handle) ------------------------
  std::uint64_t session_submit(int session, RenderRequest request) override;
  void session_on_frame(int session, FrameCallback callback) override;
  void session_on_tile(int session, TileCallback callback) override;
  SessionStats session_stats(int session) const override;
  const SessionProfile& session_profile(int session) const override;

 private:
  struct Shard {
    std::unique_ptr<sim::Engine> engine;
    std::unique_ptr<cluster::Cluster> cluster;
    std::unique_ptr<RenderService> service;
    int sessions_placed = 0;
  };
  struct FrontendSession {
    SessionProfile profile;
    FrameCallback pending_callback;       // held until placement
    TileCallback pending_tile_callback;   // held until placement
    int shard = -1;
    Session inner;  // valid once placed
  };

  int place(const volren::Volume* volume) const;  // deterministic choice
  /// Wrap a client callback so delivered records carry the
  /// frontend-wide session index, not the shard-local one.
  static FrameCallback translate(int session, FrameCallback callback);
  static TileCallback translate_tile(int session, TileCallback callback);

  FrontendConfig config_;
  std::vector<Shard> shards_;
  std::vector<std::unique_ptr<FrontendSession>> sessions_;
};

}  // namespace vrmr::service
