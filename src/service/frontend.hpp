#pragma once

// ServiceFrontend: a sharded serving tier over N independent clusters.
//
// The paper dedicates one cluster to one frame; RenderService
// multiplexes sessions onto one cluster; this frontend owns N
// (engine, cluster, RenderService) shards and places each session onto
// one of them, behind the same Session-handle API — clients cannot tell
// a sharded deployment from a single backend.
//
// Placement happens lazily on the session's FIRST submit (only then is
// the volume known), through a pluggable PlacementPolicy. The default:
//
//   1. pin — a SessionProfile::pin_shard naming a live, accepting
//      shard is honored;
//   2. brick affinity — shards where the volume already has warm bricks
//      are preferred (a returning user's dataset is still resident);
//   3. least outstanding cost — among candidates, the shard whose
//      queued frames sum to the smallest predicted cost
//      (RenderService::outstanding_cost_s) wins; ties go to the lowest
//      shard index.
//
// A session's placement is no longer forever: the frontend's CONTROL
// PLANE moves placed sessions at frame boundaries through one shared
// migration primitive (MigrationPlan → execute_migration) with three
// triggers — failover() (crash), migrate_session() / the steady-state
// rebalancer (voluntary), and drain_shard() (elastic scale-down).
// Every trigger re-opens the session on the target, re-installs the
// RETAINED client callbacks, pre-pushes the source cache's warm bricks
// over the inter-shard fabric (HandoffConfig), and re-issues the moved
// frames in frame_id order with arrivals floored past the handoff
// window, so the first post-move frame renders warm.
//
// Shards simulate independent timelines: drain() drains them back to
// back on the host, but the simulated farm runs them in parallel, so
// aggregate makespan is the max over shards and aggregate fps is
// frames / that max. When the rebalancer or autoscaler is enabled,
// drain() proceeds in HORIZON ROUNDS — every shard drains to a shared
// farm-time horizon (RenderService::drain_until), then the control
// passes run at that frame boundary. Placement, migration and
// per-shard scheduling are all deterministic, so identical workloads
// replay byte-identical schedules.

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "fault/fault_plan.hpp"
#include "net/fabric.hpp"
#include "service/render_service.hpp"
#include "service/session.hpp"
#include "sim/engine.hpp"

namespace vrmr::service {

/// Shard-to-shard byte movement: peer hydration of cache misses and
/// the warm-brick handoff that rides every migration trigger.
struct HandoffConfig {
  /// A shard missing a brick asks its siblings' caches BEFORE reading
  /// disk, and a warm sibling ships the stored (compressed) payload
  /// over the inter-shard fabric — a cold shard warms from the farm
  /// instead of re-reading every brick. Off by default: hydration
  /// reroutes misses, which shifts timings and telemetry that replay
  /// baselines compare against. Pays off for out-of-core serving
  /// (RenderOptions::include_disk_io); for in-core frames it only
  /// inserts a fabric hop before the H2D copy.
  bool peer_hydration = false;
  /// Interconnect model for every shard-to-shard transfer (each shard
  /// is one "node" on a per-shard fabric instance).
  net::FabricModel fabric;
  /// Warm handoff on CRASH failover: pre-push the dead shard's
  /// resident bricks for the orphaned volumes to the failover target
  /// (send_reliable, so injected drops retransmit) and floor the
  /// re-issued frames' arrivals past the handoff window — they render
  /// warm instead of re-reading disk. Off: failover re-issues cold
  /// (the A/B baseline bench_fault_tolerance gates against).
  bool failover_prepush = true;
  /// Warm handoff on VOLUNTARY moves (migrate_session, the rebalancer,
  /// drain_shard): same pre-push, sourced from the still-live origin
  /// shard's cache. Off: migrated frames re-read disk on the target
  /// (the A/B baseline bench_elastic_farm gates against).
  bool migration_prepush = true;
};

/// Steady-state rebalancer: a periodic control pass (inside drain())
/// that reads the farm's windowed load and outstanding cost, detects
/// sustained skew, and migrates sessions off the hottest shard toward
/// the shard where their bricks are warm or outstanding cost is
/// lowest. `period_s` is also the cadence of the autoscale pass.
struct RebalanceConfig {
  bool enabled = false;
  /// Farm-time cadence of the control passes: drain() advances every
  /// shard to a shared horizon (RenderService::drain_until), runs the
  /// passes at that frame boundary, and repeats. 0 runs the passes
  /// only between full drain sweeps — fine for the autoscaler's
  /// scale-down, useless for rebalancing a backlog (the sweep already
  /// drained it); set a period comparable to service.stats_window_s
  /// for steady-state behaviour.
  double period_s = 0.0;
  /// Trigger: hottest outstanding cost > skew_ratio x coldest (and the
  /// absolute gap >= min_imbalance_s). Both must hold, so a uniformly
  /// loaded or uniformly idle farm never churns.
  double skew_ratio = 2.0;
  double min_imbalance_s = 0.0;
  /// Sustained-skew guard over FrontendStats::windows: when > 0, the
  /// hot shard must also show at least this trailing-window GPU
  /// utilization (busy / (sustain_s x gpus)) — a cold-start blip with
  /// no serving history does not count as sustained. 0 disables.
  double sustained_utilization = 0.0;
  /// Trailing span for the sustained check; 0 means one period_s.
  double sustain_s = 0.0;
  /// Hysteresis against ping-ponging: a session migrated at farm time
  /// t is not migrated again before t + hysteresis_s.
  double hysteresis_s = 0.0;
  /// At most this many session moves per control pass.
  int max_moves_per_pass = 1;
};

/// Elastic shard count: add_shard() / drain_shard() driven by the
/// aggregate backlog, at the same cadence as RebalanceConfig::period_s.
struct AutoscaleConfig {
  bool enabled = false;
  /// The farm never drains below this many accepting shards.
  int min_shards = 1;
  /// Farm capacity: the fabric is wired for max(shards, max_shards)
  /// nodes at construction, so shards added later join the existing
  /// interconnect. add_shard() beyond this is an error. 0 means the
  /// initial shard count (no growth capacity).
  int max_shards = 0;
  /// Scale up when mean outstanding cost per accepting shard exceeds
  /// this many (simulated) seconds of backlog.
  double scale_up_backlog_s = 0.5;
  /// Scale down (drain the least-loaded shard) when mean backlog per
  /// accepting shard falls to/below this.
  double scale_down_backlog_s = 0.01;
  /// Minimum farm time between scale operations.
  double cooldown_s = 0.0;
};

/// Per-shard signals assembled by the frontend for a placement
/// decision (first placement or a voluntary migration's target pick).
struct PlacementSignal {
  int shard = -1;
  bool alive = true;       ///< not crashed
  bool accepting = true;   ///< not draining / retired
  bool warm = false;       ///< the session's volume has resident bricks
  double outstanding_cost_s = 0.0;
};

struct PlacementQuery {
  const SessionProfile* profile = nullptr;
  /// The volume of the placing submit (or of a migrating session's
  /// first moved frame); null when no volume is known.
  const volren::Volume* volume = nullptr;
  /// SessionProfile::pin_shard passthrough (unset when the pin names a
  /// shard that is dead or not accepting — the policy must re-place).
  std::optional<int> pinned;
  /// The shard the session currently lives on (already excluded from
  /// the candidate signals), or -1 for a first placement.
  int current_shard = -1;
  std::vector<PlacementSignal> shards;
};

/// Returns the chosen shard index. Must pick an alive, accepting
/// candidate from `query.shards`; the frontend CHECK-fails otherwise.
using PlacementPolicy = std::function<int(const PlacementQuery&)>;

/// The default policy: pin, then brick affinity, then least
/// outstanding cost, ties to the lowest index (see the header
/// comment). Custom policies can call this as their fallback.
int default_placement(const PlacementQuery& query);

/// One computed relocation, shared by every control-plane trigger:
/// failover() (crash — frames come from the crash snapshot),
/// migrate_session() / the rebalancer (voluntary — the live queue is
/// extracted), and drain_shard() (voluntary, every session of the
/// shard). execute_migration() re-opens each session on its target,
/// re-installs the retained client callbacks, pre-pushes warm bricks
/// (HandoffConfig), and re-issues `frames` in frame_id order.
struct MigrationPlan {
  enum class Trigger { Failover, Voluntary };
  Trigger trigger = Trigger::Voluntary;
  int from_shard = -1;
  struct Move {
    int session = -1;      ///< frontend session index
    int target = -1;       ///< destination shard
    int source_inner = -1; ///< the session's index on from_shard
  };
  /// Sessions to repoint, in open order (determinism).
  std::vector<Move> moves;
  /// Frames to re-issue, frame_id ascending (global submission order);
  /// UnservedFrame::session is the SOURCE-local inner index.
  std::vector<RenderService::UnservedFrame> frames;
  /// Farm time of the decision: re-issued arrivals are floored at
  /// max(decision_s, target clock) plus the handoff window, so moved
  /// work cannot time-travel onto an idle target's younger timeline.
  double decision_s = 0.0;
};

struct FrontendConfig {
  int shards = 2;
  int gpus_per_shard = 4;
  /// Hardware model + node packing for every shard's cluster.
  cluster::HardwareModel hw = cluster::HardwareModel::ncsa_accelerator_cluster();
  int max_gpus_per_node = 4;
  /// Per-shard RenderService configuration (policy, cache, ...).
  /// Adaptive quality flows through unchanged: each shard runs its own
  /// SLO controller (service.interactive_slo_s / max_degrade_lod) and
  /// per-session quality floors (SessionProfile::quality) ride the
  /// profile to whichever shard placement picks.
  ServiceConfig service;
  /// Optional per-shard brick-cache policy override: when non-empty it
  /// must name one policy per INITIAL shard; shards added by the
  /// autoscaler use service.cache_policy. Empty (default): every shard
  /// uses service.cache_policy.
  std::vector<CachePolicy> cache_policy_per_shard;

  // --- control plane ------------------------------------------------------
  HandoffConfig handoff;
  RebalanceConfig rebalance;
  AutoscaleConfig autoscale;
  /// Placement hook; null runs default_placement. The policy sees
  /// every placement-shaped decision: first placement and voluntary
  /// migration targets (failover keeps its documented
  /// least-outstanding-cost survivor pick).
  PlacementPolicy placement;

  // --- deprecated aliases (one release) -----------------------------------
  /// DEPRECATED: use handoff.peer_hydration. When set, overrides it.
  std::optional<bool> enable_peer_hydration;
  /// DEPRECATED: use handoff.fabric. When set, overrides it.
  std::optional<net::FabricModel> hydration_fabric;
  /// DEPRECATED: use handoff.failover_prepush. When set, overrides it.
  std::optional<bool> failover_prepush;
};

struct ShardStats {
  int shard = 0;
  int sessions = 0;  // sessions placed on this shard (lifetime)
  /// Elastic lifecycle: the farm-time interval this shard has been
  /// serving capacity. Initial shards activate at 0; added shards at
  /// their add_shard() farm time; a drained shard's active_to_s is its
  /// retirement time (+inf while active).
  bool retired = false;
  double active_from_s = 0.0;
  double active_to_s = std::numeric_limits<double>::infinity();
  /// Peer hydration (HandoffConfig::peer_hydration): stored bytes this
  /// shard received from warm siblings instead of reading disk, and the
  /// disk bytes those hydrations avoided (equal today — both paths move
  /// the stored payload; kept separate so a future wire format can
  /// diverge).
  std::uint64_t bytes_hydrated_from_peers = 0;
  std::uint64_t bytes_disk_avoided = 0;
  std::uint64_t bricks_hydrated = 0;
  ServiceStats service;
};

/// Cross-shard aggregate; per-shard detail in `shards`.
struct FrontendStats {
  int frames_total = 0;
  /// Shards run in parallel in the simulated farm: the farm's makespan
  /// is the slowest shard's serving window.
  double makespan_s = 0.0;
  double fps = 0.0;  // frames_total / makespan
  double cache_hit_rate = 0.0;  // hits / (hits+misses) across shards
  std::uint64_t bytes_h2d_saved = 0;
  /// Farm-wide peer hydration (sums of the per-shard counters).
  std::uint64_t bytes_hydrated_from_peers = 0;
  std::uint64_t bytes_disk_avoided = 0;
  std::uint64_t bricks_hydrated = 0;
  /// Failover: crashed shards failed over, orphaned sessions re-pinned
  /// to siblings, undelivered frames re-issued there.
  std::uint64_t failovers = 0;
  std::uint64_t sessions_repinned = 0;
  std::uint64_t frames_reissued = 0;
  /// Warm handoff traffic, shared by BOTH triggers (crash pre-push and
  /// voluntary migration pre-push ride the same fabric path).
  std::uint64_t bricks_prepushed = 0;
  std::uint64_t bytes_prepushed = 0;
  /// Voluntary moves: migrate_session / rebalancer / drain_shard
  /// session relocations and the live queued frames that moved along.
  std::uint64_t migrations = 0;
  std::uint64_t frames_migrated = 0;
  /// The subset of `migrations` the steady-state rebalancer triggered.
  std::uint64_t rebalance_migrations = 0;
  /// Elastic shard count: shards added / drained since construction.
  std::uint64_t shards_added = 0;
  std::uint64_t shards_drained = 0;
  /// Time-aligned farm windows: every shard's ServiceStats::windows
  /// merged by bin (shards share bin boundaries — same stats_window_s,
  /// parallel simulated timelines), counters summed, utilization over
  /// the farm's TIME-VARYING capacity: each bin's capacity integrates
  /// the shards actually active during it (ShardStats::active_from_s /
  /// active_to_s x gpus_per_shard), so a farm that scaled mid-run
  /// reports utilization against what it actually had, not against a
  /// constant shard count. A bin's counters partition exactly into the
  /// per-shard bins it merged.
  std::vector<ServiceWindow> windows;
  std::vector<ShardStats> shards;
};

class ServiceFrontend final : public SessionBackend {
 public:
  explicit ServiceFrontend(FrontendConfig config = {});
  ~ServiceFrontend() override;

  ServiceFrontend(const ServiceFrontend&) = delete;
  ServiceFrontend& operator=(const ServiceFrontend&) = delete;

  /// Admit a session. Shard placement is deferred to its first submit.
  Session open_session(SessionProfile profile);
  Session open_session(std::string name, Priority priority = Priority::Batch) {
    SessionProfile profile;
    profile.name = std::move(name);
    profile.priority = priority;
    return open_session(std::move(profile));
  }

  /// Drain every shard's queue (each on its own simulated timeline).
  /// With the rebalancer or autoscaler enabled, drains in horizon
  /// rounds and runs the control passes between them (see the header
  /// comment).
  void drain();

  /// Attach one flight recorder to every shard: shard i records as
  /// trace process pid_base + i, so a single exported file opens the
  /// whole farm in Perfetto with one process block per shard (pass a
  /// nonzero pid_base when other timelines already share the
  /// recorder). nullptr detaches. Shards added later inherit it.
  void set_trace(obs::TraceRecorder* recorder, int pid_base = 0);

  /// Cross-shard aggregate statistics, queryable at any time.
  FrontendStats stats() const;

  /// Forward to every shard (the volume may be warm on any of them).
  void invalidate_volume(const volren::Volume* volume);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_sessions() const { return static_cast<int>(sessions_.size()); }
  RenderService& shard(int index);
  /// Shard a frontend session landed on; -1 while still unplaced.
  int shard_of(const Session& session) const;
  /// False once drain_shard() marked the shard draining/retired (or it
  /// crashed): placement and migration will not target it.
  bool shard_accepting(int index) const;
  bool shard_retired(int index) const;
  /// The config AFTER deprecated aliases folded into their sub-configs.
  const FrontendConfig& config() const { return config_; }

  // --- control plane ------------------------------------------------------
  /// Voluntarily migrate a placed session at a frame boundary: its
  /// queued frames are extracted live (no crash snapshot), the session
  /// re-opens on `target_shard` (-1 lets the placement policy choose
  /// among the other accepting shards), retained client callbacks are
  /// re-installed, the source cache's warm bricks for the moved
  /// frames' volumes are pre-pushed (HandoffConfig::migration_prepush)
  /// and the frames re-issue in order with arrivals floored past the
  /// handoff window. A frame of the session already in flight on the
  /// source finishes and delivers THERE (its callbacks remain
  /// installed); queued refinements also stay and serve on the source.
  /// Frame ids are not stable across the move; submission order is.
  void migrate_session(const Session& session, int target_shard = -1);

  /// Grow the farm: construct shard N (engine, cluster, service,
  /// fabric node N), aligned to the current farm time, and open it for
  /// placement. Requires growth capacity (AutoscaleConfig::max_shards
  /// — the fabric was wired for that many nodes at construction).
  /// Returns the new shard's index. Emits a `scale.up` trace instant.
  int add_shard();

  /// Shrink the farm: stop placing onto `index`, migrate every placed
  /// session off it (placement policy picks each target), serve any
  /// remaining internal work, then retire the shard — it serves
  /// nothing afterwards and its windows capacity contribution ends at
  /// the retirement time. Its serving history stays in stats(). Emits
  /// a `scale.down` trace instant. Requires another accepting shard.
  void drain_shard(int index);

  // --- fault injection & failover ----------------------------------------
  /// Install a seeded fault plan across the farm: each event is routed
  /// to its `shard`'s RenderService (disk/lane/crash faults), except
  /// FabricDrop/FabricDelay, which install one deterministic injector
  /// on the target shard's inter-shard fabric — the drop/delay applies
  /// to that shard's inbound hydration and handoff-push messages,
  /// seeded from the plan so replays are bit-identical.
  void install_fault_plan(const fault::FaultPlan& plan);
  /// Fail over a crashed shard: re-pin its sessions onto surviving
  /// siblings (least outstanding cost, ties to the lowest index),
  /// pre-push the crashed cache's warm bricks for the orphaned volumes
  /// (HandoffConfig::failover_prepush), and re-issue the crash
  /// snapshot (RenderService::unserved_frames) in global submission
  /// order — all through the same execute_migration() primitive the
  /// voluntary paths use. drain() calls this automatically when it
  /// meets a crashed shard; idempotent.
  void failover(int crashed_shard);
  /// Pin an UNPLACED session to a shard ahead of its first submit
  /// (sets SessionProfile::pin_shard; the placement policy honors it).
  /// Range-validated; idempotent — re-pinning to the same shard (or
  /// pinning a session already placed there) is a no-op, while moving
  /// an already-placed session is an error: use migrate_session().
  void pin_shard(const Session& session, int shard);

  // --- SessionBackend (prefer the Session handle) ------------------------
  std::uint64_t session_submit(int session, RenderRequest request) override;
  void session_on_frame(int session, FrameCallback callback) override;
  void session_on_tile(int session, TileCallback callback) override;
  /// Migration-aware: counters (frames, cache hits/misses, tiles) sum
  /// over every shard the session has lived on; latency means are
  /// frame-weighted across epochs, percentiles/max are the worst
  /// epoch's (conservative). fps reflects the current epoch only.
  SessionStats session_stats(int session) const override;
  const SessionProfile& session_profile(int session) const override;

 private:
  struct Shard {
    std::unique_ptr<sim::Engine> engine;
    std::unique_ptr<cluster::Cluster> cluster;
    std::unique_ptr<RenderService> service;
    /// Hydration transfers INTO this shard run on its own engine (a
    /// sibling's residency probe is pure bookkeeping; only the
    /// requesting shard's timeline advances — the bulk-synchronous
    /// approximation the frontend's parallel-timelines model already
    /// makes for placement).
    std::unique_ptr<net::Fabric> fabric;
    int sessions_placed = 0;
    std::uint64_t bytes_hydrated_from_peers = 0;
    std::uint64_t bytes_disk_avoided = 0;
    std::uint64_t bricks_hydrated = 0;
    /// Set once failover() has evacuated this crashed shard.
    bool failed_over = false;
    /// Elastic lifecycle: accepting=false while draining and after
    /// retirement; retired shards serve nothing and are skipped
    /// everywhere (placement, hydration, drain sweeps).
    bool accepting = true;
    bool retired = false;
    double active_from_s = 0.0;
    double active_to_s = std::numeric_limits<double>::infinity();
  };
  struct FrontendSession {
    SessionProfile profile;
    /// Client callbacks are RETAINED (not moved into the inner session):
    /// every migration trigger re-installs them on the target shard's
    /// session.
    FrameCallback client_callback;
    TileCallback client_tile_callback;
    int shard = -1;
    Session inner;  // valid once placed
    /// Earlier placements' inner sessions (failover and voluntary
    /// moves): session_stats merges their served history.
    std::vector<Session> past_inner;
    /// Farm time of the last migration (rebalancer hysteresis).
    double last_migrated_s = -std::numeric_limits<double>::infinity();
  };

  /// Build one shard (used by the constructor and add_shard).
  Shard make_shard(int index);
  /// Run the placement policy over the current farm signals and
  /// validate its answer. `exclude_shard` (a migration's source) is
  /// reported as non-accepting in the query.
  int resolve_placement(const SessionProfile& profile,
                        const volren::Volume* volume, int exclude_shard) const;
  /// Failover's documented survivor pick: least outstanding cost among
  /// alive accepting shards, ties to the lowest index.
  int least_loaded_target(int exclude_shard) const;
  /// Compute a voluntary plan for one session: extract its live queue
  /// from the source shard and pick the target (policy when < 0).
  MigrationPlan plan_voluntary(int session, int target_shard,
                               double decision_s);
  /// The shared repoint-plus-handoff core (see MigrationPlan).
  void execute_migration(const MigrationPlan& plan);
  /// Steady-state control passes, run at horizon frame boundaries.
  /// rebalance_pass returns the number of sessions it moved.
  int rebalance_pass(double now_s);
  void autoscale_pass(double now_s);
  /// Max simulated time over live shards — the farm clock.
  double farm_now() const;
  /// GPU-busy seconds shard `index` logged in [now - span, now).
  double trailing_busy_s(int index, double now_s, double span_s) const;
  int accepting_shards() const;
  /// The HydrationSource installed on every shard: probe siblings for a
  /// warm copy of (volume -> their id, key.brick_id, key.layout_id) and
  /// ship it over the requesting shard's fabric. Returns false (disk
  /// fallback) when no sibling holds the brick.
  bool hydrate(int shard_index, int gpu, const volren::Volume* volume,
               const BrickKey& key, std::uint64_t stored_bytes,
               std::function<void()> done);
  /// Wrap a client callback so delivered records carry the
  /// frontend-wide session index, not the shard-local one.
  static FrameCallback translate(int session, FrameCallback callback);
  static TileCallback translate_tile(int session, TileCallback callback);

  FrontendConfig config_;
  /// Farm capacity: max(config.shards, autoscale.max_shards) — the
  /// node count every fabric was wired with.
  int max_farm_shards_ = 0;
  std::vector<Shard> shards_;
  std::vector<std::unique_ptr<FrontendSession>> sessions_;
  /// Kept for hydrate()'s shard-to-shard arrows (set_trace already
  /// forwards the recorder to every shard for their own spans).
  obs::TraceRecorder* trace_ = nullptr;
  int trace_pid_base_ = 0;
  // Control-plane accounting (aggregated into FrontendStats by stats()).
  std::uint64_t failovers_ = 0;
  std::uint64_t sessions_repinned_ = 0;
  std::uint64_t frames_reissued_ = 0;
  std::uint64_t bricks_prepushed_ = 0;
  std::uint64_t bytes_prepushed_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t frames_migrated_ = 0;
  std::uint64_t rebalance_migrations_ = 0;
  std::uint64_t shards_added_ = 0;
  std::uint64_t shards_drained_ = 0;
  double last_scale_s_ = -std::numeric_limits<double>::infinity();
};

}  // namespace vrmr::service
