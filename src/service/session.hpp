#pragma once

// Session handles: the client-facing unit of the serving API.
//
// The paper renders one frame per MapReduce job; the serving layers
// (RenderService over one cluster, ServiceFrontend over many) multiplex
// concurrent *sessions* onto simulated cluster timelines. A Session is
// a lightweight handle bound to whichever backend admitted it — clients
// submit frames, register a frame-delivery callback and query
// statistics through the handle without ever naming the backend again,
// which is what lets the frontend place sessions across shards behind
// the interface.
//
// Delivery is event-driven: `on_frame` callbacks fire on the DES
// timeline at each frame's finish_s (the engine clock equals finish_s
// inside the callback), in completion order. Below the frame, `on_tile`
// streams each finished *tile* — one reducer's share of the image,
// final the moment that reducer's compositing quantum completes — so a
// client starts receiving pixels before the frame's last tile lands.
// Every tile of a frame is delivered strictly before the frame's own
// on_frame callback, at the tile's completion time on the DES timeline.
// Submitting more frames from inside either callback is supported —
// that is how a streaming client keeps its queue topped up.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>

#include "mr/stats.hpp"
#include "obs/critical_path.hpp"
#include "util/check.hpp"
#include "volren/composite_reducer.hpp"
#include "volren/image.hpp"
#include "volren/renderer.hpp"
#include "volren/volume.hpp"

namespace vrmr::service {

/// Admission class. Every scheduling policy serves arrived Interactive
/// frames before any Batch frame, so a queued animation export cannot
/// head-of-line-block a scientist orbiting a dataset (the running frame
/// is never preempted; the bound is one batch frame of delay).
enum class Priority { Interactive, Batch };

inline const char* to_string(Priority priority) {
  switch (priority) {
    case Priority::Interactive: return "interactive";
    case Priority::Batch: return "batch";
  }
  return "?";
}

/// Camera-trajectory hint: the session promises a turntable orbit of
/// `frames_per_orbit` frames spaced `frame_interval_s` apart. Unused by
/// scheduling today; declared here so prefetch (ROADMAP) can warm the
/// next frame's bricks while the current frame reduces.
struct OrbitHint {
  int frames_per_orbit = 0;
  double frame_interval_s = 0.0;
};

struct SessionProfile {
  std::string name;
  Priority priority = Priority::Batch;
  std::optional<OrbitHint> orbit;
  /// Session-wide quality floor in (0, 1], min-composed with each
  /// request's RenderOptions::quality at admission: < 1 lets bricks
  /// that project small render from coarser pyramid levels
  /// (lod::select_level). 1.0 = full fidelity (the default).
  float quality = 1.0f;
  /// Frontend-only placement override: pin this session to the given
  /// shard index instead of the placement policy's choice (cold-shard
  /// warm-up experiments, capacity drains). Out-of-range values are
  /// rejected at open; RenderService ignores the field.
  std::optional<int> pin_shard;
};

struct RenderRequest {
  const volren::Volume* volume = nullptr;
  volren::RenderOptions options;
  /// Simulated arrival time. Frames of one session are served in
  /// submission order regardless of arrival jitter. Arrivals earlier
  /// than the DES clock at submit (streamed frames) or at drain()
  /// start (e.g. 0.0 on a reused service) are treated as arriving at
  /// that clock, so latency and queue-wait telemetry never absorb time
  /// from before the frame existed.
  double arrival_s = 0.0;
};

struct FrameRecord {
  int session = -1;        // backend-local session index
  std::uint64_t frame_id = 0;  // backend-local submission order
  double arrival_s = 0.0;  // effective arrival (clamped to drain start)
  double start_s = 0.0;    // job admitted to the cluster
  double finish_s = 0.0;   // job completed
  /// SJF cost-model estimate for this frame; 0 when another policy
  /// scheduled it (the model only runs when it decides).
  double predicted_cost_s = 0.0;
  std::uint64_t cache_hits = 0;    // resident bricks this frame
  std::uint64_t cache_misses = 0;  // staged bricks this frame
  int tiles = 0;           // tiles delivered for this frame
  double first_tile_s = 0.0;  // completion time of the frame's first tile
  mr::JobStats stats;
  /// Critical-path decomposition of latency_s(): seven segments (queue
  /// wait, stage+map, send, sort wait, sort, reduce, delivery) along
  /// the last-finishing reducer's dependency chain, summing EXACTLY to
  /// finish_s - arrival_s (obs::analyze_plan; valid once served).
  obs::CriticalPath critical_path;
  /// Deepest LOD pyramid level any brick of this frame rendered at:
  /// 0 = full resolution everywhere; > 0 = a degraded preview (SLO
  /// controller) or a reduced-quality request.
  int lod = 0;
  /// When >= 0, this frame is the full-quality refinement of the listed
  /// earlier frame of the same session (same view, lod 0). A
  /// refinement's on_frame callback never precedes its preview's — see
  /// src/service/README.md for the ordering guarantees.
  std::int64_t refines_frame_id = -1;
  volren::Image image;  // only populated when ServiceConfig::keep_images

  double latency_s() const { return finish_s - arrival_s; }
  double queue_wait_s() const { return start_s - arrival_s; }
  double service_s() const { return finish_s - start_s; }
};

/// One finished tile of an in-flight frame: reducer `reducer`'s share
/// of the key domain, composited and final even while other tiles of
/// the same frame are still rendering. `pixels` views storage owned by
/// the backend and is valid only during the callback — copy what you
/// keep. Ordering guarantees: a frame's tiles are delivered in
/// completion order (ties by reducer index), every tile's finish_s is
/// <= the frame's finish_s, and all of a frame's tiles precede its
/// on_frame callback.
struct TileRecord {
  int session = -1;            // backend-local session index
  std::uint64_t frame_id = 0;  // owning frame
  int reducer = -1;            // tile index == reducer index
  int tiles_in_frame = 0;      // total tiles this frame will deliver
  double finish_s = 0.0;       // reduce-quantum completion on the DES
  std::span<const volren::FinishedPixel> pixels;
};

/// Per-session statistics over every frame completed so far; queryable
/// at any time (including from inside an on_frame callback).
struct SessionStats {
  std::string name;
  Priority priority = Priority::Batch;
  int frames = 0;         // completed
  int queued_frames = 0;  // submitted, not yet served
  double p50_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double mean_latency_s = 0.0;
  double max_latency_s = 0.0;
  double fps = 0.0;  // frames / (last finish - first arrival)
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t tiles_delivered = 0;
  /// Online cost-model calibration factor: EWMA of observed service
  /// time over the a-priori estimate (1.0 until the first frame
  /// completes; see ServiceConfig::cost_calibration_alpha).
  double cost_scale = 1.0;

  double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total > 0 ? static_cast<double>(cache_hits) / static_cast<double>(total)
                     : 0.0;
  }
};

/// Fired at the frame's finish_s on the serving timeline.
using FrameCallback = std::function<void(const FrameRecord&)>;

/// Fired at each tile's completion time, before the owning frame's
/// FrameCallback.
using TileCallback = std::function<void(const TileRecord&)>;

/// Backend interface a Session delegates to (RenderService serves one
/// cluster; ServiceFrontend routes to a shard). Not for client use —
/// clients hold Sessions.
class SessionBackend {
 public:
  virtual ~SessionBackend() = default;
  virtual std::uint64_t session_submit(int session, RenderRequest request) = 0;
  virtual void session_on_frame(int session, FrameCallback callback) = 0;
  virtual void session_on_tile(int session, TileCallback callback) = 0;
  virtual SessionStats session_stats(int session) const = 0;
  virtual const SessionProfile& session_profile(int session) const = 0;
};

class Session {
 public:
  Session() = default;  // invalid until assigned from open_session

  bool valid() const { return backend_ != nullptr; }

  /// Queue one frame; returns its backend-local frame id. The volume
  /// must outlive serving. Volumes are identified by (address,
  /// generation): re-submitting the same Volume object shares brick
  /// residency, and a volume whose voxel dimensions changed since
  /// registration is rejected until invalidate_volume re-keys it.
  std::uint64_t submit(RenderRequest request) {
    VRMR_CHECK_MSG(valid(), "submit on an invalid (default-constructed) Session");
    return backend_->session_submit(index_, std::move(request));
  }

  /// Convenience: queue `frames` turntable frames (full orbit) spaced
  /// `frame_interval_s` apart starting at `first_arrival_s`.
  void submit_orbit(const volren::Volume& volume, volren::RenderOptions options,
                    int frames, double first_arrival_s, double frame_interval_s) {
    VRMR_CHECK_MSG(valid(), "submit_orbit on an invalid Session");
    VRMR_CHECK(frames >= 1);
    for (int f = 0; f < frames; ++f) {
      options.azimuth =
          6.2831853f * static_cast<float>(f) / static_cast<float>(frames);
      RenderRequest request;
      request.volume = &volume;
      request.options = options;
      request.arrival_s = first_arrival_s + frame_interval_s * f;
      submit(request);
    }
  }

  /// Register the frame-delivery callback (replaces any previous one).
  /// Fires for frames completed after registration, at their finish_s
  /// on the DES timeline, in completion order.
  void on_frame(FrameCallback callback) {
    VRMR_CHECK_MSG(valid(), "on_frame on an invalid Session");
    backend_->session_on_frame(index_, std::move(callback));
  }

  /// Register the tile-streaming callback (replaces any previous one).
  /// Fires for every finished tile of frames served after
  /// registration, at the tile's completion time — i.e. partial-frame
  /// delivery while the rest of the frame is still rendering. All of a
  /// frame's tiles are delivered before its on_frame callback.
  void on_tile(TileCallback callback) {
    VRMR_CHECK_MSG(valid(), "on_tile on an invalid Session");
    backend_->session_on_tile(index_, std::move(callback));
  }

  /// Statistics over this session's completed frames, at any time.
  SessionStats stats() const {
    VRMR_CHECK_MSG(valid(), "stats on an invalid Session");
    return backend_->session_stats(index_);
  }

  const SessionProfile& profile() const {
    VRMR_CHECK_MSG(valid(), "profile on an invalid Session");
    return backend_->session_profile(index_);
  }

 private:
  friend class RenderService;
  friend class ServiceFrontend;
  Session(SessionBackend* backend, int index) : backend_(backend), index_(index) {}

  SessionBackend* backend_ = nullptr;
  int index_ = -1;
};

}  // namespace vrmr::service
