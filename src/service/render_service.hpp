#pragma once

// Render service: a multi-session frame scheduler over one simulated
// cluster.
//
// The paper renders one frame per MapReduce job on a dedicated cluster;
// this layer multiplexes many concurrent *sessions* (a scientist
// orbiting a dataset, a batch animation export) onto a shared cluster
// timeline. Each submitted RenderRequest becomes one mr::Job; jobs run
// non-preemptively back to back (a frame job already spans every GPU,
// mirroring the paper's whole-cluster deployment), so scheduling is the
// choice of *which queued frame goes next*:
//
//   Fifo             — global arrival order (baseline).
//   RoundRobin       — cycle through sessions with arrived work, so one
//                      heavy batch session cannot starve interactive
//                      orbiting sessions.
//   ShortestJobFirst — a-priori cost model (mr::speed_of_light over
//                      predicted counters, residency-aware) picks the
//                      cheapest arrived frame; minimizes mean latency.
//
// Between frames of the same session most bricks are already resident
// on their GPUs; the service wires a per-GPU BrickCache into the job's
// chunk-staging path (JobConfig::staging_hook) so those bricks skip the
// disk read and H2D upload entirely.
//
// Everything runs on the DES clock: arrivals are simulated timestamps,
// queue waits advance the clock, and the whole schedule is
// deterministic and replayable.

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hpp"
#include "mr/stats.hpp"
#include "service/brick_cache.hpp"
#include "volren/renderer.hpp"
#include "volren/volume.hpp"

namespace vrmr::service {

enum class SchedulingPolicy { Fifo, RoundRobin, ShortestJobFirst };

const char* to_string(SchedulingPolicy policy);

struct ServiceConfig {
  SchedulingPolicy policy = SchedulingPolicy::Fifo;

  /// Per-GPU brick residency cache (disable to reproduce the paper's
  /// stage-everything-every-frame behaviour).
  bool enable_brick_cache = true;

  /// VRAM held back from the cache budget for the working frame
  /// (brick being staged, kernel output slots, transfer texture).
  std::uint64_t cache_reserve_bytes = 512ull << 20;

  /// Non-zero overrides the DeviceProps-derived cache budget (tests).
  std::uint64_t cache_capacity_override = 0;

  /// Keep rendered images in the FrameRecords (memory-proportional;
  /// off for throughput benches).
  bool keep_images = false;
};

using SessionId = int;

struct RenderRequest {
  const volren::Volume* volume = nullptr;
  volren::RenderOptions options;
  /// Simulated arrival time. Frames of one session are served in
  /// submission order regardless of arrival jitter. Arrivals earlier
  /// than the DES clock when run() starts (e.g. 0.0 on a reused
  /// service) are treated as arriving at run start, so latency and
  /// queue-wait telemetry never absorb a previous run's duration.
  double arrival_s = 0.0;
};

struct FrameRecord {
  SessionId session = -1;
  std::uint64_t frame_id = 0;  // global submission order
  double arrival_s = 0.0;  // effective arrival (clamped to run start)
  double start_s = 0.0;   // job admitted to the cluster
  double finish_s = 0.0;  // job completed
  /// SJF cost-model estimate for this frame; 0 when another policy
  /// scheduled it (the model only runs when it decides).
  double predicted_cost_s = 0.0;
  std::uint64_t cache_hits = 0;    // resident bricks this frame
  std::uint64_t cache_misses = 0;  // staged bricks this frame
  mr::JobStats stats;
  volren::Image image;  // only populated when ServiceConfig::keep_images

  double latency_s() const { return finish_s - arrival_s; }
  double queue_wait_s() const { return start_s - arrival_s; }
  double service_s() const { return finish_s - start_s; }
};

struct SessionSummary {
  SessionId id = -1;
  std::string name;
  int frames = 0;
  double p50_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double mean_latency_s = 0.0;
  double max_latency_s = 0.0;
  double fps = 0.0;  // frames / (last finish - first arrival)
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total > 0 ? static_cast<double>(cache_hits) / static_cast<double>(total)
                     : 0.0;
  }
};

struct ServiceStats {
  int frames_total = 0;
  /// Serving window: first serveable arrival (or the clock at run()
  /// when arrivals are backdated) .. last frame completion.
  double makespan_s = 0.0;
  double fps = 0.0;         // frames_total / makespan
  /// GPU busy share of makespan x GPU count (how hot the cluster ran).
  double cluster_utilization = 0.0;
  double cache_hit_rate = 0.0;
  std::uint64_t bytes_h2d_saved = 0;
  BrickCacheStats cache;
  std::vector<SessionSummary> sessions;
  std::vector<FrameRecord> frames;  // completion order
};

class RenderService {
 public:
  RenderService(cluster::Cluster& cluster, ServiceConfig config = {});

  RenderService(const RenderService&) = delete;
  RenderService& operator=(const RenderService&) = delete;

  /// Register a session; the id keys all of its frames.
  SessionId open_session(std::string name);

  /// Queue one frame; returns its global frame id. The volume must
  /// outlive run(). Volumes are identified by address, so re-submitting
  /// the same Volume object shares brick residency — and a *different*
  /// volume allocated at a reused address would inherit it; call
  /// invalidate_volume before destroying a volume the service has seen.
  std::uint64_t submit(SessionId session, RenderRequest request);

  /// Drop the volume's bricks from every GPU shard and forget its
  /// registration (a future volume at the same address starts cold).
  /// Call when a volume is destroyed or its voxels change.
  void invalidate_volume(const volren::Volume* volume);

  /// Convenience: queue `frames` turntable frames (full orbit) spaced
  /// `frame_interval_s` apart starting at `first_arrival_s`.
  void submit_orbit(SessionId session, const volren::Volume& volume,
                    volren::RenderOptions options, int frames,
                    double first_arrival_s, double frame_interval_s);

  /// Drain every queued frame on the cluster's DES timeline and report.
  /// Reusable: submit more frames afterwards and run() again (brick
  /// residency persists across runs; statistics cover one run).
  ServiceStats run();

  const BrickCache* cache() const { return cache_ ? &*cache_ : nullptr; }
  const ServiceConfig& config() const { return config_; }
  int num_sessions() const { return static_cast<int>(sessions_.size()); }

 private:
  struct Pending {
    RenderRequest request;
    std::uint64_t frame_id = 0;
  };
  struct Session {
    std::string name;
    std::deque<Pending> queue;
    std::uint64_t last_served_seq = 0;  // RoundRobin recency
  };

  /// Session index of the next frame to serve (-1 = none arrived).
  /// Fills `predicted_cost_s` with the chosen head's cost estimate when
  /// the policy already computed it (SJF); leaves it negative otherwise.
  int pick_next(double now, double* predicted_cost_s) const;
  double earliest_head_arrival() const;   // +inf when all queues empty
  void advance_clock_to(double t);
  double estimate_cost_s(const Pending& pending) const;
  std::uint64_t volume_id(const volren::Volume* volume);
  /// `arrival_floor_s` = the clock at run() start (backdated-arrival
  /// clamp); `predicted_cost_s` < 0 means the policy did not score the
  /// frame (non-SJF) and the record keeps 0.
  FrameRecord render_one(Session& session, SessionId sid, double arrival_floor_s,
                         double predicted_cost_s);
  ServiceStats finalize(std::vector<FrameRecord> frames, double run_start_s,
                        double gpu_busy_start_s, const BrickCacheStats& cache_start);

  cluster::Cluster& cluster_;
  ServiceConfig config_;
  std::optional<BrickCache> cache_;
  std::vector<Session> sessions_;
  std::unordered_map<const volren::Volume*, std::uint64_t> volume_ids_;
  std::uint64_t next_volume_id_ = 0;
  std::uint64_t next_frame_id_ = 0;
  std::uint64_t serve_seq_ = 0;
};

}  // namespace vrmr::service
