#pragma once

// Render service: a multi-session frame scheduler over one simulated
// cluster, serving first-class Session handles (session.hpp).
//
// The paper renders one frame per MapReduce job on a dedicated cluster;
// this layer multiplexes many concurrent sessions (a scientist orbiting
// a dataset, a batch animation export) onto a shared cluster timeline.
// Each submitted RenderRequest becomes one mr::Job; jobs run
// non-preemptively back to back (a frame job already spans every GPU,
// mirroring the paper's whole-cluster deployment), so scheduling is the
// choice of *which queued frame goes next*:
//
//   Fifo             — global arrival order (baseline).
//   RoundRobin       — cycle through sessions with arrived work, so one
//                      heavy batch session cannot starve interactive
//                      orbiting sessions.
//   ShortestJobFirst — a-priori cost model (mr::speed_of_light over
//                      predicted counters, residency-aware) picks the
//                      cheapest arrived frame; minimizes mean latency.
//
// Admission is priority-aware: all three policies schedule within the
// Interactive class before considering Batch, so a queued export delays
// an interactive frame by at most the one batch frame already running.
//
// Frames are delivered as events: each session's on_frame callback
// fires at the frame's finish_s on the DES timeline, and per-session
// statistics are queryable at any time. drain() just pumps the clock
// until every queued frame has been served.
//
// Between frames of the same session most bricks are already resident
// on their GPUs; the service wires a per-GPU BrickCache into the job's
// chunk-staging path (JobConfig::staging_hook) so those bricks skip the
// disk read and H2D upload entirely. The frame's BrickLayout and cache
// signature are memoized once at submit; scheduling probes and the
// render itself reuse them.
//
// Everything runs on the DES clock: arrivals are simulated timestamps,
// queue waits advance the clock, and the whole schedule is
// deterministic and replayable.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hpp"
#include "mr/stats.hpp"
#include "service/brick_cache.hpp"
#include "service/session.hpp"
#include "volren/bricking.hpp"
#include "volren/renderer.hpp"
#include "volren/volume.hpp"

namespace vrmr::service {

enum class SchedulingPolicy { Fifo, RoundRobin, ShortestJobFirst };

const char* to_string(SchedulingPolicy policy);

struct ServiceConfig {
  SchedulingPolicy policy = SchedulingPolicy::Fifo;

  /// Per-GPU brick residency cache (disable to reproduce the paper's
  /// stage-everything-every-frame behaviour).
  bool enable_brick_cache = true;

  /// VRAM held back from the cache budget for the working frame
  /// (brick being staged, kernel output slots, transfer texture).
  std::uint64_t cache_reserve_bytes = 512ull << 20;

  /// Non-zero overrides the DeviceProps-derived cache budget (tests).
  std::uint64_t cache_capacity_override = 0;

  /// Keep rendered images in the FrameRecords (memory-proportional;
  /// off for throughput benches).
  bool keep_images = false;
};

/// Service-wide statistics over every frame completed so far.
struct ServiceStats {
  int frames_total = 0;
  /// Serving window: first effective arrival served .. last completion.
  double makespan_s = 0.0;
  double fps = 0.0;         // frames_total / makespan
  /// GPU busy share of makespan x GPU count (how hot the cluster ran).
  double cluster_utilization = 0.0;
  double cache_hit_rate = 0.0;
  std::uint64_t bytes_h2d_saved = 0;
  BrickCacheStats cache;
  std::vector<SessionStats> sessions;  // open order, completed-only
  std::vector<FrameRecord> frames;     // completion order
};

class RenderService final : public SessionBackend {
 public:
  RenderService(cluster::Cluster& cluster, ServiceConfig config = {});

  RenderService(const RenderService&) = delete;
  RenderService& operator=(const RenderService&) = delete;

  /// Admit a session; the handle is the API for submit/on_frame/stats.
  Session open_session(SessionProfile profile);
  Session open_session(std::string name, Priority priority = Priority::Batch) {
    return open_session(SessionProfile{std::move(name), priority, std::nullopt});
  }

  /// Drop the volume's bricks from every GPU shard, forget its
  /// registration and bump the registration generation (a future
  /// volume at the same address re-registers cold, and may change
  /// voxel dimensions). Call when a volume is destroyed or its voxels
  /// change.
  void invalidate_volume(const volren::Volume* volume);

  /// Pump the DES clock until every queued frame (including frames
  /// submitted from inside on_frame callbacks) has been served.
  /// Reusable: submit more frames afterwards and drain() again — brick
  /// residency persists and statistics keep accumulating.
  void drain();

  /// Statistics over everything completed since construction. Copies
  /// the frame history (including images under keep_images) into
  /// ServiceStats::frames — for frequent polling prefer frames() /
  /// session_stats, which do not copy records.
  ServiceStats stats() const;

  /// Zero-copy view of every completed frame, completion order.
  const std::vector<FrameRecord>& frames() const { return completed_; }

  // --- SessionBackend (prefer the Session handle) ------------------------
  std::uint64_t session_submit(int session, RenderRequest request) override;
  void session_on_frame(int session, FrameCallback callback) override;
  SessionStats session_stats(int session) const override;
  const SessionProfile& session_profile(int session) const override;

  // --- introspection (frontend placement, tests) -------------------------
  const BrickCache* cache() const { return cache_ ? &*cache_ : nullptr; }
  const ServiceConfig& config() const { return config_; }
  cluster::Cluster& cluster() { return cluster_; }
  int num_sessions() const { return static_cast<int>(sessions_.size()); }
  int queued_frames() const;
  /// Sum of submit-time cost estimates of every queued frame — the
  /// load signal the frontend's least-outstanding-cost placement reads.
  double outstanding_cost_s() const { return outstanding_cost_s_; }
  /// True when the volume is registered and has at least one brick
  /// resident on some GPU (the frontend's brick-affinity signal).
  bool volume_warm(const volren::Volume* volume) const;
  /// The registration dims guard as a non-mutating probe: CHECK-throws
  /// when the volume is registered with different voxel dims (the
  /// frontend runs it before pinning a session to a shard, so a
  /// rejected submit leaves placement untouched).
  void check_volume_compatible(const volren::Volume* volume) const;
  /// How many BrickLayouts the service has built (memoization probe:
  /// exactly one per submitted frame, never per scheduling decision
  /// or render).
  std::uint64_t layouts_built() const { return layouts_built_; }
  /// Current registration generation. Volumes register under
  /// (address, generation); invalidate_volume bumps it, so the
  /// registration epoch of a reused address is observable.
  std::uint64_t registration_generation() const { return generation_; }

 private:
  struct Pending {
    RenderRequest request;
    std::uint64_t frame_id = 0;
    /// Memoized at submit: the decomposition this frame will stage and
    /// its cache signature; scheduling probes and render_one reuse it.
    std::shared_ptr<const volren::BrickLayout> layout;
    std::uint64_t layout_sig = 0;
    double submit_cost_s = 0.0;  // estimate at submit (load accounting)
    Int3 submit_dims;            // volume dims the layout was built from
    /// DES clock at submit: a streamed frame (submitted mid-drain from
    /// a callback) cannot claim to have arrived before it existed.
    double submit_floor_s = 0.0;

    /// Arrival as scheduling and telemetry see it: backdated arrivals
    /// floor at the submit clock (so FIFO order, the arrived-yet gate
    /// and latency all agree on when the frame started existing).
    double effective_arrival_s() const {
      return request.arrival_s > submit_floor_s ? request.arrival_s
                                                : submit_floor_s;
    }
  };
  struct SessionState {
    SessionProfile profile;
    std::deque<Pending> queue;
    std::uint64_t last_served_seq = 0;  // RoundRobin recency
    FrameCallback callback;
  };
  struct VolumeRegistration {
    std::uint64_t id = 0;          // cache key; never reused
    std::uint64_t generation = 0;  // generation_ when registered
    Int3 dims;                     // voxel dims at registration
  };

  /// Session index of the next frame to serve (-1 = none arrived).
  /// Only the highest priority class with arrived work competes.
  /// Fills `predicted_cost_s` with the chosen head's cost estimate when
  /// the policy already computed it (SJF); leaves it negative otherwise.
  int pick_next(double now, double* predicted_cost_s) const;
  double earliest_head_arrival() const;  // +inf when all queues empty
  void advance_clock_to(double t);
  double estimate_cost_s(const Pending& pending) const;
  /// Register (or re-find) the volume under the current generation;
  /// CHECKs that registered voxel dims still match the volume's.
  const VolumeRegistration& register_volume(const volren::Volume* volume);
  /// `arrival_floor_s` = the clock at drain() start (backdated-arrival
  /// clamp); `predicted_cost_s` < 0 means the policy did not score the
  /// frame (non-SJF) and the record keeps 0.
  void serve_one(int session_index, double arrival_floor_s,
                 double predicted_cost_s);
  SessionStats stats_for(int session_index) const;

  cluster::Cluster& cluster_;
  ServiceConfig config_;
  std::optional<BrickCache> cache_;
  std::vector<std::unique_ptr<SessionState>> sessions_;
  std::unordered_map<const volren::Volume*, VolumeRegistration> volumes_;
  std::uint64_t next_volume_id_ = 0;
  std::uint64_t generation_ = 0;  // bumped by invalidate_volume
  std::uint64_t next_frame_id_ = 0;
  std::uint64_t serve_seq_ = 0;
  std::uint64_t layouts_built_ = 0;
  double outstanding_cost_s_ = 0.0;
  std::vector<FrameRecord> completed_;  // completion order, lifetime
  double window_start_s_ = 0.0;  // first effective arrival served
  bool window_open_ = false;
  /// GPU busy when the serving window opened: utilization must not
  /// charge (or credit) cluster activity from before this service
  /// served its first frame (the cluster reference is shared).
  double gpu_busy_at_window_open_ = 0.0;
  bool draining_ = false;  // reentrancy guard (drain() from a callback)
};

}  // namespace vrmr::service
