#pragma once

// Render service: a multi-session frame scheduler over one simulated
// cluster, serving first-class Session handles (session.hpp).
//
// The paper renders one frame per MapReduce job on a dedicated cluster;
// this layer multiplexes many concurrent sessions (a scientist orbiting
// a dataset, a batch animation export) onto a shared cluster timeline.
//
// Execution model (PipelineMode::Quantum, the default): each admitted
// frame is a *plan of brick-granular work quanta* (volren::PlannedFrame
// over mr::FramePlan), not an indivisible job. The scheduler owns every
// GPU "lane" and decides, at each lane-free event, whose quantum runs
// next:
//
//   * frames are admitted one at a time per priority class; an
//     Interactive frame arriving while a Batch frame renders is
//     admitted immediately and takes every lane as it frees — the
//     batch frame is preempted at the next brick boundary and resumes
//     when the interactive frame completes, so interactive queue wait
//     is bounded by one brick quantum instead of one whole batch frame;
//   * finished tiles stream to the session's on_tile callback at each
//     reducer's completion time (partial-frame delivery), all before
//     the frame's own on_frame callback;
//   * lanes idle during a frame's sort/reduce tail prefetch the
//     predicted next bricks of orbit-hinted sessions into the
//     BrickCache (camera-aware prefetch), so the next orbit frame hits
//     instead of paying the staging miss.
//
// PipelineMode::Monolithic reproduces the paper's whole-frame schedule
// (one run-to-completion job at a time); tile callbacks still fire at
// the true reducer completion times — only preemption and prefetch are
// disabled. bench_preemption_latency quantifies the difference.
//
// Scheduling picks *which queued frame is admitted next*:
//
//   Fifo             — global effective-arrival order (baseline).
//   RoundRobin       — cycle through sessions with arrived work, so one
//                      heavy batch session cannot starve interactive
//                      orbiting sessions.
//   ShortestJobFirst — cost model (mr::speed_of_light over predicted
//                      counters, residency-aware, scaled by the
//                      per-session online calibration) picks the
//                      cheapest arrived frame; minimizes mean latency.
//
// Every policy breaks ties by frame_id (global submission order), so
// replay is deterministic regardless of session open order. Admission
// is priority-aware: arrived Interactive frames are considered before
// any Batch frame.
//
// The cost model self-calibrates online: each completed frame updates a
// per-session EWMA of observed service time over the a-priori estimate
// (SessionStats::cost_scale), which scales both SJF ranking and the
// outstanding_cost_s() load signal the frontend places against.
//
// Between frames of the same session most bricks are already resident
// on their GPUs; the service wires a per-GPU BrickCache into chunk
// staging (JobConfig::staging_hook) so those bricks skip the disk read
// and H2D upload entirely. The frame's BrickLayout and cache signature
// are memoized once at submit; scheduling probes, prefetch and the
// render itself reuse them.
//
// Everything runs on the DES clock: arrivals are simulated timestamps,
// queue waits advance the clock, and the whole schedule is
// deterministic and replayable.

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hpp"
#include "compress/brick_codec.hpp"
#include "fault/fault_plan.hpp"
#include "lod/occupancy.hpp"
#include "lod/pyramid.hpp"
#include "mr/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/brick_cache.hpp"
#include "service/session.hpp"
#include "volren/bricking.hpp"
#include "volren/renderer.hpp"
#include "volren/volume.hpp"

namespace vrmr::service {

enum class SchedulingPolicy { Fifo, RoundRobin, ShortestJobFirst };
enum class PipelineMode { Monolithic, Quantum };

const char* to_string(SchedulingPolicy policy);
const char* to_string(PipelineMode mode);

struct ServiceConfig {
  SchedulingPolicy policy = SchedulingPolicy::Fifo;

  /// Quantum (default): brick-granular scheduling with preemption and
  /// prefetch. Monolithic: the paper's indivisible one-job-per-frame
  /// execution (tile streaming still active).
  PipelineMode pipeline = PipelineMode::Quantum;

  /// Barrier enforcement for frames served under the Quantum pipeline
  /// (overrides each request's RenderOptions::barrier_mode there;
  /// Monolithic honours the request's own setting). PerReducer issues
  /// each reducer's sort the moment its own inbox completes and chains
  /// its reduce right after — same pixels, minimum time-to-first-tile
  /// and earlier lane/frame completion for the scheduler.
  mr::BarrierMode barrier_mode = mr::BarrierMode::PerReducer;

  /// Batch aging: a queued Batch head that has waited at least this
  /// long past its effective arrival competes ahead of Interactive
  /// heads (oldest arrival wins, ties by frame_id), so a sustained
  /// interactive burst cannot starve batch frames indefinitely —
  /// batch queue wait is bounded near this value plus the interactive
  /// work in flight when it ages. Aging only activates while an
  /// arrived Interactive head is actually suppressing batch work, and
  /// admits at most ONE batch frame per aging period (any batch
  /// admission restarts the period) — a deep pre-aged backlog trickles
  /// through at that rate instead of inverting priority.
  /// Batch-vs-batch ordering stays with the configured policy. 0
  /// disables aging (strict priority, the pre-aging behaviour).
  /// Admitted batch frames still yield every lane to interactive
  /// quanta at brick boundaries.
  double batch_aging_s = 0.0;

  /// Windowed service stats: bin width (simulated seconds) for the
  /// per-window counters in ServiceStats::windows (frames finished,
  /// quanta issued, preemptions, tiles, utilization), which expose
  /// load and interference over time where the lifetime aggregates
  /// average it away. 0 disables window tracking.
  double stats_window_s = 1.0;

  /// Per-GPU brick residency cache (disable to reproduce the paper's
  /// stage-everything-every-frame behaviour).
  bool enable_brick_cache = true;

  /// Admission/eviction policy for the brick cache. Lru (default) is
  /// the original recency-only cache; Arc is the ghost-list adaptive
  /// replacement cache — scan-resistant, so a Batch session's one-pass
  /// full-volume sweep cannot flush an Interactive session's
  /// twice-touched working set (bench_cache_policies gates the win).
  CachePolicy cache_policy = CachePolicy::Lru;

  /// Stage predicted next bricks of orbit-hinted sessions on lanes the
  /// current frame leaves idle (Quantum pipeline with cache only).
  bool enable_prefetch = true;

  /// VRAM held back from the cache budget for the working frame
  /// (brick being staged, kernel output slots, transfer texture).
  std::uint64_t cache_reserve_bytes = 512ull << 20;

  /// Non-zero overrides the DeviceProps-derived cache budget (tests).
  std::uint64_t cache_capacity_override = 0;

  /// Keep rendered images in the FrameRecords (memory-proportional;
  /// off for throughput benches).
  bool keep_images = false;

  /// EWMA smoothing factor for the online cost-model calibration:
  /// scale <- (1-a)*scale + a*(observed/predicted) per completed
  /// frame. 0 disables calibration (pure a-priori model).
  double cost_calibration_alpha = 0.25;

  // --- adaptive quality of service (src/lod) -------------------------------
  /// Interactive frame deadline: > 0 arms the SLO controller. At
  /// admission, an Interactive frame whose remaining deadline budget
  /// (slo - time already queued) cannot fit the calibrated full-quality
  /// cost estimate is served from a coarser pyramid level instead, and
  /// a full-quality *refinement* frame for the same view is enqueued at
  /// the preview's completion on an internal Batch-priority session —
  /// delivered through the client's normal on_tile/on_frame callbacks
  /// with FrameRecord::refines_frame_id linking back to the preview.
  /// 0 disables degradation entirely (the pre-SLO behaviour).
  double interactive_slo_s = 0.0;
  /// Deepest pyramid level the SLO controller may degrade to (further
  /// clamped by the pyramid's actual depth).
  int max_degrade_lod = 2;
  /// Build per-volume LOD pyramids on demand (the SLO controller and
  /// requests with max_lod/quality set need one). No effect on frames
  /// that never ask for reduced quality.
  bool enable_lod = true;
  /// Scan per-brick occupancy (min/max + cell thumbnail) and cull
  /// bricks the session's transfer function maps fully transparent
  /// before any staging. Output is bit-identical (lod/occupancy.hpp);
  /// off by default because culled bricks change cache/staging
  /// telemetry that replay baselines compare against.
  bool enable_occupancy_culling = false;
  /// Occupancy scan budget: volumes above this voxel count get a
  /// subsampled, non-exact scan — metadata only, never culled from.
  std::int64_t occupancy_max_voxels = std::int64_t{1} << 24;

  // --- brick compression (src/compress) ------------------------------------
  /// Codec for every byte-moving path: None (default) stages raw
  /// logical payloads — bit-identical to the pre-compression service.
  /// Rle/ZfpStyle analyze each (volume, layout) once (memoized with the
  /// quality state), then disk reads, H2D transfers, cache residency
  /// and peer hydration all move the *stored* (compressed) bytes while
  /// a per-brick decompress quantum is charged on the GPU stream before
  /// the map kernel. Pixels are bit-identical either way — the codecs
  /// are lossless (rle) or modeled-size-only (zfp-style); see
  /// src/compress/README.md.
  compress::Codec compression = compress::Codec::None;

  // --- fault tolerance (src/fault) -----------------------------------------
  /// Base lane hold-down after a failed map quantum: the lane that
  /// detected the failure is kept out of the scheduler's fill pass for
  /// retry_backoff_s x 2^(attempt-1) of simulated time before the
  /// chunk's retry can issue there (exponential backoff; other lanes
  /// are unaffected). 0 retries immediately at the next pump.
  double retry_backoff_s = 200e-6;
  /// Default failure-detection timeout for injected faults whose event
  /// carries no param_s: how long a lane is wedged before the failure
  /// is observed (a stuck read, a missed completion).
  double fault_detect_s = 1e-3;
};

/// One bin of the windowed service counters: activity inside
/// [start_s, start_s + window_s) of simulated time. Only bins with
/// activity are materialized (sparse timeline).
struct ServiceWindow {
  double start_s = 0.0;
  double window_s = 0.0;
  int frames_finished = 0;
  /// Stage+map quanta the scheduler issued (Quantum pipeline).
  std::uint64_t quanta_issued = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t tiles = 0;
  /// GPU busy attributed to this window: busy deltas observed at frame
  /// completions, spread uniformly over the interval since the
  /// previous observation — exact in total, approximate within a
  /// window (work is smeared across the interval, and the simulator
  /// charges an operation's busy at its grant).
  double gpu_busy_s = 0.0;
  /// gpu_busy_s / (window_s x GPUs), clamped to [0, 1] (the smearing
  /// above can locally overshoot capacity; totals stay exact via
  /// gpu_busy_s).
  double utilization = 0.0;
};

/// Quantile summary of one latency histogram (obs::LogHistogram, so
/// each quantile is within one ~9% log bucket of the exact sample).
struct LatencyQuantiles {
  std::uint64_t count = 0;
  double mean_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double p999_s = 0.0;
};

/// Per-priority-class latency decomposition: queue wait, time to first
/// pixel (effective arrival -> first streamed tile) and service time —
/// the per-class SLO view the lifetime aggregates average away.
struct PriorityLatencies {
  LatencyQuantiles queue_wait;
  LatencyQuantiles first_pixel;
  LatencyQuantiles service;
};

/// Service-wide statistics over every frame completed so far.
struct ServiceStats {
  int frames_total = 0;
  /// Serving window: first effective arrival served .. last completion.
  double makespan_s = 0.0;
  double fps = 0.0;         // frames_total / makespan
  /// GPU busy share of makespan x GPU count (how hot the cluster ran).
  double cluster_utilization = 0.0;
  double cache_hit_rate = 0.0;
  std::uint64_t bytes_h2d_saved = 0;
  /// Tiles streamed through on_tile delivery across all sessions.
  std::uint64_t tiles_total = 0;
  /// Interactive frames admitted while a batch frame was mid-render
  /// (brick-boundary preemptions; Quantum pipeline only).
  std::uint64_t preemptions = 0;
  /// Camera-aware prefetch: bricks staged speculatively on idle lanes.
  std::uint64_t bricks_prefetched = 0;
  std::uint64_t bytes_prefetched = 0;
  /// Adaptive quality: interactive frames the SLO controller admitted
  /// below full resolution, refinement frames enqueued/served for them,
  /// bricks dropped by occupancy classification before staging, and
  /// distinct TF classifications actually computed (the memoization
  /// probe — one per (volume, layout, TF), never per frame).
  std::uint64_t frames_degraded = 0;
  std::uint64_t refinements_enqueued = 0;
  std::uint64_t refinements_served = 0;
  std::uint64_t bricks_occupancy_culled = 0;
  std::uint64_t classifications_built = 0;
  /// Compressed serving (ServiceConfig::compression != None): decompress
  /// quanta charged before map kernels, their GPU seconds, and peer
  /// hydration — misses served from a sibling shard's cache instead of
  /// disk (frontend-installed; see set_hydration_source).
  std::uint64_t chunks_decompressed = 0;
  double decompress_s_total = 0.0;
  std::uint64_t chunks_hydrated = 0;
  std::uint64_t bytes_hydrated = 0;
  /// Fault tolerance (src/fault): injected fault events consumed by
  /// this shard, map quanta retried after an injected failure, lanes
  /// wedged by a stall fault, lanes fail-stopped (blacklisted for the
  /// service's lifetime), and warm bricks accepted from a peer's
  /// failover pre-push (admit_pushed_brick).
  std::uint64_t faults_injected = 0;
  std::uint64_t quanta_retried = 0;
  std::uint64_t lane_stalls = 0;
  std::uint64_t lanes_dead = 0;
  std::uint64_t bricks_pushed_in = 0;
  BrickCacheStats cache;
  /// Per-window counters (ServiceConfig::stats_window_s bins, sparse,
  /// ascending start_s). Lifetime aggregates above average preemption
  /// interference and the chaining win away; these expose them over
  /// simulated time.
  std::vector<ServiceWindow> windows;
  /// Per-class latency quantiles from the service's metrics registry
  /// (histograms "interactive.queue_wait_s" etc.; zero-count when the
  /// class completed nothing).
  PriorityLatencies interactive;
  PriorityLatencies batch;
  std::vector<SessionStats> sessions;  // open order, completed-only
  std::vector<FrameRecord> frames;     // completion order
};

class RenderService final : public SessionBackend {
 public:
  RenderService(cluster::Cluster& cluster, ServiceConfig config = {});
  ~RenderService() override;

  RenderService(const RenderService&) = delete;
  RenderService& operator=(const RenderService&) = delete;

  /// Admit a session; the handle is the API for submit/on_frame/stats.
  Session open_session(SessionProfile profile);
  Session open_session(std::string name, Priority priority = Priority::Batch) {
    SessionProfile profile;
    profile.name = std::move(name);
    profile.priority = priority;
    return open_session(std::move(profile));
  }

  /// Drop the volume's bricks from every GPU shard, forget its
  /// registration and bump the registration generation (a future
  /// volume at the same address re-registers cold, and may change
  /// voxel dimensions). Call when a volume is destroyed or its voxels
  /// change.
  void invalidate_volume(const volren::Volume* volume);

  /// Pump the DES clock until every queued frame (including frames
  /// submitted from inside on_frame/on_tile callbacks) has been
  /// served. Reusable: submit more frames afterwards and drain() again
  /// — brick residency persists and statistics keep accumulating.
  void drain();

  /// drain() with a simulated-time horizon: pump until every queued
  /// frame is served OR the clock reaches `horizon_s`, then stop at
  /// the next FRAME BOUNDARY — no frame is admitted at/after the
  /// horizon, in-flight frames complete and deliver normally (they may
  /// finish past the horizon), and everything still queued stays
  /// queued for the next call. The frontend's periodic control plane
  /// (rebalance / autoscale passes) drains the farm in rounds with
  /// this, migrating sessions between rounds. Returns true when the
  /// queue fully drained (nothing left for a later round).
  bool drain_until(double horizon_s);

  /// Statistics over everything completed since construction. Copies
  /// the frame history (including images under keep_images) into
  /// ServiceStats::frames — for frequent polling prefer frames() /
  /// session_stats, which do not copy records.
  ServiceStats stats() const;

  /// Zero-copy view of every completed frame, completion order.
  const std::vector<FrameRecord>& frames() const { return completed_; }

  // --- SessionBackend (prefer the Session handle) ------------------------
  std::uint64_t session_submit(int session, RenderRequest request) override;
  void session_on_frame(int session, FrameCallback callback) override;
  void session_on_tile(int session, TileCallback callback) override;
  SessionStats session_stats(int session) const override;
  const SessionProfile& session_profile(int session) const override;

  // --- observability ------------------------------------------------------
  /// Attach a flight recorder: every subsequent frame's quanta, sends,
  /// scheduling decisions and cache events record under trace process
  /// `pid` (the shard index under a frontend; one track per GPU lane).
  /// Emits the track-naming metadata immediately. nullptr detaches.
  void set_trace(obs::TraceRecorder* recorder, int pid = 0);
  obs::TraceRecorder* trace() const { return trace_; }
  /// Unified metrics registry: per-class latency histograms
  /// ("interactive.queue_wait_s", "batch.service_s", ...), populated as
  /// frames complete.
  const obs::Registry& metrics() const { return metrics_; }

  // --- peer hydration (frontend-installed) -------------------------------
  /// Asked on every staging miss BEFORE the disk read: does a peer hold
  /// the brick, and if so deliver its stored payload of `stored_bytes`
  /// to `gpu`, calling `done` exactly once (from a DES callback on this
  /// service's engine) when the transfer lands — the plan then proceeds
  /// with the normal H2D upload. Return false to fall back to disk.
  /// `volume` is the base Volume the key's volume_id registers (ids are
  /// shard-local; peers translate through their own registrations —
  /// volume_id_of), and key.layout_id already distinguishes LOD-level
  /// payloads. Installed by ServiceFrontend, which probes sibling
  /// shards' caches and ships the payload over its inter-shard fabric.
  using HydrationSource = std::function<bool(
      int gpu, const volren::Volume* volume, const BrickKey& key,
      std::uint64_t stored_bytes, std::function<void()> done)>;
  void set_hydration_source(HydrationSource source) {
    hydration_ = std::move(source);
  }
  /// This service's registration id for `volume`, when registered (the
  /// id peer caches key the volume's bricks under). No registration or
  /// dims check — a pure probe.
  std::optional<std::uint64_t> volume_id_of(const volren::Volume* volume) const {
    const auto it = volumes_.find(volume);
    if (it == volumes_.end()) return std::nullopt;
    return it->second.id;
  }

  // --- fault injection & recovery (src/fault) ----------------------------
  /// Queue one seeded fault event against this shard (the event's own
  /// `shard` field is ignored — the frontend dispatches). Routing by
  /// kind:
  ///   DiskReadError — the next map quantum issued at/after time_s on
  ///     GPU `target` (-1 = any lane) fails after its detection timeout
  ///     (param_s, default ServiceConfig::fault_detect_s); the chunk is
  ///     restored and retried under exponential lane backoff.
  ///   LaneStall     — GPU `target`'s stream is held busy for param_s
  ///     (in-flight work completes late; nothing is lost).
  ///   LaneDeath     — GPU `target` fail-stops at time_s: it is
  ///     blacklisted for the service's lifetime, every active frame's
  ///     queued quanta on it redistribute to surviving lanes, and later
  ///     admissions avoid it from the start. Pixels are unchanged
  ///     (placement-independent reduction).
  ///   ShardCrash    — the whole service stops at time_s: no further
  ///     admission, issue or delivery (see crashed()); undelivered work
  ///     is snapshotted for the frontend's failover
  ///     (unserved_frames()).
  /// FabricDrop/FabricDelay address the inter-shard fabric and are
  /// handled by the frontend, not here (ignored with a warning count).
  void inject_fault(const fault::FaultEvent& event);
  /// Convenience: inject every event of `plan` addressed to `shard`.
  void install_fault_plan(const fault::FaultPlan& plan, int shard = 0);
  /// True once a ShardCrash event fired. A crashed service admits,
  /// issues and delivers nothing; drain() returns immediately.
  bool crashed() const { return crashed_; }
  /// One client frame the crash left undelivered: everything needed to
  /// re-submit it on a sibling shard. Snapshot order is global
  /// submission order (frame_id ascending).
  struct UnservedFrame {
    int session = -1;  ///< this service's session index
    std::uint64_t frame_id = 0;
    RenderRequest request;
    /// The memoized decomposition (layouts are placement-independent,
    /// so the target shard can reuse it for warm-brick matching).
    std::shared_ptr<const volren::BrickLayout> layout;
    std::uint64_t layout_sig = 0;
  };
  /// Undelivered client work at the crash instant: queued frames plus
  /// in-flight frames whose delivery the crash swallowed. Internal
  /// refinement frames are excluded (previews were delivered; the
  /// refinements die with the shard). Empty before a crash.
  const std::vector<UnservedFrame>& unserved_frames() const {
    return unserved_;
  }
  /// Accept a warm brick pre-pushed by a peer during failover: register
  /// `volume`, then seed the cache entry on `gpu` (stored payload
  /// `stored_bytes`, logical size `logical_bytes`, keyed under this
  /// shard's registration id + `layout_sig`) so the re-issued frames
  /// hit instead of re-reading disk. Call at the simulated time the
  /// transfer landed. No-op without a cache.
  void admit_pushed_brick(const volren::Volume* volume, int brick_id,
                          std::uint64_t layout_sig, int gpu,
                          std::uint64_t stored_bytes,
                          std::uint64_t logical_bytes);
  /// Lanes currently blacklisted by LaneDeath faults (tests).
  int dead_lanes() const;
  /// Live-session queue extraction: pop `session`'s queued client
  /// frames into UnservedFrame form (frame_id order — a session queue
  /// is submission-ordered) WITHOUT crashing anything, for voluntary
  /// migration. Must be called at a frame boundary: CHECK-fails when
  /// the session has a frame in flight. Internal refinement work is
  /// untouched — queued refinements of this client stay behind and
  /// serve here (their previews already delivered here). The session
  /// itself stays open and live; the frontend simply stops submitting
  /// to it.
  std::vector<UnservedFrame> extract_session_frames(int session);

  // --- introspection (frontend placement, tests) -------------------------
  const BrickCache* cache() const { return cache_ ? &*cache_ : nullptr; }
  const ServiceConfig& config() const { return config_; }
  cluster::Cluster& cluster() { return cluster_; }
  int num_sessions() const { return static_cast<int>(sessions_.size()); }
  int queued_frames() const;
  /// Calibrated outstanding load: for each session, the sum of its
  /// queued frames' a-priori cost estimates scaled by the session's
  /// online cost_scale — the signal the frontend's
  /// least-outstanding-cost placement reads.
  double outstanding_cost_s() const;
  /// One session's share of outstanding_cost_s(): the calibrated cost
  /// of ITS queued frames — the rebalancer's probe for choosing which
  /// session to migrate off an overloaded shard.
  double outstanding_cost_for_session(int session) const;
  /// Earliest effective arrival among queued session heads; +inf when
  /// every queue is empty. The frontend's horizon-round drain uses it
  /// to jump a control horizon over an idle gap.
  double next_arrival_s() const { return earliest_head_arrival(); }
  /// Zero-copy view of the windowed bins (stats_window_s > 0), keyed
  /// by bin index, utilization NOT filled in — the frontend's
  /// rebalancer reads trailing busy from here without paying stats()'s
  /// frame-history copy.
  const std::map<std::int64_t, ServiceWindow>& window_bins() const {
    return windows_;
  }
  /// True when the volume is registered and has at least one brick
  /// resident on some GPU (the frontend's brick-affinity signal).
  bool volume_warm(const volren::Volume* volume) const;
  /// The registration dims guard as a non-mutating probe: CHECK-throws
  /// when the volume is registered with different voxel dims (the
  /// frontend runs it before pinning a session to a shard, so a
  /// rejected submit leaves placement untouched).
  void check_volume_compatible(const volren::Volume* volume) const;
  /// How many BrickLayouts the service has built (memoization probe:
  /// exactly one per submitted frame, never per scheduling decision
  /// or render).
  std::uint64_t layouts_built() const { return layouts_built_; }
  /// Current registration generation. Volumes register under
  /// (address, generation); invalidate_volume bumps it, so the
  /// registration epoch of a reused address is observable.
  std::uint64_t registration_generation() const { return generation_; }

 private:
  struct Pending {
    RenderRequest request;
    std::uint64_t frame_id = 0;
    /// Memoized at submit: the decomposition this frame will stage and
    /// its cache signature; scheduling probes, prefetch and the render
    /// reuse it.
    std::shared_ptr<const volren::BrickLayout> layout;
    std::uint64_t layout_sig = 0;
    /// A-priori (unscaled) cost estimate at submit; load accounting
    /// multiplies by the session's calibrated cost_scale.
    double submit_cost_s = 0.0;
    Int3 submit_dims;            // volume dims the layout was built from
    /// DES clock at submit: a streamed frame (submitted mid-drain from
    /// a callback) cannot claim to have arrived before it existed.
    double submit_floor_s = 0.0;
    /// Per-brick prefetch-issued flags (lazily sized): each brick is
    /// prefetched at most once per queued frame, so cache pressure
    /// cannot make the prefetcher thrash.
    std::vector<std::uint8_t> prefetch_issued;
    /// Refinement link: >= 0 means this frame re-renders the listed
    /// completed frame's view at full quality (internal sessions only).
    std::int64_t refines = -1;
    bool is_refinement = false;

    /// Arrival as scheduling and telemetry see it: backdated arrivals
    /// floor at the submit clock (so FIFO order, the arrived-yet gate
    /// and latency all agree on when the frame started existing).
    double effective_arrival_s() const {
      return request.arrival_s > submit_floor_s ? request.arrival_s
                                                : submit_floor_s;
    }
  };
  struct SessionState {
    SessionProfile profile;
    std::deque<Pending> queue;
    std::uint64_t last_served_seq = 0;  // RoundRobin recency
    FrameCallback callback;
    TileCallback tile_callback;
    std::uint64_t tiles_delivered = 0;
    /// Online calibration: EWMA of observed service_s over the
    /// a-priori submit estimate.
    double cost_scale = 1.0;
    /// Internal refinement session: >= 0 names the client session whose
    /// callbacks (and FrameRecord::session) this session's frames
    /// deliver through. -1 for every client-opened session.
    int delegate = -1;
    /// Client side of the link: the lazily-opened "<name>#refine"
    /// session refinements of this session are queued on.
    int refine_session = -1;
  };
  struct VolumeRegistration {
    std::uint64_t id = 0;          // cache key; never reused
    std::uint64_t generation = 0;  // generation_ when registered
    Int3 dims;                     // voxel dims at registration
  };
  /// A frame admitted to the cluster: its quantum plan plus the record
  /// being accumulated. Pointer-stable (plan callbacks capture it).
  struct ActiveFrame {
    int session = -1;  // queue-owning session (internal for refinements)
    /// Delivery target: the session whose callbacks receive tiles and
    /// the frame, and the index stamped into records. Equals `session`
    /// except for refinement frames (delegate resolved at admission).
    int client_session = -1;
    Priority priority = Priority::Batch;
    Pending pending;
    FrameRecord record;
    std::unique_ptr<volren::PlannedFrame> frame;
    /// Keep the adaptive-quality inputs alive for the frame's lifetime:
    /// LOD chunks reference pyramid level volumes/layouts, and chunks
    /// read their stored sizes from the compression plans.
    std::shared_ptr<const lod::LodPyramid> pyramid;
    std::shared_ptr<const lod::TfClassification> classification;
    std::shared_ptr<const compress::CompressionPlan> compression;
    std::vector<std::shared_ptr<const compress::CompressionPlan>> level_compression;
    /// SLO controller served this below the requested quality; a
    /// refinement is enqueued at completion.
    bool degraded = false;
    bool render_started = false;  // first quantum issued (start_s set)
    bool done = false;            // finished; reaped on the next event
  };

  /// Session index of the next frame to admit (-1 = none arrived).
  /// Only the highest priority class with arrived work competes;
  /// `interactive_only` restricts to Interactive sessions (preemptive
  /// admission while a batch frame renders). Ties under every policy
  /// break by frame_id — global submission order — so replay never
  /// depends on session open order. Fills `predicted_cost_s` with the
  /// chosen head's calibrated cost when the policy computed it (SJF);
  /// leaves it negative otherwise.
  int pick_next(double now, double* predicted_cost_s,
                bool interactive_only) const;
  double earliest_head_arrival() const;  // +inf when all queues empty
  void advance_clock_to(double t);
  /// A-priori cost model (unscaled); scaled_cost applies the session's
  /// online calibration. `lod` > 0 estimates serving the frame from
  /// that pyramid level: samples shrink ~2^lod (longer steps), staged
  /// bytes ~8^lod, residency checked under the level's cache signature
  /// when the pyramid exists — the signal the SLO controller walks down
  /// until the estimate fits the deadline budget.
  double estimate_cost_s(const Pending& pending, int lod = 0) const;
  double scaled_cost(int session_index, const Pending& pending) const;
  /// Register (or re-find) the volume under the current generation;
  /// CHECKs that registered voxel dims still match the volume's.
  const VolumeRegistration& register_volume(const volren::Volume* volume);
  mr::StagingHook make_staging_hook(const Pending& pending);
  /// Serve-time guard: the memoized layout must still describe the
  /// volume (a queued frame cannot outlive its volume's shape).
  void check_serve_dims(const Pending& head) const;
  void open_window(double arrival_s);
  /// Shared admission bookkeeping for both pipelines: dims guard, pop
  /// the session head, stamp the record (arrival clamp, serving
  /// window, predicted cost) and build the PlannedFrame. The caller
  /// wires execution hooks and decides when start_s is stamped.
  std::unique_ptr<ActiveFrame> make_active_frame(int session_index,
                                                 double arrival_floor_s,
                                                 double predicted_cost_s);
  /// EWMA update from a completed frame's observed service time.
  void calibrate(int session_index, const FrameRecord& record, double raw_cost_s);
  /// Completion-time observability shared by both pipelines: critical
  /// path from the finished plan, per-class latency histograms, and the
  /// frame's async trace span end. Requires record stamps to be final.
  void observe_completion(ActiveFrame& active);
  /// Async-span id of a frame's end-to-end trace arrow: stable across
  /// shards because the shard index (pid) is baked in.
  std::uint64_t frame_trace_id(std::uint64_t frame_id) const {
    return static_cast<std::uint64_t>(trace_pid_) * 1'000'000ULL + frame_id;
  }
  void deliver_tile(ActiveFrame& active, int reducer);
  void deliver_frame(int session_index, const FrameRecord& record);

  // --- adaptive quality ----------------------------------------------------
  /// Lazily-built per-(volume id, layout signature) quality metadata.
  /// Each piece fills independently on first need (a compression-only
  /// admission never builds the pyramid, and vice versa).
  struct QualityState {
    std::shared_ptr<const lod::LodPyramid> pyramid;
    std::shared_ptr<const lod::OccupancyIndex> occupancy;
    /// Per-brick compression outcomes for the base layout under
    /// config_.compression (null until first compressed admission).
    std::shared_ptr<const compress::CompressionPlan> compression;
    /// Per-pyramid-level plans, indexed by level (entry 0 unused);
    /// built together with `compression` only when the pyramid exists.
    std::vector<std::shared_ptr<const compress::CompressionPlan>> level_compression;
  };
  /// Find-or-build the quality state for a pending frame's (volume,
  /// layout). Registers the volume; the occupancy index is scanned only
  /// when enable_occupancy_culling is set (subsampled past the voxel
  /// budget).
  QualityState& quality_state(const Pending& pending, std::uint64_t vid);
  /// Find-or-build the memoized CompressionPlan(s) for the frame's
  /// (volume, layout) under config_.compression — the base plan always,
  /// plus per-level plans when the quality state already carries a
  /// pyramid. Returns nullptr when compression is off.
  const QualityState* compression_state(const Pending& pending);
  /// Hand the memoized plans + the peer-hydration hook to the planner.
  /// Runs after apply_adaptive_quality so level plans exist exactly
  /// when a pyramid may serve coarse chunks this admission.
  void apply_compression(ActiveFrame& active, volren::AdaptiveQuality* aq);
  /// Adapt the installed HydrationSource to the frame's cache keys.
  mr::FetchHook make_fetch_hook(const Pending& pending);
  /// SLO controller + per-request quality knobs: resolves the LOD this
  /// admission serves at, fills `aq` (and the keep-alive refs on
  /// `active`), flags degradation. Mutates `options` (max_lod/quality).
  void apply_adaptive_quality(ActiveFrame& active, const SessionState& session,
                              volren::RenderOptions& options,
                              volren::AdaptiveQuality* aq);
  /// Enqueue the full-quality refinement of a just-completed degraded
  /// preview on the client's internal "#refine" session (lazily
  /// opened). Called strictly after deliver_frame, so a refinement's
  /// delivery can never precede its preview's.
  void maybe_enqueue_refinement(ActiveFrame& active);

  // --- windowed stats -----------------------------------------------------
  /// The window bin containing simulated time `t` (no-op sink when
  /// window tracking is disabled).
  ServiceWindow& window_at(double t);
  /// Fold the GPU-busy delta since the last sample into the window
  /// bins, spread uniformly over [last sample, now] — called at each
  /// frame start and completion. The full inter-sample interval is the
  /// only sound base: the delta includes every in-flight frame's work
  /// since the last observation, so clamping to one frame's span would
  /// compress foreign busy into it and overshoot capacity. The start
  /// samples are (near-)zero-delta: they close idle gaps between
  /// serving bursts so busy never smears back across them (and no
  /// bins materialize for the gap).
  void sample_gpu_busy();

  /// Shared body of drain() (horizon = +inf) and drain_until(): sets
  /// the admission horizon for the duration of the call, returns true
  /// when the queue fully drained.
  bool drain_to(double horizon_s);

  // --- monolithic pipeline ------------------------------------------------
  void drain_monolithic(double arrival_floor_s);
  void serve_one(int session_index, double arrival_floor_s,
                 double predicted_cost_s);

  // --- quantum pipeline ---------------------------------------------------
  void drain_quantum();
  /// The scheduler heartbeat: reap finished frames, admit what the
  /// policy allows, fill free lanes (interactive quanta first, then
  /// batch, then prefetch), and arm the next arrival wake-up.
  /// `try_admission` is false for events that only change lane state
  /// (lane freed, prefetch landed): admissibility moves only at
  /// arrival wakes, frame completions and mid-drain submits, each of
  /// which pumps with admission on — skipping the policy pass (a full
  /// cost-model evaluation under SJF) on every brick boundary.
  void pump(bool try_admission = true);
  void try_admit();
  void admit(int session_index, double predicted_cost_s);
  bool try_prefetch(int gpu);
  void frame_finished(ActiveFrame* active);
  void reap();
  void schedule_wake(double t);

  // --- fault injection & recovery -----------------------------------------
  /// The mr::FaultHook installed into every admitted frame: consumes
  /// the first unconsumed DiskReadError at/after its stamp that matches
  /// the issuing lane. Runs inside the plan's issue path.
  mr::FaultHook make_fault_hook();
  /// FramePlan::on_quantum_failed: count the retry, emit the
  /// "retry.quantum" instant, arm the lane's exponential backoff
  /// hold-down, and — if the failing lane has meanwhile died —
  /// redistribute its restored chunks.
  void quantum_failed(int gpu, int chunk_index, int attempt);
  /// Fail-stop `gpu` now: blacklist it, redistribute every active
  /// frame's queued quanta away from it, refill lanes.
  void kill_lane(int gpu);
  /// ShardCrash landing: stop the scheduler and snapshot undelivered
  /// client work for the frontend's failover.
  void crash();
  /// Every non-dead lane except `excluding` (redistribution targets).
  std::vector<int> surviving_lanes(int excluding) const;
  bool lane_dead(int gpu) const {
    return !lane_dead_.empty() && lane_dead_[static_cast<std::size_t>(gpu)];
  }
  /// Lane is under a retry hold-down that has not expired.
  bool lane_held(int gpu, double now) const {
    return !lane_retry_at_.empty() &&
           lane_retry_at_[static_cast<std::size_t>(gpu)] > now;
  }

  SessionStats stats_for(int session_index) const;

  cluster::Cluster& cluster_;
  ServiceConfig config_;
  std::optional<BrickCache> cache_;
  std::vector<std::unique_ptr<SessionState>> sessions_;
  std::unordered_map<const volren::Volume*, VolumeRegistration> volumes_;
  std::uint64_t next_volume_id_ = 0;
  std::uint64_t generation_ = 0;  // bumped by invalidate_volume
  std::uint64_t next_frame_id_ = 0;
  std::uint64_t serve_seq_ = 0;
  std::uint64_t layouts_built_ = 0;
  /// Last Batch admission (any path): the aged-head override fires at
  /// most once per batch_aging_s measured from here.
  double last_batch_admission_s_ = std::numeric_limits<double>::lowest();
  std::vector<FrameRecord> completed_;  // completion order, lifetime
  double window_start_s_ = 0.0;  // first effective arrival served
  bool window_open_ = false;
  /// GPU busy when the serving window opened: utilization must not
  /// charge (or credit) cluster activity from before this service
  /// served its first frame (the cluster reference is shared).
  double gpu_busy_at_window_open_ = 0.0;
  bool draining_ = false;  // reentrancy guard (drain() from a callback)

  // Quantum-scheduler state.
  std::vector<std::unique_ptr<ActiveFrame>> active_;  // <=1 per priority class
  std::vector<std::uint8_t> lane_busy_;  // quantum or prefetch in flight
  double drain_floor_s_ = 0.0;   // arrival clamp for the current drain
  /// Admission gate for drain_until(): no frame is admitted (and no
  /// arrival wake armed) at/after this clock value. +inf for a full
  /// drain(). In-flight frames are never gated — they complete past
  /// the horizon, which is what makes the stop a frame boundary.
  double admission_horizon_s_ = std::numeric_limits<double>::infinity();
  double next_wake_s_ = 0.0;     // armed arrival wake-up (dedupe); 0 = none
  bool reap_scheduled_ = false;

  // Fault-injection & recovery state.
  /// One injected DiskReadError waiting to fire (consumed by the fault
  /// hook at the first matching quantum issue at/after time_s).
  struct DiskFault {
    double time_s = 0.0;
    int gpu = -1;       ///< -1 = any lane
    double detect_s = 0.0;
    bool consumed = false;
  };
  std::vector<DiskFault> disk_faults_;
  std::vector<std::uint8_t> lane_dead_;   // fail-stopped lanes (lazy size)
  std::vector<double> lane_retry_at_;     // backoff hold-down per lane
  bool crashed_ = false;
  std::vector<UnservedFrame> unserved_;   // snapshot taken at crash()
  std::uint64_t faults_injected_ = 0;
  std::uint64_t quanta_retried_ = 0;
  std::uint64_t lane_stalls_ = 0;
  std::uint64_t lanes_dead_ = 0;
  std::uint64_t bricks_pushed_in_ = 0;

  // Streaming / preemption / prefetch telemetry.
  std::uint64_t tiles_total_ = 0;
  std::uint64_t preemptions_ = 0;
  std::uint64_t bricks_prefetched_ = 0;
  std::uint64_t bytes_prefetched_ = 0;

  // Adaptive-quality state and telemetry.
  std::map<std::pair<std::uint64_t, std::uint64_t>, QualityState> quality_;
  lod::ClassificationCache classifications_;
  std::uint64_t frames_degraded_ = 0;
  std::uint64_t refinements_enqueued_ = 0;
  std::uint64_t refinements_served_ = 0;
  std::uint64_t bricks_occupancy_culled_ = 0;

  // Peer hydration: frontend-installed miss interceptor (null = none).
  HydrationSource hydration_;

  // Observability: flight recorder (null = record nothing) + metrics.
  obs::TraceRecorder* trace_ = nullptr;
  int trace_pid_ = 0;
  obs::Registry metrics_;

  // Windowed stats (sparse bins keyed by floor(t / stats_window_s)).
  std::map<std::int64_t, ServiceWindow> windows_;
  ServiceWindow window_sink_;     // discard target when tracking is off
  double busy_sample_t_ = 0.0;    // last GPU-busy sample point
  double busy_sample_ = 0.0;      // cluster GPU busy at that point
};

}  // namespace vrmr::service
