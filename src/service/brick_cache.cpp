#include "service/brick_cache.hpp"

#include "util/check.hpp"

namespace vrmr::service {

BrickCache::BrickCache(int num_gpus, std::uint64_t capacity_per_gpu)
    : capacity_(capacity_per_gpu) {
  VRMR_CHECK_MSG(num_gpus >= 1, "BrickCache needs at least one GPU shard");
  shards_.resize(static_cast<std::size_t>(num_gpus));
}

std::uint64_t BrickCache::capacity_for(const gpusim::DeviceProps& props,
                                       std::uint64_t reserve_bytes) {
  if (reserve_bytes >= props.vram_bytes) return 0;
  return props.vram_bytes - reserve_bytes;
}

bool BrickCache::touch(Shard& shard, const BrickKey& key) {
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return false;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return true;
}

bool BrickCache::insert_evicting(Shard& shard, const BrickKey& key,
                                 std::uint64_t bytes) {
  if (bytes > capacity_) {
    // Would displace the whole shard for a single brick; not worth it.
    ++stats_.rejected_oversized;
    return false;
  }
  while (shard.bytes + bytes > capacity_) evict_lru(shard);
  shard.lru.push_front(Entry{key, bytes});
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  ++stats_.insertions;
  return true;
}

bool BrickCache::lookup_or_admit(int gpu, const BrickKey& key, std::uint64_t bytes) {
  VRMR_CHECK_MSG(gpu >= 0 && gpu < num_gpus(), "gpu " << gpu << " out of range");
  Shard& shard = shards_[static_cast<std::size_t>(gpu)];

  if (touch(shard, key)) {
    // Hit: recency refreshed. The brick's size is immutable per key.
    ++stats_.hits;
    stats_.bytes_saved += bytes;
    return true;
  }
  ++stats_.misses;
  (void)insert_evicting(shard, key, bytes);
  return false;
}

bool BrickCache::prefetch(int gpu, const BrickKey& key, std::uint64_t bytes,
                          bool* admitted) {
  VRMR_CHECK_MSG(gpu >= 0 && gpu < num_gpus(), "gpu " << gpu << " out of range");
  if (admitted != nullptr) *admitted = false;
  Shard& shard = shards_[static_cast<std::size_t>(gpu)];

  if (touch(shard, key)) return true;
  if (!insert_evicting(shard, key, bytes)) return false;
  ++stats_.prefetch_admissions;
  stats_.bytes_prefetched += bytes;
  if (admitted != nullptr) *admitted = true;
  return true;
}

bool BrickCache::resident(int gpu, const BrickKey& key) const {
  VRMR_CHECK_MSG(gpu >= 0 && gpu < num_gpus(), "gpu " << gpu << " out of range");
  const Shard& shard = shards_[static_cast<std::size_t>(gpu)];
  return shard.index.find(key) != shard.index.end();
}

void BrickCache::invalidate_volume(std::uint64_t volume_id) {
  for (Shard& shard : shards_) {
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.volume_id == volume_id) {
        shard.bytes -= it->bytes;
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

std::uint64_t BrickCache::resident_bytes_for_volume(std::uint64_t volume_id) const {
  std::uint64_t bytes = 0;
  for (const Shard& shard : shards_) {
    for (const Entry& entry : shard.lru) {
      if (entry.key.volume_id == volume_id) bytes += entry.bytes;
    }
  }
  return bytes;
}

void BrickCache::clear() {
  for (Shard& shard : shards_) {
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

std::uint64_t BrickCache::resident_bytes(int gpu) const {
  VRMR_CHECK_MSG(gpu >= 0 && gpu < num_gpus(), "gpu " << gpu << " out of range");
  return shards_[static_cast<std::size_t>(gpu)].bytes;
}

std::size_t BrickCache::resident_bricks(int gpu) const {
  VRMR_CHECK_MSG(gpu >= 0 && gpu < num_gpus(), "gpu " << gpu << " out of range");
  return shards_[static_cast<std::size_t>(gpu)].lru.size();
}

void BrickCache::evict_lru(Shard& shard) {
  VRMR_CHECK_MSG(!shard.lru.empty(), "evicting from an empty cache shard");
  const Entry& victim = shard.lru.back();
  shard.bytes -= victim.bytes;
  stats_.bytes_evicted += victim.bytes;
  ++stats_.evictions;
  shard.index.erase(victim.key);
  shard.lru.pop_back();
}

}  // namespace vrmr::service
