#include "service/brick_cache.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace vrmr::service {

const char* to_string(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::Lru: return "lru";
    case CachePolicy::Arc: return "arc";
  }
  return "?";
}

BrickCache::BrickCache(int num_gpus, std::uint64_t capacity_per_gpu,
                       CachePolicy policy)
    : capacity_(capacity_per_gpu), policy_(policy) {
  VRMR_CHECK_MSG(num_gpus >= 1, "BrickCache needs at least one GPU shard");
  shards_.resize(static_cast<std::size_t>(num_gpus));
}

std::uint64_t BrickCache::capacity_for(const gpusim::DeviceProps& props,
                                       std::uint64_t reserve_bytes) {
  if (reserve_bytes >= props.vram_bytes) return 0;
  return props.vram_bytes - reserve_bytes;
}

BrickCache::Shard& BrickCache::shard_at(int gpu) {
  VRMR_CHECK_MSG(gpu >= 0 && gpu < num_gpus(), "gpu " << gpu << " out of range");
  return shards_[static_cast<std::size_t>(gpu)];
}

const BrickCache::Shard& BrickCache::shard_at(int gpu) const {
  VRMR_CHECK_MSG(gpu >= 0 && gpu < num_gpus(), "gpu " << gpu << " out of range");
  return shards_[static_cast<std::size_t>(gpu)];
}

void BrickCache::move_to_mru(Shard& shard, Locator& loc, ListId to) {
  std::list<Entry>& dst = shard.list_of(to);
  if (loc.list == to) {
    dst.splice(dst.begin(), dst, loc.it);
  } else {
    shard.bytes_of(loc.list) -= loc.it->bytes;
    shard.bytes_of(to) += loc.it->bytes;
    dst.splice(dst.begin(), shard.list_of(loc.list), loc.it);
    loc.list = to;
  }
}

BrickCache::Entry BrickCache::remove(Shard& shard, const BrickKey& key) {
  const auto it = shard.index.find(key);
  VRMR_CHECK_MSG(it != shard.index.end(), "removing an unindexed brick key");
  const Locator loc = it->second;
  Entry entry = *loc.it;
  shard.bytes_of(loc.list) -= entry.bytes;
  shard.list_of(loc.list).erase(loc.it);
  shard.index.erase(it);
  return entry;
}

BrickCache::Entry BrickCache::pop_lru(Shard& shard, ListId from) {
  std::list<Entry>& list = shard.list_of(from);
  VRMR_CHECK_MSG(!list.empty(), "popping from an empty cache list");
  Entry entry = list.back();
  shard.bytes_of(from) -= entry.bytes;
  shard.index.erase(entry.key);
  list.pop_back();
  return entry;
}

void BrickCache::insert_mru(Shard& shard, ListId to, Entry entry) {
  std::list<Entry>& dst = shard.list_of(to);
  shard.bytes_of(to) += entry.bytes;
  const BrickKey key = entry.key;
  dst.push_front(std::move(entry));
  shard.index[key] = Locator{to, dst.begin()};
}

void BrickCache::count_eviction(const Entry& victim) {
  stats_.bytes_evicted += victim.bytes;
  stats_.logical_bytes_evicted += victim.logical_bytes;
  ++stats_.evictions;
}

// --- Lru ---------------------------------------------------------------------

bool BrickCache::lru_touch(Shard& shard, const BrickKey& key) {
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return false;
  move_to_mru(shard, it->second, ListId::T1);
  return true;
}

bool BrickCache::lru_insert_evicting(Shard& shard, const BrickKey& key,
                                     std::uint64_t bytes,
                                     std::uint64_t logical_bytes) {
  if (bytes > capacity_) {
    // Would displace the whole shard for a single brick; not worth it.
    ++stats_.rejected_oversized;
    return false;
  }
  while (shard.t1_bytes + bytes > capacity_) {
    count_eviction(pop_lru(shard, ListId::T1));
  }
  insert_mru(shard, ListId::T1, Entry{key, bytes, logical_bytes, false});
  ++stats_.insertions;
  stats_.stored_bytes_admitted += bytes;
  stats_.logical_bytes_admitted += logical_bytes;
  return true;
}

// --- Arc ---------------------------------------------------------------------

void BrickCache::arc_adapt(Shard& shard, std::uint64_t bytes,
                           bool toward_recency) {
  // Byte-weighted ARC learning rule: the nudge is at least the hit
  // brick's size, scaled up by the opposite ghost list's byte ratio
  // when that list dominates — the classic delta = max(1, |Bother| /
  // |Bhit|) generalized from page counts to bytes.
  const double s = static_cast<double>(bytes);
  double next_p = shard.p;
  if (toward_recency) {
    const double delta = (shard.b1_bytes >= shard.b2_bytes || shard.b1_bytes == 0)
                             ? s
                             : s * static_cast<double>(shard.b2_bytes) /
                                   static_cast<double>(shard.b1_bytes);
    next_p = std::min(static_cast<double>(capacity_), shard.p + delta);
  } else {
    const double delta = (shard.b2_bytes >= shard.b1_bytes || shard.b2_bytes == 0)
                             ? s
                             : s * static_cast<double>(shard.b1_bytes) /
                                   static_cast<double>(shard.b2_bytes);
    next_p = std::max(0.0, shard.p - delta);
  }
  stats_.arc_p_bytes += next_p - shard.p;
  shard.p = next_p;
}

void BrickCache::arc_replace(Shard& shard, bool b2_ghost_path) {
  VRMR_CHECK_MSG(!shard.t1.empty() || !shard.t2.empty(),
                 "evicting from an empty cache shard");
  bool take_t1;
  if (shard.t1.empty()) {
    take_t1 = false;
  } else if (shard.t2.empty()) {
    take_t1 = true;
  } else {
    const double t1b = static_cast<double>(shard.t1_bytes);
    // T1 gives way while it exceeds its target; on the B2 ghost-hit
    // path "exactly at target" also takes from T1 (the hit is evidence
    // the frequency side needs the room) — Megiddo & Modha's REPLACE.
    take_t1 = t1b > shard.p || (b2_ghost_path && t1b >= shard.p);
  }
  const Entry victim = pop_lru(shard, take_t1 ? ListId::T1 : ListId::T2);
  count_eviction(victim);
  // Demand-touched victims are remembered as ghosts so a re-demand can
  // steer p; a speculative (prefetched, never demanded) brick leaves no
  // trace — B1/B2 record only the demand stream's history.
  if (!victim.speculative) {
    insert_mru(shard, take_t1 ? ListId::B1 : ListId::B2,
               Entry{victim.key, victim.bytes, victim.logical_bytes, false});
  }
}

void BrickCache::arc_make_room(Shard& shard, std::uint64_t bytes,
                               bool b2_ghost_path) {
  while (shard.resident() + bytes > capacity_) {
    arc_replace(shard, b2_ghost_path);
  }
}

void BrickCache::arc_trim_ghosts(Shard& shard) {
  // Ghost invariants (byte-weighted ARC directory bounds): the recency
  // history T1 + B1 never remembers more than one budget's worth, and
  // the whole directory never exceeds two budgets.
  while (!shard.b1.empty() && shard.t1_bytes + shard.b1_bytes > capacity_) {
    (void)pop_lru(shard, ListId::B1);
  }
  while (shard.t1_bytes + shard.t2_bytes + shard.b1_bytes + shard.b2_bytes >
         2 * capacity_) {
    if (!shard.b2.empty()) (void)pop_lru(shard, ListId::B2);
    else if (!shard.b1.empty()) (void)pop_lru(shard, ListId::B1);
    else break;  // residents alone fit the budget, so <= 2x always
  }
}

bool BrickCache::arc_lookup_or_admit(Shard& shard, const BrickKey& key,
                                     std::uint64_t bytes,
                                     std::uint64_t logical_bytes,
                                     LookupOutcome* outcome) {
  const auto it = shard.index.find(key);
  if (it != shard.index.end() &&
      (it->second.list == ListId::T1 || it->second.list == ListId::T2)) {
    ++stats_.hits;
    stats_.bytes_saved += bytes;
    stats_.logical_bytes_saved += logical_bytes;
    if (outcome != nullptr) outcome->hit = true;
    if (it->second.list == ListId::T1) {
      ++stats_.t1_hits;
      if (it->second.it->speculative) {
        // First *demand* touch of a prefetched brick: it has now been
        // demanded once, which is what a fresh T1 insert means — so
        // re-arm it there instead of promoting a never-re-demanded
        // brick to the frequent list.
        it->second.it->speculative = false;
        move_to_mru(shard, it->second, ListId::T1);
      } else {
        move_to_mru(shard, it->second, ListId::T2);
      }
    } else {
      ++stats_.t2_hits;
      move_to_mru(shard, it->second, ListId::T2);
    }
    return true;
  }

  // The payload is gone either way: the frame restages it (miss).
  ++stats_.misses;
  if (it != shard.index.end()) {
    // Ghost hit: the directory remembers evicting this key. Steer p
    // toward the list that was too small, then admit straight into T2
    // (this is the key's second demand).
    const bool from_b2 = it->second.list == ListId::B2;
    if (from_b2) ++stats_.b2_ghost_hits;
    else ++stats_.b1_ghost_hits;
    if (outcome != nullptr) {
      outcome->ghost_b1 = !from_b2;
      outcome->ghost_b2 = from_b2;
    }
    arc_adapt(shard, bytes, /*toward_recency=*/!from_b2);
    (void)remove(shard, key);
    if (bytes > capacity_) {  // unreachable for real ghosts; stay safe
      ++stats_.rejected_oversized;
      return false;
    }
    arc_make_room(shard, bytes, from_b2);
    insert_mru(shard, ListId::T2, Entry{key, bytes, logical_bytes, false});
    ++stats_.insertions;
    stats_.stored_bytes_admitted += bytes;
    stats_.logical_bytes_admitted += logical_bytes;
    arc_trim_ghosts(shard);
    return false;
  }

  // Cold miss: first demand lands in the recency list.
  if (bytes > capacity_) {
    ++stats_.rejected_oversized;
    return false;
  }
  arc_make_room(shard, bytes, /*b2_ghost_path=*/false);
  insert_mru(shard, ListId::T1, Entry{key, bytes, logical_bytes, false});
  ++stats_.insertions;
  stats_.stored_bytes_admitted += bytes;
  stats_.logical_bytes_admitted += logical_bytes;
  arc_trim_ghosts(shard);
  return false;
}

bool BrickCache::arc_prefetch(Shard& shard, const BrickKey& key,
                              std::uint64_t bytes, std::uint64_t logical_bytes,
                              bool* admitted) {
  const auto it = shard.index.find(key);
  if (it != shard.index.end() &&
      (it->second.list == ListId::T1 || it->second.list == ListId::T2)) {
    // Refresh recency within its own list: speculative traffic must
    // neither promote (frequency is a demand signal) nor count.
    move_to_mru(shard, it->second, it->second.list);
    return true;
  }
  if (bytes > capacity_) {
    ++stats_.rejected_oversized;
    return false;
  }
  if (it != shard.index.end()) {
    // A ghost of this key exists but the prefetcher's touch is not
    // demand evidence: drop it silently (no ghost-hit counter, no p
    // nudge) so B1/B2 accounting stays a pure demand-stream history.
    (void)remove(shard, key);
  }
  arc_make_room(shard, bytes, /*b2_ghost_path=*/false);
  insert_mru(shard, ListId::T1, Entry{key, bytes, logical_bytes,
                                      /*speculative=*/true});
  ++stats_.insertions;
  stats_.stored_bytes_admitted += bytes;
  stats_.logical_bytes_admitted += logical_bytes;
  ++stats_.prefetch_admissions;
  stats_.bytes_prefetched += bytes;
  arc_trim_ghosts(shard);
  if (admitted != nullptr) *admitted = true;
  return true;
}

// --- shared entry points -----------------------------------------------------

bool BrickCache::lookup_or_admit(int gpu, const BrickKey& key, std::uint64_t bytes,
                                 LookupOutcome* outcome,
                                 std::uint64_t logical_bytes) {
  Shard& shard = shard_at(gpu);
  if (logical_bytes == 0) logical_bytes = bytes;  // uncompressed caller
  if (outcome != nullptr) *outcome = LookupOutcome{};
  if (policy_ == CachePolicy::Arc) {
    return arc_lookup_or_admit(shard, key, bytes, logical_bytes, outcome);
  }

  if (lru_touch(shard, key)) {
    // Hit: recency refreshed. The brick's size is immutable per key.
    ++stats_.hits;
    stats_.bytes_saved += bytes;
    stats_.logical_bytes_saved += logical_bytes;
    if (outcome != nullptr) outcome->hit = true;
    return true;
  }
  ++stats_.misses;
  (void)lru_insert_evicting(shard, key, bytes, logical_bytes);
  return false;
}

bool BrickCache::prefetch(int gpu, const BrickKey& key, std::uint64_t bytes,
                          bool* admitted, std::uint64_t logical_bytes) {
  Shard& shard = shard_at(gpu);
  if (logical_bytes == 0) logical_bytes = bytes;  // uncompressed caller
  if (admitted != nullptr) *admitted = false;
  if (policy_ == CachePolicy::Arc) {
    return arc_prefetch(shard, key, bytes, logical_bytes, admitted);
  }

  if (lru_touch(shard, key)) return true;
  if (!lru_insert_evicting(shard, key, bytes, logical_bytes)) return false;
  ++stats_.prefetch_admissions;
  stats_.bytes_prefetched += bytes;
  if (admitted != nullptr) *admitted = true;
  return true;
}

bool BrickCache::resident(int gpu, const BrickKey& key) const {
  const Shard& shard = shard_at(gpu);
  const auto it = shard.index.find(key);
  return it != shard.index.end() &&
         (it->second.list == ListId::T1 || it->second.list == ListId::T2);
}

std::optional<BrickCache::Residency> BrickCache::payload_of(
    int gpu, const BrickKey& key) const {
  const Shard& shard = shard_at(gpu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return std::nullopt;
  const Locator& loc = it->second;
  if (loc.list != ListId::T1 && loc.list != ListId::T2) return std::nullopt;
  return Residency{loc.it->bytes, loc.it->logical_bytes};
}

void BrickCache::invalidate_volume(std::uint64_t volume_id) {
  // Residents AND ghosts: a retired (volume, generation) id can never
  // be demanded again, and a stale ghost hit would steer p with
  // evidence from a dead key space. Not counted as evictions — the
  // volume was withdrawn, not displaced by pressure.
  for (Shard& shard : shards_) {
    for (const ListId id : {ListId::T1, ListId::T2, ListId::B1, ListId::B2}) {
      std::list<Entry>& list = shard.list_of(id);
      for (auto it = list.begin(); it != list.end();) {
        if (it->key.volume_id == volume_id) {
          shard.bytes_of(id) -= it->bytes;
          shard.index.erase(it->key);
          it = list.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
}

std::uint64_t BrickCache::resident_bytes_for_volume(std::uint64_t volume_id) const {
  std::uint64_t bytes = 0;
  for (const Shard& shard : shards_) {
    for (const std::list<Entry>* list : {&shard.t1, &shard.t2}) {
      for (const Entry& entry : *list) {
        if (entry.key.volume_id == volume_id) bytes += entry.bytes;
      }
    }
  }
  return bytes;
}

std::vector<BrickCache::WarmBrick> BrickCache::warm_bricks_for_volume(
    std::uint64_t volume_id) const {
  std::vector<WarmBrick> out;
  for (int gpu = 0; gpu < num_gpus(); ++gpu) {
    const Shard& shard = shards_[static_cast<std::size_t>(gpu)];
    for (const std::list<Entry>* list : {&shard.t1, &shard.t2}) {
      for (const Entry& entry : *list) {
        if (entry.key.volume_id != volume_id) continue;
        out.push_back({gpu, entry.key, entry.bytes, entry.logical_bytes});
      }
    }
  }
  // One entry per (layout, brick): ascending GPU order above means the
  // first copy seen wins the dedupe.
  std::stable_sort(out.begin(), out.end(),
                   [](const WarmBrick& a, const WarmBrick& b) {
                     if (a.key.layout_id != b.key.layout_id)
                       return a.key.layout_id < b.key.layout_id;
                     return a.key.brick_id < b.key.brick_id;
                   });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const WarmBrick& a, const WarmBrick& b) {
                          return a.key.layout_id == b.key.layout_id &&
                                 a.key.brick_id == b.key.brick_id;
                        }),
            out.end());
  return out;
}

void BrickCache::clear() {
  for (Shard& shard : shards_) {
    stats_.arc_p_bytes -= shard.p;
    shard = Shard{};
  }
}

void BrickCache::reset_stats() {
  stats_ = BrickCacheStats{};
  // arc_p_bytes is a gauge over live shard state, not a counter: keep
  // it in sync with the (unreset) per-shard targets.
  for (const Shard& shard : shards_) stats_.arc_p_bytes += shard.p;
}

std::uint64_t BrickCache::resident_bytes(int gpu) const {
  return shard_at(gpu).resident();
}

std::uint64_t BrickCache::resident_logical_bytes(int gpu) const {
  const Shard& shard = shard_at(gpu);
  std::uint64_t bytes = 0;
  for (const std::list<Entry>* list : {&shard.t1, &shard.t2}) {
    for (const Entry& entry : *list) bytes += entry.logical_bytes;
  }
  return bytes;
}

std::size_t BrickCache::resident_bricks(int gpu) const {
  const Shard& shard = shard_at(gpu);
  return shard.t1.size() + shard.t2.size();
}

BrickCache::ArcProbe BrickCache::arc_probe(int gpu) const {
  const Shard& shard = shard_at(gpu);
  ArcProbe probe;
  probe.t1_bytes = shard.t1_bytes;
  probe.t2_bytes = shard.t2_bytes;
  probe.b1_bytes = shard.b1_bytes;
  probe.b2_bytes = shard.b2_bytes;
  probe.t1_entries = shard.t1.size();
  probe.t2_entries = shard.t2.size();
  probe.b1_entries = shard.b1.size();
  probe.b2_entries = shard.b2.size();
  probe.p = shard.p;
  return probe;
}

}  // namespace vrmr::service
