#include "service/frontend.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

namespace vrmr::service {

ServiceFrontend::ServiceFrontend(FrontendConfig config)
    : config_(std::move(config)) {
  VRMR_CHECK_MSG(config_.shards >= 1, "frontend needs at least one shard");
  VRMR_CHECK_MSG(config_.gpus_per_shard >= 1,
                 "frontend shards need at least one GPU");
  VRMR_CHECK_MSG(config_.cache_policy_per_shard.empty() ||
                     static_cast<int>(config_.cache_policy_per_shard.size()) ==
                         config_.shards,
                 "cache_policy_per_shard must be empty or name one policy "
                 "per shard ("
                     << config_.shards << "), got "
                     << config_.cache_policy_per_shard.size());
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    Shard shard;
    shard.engine = std::make_unique<sim::Engine>();
    shard.cluster = std::make_unique<cluster::Cluster>(
        *shard.engine,
        cluster::ClusterConfig::with_total_gpus(
            config_.gpus_per_shard, config_.hw, config_.max_gpus_per_node));
    ServiceConfig service_config = config_.service;
    if (!config_.cache_policy_per_shard.empty()) {
      service_config.cache_policy =
          config_.cache_policy_per_shard[static_cast<std::size_t>(s)];
    }
    shard.service =
        std::make_unique<RenderService>(*shard.cluster, service_config);
    shards_.push_back(std::move(shard));
  }
  if (config_.enable_peer_hydration && config_.shards > 1) {
    for (int s = 0; s < config_.shards; ++s) {
      Shard& shard = shards_[static_cast<std::size_t>(s)];
      // One fabric per shard, on that shard's engine, with one "node"
      // per shard: hydration INTO shard s advances only s's timeline
      // (see the Shard::fabric comment).
      shard.fabric = std::make_unique<net::Fabric>(
          *shard.engine, config_.hydration_fabric, config_.shards);
      shard.service->set_hydration_source(
          [this, s](int gpu, const volren::Volume* volume, const BrickKey& key,
                    std::uint64_t stored_bytes, std::function<void()> done) {
            return hydrate(s, gpu, volume, key, stored_bytes, std::move(done));
          });
    }
  }
}

ServiceFrontend::~ServiceFrontend() = default;

Session ServiceFrontend::open_session(SessionProfile profile) {
  if (profile.pin_shard.has_value()) {
    VRMR_CHECK_MSG(*profile.pin_shard >= 0 && *profile.pin_shard < num_shards(),
                   "pin_shard " << *profile.pin_shard << " out of range for "
                                << num_shards() << " shards");
  }
  auto state = std::make_unique<FrontendSession>();
  state->profile = std::move(profile);
  sessions_.push_back(std::move(state));
  return Session(this, num_sessions() - 1);
}

RenderService& ServiceFrontend::shard(int index) {
  VRMR_CHECK_MSG(index >= 0 && index < num_shards(),
                 "shard " << index << " out of range");
  return *shards_[static_cast<std::size_t>(index)].service;
}

int ServiceFrontend::shard_of(const Session& session) const {
  VRMR_CHECK_MSG(session.valid(), "shard_of on an invalid Session");
  VRMR_CHECK_MSG(static_cast<const SessionBackend*>(this) == session.backend_,
                 "Session belongs to a different backend");
  return sessions_[static_cast<std::size_t>(session.index_)]->shard;
}

int ServiceFrontend::place(const volren::Volume* volume) const {
  // Brick affinity first: restrict to shards where the volume is warm,
  // when any. Then least outstanding predicted cost; ties break on the
  // lowest shard index (determinism). The warm probe scans the shard's
  // cache, so run it once per shard.
  std::vector<bool> warm(static_cast<std::size_t>(num_shards()));
  bool any_warm = false;
  for (int s = 0; s < num_shards(); ++s) {
    warm[static_cast<std::size_t>(s)] =
        shards_[static_cast<std::size_t>(s)].service->volume_warm(volume);
    any_warm = any_warm || warm[static_cast<std::size_t>(s)];
  }
  int best = -1;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int s = 0; s < num_shards(); ++s) {
    if (any_warm && !warm[static_cast<std::size_t>(s)]) continue;
    const double cost =
        shards_[static_cast<std::size_t>(s)].service->outstanding_cost_s();
    if (cost < best_cost) {
      best = s;
      best_cost = cost;
    }
  }
  VRMR_CHECK(best >= 0);
  return best;
}

bool ServiceFrontend::hydrate(int shard_index, int gpu,
                              const volren::Volume* volume, const BrickKey& key,
                              std::uint64_t stored_bytes,
                              std::function<void()> done) {
  (void)gpu;  // the payload lands shard-wide; the plan picks the lane
  // Probe siblings in ascending index order (deterministic replay).
  // BrickKey volume ids are shard-local, so translate through each
  // sibling's own registration before touching its cache.
  Shard& shard = shards_[static_cast<std::size_t>(shard_index)];
  for (int s = 0; s < num_shards(); ++s) {
    if (s == shard_index) continue;
    const Shard& sibling = shards_[static_cast<std::size_t>(s)];
    const std::optional<std::uint64_t> vid =
        sibling.service->volume_id_of(volume);
    if (!vid.has_value()) continue;
    const BrickCache* cache = sibling.service->cache();
    if (cache == nullptr) continue;
    const BrickKey sibling_key{*vid, key.brick_id, key.layout_id};
    bool warm = false;
    for (int g = 0; g < config_.gpus_per_shard && !warm; ++g)
      warm = cache->resident(g, sibling_key);
    if (!warm) continue;
    shard.bytes_hydrated_from_peers += stored_bytes;
    shard.bytes_disk_avoided += stored_bytes;
    ++shard.bricks_hydrated;
    obs::TraceRecorder* trace = trace_;
    std::uint64_t arrow = 0;
    if (trace != nullptr) {
      arrow = trace->next_async_id();
      trace->async_begin(shard.engine->now(), trace_pid_base_ + s, arrow,
                         "hydrate", "hydration",
                         {{"brick", std::to_string(key.brick_id)},
                          {"bytes", std::to_string(stored_bytes)},
                          {"to_shard", std::to_string(shard_index)}});
    }
    // Ship the stored payload over the requesting shard's fabric; the
    // plan resumes (H2D onward) when the transfer lands.
    shard.fabric->send(s, shard_index, stored_bytes,
                       [trace, arrow, pid = trace_pid_base_ + shard_index,
                        engine = shard.engine.get(), done = std::move(done)] {
                         if (trace != nullptr) {
                           trace->async_end(engine->now(), pid, arrow,
                                            "hydrate", "hydration");
                         }
                         done();
                       });
    return true;
  }
  return false;  // no warm sibling: the plan falls back to disk
}

std::uint64_t ServiceFrontend::session_submit(int session, RenderRequest request) {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  // Validate before placing: a rejected first submit must not pin the
  // session to a shard chosen from the invalid request.
  VRMR_CHECK_MSG(request.volume != nullptr, "RenderRequest.volume must be set");
  VRMR_CHECK_MSG(std::isfinite(request.arrival_s) && request.arrival_s >= 0.0,
                 "arrival time must be finite and non-negative, got "
                     << request.arrival_s);
  FrontendSession& state = *sessions_[static_cast<std::size_t>(session)];
  if (state.shard < 0) {
    // Probe every shard's registration guard before pinning: a volume
    // reshaped without invalidation must reject the submit no matter
    // which shard placement would pick (its stale registration may
    // live on a shard that has since gone cold), and the session stays
    // free to place elsewhere on retry after invalidate_volume.
    for (const Shard& shard : shards_)
      shard.service->check_volume_compatible(request.volume);
    state.shard = state.profile.pin_shard.has_value()
                      ? *state.profile.pin_shard
                      : place(request.volume);
    Shard& shard = shards_[static_cast<std::size_t>(state.shard)];
    state.inner = shard.service->open_session(state.profile);
    ++shard.sessions_placed;
    if (state.pending_callback)
      state.inner.on_frame(translate(session, std::move(state.pending_callback)));
    if (state.pending_tile_callback)
      state.inner.on_tile(
          translate_tile(session, std::move(state.pending_tile_callback)));
    VRMR_DEBUG("frontend") << "session '" << state.profile.name
                           << "' placed on shard " << state.shard;
  }
  return state.inner.submit(std::move(request));
}

FrameCallback ServiceFrontend::translate(int session, FrameCallback callback) {
  // Shard-local session indices collide across shards; deliver records
  // carrying the frontend-wide session index instead.
  return [session, callback = std::move(callback)](const FrameRecord& frame) {
    FrameRecord translated = frame;
    translated.session = session;
    callback(translated);
  };
}

void ServiceFrontend::session_on_frame(int session, FrameCallback callback) {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  FrontendSession& state = *sessions_[static_cast<std::size_t>(session)];
  if (state.shard < 0) {
    state.pending_callback = std::move(callback);
    return;
  }
  state.inner.on_frame(translate(session, std::move(callback)));
}

TileCallback ServiceFrontend::translate_tile(int session, TileCallback callback) {
  return [session, callback = std::move(callback)](const TileRecord& tile) {
    TileRecord translated = tile;
    translated.session = session;
    callback(translated);
  };
}

void ServiceFrontend::session_on_tile(int session, TileCallback callback) {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  FrontendSession& state = *sessions_[static_cast<std::size_t>(session)];
  if (state.shard < 0) {
    state.pending_tile_callback = std::move(callback);
    return;
  }
  state.inner.on_tile(translate_tile(session, std::move(callback)));
}

SessionStats ServiceFrontend::session_stats(int session) const {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  const FrontendSession& state = *sessions_[static_cast<std::size_t>(session)];
  if (state.shard < 0) {
    SessionStats empty;
    empty.name = state.profile.name;
    empty.priority = state.profile.priority;
    return empty;
  }
  return state.inner.stats();
}

const SessionProfile& ServiceFrontend::session_profile(int session) const {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  return sessions_[static_cast<std::size_t>(session)]->profile;
}

void ServiceFrontend::drain() {
  // A callback running on one shard may submit frames that place onto
  // an already-drained shard (brick affinity), so loop until every
  // shard's queue is empty.
  bool any_served = true;
  while (any_served) {
    any_served = false;
    for (Shard& shard : shards_) {
      if (shard.service->queued_frames() == 0) continue;
      shard.service->drain();
      any_served = true;
    }
  }
}

void ServiceFrontend::invalidate_volume(const volren::Volume* volume) {
  for (Shard& shard : shards_) shard.service->invalidate_volume(volume);
}

void ServiceFrontend::set_trace(obs::TraceRecorder* recorder, int pid_base) {
  trace_ = recorder;
  trace_pid_base_ = pid_base;
  for (int s = 0; s < num_shards(); ++s) {
    shards_[static_cast<std::size_t>(s)].service->set_trace(recorder,
                                                            pid_base + s);
  }
}

FrontendStats ServiceFrontend::stats() const {
  FrontendStats out;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (int s = 0; s < num_shards(); ++s) {
    const Shard& shard = shards_[static_cast<std::size_t>(s)];
    ShardStats detail;
    detail.shard = s;
    detail.sessions = shard.sessions_placed;
    detail.bytes_hydrated_from_peers = shard.bytes_hydrated_from_peers;
    detail.bytes_disk_avoided = shard.bytes_disk_avoided;
    detail.bricks_hydrated = shard.bricks_hydrated;
    detail.service = shard.service->stats();
    out.frames_total += detail.service.frames_total;
    out.makespan_s = std::max(out.makespan_s, detail.service.makespan_s);
    out.bytes_h2d_saved += detail.service.bytes_h2d_saved;
    out.bytes_hydrated_from_peers += detail.bytes_hydrated_from_peers;
    out.bytes_disk_avoided += detail.bytes_disk_avoided;
    out.bricks_hydrated += detail.bricks_hydrated;
    hits += detail.service.cache.hits;
    misses += detail.service.cache.misses;
    out.shards.push_back(std::move(detail));
  }
  out.fps = out.makespan_s > 0.0 ? out.frames_total / out.makespan_s : 0.0;
  out.cache_hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;

  // Time-aligned farm windows: shards share bin boundaries (same
  // stats_window_s on parallel simulated timelines), so merging keys on
  // the bin index — llround is exact for start_s values the shards
  // themselves computed as bin * width. Counters sum (each farm bin
  // partitions exactly into the shard bins it merged); utilization is
  // re-derived over the farm's capacity.
  const double width = config_.service.stats_window_s;
  if (width > 0.0) {
    std::map<std::int64_t, ServiceWindow> merged;
    for (const ShardStats& detail : out.shards) {
      for (const ServiceWindow& w : detail.service.windows) {
        ServiceWindow& m = merged[std::llround(w.start_s / width)];
        m.start_s = w.start_s;
        m.window_s = width;
        m.frames_finished += w.frames_finished;
        m.quanta_issued += w.quanta_issued;
        m.preemptions += w.preemptions;
        m.tiles += w.tiles;
        m.gpu_busy_s += w.gpu_busy_s;
      }
    }
    const double capacity = width * static_cast<double>(config_.shards) *
                            static_cast<double>(config_.gpus_per_shard);
    out.windows.reserve(merged.size());
    for (auto& [bin, window] : merged) {
      (void)bin;
      window.utilization =
          capacity > 0.0
              ? std::min(1.0, std::max(0.0, window.gpu_busy_s / capacity))
              : 0.0;
      out.windows.push_back(window);
    }
  }
  return out;
}

}  // namespace vrmr::service
