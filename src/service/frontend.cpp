#include "service/frontend.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

namespace vrmr::service {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

int default_placement(const PlacementQuery& query) {
  // Pin first: the frontend only forwards a pin that names a live,
  // accepting shard, so honoring it unconditionally is safe.
  if (query.pinned.has_value()) return *query.pinned;
  // Brick affinity: restrict to candidates where the volume is warm,
  // when any. Then least outstanding predicted cost; ties break on the
  // lowest shard index (determinism).
  bool any_warm = false;
  for (const PlacementSignal& signal : query.shards)
    any_warm = any_warm || (signal.alive && signal.accepting && signal.warm);
  int best = -1;
  double best_cost = kInf;
  for (const PlacementSignal& signal : query.shards) {
    if (!signal.alive || !signal.accepting) continue;
    if (any_warm && !signal.warm) continue;
    if (signal.outstanding_cost_s < best_cost) {
      best = signal.shard;
      best_cost = signal.outstanding_cost_s;
    }
  }
  return best;
}

ServiceFrontend::ServiceFrontend(FrontendConfig config)
    : config_(std::move(config)) {
  // Fold the deprecated aliases into their sub-configs (kept one
  // release): when set, the alias wins over the sub-config field.
  if (config_.enable_peer_hydration.has_value())
    config_.handoff.peer_hydration = *config_.enable_peer_hydration;
  if (config_.hydration_fabric.has_value())
    config_.handoff.fabric = *config_.hydration_fabric;
  if (config_.failover_prepush.has_value())
    config_.handoff.failover_prepush = *config_.failover_prepush;
  VRMR_CHECK_MSG(config_.shards >= 1, "frontend needs at least one shard");
  VRMR_CHECK_MSG(config_.gpus_per_shard >= 1,
                 "frontend shards need at least one GPU");
  VRMR_CHECK_MSG(config_.cache_policy_per_shard.empty() ||
                     static_cast<int>(config_.cache_policy_per_shard.size()) ==
                         config_.shards,
                 "cache_policy_per_shard must be empty or name one policy "
                 "per shard ("
                     << config_.shards << "), got "
                     << config_.cache_policy_per_shard.size());
  VRMR_CHECK_MSG(config_.autoscale.min_shards >= 1,
                 "autoscale.min_shards must be >= 1, got "
                     << config_.autoscale.min_shards);
  VRMR_CHECK_MSG(config_.autoscale.max_shards >= 0,
                 "autoscale.max_shards must be >= 0, got "
                     << config_.autoscale.max_shards);
  VRMR_CHECK_MSG(config_.rebalance.skew_ratio >= 1.0,
                 "rebalance.skew_ratio must be >= 1, got "
                     << config_.rebalance.skew_ratio);
  max_farm_shards_ = std::max(config_.shards, config_.autoscale.max_shards);
  shards_.reserve(static_cast<std::size_t>(max_farm_shards_));
  for (int s = 0; s < config_.shards; ++s) shards_.push_back(make_shard(s));
}

ServiceFrontend::~ServiceFrontend() = default;

ServiceFrontend::Shard ServiceFrontend::make_shard(int index) {
  Shard shard;
  shard.engine = std::make_unique<sim::Engine>();
  shard.cluster = std::make_unique<cluster::Cluster>(
      *shard.engine,
      cluster::ClusterConfig::with_total_gpus(
          config_.gpus_per_shard, config_.hw, config_.max_gpus_per_node));
  ServiceConfig service_config = config_.service;
  if (index < static_cast<int>(config_.cache_policy_per_shard.size())) {
    service_config.cache_policy =
        config_.cache_policy_per_shard[static_cast<std::size_t>(index)];
  }
  shard.service =
      std::make_unique<RenderService>(*shard.cluster, service_config);
  if (max_farm_shards_ > 1) {
    // One fabric per shard, on that shard's engine, with one "node" per
    // farm SLOT (max_farm_shards_, so shards added later join the same
    // interconnect): hydration INTO shard `index` advances only its
    // timeline (see the Shard::fabric comment). The fabric exists even
    // when hydration is off — migration and failover pushes ride it.
    shard.fabric = std::make_unique<net::Fabric>(
        *shard.engine, config_.handoff.fabric, max_farm_shards_);
    if (config_.handoff.peer_hydration) {
      shard.service->set_hydration_source(
          [this, index](int gpu, const volren::Volume* volume,
                        const BrickKey& key, std::uint64_t stored_bytes,
                        std::function<void()> done) {
            return hydrate(index, gpu, volume, key, stored_bytes,
                           std::move(done));
          });
    }
  }
  return shard;
}

Session ServiceFrontend::open_session(SessionProfile profile) {
  if (profile.pin_shard.has_value()) {
    VRMR_CHECK_MSG(*profile.pin_shard >= 0 && *profile.pin_shard < num_shards(),
                   "pin_shard " << *profile.pin_shard << " out of range for "
                                << num_shards() << " shards");
  }
  auto state = std::make_unique<FrontendSession>();
  state->profile = std::move(profile);
  sessions_.push_back(std::move(state));
  return Session(this, num_sessions() - 1);
}

RenderService& ServiceFrontend::shard(int index) {
  VRMR_CHECK_MSG(index >= 0 && index < num_shards(),
                 "shard " << index << " out of range");
  return *shards_[static_cast<std::size_t>(index)].service;
}

int ServiceFrontend::shard_of(const Session& session) const {
  VRMR_CHECK_MSG(session.valid(), "shard_of on an invalid Session");
  VRMR_CHECK_MSG(static_cast<const SessionBackend*>(this) == session.backend_,
                 "Session belongs to a different backend");
  return sessions_[static_cast<std::size_t>(session.index_)]->shard;
}

bool ServiceFrontend::shard_accepting(int index) const {
  VRMR_CHECK_MSG(index >= 0 && index < num_shards(),
                 "shard " << index << " out of range");
  const Shard& shard = shards_[static_cast<std::size_t>(index)];
  return shard.accepting && !shard.retired && !shard.service->crashed();
}

bool ServiceFrontend::shard_retired(int index) const {
  VRMR_CHECK_MSG(index >= 0 && index < num_shards(),
                 "shard " << index << " out of range");
  return shards_[static_cast<std::size_t>(index)].retired;
}

void ServiceFrontend::pin_shard(const Session& session, int shard) {
  VRMR_CHECK_MSG(session.valid(), "pin_shard on an invalid Session");
  VRMR_CHECK_MSG(static_cast<const SessionBackend*>(this) == session.backend_,
                 "Session belongs to a different backend");
  VRMR_CHECK_MSG(shard >= 0 && shard < num_shards(),
                 "pin_shard " << shard << " out of range for " << num_shards()
                              << " shards");
  FrontendSession& state = *sessions_[static_cast<std::size_t>(session.index_)];
  if (state.shard >= 0) {
    // Idempotent: pinning a session to the shard it already lives on is
    // a no-op. Moving a placed session through pin_shard is an error —
    // its queued frames and brick residency live on the original shard,
    // and a pin would silently strand them; migrate_session() is the
    // sanctioned path (it moves the queue and warms the target).
    if (state.shard == shard) return;
    VRMR_CHECK_MSG(false, "session '"
                              << state.profile.name
                              << "' is already placed on shard " << state.shard
                              << "; cannot re-pin to shard " << shard
                              << " (use migrate_session to move a placed "
                                 "session)");
  }
  state.profile.pin_shard = shard;  // repeated pins just overwrite
}

int ServiceFrontend::resolve_placement(const SessionProfile& profile,
                                       const volren::Volume* volume,
                                       int exclude_shard) const {
  PlacementQuery query;
  query.profile = &profile;
  query.volume = volume;
  query.current_shard = exclude_shard;
  query.shards.reserve(shards_.size());
  for (int s = 0; s < num_shards(); ++s) {
    const Shard& shard = shards_[static_cast<std::size_t>(s)];
    PlacementSignal signal;
    signal.shard = s;
    signal.alive = !shard.service->crashed();
    signal.accepting = shard.accepting && !shard.retired && s != exclude_shard;
    // The warm probe scans the shard's cache, so run it once per shard.
    signal.warm = signal.alive && !shard.retired && volume != nullptr &&
                  shard.service->volume_warm(volume);
    signal.outstanding_cost_s = shard.service->outstanding_cost_s();
    query.shards.push_back(signal);
  }
  // A pin naming a dead or non-accepting shard cannot be honored; the
  // policy re-places over the survivors rather than queueing frames a
  // shard will never serve.
  if (profile.pin_shard.has_value()) {
    const int pin = *profile.pin_shard;
    if (pin >= 0 && pin < num_shards()) {
      const PlacementSignal& signal =
          query.shards[static_cast<std::size_t>(pin)];
      if (signal.alive && signal.accepting) query.pinned = pin;
    }
  }
  const int chosen = config_.placement ? config_.placement(query)
                                       : default_placement(query);
  VRMR_CHECK_MSG(chosen >= 0 && chosen < num_shards(),
                 "no accepting shard to place on (placement policy returned "
                     << chosen << " for session '" << profile.name << "')");
  const PlacementSignal& signal =
      query.shards[static_cast<std::size_t>(chosen)];
  VRMR_CHECK_MSG(signal.alive && signal.accepting,
                 "placement policy chose shard "
                     << chosen << " for session '" << profile.name
                     << "', which is not accepting");
  return chosen;
}

int ServiceFrontend::least_loaded_target(int exclude_shard) const {
  int best = -1;
  double best_cost = kInf;
  for (int s = 0; s < num_shards(); ++s) {
    if (s == exclude_shard) continue;
    const Shard& shard = shards_[static_cast<std::size_t>(s)];
    if (shard.service->crashed() || shard.retired || !shard.accepting) continue;
    const double cost = shard.service->outstanding_cost_s();
    if (cost < best_cost) {
      best = s;
      best_cost = cost;
    }
  }
  VRMR_CHECK_MSG(best >= 0, "no surviving shard to fail over to");
  return best;
}

bool ServiceFrontend::hydrate(int shard_index, int gpu,
                              const volren::Volume* volume, const BrickKey& key,
                              std::uint64_t stored_bytes,
                              std::function<void()> done) {
  (void)gpu;  // the payload lands shard-wide; the plan picks the lane
  // Probe siblings in ascending index order (deterministic replay).
  // BrickKey volume ids are shard-local, so translate through each
  // sibling's own registration before touching its cache.
  Shard& shard = shards_[static_cast<std::size_t>(shard_index)];
  for (int s = 0; s < num_shards(); ++s) {
    if (s == shard_index) continue;
    const Shard& sibling = shards_[static_cast<std::size_t>(s)];
    // A crashed sibling serves nothing, hydration included (its cache
    // is only read by failover()'s warm handoff); a retired one kept
    // its cache but left the farm — skip both.
    if (sibling.service->crashed() || sibling.retired) continue;
    const std::optional<std::uint64_t> vid =
        sibling.service->volume_id_of(volume);
    if (!vid.has_value()) continue;
    const BrickCache* cache = sibling.service->cache();
    if (cache == nullptr) continue;
    const BrickKey sibling_key{*vid, key.brick_id, key.layout_id};
    bool warm = false;
    for (int g = 0; g < config_.gpus_per_shard && !warm; ++g)
      warm = cache->resident(g, sibling_key);
    if (!warm) continue;
    shard.bytes_hydrated_from_peers += stored_bytes;
    shard.bytes_disk_avoided += stored_bytes;
    ++shard.bricks_hydrated;
    obs::TraceRecorder* trace = trace_;
    std::uint64_t arrow = 0;
    if (trace != nullptr) {
      arrow = trace->next_async_id();
      trace->async_begin(shard.engine->now(), trace_pid_base_ + s, arrow,
                         "hydrate", "hydration",
                         {{"brick", std::to_string(key.brick_id)},
                          {"bytes", std::to_string(stored_bytes)},
                          {"to_shard", std::to_string(shard_index)}});
    }
    // Ship the stored payload over the requesting shard's fabric; the
    // plan resumes (H2D onward) when the transfer lands. Reliable send:
    // an injected drop (fault plan) retransmits instead of wedging the
    // plan forever on a done() that never fires.
    shard.fabric->send_reliable(
        s, shard_index, stored_bytes,
        [trace, arrow, pid = trace_pid_base_ + shard_index,
         engine = shard.engine.get(), done = std::move(done)] {
          if (trace != nullptr) {
            trace->async_end(engine->now(), pid, arrow, "hydrate", "hydration");
          }
          done();
        });
    return true;
  }
  return false;  // no warm sibling: the plan falls back to disk
}

std::uint64_t ServiceFrontend::session_submit(int session, RenderRequest request) {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  // Validate before placing: a rejected first submit must not pin the
  // session to a shard chosen from the invalid request.
  VRMR_CHECK_MSG(request.volume != nullptr, "RenderRequest.volume must be set");
  VRMR_CHECK_MSG(std::isfinite(request.arrival_s) && request.arrival_s >= 0.0,
                 "arrival time must be finite and non-negative, got "
                     << request.arrival_s);
  FrontendSession& state = *sessions_[static_cast<std::size_t>(session)];
  if (state.shard < 0) {
    // Probe every live shard's registration guard before pinning: a
    // volume reshaped without invalidation must reject the submit no
    // matter which shard placement would pick (its stale registration
    // may live on a shard that has since gone cold), and the session
    // stays free to place elsewhere on retry after invalidate_volume.
    for (const Shard& shard : shards_)
      if (!shard.retired) shard.service->check_volume_compatible(request.volume);
    state.shard = resolve_placement(state.profile, request.volume, -1);
    Shard& shard = shards_[static_cast<std::size_t>(state.shard)];
    state.inner = shard.service->open_session(state.profile);
    ++shard.sessions_placed;
    // Install COPIES of the retained client callbacks: every migration
    // trigger re-installs the originals on the target shard's session.
    if (state.client_callback)
      state.inner.on_frame(translate(session, state.client_callback));
    if (state.client_tile_callback)
      state.inner.on_tile(translate_tile(session, state.client_tile_callback));
    VRMR_DEBUG("frontend") << "session '" << state.profile.name
                           << "' placed on shard " << state.shard;
  }
  return state.inner.submit(std::move(request));
}

FrameCallback ServiceFrontend::translate(int session, FrameCallback callback) {
  // Shard-local session indices collide across shards; deliver records
  // carrying the frontend-wide session index instead.
  return [session, callback = std::move(callback)](const FrameRecord& frame) {
    FrameRecord translated = frame;
    translated.session = session;
    callback(translated);
  };
}

void ServiceFrontend::session_on_frame(int session, FrameCallback callback) {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  FrontendSession& state = *sessions_[static_cast<std::size_t>(session)];
  state.client_callback = std::move(callback);
  if (state.shard >= 0)
    state.inner.on_frame(translate(session, state.client_callback));
}

TileCallback ServiceFrontend::translate_tile(int session, TileCallback callback) {
  return [session, callback = std::move(callback)](const TileRecord& tile) {
    TileRecord translated = tile;
    translated.session = session;
    callback(translated);
  };
}

void ServiceFrontend::session_on_tile(int session, TileCallback callback) {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  FrontendSession& state = *sessions_[static_cast<std::size_t>(session)];
  state.client_tile_callback = std::move(callback);
  if (state.shard >= 0)
    state.inner.on_tile(translate_tile(session, state.client_tile_callback));
}

SessionStats ServiceFrontend::session_stats(int session) const {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  const FrontendSession& state = *sessions_[static_cast<std::size_t>(session)];
  if (state.shard < 0) {
    SessionStats empty;
    empty.name = state.profile.name;
    empty.priority = state.profile.priority;
    return empty;
  }
  SessionStats agg = state.inner.stats();
  // Epoch merge across migrations: counters sum over every shard the
  // session has lived on, latency means are frame-weighted, and
  // percentiles/max take the worst epoch (conservative — the true
  // merged quantile of two sorted populations is bounded by the worse
  // one's). fps, cost_scale and queued_frames reflect the current
  // epoch: moved frames re-queued on the target and count there.
  for (const Session& past : state.past_inner) {
    const SessionStats p = past.stats();
    const int total = agg.frames + p.frames;
    if (total > 0) {
      agg.mean_latency_s =
          (agg.mean_latency_s * agg.frames + p.mean_latency_s * p.frames) /
          total;
    }
    agg.frames = total;
    agg.p50_latency_s = std::max(agg.p50_latency_s, p.p50_latency_s);
    agg.p95_latency_s = std::max(agg.p95_latency_s, p.p95_latency_s);
    agg.p99_latency_s = std::max(agg.p99_latency_s, p.p99_latency_s);
    agg.max_latency_s = std::max(agg.max_latency_s, p.max_latency_s);
    agg.cache_hits += p.cache_hits;
    agg.cache_misses += p.cache_misses;
    agg.tiles_delivered += p.tiles_delivered;
  }
  return agg;
}

const SessionProfile& ServiceFrontend::session_profile(int session) const {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  return sessions_[static_cast<std::size_t>(session)]->profile;
}

void ServiceFrontend::install_fault_plan(const fault::FaultPlan& plan) {
  // Fabric events install one deterministic injector per addressed
  // shard's fabric; everything else routes to that shard's service.
  struct PendingFabricFault {
    fault::FaultKind kind;
    double time_s;
    std::int64_t msg_seq;  // exact ordinal when >= 0 (FaultEvent::target)
    double extra_delay_s;
    bool consumed = false;
  };
  std::vector<std::vector<PendingFabricFault>> fabric_faults(
      static_cast<std::size_t>(num_shards()));
  for (const fault::FaultEvent& event : plan.events()) {
    VRMR_CHECK_MSG(event.shard >= 0 && event.shard < num_shards(),
                   "fault event addresses shard " << event.shard << " but the "
                   "farm has " << num_shards());
    if (event.kind == fault::FaultKind::FabricDrop ||
        event.kind == fault::FaultKind::FabricDelay) {
      fabric_faults[static_cast<std::size_t>(event.shard)].push_back(
          {event.kind, event.time_s, event.target, event.param_s});
      continue;
    }
    shards_[static_cast<std::size_t>(event.shard)].service->inject_fault(event);
  }
  for (int s = 0; s < num_shards(); ++s) {
    auto& pending = fabric_faults[static_cast<std::size_t>(s)];
    if (pending.empty()) continue;
    Shard& shard = shards_[static_cast<std::size_t>(s)];
    VRMR_CHECK_MSG(shard.fabric != nullptr,
                   "fabric fault addresses shard " << s
                       << " but a single-shard farm has no fabric");
    // Each event fires once: it hits the exact message ordinal when
    // target >= 0, else the first message sent at/after its time_s.
    // Closure state is deterministic — replaying the same plan against
    // the same workload reproduces the same drops bit-for-bit.
    shard.fabric->set_fault_injector(
        [state = std::make_shared<std::vector<PendingFabricFault>>(
             std::move(pending)),
         engine = shard.engine.get()](int, int, std::uint64_t,
                                      std::uint64_t msg_seq) {
          net::FaultDecision decision;
          for (PendingFabricFault& fault : *state) {
            if (fault.consumed) continue;
            const bool hit = fault.msg_seq >= 0
                                 ? static_cast<std::uint64_t>(fault.msg_seq) ==
                                       msg_seq
                                 : engine->now() >= fault.time_s;
            if (!hit) continue;
            fault.consumed = true;
            if (fault.kind == fault::FaultKind::FabricDrop)
              decision.drop = true;
            else
              decision.extra_delay_s += fault.extra_delay_s;
          }
          return decision;
        });
  }
}

void ServiceFrontend::execute_migration(const MigrationPlan& plan) {
  // The one repoint-plus-handoff primitive behind every control-plane
  // trigger. The two triggers differ only in provenance: a crash's
  // frames come from the dead service's snapshot and re-issue against
  // the target's own clock; a voluntary move extracts the live queue
  // and floors arrivals at the decision time (the farm horizon), so
  // moved work cannot time-travel onto an idle target's younger
  // timeline.
  const bool crash = plan.trigger == MigrationPlan::Trigger::Failover;
  const char* repin_name = crash ? "failover.repin" : "migrate.repin";
  const char* push_name = crash ? "failover.push" : "migrate.push";
  const char* category = crash ? "failover" : "migrate";
  const bool prepush_enabled = crash ? config_.handoff.failover_prepush
                                     : config_.handoff.migration_prepush;
  VRMR_CHECK_MSG(plan.from_shard >= 0 && plan.from_shard < num_shards(),
                 "migration plan from_shard " << plan.from_shard
                                              << " out of range");
  Shard& source = shards_[static_cast<std::size_t>(plan.from_shard)];

  // Pass 1: repoint every moved session — re-open on the target,
  // re-install the retained client callbacks, and warm the target with
  // the source cache's bricks for that session's moved volumes.
  // Sessions move in plan order (the triggers build them in open
  // order — determinism).
  std::unordered_map<int, int> inner_to_front;  // source-local -> frontend
  std::vector<double> ready_s(sessions_.size(), 0.0);
  for (const MigrationPlan::Move& move : plan.moves) {
    VRMR_CHECK_MSG(move.session >= 0 && move.session < num_sessions(),
                   "migration plan names unknown session " << move.session);
    VRMR_CHECK_MSG(move.target >= 0 && move.target < num_shards() &&
                       move.target != plan.from_shard,
                   "migration plan targets shard " << move.target);
    FrontendSession& state = *sessions_[static_cast<std::size_t>(move.session)];
    inner_to_front[move.source_inner] = move.session;
    Shard& dest = shards_[static_cast<std::size_t>(move.target)];
    SessionProfile profile = state.profile;
    profile.pin_shard.reset();  // the placement decision was already made
    if (!crash) {
      // A voluntary move supersedes any pre-placement pin, and stamps
      // the hysteresis clock the rebalancer consults.
      state.profile.pin_shard.reset();
      state.last_migrated_s = plan.decision_s;
    }
    // The previous epoch's session stays open on the source (its
    // in-flight frame and queued refinements deliver there through the
    // callback copies); session_stats merges its history.
    state.past_inner.push_back(state.inner);
    state.shard = move.target;
    state.inner = dest.service->open_session(std::move(profile));
    ++dest.sessions_placed;
    if (crash)
      ++sessions_repinned_;
    else
      ++migrations_;
    if (state.client_callback)
      state.inner.on_frame(translate(move.session, state.client_callback));
    if (state.client_tile_callback)
      state.inner.on_tile(
          translate_tile(move.session, state.client_tile_callback));
    if (trace_ != nullptr) {
      trace_->instant(dest.engine->now(), trace_pid_base_ + move.target,
                      obs::kServiceTid, repin_name, category,
                      {{"session", std::to_string(move.session)},
                       {"from_shard", std::to_string(plan.from_shard)},
                       {"to_shard", std::to_string(move.target)}});
    }

    // Warm handoff: push the source cache's resident bricks for this
    // session's moved volumes to the target over its fabric, once per
    // (volume, layout) pair. ready_s floors the re-issued frames'
    // arrivals at a serialization-sum estimate of the handoff window —
    // a slight overestimate (per-message latency overlaps in truth), so
    // by then every pushed brick has landed and the frames render warm.
    double session_ready_s = crash
                                 ? dest.engine->now()
                                 : std::max(dest.engine->now(), plan.decision_s);
    if (prepush_enabled && dest.fabric != nullptr &&
        source.service->cache() != nullptr) {
      std::set<std::pair<const volren::Volume*, std::uint64_t>> pushed;
      for (const RenderService::UnservedFrame& frame : plan.frames) {
        if (frame.session != move.source_inner) continue;
        if (frame.layout == nullptr) continue;
        if (!pushed.insert({frame.request.volume, frame.layout_sig}).second)
          continue;
        const std::optional<std::uint64_t> vid =
            source.service->volume_id_of(frame.request.volume);
        if (!vid.has_value()) continue;
        for (const BrickCache::WarmBrick& brick :
             source.service->cache()->warm_bricks_for_volume(*vid)) {
          if (brick.key.layout_id != frame.layout_sig) continue;
          const int gpu = brick.key.brick_id % config_.gpus_per_shard;
          ++bricks_prepushed_;
          bytes_prepushed_ += brick.stored_bytes;
          session_ready_s += dest.fabric->ideal_transfer_time(
              plan.from_shard, move.target, brick.stored_bytes);
          obs::TraceRecorder* trace = trace_;
          std::uint64_t arrow = 0;
          if (trace != nullptr) {
            arrow = trace->next_async_id();
            trace->async_begin(dest.engine->now(),
                               trace_pid_base_ + plan.from_shard, arrow,
                               push_name, category,
                               {{"brick", std::to_string(brick.key.brick_id)},
                                {"bytes", std::to_string(brick.stored_bytes)},
                                {"to_shard", std::to_string(move.target)}});
          }
          // send_reliable: an injected drop retransmits — the handoff
          // completes late instead of silently shedding a brick.
          dest.fabric->send_reliable(
              plan.from_shard, move.target, brick.stored_bytes,
              [service = dest.service.get(), volume = frame.request.volume,
               brick_id = brick.key.brick_id, layout_sig = frame.layout_sig,
               gpu, stored = brick.stored_bytes,
               logical = brick.logical_bytes, trace, arrow,
               pid = trace_pid_base_ + move.target,
               engine = dest.engine.get(), push_name, category] {
                if (trace != nullptr) {
                  trace->async_end(engine->now(), pid, arrow, push_name,
                                   category);
                }
                service->admit_pushed_brick(volume, brick_id, layout_sig, gpu,
                                            stored, logical);
              });
        }
      }
    }
    ready_s[static_cast<std::size_t>(move.session)] = session_ready_s;
  }

  // Pass 2: re-issue the moved frames in frame_id order (global
  // submission order on the source), each on its session's new shard,
  // arrival floored at the handoff window so re-issued work renders
  // against the pushed bricks.
  for (const RenderService::UnservedFrame& frame : plan.frames) {
    const auto it = inner_to_front.find(frame.session);
    if (it == inner_to_front.end()) continue;  // not a frontend session
    FrontendSession& state = *sessions_[static_cast<std::size_t>(it->second)];
    RenderRequest request = frame.request;
    request.arrival_s = std::max(
        request.arrival_s, ready_s[static_cast<std::size_t>(it->second)]);
    state.inner.submit(std::move(request));
    if (crash)
      ++frames_reissued_;
    else
      ++frames_migrated_;
  }
}

void ServiceFrontend::failover(int crashed_shard) {
  VRMR_CHECK_MSG(crashed_shard >= 0 && crashed_shard < num_shards(),
                 "failover shard " << crashed_shard << " out of range");
  Shard& crashed = shards_[static_cast<std::size_t>(crashed_shard)];
  VRMR_CHECK_MSG(crashed.service->crashed(),
                 "failover(" << crashed_shard << ") on a live shard");
  if (crashed.failed_over) return;
  crashed.failed_over = true;
  ++failovers_;
  MigrationPlan plan;
  plan.trigger = MigrationPlan::Trigger::Failover;
  plan.from_shard = crashed_shard;
  plan.decision_s = crashed.engine->now();
  plan.frames = crashed.service->unserved_frames();
  VRMR_WARN("frontend") << "shard " << crashed_shard << " crashed with "
                        << plan.frames.size()
                        << " unserved frame(s); failing over";
  // Each orphan picks its target independently — least outstanding
  // cost among the survivors, ties to the lowest index — so a big
  // crash spreads over the farm instead of dogpiling one sibling.
  // (Nothing below changes outstanding cost until the frames re-issue
  // in pass 2, so picking all targets up front is equivalent to
  // interleaving.)
  for (int session = 0; session < num_sessions(); ++session) {
    const FrontendSession& state =
        *sessions_[static_cast<std::size_t>(session)];
    if (state.shard != crashed_shard) continue;
    plan.moves.push_back(
        {session, least_loaded_target(crashed_shard), state.inner.index_});
  }
  execute_migration(plan);
}

MigrationPlan ServiceFrontend::plan_voluntary(int session, int target_shard,
                                              double decision_s) {
  FrontendSession& state = *sessions_[static_cast<std::size_t>(session)];
  const int source = state.shard;
  VRMR_CHECK_MSG(source >= 0, "cannot migrate an unplaced session");
  Shard& src = shards_[static_cast<std::size_t>(source)];
  // Validate the destination (or that one exists) BEFORE extracting the
  // live queue, so a CHECK-failure cannot strand extracted frames.
  if (target_shard >= 0) {
    VRMR_CHECK_MSG(target_shard < num_shards(),
                   "migrate target " << target_shard << " out of range for "
                                     << num_shards() << " shards");
    VRMR_CHECK_MSG(target_shard != source,
                   "migrate target equals the session's current shard "
                       << source);
    const Shard& dest = shards_[static_cast<std::size_t>(target_shard)];
    VRMR_CHECK_MSG(!dest.service->crashed() && dest.accepting && !dest.retired,
                   "migrate target " << target_shard << " is not accepting");
  } else {
    bool any = false;
    for (int s = 0; s < num_shards() && !any; ++s) {
      const Shard& dest = shards_[static_cast<std::size_t>(s)];
      any = s != source && !dest.service->crashed() && dest.accepting &&
            !dest.retired;
    }
    VRMR_CHECK_MSG(any, "no other accepting shard to migrate session '"
                            << state.profile.name << "' onto");
  }
  MigrationPlan plan;
  plan.trigger = MigrationPlan::Trigger::Voluntary;
  plan.from_shard = source;
  plan.decision_s = decision_s;
  // Frame-boundary extraction: queued frames move; the in-flight frame
  // (if any) and queued refinements stay and deliver on the source.
  plan.frames = src.service->extract_session_frames(state.inner.index_);
  if (target_shard < 0) {
    const volren::Volume* volume =
        plan.frames.empty() ? nullptr : plan.frames.front().request.volume;
    target_shard = resolve_placement(state.profile, volume, source);
  }
  plan.moves.push_back({session, target_shard, state.inner.index_});
  return plan;
}

void ServiceFrontend::migrate_session(const Session& session,
                                      int target_shard) {
  VRMR_CHECK_MSG(session.valid(), "migrate_session on an invalid Session");
  VRMR_CHECK_MSG(static_cast<const SessionBackend*>(this) == session.backend_,
                 "Session belongs to a different backend");
  FrontendSession& state = *sessions_[static_cast<std::size_t>(session.index_)];
  VRMR_CHECK_MSG(state.shard >= 0,
                 "migrate_session on unplaced session '" << state.profile.name
                     << "'; placement happens at its first submit");
  if (target_shard >= 0 && target_shard == state.shard) return;  // no-op
  VRMR_CHECK_MSG(
      !shards_[static_cast<std::size_t>(state.shard)].service->crashed(),
      "session '" << state.profile.name << "' is on crashed shard "
                  << state.shard << "; failover() relocates crash orphans");
  MigrationPlan plan = plan_voluntary(session.index_, target_shard, farm_now());
  execute_migration(plan);
  VRMR_DEBUG("frontend") << "session '" << state.profile.name
                         << "' migrated from shard " << plan.from_shard
                         << " to shard " << state.shard << " ("
                         << plan.frames.size() << " frame(s) moved)";
}

int ServiceFrontend::add_shard() {
  VRMR_CHECK_MSG(
      num_shards() < max_farm_shards_,
      "add_shard: farm already at slot capacity "
          << max_farm_shards_
          << " (the fabric was wired for max(shards, autoscale.max_shards) "
             "nodes at construction; retired slots are not reused)");
  const int index = num_shards();
  const double join_s = farm_now();
  Shard shard = make_shard(index);
  if (join_s > 0.0) {
    // Align the new shard's timeline with the farm: its engine joins at
    // the current farm time, not at 0, so frames placed here cannot
    // render in the farm's past.
    shard.engine->schedule_at(join_s, [] {});
    shard.engine->run();
  }
  shard.active_from_s = join_s;
  shards_.push_back(std::move(shard));
  Shard& added = shards_.back();
  if (trace_ != nullptr) {
    added.service->set_trace(trace_, trace_pid_base_ + index);
    trace_->instant(join_s, trace_pid_base_ + index, obs::kServiceTid,
                    "scale.up", "scale",
                    {{"shard", std::to_string(index)},
                     {"farm_shards", std::to_string(num_shards())}});
  }
  ++shards_added_;
  VRMR_INFO("frontend") << "scale up: shard " << index << " joined at t="
                        << join_s;
  return index;
}

void ServiceFrontend::drain_shard(int index) {
  VRMR_CHECK_MSG(index >= 0 && index < num_shards(),
                 "drain_shard " << index << " out of range");
  Shard& shard = shards_[static_cast<std::size_t>(index)];
  if (shard.retired) return;  // idempotent
  VRMR_CHECK_MSG(!shard.service->crashed(),
                 "drain_shard(" << index
                                << ") on a crashed shard; failover() handles "
                                   "crashes");
  bool any_other = false;
  for (int s = 0; s < num_shards() && !any_other; ++s) {
    const Shard& sibling = shards_[static_cast<std::size_t>(s)];
    any_other = s != index && !sibling.service->crashed() &&
                sibling.accepting && !sibling.retired;
  }
  VRMR_CHECK_MSG(any_other, "drain_shard(" << index
                                           << "): no other accepting shard to "
                                              "migrate its sessions onto");
  const double decision_s = farm_now();
  shard.accepting = false;  // placement and migration stop targeting it
  int migrated = 0;
  for (int session = 0; session < num_sessions(); ++session) {
    if (sessions_[static_cast<std::size_t>(session)]->shard != index) continue;
    // One plan per session: each consults the placement policy against
    // post-previous-move signals, so a big drain spreads over the farm.
    execute_migration(plan_voluntary(session, -1, decision_s));
    ++migrated;
  }
  // Serve what stayed behind (queued refinements of already-delivered
  // previews and their cascades): the shard retires with zero orphaned
  // frames.
  shard.service->drain();
  shard.retired = true;
  shard.active_to_s = std::max(decision_s, shard.engine->now());
  ++shards_drained_;
  if (trace_ != nullptr) {
    trace_->instant(shard.engine->now(), trace_pid_base_ + index,
                    obs::kServiceTid, "scale.down", "scale",
                    {{"shard", std::to_string(index)},
                     {"sessions_migrated", std::to_string(migrated)}});
  }
  VRMR_INFO("frontend") << "scale down: shard " << index << " retired at t="
                        << shard.active_to_s << " (" << migrated
                        << " session(s) migrated off)";
}

int ServiceFrontend::rebalance_pass(double now_s) {
  const RebalanceConfig& rb = config_.rebalance;
  if (!rb.enabled) return 0;
  int moved = 0;
  for (int pass = 0; pass < std::max(1, rb.max_moves_per_pass); ++pass) {
    // Hottest / coldest accepting shard by outstanding predicted cost.
    int hot = -1, cold = -1;
    double hot_cost = -1.0, cold_cost = kInf;
    for (int s = 0; s < num_shards(); ++s) {
      const Shard& shard = shards_[static_cast<std::size_t>(s)];
      if (shard.retired || !shard.accepting || shard.service->crashed())
        continue;
      const double cost = shard.service->outstanding_cost_s();
      if (cost > hot_cost) {
        hot = s;
        hot_cost = cost;
      }
      if (cost < cold_cost) {
        cold = s;
        cold_cost = cost;
      }
    }
    if (hot < 0 || cold < 0 || hot == cold) break;
    const double gap = hot_cost - cold_cost;
    // Both skew gates must hold: relative ratio (scale-free) and the
    // absolute floor (a 2:1 skew over microseconds is not worth a
    // handoff); a uniformly loaded or uniformly idle farm never churns.
    if (hot_cost <= 0.0 || gap < rb.min_imbalance_s) break;
    if (hot_cost <= rb.skew_ratio * std::max(cold_cost, 1e-12)) break;
    if (rb.sustained_utilization > 0.0) {
      const double span = rb.sustain_s > 0.0      ? rb.sustain_s
                          : rb.period_s > 0.0     ? rb.period_s
                                                  : config_.service.stats_window_s;
      if (span > 0.0) {
        const double busy = trailing_busy_s(hot, now_s, span);
        const double util =
            busy / (span * static_cast<double>(config_.gpus_per_shard));
        if (util < rb.sustained_utilization) break;  // a blip, not a trend
      }
    }
    // Candidate: the hot shard's session whose move best balances the
    // pair — minimize |gap - 2*cost| — skipping sessions inside the
    // hysteresis window and ones whose move would only swap the skew
    // (cost >= gap). Ties to the lowest session index (determinism).
    const Shard& hot_shard = shards_[static_cast<std::size_t>(hot)];
    int best_session = -1;
    double best_score = kInf;
    for (int session = 0; session < num_sessions(); ++session) {
      const FrontendSession& state =
          *sessions_[static_cast<std::size_t>(session)];
      if (state.shard != hot) continue;
      if (now_s - state.last_migrated_s < rb.hysteresis_s) continue;
      const double cost =
          hot_shard.service->outstanding_cost_for_session(state.inner.index_);
      if (cost <= 0.0 || cost >= gap) continue;
      const double score = std::abs(gap - 2.0 * cost);
      if (score < best_score) {
        best_session = session;
        best_score = score;
      }
    }
    if (best_session < 0) break;
    // Target through the placement policy (warm affinity may beat the
    // literal coldest shard) — the hot source is excluded in the query.
    execute_migration(plan_voluntary(best_session, -1, now_s));
    ++rebalance_migrations_;
    ++moved;
  }
  return moved;
}

void ServiceFrontend::autoscale_pass(double now_s) {
  const AutoscaleConfig& as = config_.autoscale;
  if (!as.enabled) return;
  if (now_s - last_scale_s_ < as.cooldown_s) return;
  int active = 0;
  double backlog = 0.0;
  for (int s = 0; s < num_shards(); ++s) {
    const Shard& shard = shards_[static_cast<std::size_t>(s)];
    if (shard.retired || !shard.accepting || shard.service->crashed()) continue;
    ++active;
    backlog += shard.service->outstanding_cost_s();
  }
  if (active == 0) return;
  const double per_shard = backlog / static_cast<double>(active);
  if (per_shard > as.scale_up_backlog_s && num_shards() < max_farm_shards_) {
    add_shard();
    last_scale_s_ = now_s;
    return;
  }
  if (per_shard <= as.scale_down_backlog_s &&
      active > std::max(1, as.min_shards)) {
    // Retire the least-loaded accepting shard; ties to the HIGHEST
    // index (newest-first elasticity — added shards leave first).
    int victim = -1;
    double victim_cost = kInf;
    for (int s = 0; s < num_shards(); ++s) {
      const Shard& shard = shards_[static_cast<std::size_t>(s)];
      if (shard.retired || !shard.accepting || shard.service->crashed())
        continue;
      const double cost = shard.service->outstanding_cost_s();
      if (cost <= victim_cost) {
        victim = s;
        victim_cost = cost;
      }
    }
    if (victim >= 0) {
      drain_shard(victim);
      last_scale_s_ = now_s;
    }
  }
}

double ServiceFrontend::farm_now() const {
  double now = 0.0;
  for (const Shard& shard : shards_)
    now = std::max(now, shard.engine->now());
  return now;
}

double ServiceFrontend::trailing_busy_s(int index, double now_s,
                                        double span_s) const {
  const double width = config_.service.stats_window_s;
  if (width <= 0.0 || span_s <= 0.0) return 0.0;
  const Shard& shard = shards_[static_cast<std::size_t>(index)];
  const double lo = now_s - span_s;
  double busy = 0.0;
  for (const auto& [bin, window] : shard.service->window_bins()) {
    const double bin_lo = static_cast<double>(bin) * width;
    const double overlap =
        std::min(bin_lo + width, now_s) - std::max(bin_lo, lo);
    if (overlap <= 0.0) continue;
    busy += window.gpu_busy_s * (overlap / width);  // pro-rate partial bins
  }
  return busy;
}

int ServiceFrontend::accepting_shards() const {
  int count = 0;
  for (const Shard& shard : shards_) {
    if (!shard.retired && shard.accepting && !shard.service->crashed())
      ++count;
  }
  return count;
}

void ServiceFrontend::drain() {
  const bool control = config_.rebalance.enabled || config_.autoscale.enabled;
  const double period = config_.rebalance.period_s;

  // One full sweep: a callback running on one shard may submit frames
  // that place onto an already-drained shard (brick affinity), so loop
  // until every live shard's queue is empty. A shard that crashed
  // mid-drain fails over on the next sweep: its sessions re-pin and
  // its unserved frames re-issue onto survivors, which the loop then
  // drains.
  const auto sweep = [this] {
    bool again = true;
    while (again) {
      again = false;
      for (int s = 0; s < num_shards(); ++s) {
        Shard& shard = shards_[static_cast<std::size_t>(s)];
        if (shard.retired) continue;
        if (shard.service->crashed()) {
          if (!shard.failed_over) {
            failover(s);
            again = true;
          }
          continue;
        }
        if (shard.service->queued_frames() == 0) continue;
        shard.service->drain();
        again = true;
      }
    }
  };
  const auto total_queued = [this] {
    int queued = 0;
    for (const Shard& shard : shards_) {
      if (shard.retired || shard.service->crashed()) continue;
      queued += shard.service->queued_frames();
    }
    return queued;
  };

  if (!control || period <= 0.0) {
    // Classic full sweeps. With a control plane but no period, the
    // passes run between sweeps (useful for end-of-run scale-down; a
    // fully drained farm leaves the rebalancer nothing to move).
    while (true) {
      sweep();
      if (!control) return;
      const double now = farm_now();
      autoscale_pass(now);  // capacity first; the rebalancer fills it
      const int moves = rebalance_pass(now);
      if (moves == 0 && total_queued() == 0) return;
    }
  }

  // Horizon rounds: advance every live shard to a shared farm-time
  // horizon (RenderService::drain_until stops admitting at the horizon
  // and lets the event cascade die at a frame boundary; in-flight
  // frames complete past it), then run the control passes at that
  // boundary, then move the horizon forward. The next horizon is
  // floored at the farm clock (completions may legitimately end past
  // the horizon) and jumped over arrival gaps (an idle farm does not
  // spin rounds waiting for a far-future submit).
  double horizon = farm_now() + period;
  while (true) {
    bool served = true;
    while (served) {
      served = false;
      for (int s = 0; s < num_shards(); ++s) {
        Shard& shard = shards_[static_cast<std::size_t>(s)];
        if (shard.retired) continue;
        if (shard.service->crashed()) {
          if (!shard.failed_over) {
            failover(s);
            served = true;
          }
          continue;
        }
        const int before = shard.service->queued_frames();
        if (before == 0) continue;
        const double clock_before = shard.engine->now();
        shard.service->drain_until(horizon);
        if (shard.service->queued_frames() < before ||
            shard.engine->now() > clock_before)
          served = true;
      }
    }
    autoscale_pass(horizon);  // capacity first; the rebalancer fills it
    const int moves = rebalance_pass(horizon);
    int queued = 0;
    double min_arrival = kInf;
    for (const Shard& shard : shards_) {
      if (shard.retired || shard.service->crashed()) continue;
      const int q = shard.service->queued_frames();
      queued += q;
      if (q > 0)
        min_arrival = std::min(min_arrival, shard.service->next_arrival_s());
    }
    if (queued == 0 && moves == 0) break;
    double next = std::max(horizon + period, farm_now());
    // Arrival-gap jump. Strictly above min_arrival: the admission gate
    // blocks arrivals AT the horizon, so a horizon equal to the next
    // arrival would spin.
    if (min_arrival < kInf && min_arrival >= next)
      next = min_arrival + period;
    horizon = next;
  }
}

void ServiceFrontend::invalidate_volume(const volren::Volume* volume) {
  for (Shard& shard : shards_) shard.service->invalidate_volume(volume);
}

void ServiceFrontend::set_trace(obs::TraceRecorder* recorder, int pid_base) {
  trace_ = recorder;
  trace_pid_base_ = pid_base;
  for (int s = 0; s < num_shards(); ++s) {
    shards_[static_cast<std::size_t>(s)].service->set_trace(recorder,
                                                            pid_base + s);
  }
}

FrontendStats ServiceFrontend::stats() const {
  FrontendStats out;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (int s = 0; s < num_shards(); ++s) {
    const Shard& shard = shards_[static_cast<std::size_t>(s)];
    ShardStats detail;
    detail.shard = s;
    detail.sessions = shard.sessions_placed;
    detail.retired = shard.retired;
    detail.active_from_s = shard.active_from_s;
    detail.active_to_s = shard.active_to_s;
    detail.bytes_hydrated_from_peers = shard.bytes_hydrated_from_peers;
    detail.bytes_disk_avoided = shard.bytes_disk_avoided;
    detail.bricks_hydrated = shard.bricks_hydrated;
    detail.service = shard.service->stats();
    out.frames_total += detail.service.frames_total;
    out.makespan_s = std::max(out.makespan_s, detail.service.makespan_s);
    out.bytes_h2d_saved += detail.service.bytes_h2d_saved;
    out.bytes_hydrated_from_peers += detail.bytes_hydrated_from_peers;
    out.bytes_disk_avoided += detail.bytes_disk_avoided;
    out.bricks_hydrated += detail.bricks_hydrated;
    hits += detail.service.cache.hits;
    misses += detail.service.cache.misses;
    out.shards.push_back(std::move(detail));
  }
  out.failovers = failovers_;
  out.sessions_repinned = sessions_repinned_;
  out.frames_reissued = frames_reissued_;
  out.bricks_prepushed = bricks_prepushed_;
  out.bytes_prepushed = bytes_prepushed_;
  out.migrations = migrations_;
  out.frames_migrated = frames_migrated_;
  out.rebalance_migrations = rebalance_migrations_;
  out.shards_added = shards_added_;
  out.shards_drained = shards_drained_;
  out.fps = out.makespan_s > 0.0 ? out.frames_total / out.makespan_s : 0.0;
  out.cache_hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;

  // Time-aligned farm windows: shards share bin boundaries (same
  // stats_window_s on parallel simulated timelines), so merging keys on
  // the bin index — llround is exact for start_s values the shards
  // themselves computed as bin * width. Counters sum (each farm bin
  // partitions exactly into the shard bins it merged); utilization is
  // re-derived over the farm's TIME-VARYING capacity: each bin
  // integrates the shards actually active during it, so a farm that
  // scaled mid-run reports utilization against what it actually had.
  const double width = config_.service.stats_window_s;
  if (width > 0.0) {
    std::map<std::int64_t, ServiceWindow> merged;
    for (const ShardStats& detail : out.shards) {
      for (const ServiceWindow& w : detail.service.windows) {
        ServiceWindow& m = merged[std::llround(w.start_s / width)];
        m.start_s = w.start_s;
        m.window_s = width;
        m.frames_finished += w.frames_finished;
        m.quanta_issued += w.quanta_issued;
        m.preemptions += w.preemptions;
        m.tiles += w.tiles;
        m.gpu_busy_s += w.gpu_busy_s;
      }
    }
    out.windows.reserve(merged.size());
    for (auto& [bin, window] : merged) {
      const double bin_lo = static_cast<double>(bin) * width;
      const double bin_hi = bin_lo + width;
      double capacity = 0.0;
      for (const Shard& shard : shards_) {
        const double overlap = std::min(bin_hi, shard.active_to_s) -
                               std::max(bin_lo, shard.active_from_s);
        if (overlap > 0.0)
          capacity += overlap * static_cast<double>(config_.gpus_per_shard);
      }
      window.utilization =
          capacity > 0.0
              ? std::min(1.0, std::max(0.0, window.gpu_busy_s / capacity))
              : 0.0;
      out.windows.push_back(window);
    }
  }
  return out;
}

}  // namespace vrmr::service
