#include "service/frontend.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

namespace vrmr::service {

ServiceFrontend::ServiceFrontend(FrontendConfig config)
    : config_(std::move(config)) {
  VRMR_CHECK_MSG(config_.shards >= 1, "frontend needs at least one shard");
  VRMR_CHECK_MSG(config_.gpus_per_shard >= 1,
                 "frontend shards need at least one GPU");
  VRMR_CHECK_MSG(config_.cache_policy_per_shard.empty() ||
                     static_cast<int>(config_.cache_policy_per_shard.size()) ==
                         config_.shards,
                 "cache_policy_per_shard must be empty or name one policy "
                 "per shard ("
                     << config_.shards << "), got "
                     << config_.cache_policy_per_shard.size());
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    Shard shard;
    shard.engine = std::make_unique<sim::Engine>();
    shard.cluster = std::make_unique<cluster::Cluster>(
        *shard.engine,
        cluster::ClusterConfig::with_total_gpus(
            config_.gpus_per_shard, config_.hw, config_.max_gpus_per_node));
    ServiceConfig service_config = config_.service;
    if (!config_.cache_policy_per_shard.empty()) {
      service_config.cache_policy =
          config_.cache_policy_per_shard[static_cast<std::size_t>(s)];
    }
    shard.service =
        std::make_unique<RenderService>(*shard.cluster, service_config);
    shards_.push_back(std::move(shard));
  }
  if (config_.shards > 1) {
    for (int s = 0; s < config_.shards; ++s) {
      Shard& shard = shards_[static_cast<std::size_t>(s)];
      // One fabric per shard, on that shard's engine, with one "node"
      // per shard: hydration INTO shard s advances only s's timeline
      // (see the Shard::fabric comment). The fabric exists even when
      // hydration is off — failover pre-pushes ride it too.
      shard.fabric = std::make_unique<net::Fabric>(
          *shard.engine, config_.hydration_fabric, config_.shards);
      if (config_.enable_peer_hydration) {
        shard.service->set_hydration_source(
            [this, s](int gpu, const volren::Volume* volume, const BrickKey& key,
                      std::uint64_t stored_bytes, std::function<void()> done) {
              return hydrate(s, gpu, volume, key, stored_bytes, std::move(done));
            });
      }
    }
  }
}

ServiceFrontend::~ServiceFrontend() = default;

Session ServiceFrontend::open_session(SessionProfile profile) {
  if (profile.pin_shard.has_value()) {
    VRMR_CHECK_MSG(*profile.pin_shard >= 0 && *profile.pin_shard < num_shards(),
                   "pin_shard " << *profile.pin_shard << " out of range for "
                                << num_shards() << " shards");
  }
  auto state = std::make_unique<FrontendSession>();
  state->profile = std::move(profile);
  sessions_.push_back(std::move(state));
  return Session(this, num_sessions() - 1);
}

RenderService& ServiceFrontend::shard(int index) {
  VRMR_CHECK_MSG(index >= 0 && index < num_shards(),
                 "shard " << index << " out of range");
  return *shards_[static_cast<std::size_t>(index)].service;
}

int ServiceFrontend::shard_of(const Session& session) const {
  VRMR_CHECK_MSG(session.valid(), "shard_of on an invalid Session");
  VRMR_CHECK_MSG(static_cast<const SessionBackend*>(this) == session.backend_,
                 "Session belongs to a different backend");
  return sessions_[static_cast<std::size_t>(session.index_)]->shard;
}

void ServiceFrontend::pin_shard(const Session& session, int shard) {
  VRMR_CHECK_MSG(session.valid(), "pin_shard on an invalid Session");
  VRMR_CHECK_MSG(static_cast<const SessionBackend*>(this) == session.backend_,
                 "Session belongs to a different backend");
  VRMR_CHECK_MSG(shard >= 0 && shard < num_shards(),
                 "pin_shard " << shard << " out of range for " << num_shards()
                              << " shards");
  FrontendSession& state = *sessions_[static_cast<std::size_t>(session.index_)];
  if (state.shard >= 0) {
    // Idempotent: pinning a session to the shard it already lives on is
    // a no-op. Moving a placed session is an error — its queued frames
    // and brick residency live on the original shard, and half-moving
    // them would leave the session split; only failover() relocates.
    if (state.shard == shard) return;
    VRMR_CHECK_MSG(false, "session '"
                              << state.profile.name
                              << "' is already placed on shard " << state.shard
                              << "; cannot re-pin to shard " << shard
                              << " (only failover moves placed sessions)");
  }
  state.profile.pin_shard = shard;  // repeated pins just overwrite
}

int ServiceFrontend::place(const volren::Volume* volume) const {
  // Brick affinity first: restrict to shards where the volume is warm,
  // when any. Then least outstanding predicted cost; ties break on the
  // lowest shard index (determinism). The warm probe scans the shard's
  // cache, so run it once per shard.
  std::vector<bool> warm(static_cast<std::size_t>(num_shards()));
  bool any_warm = false;
  for (int s = 0; s < num_shards(); ++s) {
    warm[static_cast<std::size_t>(s)] =
        shards_[static_cast<std::size_t>(s)].service->volume_warm(volume);
    any_warm = any_warm || warm[static_cast<std::size_t>(s)];
  }
  int best = -1;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int s = 0; s < num_shards(); ++s) {
    if (shards_[static_cast<std::size_t>(s)].service->crashed()) continue;
    if (any_warm && !warm[static_cast<std::size_t>(s)]) continue;
    const double cost =
        shards_[static_cast<std::size_t>(s)].service->outstanding_cost_s();
    if (cost < best_cost) {
      best = s;
      best_cost = cost;
    }
  }
  // Warm shards may all have crashed; retry against the survivors.
  if (best < 0 && any_warm) {
    for (int s = 0; s < num_shards(); ++s) {
      if (shards_[static_cast<std::size_t>(s)].service->crashed()) continue;
      const double cost =
          shards_[static_cast<std::size_t>(s)].service->outstanding_cost_s();
      if (cost < best_cost) {
        best = s;
        best_cost = cost;
      }
    }
  }
  VRMR_CHECK_MSG(best >= 0, "no surviving shard to place on");
  return best;
}

bool ServiceFrontend::hydrate(int shard_index, int gpu,
                              const volren::Volume* volume, const BrickKey& key,
                              std::uint64_t stored_bytes,
                              std::function<void()> done) {
  (void)gpu;  // the payload lands shard-wide; the plan picks the lane
  // Probe siblings in ascending index order (deterministic replay).
  // BrickKey volume ids are shard-local, so translate through each
  // sibling's own registration before touching its cache.
  Shard& shard = shards_[static_cast<std::size_t>(shard_index)];
  for (int s = 0; s < num_shards(); ++s) {
    if (s == shard_index) continue;
    const Shard& sibling = shards_[static_cast<std::size_t>(s)];
    // A crashed sibling serves nothing, hydration included (its cache
    // is only read by failover()'s warm handoff).
    if (sibling.service->crashed()) continue;
    const std::optional<std::uint64_t> vid =
        sibling.service->volume_id_of(volume);
    if (!vid.has_value()) continue;
    const BrickCache* cache = sibling.service->cache();
    if (cache == nullptr) continue;
    const BrickKey sibling_key{*vid, key.brick_id, key.layout_id};
    bool warm = false;
    for (int g = 0; g < config_.gpus_per_shard && !warm; ++g)
      warm = cache->resident(g, sibling_key);
    if (!warm) continue;
    shard.bytes_hydrated_from_peers += stored_bytes;
    shard.bytes_disk_avoided += stored_bytes;
    ++shard.bricks_hydrated;
    obs::TraceRecorder* trace = trace_;
    std::uint64_t arrow = 0;
    if (trace != nullptr) {
      arrow = trace->next_async_id();
      trace->async_begin(shard.engine->now(), trace_pid_base_ + s, arrow,
                         "hydrate", "hydration",
                         {{"brick", std::to_string(key.brick_id)},
                          {"bytes", std::to_string(stored_bytes)},
                          {"to_shard", std::to_string(shard_index)}});
    }
    // Ship the stored payload over the requesting shard's fabric; the
    // plan resumes (H2D onward) when the transfer lands. Reliable send:
    // an injected drop (fault plan) retransmits instead of wedging the
    // plan forever on a done() that never fires.
    shard.fabric->send_reliable(
        s, shard_index, stored_bytes,
        [trace, arrow, pid = trace_pid_base_ + shard_index,
         engine = shard.engine.get(), done = std::move(done)] {
          if (trace != nullptr) {
            trace->async_end(engine->now(), pid, arrow, "hydrate", "hydration");
          }
          done();
        });
    return true;
  }
  return false;  // no warm sibling: the plan falls back to disk
}

std::uint64_t ServiceFrontend::session_submit(int session, RenderRequest request) {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  // Validate before placing: a rejected first submit must not pin the
  // session to a shard chosen from the invalid request.
  VRMR_CHECK_MSG(request.volume != nullptr, "RenderRequest.volume must be set");
  VRMR_CHECK_MSG(std::isfinite(request.arrival_s) && request.arrival_s >= 0.0,
                 "arrival time must be finite and non-negative, got "
                     << request.arrival_s);
  FrontendSession& state = *sessions_[static_cast<std::size_t>(session)];
  if (state.shard < 0) {
    // Probe every shard's registration guard before pinning: a volume
    // reshaped without invalidation must reject the submit no matter
    // which shard placement would pick (its stale registration may
    // live on a shard that has since gone cold), and the session stays
    // free to place elsewhere on retry after invalidate_volume.
    for (const Shard& shard : shards_)
      shard.service->check_volume_compatible(request.volume);
    int chosen = state.profile.pin_shard.has_value() ? *state.profile.pin_shard
                                                     : place(request.volume);
    // A pin naming a crashed shard cannot be honored; fall back to the
    // placement policy over the survivors rather than queueing frames a
    // dead service will never serve.
    if (shards_[static_cast<std::size_t>(chosen)].service->crashed())
      chosen = place(request.volume);
    state.shard = chosen;
    Shard& shard = shards_[static_cast<std::size_t>(state.shard)];
    state.inner = shard.service->open_session(state.profile);
    ++shard.sessions_placed;
    // Install COPIES of the retained client callbacks: failover
    // re-installs the originals on the replacement shard's session.
    if (state.client_callback)
      state.inner.on_frame(translate(session, state.client_callback));
    if (state.client_tile_callback)
      state.inner.on_tile(translate_tile(session, state.client_tile_callback));
    VRMR_DEBUG("frontend") << "session '" << state.profile.name
                           << "' placed on shard " << state.shard;
  }
  return state.inner.submit(std::move(request));
}

FrameCallback ServiceFrontend::translate(int session, FrameCallback callback) {
  // Shard-local session indices collide across shards; deliver records
  // carrying the frontend-wide session index instead.
  return [session, callback = std::move(callback)](const FrameRecord& frame) {
    FrameRecord translated = frame;
    translated.session = session;
    callback(translated);
  };
}

void ServiceFrontend::session_on_frame(int session, FrameCallback callback) {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  FrontendSession& state = *sessions_[static_cast<std::size_t>(session)];
  state.client_callback = std::move(callback);
  if (state.shard >= 0)
    state.inner.on_frame(translate(session, state.client_callback));
}

TileCallback ServiceFrontend::translate_tile(int session, TileCallback callback) {
  return [session, callback = std::move(callback)](const TileRecord& tile) {
    TileRecord translated = tile;
    translated.session = session;
    callback(translated);
  };
}

void ServiceFrontend::session_on_tile(int session, TileCallback callback) {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  FrontendSession& state = *sessions_[static_cast<std::size_t>(session)];
  state.client_tile_callback = std::move(callback);
  if (state.shard >= 0)
    state.inner.on_tile(translate_tile(session, state.client_tile_callback));
}

SessionStats ServiceFrontend::session_stats(int session) const {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  const FrontendSession& state = *sessions_[static_cast<std::size_t>(session)];
  if (state.shard < 0) {
    SessionStats empty;
    empty.name = state.profile.name;
    empty.priority = state.profile.priority;
    return empty;
  }
  return state.inner.stats();
}

const SessionProfile& ServiceFrontend::session_profile(int session) const {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  return sessions_[static_cast<std::size_t>(session)]->profile;
}

void ServiceFrontend::install_fault_plan(const fault::FaultPlan& plan) {
  // Fabric events install one deterministic injector per addressed
  // shard's fabric; everything else routes to that shard's service.
  struct PendingFabricFault {
    fault::FaultKind kind;
    double time_s;
    std::int64_t msg_seq;  // exact ordinal when >= 0 (FaultEvent::target)
    double extra_delay_s;
    bool consumed = false;
  };
  std::vector<std::vector<PendingFabricFault>> fabric_faults(
      static_cast<std::size_t>(num_shards()));
  for (const fault::FaultEvent& event : plan.events()) {
    VRMR_CHECK_MSG(event.shard >= 0 && event.shard < num_shards(),
                   "fault event addresses shard " << event.shard << " but the "
                   "farm has " << num_shards());
    if (event.kind == fault::FaultKind::FabricDrop ||
        event.kind == fault::FaultKind::FabricDelay) {
      fabric_faults[static_cast<std::size_t>(event.shard)].push_back(
          {event.kind, event.time_s, event.target, event.param_s});
      continue;
    }
    shards_[static_cast<std::size_t>(event.shard)].service->inject_fault(event);
  }
  for (int s = 0; s < num_shards(); ++s) {
    auto& pending = fabric_faults[static_cast<std::size_t>(s)];
    if (pending.empty()) continue;
    Shard& shard = shards_[static_cast<std::size_t>(s)];
    VRMR_CHECK_MSG(shard.fabric != nullptr,
                   "fabric fault addresses shard " << s
                       << " but a single-shard farm has no fabric");
    // Each event fires once: it hits the exact message ordinal when
    // target >= 0, else the first message sent at/after its time_s.
    // Closure state is deterministic — replaying the same plan against
    // the same workload reproduces the same drops bit-for-bit.
    shard.fabric->set_fault_injector(
        [state = std::make_shared<std::vector<PendingFabricFault>>(
             std::move(pending)),
         engine = shard.engine.get()](int, int, std::uint64_t,
                                      std::uint64_t msg_seq) {
          net::FaultDecision decision;
          for (PendingFabricFault& fault : *state) {
            if (fault.consumed) continue;
            const bool hit = fault.msg_seq >= 0
                                 ? static_cast<std::uint64_t>(fault.msg_seq) ==
                                       msg_seq
                                 : engine->now() >= fault.time_s;
            if (!hit) continue;
            fault.consumed = true;
            if (fault.kind == fault::FaultKind::FabricDrop)
              decision.drop = true;
            else
              decision.extra_delay_s += fault.extra_delay_s;
          }
          return decision;
        });
  }
}

void ServiceFrontend::failover(int crashed_shard) {
  VRMR_CHECK_MSG(crashed_shard >= 0 && crashed_shard < num_shards(),
                 "failover shard " << crashed_shard << " out of range");
  Shard& crashed = shards_[static_cast<std::size_t>(crashed_shard)];
  VRMR_CHECK_MSG(crashed.service->crashed(),
                 "failover(" << crashed_shard << ") on a live shard");
  if (crashed.failed_over) return;
  crashed.failed_over = true;
  ++failovers_;
  const std::vector<RenderService::UnservedFrame>& unserved =
      crashed.service->unserved_frames();
  VRMR_WARN("frontend") << "shard " << crashed_shard << " crashed with "
                        << unserved.size()
                        << " unserved frame(s); failing over";

  // Pass 1: re-pin every orphaned session onto the least-loaded
  // survivor and warm the target with the crashed cache's bricks for
  // that session's unserved volumes. Sessions move in open order
  // (determinism); each picks its target independently so a big crash
  // spreads over the farm instead of dogpiling one sibling.
  std::unordered_map<int, int> inner_to_front;  // crashed-local -> frontend
  std::vector<double> ready_s(sessions_.size(), 0.0);
  for (int session = 0; session < num_sessions(); ++session) {
    FrontendSession& state = *sessions_[static_cast<std::size_t>(session)];
    if (state.shard != crashed_shard) continue;
    const int old_inner = state.inner.index_;
    inner_to_front[old_inner] = session;
    int target = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int s = 0; s < num_shards(); ++s) {
      if (shards_[static_cast<std::size_t>(s)].service->crashed()) continue;
      const double cost =
          shards_[static_cast<std::size_t>(s)].service->outstanding_cost_s();
      if (cost < best_cost) {
        target = s;
        best_cost = cost;
      }
    }
    VRMR_CHECK_MSG(target >= 0, "no surviving shard to fail over to");
    Shard& dest = shards_[static_cast<std::size_t>(target)];
    SessionProfile profile = state.profile;
    profile.pin_shard.reset();  // the pinned shard is gone
    state.shard = target;
    state.inner = dest.service->open_session(std::move(profile));
    ++dest.sessions_placed;
    ++sessions_repinned_;
    if (state.client_callback)
      state.inner.on_frame(translate(session, state.client_callback));
    if (state.client_tile_callback)
      state.inner.on_tile(translate_tile(session, state.client_tile_callback));
    if (trace_ != nullptr) {
      trace_->instant(dest.engine->now(), trace_pid_base_ + target,
                      obs::kServiceTid, "failover.repin", "failover",
                      {{"session", std::to_string(session)},
                       {"from_shard", std::to_string(crashed_shard)},
                       {"to_shard", std::to_string(target)}});
    }

    // Warm handoff: push the crashed cache's resident copies of this
    // session's unserved bricks to the target over its fabric, once per
    // (volume, layout) pair. ready_s floors the re-issued frames'
    // arrivals at a serialization-sum estimate of the handoff window —
    // a slight overestimate (per-message latency overlaps in truth), so
    // by then every pushed brick has landed and the frames render warm.
    double session_ready_s = dest.engine->now();
    if (config_.failover_prepush && dest.fabric != nullptr &&
        crashed.service->cache() != nullptr) {
      std::set<std::pair<const volren::Volume*, std::uint64_t>> pushed;
      for (const RenderService::UnservedFrame& frame : unserved) {
        if (frame.session != old_inner) continue;
        if (frame.layout == nullptr) continue;
        if (!pushed.insert({frame.request.volume, frame.layout_sig}).second)
          continue;
        const std::optional<std::uint64_t> vid =
            crashed.service->volume_id_of(frame.request.volume);
        if (!vid.has_value()) continue;
        for (const volren::BrickInfo& brick : frame.layout->bricks()) {
          const BrickKey key{*vid, brick.id, frame.layout_sig};
          std::optional<BrickCache::Residency> payload;
          for (int g = 0; g < config_.gpus_per_shard && !payload; ++g)
            payload = crashed.service->cache()->payload_of(g, key);
          if (!payload) continue;  // cold on the crashed shard too
          const int gpu = brick.id % config_.gpus_per_shard;
          ++bricks_prepushed_;
          bytes_prepushed_ += payload->stored_bytes;
          session_ready_s += dest.fabric->ideal_transfer_time(
              crashed_shard, target, payload->stored_bytes);
          obs::TraceRecorder* trace = trace_;
          std::uint64_t arrow = 0;
          if (trace != nullptr) {
            arrow = trace->next_async_id();
            trace->async_begin(dest.engine->now(),
                               trace_pid_base_ + crashed_shard, arrow,
                               "failover.push", "failover",
                               {{"brick", std::to_string(brick.id)},
                                {"bytes", std::to_string(payload->stored_bytes)},
                                {"to_shard", std::to_string(target)}});
          }
          // send_reliable: an injected drop retransmits — the handoff
          // completes late instead of silently shedding a brick.
          dest.fabric->send_reliable(
              crashed_shard, target, payload->stored_bytes,
              [service = dest.service.get(), volume = frame.request.volume,
               brick_id = brick.id, layout_sig = frame.layout_sig, gpu,
               stored = payload->stored_bytes,
               logical = payload->logical_bytes, trace, arrow,
               pid = trace_pid_base_ + target, engine = dest.engine.get()] {
                if (trace != nullptr) {
                  trace->async_end(engine->now(), pid, arrow, "failover.push",
                                   "failover");
                }
                service->admit_pushed_brick(volume, brick_id, layout_sig, gpu,
                                            stored, logical);
              });
        }
      }
    }
    ready_s[static_cast<std::size_t>(session)] = session_ready_s;
  }

  // Pass 2: re-issue the crash snapshot in global submission order
  // (frame_id ascending — unserved_frames() is already sorted), each
  // frame on its session's new shard, arrival floored at the handoff
  // window so re-issued work renders against the pushed bricks.
  for (const RenderService::UnservedFrame& frame : unserved) {
    const auto it = inner_to_front.find(frame.session);
    if (it == inner_to_front.end()) continue;  // not a frontend session
    FrontendSession& state = *sessions_[static_cast<std::size_t>(it->second)];
    RenderRequest request = frame.request;
    request.arrival_s = std::max(
        request.arrival_s, ready_s[static_cast<std::size_t>(it->second)]);
    state.inner.submit(std::move(request));
    ++frames_reissued_;
  }
}

void ServiceFrontend::drain() {
  // A callback running on one shard may submit frames that place onto
  // an already-drained shard (brick affinity), so loop until every
  // shard's queue is empty. A shard that crashed mid-drain fails over
  // on the next sweep: its sessions re-pin and its unserved frames
  // re-issue onto survivors, which the loop then drains.
  bool any_served = true;
  while (any_served) {
    any_served = false;
    for (int s = 0; s < num_shards(); ++s) {
      Shard& shard = shards_[static_cast<std::size_t>(s)];
      if (shard.service->crashed()) {
        if (!shard.failed_over) {
          failover(s);
          any_served = true;
        }
        continue;
      }
      if (shard.service->queued_frames() == 0) continue;
      shard.service->drain();
      any_served = true;
    }
  }
}

void ServiceFrontend::invalidate_volume(const volren::Volume* volume) {
  for (Shard& shard : shards_) shard.service->invalidate_volume(volume);
}

void ServiceFrontend::set_trace(obs::TraceRecorder* recorder, int pid_base) {
  trace_ = recorder;
  trace_pid_base_ = pid_base;
  for (int s = 0; s < num_shards(); ++s) {
    shards_[static_cast<std::size_t>(s)].service->set_trace(recorder,
                                                            pid_base + s);
  }
}

FrontendStats ServiceFrontend::stats() const {
  FrontendStats out;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (int s = 0; s < num_shards(); ++s) {
    const Shard& shard = shards_[static_cast<std::size_t>(s)];
    ShardStats detail;
    detail.shard = s;
    detail.sessions = shard.sessions_placed;
    detail.bytes_hydrated_from_peers = shard.bytes_hydrated_from_peers;
    detail.bytes_disk_avoided = shard.bytes_disk_avoided;
    detail.bricks_hydrated = shard.bricks_hydrated;
    detail.service = shard.service->stats();
    out.frames_total += detail.service.frames_total;
    out.makespan_s = std::max(out.makespan_s, detail.service.makespan_s);
    out.bytes_h2d_saved += detail.service.bytes_h2d_saved;
    out.bytes_hydrated_from_peers += detail.bytes_hydrated_from_peers;
    out.bytes_disk_avoided += detail.bytes_disk_avoided;
    out.bricks_hydrated += detail.bricks_hydrated;
    hits += detail.service.cache.hits;
    misses += detail.service.cache.misses;
    out.shards.push_back(std::move(detail));
  }
  out.failovers = failovers_;
  out.sessions_repinned = sessions_repinned_;
  out.frames_reissued = frames_reissued_;
  out.bricks_prepushed = bricks_prepushed_;
  out.bytes_prepushed = bytes_prepushed_;
  out.fps = out.makespan_s > 0.0 ? out.frames_total / out.makespan_s : 0.0;
  out.cache_hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;

  // Time-aligned farm windows: shards share bin boundaries (same
  // stats_window_s on parallel simulated timelines), so merging keys on
  // the bin index — llround is exact for start_s values the shards
  // themselves computed as bin * width. Counters sum (each farm bin
  // partitions exactly into the shard bins it merged); utilization is
  // re-derived over the farm's capacity.
  const double width = config_.service.stats_window_s;
  if (width > 0.0) {
    std::map<std::int64_t, ServiceWindow> merged;
    for (const ShardStats& detail : out.shards) {
      for (const ServiceWindow& w : detail.service.windows) {
        ServiceWindow& m = merged[std::llround(w.start_s / width)];
        m.start_s = w.start_s;
        m.window_s = width;
        m.frames_finished += w.frames_finished;
        m.quanta_issued += w.quanta_issued;
        m.preemptions += w.preemptions;
        m.tiles += w.tiles;
        m.gpu_busy_s += w.gpu_busy_s;
      }
    }
    const double capacity = width * static_cast<double>(config_.shards) *
                            static_cast<double>(config_.gpus_per_shard);
    out.windows.reserve(merged.size());
    for (auto& [bin, window] : merged) {
      (void)bin;
      window.utilization =
          capacity > 0.0
              ? std::min(1.0, std::max(0.0, window.gpu_busy_s / capacity))
              : 0.0;
      out.windows.push_back(window);
    }
  }
  return out;
}

}  // namespace vrmr::service
