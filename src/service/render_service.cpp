#include "service/render_service.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <utility>

#include "mr/analysis.hpp"
#include "mr/frame_plan.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "volren/fragment.hpp"
#include "volren/raycast.hpp"

namespace vrmr::service {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Serve-order tie-break: smaller key wins, then smaller frame_id —
/// global submission order, never session open order.
struct PickKey {
  double primary = 0.0;
  std::uint64_t frame_id = 0;

  bool operator<(const PickKey& other) const {
    if (primary != other.primary) return primary < other.primary;
    return frame_id < other.frame_id;
  }
};

/// The window bin of `bins` containing simulated time `t` (created on
/// first touch; start/width stamped so the bin is self-describing).
ServiceWindow& bin_at(std::map<std::int64_t, ServiceWindow>& bins, double width,
                      double t) {
  const auto b = static_cast<std::int64_t>(std::floor(t / width));
  ServiceWindow& window = bins[b];
  window.start_s = static_cast<double>(b) * width;
  window.window_s = width;
  return window;
}

/// Spread `busy_s` uniformly over [t0, t1] across the bins it overlaps
/// (degenerate interval: all of it lands in t1's bin).
void spread_busy(std::map<std::int64_t, ServiceWindow>& bins, double width,
                 double t0, double t1, double busy_s) {
  if (busy_s <= 0.0) return;
  if (t1 <= t0) {
    bin_at(bins, width, t1).gpu_busy_s += busy_s;
    return;
  }
  const double rate = busy_s / (t1 - t0);
  const auto b0 = static_cast<std::int64_t>(std::floor(t0 / width));
  const auto b1 = static_cast<std::int64_t>(std::floor(t1 / width));
  for (auto b = b0; b <= b1; ++b) {
    const double lo = std::max(t0, static_cast<double>(b) * width);
    const double hi = std::min(t1, static_cast<double>(b + 1) * width);
    if (hi <= lo) continue;
    bin_at(bins, width, lo).gpu_busy_s += rate * (hi - lo);
  }
}

/// Quantile summary of a registry histogram (zero-filled when absent
/// or empty — the class completed no frames yet).
LatencyQuantiles quantiles_from(const obs::LogHistogram* histogram) {
  LatencyQuantiles q;
  if (histogram == nullptr || histogram->count() == 0) return q;
  q.count = histogram->count();
  q.mean_s = histogram->mean();
  q.p50_s = histogram->quantile(0.50);
  q.p95_s = histogram->quantile(0.95);
  q.p99_s = histogram->quantile(0.99);
  q.p999_s = histogram->quantile(0.999);
  return q;
}

}  // namespace

const char* to_string(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::Fifo: return "fifo";
    case SchedulingPolicy::RoundRobin: return "round-robin";
    case SchedulingPolicy::ShortestJobFirst: return "sjf";
  }
  return "?";
}

const char* to_string(PipelineMode mode) {
  switch (mode) {
    case PipelineMode::Monolithic: return "monolithic";
    case PipelineMode::Quantum: return "quantum";
  }
  return "?";
}

RenderService::RenderService(cluster::Cluster& cluster, ServiceConfig config)
    : cluster_(cluster), config_(config) {
  if (config_.enable_brick_cache) {
    const std::uint64_t capacity =
        config_.cache_capacity_override > 0
            ? config_.cache_capacity_override
            : BrickCache::capacity_for(cluster_.config().hw.gpu,
                                       config_.cache_reserve_bytes);
    cache_.emplace(cluster_.total_gpus(), capacity, config_.cache_policy);
  }
  lane_busy_.assign(static_cast<std::size_t>(cluster_.total_gpus()), 0);
  lane_dead_.assign(static_cast<std::size_t>(cluster_.total_gpus()), 0);
  lane_retry_at_.assign(static_cast<std::size_t>(cluster_.total_gpus()), 0.0);
}

RenderService::~RenderService() = default;

Session RenderService::open_session(SessionProfile profile) {
  auto state = std::make_unique<SessionState>();
  state->profile = std::move(profile);
  sessions_.push_back(std::move(state));
  return Session(this, num_sessions() - 1);
}

void RenderService::set_trace(obs::TraceRecorder* recorder, int pid) {
  trace_ = recorder;
  trace_pid_ = pid;
  if (recorder == nullptr) return;
  // Metadata up front so every track is named even in a partial trace.
  recorder->set_process_name(pid, "shard" + std::to_string(pid));
  recorder->set_thread_name(pid, obs::kServiceTid, "service");
  for (int g = 0; g < cluster_.total_gpus(); ++g) {
    recorder->set_thread_name(pid, g, "gpu" + std::to_string(g) + " lane");
    // At most one frame per priority class is active, so one reducer
    // track per class suffices (bases match make_active_frame).
    recorder->set_thread_name(pid, 1000 + g,
                              "interactive reducer " + std::to_string(g));
    recorder->set_thread_name(pid, 2000 + g,
                              "batch reducer " + std::to_string(g));
  }
}

void RenderService::check_volume_compatible(const volren::Volume* volume) const {
  const auto it = volumes_.find(volume);
  if (it == volumes_.end()) return;  // unregistered: anything goes
  // The footgun this closes: destroying a volume and allocating a
  // different-shaped one at the same address without telling the
  // service. Same-shaped reuse is indistinguishable from legitimate
  // re-submission and stays the caller's responsibility
  // (invalidate_volume re-keys the address).
  VRMR_CHECK_MSG(it->second.dims == volume->dims(),
                 "volume @" << volume << " registered with dims "
                            << it->second.dims << " but now has "
                            << volume->dims()
                            << "; call invalidate_volume before reusing "
                               "the address with different voxels");
}

const RenderService::VolumeRegistration& RenderService::register_volume(
    const volren::Volume* volume) {
  check_volume_compatible(volume);
  const auto [it, inserted] = volumes_.try_emplace(
      volume, VolumeRegistration{next_volume_id_, generation_, volume->dims()});
  if (inserted) ++next_volume_id_;
  return it->second;
}

std::uint64_t RenderService::session_submit(int session, RenderRequest request) {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  VRMR_CHECK_MSG(request.volume != nullptr, "RenderRequest.volume must be set");
  VRMR_CHECK_MSG(std::isfinite(request.arrival_s) && request.arrival_s >= 0.0,
                 "arrival time must be finite and non-negative, got "
                     << request.arrival_s);
  (void)register_volume(request.volume);  // register + dims guard

  Pending pending;
  pending.frame_id = next_frame_id_++;
  // Memoize the decomposition once: every scheduling probe, prefetch
  // pass and the render itself reuse it.
  pending.layout = std::make_shared<const volren::BrickLayout>(
      volren::choose_layout(*request.volume, request.options,
                            cluster_.total_gpus()));
  ++layouts_built_;
  // BrickLayout::signature() keys cached payloads; it mixes volume dims
  // too, so a pyramid level layout of one volume can never alias the
  // base layout of a half-size volume (lod/pyramid.hpp).
  pending.layout_sig = pending.layout->signature();
  pending.submit_dims = request.volume->dims();
  pending.submit_floor_s = cluster_.engine().now();
  pending.request = std::move(request);
  pending.submit_cost_s = estimate_cost_s(pending);

  const std::uint64_t id = pending.frame_id;
  sessions_[static_cast<std::size_t>(session)]->queue.push_back(
      std::move(pending));
  // A frame submitted mid-drain (from a tile or frame callback) must be
  // able to preempt at the next brick boundary even when no scheduler
  // event is otherwise due — e.g. during a batch frame's reduce tail
  // every GPU lane is idle and nothing would call pump() until that
  // frame finishes. Hand the scheduler a fresh event at the current
  // clock; pump() is idempotent, so bursts of submissions are fine.
  if (draining_ && config_.pipeline == PipelineMode::Quantum) {
    cluster_.engine().schedule_after(0.0, [this] {
      if (draining_) pump();
    });
  }
  return id;
}

void RenderService::session_on_frame(int session, FrameCallback callback) {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  sessions_[static_cast<std::size_t>(session)]->callback = std::move(callback);
}

void RenderService::session_on_tile(int session, TileCallback callback) {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  sessions_[static_cast<std::size_t>(session)]->tile_callback = std::move(callback);
}

SessionStats RenderService::session_stats(int session) const {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  return stats_for(session);
}

const SessionProfile& RenderService::session_profile(int session) const {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  return sessions_[static_cast<std::size_t>(session)]->profile;
}

void RenderService::invalidate_volume(const volren::Volume* volume) {
  // The erase below is what re-keys the address (volume ids are never
  // reused); the generation bump records the new registration epoch,
  // which the dims guard in register_volume is scoped to.
  ++generation_;
  const auto it = volumes_.find(volume);
  if (it == volumes_.end()) return;
  const std::uint64_t vid = it->second.id;
  if (cache_) cache_->invalidate_volume(vid);
  // Quality metadata is derived from the retired registration's voxels:
  // drop pyramids/occupancy and every memoized TF classification so a
  // re-registered volume rebuilds them from its new contents.
  std::erase_if(quality_, [vid](const auto& entry) {
    return entry.first.first == vid;
  });
  classifications_.invalidate_volume(vid);
  volumes_.erase(it);
}

int RenderService::queued_frames() const {
  int queued = 0;
  for (const auto& session : sessions_)
    queued += static_cast<int>(session->queue.size());
  return queued;
}

double RenderService::outstanding_cost_s() const {
  double total = 0.0;
  for (int s = 0; s < num_sessions(); ++s) total += outstanding_cost_for_session(s);
  return total;
}

double RenderService::outstanding_cost_for_session(int session) const {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "outstanding_cost_for_session: unknown session " << session);
  const SessionState& state = *sessions_[static_cast<std::size_t>(session)];
  double raw = 0.0;
  for (const Pending& pending : state.queue) raw += pending.submit_cost_s;
  return state.cost_scale * raw;
}

bool RenderService::volume_warm(const volren::Volume* volume) const {
  if (!cache_) return false;
  const auto it = volumes_.find(volume);
  if (it == volumes_.end()) return false;
  return cache_->resident_bytes_for_volume(it->second.id) > 0;
}

double RenderService::earliest_head_arrival() const {
  double earliest = kInf;
  for (const auto& session : sessions_) {
    if (session->queue.empty()) continue;
    earliest = std::min(earliest, session->queue.front().effective_arrival_s());
  }
  return earliest;
}

int RenderService::pick_next(double now, double* predicted_cost_s,
                             bool interactive_only) const {
  // Priority admission: when any Interactive head has arrived, Batch
  // heads do not compete this round (the policy orders within a class).
  bool interactive_arrived = false;
  for (const auto& session : sessions_) {
    if (session->profile.priority != Priority::Interactive) continue;
    if (session->queue.empty()) continue;
    if (session->queue.front().effective_arrival_s() <= now) {
      interactive_arrived = true;
      break;
    }
  }

  *predicted_cost_s = -1.0;

  // Batch aging: a Batch head that has waited past batch_aging_s
  // outranks every un-aged head regardless of policy (oldest arrival
  // first, ties by frame_id), so a sustained interactive burst cannot
  // starve batch work — its queue wait is bounded near the aging
  // threshold. Only under interactive pressure: with no arrived
  // Interactive head there is nothing to starve batch work, and the
  // configured policy must keep ordering batch-vs-batch. Rate-limited
  // to one aged admission per aging period: a deep backlog's heads are
  // perpetually pre-aged (they waited behind their own siblings), and
  // without the limit they would win every pick and invert priority.
  // Aged heads never enter the preemption path (interactive_only): the
  // single batch slot still applies.
  if (interactive_arrived && !interactive_only && config_.batch_aging_s > 0.0 &&
      now - last_batch_admission_s_ >= config_.batch_aging_s) {
    int aged = -1;
    PickKey aged_key{};
    for (int s = 0; s < num_sessions(); ++s) {
      const SessionState& session = *sessions_[static_cast<std::size_t>(s)];
      if (session.profile.priority != Priority::Batch) continue;
      if (session.queue.empty()) continue;
      const Pending& head = session.queue.front();
      const double arrival = head.effective_arrival_s();
      if (arrival > now || now - arrival < config_.batch_aging_s) continue;
      const PickKey key{arrival, head.frame_id};
      if (aged < 0 || key < aged_key) {
        aged = s;
        aged_key = key;
      }
    }
    if (aged >= 0) return aged;
  }

  int best = -1;
  PickKey best_key{};
  for (int s = 0; s < num_sessions(); ++s) {
    const SessionState& session = *sessions_[static_cast<std::size_t>(s)];
    if (session.queue.empty()) continue;
    const bool interactive = session.profile.priority == Priority::Interactive;
    if (interactive_only && !interactive) continue;
    const Pending& head = session.queue.front();
    if (head.effective_arrival_s() > now) continue;  // not arrived yet
    if (interactive_arrived && !interactive) continue;

    PickKey key;
    key.frame_id = head.frame_id;
    switch (config_.policy) {
      case SchedulingPolicy::Fifo:
        key.primary = head.effective_arrival_s();
        break;
      case SchedulingPolicy::RoundRobin:
        // Least recently served session first; never-served sessions
        // (seq 0) go ahead in submission order (frame_id tie-break).
        key.primary = static_cast<double>(session.last_served_seq);
        break;
      case SchedulingPolicy::ShortestJobFirst:
        key.primary = scaled_cost(s, head);
        break;
    }
    if (best < 0 || key < best_key) {
      best = s;
      best_key = key;
      if (config_.policy == SchedulingPolicy::ShortestJobFirst)
        *predicted_cost_s = key.primary;
    }
  }
  return best;
}

void RenderService::advance_clock_to(double t) {
  auto& engine = cluster_.engine();
  if (t <= engine.now()) return;
  engine.schedule_at(t, [] {});
  engine.run();
}

double RenderService::estimate_cost_s(const Pending& pending, int lod) const {
  const RenderRequest& req = pending.request;
  const volren::Volume& volume = *req.volume;
  const int gpus = cluster_.total_gpus();
  const volren::BrickLayout& layout = *pending.layout;

  // A-priori counters for mr::speed_of_light. These are coarse — a
  // centered orbit framing covers roughly half the image, each covered
  // ray samples about one mean volume axis — but SJF only needs the
  // relative ordering, which volume size, image size and residency
  // dominate. The online per-session EWMA (scaled_cost) absorbs the
  // systematic error against observed service times.
  mr::JobStats pred;
  pred.num_gpus = gpus;
  pred.num_nodes = cluster_.num_nodes();

  const double rays = 0.5 * static_cast<double>(req.options.image_width) *
                      static_cast<double>(req.options.image_height);
  const Int3 dims = volume.dims();
  const double mean_axis = static_cast<double>(dims.x + dims.y + dims.z) / 3.0;
  // Pyramid level `lod` steps at a 2^lod x longer voxel edge: ~2^lod
  // fewer samples per covered ray (the fragment/network volume is
  // unchanged — the kernel still launches the same projected rects).
  pred.total_samples = static_cast<std::uint64_t>(
      rays * mean_axis * static_cast<double>(req.options.cast.sampling_rate) /
      static_cast<double>(std::uint64_t{1} << lod));

  const Int3 grid = layout.grid_dims();
  const double layers =
      std::cbrt(static_cast<double>(grid.x) * grid.y * grid.z);  // bricks per ray
  const double fragments = rays * layers;
  const double pair_bytes = 4.0 + static_cast<double>(sizeof(volren::RayFragment));
  pred.fragments = static_cast<std::uint64_t>(fragments);
  pred.bytes_d2h = static_cast<std::uint64_t>(fragments * pair_bytes);
  pred.bytes_net = pred.bytes_d2h;
  pred.bytes_net_inter = static_cast<std::uint64_t>(
      static_cast<double>(pred.bytes_net) *
      static_cast<double>(pred.num_nodes - 1) / static_cast<double>(pred.num_nodes));

  // H2D: only bricks that are NOT already resident on the GPU they will
  // be dealt to (mr::FramePlan deals unpinned chunks round-robin in add
  // order, so brick i lands on GPU i % gpus).
  std::uint64_t vid = 0;
  bool registered = false;
  if (const auto it = volumes_.find(req.volume); it != volumes_.end()) {
    vid = it->second.id;
    registered = true;
  }
  const bool cache_aware = cache_.has_value() && registered;
  // A coarse estimate stages coarse bricks: exact level layout + cache
  // signature when the pyramid already exists, else ~8^lod smaller
  // bytes assumed cold (the pyramid is built at first degraded serve).
  const lod::LodLevel* level = nullptr;
  // Compressed serving stages stored bytes: use the memoized plans when
  // they exist (first compressed admission builds them; until then the
  // estimate conservatively assumes logical sizes — the EWMA absorbs
  // the one-frame error).
  const compress::CompressionPlan* base_plan = nullptr;
  const compress::CompressionPlan* level_plan = nullptr;
  if (registered) {
    const auto qit = quality_.find({vid, pending.layout_sig});
    if (qit != quality_.end()) {
      if (lod > 0 && qit->second.pyramid != nullptr &&
          lod < qit->second.pyramid->num_levels()) {
        level = &qit->second.pyramid->level(lod);
        if (lod < static_cast<int>(qit->second.level_compression.size())) {
          level_plan = qit->second.level_compression[static_cast<std::size_t>(lod)]
                           .get();
        }
      }
      base_plan = qit->second.compression.get();
    }
  }
  std::uint64_t h2d = 0;
  int deal = 0;
  for (const volren::BrickInfo& brick : layout.bricks()) {
    const int gpu = deal++ % gpus;
    std::uint64_t bytes = brick.device_bytes() >> (3 * lod);
    std::uint64_t sig = pending.layout_sig;
    if (level != nullptr) {
      bytes = level_plan != nullptr
                  ? level_plan->brick(brick.id).stored_bytes
                  : level->layout->brick(brick.id).device_bytes();
      sig = level->cache_signature;
    } else if (lod == 0 && base_plan != nullptr) {
      bytes = base_plan->brick(brick.id).stored_bytes;
    }
    const bool warm =
        cache_aware && cache_->resident(gpu, BrickKey{vid, brick.id, sig});
    if (!warm) h2d += bytes;
  }
  pred.bytes_h2d = h2d;
  if (req.options.include_disk_io) pred.bytes_disk = h2d;

  const mr::SpeedOfLight sol = mr::speed_of_light(pred, cluster_.config());
  // Serial bound + disk (analysis excludes disk from its bounds; a
  // served frame still pays it).
  return sol.serial_bound_s + sol.disk_s;
}

double RenderService::scaled_cost(int session_index, const Pending& pending) const {
  return sessions_[static_cast<std::size_t>(session_index)]->cost_scale *
         estimate_cost_s(pending);
}

void RenderService::check_serve_dims(const Pending& head) const {
  // The memoized layout describes the volume as it was at submit; a
  // queued frame must not render a reshaped volume with it (an
  // invalidate_volume + same-address reallocation re-registers
  // cleanly, so the register_volume guard cannot catch this case).
  // Checked before any state mutation.
  VRMR_CHECK_MSG(head.request.volume->dims() == head.submit_dims,
                 "volume @" << head.request.volume << " had dims "
                            << head.submit_dims << " when frame "
                            << head.frame_id
                            << " was submitted but now has "
                            << head.request.volume->dims()
                            << "; queued frames cannot outlive their "
                               "volume's shape");
}

mr::StagingHook RenderService::make_staging_hook(const Pending& pending) {
  if (!cache_) return mr::StagingHook{};
  // Re-resolve the registration at serve time: an invalidation between
  // submit and serve re-keys the address (and re-checks dims).
  const std::uint64_t vid = register_volume(pending.request.volume).id;
  const std::uint64_t lid = pending.layout_sig;
  // `this` is safe to capture: the hook lives inside a plan the service
  // owns, and the service outlives every active frame.
  return [this, vid, lid](int gpu, const mr::Chunk& chunk) {
    const auto* brick = dynamic_cast<const volren::BrickChunk*>(&chunk);
    if (brick == nullptr) return false;  // non-brick chunks are never cached
    // LOD chunks carry their level layout's signature so coarse
    // payloads are first-class (tiny) cache entries distinct from the
    // full-resolution brick; base chunks fall back to the memoized
    // frame layout signature.
    const std::uint64_t sig =
        brick->cache_signature() != 0 ? brick->cache_signature() : lid;
    BrickCache::LookupOutcome outcome;
    // The cache budgets what VRAM holds: the stored (compressed)
    // payload. The logical size rides along for the residency-
    // multiplier counters (logical == stored when uncompressed).
    const bool hit = cache_->lookup_or_admit(
        gpu, BrickKey{vid, brick->info().id, sig}, chunk.stored_bytes(), &outcome,
        chunk.device_bytes());
    if (trace_ != nullptr) {
      obs::TraceArgs args{{"brick", std::to_string(brick->info().id)}};
      if (outcome.ghost_b1) args.emplace_back("ghost", "b1");
      if (outcome.ghost_b2) args.emplace_back("ghost", "b2");
      trace_->instant(cluster_.engine().now(), trace_pid_, gpu,
                      hit ? "cache_hit" : "cache_miss", "cache", std::move(args));
    }
    return hit;
  };
}

void RenderService::open_window(double arrival_s) {
  // Open (or widen) the serving window, and snapshot GPU busy at the
  // first-ever serve: the shared cluster may have run foreign work
  // before this service's window, which utilization must not charge.
  if (!window_open_) {
    gpu_busy_at_window_open_ = cluster_.total_gpu_busy();
    window_start_s_ = arrival_s;
    window_open_ = true;
    // Windowed busy attribution starts here too.
    busy_sample_t_ = cluster_.engine().now();
    busy_sample_ = gpu_busy_at_window_open_;
  } else if (arrival_s < window_start_s_) {
    window_start_s_ = arrival_s;
  }
}

ServiceWindow& RenderService::window_at(double t) {
  if (config_.stats_window_s <= 0.0) return window_sink_;
  return bin_at(windows_, config_.stats_window_s, t);
}

void RenderService::sample_gpu_busy() {
  const double now = cluster_.engine().now();
  const double busy = cluster_.total_gpu_busy();
  if (config_.stats_window_s > 0.0) {
    spread_busy(windows_, config_.stats_window_s, busy_sample_t_, now,
                busy - busy_sample_);
  }
  busy_sample_t_ = now;
  busy_sample_ = busy;
}

void RenderService::calibrate(int session_index, const FrameRecord& record,
                              double raw_cost_s) {
  const double alpha = config_.cost_calibration_alpha;
  if (alpha <= 0.0 || raw_cost_s <= 0.0) return;
  const double observed = record.service_s();
  if (observed <= 0.0) return;
  SessionState& session = *sessions_[static_cast<std::size_t>(session_index)];
  session.cost_scale =
      (1.0 - alpha) * session.cost_scale + alpha * (observed / raw_cost_s);
}

void RenderService::observe_completion(ActiveFrame& active) {
  FrameRecord& record = active.record;
  // Exact latency decomposition along the last-finishing reducer's
  // dependency chain (segments sum to finish - arrival by construction).
  record.critical_path = obs::analyze_plan(
      active.frame->plan(), record.arrival_s, record.start_s, record.finish_s);

  const std::string cls =
      active.priority == Priority::Interactive ? "interactive" : "batch";
  metrics_.histogram(cls + ".queue_wait_s").observe(record.queue_wait_s());
  metrics_.histogram(cls + ".service_s").observe(record.service_s());
  if (record.tiles > 0) {
    metrics_.histogram(cls + ".first_pixel_s")
        .observe(record.first_tile_s - record.arrival_s);
  }

  if (trace_ != nullptr) {
    trace_->async_end(record.finish_s, trace_pid_,
                      frame_trace_id(record.frame_id), "frame", "frame");
  }
}

void RenderService::deliver_tile(ActiveFrame& active, int reducer) {
  // A crash swallows in-flight deliveries: the whole frame re-issues on
  // the failover target (clients may then see its tiles twice).
  if (crashed_) return;
  // Delivery runs synchronously inside the reduce-completion event, so
  // the plan's recorded tile time IS the current engine clock.
  const double now = active.frame->plan().tile_finish_s(reducer);
  if (active.record.tiles == 0) active.record.first_tile_s = now;
  active.record.tiles += 1;
  // Refinement tiles stream through the client's callback (the internal
  // session has none of its own).
  SessionState& session =
      *sessions_[static_cast<std::size_t>(active.client_session)];
  session.tiles_delivered += 1;
  ++tiles_total_;
  window_at(now).tiles += 1;
  if (session.tile_callback) {
    TileRecord tile;
    tile.session = active.client_session;
    tile.frame_id = active.record.frame_id;
    tile.reducer = reducer;
    tile.tiles_in_frame = active.frame->num_tiles();
    tile.finish_s = now;
    tile.pixels = active.frame->tile(reducer);
    // Invoke a copy so the callback can re-register itself.
    const TileCallback deliver = session.tile_callback;
    deliver(tile);
  }
}

void RenderService::deliver_frame(int session_index, const FrameRecord& record) {
  // Event-driven delivery: the engine clock equals finish_s here, and
  // no later frame has completed. The callback may submit more frames
  // (session states are pointer-stable; the scheduler re-scans).
  // Invoke a copy so the callback can re-register itself (assigning
  // session.callback mid-invocation would destroy the running lambda).
  SessionState& session = *sessions_[static_cast<std::size_t>(session_index)];
  if (session.callback) {
    const FrameCallback deliver = session.callback;
    deliver(record);
  }
}

RenderService::QualityState& RenderService::quality_state(const Pending& pending,
                                                          std::uint64_t vid) {
  // The entry may already exist with only its compression plan filled
  // (compression_state runs on every compressed admission): each piece
  // builds independently on first need.
  QualityState& qs = quality_[std::make_pair(vid, pending.layout_sig)];
  if (qs.pyramid == nullptr) {
    // The pyramid shares the memoized frame layout; the base volume
    // outlives serving (the Session API contract), which is the
    // lifetime the pyramid's level wrappers need.
    qs.pyramid = std::make_shared<const lod::LodPyramid>(*pending.request.volume,
                                                         pending.layout);
  }
  if (config_.enable_occupancy_culling && qs.occupancy == nullptr) {
    const std::int64_t voxels = pending.request.volume->voxel_count();
    const int scan_stride = voxels > config_.occupancy_max_voxels ? 4 : 1;
    qs.occupancy = std::make_shared<const lod::OccupancyIndex>(
        *pending.request.volume, *pending.layout, /*cell_voxels=*/8, scan_stride);
  }
  return qs;
}

const RenderService::QualityState* RenderService::compression_state(
    const Pending& pending) {
  if (config_.compression == compress::Codec::None) return nullptr;
  const std::uint64_t vid = register_volume(pending.request.volume).id;
  QualityState& qs = quality_[std::make_pair(vid, pending.layout_sig)];
  const auto codec = compress::make_codec(config_.compression);
  if (qs.compression == nullptr) {
    // One analysis per (volume, layout): every brick's stored size and
    // (de)compress quanta, from the occupancy thumbnails when an exact
    // scan exists (zfp-style sizes need only the cell intervals), else
    // from the voxels themselves.
    qs.compression = std::make_shared<const compress::CompressionPlan>(
        compress::analyze(*pending.request.volume, *pending.layout, *codec,
                          qs.occupancy.get()));
  }
  if (qs.pyramid != nullptr && qs.level_compression.empty() &&
      qs.pyramid->num_levels() > 1) {
    // Coarse levels compress too (their payloads ride the same cache /
    // disk / hydration paths). Level layouts reuse base brick ids, so
    // each level plan indexes by the same id the planner passes.
    qs.level_compression.resize(
        static_cast<std::size_t>(qs.pyramid->num_levels()));
    for (int level = 1; level < qs.pyramid->num_levels(); ++level) {
      const lod::LodLevel& lvl = qs.pyramid->level(level);
      qs.level_compression[static_cast<std::size_t>(level)] =
          std::make_shared<const compress::CompressionPlan>(
              compress::analyze(*lvl.volume, *lvl.layout, *codec));
    }
  }
  return &qs;
}

void RenderService::apply_compression(ActiveFrame& active,
                                      volren::AdaptiveQuality* aq) {
  const QualityState* qs = compression_state(active.pending);
  if (qs == nullptr) return;
  // Keep-alive refs: the planned chunks read stored sizes from the
  // plans for the frame's whole lifetime, and invalidate_volume may
  // erase the quality entry while this frame is in flight.
  active.compression = qs->compression;
  active.level_compression = qs->level_compression;
  aq->compression = active.compression.get();
  aq->level_compression.clear();
  for (const auto& plan : active.level_compression) {
    aq->level_compression.push_back(plan.get());
  }
}

mr::FetchHook RenderService::make_fetch_hook(const Pending& pending) {
  if (!hydration_) return mr::FetchHook{};
  const std::uint64_t vid = register_volume(pending.request.volume).id;
  const std::uint64_t lid = pending.layout_sig;
  // The BASE volume pointer, even for LOD chunks (a level chunk's own
  // volume() is the shard-local pyramid level): peers key coarse
  // payloads under (their base registration, level signature) exactly
  // like our own staging hook does.
  const volren::Volume* volume = pending.request.volume;
  return [this, vid, lid, volume](int gpu, const mr::Chunk& chunk,
                                  std::function<void()> done) {
    const auto* brick = dynamic_cast<const volren::BrickChunk*>(&chunk);
    if (brick == nullptr) return false;  // non-brick chunks: disk path
    const std::uint64_t sig =
        brick->cache_signature() != 0 ? brick->cache_signature() : lid;
    return hydration_(gpu, volume, BrickKey{vid, brick->info().id, sig},
                      chunk.stored_bytes(), std::move(done));
  };
}

void RenderService::apply_adaptive_quality(ActiveFrame& active,
                                           const SessionState& session,
                                           volren::RenderOptions& options,
                                           volren::AdaptiveQuality* aq) {
  if (!config_.enable_lod && !config_.enable_occupancy_culling) return;
  // The session's quality floor composes with the request's own knob.
  if (session.profile.quality < options.quality)
    options.quality = session.profile.quality;

  const bool wants_lod =
      config_.enable_lod && (options.max_lod > 0 || options.quality < 1.0f);
  // The SLO controller degrades only client Interactive frames: a
  // refinement re-degrading would loop forever, and Batch work has no
  // deadline to protect.
  const bool slo_armed = config_.enable_lod && config_.interactive_slo_s > 0.0 &&
                         active.priority == Priority::Interactive &&
                         !active.pending.is_refinement;
  if (!wants_lod && !slo_armed && !config_.enable_occupancy_culling) return;

  const std::uint64_t vid = register_volume(active.pending.request.volume).id;
  QualityState& qs = quality_state(active.pending, vid);

  if (config_.enable_lod && (wants_lod || slo_armed)) {
    active.pyramid = qs.pyramid;
    aq->pyramid = qs.pyramid.get();
    int level = qs.pyramid->clamp(options.max_lod);
    if (slo_armed) {
      const double now = cluster_.engine().now();
      // Budget left of the deadline after the time already spent
      // queued. Walk coarser while the calibrated estimate still blows
      // it; a budget nothing fits gets the coarsest allowed level
      // (best effort).
      const double budget =
          config_.interactive_slo_s - (now - active.record.arrival_s);
      const int deepest =
          std::min(config_.max_degrade_lod, qs.pyramid->num_levels() - 1);
      int chosen = level;
      while (chosen < deepest &&
             session.cost_scale * estimate_cost_s(active.pending, chosen) >
                 budget) {
        ++chosen;
      }
      if (chosen > level) {
        active.degraded = true;
        ++frames_degraded_;
        // Re-anchor the calibration baseline to what will actually be
        // served: completion compares observed time against
        // submit_cost_s, and judging a coarse serve against the
        // full-quality estimate would collapse cost_scale and make the
        // controller oscillate between degrading and not.
        active.pending.submit_cost_s = estimate_cost_s(active.pending, chosen);
        if (trace_ != nullptr) {
          trace_->instant(now, trace_pid_, obs::kServiceTid, "slo_degrade",
                          "sched",
                          {{"frame", std::to_string(active.pending.frame_id)},
                           {"lod", std::to_string(chosen)},
                           {"budget_s", std::to_string(budget)}});
        }
        level = chosen;
      }
    }
    options.max_lod = level;
    active.record.lod = level;
  }

  if (config_.enable_occupancy_culling && qs.occupancy != nullptr) {
    active.classification = classifications_.lookup_or_build(
        vid, active.pending.layout_sig, *qs.occupancy, options.transfer);
    aq->classification = active.classification.get();
  }
}

void RenderService::maybe_enqueue_refinement(ActiveFrame& active) {
  if (!active.degraded || active.pending.is_refinement) return;
  const int client = active.client_session;
  SessionState& client_state = *sessions_[static_cast<std::size_t>(client)];
  int refine_index = client_state.refine_session;
  if (refine_index < 0) {
    // Lazily open the client's internal refinement session: Batch
    // priority (refinements fill lanes the interactive stream leaves
    // free, and batch aging bounds their wait under sustained load),
    // delivering through the client's callbacks.
    auto state = std::make_unique<SessionState>();
    state->profile.name = client_state.profile.name + "#refine";
    state->profile.priority = Priority::Batch;
    state->delegate = client;
    sessions_.push_back(std::move(state));
    refine_index = num_sessions() - 1;
    client_state.refine_session = refine_index;
  }

  const double now = cluster_.engine().now();
  Pending refine;
  // The original request — pre-degradation options, so the refinement
  // renders the same view at the quality the client asked for. The
  // memoized decomposition is reused (same volume, same options), so
  // layouts_built() stays one per client-submitted frame.
  refine.request = active.pending.request;
  refine.request.arrival_s = now;
  refine.frame_id = next_frame_id_++;
  refine.layout = active.pending.layout;
  refine.layout_sig = active.pending.layout_sig;
  refine.submit_dims = active.pending.submit_dims;
  refine.submit_floor_s = now;
  refine.refines = static_cast<std::int64_t>(active.pending.frame_id);
  refine.is_refinement = true;
  refine.submit_cost_s = estimate_cost_s(refine);
  ++refinements_enqueued_;
  if (trace_ != nullptr) {
    trace_->instant(now, trace_pid_, obs::kServiceTid, "refine_enqueue", "sched",
                    {{"frame", std::to_string(refine.frame_id)},
                     {"refines", std::to_string(active.pending.frame_id)},
                     {"session", std::to_string(client)}});
  }
  sessions_[static_cast<std::size_t>(refine_index)]->queue.push_back(
      std::move(refine));
  // Mid-drain enqueue needs a scheduler event exactly like a mid-drain
  // client submit (see session_submit).
  if (draining_ && config_.pipeline == PipelineMode::Quantum) {
    cluster_.engine().schedule_after(0.0, [this] {
      if (draining_) pump();
    });
  }
}

std::unique_ptr<RenderService::ActiveFrame> RenderService::make_active_frame(
    int session_index, double arrival_floor_s, double predicted_cost_s) {
  SessionState& session = *sessions_[static_cast<std::size_t>(session_index)];
  check_serve_dims(session.queue.front());
  auto active = std::make_unique<ActiveFrame>();
  active->session = session_index;
  // Refinement frames live on an internal session but deliver (and are
  // recorded) as the client's.
  active->client_session =
      session.delegate >= 0 ? session.delegate : session_index;
  active->priority = session.profile.priority;
  active->pending = std::move(session.queue.front());
  session.queue.pop_front();
  session.last_served_seq = ++serve_seq_;
  // Any batch admission restarts the aging period (the aged-head
  // override in pick_next is rate-limited against this stamp).
  if (active->priority == Priority::Batch) {
    const double now = cluster_.engine().now();
    if (trace_ != nullptr && config_.batch_aging_s > 0.0 &&
        now - active->pending.effective_arrival_s() >= config_.batch_aging_s) {
      trace_->instant(
          now, trace_pid_, obs::kServiceTid, "batch_aged", "sched",
          {{"frame", std::to_string(active->pending.frame_id)},
           {"waited_s",
            std::to_string(now - active->pending.effective_arrival_s())}});
    }
    last_batch_admission_s_ = now;
  }

  FrameRecord& record = active->record;
  record.session = active->client_session;
  record.frame_id = active->pending.frame_id;
  record.refines_frame_id = active->pending.refines;
  record.arrival_s = std::max(active->pending.effective_arrival_s(), arrival_floor_s);
  open_window(record.arrival_s);
  // SJF scored this frame against the same cache state when it picked
  // it; other policies never run the model.
  if (predicted_cost_s >= 0.0) record.predicted_cost_s = predicted_cost_s;

  // The quantum scheduler owns barrier enforcement: per-reducer
  // readiness (ServiceConfig::barrier_mode default) lets each tile's
  // sort+reduce chain the moment its own inbox completes, so tiles
  // stream and lanes free while other lanes still map. Monolithic
  // keeps the request's own setting (the paper's schedule by default).
  volren::RenderOptions options = active->pending.request.options;
  if (config_.pipeline == PipelineMode::Quantum) {
    options.barrier_mode = config_.barrier_mode;
  }
  // Adaptive quality: session quality floor, SLO-budget degradation and
  // occupancy classification — resolved before the trace arrow so the
  // served LOD is attributable from admission on.
  volren::AdaptiveQuality aq;
  apply_adaptive_quality(*active, session, options, &aq);
  // After the quality pass: level plans must exist exactly when a
  // pyramid may serve coarse chunks this admission. The hydration hook
  // is independent of compression — uncompressed payloads hydrate too
  // (stored == logical).
  apply_compression(*active, &aq);
  aq.fetch_hook = make_fetch_hook(active->pending);
  aq.fault_hook = make_fault_hook();
  if (trace_ != nullptr) {
    const double now = cluster_.engine().now();
    const bool interactive = active->priority == Priority::Interactive;
    options.trace.recorder = trace_;
    options.trace.pid = trace_pid_;
    options.trace.session = active->client_session;
    options.trace.frame_id = record.frame_id;
    options.trace.priority = interactive ? 0 : 1;
    // Distinct reducer-track bases per class: at most one frame per
    // class is active, so the two never interleave on a track.
    options.trace.reducer_tid_base = interactive ? 1000 : 2000;
    obs::TraceArgs attribution{
        {"session", std::to_string(active->client_session)},
        {"frame", std::to_string(record.frame_id)},
        {"class", to_string(active->priority)}};
    if (record.lod > 0) attribution.emplace_back("lod", std::to_string(record.lod));
    if (record.refines_frame_id >= 0) {
      attribution.emplace_back("refines",
                               std::to_string(record.refines_frame_id));
    }
    trace_->instant(now, trace_pid_, obs::kServiceTid, "admit", "sched",
                    attribution);
    // The frame's end-to-end arrow: admission -> delivery.
    trace_->async_begin(now, trace_pid_, frame_trace_id(record.frame_id),
                        "frame", "frame", attribution);
  }
  active->frame = volren::plan_frame(cluster_, *active->pending.request.volume,
                                     options, make_staging_hook(active->pending),
                                     *active->pending.layout, aq);
  return active;
}

// --- monolithic pipeline -----------------------------------------------------

void RenderService::serve_one(int session_index, double arrival_floor_s,
                              double predicted_cost_s) {
  auto active =
      make_active_frame(session_index, arrival_floor_s, predicted_cost_s);
  auto& engine = cluster_.engine();
  FrameRecord& record = active->record;
  record.start_s = engine.now();
  // Zero-delta sample: closes any idle gap since the last completion
  // so the frame's busy is not smeared back across it.
  sample_gpu_busy();
  ActiveFrame* raw = active.get();
  // Tiles stream at their true completion times even in the monolithic
  // schedule — only preemption and prefetch are quantum-pipeline-only.
  active->frame->plan().on_tile_done([this, raw](int r) { deliver_tile(*raw, r); });
  active->frame->plan().run_to_completion();

  volren::RenderResult result = active->frame->finish();
  // The plan itself counts skipped stagings, so hit accounting is
  // uniform whether or not a cache is wired in. Culled chunks (empty
  // screen footprint or occupancy-empty) were never demanded from the
  // cache, so they are neither hits nor misses.
  record.cache_hits = result.stats.chunks_resident;
  record.cache_misses = static_cast<std::uint64_t>(result.stats.num_chunks) -
                        record.cache_hits - result.stats.chunks_culled;
  record.finish_s = engine.now();
  record.stats = std::move(result.stats);
  // The footprint path may have dropped deeper than the admission-time
  // floor (quality < 1); the record reports the deepest level served.
  record.lod = std::max(record.lod, active->frame->max_level());
  bricks_occupancy_culled_ +=
      static_cast<std::uint64_t>(active->frame->occupancy_culled());
  if (active->pending.is_refinement) ++refinements_served_;
  if (config_.keep_images) record.image = std::move(result.image);
  window_at(record.finish_s).frames_finished += 1;
  sample_gpu_busy();
  observe_completion(*active);

  VRMR_DEBUG("service") << "session " << session_index << " frame "
                        << record.frame_id << " latency=" << record.latency_s()
                        << "s (wait=" << record.queue_wait_s()
                        << "s) hits=" << record.cache_hits << "/"
                        << (record.cache_hits + record.cache_misses);

  calibrate(session_index, record, active->pending.submit_cost_s);
  completed_.push_back(std::move(record));
  deliver_frame(active->client_session, completed_.back());
  // Strictly after the preview's delivery: the refinement's own
  // on_frame can then never precede it (src/service/README.md).
  maybe_enqueue_refinement(*active);
}

void RenderService::drain_monolithic(double arrival_floor_s) {
  while (true) {
    // Horizon stop (drain_until): frames are served whole here, so the
    // check between serves IS the frame boundary.
    if (cluster_.engine().now() >= admission_horizon_s_) break;
    const double earliest = earliest_head_arrival();
    if (earliest == kInf) break;  // every queue drained
    if (earliest >= admission_horizon_s_) break;  // next work is next round's
    double predicted_cost_s = -1.0;
    const int pick =
        pick_next(cluster_.engine().now(), &predicted_cost_s, false);
    if (pick < 0) {
      // Nothing has arrived yet: idle the cluster until the next frame.
      advance_clock_to(earliest);
      continue;
    }
    serve_one(pick, arrival_floor_s, predicted_cost_s);
  }
}

// --- quantum pipeline --------------------------------------------------------

void RenderService::admit(int session_index, double predicted_cost_s) {
  // record.start_s is NOT stamped here but when the first quantum is
  // issued — an interactive frame admitted mid-batch-frame has not
  // *started* until a lane frees at the next brick boundary, and
  // queue_wait_s measures exactly that gap.
  auto active = make_active_frame(session_index, drain_floor_s_, predicted_cost_s);
  ActiveFrame* raw = active.get();
  auto& plan = active->frame->plan();
  plan.on_lane_free([this](int gpu) {
    lane_busy_[static_cast<std::size_t>(gpu)] = 0;
    // A freed lane changes only lane state, never admissibility — the
    // class slots and arrival set are untouched, so skip re-running
    // the admission policy (under SJF that is a full cost-model pass).
    if (draining_) pump(/*try_admission=*/false);
  });
  // Sort and reduce quanta self-issue at their barriers: they are
  // per-reducer (tile) grained, and any contention with another
  // frame's map quanta is arbitrated by the simulated resources. Under
  // PerReducer barriers (the default) a reducer's readiness is a
  // scheduling event: its sort+reduce chain starts right then, tiles
  // stream while other lanes still map, and idle lanes get a prefetch
  // pass at the earliest point the widened overlap window opens.
  plan.set_eager_barriers(true);
  plan.on_reducer_ready([this](int) {
    if (draining_) pump(/*try_admission=*/false);
  });
  plan.on_quantum_failed([this](int gpu, int chunk_index, int attempt) {
    quantum_failed(gpu, chunk_index, attempt);
  });
  plan.on_tile_done([this, raw](int r) { deliver_tile(*raw, r); });
  plan.on_finished([this, raw] { frame_finished(raw); });
  plan.start();
  // A frame admitted after lane deaths must not deal work to the
  // blacklisted lanes: the scheduler never fills them, so quanta dealt
  // there would deadlock the plan. Move them to survivors up front.
  for (int g = 0; g < cluster_.total_gpus(); ++g) {
    if (!lane_dead(g)) continue;
    if (plan.pending_map_quanta(g) == 0) continue;
    plan.redistribute_lane(g, surviving_lanes(g));
  }
  active_.push_back(std::move(active));
}

void RenderService::try_admit() {
  // Horizon gate (drain_until): at/after the horizon nothing new is
  // admitted — in-flight frames finish, then the drain stops at that
  // frame boundary with the rest of the queue intact.
  if (cluster_.engine().now() >= admission_horizon_s_) return;
  while (true) {
    bool interactive_active = false;
    bool batch_active = false;
    for (const auto& active : active_) {
      if (active->done) continue;
      if (active->priority == Priority::Interactive) interactive_active = true;
      else batch_active = true;
    }
    double predicted_cost_s = -1.0;
    int pick = -1;
    const double now = cluster_.engine().now();
    if (!interactive_active && !batch_active) {
      // Idle cluster: any class may be admitted (priority filter inside).
      pick = pick_next(now, &predicted_cost_s, false);
    } else if (!interactive_active) {
      // A batch frame is rendering: an arrived Interactive frame
      // preempts it at the next brick boundary.
      pick = pick_next(now, &predicted_cost_s, true);
    } else {
      break;  // an interactive frame is already in flight
    }
    if (pick < 0) break;
    if (batch_active) {
      ++preemptions_;
      window_at(now).preemptions += 1;
      if (trace_ != nullptr) {
        trace_->instant(now, trace_pid_, obs::kServiceTid, "preempt", "sched",
                        {{"by_session", std::to_string(pick)}});
      }
    }
    admit(pick, predicted_cost_s);
  }
}

bool RenderService::try_prefetch(int gpu) {
  if (!cache_ || !config_.enable_prefetch) return false;
  bool any_active = false;
  for (const auto& active : active_) {
    if (!active->done) {
      any_active = true;
      break;
    }
  }
  if (!any_active) return false;  // prefetch only overlaps a serving frame

  // Deterministic candidate order: orbit-hinted sessions with queued
  // work, most imminent head frame first (ties by frame_id).
  std::vector<std::pair<std::pair<double, std::uint64_t>, int>> candidates;
  for (int s = 0; s < num_sessions(); ++s) {
    const SessionState& session = *sessions_[static_cast<std::size_t>(s)];
    if (!session.profile.orbit.has_value() || session.queue.empty()) continue;
    const Pending& head = session.queue.front();
    candidates.push_back({{head.effective_arrival_s(), head.frame_id}, s});
  }
  std::sort(candidates.begin(), candidates.end());

  const int gpus = cluster_.total_gpus();
  for (const auto& [order_key, s] : candidates) {
    (void)order_key;
    Pending& head = sessions_[static_cast<std::size_t>(s)]->queue.front();
    const auto it = volumes_.find(head.request.volume);
    if (it == volumes_.end()) continue;  // invalidated since submit
    const std::uint64_t vid = it->second.id;
    const auto& bricks = head.layout->bricks();
    // Prefetch moves exactly what demand staging would: stored bytes
    // (memoized per (volume, layout); a miss here builds the plan the
    // admission would build anyway).
    const QualityState* cqs = compression_state(head);
    const compress::CompressionPlan* plan =
        cqs != nullptr ? cqs->compression.get() : nullptr;
    if (head.prefetch_issued.empty()) head.prefetch_issued.assign(bricks.size(), 0);
    for (const volren::BrickInfo& brick : bricks) {
      if (brick.id % gpus != gpu) continue;  // dealt to another lane
      auto& issued = head.prefetch_issued[static_cast<std::size_t>(brick.id)];
      if (issued) continue;
      const BrickKey key{vid, brick.id, head.layout_sig};
      // Resident bricks need no prefetch *now* but must stay eligible:
      // a later frame's staging may evict them while this frame is
      // still queued. Only an actual transfer (or a permanent reject)
      // consumes the once-per-queued-frame budget.
      if (cache_->resident(gpu, key)) continue;
      const std::uint64_t logical = brick.device_bytes();
      const std::uint64_t bytes =
          plan != nullptr ? plan->brick(brick.id).stored_bytes : logical;
      if (bytes > cache_->capacity_per_gpu()) {
        issued = 1;  // would never be admitted; stop retrying
        continue;
      }
      issued = 1;
      lane_busy_[static_cast<std::size_t>(gpu)] = 1;
      if (trace_ != nullptr) {
        // Safe on the lane track: lane_busy_ keeps map quanta off this
        // lane until the staging lands, so the span never interleaves.
        trace_->begin(cluster_.engine().now(), trace_pid_, gpu, "prefetch",
                      "prefetch",
                      {{"brick", std::to_string(brick.id)},
                       {"session", std::to_string(s)}});
      }
      // Stage it exactly like a frame would: optional disk read, then
      // a synchronous H2D occupying the node's PCIe link and the GPU
      // stream. Admission into the cache happens at transfer
      // completion — the brick is not resident until it landed.
      const int node = cluster_.node_of_gpu(gpu);
      const double h2d_s = cluster_.config().hw.pcie.transfer_time(bytes);
      const volren::Volume* volume = head.request.volume;
      auto finish = [this, gpu, key, bytes, logical, volume] {
        // The transfer was in flight: only admit if the volume's
        // registration still carries the id the key was built from —
        // an invalidate_volume() meanwhile retired that id, and a
        // brick admitted under it could never match a future lookup.
        const auto reg = volumes_.find(volume);
        const bool registration_live =
            reg != volumes_.end() && reg->second.id == key.volume_id;
        if (registration_live && cache_) {
          // Count only actual admissions (a brick that became resident
          // via demand staging while the transfer was in flight is a
          // refresh, not an admission), so service- and cache-level
          // prefetch telemetry reconcile exactly.
          bool admitted = false;
          (void)cache_->prefetch(gpu, key, bytes, &admitted, logical);
          if (admitted) {
            ++bricks_prefetched_;
            bytes_prefetched_ += bytes;
          }
        }
        if (trace_ != nullptr) {
          trace_->end(cluster_.engine().now(), trace_pid_, gpu);
        }
        lane_busy_[static_cast<std::size_t>(gpu)] = 0;
        if (draining_) pump(/*try_admission=*/false);
      };
      auto stage = [this, node, gpu, h2d_s, finish] {
        const std::array<sim::Resource*, 2> rs = {&cluster_.pcie(node),
                                                  &cluster_.gpu_stream(gpu)};
        sim::Resource::acquire_multi(
            rs, h2d_s, [finish](sim::SimTime, sim::SimTime) { finish(); });
      };
      if (head.request.options.include_disk_io) {
        cluster_.disk(node).read(bytes, stage);
      } else {
        stage();
      }
      return true;
    }
  }
  return false;
}

void RenderService::pump(bool try_admission) {
  if (crashed_) return;  // a crashed shard schedules nothing further
  reap();
  if (try_admission) try_admit();

  const int gpus = cluster_.total_gpus();
  const double pump_now = cluster_.engine().now();
  for (int g = 0; g < gpus; ++g) {
    if (lane_busy_[static_cast<std::size_t>(g)]) continue;
    // Fail-stopped lanes are never filled again; a lane under a retry
    // hold-down sits out until its backoff expires (quantum_failed
    // armed a wake at exactly that time).
    if (lane_dead(g)) continue;
    if (lane_held(g, pump_now)) continue;
    // Interactive quanta first: a preempting frame takes every lane as
    // it frees; the batch frame resumes when no interactive work wants
    // the lane.
    ActiveFrame* chosen = nullptr;
    for (const Priority cls : {Priority::Interactive, Priority::Batch}) {
      for (const auto& active : active_) {
        if (active->done || active->priority != cls) continue;
        if (active->frame->plan().pending_map_quanta(g) > 0) {
          chosen = active.get();
          break;
        }
      }
      if (chosen != nullptr) break;
    }
    if (chosen != nullptr) {
      lane_busy_[static_cast<std::size_t>(g)] = 1;
      if (!chosen->render_started) {
        chosen->render_started = true;
        chosen->record.start_s = cluster_.engine().now();
        // Zero-delta sample across any idle gap (see serve_one).
        sample_gpu_busy();
      }
      window_at(cluster_.engine().now()).quanta_issued += 1;
      chosen->frame->plan().issue_map_quantum(g);
      continue;
    }
    // Overlap window: a lane no frame wants right now (typically the
    // current frame's sort/reduce tail) prefetches predicted bricks.
    (void)try_prefetch(g);
  }

  // Arm a wake-up at the earliest FUTURE head arrival so preemptive
  // admission does not depend on a lane happening to free just then.
  // Heads that already arrived but are blocked (their class slot is
  // occupied) must not mask a later head: admission for them re-runs
  // at frame completions, while the wake covers arrivals — together
  // these are exactly the events where admissibility can change.
  const double now = cluster_.engine().now();
  double earliest_future = kInf;
  for (const auto& session : sessions_) {
    if (session->queue.empty()) continue;
    const double arrival = session->queue.front().effective_arrival_s();
    if (arrival > now) earliest_future = std::min(earliest_future, arrival);
  }
  if (earliest_future != kInf) schedule_wake(earliest_future);
}

void RenderService::frame_finished(ActiveFrame* active) {
  active->done = true;
  if (crashed_) {
    // The crash already snapshotted this frame for failover re-issue:
    // discard the completion (no record, no delivery) so the client
    // sees its on_frame exactly once — from the target shard.
    if (!reap_scheduled_) {
      reap_scheduled_ = true;
      cluster_.engine().schedule_after(0.0, [this] {
        reap_scheduled_ = false;
        reap();
      });
    }
    return;
  }
  volren::RenderResult result = active->frame->finish();
  FrameRecord& record = active->record;
  record.cache_hits = result.stats.chunks_resident;
  record.cache_misses = static_cast<std::uint64_t>(result.stats.num_chunks) -
                        record.cache_hits - result.stats.chunks_culled;
  record.finish_s = cluster_.engine().now();
  record.stats = std::move(result.stats);
  // The footprint path may have dropped deeper than the admission-time
  // floor (quality < 1); the record reports the deepest level served.
  record.lod = std::max(record.lod, active->frame->max_level());
  bricks_occupancy_culled_ +=
      static_cast<std::uint64_t>(active->frame->occupancy_culled());
  if (active->pending.is_refinement) ++refinements_served_;
  if (config_.keep_images) record.image = std::move(result.image);
  window_at(record.finish_s).frames_finished += 1;
  sample_gpu_busy();
  observe_completion(*active);

  VRMR_DEBUG("service") << "session " << active->session << " frame "
                        << record.frame_id << " latency=" << record.latency_s()
                        << "s (wait=" << record.queue_wait_s()
                        << "s) hits=" << record.cache_hits << "/"
                        << (record.cache_hits + record.cache_misses)
                        << " tiles=" << record.tiles;

  calibrate(active->session, record, active->pending.submit_cost_s);
  completed_.push_back(std::move(record));
  deliver_frame(active->client_session, completed_.back());
  // Strictly after the preview's delivery: the refinement's own
  // on_frame can then never precede it (src/service/README.md).
  maybe_enqueue_refinement(*active);
  // Teardown and the next scheduling decision happen on a fresh engine
  // event: the finishing quantum's callback frames are still on this
  // plan's stack, so the plan cannot be destroyed (or its lanes
  // re-filled into a reentrant issue) here.
  if (!reap_scheduled_) {
    reap_scheduled_ = true;
    cluster_.engine().schedule_after(0.0, [this] {
      reap_scheduled_ = false;
      if (draining_) pump();
      else reap();
    });
  }
}

void RenderService::reap() {
  std::erase_if(active_, [](const std::unique_ptr<ActiveFrame>& active) {
    return active->done;
  });
}

void RenderService::schedule_wake(double t) {
  // Arrivals at/after the admission horizon are a later round's
  // problem (drain_until): arming their wake would drag the clock past
  // the horizon chasing work this round will not admit.
  if (t >= admission_horizon_s_) return;
  const double now = cluster_.engine().now();
  if (next_wake_s_ > now && next_wake_s_ <= t) return;  // already armed
  next_wake_s_ = t;
  cluster_.engine().schedule_at(t, [this, t] {
    if (next_wake_s_ == t) next_wake_s_ = 0.0;
    if (draining_) pump();
  });
}

void RenderService::drain_quantum() {
  auto& engine = cluster_.engine();
  while (!crashed_) {
    pump();
    if (engine.empty()) {
      reap();
      if (queued_frames() == 0) break;
      // pump() arms a wake for future arrivals, so an empty engine with
      // queued work means every head is in the future and nothing is in
      // flight — jump the clock to the next arrival.
      const double earliest = earliest_head_arrival();
      // Horizon stop (drain_until): nothing is in flight (the engine is
      // empty) and every remaining head is gated or beyond the horizon
      // — a frame boundary; the queue carries over to the next round.
      if (engine.now() >= admission_horizon_s_ ||
          earliest >= admission_horizon_s_)
        break;
      VRMR_CHECK_MSG(earliest > engine.now(),
                     "quantum scheduler stalled with arrived work queued");
      engine.schedule_at(earliest, [] {});
    }
    engine.run();
  }
  if (crashed_) return;  // undelivered work is snapshotted for failover
  reap();
  VRMR_CHECK_MSG(active_.empty(), "drain ended with frames in flight");
}

void RenderService::install_fault_plan(const fault::FaultPlan& plan, int shard) {
  for (const fault::FaultEvent& event : plan.events_for(shard)) {
    inject_fault(event);
  }
}

void RenderService::inject_fault(const fault::FaultEvent& event) {
  using fault::FaultKind;
  VRMR_CHECK_MSG(config_.pipeline == PipelineMode::Quantum,
                 "fault injection requires the Quantum pipeline (recovery is "
                 "quantum-granular)");
  auto& engine = cluster_.engine();
  // Events stamped in the past land now (a plan may be installed after
  // the timeline advanced).
  const double at = std::max(event.time_s, engine.now());
  switch (event.kind) {
    case FaultKind::DiskReadError: {
      VRMR_CHECK_MSG(event.target < cluster_.total_gpus(),
                     "disk-fault target lane " << event.target
                                               << " out of range");
      DiskFault fault;
      fault.time_s = event.time_s;
      fault.gpu = event.target;
      fault.detect_s =
          event.param_s > 0.0 ? event.param_s : config_.fault_detect_s;
      disk_faults_.push_back(fault);
      break;
    }
    case FaultKind::LaneStall: {
      VRMR_CHECK_MSG(event.target >= 0 && event.target < cluster_.total_gpus(),
                     "stall target lane " << event.target << " out of range");
      const int gpu = event.target;
      const double hold =
          event.param_s > 0.0 ? event.param_s : config_.fault_detect_s;
      engine.schedule_at(at, [this, gpu, hold] {
        if (crashed_) return;
        ++faults_injected_;
        ++lane_stalls_;
        if (trace_ != nullptr) {
          trace_->instant(cluster_.engine().now(), trace_pid_, gpu,
                          "fault.lane_stall", "fault",
                          {{"hold_s", std::to_string(hold)}});
        }
        // Wedge the GPU stream: in-flight and queued quanta on this
        // lane complete late; nothing is lost or retried.
        cluster_.gpu_stream(gpu).acquire(hold,
                                         [](sim::SimTime, sim::SimTime) {});
      });
      break;
    }
    case FaultKind::LaneDeath: {
      VRMR_CHECK_MSG(event.target >= 0 && event.target < cluster_.total_gpus(),
                     "death target lane " << event.target << " out of range");
      engine.schedule_at(at, [this, gpu = event.target] {
        if (!crashed_) kill_lane(gpu);
      });
      break;
    }
    case FaultKind::ShardCrash: {
      engine.schedule_at(at, [this] { crash(); });
      break;
    }
    case FaultKind::FabricDrop:
    case FaultKind::FabricDelay:
      // Inter-shard fabric faults are installed by the frontend on its
      // hydration/handoff fabric (net::Fabric::set_fault_injector); a
      // single-shard service has no such fabric to degrade.
      break;
  }
}

mr::FaultHook RenderService::make_fault_hook() {
  // Always installed: a fault plan may arrive after frames were
  // admitted, and an armed hook on a fault-free run is a no-op.
  return [this](int gpu, int chunk_index, int attempt) {
    (void)chunk_index;
    (void)attempt;
    mr::QuantumFault fault;
    if (crashed_) return fault;
    const double now = cluster_.engine().now();
    for (DiskFault& pending : disk_faults_) {
      if (pending.consumed || pending.time_s > now) continue;
      if (pending.gpu >= 0 && pending.gpu != gpu) continue;
      pending.consumed = true;
      ++faults_injected_;
      fault.fail = true;
      fault.detect_s = pending.detect_s;
      fault.kind = "disk_error";
      break;
    }
    return fault;
  };
}

void RenderService::quantum_failed(int gpu, int chunk_index, int attempt) {
  ++quanta_retried_;
  const double now = cluster_.engine().now();
  // Exponential lane backoff: the chunk retries on this lane no sooner
  // than base x 2^(attempt-1); the wake re-pumps when the hold expires
  // (the plan's lane_free fires first but finds the lane held).
  double backoff_s = 0.0;
  if (config_.retry_backoff_s > 0.0) {
    backoff_s =
        config_.retry_backoff_s *
        static_cast<double>(std::uint64_t{1} << std::min(attempt - 1, 16));
    auto& held_until = lane_retry_at_[static_cast<std::size_t>(gpu)];
    held_until = std::max(held_until, now + backoff_s);
    cluster_.engine().schedule_at(held_until, [this] {
      if (draining_ && !crashed_) pump(/*try_admission=*/false);
    });
  }
  if (trace_ != nullptr) {
    trace_->instant(now, trace_pid_, obs::kServiceTid, "retry.quantum", "fault",
                    {{"gpu", std::to_string(gpu)},
                     {"chunk", std::to_string(chunk_index)},
                     {"attempt", std::to_string(attempt)},
                     {"backoff_s", std::to_string(backoff_s)}});
  }
  // A lane that died while wedged on this failure keeps its restored
  // chunk queued but will never be filled: move it to survivors.
  if (lane_dead(gpu)) {
    for (const auto& active : active_) {
      if (active->done) continue;
      if (active->frame->plan().pending_map_quanta(gpu) == 0) continue;
      active->frame->plan().redistribute_lane(gpu, surviving_lanes(gpu));
    }
  }
}

std::vector<int> RenderService::surviving_lanes(int excluding) const {
  std::vector<int> survivors;
  for (int g = 0; g < cluster_.total_gpus(); ++g) {
    if (g == excluding || lane_dead(g)) continue;
    survivors.push_back(g);
  }
  VRMR_CHECK_MSG(!survivors.empty(),
                 "every GPU lane has fail-stopped; nothing can serve");
  return survivors;
}

int RenderService::dead_lanes() const {
  int dead = 0;
  for (const std::uint8_t d : lane_dead_) dead += d != 0 ? 1 : 0;
  return dead;
}

void RenderService::kill_lane(int gpu) {
  if (lane_dead(gpu)) return;  // idempotent (replayed plans)
  lane_dead_[static_cast<std::size_t>(gpu)] = 1;
  ++lanes_dead_;
  ++faults_injected_;
  const double now = cluster_.engine().now();
  if (trace_ != nullptr) {
    trace_->instant(now, trace_pid_, gpu, "fault.lane_death", "fault",
                    {{"lane", std::to_string(gpu)}});
  }
  // Fail-stop at the quantum boundary: an in-flight quantum on the lane
  // still lands (its host-side mapper state survives — the modeled
  // failure is the lane's execution resource, not the mapper process),
  // after which the scheduler never fills the lane again. Queued quanta
  // move to the survivors now; pixels are placement-independent.
  const std::vector<int> survivors = surviving_lanes(gpu);
  for (const auto& active : active_) {
    if (active->done) continue;
    if (active->frame->plan().pending_map_quanta(gpu) == 0) continue;
    active->frame->plan().redistribute_lane(gpu, survivors);
  }
  if (draining_) pump(/*try_admission=*/false);
}

void RenderService::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++faults_injected_;
  const double now = cluster_.engine().now();

  // Snapshot every undelivered client frame: queued heads plus frames
  // in flight whose delivery this crash swallows. Internal refinement
  // frames die with the shard (their previews were delivered).
  unserved_.clear();
  const auto snapshot = [this](int session_index, const Pending& pending) {
    UnservedFrame lost;
    lost.session = session_index;
    lost.frame_id = pending.frame_id;
    lost.request = pending.request;
    lost.layout = pending.layout;
    lost.layout_sig = pending.layout_sig;
    unserved_.push_back(std::move(lost));
  };
  for (int s = 0; s < num_sessions(); ++s) {
    SessionState& session = *sessions_[static_cast<std::size_t>(s)];
    const bool internal = session.delegate >= 0;
    for (const Pending& pending : session.queue) {
      if (internal || pending.is_refinement) continue;
      snapshot(s, pending);
    }
    session.queue.clear();  // the work now lives in unserved_
  }
  for (const auto& active : active_) {
    if (active->done || active->pending.is_refinement) continue;
    snapshot(active->session, active->pending);
  }
  std::sort(unserved_.begin(), unserved_.end(),
            [](const UnservedFrame& a, const UnservedFrame& b) {
              return a.frame_id < b.frame_id;
            });

  if (trace_ != nullptr) {
    // The crash swallows the in-flight frames' deliveries, so the
    // async_end that would close their admission->delivery arrows is
    // never coming: close them here, marked crashed, to keep the
    // export balanced (tools/validate_trace.py checks b/e pairing).
    for (const auto& active : active_) {
      if (active->done) continue;
      trace_->async_end(now, trace_pid_,
                        frame_trace_id(active->pending.frame_id), "frame",
                        "frame");
    }
    trace_->instant(now, trace_pid_, obs::kServiceTid, "fault.shard_crash",
                    "fault",
                    {{"unserved", std::to_string(unserved_.size())}});
  }
  VRMR_WARN("service") << "shard " << trace_pid_ << " crashed at t=" << now
                       << "s with " << unserved_.size()
                       << " undelivered frames";
}

void RenderService::admit_pushed_brick(const volren::Volume* volume,
                                       int brick_id, std::uint64_t layout_sig,
                                       int gpu, std::uint64_t stored_bytes,
                                       std::uint64_t logical_bytes) {
  VRMR_CHECK_MSG(gpu >= 0 && gpu < cluster_.total_gpus(),
                 "pushed brick targets lane " << gpu << " out of range");
  if (!cache_) return;
  const std::uint64_t vid = register_volume(volume).id;
  bool admitted = false;
  (void)cache_->prefetch(gpu, BrickKey{vid, brick_id, layout_sig},
                         stored_bytes, &admitted, logical_bytes);
  if (admitted) ++bricks_pushed_in_;
}

std::vector<RenderService::UnservedFrame> RenderService::extract_session_frames(
    int session) {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "extract_session_frames: unknown session " << session);
  VRMR_CHECK_MSG(!crashed_,
                 "extract_session_frames on a crashed service — the crash "
                 "snapshot (unserved_frames) already owns its queue");
  SessionState& state = *sessions_[static_cast<std::size_t>(session)];
  VRMR_CHECK_MSG(state.delegate < 0,
                 "extract_session_frames on an internal refinement session");
  // Frame boundary: a frame in flight belongs to THIS shard's timeline
  // (its tiles are streaming here); the caller migrates between pump
  // rounds, when nothing of the session is in flight.
  for (const auto& active : active_) {
    VRMR_CHECK_MSG(active->done || active->session != session,
                   "extract_session_frames at a non-frame-boundary: session "
                       << session << " has a frame in flight");
  }
  std::vector<UnservedFrame> out;
  out.reserve(state.queue.size());
  std::deque<Pending> keep;  // refinements queue on the internal session,
                             // but keep the filter symmetric with crash()
  for (Pending& pending : state.queue) {
    if (pending.is_refinement) {
      keep.push_back(std::move(pending));
      continue;
    }
    UnservedFrame moved;
    moved.session = session;
    moved.frame_id = pending.frame_id;
    moved.request = pending.request;
    moved.layout = pending.layout;
    moved.layout_sig = pending.layout_sig;
    out.push_back(std::move(moved));
  }
  state.queue.swap(keep);
  return out;
}

void RenderService::drain() { (void)drain_to(kInf); }

bool RenderService::drain_until(double horizon_s) {
  VRMR_CHECK_MSG(std::isfinite(horizon_s) || horizon_s == kInf,
                 "drain_until horizon must be finite or +inf");
  return drain_to(horizon_s);
}

bool RenderService::drain_to(double horizon_s) {
  // A crashed shard serves nothing: the frontend re-points its sessions
  // and re-issues the snapshotted work on a sibling.
  if (crashed_) return false;
  // Reentrant drain (a callback forcing synchronous completion) is a
  // no-op: the outer drain loop is already serving everything queued,
  // and nesting would reallocate completed_ under the caller's record.
  if (draining_) return queued_frames() == 0;
  draining_ = true;
  struct DrainGuard {  // also resets when a serve throws
    bool* flag;
    double* horizon;
    ~DrainGuard() {
      *flag = false;
      *horizon = std::numeric_limits<double>::infinity();
    }
  } guard{&draining_, &admission_horizon_s_};
  admission_horizon_s_ = horizon_s;
  // Serving floor: arrivals backdated before the clock at drain start
  // (reused timeline) are treated as arriving now.
  drain_floor_s_ = cluster_.engine().now();
  if (config_.pipeline == PipelineMode::Monolithic) {
    drain_monolithic(drain_floor_s_);
  } else {
    drain_quantum();
  }
  return !crashed_ && queued_frames() == 0;
}

SessionStats RenderService::stats_for(int session_index) const {
  const SessionState& state = *sessions_[static_cast<std::size_t>(session_index)];
  SessionStats out;
  out.name = state.profile.name;
  out.priority = state.profile.priority;
  out.queued_frames = static_cast<int>(state.queue.size());
  out.tiles_delivered = state.tiles_delivered;
  out.cost_scale = state.cost_scale;

  std::vector<double> latencies;
  double first_arrival = kInf;
  double last_finish = 0.0;
  for (const FrameRecord& f : completed_) {
    if (f.session != session_index) continue;
    ++out.frames;
    latencies.push_back(f.latency_s());
    out.mean_latency_s += f.latency_s();
    out.max_latency_s = std::max(out.max_latency_s, f.latency_s());
    out.cache_hits += f.cache_hits;
    out.cache_misses += f.cache_misses;
    first_arrival = std::min(first_arrival, f.arrival_s);
    last_finish = std::max(last_finish, f.finish_s);
  }
  if (out.frames == 0) return out;
  out.mean_latency_s /= out.frames;
  out.p50_latency_s = percentile(latencies, 50.0);
  out.p95_latency_s = percentile(latencies, 95.0);
  out.p99_latency_s = percentile(latencies, 99.0);
  const double span = last_finish - first_arrival;
  out.fps = span > 0.0 ? out.frames / span : 0.0;
  return out;
}

ServiceStats RenderService::stats() const {
  ServiceStats out;
  out.frames_total = static_cast<int>(completed_.size());
  if (cache_) out.cache = cache_->stats();
  out.cache_hit_rate = out.cache.hit_rate();
  out.tiles_total = tiles_total_;
  out.preemptions = preemptions_;
  out.bricks_prefetched = bricks_prefetched_;
  out.bytes_prefetched = bytes_prefetched_;
  out.frames_degraded = frames_degraded_;
  out.refinements_enqueued = refinements_enqueued_;
  out.refinements_served = refinements_served_;
  out.bricks_occupancy_culled = bricks_occupancy_culled_;
  out.classifications_built = classifications_.classifications_built();
  out.faults_injected = faults_injected_;
  out.quanta_retried = quanta_retried_;
  out.lane_stalls = lane_stalls_;
  out.lanes_dead = lanes_dead_;
  out.bricks_pushed_in = bricks_pushed_in_;

  if (config_.stats_window_s > 0.0) {
    // Fold GPU busy not yet attributed (work since the last frame
    // completion, e.g. prefetch transfers) into a copy of the bins,
    // then finalize per-window utilization.
    std::map<std::int64_t, ServiceWindow> bins = windows_;
    if (window_open_) {
      spread_busy(bins, config_.stats_window_s, busy_sample_t_,
                  cluster_.engine().now(),
                  cluster_.total_gpu_busy() - busy_sample_);
    }
    const double capacity =
        config_.stats_window_s * static_cast<double>(cluster_.total_gpus());
    out.windows.reserve(bins.size());
    for (auto& [bin, window] : bins) {
      window.utilization =
          capacity > 0.0
              ? std::min(1.0, std::max(0.0, window.gpu_busy_s / capacity))
              : 0.0;
      out.windows.push_back(window);
    }
  }

  const auto fill_class = [this](const std::string& cls, PriorityLatencies* out) {
    out->queue_wait = quantiles_from(metrics_.find_histogram(cls + ".queue_wait_s"));
    out->first_pixel =
        quantiles_from(metrics_.find_histogram(cls + ".first_pixel_s"));
    out->service = quantiles_from(metrics_.find_histogram(cls + ".service_s"));
  };
  fill_class("interactive", &out.interactive);
  fill_class("batch", &out.batch);

  for (int s = 0; s < num_sessions(); ++s) {
    SessionStats summary = stats_for(s);
    if (summary.frames == 0) continue;  // nothing completed yet
    out.sessions.push_back(std::move(summary));
  }

  if (completed_.empty()) return out;

  double last_finish = 0.0;
  for (const FrameRecord& f : completed_) {
    last_finish = std::max(last_finish, f.finish_s);
    out.bytes_h2d_saved += f.stats.bytes_h2d_saved;
    out.chunks_decompressed += f.stats.chunks_decompressed;
    out.decompress_s_total += f.stats.decompress_s_total;
    out.chunks_hydrated += f.stats.chunks_hydrated;
    out.bytes_hydrated += f.stats.bytes_hydrated;
  }
  out.makespan_s = last_finish - window_start_s_;
  out.fps = out.makespan_s > 0.0 ? out.frames_total / out.makespan_s : 0.0;
  const double gpu_busy = cluster_.total_gpu_busy() - gpu_busy_at_window_open_;
  const double capacity = out.makespan_s * cluster_.total_gpus();
  out.cluster_utilization = capacity > 0.0 ? gpu_busy / capacity : 0.0;

  out.frames = completed_;
  return out;
}

}  // namespace vrmr::service
