#include "service/render_service.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "mr/analysis.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "volren/fragment.hpp"
#include "volren/raycast.hpp"

namespace vrmr::service {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Serve-order tie-break: smaller key wins, then earlier submission.
struct PickKey {
  double primary = 0.0;
  std::uint64_t frame_id = 0;

  bool operator<(const PickKey& other) const {
    if (primary != other.primary) return primary < other.primary;
    return frame_id < other.frame_id;
  }
};

/// Decomposition signature for BrickKey::layout_id: brick dims + ghost
/// pin the brick extents for a given volume (axes are < 2^20 voxels).
std::uint64_t layout_signature(const volren::BrickLayout& layout) {
  const Int3 d = layout.brick_dims();
  const std::uint64_t packed = (static_cast<std::uint64_t>(d.x) << 42) |
                               (static_cast<std::uint64_t>(d.y) << 21) |
                               static_cast<std::uint64_t>(d.z);
  return packed * 31u + static_cast<std::uint64_t>(layout.ghost());
}

}  // namespace

const char* to_string(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::Fifo: return "fifo";
    case SchedulingPolicy::RoundRobin: return "round-robin";
    case SchedulingPolicy::ShortestJobFirst: return "sjf";
  }
  return "?";
}

RenderService::RenderService(cluster::Cluster& cluster, ServiceConfig config)
    : cluster_(cluster), config_(config) {
  if (config_.enable_brick_cache) {
    const std::uint64_t capacity =
        config_.cache_capacity_override > 0
            ? config_.cache_capacity_override
            : BrickCache::capacity_for(cluster_.config().hw.gpu,
                                       config_.cache_reserve_bytes);
    cache_.emplace(cluster_.total_gpus(), capacity);
  }
}

Session RenderService::open_session(SessionProfile profile) {
  auto state = std::make_unique<SessionState>();
  state->profile = std::move(profile);
  sessions_.push_back(std::move(state));
  return Session(this, num_sessions() - 1);
}

void RenderService::check_volume_compatible(const volren::Volume* volume) const {
  const auto it = volumes_.find(volume);
  if (it == volumes_.end()) return;  // unregistered: anything goes
  // The footgun this closes: destroying a volume and allocating a
  // different-shaped one at the same address without telling the
  // service. Same-shaped reuse is indistinguishable from legitimate
  // re-submission and stays the caller's responsibility
  // (invalidate_volume re-keys the address).
  VRMR_CHECK_MSG(it->second.dims == volume->dims(),
                 "volume @" << volume << " registered with dims "
                            << it->second.dims << " but now has "
                            << volume->dims()
                            << "; call invalidate_volume before reusing "
                               "the address with different voxels");
}

const RenderService::VolumeRegistration& RenderService::register_volume(
    const volren::Volume* volume) {
  check_volume_compatible(volume);
  const auto [it, inserted] = volumes_.try_emplace(
      volume, VolumeRegistration{next_volume_id_, generation_, volume->dims()});
  if (inserted) ++next_volume_id_;
  return it->second;
}

std::uint64_t RenderService::session_submit(int session, RenderRequest request) {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  VRMR_CHECK_MSG(request.volume != nullptr, "RenderRequest.volume must be set");
  VRMR_CHECK_MSG(std::isfinite(request.arrival_s) && request.arrival_s >= 0.0,
                 "arrival time must be finite and non-negative, got "
                     << request.arrival_s);
  (void)register_volume(request.volume);  // register + dims guard

  Pending pending;
  pending.frame_id = next_frame_id_++;
  // Memoize the decomposition once: every scheduling probe and the
  // render itself reuse it (previously rebuilt per decision + per frame).
  pending.layout = std::make_shared<const volren::BrickLayout>(
      volren::choose_layout(*request.volume, request.options,
                            cluster_.total_gpus()));
  ++layouts_built_;
  pending.layout_sig = layout_signature(*pending.layout);
  pending.submit_dims = request.volume->dims();
  pending.submit_floor_s = cluster_.engine().now();
  pending.request = std::move(request);
  pending.submit_cost_s = estimate_cost_s(pending);
  outstanding_cost_s_ += pending.submit_cost_s;

  const std::uint64_t id = pending.frame_id;
  sessions_[static_cast<std::size_t>(session)]->queue.push_back(
      std::move(pending));
  return id;
}

void RenderService::session_on_frame(int session, FrameCallback callback) {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  sessions_[static_cast<std::size_t>(session)]->callback = std::move(callback);
}

SessionStats RenderService::session_stats(int session) const {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  return stats_for(session);
}

const SessionProfile& RenderService::session_profile(int session) const {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  return sessions_[static_cast<std::size_t>(session)]->profile;
}

void RenderService::invalidate_volume(const volren::Volume* volume) {
  // The erase below is what re-keys the address (volume ids are never
  // reused); the generation bump records the new registration epoch,
  // which the dims guard in register_volume is scoped to.
  ++generation_;
  const auto it = volumes_.find(volume);
  if (it == volumes_.end()) return;
  if (cache_) cache_->invalidate_volume(it->second.id);
  volumes_.erase(it);
}

int RenderService::queued_frames() const {
  int queued = 0;
  for (const auto& session : sessions_)
    queued += static_cast<int>(session->queue.size());
  return queued;
}

bool RenderService::volume_warm(const volren::Volume* volume) const {
  if (!cache_) return false;
  const auto it = volumes_.find(volume);
  if (it == volumes_.end()) return false;
  return cache_->resident_bytes_for_volume(it->second.id) > 0;
}

double RenderService::earliest_head_arrival() const {
  double earliest = kInf;
  for (const auto& session : sessions_) {
    if (session->queue.empty()) continue;
    earliest = std::min(earliest, session->queue.front().effective_arrival_s());
  }
  return earliest;
}

int RenderService::pick_next(double now, double* predicted_cost_s) const {
  // Priority admission: when any Interactive head has arrived, Batch
  // heads do not compete this round (the policy orders within a class).
  bool interactive_arrived = false;
  for (const auto& session : sessions_) {
    if (session->profile.priority != Priority::Interactive) continue;
    if (session->queue.empty()) continue;
    if (session->queue.front().effective_arrival_s() <= now) {
      interactive_arrived = true;
      break;
    }
  }

  int best = -1;
  PickKey best_key{};
  *predicted_cost_s = -1.0;
  for (int s = 0; s < num_sessions(); ++s) {
    const SessionState& session = *sessions_[static_cast<std::size_t>(s)];
    if (session.queue.empty()) continue;
    const Pending& head = session.queue.front();
    if (head.effective_arrival_s() > now) continue;  // not arrived yet
    if (interactive_arrived && session.profile.priority != Priority::Interactive)
      continue;

    PickKey key;
    key.frame_id = head.frame_id;
    switch (config_.policy) {
      case SchedulingPolicy::Fifo:
        key.primary = head.effective_arrival_s();
        break;
      case SchedulingPolicy::RoundRobin:
        // Least recently served session first; never-served sessions
        // (seq 0) go ahead in open order.
        key.primary = static_cast<double>(session.last_served_seq);
        break;
      case SchedulingPolicy::ShortestJobFirst:
        key.primary = estimate_cost_s(head);
        break;
    }
    if (best < 0 || key < best_key) {
      best = s;
      best_key = key;
      if (config_.policy == SchedulingPolicy::ShortestJobFirst)
        *predicted_cost_s = key.primary;
    }
  }
  return best;
}

void RenderService::advance_clock_to(double t) {
  auto& engine = cluster_.engine();
  if (t <= engine.now()) return;
  engine.schedule_at(t, [] {});
  engine.run();
}

double RenderService::estimate_cost_s(const Pending& pending) const {
  const RenderRequest& req = pending.request;
  const volren::Volume& volume = *req.volume;
  const int gpus = cluster_.total_gpus();
  const volren::BrickLayout& layout = *pending.layout;

  // A-priori counters for mr::speed_of_light. These are coarse — a
  // centered orbit framing covers roughly half the image, each covered
  // ray samples about one mean volume axis — but SJF only needs the
  // relative ordering, which volume size, image size and residency
  // dominate.
  mr::JobStats pred;
  pred.num_gpus = gpus;
  pred.num_nodes = cluster_.num_nodes();

  const double rays = 0.5 * static_cast<double>(req.options.image_width) *
                      static_cast<double>(req.options.image_height);
  const Int3 dims = volume.dims();
  const double mean_axis = static_cast<double>(dims.x + dims.y + dims.z) / 3.0;
  pred.total_samples = static_cast<std::uint64_t>(
      rays * mean_axis * static_cast<double>(req.options.cast.sampling_rate));

  const Int3 grid = layout.grid_dims();
  const double layers =
      std::cbrt(static_cast<double>(grid.x) * grid.y * grid.z);  // bricks per ray
  const double fragments = rays * layers;
  const double pair_bytes = 4.0 + static_cast<double>(sizeof(volren::RayFragment));
  pred.fragments = static_cast<std::uint64_t>(fragments);
  pred.bytes_d2h = static_cast<std::uint64_t>(fragments * pair_bytes);
  pred.bytes_net = pred.bytes_d2h;
  pred.bytes_net_inter = static_cast<std::uint64_t>(
      static_cast<double>(pred.bytes_net) *
      static_cast<double>(pred.num_nodes - 1) / static_cast<double>(pred.num_nodes));

  // H2D: only bricks that are NOT already resident on the GPU they will
  // be dealt to (mr::Job deals unpinned chunks round-robin in add
  // order, so brick i lands on GPU i % gpus).
  std::uint64_t vid = 0;
  bool cache_aware = false;
  if (cache_.has_value()) {
    if (const auto it = volumes_.find(req.volume); it != volumes_.end()) {
      vid = it->second.id;
      cache_aware = true;
    }
  }
  std::uint64_t h2d = 0;
  int deal = 0;
  for (const volren::BrickInfo& brick : layout.bricks()) {
    const int gpu = deal++ % gpus;
    const bool warm = cache_aware &&
                      cache_->resident(gpu, BrickKey{vid, brick.id,
                                                     pending.layout_sig});
    if (!warm) h2d += brick.device_bytes();
  }
  pred.bytes_h2d = h2d;
  if (req.options.include_disk_io) pred.bytes_disk = h2d;

  const mr::SpeedOfLight sol = mr::speed_of_light(pred, cluster_.config());
  // Serial bound + disk (analysis excludes disk from its bounds; a
  // served frame still pays it).
  return sol.serial_bound_s + sol.disk_s;
}

void RenderService::serve_one(int session_index, double arrival_floor_s,
                              double predicted_cost_s) {
  SessionState& session = *sessions_[static_cast<std::size_t>(session_index)];
  {
    // The memoized layout describes the volume as it was at submit; a
    // queued frame must not render a reshaped volume with it (an
    // invalidate_volume + same-address reallocation re-registers
    // cleanly, so the register_volume guard below cannot catch this
    // case). Checked before any state mutation.
    const Pending& head = session.queue.front();
    VRMR_CHECK_MSG(head.request.volume->dims() == head.submit_dims,
                   "volume @" << head.request.volume << " had dims "
                              << head.submit_dims << " when frame "
                              << head.frame_id
                              << " was submitted but now has "
                              << head.request.volume->dims()
                              << "; queued frames cannot outlive their "
                                 "volume's shape");
  }
  Pending pending = std::move(session.queue.front());
  session.queue.pop_front();
  session.last_served_seq = ++serve_seq_;
  outstanding_cost_s_ -= pending.submit_cost_s;

  auto& engine = cluster_.engine();
  FrameRecord record;
  record.session = session_index;
  record.frame_id = pending.frame_id;
  record.arrival_s = std::max(pending.effective_arrival_s(), arrival_floor_s);

  // Open (or widen) the serving window before rendering, and snapshot
  // GPU busy at the first-ever serve: the shared cluster may have run
  // foreign work before this service's window, which utilization must
  // not charge.
  if (!window_open_) {
    gpu_busy_at_window_open_ = cluster_.total_gpu_busy();
    window_start_s_ = record.arrival_s;
    window_open_ = true;
  } else if (record.arrival_s < window_start_s_) {
    window_start_s_ = record.arrival_s;
  }
  // SJF scored this frame against the same cache state when it picked
  // it; other policies never run the model.
  if (predicted_cost_s >= 0.0) record.predicted_cost_s = predicted_cost_s;
  record.start_s = engine.now();

  mr::StagingHook hook;
  if (cache_) {
    // Re-resolve the registration at render time: an invalidation
    // between submit and serve re-keys the address (and re-checks dims).
    const std::uint64_t vid = register_volume(pending.request.volume).id;
    const std::uint64_t lid = pending.layout_sig;
    BrickCache* cache = &*cache_;
    hook = [cache, vid, lid](int gpu, const mr::Chunk& chunk) {
      const auto* brick = dynamic_cast<const volren::BrickChunk*>(&chunk);
      if (brick == nullptr) return false;  // non-brick chunks are never cached
      return cache->lookup_or_admit(gpu, BrickKey{vid, brick->info().id, lid},
                                    chunk.device_bytes());
    };
  }

  volren::RenderResult result = volren::render_mapreduce(
      cluster_, *pending.request.volume, pending.request.options, std::move(hook),
      *pending.layout);

  // The job itself counts skipped stagings, so hit accounting is
  // uniform whether or not a cache is wired in.
  record.cache_hits = result.stats.chunks_resident;
  record.cache_misses =
      static_cast<std::uint64_t>(result.stats.num_chunks) - record.cache_hits;
  record.finish_s = engine.now();
  record.stats = std::move(result.stats);
  if (config_.keep_images) record.image = std::move(result.image);

  VRMR_DEBUG("service") << "session " << session_index << " frame "
                        << record.frame_id << " latency=" << record.latency_s()
                        << "s (wait=" << record.queue_wait_s()
                        << "s) hits=" << record.cache_hits << "/"
                        << (record.cache_hits + record.cache_misses);

  completed_.push_back(std::move(record));
  // Event-driven delivery: the engine clock equals finish_s here, and
  // no later frame has started. The callback may submit more frames
  // (session states are pointer-stable, and the drain loop re-scans).
  // Invoke a copy so the callback can re-register itself (assigning
  // session.callback mid-invocation would destroy the running lambda).
  if (session.callback) {
    const FrameCallback deliver = session.callback;
    deliver(completed_.back());
  }
}

void RenderService::drain() {
  // Reentrant drain (a callback forcing synchronous completion) is a
  // no-op: the outer drain loop is already serving everything queued,
  // and nesting would reallocate completed_ under the caller's record.
  if (draining_) return;
  draining_ = true;
  struct DrainGuard {  // also resets when a serve throws
    bool* flag;
    ~DrainGuard() { *flag = false; }
  } guard{&draining_};
  // Serving floor: arrivals backdated before the clock at drain start
  // (reused timeline) are treated as arriving now.
  const double arrival_floor = cluster_.engine().now();
  while (true) {
    const double earliest = earliest_head_arrival();
    if (earliest == kInf) break;  // every queue drained
    double predicted_cost_s = -1.0;
    const int pick = pick_next(cluster_.engine().now(), &predicted_cost_s);
    if (pick < 0) {
      // Nothing has arrived yet: idle the cluster until the next frame.
      advance_clock_to(earliest);
      continue;
    }
    serve_one(pick, arrival_floor, predicted_cost_s);
  }
}

SessionStats RenderService::stats_for(int session_index) const {
  const SessionState& state = *sessions_[static_cast<std::size_t>(session_index)];
  SessionStats out;
  out.name = state.profile.name;
  out.priority = state.profile.priority;
  out.queued_frames = static_cast<int>(state.queue.size());

  std::vector<double> latencies;
  double first_arrival = kInf;
  double last_finish = 0.0;
  for (const FrameRecord& f : completed_) {
    if (f.session != session_index) continue;
    ++out.frames;
    latencies.push_back(f.latency_s());
    out.mean_latency_s += f.latency_s();
    out.max_latency_s = std::max(out.max_latency_s, f.latency_s());
    out.cache_hits += f.cache_hits;
    out.cache_misses += f.cache_misses;
    first_arrival = std::min(first_arrival, f.arrival_s);
    last_finish = std::max(last_finish, f.finish_s);
  }
  if (out.frames == 0) return out;
  out.mean_latency_s /= out.frames;
  out.p50_latency_s = percentile(latencies, 50.0);
  out.p95_latency_s = percentile(latencies, 95.0);
  out.p99_latency_s = percentile(latencies, 99.0);
  const double span = last_finish - first_arrival;
  out.fps = span > 0.0 ? out.frames / span : 0.0;
  return out;
}

ServiceStats RenderService::stats() const {
  ServiceStats out;
  out.frames_total = static_cast<int>(completed_.size());
  if (cache_) out.cache = cache_->stats();
  out.cache_hit_rate = out.cache.hit_rate();

  for (int s = 0; s < num_sessions(); ++s) {
    SessionStats summary = stats_for(s);
    if (summary.frames == 0) continue;  // nothing completed yet
    out.sessions.push_back(std::move(summary));
  }

  if (completed_.empty()) return out;

  double last_finish = 0.0;
  for (const FrameRecord& f : completed_) {
    last_finish = std::max(last_finish, f.finish_s);
    out.bytes_h2d_saved += f.stats.bytes_h2d_saved;
  }
  out.makespan_s = last_finish - window_start_s_;
  out.fps = out.makespan_s > 0.0 ? out.frames_total / out.makespan_s : 0.0;
  const double gpu_busy = cluster_.total_gpu_busy() - gpu_busy_at_window_open_;
  const double capacity = out.makespan_s * cluster_.total_gpus();
  out.cluster_utilization = capacity > 0.0 ? gpu_busy / capacity : 0.0;

  out.frames = completed_;
  return out;
}

}  // namespace vrmr::service
