#include "service/render_service.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mr/analysis.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "volren/fragment.hpp"
#include "volren/raycast.hpp"

namespace vrmr::service {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Serve-order tie-break: smaller key wins, then earlier submission.
struct PickKey {
  double primary = 0.0;
  std::uint64_t frame_id = 0;

  bool operator<(const PickKey& other) const {
    if (primary != other.primary) return primary < other.primary;
    return frame_id < other.frame_id;
  }
};

/// Decomposition signature for BrickKey::layout_id: brick dims + ghost
/// pin the brick extents for a given volume (axes are < 2^20 voxels).
std::uint64_t layout_signature(const volren::BrickLayout& layout) {
  const Int3 d = layout.brick_dims();
  const std::uint64_t packed = (static_cast<std::uint64_t>(d.x) << 42) |
                               (static_cast<std::uint64_t>(d.y) << 21) |
                               static_cast<std::uint64_t>(d.z);
  return packed * 31u + static_cast<std::uint64_t>(layout.ghost());
}

BrickCacheStats stats_delta(const BrickCacheStats& now, const BrickCacheStats& then) {
  BrickCacheStats d;
  d.hits = now.hits - then.hits;
  d.misses = now.misses - then.misses;
  d.insertions = now.insertions - then.insertions;
  d.evictions = now.evictions - then.evictions;
  d.rejected_oversized = now.rejected_oversized - then.rejected_oversized;
  d.bytes_saved = now.bytes_saved - then.bytes_saved;
  d.bytes_evicted = now.bytes_evicted - then.bytes_evicted;
  return d;
}

}  // namespace

const char* to_string(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::Fifo: return "fifo";
    case SchedulingPolicy::RoundRobin: return "round-robin";
    case SchedulingPolicy::ShortestJobFirst: return "sjf";
  }
  return "?";
}

RenderService::RenderService(cluster::Cluster& cluster, ServiceConfig config)
    : cluster_(cluster), config_(config) {
  if (config_.enable_brick_cache) {
    const std::uint64_t capacity =
        config_.cache_capacity_override > 0
            ? config_.cache_capacity_override
            : BrickCache::capacity_for(cluster_.config().hw.gpu,
                                       config_.cache_reserve_bytes);
    cache_.emplace(cluster_.total_gpus(), capacity);
  }
}

SessionId RenderService::open_session(std::string name) {
  sessions_.push_back(Session{std::move(name), {}, 0});
  return static_cast<SessionId>(sessions_.size()) - 1;
}

std::uint64_t RenderService::submit(SessionId session, RenderRequest request) {
  VRMR_CHECK_MSG(session >= 0 && session < num_sessions(),
                 "unknown session " << session);
  VRMR_CHECK_MSG(request.volume != nullptr, "RenderRequest.volume must be set");
  VRMR_CHECK_MSG(std::isfinite(request.arrival_s) && request.arrival_s >= 0.0,
                 "arrival time must be finite and non-negative, got "
                     << request.arrival_s);
  (void)volume_id(request.volume);  // register before any cost-model probe
  const std::uint64_t id = next_frame_id_++;
  sessions_[static_cast<std::size_t>(session)].queue.push_back(
      Pending{std::move(request), id});
  return id;
}

void RenderService::submit_orbit(SessionId session, const volren::Volume& volume,
                                 volren::RenderOptions options, int frames,
                                 double first_arrival_s, double frame_interval_s) {
  VRMR_CHECK(frames >= 1);
  for (int f = 0; f < frames; ++f) {
    options.azimuth =
        6.2831853f * static_cast<float>(f) / static_cast<float>(frames);
    RenderRequest request;
    request.volume = &volume;
    request.options = options;
    request.arrival_s = first_arrival_s + frame_interval_s * f;
    submit(session, request);
  }
}

std::uint64_t RenderService::volume_id(const volren::Volume* volume) {
  // Ids are never reused (next_volume_id_ only grows), so an
  // invalidated address re-registers cold.
  const auto [it, inserted] = volume_ids_.emplace(volume, next_volume_id_);
  if (inserted) ++next_volume_id_;
  return it->second;
}

void RenderService::invalidate_volume(const volren::Volume* volume) {
  const auto it = volume_ids_.find(volume);
  if (it == volume_ids_.end()) return;
  if (cache_) cache_->invalidate_volume(it->second);
  volume_ids_.erase(it);
}

double RenderService::earliest_head_arrival() const {
  double earliest = kInf;
  for (const Session& session : sessions_) {
    if (session.queue.empty()) continue;
    earliest = std::min(earliest, session.queue.front().request.arrival_s);
  }
  return earliest;
}

int RenderService::pick_next(double now, double* predicted_cost_s) const {
  int best = -1;
  PickKey best_key{};
  *predicted_cost_s = -1.0;
  for (int s = 0; s < num_sessions(); ++s) {
    const Session& session = sessions_[static_cast<std::size_t>(s)];
    if (session.queue.empty()) continue;
    const Pending& head = session.queue.front();
    if (head.request.arrival_s > now) continue;  // not arrived yet

    PickKey key;
    key.frame_id = head.frame_id;
    switch (config_.policy) {
      case SchedulingPolicy::Fifo:
        key.primary = head.request.arrival_s;
        break;
      case SchedulingPolicy::RoundRobin:
        // Least recently served session first; never-served sessions
        // (seq 0) go ahead in open order.
        key.primary = static_cast<double>(session.last_served_seq);
        break;
      case SchedulingPolicy::ShortestJobFirst:
        key.primary = estimate_cost_s(head);
        break;
    }
    if (best < 0 || key < best_key) {
      best = s;
      best_key = key;
      if (config_.policy == SchedulingPolicy::ShortestJobFirst)
        *predicted_cost_s = key.primary;
    }
  }
  return best;
}

void RenderService::advance_clock_to(double t) {
  auto& engine = cluster_.engine();
  if (t <= engine.now()) return;
  engine.schedule_at(t, [] {});
  engine.run();
}

double RenderService::estimate_cost_s(const Pending& pending) const {
  const RenderRequest& req = pending.request;
  const volren::Volume& volume = *req.volume;
  const int gpus = cluster_.total_gpus();
  const volren::BrickLayout layout = volren::choose_layout(volume, req.options, gpus);

  // A-priori counters for mr::speed_of_light. These are coarse — a
  // centered orbit framing covers roughly half the image, each covered
  // ray samples about one mean volume axis — but SJF only needs the
  // relative ordering, which volume size, image size and residency
  // dominate.
  mr::JobStats pred;
  pred.num_gpus = gpus;
  pred.num_nodes = cluster_.num_nodes();

  const double rays = 0.5 * static_cast<double>(req.options.image_width) *
                      static_cast<double>(req.options.image_height);
  const Int3 dims = volume.dims();
  const double mean_axis = static_cast<double>(dims.x + dims.y + dims.z) / 3.0;
  pred.total_samples = static_cast<std::uint64_t>(
      rays * mean_axis * static_cast<double>(req.options.cast.sampling_rate));

  const Int3 grid = layout.grid_dims();
  const double layers =
      std::cbrt(static_cast<double>(grid.x) * grid.y * grid.z);  // bricks per ray
  const double fragments = rays * layers;
  const double pair_bytes = 4.0 + static_cast<double>(sizeof(volren::RayFragment));
  pred.fragments = static_cast<std::uint64_t>(fragments);
  pred.bytes_d2h = static_cast<std::uint64_t>(fragments * pair_bytes);
  pred.bytes_net = pred.bytes_d2h;
  pred.bytes_net_inter = static_cast<std::uint64_t>(
      static_cast<double>(pred.bytes_net) *
      static_cast<double>(pred.num_nodes - 1) / static_cast<double>(pred.num_nodes));

  // H2D: only bricks that are NOT already resident on the GPU they will
  // be dealt to (mr::Job deals unpinned chunks round-robin in add
  // order, so brick i lands on GPU i % gpus).
  std::uint64_t vid = 0;
  bool cache_aware = false;
  if (cache_.has_value()) {
    if (const auto it = volume_ids_.find(req.volume); it != volume_ids_.end()) {
      vid = it->second;
      cache_aware = true;
    }
  }
  const std::uint64_t lid = layout_signature(layout);
  std::uint64_t h2d = 0;
  int deal = 0;
  for (const volren::BrickInfo& brick : layout.bricks()) {
    const int gpu = deal++ % gpus;
    const bool warm =
        cache_aware && cache_->resident(gpu, BrickKey{vid, brick.id, lid});
    if (!warm) h2d += brick.device_bytes();
  }
  pred.bytes_h2d = h2d;
  if (req.options.include_disk_io) pred.bytes_disk = h2d;

  const mr::SpeedOfLight sol = mr::speed_of_light(pred, cluster_.config());
  // Serial bound + disk (analysis excludes disk from its bounds; a
  // served frame still pays it).
  return sol.serial_bound_s + sol.disk_s;
}

FrameRecord RenderService::render_one(Session& session, SessionId sid,
                                      double arrival_floor_s,
                                      double predicted_cost_s) {
  Pending pending = std::move(session.queue.front());
  session.queue.pop_front();
  session.last_served_seq = ++serve_seq_;

  auto& engine = cluster_.engine();
  FrameRecord record;
  record.session = sid;
  record.frame_id = pending.frame_id;
  record.arrival_s = std::max(pending.request.arrival_s, arrival_floor_s);
  // SJF scored this frame against the same cache state when it picked
  // it; other policies never run the model.
  if (predicted_cost_s >= 0.0) record.predicted_cost_s = predicted_cost_s;
  record.start_s = engine.now();

  mr::StagingHook hook;
  if (cache_) {
    const std::uint64_t vid = volume_id(pending.request.volume);
    const std::uint64_t lid = layout_signature(volren::choose_layout(
        *pending.request.volume, pending.request.options, cluster_.total_gpus()));
    BrickCache* cache = &*cache_;
    hook = [cache, vid, lid](int gpu, const mr::Chunk& chunk) {
      const auto* brick = dynamic_cast<const volren::BrickChunk*>(&chunk);
      if (brick == nullptr) return false;  // non-brick chunks are never cached
      return cache->lookup_or_admit(gpu, BrickKey{vid, brick->info().id, lid},
                                    chunk.device_bytes());
    };
  }

  volren::RenderResult result = volren::render_mapreduce(
      cluster_, *pending.request.volume, pending.request.options, std::move(hook));

  // The job itself counts skipped stagings, so hit accounting is
  // uniform whether or not a cache is wired in.
  record.cache_hits = result.stats.chunks_resident;
  record.cache_misses =
      static_cast<std::uint64_t>(result.stats.num_chunks) - record.cache_hits;
  record.finish_s = engine.now();
  record.stats = std::move(result.stats);
  if (config_.keep_images) record.image = std::move(result.image);

  VRMR_DEBUG("service") << "session " << sid << " frame " << record.frame_id
                        << " latency=" << record.latency_s()
                        << "s (wait=" << record.queue_wait_s()
                        << "s) hits=" << record.cache_hits << "/"
                        << (record.cache_hits + record.cache_misses);
  return record;
}

ServiceStats RenderService::run() {
  const double gpu_busy_start = cluster_.total_gpu_busy();
  const BrickCacheStats cache_start = cache_ ? cache_->stats() : BrickCacheStats{};
  // Serving window opens at the first serveable arrival — or at the
  // current clock when arrivals are backdated (reused timeline). The
  // same clock floors per-frame effective arrivals.
  const double arrival_floor = cluster_.engine().now();
  const double first_arrival = earliest_head_arrival();
  const double run_start =
      first_arrival == kInf ? arrival_floor
                            : std::max(arrival_floor, first_arrival);

  std::vector<FrameRecord> records;
  while (true) {
    const double earliest = earliest_head_arrival();
    if (earliest == kInf) break;  // every queue drained
    double predicted_cost_s = -1.0;
    const int pick = pick_next(cluster_.engine().now(), &predicted_cost_s);
    if (pick < 0) {
      // Nothing has arrived yet: idle the cluster until the next frame.
      advance_clock_to(earliest);
      continue;
    }
    records.push_back(render_one(sessions_[static_cast<std::size_t>(pick)], pick,
                                 arrival_floor, predicted_cost_s));
  }
  return finalize(std::move(records), run_start, gpu_busy_start, cache_start);
}

ServiceStats RenderService::finalize(std::vector<FrameRecord> frames,
                                     double run_start_s, double gpu_busy_start_s,
                                     const BrickCacheStats& cache_start) {
  ServiceStats out;
  out.frames_total = static_cast<int>(frames.size());
  if (cache_) out.cache = stats_delta(cache_->stats(), cache_start);
  out.cache_hit_rate = out.cache.hit_rate();

  if (frames.empty()) {
    out.frames = std::move(frames);
    return out;
  }

  double last_finish = 0.0;
  for (const FrameRecord& f : frames) {
    last_finish = std::max(last_finish, f.finish_s);
    out.bytes_h2d_saved += f.stats.bytes_h2d_saved;
  }
  out.makespan_s = last_finish - run_start_s;
  out.fps = out.makespan_s > 0.0 ? out.frames_total / out.makespan_s : 0.0;
  const double gpu_busy = cluster_.total_gpu_busy() - gpu_busy_start_s;
  const double capacity = out.makespan_s * cluster_.total_gpus();
  out.cluster_utilization = capacity > 0.0 ? gpu_busy / capacity : 0.0;

  for (int s = 0; s < num_sessions(); ++s) {
    SessionSummary summary;
    summary.id = s;
    summary.name = sessions_[static_cast<std::size_t>(s)].name;
    std::vector<double> latencies;
    double session_first_arrival = kInf;
    double session_last_finish = 0.0;
    for (const FrameRecord& f : frames) {
      if (f.session != s) continue;
      ++summary.frames;
      latencies.push_back(f.latency_s());
      summary.mean_latency_s += f.latency_s();
      summary.max_latency_s = std::max(summary.max_latency_s, f.latency_s());
      summary.cache_hits += f.cache_hits;
      summary.cache_misses += f.cache_misses;
      session_first_arrival = std::min(session_first_arrival, f.arrival_s);
      session_last_finish = std::max(session_last_finish, f.finish_s);
    }
    if (summary.frames == 0) continue;  // session had no frames this run
    summary.mean_latency_s /= summary.frames;
    summary.p50_latency_s = percentile(latencies, 50.0);
    summary.p95_latency_s = percentile(latencies, 95.0);
    summary.p99_latency_s = percentile(latencies, 99.0);
    const double span = session_last_finish - session_first_arrival;
    summary.fps = span > 0.0 ? summary.frames / span : 0.0;
    out.sessions.push_back(std::move(summary));
  }

  out.frames = std::move(frames);
  return out;
}

}  // namespace vrmr::service
