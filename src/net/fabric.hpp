#pragma once

// Simulated cluster interconnect.
//
// Models the paper's QDR InfiniBand with a classic alpha-beta cost:
// a message of n bytes from node s to node d occupies s's transmit port
// and d's receive port for n/beta seconds (both must be free before the
// transfer starts; ports are serial FIFO resources), then arrives after
// an additional wire latency alpha. Per-NIC serialization is what makes
// direct-send's all-to-all fragment exchange the dominant cost at high
// GPU counts — the crossover behaviour of Fig. 3.
//
// Intra-node "sends" (mapper and reducer on the same node) bypass the
// NIC and are charged at host-memcpy bandwidth without port contention,
// matching the paper's observation that same-node routing is cheap.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace vrmr::net {

struct FabricModel {
  /// One-way wire latency (QDR InfiniBand ~ a few microseconds).
  double latency_s = 5e-6;
  /// Effective per-port bandwidth (QDR 4x ≈ 32 Gbit/s ≈ 3.2 GB/s usable).
  double bandwidth_Bps = 3.2e9;
  /// Host memcpy path for same-node transfers.
  double intra_node_bandwidth_Bps = 5.0e9;
  double intra_node_latency_s = 1e-6;
  /// Fixed per-message software overhead charged on the sender port.
  double per_message_overhead_s = 2e-6;
  /// Base ack timeout for send_reliable retransmits; doubles per attempt.
  double retransmit_timeout_s = 100e-6;
};

/// Verdict of the fault injector for one message, consulted at send
/// time. Deterministic injectors (driven by a fault::FaultPlan) make
/// the whole fabric schedule replayable.
struct FaultDecision {
  bool drop = false;           // message lost in flight
  double extra_delay_s = 0.0;  // additional wire latency
};

/// (src_node, dst_node, bytes, msg_seq) -> decision. msg_seq is the
/// fabric-wide message ordinal (messages() before this send), so an
/// injector can target "the Nth message" exactly.
using FaultInjector =
    std::function<FaultDecision(int, int, std::uint64_t, std::uint64_t)>;

class Fabric {
 public:
  Fabric(sim::Engine& engine, FabricModel model, int num_nodes);

  int num_nodes() const { return static_cast<int>(tx_.size()); }
  const FabricModel& model() const { return model_; }

  /// Transfer `bytes` from src_node to dst_node; `on_delivered` fires at
  /// the simulated time the last byte reaches the destination.
  ///
  /// This is the unreliable datagram primitive: under an injected drop
  /// the message still serializes on its ports (the wire did the work)
  /// but `on_delivered` never fires. Without faults, messages between a
  /// fixed (src, dst) pair deliver FIFO — the serial tx/rx ports order
  /// them. Callers that must survive loss use send_reliable().
  void send(int src_node, int dst_node, std::uint64_t bytes,
            std::function<void()> on_delivered);

  /// Reliable transfer: retransmits on injected drops (sender ack
  /// timeout, exponential backoff) until the payload lands, then fires
  /// `on_delivered` exactly once. Retransmission can reorder relative
  /// to later sends — per-(src, dst) FIFO holds only fault-free.
  void send_reliable(int src_node, int dst_node, std::uint64_t bytes,
                     std::function<void()> on_delivered);

  /// Installs (or clears) the fault injector consulted once per message
  /// at send time. Keep it deterministic: drive it from a fault plan,
  /// not wall-clock randomness.
  void set_fault_injector(FaultInjector injector) {
    fault_injector_ = std::move(injector);
  }

  /// Serialization + latency for one message, ignoring contention
  /// (the "speed-of-light" per-message time used in §6.3 analysis).
  double ideal_transfer_time(int src_node, int dst_node, std::uint64_t bytes) const;

  // --- accounting ---------------------------------------------------------
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t inter_node_bytes() const { return inter_node_bytes_; }
  std::uint64_t messages() const { return messages_; }
  std::uint64_t drops() const { return drops_; }
  std::uint64_t retransmits() const { return retransmits_; }
  sim::Resource& tx(int node) { return *tx_.at(static_cast<size_t>(node)); }
  sim::Resource& rx(int node) { return *rx_.at(static_cast<size_t>(node)); }

  void reset_accounting();

 private:
  /// One transmission attempt; exactly one of on_delivered/on_dropped
  /// fires (at delivery time or at the sender's detection of the loss).
  void send_attempt(int src_node, int dst_node, std::uint64_t bytes,
                    std::function<void()> on_delivered,
                    std::function<void()> on_dropped);
  void reliable_attempt(int src_node, int dst_node, std::uint64_t bytes,
                        std::function<void()> on_delivered, int attempt);

  sim::Engine* engine_;
  FabricModel model_;
  std::vector<std::unique_ptr<sim::Resource>> tx_;
  std::vector<std::unique_ptr<sim::Resource>> rx_;
  FaultInjector fault_injector_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t inter_node_bytes_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t retransmits_ = 0;
};

}  // namespace vrmr::net
