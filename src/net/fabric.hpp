#pragma once

// Simulated cluster interconnect.
//
// Models the paper's QDR InfiniBand with a classic alpha-beta cost:
// a message of n bytes from node s to node d occupies s's transmit port
// and d's receive port for n/beta seconds (both must be free before the
// transfer starts; ports are serial FIFO resources), then arrives after
// an additional wire latency alpha. Per-NIC serialization is what makes
// direct-send's all-to-all fragment exchange the dominant cost at high
// GPU counts — the crossover behaviour of Fig. 3.
//
// Intra-node "sends" (mapper and reducer on the same node) bypass the
// NIC and are charged at host-memcpy bandwidth without port contention,
// matching the paper's observation that same-node routing is cheap.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace vrmr::net {

struct FabricModel {
  /// One-way wire latency (QDR InfiniBand ~ a few microseconds).
  double latency_s = 5e-6;
  /// Effective per-port bandwidth (QDR 4x ≈ 32 Gbit/s ≈ 3.2 GB/s usable).
  double bandwidth_Bps = 3.2e9;
  /// Host memcpy path for same-node transfers.
  double intra_node_bandwidth_Bps = 5.0e9;
  double intra_node_latency_s = 1e-6;
  /// Fixed per-message software overhead charged on the sender port.
  double per_message_overhead_s = 2e-6;
};

class Fabric {
 public:
  Fabric(sim::Engine& engine, FabricModel model, int num_nodes);

  int num_nodes() const { return static_cast<int>(tx_.size()); }
  const FabricModel& model() const { return model_; }

  /// Transfer `bytes` from src_node to dst_node; `on_delivered` fires at
  /// the simulated time the last byte reaches the destination.
  void send(int src_node, int dst_node, std::uint64_t bytes,
            std::function<void()> on_delivered);

  /// Serialization + latency for one message, ignoring contention
  /// (the "speed-of-light" per-message time used in §6.3 analysis).
  double ideal_transfer_time(int src_node, int dst_node, std::uint64_t bytes) const;

  // --- accounting ---------------------------------------------------------
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t inter_node_bytes() const { return inter_node_bytes_; }
  std::uint64_t messages() const { return messages_; }
  sim::Resource& tx(int node) { return *tx_.at(static_cast<size_t>(node)); }
  sim::Resource& rx(int node) { return *rx_.at(static_cast<size_t>(node)); }

  void reset_accounting();

 private:
  sim::Engine* engine_;
  FabricModel model_;
  std::vector<std::unique_ptr<sim::Resource>> tx_;
  std::vector<std::unique_ptr<sim::Resource>> rx_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t inter_node_bytes_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace vrmr::net
