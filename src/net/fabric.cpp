#include "net/fabric.hpp"

#include <array>

#include "util/check.hpp"

namespace vrmr::net {

Fabric::Fabric(sim::Engine& engine, FabricModel model, int num_nodes)
    : engine_(&engine), model_(model) {
  VRMR_CHECK(num_nodes >= 1);
  VRMR_CHECK(model.bandwidth_Bps > 0 && model.intra_node_bandwidth_Bps > 0);
  tx_.reserve(static_cast<size_t>(num_nodes));
  rx_.reserve(static_cast<size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    tx_.push_back(std::make_unique<sim::Resource>(engine, "nic_tx[" + std::to_string(n) + "]"));
    rx_.push_back(std::make_unique<sim::Resource>(engine, "nic_rx[" + std::to_string(n) + "]"));
  }
}

void Fabric::send(int src_node, int dst_node, std::uint64_t bytes,
                  std::function<void()> on_delivered) {
  VRMR_CHECK(src_node >= 0 && src_node < num_nodes());
  VRMR_CHECK(dst_node >= 0 && dst_node < num_nodes());
  ++messages_;
  total_bytes_ += bytes;

  if (src_node == dst_node) {
    const double dt = model_.intra_node_latency_s +
                      static_cast<double>(bytes) / model_.intra_node_bandwidth_Bps;
    engine_->schedule_after(dt, [cb = std::move(on_delivered)] {
      if (cb) cb();
    });
    return;
  }

  inter_node_bytes_ += bytes;
  const double serialize = model_.per_message_overhead_s +
                           static_cast<double>(bytes) / model_.bandwidth_Bps;
  const std::array<sim::Resource*, 2> ports = {tx_[static_cast<size_t>(src_node)].get(),
                                               rx_[static_cast<size_t>(dst_node)].get()};
  const double latency = model_.latency_s;
  sim::Resource::acquire_multi(
      ports, serialize,
      [this, latency, cb = std::move(on_delivered)](sim::SimTime, sim::SimTime) {
        engine_->schedule_after(latency, [cb2 = std::move(cb)] {
          if (cb2) cb2();
        });
      });
}

double Fabric::ideal_transfer_time(int src_node, int dst_node, std::uint64_t bytes) const {
  if (src_node == dst_node) {
    return model_.intra_node_latency_s +
           static_cast<double>(bytes) / model_.intra_node_bandwidth_Bps;
  }
  return model_.per_message_overhead_s + model_.latency_s +
         static_cast<double>(bytes) / model_.bandwidth_Bps;
}

void Fabric::reset_accounting() {
  total_bytes_ = 0;
  inter_node_bytes_ = 0;
  messages_ = 0;
  for (auto& r : tx_) r->reset_accounting();
  for (auto& r : rx_) r->reset_accounting();
}

}  // namespace vrmr::net
