#include "net/fabric.hpp"

#include <algorithm>
#include <array>

#include "util/check.hpp"

namespace vrmr::net {

Fabric::Fabric(sim::Engine& engine, FabricModel model, int num_nodes)
    : engine_(&engine), model_(model) {
  VRMR_CHECK(num_nodes >= 1);
  VRMR_CHECK(model.bandwidth_Bps > 0 && model.intra_node_bandwidth_Bps > 0);
  tx_.reserve(static_cast<size_t>(num_nodes));
  rx_.reserve(static_cast<size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    tx_.push_back(std::make_unique<sim::Resource>(engine, "nic_tx[" + std::to_string(n) + "]"));
    rx_.push_back(std::make_unique<sim::Resource>(engine, "nic_rx[" + std::to_string(n) + "]"));
  }
}

void Fabric::send(int src_node, int dst_node, std::uint64_t bytes,
                  std::function<void()> on_delivered) {
  send_attempt(src_node, dst_node, bytes, std::move(on_delivered), nullptr);
}

void Fabric::send_reliable(int src_node, int dst_node, std::uint64_t bytes,
                           std::function<void()> on_delivered) {
  reliable_attempt(src_node, dst_node, bytes, std::move(on_delivered), 0);
}

void Fabric::reliable_attempt(int src_node, int dst_node, std::uint64_t bytes,
                              std::function<void()> on_delivered, int attempt) {
  // The delivered path gets its own copy of the callback; the dropped
  // path re-arms with the original after an ack-timeout backoff.
  std::function<void()> deliver = on_delivered;
  send_attempt(
      src_node, dst_node, bytes, std::move(deliver),
      [this, src_node, dst_node, bytes, cb = std::move(on_delivered),
       attempt]() mutable {
        // Sender detects the loss by ack timeout, doubling per attempt.
        const double timeout =
            model_.retransmit_timeout_s *
            static_cast<double>(std::uint64_t{1} << std::min(attempt, 16));
        ++retransmits_;
        engine_->schedule_after(
            timeout, [this, src_node, dst_node, bytes, cb2 = std::move(cb),
                      attempt]() mutable {
              reliable_attempt(src_node, dst_node, bytes, std::move(cb2),
                               attempt + 1);
            });
      });
}

void Fabric::send_attempt(int src_node, int dst_node, std::uint64_t bytes,
                          std::function<void()> on_delivered,
                          std::function<void()> on_dropped) {
  VRMR_CHECK(src_node >= 0 && src_node < num_nodes());
  VRMR_CHECK(dst_node >= 0 && dst_node < num_nodes());
  FaultDecision fd;
  if (fault_injector_) fd = fault_injector_(src_node, dst_node, bytes, messages_);
  ++messages_;
  total_bytes_ += bytes;
  if (fd.drop) ++drops_;

  if (src_node == dst_node) {
    const double dt = model_.intra_node_latency_s +
                      static_cast<double>(bytes) / model_.intra_node_bandwidth_Bps +
                      fd.extra_delay_s;
    engine_->schedule_after(
        dt, [drop = fd.drop, cb = std::move(on_delivered),
             dropped = std::move(on_dropped)] {
          if (drop) {
            if (dropped) dropped();
          } else if (cb) {
            cb();
          }
        });
    return;
  }

  inter_node_bytes_ += bytes;
  const double serialize = model_.per_message_overhead_s +
                           static_cast<double>(bytes) / model_.bandwidth_Bps;
  const std::array<sim::Resource*, 2> ports = {tx_[static_cast<size_t>(src_node)].get(),
                                               rx_[static_cast<size_t>(dst_node)].get()};
  // A dropped message still serialized on its ports — the wire did the
  // work; only the delivery is lost.
  const double latency = model_.latency_s + fd.extra_delay_s;
  sim::Resource::acquire_multi(
      ports, serialize,
      [this, latency, drop = fd.drop, cb = std::move(on_delivered),
       dropped = std::move(on_dropped)](sim::SimTime, sim::SimTime) {
        engine_->schedule_after(
            latency, [drop, cb2 = std::move(cb), dropped2 = std::move(dropped)] {
              if (drop) {
                if (dropped2) dropped2();
              } else if (cb2) {
                cb2();
              }
            });
      });
}

double Fabric::ideal_transfer_time(int src_node, int dst_node, std::uint64_t bytes) const {
  if (src_node == dst_node) {
    return model_.intra_node_latency_s +
           static_cast<double>(bytes) / model_.intra_node_bandwidth_Bps;
  }
  return model_.per_message_overhead_s + model_.latency_s +
         static_cast<double>(bytes) / model_.bandwidth_Bps;
}

void Fabric::reset_accounting() {
  total_bytes_ = 0;
  inter_node_bytes_ = 0;
  messages_ = 0;
  drops_ = 0;
  retransmits_ = 0;
  for (auto& r : tx_) r->reset_accounting();
  for (auto& r : rx_) r->reset_accounting();
}

}  // namespace vrmr::net
