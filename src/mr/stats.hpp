#pragma once

// Per-job statistics. The StageBreakdown mirrors Figure 3's legend
// exactly (Map, Partition + I/O, Sort, Reduce); the raw counters and
// busy times feed the §6.3 bottleneck analysis bench.

#include <cstdint>
#include <vector>

namespace vrmr::mr {

/// Wall(-simulated)-time attribution matching the paper's Fig. 3 bars.
///
///   map_s          — mean per-GPU ray-cast kernel time (compute share;
///                    the quantity §6.3 calls "computation")
///   sort_s         — span of the global sort phase
///   reduce_s       — span of the global reduce phase
///   partition_io_s — everything else on the critical path: disk reads,
///                    H2D/D2H copies, partition CPU, network routing and
///                    the idle waits they induce (the quantity §6.3
///                    calls "communication")
///
/// The four components sum to total_s by construction.
struct StageBreakdown {
  double map_s = 0.0;
  double partition_io_s = 0.0;
  double sort_s = 0.0;
  double reduce_s = 0.0;
  double total_s = 0.0;
};

struct GpuTaskStats {
  int chunks = 0;
  std::uint64_t samples = 0;
  std::uint64_t threads = 0;
  std::uint64_t pairs = 0;         // emitted pairs incl. placeholders
  std::uint64_t placeholders = 0;
  double kernel_s = 0.0;           // simulated kernel busy time
};

struct ReducerTaskStats {
  std::uint64_t pairs_in = 0;      // fragments routed to this reducer
  std::uint64_t groups = 0;        // distinct keys reduced
  bool sorted_on_gpu = false;
};

struct JobStats {
  StageBreakdown stage;
  double runtime_s = 0.0;          // == stage.total_s

  // Phase boundaries (simulated seconds from job start).
  double t_map_done = 0.0;         // last map kernel completed
  double t_routed = 0.0;           // last fragment delivered to a reducer
  double t_sorted = 0.0;           // last sort completed

  // Dataflow counters.
  std::uint64_t fragments = 0;     // non-placeholder pairs routed
  std::uint64_t placeholders = 0;
  std::uint64_t total_samples = 0; // volume samples charged to GPUs
  std::uint64_t combine_input_pairs = 0;   // pairs entering combiners
  std::uint64_t combine_output_pairs = 0;  // pairs surviving combiners
  // Residency-cache effect (JobConfig::staging_hook): chunks whose
  // staging was skipped because they were already GPU-resident, and the
  // transfer bytes that skipping avoided.
  std::uint64_t chunks_resident = 0;
  /// Chunks never issued because their screen footprint was empty
  /// (FramePlan::set_chunk_footprint with an off-screen rect).
  std::uint64_t chunks_culled = 0;
  std::uint64_t bytes_h2d_saved = 0;
  std::uint64_t bytes_disk_saved = 0;
  // Compression (Chunk::stored_bytes / decompress_s): chunks that paid
  // a decompress quantum on their GPU stream, and the summed quantum
  // time. Byte counters above are STORED bytes for compressed chunks
  // (bytes_h2d, bytes_disk, bytes_h2d_saved, bytes_disk_saved);
  // bytes_logical_staged is the decompressed total those chunks expand
  // to, so stored-vs-logical reconciles per job.
  std::uint64_t chunks_decompressed = 0;
  double decompress_s_total = 0.0;
  std::uint64_t bytes_logical_staged = 0;
  // Peer hydration (JobConfig::fetch_hook): staging misses served by
  // the hook instead of disk, and the stored bytes it delivered.
  std::uint64_t chunks_hydrated = 0;
  std::uint64_t bytes_hydrated = 0;
  /// Injected map-quantum failures (JobConfig::fault_hook): each one
  /// wedged a lane for its detection timeout, then was retried.
  std::uint64_t quanta_failed = 0;
  std::uint64_t bytes_disk = 0;
  std::uint64_t bytes_h2d = 0;
  std::uint64_t bytes_d2h = 0;
  std::uint64_t bytes_net = 0;        // all routed bytes
  std::uint64_t bytes_net_inter = 0;  // inter-node portion
  std::uint64_t net_messages = 0;

  // Resource busy-time integrals over the job (summed over instances).
  double gpu_busy_s = 0.0;
  double pcie_busy_s = 0.0;
  double nic_busy_s = 0.0;
  double disk_busy_s = 0.0;
  double cpu_busy_s = 0.0;

  std::vector<GpuTaskStats> per_gpu;
  std::vector<ReducerTaskStats> per_reducer;

  int num_gpus = 0;
  int num_nodes = 0;
  int num_chunks = 0;
};

}  // namespace vrmr::mr
