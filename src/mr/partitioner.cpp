#include "mr/partitioner.hpp"

namespace vrmr::mr {

const char* to_string(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::PixelRoundRobin: return "round-robin";
    case PartitionStrategy::Striped: return "striped";
    case PartitionStrategy::Tiled: return "tiled";
  }
  return "?";
}

namespace {

/// Paper §3.1.1: "Partitioning is done in a per-pixel round-robin
/// fashion ... A modulo is sufficient."
class RoundRobinPartitioner final : public Partitioner {
 public:
  explicit RoundRobinPartitioner(int parts) : Partitioner(parts) {}
  int owner(std::uint32_t key) const override {
    return static_cast<int>(key % static_cast<std::uint32_t>(num_partitions()));
  }
};

/// Contiguous key ranges: reducer r owns [r*n/R, (r+1)*n/R). For pixel
/// keys this is horizontal scanline bands — the "striped" distribution.
class StripedPartitioner final : public Partitioner {
 public:
  StripedPartitioner(int parts, std::uint32_t num_keys)
      : Partitioner(parts), num_keys_(num_keys) {
    VRMR_CHECK_MSG(num_keys > 0, "striped partitioning needs the key count");
  }
  int owner(std::uint32_t key) const override {
    VRMR_DCHECK(key < num_keys_);
    const auto r = static_cast<std::uint64_t>(key) *
                   static_cast<std::uint64_t>(num_partitions()) / num_keys_;
    return static_cast<int>(r);
  }

 private:
  std::uint32_t num_keys_;
};

/// 2-D screen tiles dealt round-robin to reducers ("tiled" /
/// "checkerboard" family). Needs the image width to recover (x, y).
class TiledPartitioner final : public Partitioner {
 public:
  TiledPartitioner(int parts, std::uint32_t width, std::uint32_t tile)
      : Partitioner(parts), width_(width), tile_(tile) {
    VRMR_CHECK_MSG(width > 0, "tiled partitioning needs image width");
    VRMR_CHECK(tile > 0);
    tiles_x_ = (width + tile - 1) / tile;
  }
  int owner(std::uint32_t key) const override {
    const std::uint32_t x = key % width_;
    const std::uint32_t y = key / width_;
    const std::uint32_t tile_id = (y / tile_) * tiles_x_ + (x / tile_);
    return static_cast<int>(tile_id % static_cast<std::uint32_t>(num_partitions()));
  }

 private:
  std::uint32_t width_;
  std::uint32_t tile_;
  std::uint32_t tiles_x_;
};

}  // namespace

std::unique_ptr<Partitioner> make_partitioner(PartitionStrategy strategy,
                                              const PartitionDomain& domain,
                                              int num_partitions) {
  switch (strategy) {
    case PartitionStrategy::PixelRoundRobin:
      return std::make_unique<RoundRobinPartitioner>(num_partitions);
    case PartitionStrategy::Striped:
      return std::make_unique<StripedPartitioner>(num_partitions, domain.num_keys);
    case PartitionStrategy::Tiled:
      return std::make_unique<TiledPartitioner>(num_partitions, domain.image_width,
                                                domain.tile_size);
  }
  VRMR_CHECK_MSG(false, "unknown partition strategy");
  return nullptr;
}

}  // namespace vrmr::mr
