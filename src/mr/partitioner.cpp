#include "mr/partitioner.hpp"

namespace vrmr::mr {

const char* to_string(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::PixelRoundRobin: return "round-robin";
    case PartitionStrategy::Striped: return "striped";
    case PartitionStrategy::Tiled: return "tiled";
  }
  return "?";
}

namespace {

/// Paper §3.1.1: "Partitioning is done in a per-pixel round-robin
/// fashion ... A modulo is sufficient."
class RoundRobinPartitioner final : public Partitioner {
 public:
  RoundRobinPartitioner(int parts, std::uint32_t width)
      : Partitioner(parts), width_(width) {}
  int owner(std::uint32_t key) const override {
    return static_cast<int>(key % static_cast<std::uint32_t>(num_partitions()));
  }

  /// Residues of y*W + x over the rect. A full-width-R row already hits
  /// every residue; narrow rects enumerate per row (rows shift by W mod
  /// R), stopping once the mask saturates.
  void owners_in_rect(int x0, int y0, int x1, int y1,
                      std::vector<std::uint8_t>& mask) const override {
    const int parts = num_partitions();
    if (width_ == 0 || x1 - x0 >= parts) {
      mask.assign(static_cast<std::size_t>(parts), 1);
      return;
    }
    mask.assign(static_cast<std::size_t>(parts), 0);
    int found = 0;
    for (int y = y0; y < y1 && found < parts; ++y) {
      const std::uint64_t k0 =
          static_cast<std::uint64_t>(y) * width_ + static_cast<std::uint64_t>(x0);
      for (int i = 0; i < x1 - x0; ++i) {
        std::uint8_t& m = mask[(k0 + static_cast<std::uint64_t>(i)) %
                               static_cast<std::uint64_t>(parts)];
        if (!m) {
          m = 1;
          ++found;
        }
      }
    }
  }

 private:
  std::uint32_t width_;  // 0: keys are not pixels, rect queries degrade
};

/// Contiguous key ranges: reducer r owns [r*n/R, (r+1)*n/R). For pixel
/// keys this is horizontal scanline bands — the "striped" distribution.
class StripedPartitioner final : public Partitioner {
 public:
  StripedPartitioner(int parts, std::uint32_t num_keys, std::uint32_t width)
      : Partitioner(parts), num_keys_(num_keys), width_(width) {
    VRMR_CHECK_MSG(num_keys > 0, "striped partitioning needs the key count");
  }
  int owner(std::uint32_t key) const override {
    VRMR_DCHECK(key < num_keys_);
    const auto r = static_cast<std::uint64_t>(key) *
                   static_cast<std::uint64_t>(num_partitions()) / num_keys_;
    return static_cast<int>(r);
  }

  /// owner() is monotone in the key, and every key in the rect lies in
  /// [y0*W + x0, (y1-1)*W + (x1-1)] — so the owner set is the inclusive
  /// range between the two endpoint owners (a superset when the rect
  /// does not span full rows; conservative either way).
  void owners_in_rect(int x0, int y0, int x1, int y1,
                      std::vector<std::uint8_t>& mask) const override {
    const int parts = num_partitions();
    if (width_ == 0 || x1 <= x0 || y1 <= y0) {
      mask.assign(static_cast<std::size_t>(parts), 1);
      return;
    }
    const auto first = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(y0) * width_ + static_cast<std::uint64_t>(x0));
    const auto last = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(y1 - 1) * width_ +
        static_cast<std::uint64_t>(x1 - 1));
    const int lo = owner(first);
    const int hi = owner(last);
    mask.assign(static_cast<std::size_t>(parts), 0);
    for (int r = lo; r <= hi; ++r) mask[static_cast<std::size_t>(r)] = 1;
  }

 private:
  std::uint32_t num_keys_;
  std::uint32_t width_;  // 0: keys are not pixels, rect queries degrade
};

/// 2-D screen tiles dealt round-robin to reducers ("tiled" /
/// "checkerboard" family). Needs the image width to recover (x, y).
class TiledPartitioner final : public Partitioner {
 public:
  TiledPartitioner(int parts, std::uint32_t width, std::uint32_t tile)
      : Partitioner(parts), width_(width), tile_(tile) {
    VRMR_CHECK_MSG(width > 0, "tiled partitioning needs image width");
    VRMR_CHECK(tile > 0);
    tiles_x_ = (width + tile - 1) / tile;
  }
  int owner(std::uint32_t key) const override {
    const std::uint32_t x = key % width_;
    const std::uint32_t y = key / width_;
    const std::uint32_t tile_id = (y / tile_) * tiles_x_ + (x / tile_);
    return static_cast<int>(tile_id % static_cast<std::uint32_t>(num_partitions()));
  }

  /// Exact: owners of every tile overlapping the rect.
  void owners_in_rect(int x0, int y0, int x1, int y1,
                      std::vector<std::uint8_t>& mask) const override {
    const int parts = num_partitions();
    if (x1 <= x0 || y1 <= y0) {
      mask.assign(static_cast<std::size_t>(parts), 1);
      return;
    }
    mask.assign(static_cast<std::size_t>(parts), 0);
    const std::uint32_t tx0 = static_cast<std::uint32_t>(x0) / tile_;
    const std::uint32_t tx1 = static_cast<std::uint32_t>(x1 - 1) / tile_;
    const std::uint32_t ty0 = static_cast<std::uint32_t>(y0) / tile_;
    const std::uint32_t ty1 = static_cast<std::uint32_t>(y1 - 1) / tile_;
    int found = 0;
    for (std::uint32_t ty = ty0; ty <= ty1 && found < parts; ++ty) {
      for (std::uint32_t tx = tx0; tx <= tx1 && found < parts; ++tx) {
        const std::uint32_t tile_id = ty * tiles_x_ + tx;
        std::uint8_t& m =
            mask[tile_id % static_cast<std::uint32_t>(parts)];
        if (!m) {
          m = 1;
          ++found;
        }
      }
    }
  }

 private:
  std::uint32_t width_;
  std::uint32_t tile_;
  std::uint32_t tiles_x_;
};

}  // namespace

std::unique_ptr<Partitioner> make_partitioner(PartitionStrategy strategy,
                                              const PartitionDomain& domain,
                                              int num_partitions) {
  switch (strategy) {
    case PartitionStrategy::PixelRoundRobin:
      return std::make_unique<RoundRobinPartitioner>(num_partitions,
                                                     domain.image_width);
    case PartitionStrategy::Striped:
      return std::make_unique<StripedPartitioner>(num_partitions, domain.num_keys,
                                                  domain.image_width);
    case PartitionStrategy::Tiled:
      return std::make_unique<TiledPartitioner>(num_partitions, domain.image_width,
                                                domain.tile_size);
  }
  VRMR_CHECK_MSG(false, "unknown partition strategy");
  return nullptr;
}

}  // namespace vrmr::mr
