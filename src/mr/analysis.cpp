#include "mr/analysis.hpp"

#include <algorithm>

namespace vrmr::mr {

SpeedOfLight speed_of_light(const JobStats& stats, const cluster::ClusterConfig& config) {
  SpeedOfLight sol;
  const auto& hw = config.hw;
  const double gpus = std::max(1, stats.num_gpus);
  const double nodes = std::max(1, stats.num_nodes);
  const double cores = nodes * std::max(1, hw.cpu.cores);

  sol.map_compute_s =
      static_cast<double>(stats.total_samples) / (gpus * hw.gpu.sample_rate_per_s);
  sol.h2d_s = static_cast<double>(stats.bytes_h2d) / (nodes * hw.pcie.bandwidth_Bps);
  sol.d2h_s = static_cast<double>(stats.bytes_d2h) / (nodes * hw.pcie.bandwidth_Bps);
  sol.net_s =
      static_cast<double>(stats.bytes_net_inter) / (nodes * hw.fabric.bandwidth_Bps);
  const double pairs = static_cast<double>(stats.fragments);
  sol.sort_s = pairs / (cores * hw.cpu.sort_rate_pairs_per_s);
  sol.reduce_s = pairs / (cores * hw.cpu.reduce_rate_frags_per_s);
  sol.disk_s = static_cast<double>(stats.bytes_disk) / (nodes * hw.disk.bandwidth_Bps);

  sol.pipelined_bound_s = std::max({sol.map_compute_s, sol.h2d_s, sol.d2h_s, sol.net_s,
                                    sol.sort_s, sol.reduce_s});
  sol.serial_bound_s =
      sol.map_compute_s + sol.h2d_s + sol.d2h_s + sol.net_s + sol.sort_s + sol.reduce_s;
  return sol;
}

}  // namespace vrmr::mr
