#pragma once

// The Mapper interface (§3.1.2): "Mappers execute a ray-casting kernel
// on each Chunk. Each Mapper has an initialization function that
// allocates static data on the GPU (e.g. view matrix)."
//
// `map` runs the functional kernel against one staged chunk and reports
// a MapOutcome with the quantities the DES layer charges to the GPU:
// how many volume samples the kernel took and how many threads it
// launched. The emitter collects the kernel's per-thread key-value
// output (one pair per thread — fragment or placeholder).

#include <cstdint>

#include "gpusim/device.hpp"
#include "mr/chunk.hpp"
#include "mr/kv_buffer.hpp"

namespace vrmr::mr {

/// Cost-relevant facts about one map execution.
struct MapOutcome {
  /// Trilinear volume samples taken (drives simulated kernel time).
  std::uint64_t samples = 0;
  /// Threads launched. When nonzero, the runtime verifies the
  /// every-thread-emits restriction: emitted pairs == threads.
  std::uint64_t threads = 0;
};

class Mapper {
 public:
  virtual ~Mapper() = default;

  /// One-time static setup on the owning device (view matrices,
  /// transfer-function texture). Called before any map().
  virtual void init(gpusim::Device& device) { (void)device; }

  /// Stage `chunk` onto `device`, execute the kernel, emit one pair per
  /// thread into `out`.
  virtual MapOutcome map(gpusim::Device& device, const Chunk& chunk, KvBuffer& out) = 0;
};

}  // namespace vrmr::mr
