#pragma once

// The MapReduce job runtime — the paper's core contribution (§3.1).
//
// One Job renders one frame (or runs one generic MapReduce pass) on a
// simulated cluster. The dataflow per GPU process g follows Figure 1:
//
//   chunks --> [disk] --> H2D --> Map kernel --> D2H --> Partition
//        (per-chunk, streamed; the next chunk's staging overlaps the
//         previous chunk's partition/sends)
//   Partition --> async network sends to reducer processes
//   barrier: all mappers finished AND all pairs delivered
//   Sort (counting sort, CPU or GPU)  --> barrier
//   Reduce (compositing)              --> job complete
//
// Design notes mirroring the paper:
//   * streaming, no intermediate disk I/O (§1: values are "streamed ...
//     to the appropriate processes");
//   * the H2D copy of a chunk is synchronous and occupies the GPU
//     (§3.1.2, CUDA 3-D texture restriction);
//   * partitioning is implicit (key % R for round-robin) and cheap;
//   * placeholders emitted by no-contribution threads are carried
//     through D2H and dropped during partition (§3.1.1);
//   * no combiner (§3.1: "specifically omitted partial reduce/combine"),
//     no fault tolerance, no distributed FS (§1).
//
// One reducer process is co-located with each GPU process, mirroring
// the paper's one-MapReduce-process-per-GPU deployment.
//
// Job is the *monolithic* façade: run() executes the whole pipeline to
// completion in one call. The pipeline itself lives in
// mr/frame_plan.hpp as externally-driven work quanta; Job drives a
// FramePlan greedily (every quantum issued the moment it is available),
// which reproduces the paper's whole-frame execution exactly. Serving
// layers that need preemption, tile streaming, or prefetch drive the
// FramePlan directly.

#include <functional>
#include <memory>

#include "cluster/cluster.hpp"
#include "mr/chunk.hpp"
#include "mr/combiner.hpp"
#include "mr/mapper.hpp"
#include "mr/partitioner.hpp"
#include "mr/reducer.hpp"
#include "mr/sorter.hpp"
#include "mr/stats.hpp"
#include "obs/trace.hpp"

namespace vrmr::mr {

class FramePlan;

/// Residency hook for chunk staging. Called when GPU process `gpu` is
/// about to stage `chunk`; return true when the chunk's payload is
/// already resident in that GPU's memory, in which case the job skips
/// both the disk read and the H2D copy and charges nothing for them.
/// This is how a serving layer (src/service) keeps bricks warm between
/// frames of the same session. The hook runs inside DES callbacks and
/// must be deterministic.
using StagingHook = std::function<bool(int gpu, const Chunk& chunk)>;

/// Remote-fetch hook consulted on a staging MISS before the disk read.
/// Return true to take ownership of delivering `chunk`'s payload into
/// host memory on GPU `gpu`'s node — the hook must then invoke `done`
/// exactly once (from a DES callback at the simulated delivery time),
/// after which the plan proceeds with the normal H2D copy. Return false
/// to decline: the plan falls back to the disk path. This is how a
/// serving tier hydrates a cold shard from a sibling's warm cache over
/// the fabric instead of re-reading disk (src/service/frontend.hpp).
using FetchHook =
    std::function<bool(int gpu, const Chunk& chunk, std::function<void()> done)>;

/// Verdict of the fault-injection hook for one stage+map quantum
/// attempt. fail=true wedges the lane for detect_s of simulated time
/// (the failure-detection timeout: a stuck read, a missed ack), after
/// which the plan restores the chunk for a retry, frees the lane, and
/// fires on_quantum_failed. `kind` labels the trace event
/// ("fault.<kind>").
struct QuantumFault {
  bool fail = false;
  double detect_s = 0.0;
  const char* kind = "quantum";
};

/// Fault-injection hook consulted once per stage+map quantum attempt,
/// before any staging work: (gpu, chunk_index, attempt) with attempt
/// 1-based across retries of the same chunk. Drive it from a seeded
/// fault::FaultPlan — it runs inside DES callbacks and must be
/// deterministic. Null = never fail.
using FaultHook = std::function<QuantumFault(int gpu, int chunk_index, int attempt)>;

/// How the pipeline's two dataflow barriers are enforced.
///
///   Global     — the paper's schedule: no sort starts until *every*
///                chunk's partitions and sends have drained, and no
///                reduce starts until *every* sort completed. Event-
///                for-event identical to the original monolithic job.
///   PerReducer — dataflow readiness: once every mapper has finished
///                partitioning (each reducer's expected inbound-send
///                count is final), a reducer's sort is issuable the
///                moment its OWN inbox is complete, and its reduce
///                chains immediately after its own sort — no
///                frame-global sync anywhere on a tile's critical
///                path. Pixels and dataflow counters are identical to
///                Global; only the schedule (and thus timings) differ.
///                This is what minimizes time-to-first-pixel for
///                streamed tile delivery (bench_time_to_first_pixel).
enum class BarrierMode { Global, PerReducer };

const char* to_string(BarrierMode mode);

struct JobConfig {
  /// Size of every emitted value in bytes (homogeneous, §3.1.1).
  std::uint32_t value_size = 0;

  /// Dense key domain facts (num_keys required; image_width required
  /// for the Tiled strategy).
  PartitionDomain domain;

  PartitionStrategy partition = PartitionStrategy::PixelRoundRobin;
  SortPlacement sort = SortPlacement::Auto;
  ReducePlacement reduce = ReducePlacement::Cpu;
  /// Barrier enforcement (see BarrierMode). Global preserves the
  /// paper's schedule and stage attribution bit-for-bit; PerReducer
  /// dissolves both frame-global barriers into per-reducer readiness.
  BarrierMode barrier_mode = BarrierMode::Global;

  /// Auto sort placement moves to the GPU above this many pairs — set
  /// at the modeled CPU/GPU crossover (round-trip PCIe + device sort
  /// beats a 2010 core above ~15-30 K pairs; see bench_ablation_sort).
  std::uint64_t gpu_sort_threshold_pairs = 32u << 10;

  /// Charge disk reads for chunk staging (out-of-core mode). The
  /// paper's §6.3 speed-of-light analysis assumes data resident in CPU
  /// memory, so this defaults off.
  bool include_disk_io = false;

  /// Streaming send buffer per (mapper, reducer) pair: "Once enough
  /// pairs have been generated by a Mapper, they are sent
  /// asynchronously to the Reducer" (§3.1.2). Partition output
  /// accumulates per destination and flushes when a buffer fills (or
  /// when the mapper finishes), so message count is data-driven — with
  /// many bricks per GPU the fabric sees a few large messages instead
  /// of bricks × reducers small ones.
  std::uint64_t send_buffer_bytes = 256 * 1024;

  /// Verify the every-thread-emits restriction when mappers report
  /// thread counts (§3.1.1).
  bool verify_every_thread_emits = true;

  /// Optional residency test consulted before each chunk is staged
  /// (see StagingHook above). Null = always stage.
  StagingHook staging_hook;

  /// Optional remote-fetch path consulted on a staging miss before the
  /// disk read (see FetchHook above). Null = always read from disk.
  FetchHook fetch_hook;

  /// Optional fault injection consulted at each map-quantum issue (see
  /// FaultHook above). Null = never fail.
  FaultHook fault_hook;

  /// Flight-recorder attribution (shard / session / frame / priority).
  /// With trace.recorder == nullptr (the default) the plan records
  /// nothing and every instrumentation site is a single null check.
  obs::TraceContext trace;

  void validate() const;
};

using MapperFactory =
    std::function<std::unique_ptr<Mapper>(int gpu_index, gpusim::Device& device)>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>(int reducer_index)>;
using CombinerFactory = std::function<std::unique_ptr<Combiner>(int gpu_index)>;

class Job {
 public:
  Job(cluster::Cluster& cluster, JobConfig config);
  ~Job();

  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  void set_mapper_factory(MapperFactory factory);
  void set_reducer_factory(ReducerFactory factory);

  /// Optional mapper-side partial reduce (see combiner.hpp). The paper
  /// omitted this stage; setting it enables the §3.1 ablation.
  void set_combiner_factory(CombinerFactory factory);

  /// Queue a chunk. `gpu` pins it to a GPU process; -1 deals chunks
  /// round-robin (the paper's "number of bricks close to the number of
  /// GPUs" sweet spot comes from this dealing).
  void add_chunk(std::unique_ptr<Chunk> chunk, int gpu = -1);

  int num_chunks() const;

  /// Execute the full pipeline on the cluster's DES engine; single use.
  JobStats run();

 private:
  std::unique_ptr<FramePlan> plan_;
  bool ran_ = false;
};

}  // namespace vrmr::mr
