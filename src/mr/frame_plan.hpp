#pragma once

// FramePlan — the MapReduce pipeline of job.hpp factored into
// externally-driven *work quanta*.
//
// The paper runs one monolithic job per frame: every chunk is staged
// and mapped, fragments are routed, sorted, reduced, and control only
// returns when the whole cluster is done. That shape is exactly what
// blocks a serving layer from preempting a batch frame, streaming
// finished tiles, or prefetching during a frame's reduce tail — so the
// pipeline now lives here, cut at its natural seams:
//
//   * stage+map quantum  — one chunk on one GPU: (disk) -> H2D -> map
//     kernel -> D2H. The quantum ends when the D2H completes and the
//     GPU stream is free again (the paper's overlap point, §3.1.2);
//     partitioning and buffered sends continue asynchronously on the
//     CPU/NIC inside the plan. This boundary is where a scheduler can
//     hand the GPU to a *different* frame — brick-granular preemption.
//   * sort quantum       — one reducer's counting sort. Availability
//     depends on JobConfig::barrier_mode: under Global it waits for
//     the frame-wide routing barrier (all chunks issued, all
//     partitions drained, all sends delivered); under PerReducer it
//     becomes issuable the moment that reducer's OWN inbox is complete
//     (every mapper finished partitioning — the expected inbound-send
//     count is final — and every send destined to it has landed).
//   * reduce quantum     — one reducer's compositing pass. Under
//     Global it waits for every sort to complete (stage attribution
//     matches the monolithic pipeline); under PerReducer it chains
//     immediately after its own sort — no frame-global sync anywhere
//     on a tile's critical path. Each reduce quantum's completion is a
//     finished *tile*: the reducer's key range is fully composited and
//     can ship to the client before the rest of the frame lands.
//
// Both modes compute identical pixels and identical dataflow counters;
// PerReducer only reorders the schedule, which is what minimizes
// time-to-first-pixel (the first tile no longer waits for the slowest
// reducer's inbox or the slowest sort).
//
// The driver decides *when* each quantum is issued; the plan owns all
// dataflow bookkeeping and fires hooks at the decision points
// (lane freed, sorts ready, reduces ready, tile done, finished).
// `run_to_completion()` is the greedy driver that reproduces the
// original monolithic job event-for-event — mr::Job and the one-shot
// renderer facade are thin wrappers over it.
//
// Everything runs on the cluster's DES engine; with a deterministic
// driver the whole schedule is bit-reproducible. Busy-time stats are
// accumulated per-acquire (not as cluster-wide deltas), so a plan
// interleaved with other plans on one cluster still attributes exactly
// its own resource time.

#include <functional>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "mr/chunk.hpp"
#include "mr/combiner.hpp"
#include "mr/job.hpp"
#include "mr/kv_buffer.hpp"
#include "mr/mapper.hpp"
#include "mr/partitioner.hpp"
#include "mr/reducer.hpp"
#include "mr/sorter.hpp"
#include "mr/stats.hpp"

namespace vrmr::mr {

class FramePlan {
 public:
  FramePlan(cluster::Cluster& cluster, JobConfig config);
  ~FramePlan();

  FramePlan(const FramePlan&) = delete;
  FramePlan& operator=(const FramePlan&) = delete;

  // --- setup (before start()) ---------------------------------------------
  void set_mapper_factory(MapperFactory factory) { mapper_factory_ = std::move(factory); }
  void set_reducer_factory(ReducerFactory factory) {
    reducer_factory_ = std::move(factory);
  }
  void set_combiner_factory(CombinerFactory factory) {
    combiner_factory_ = std::move(factory);
  }

  /// Queue a chunk; `gpu` pins it, -1 deals round-robin (brick i of an
  /// unpinned layout always lands on GPU i % G — residency caches and
  /// prefetchers rely on this determinism).
  void add_chunk(std::unique_ptr<Chunk> chunk, int gpu = -1);
  int num_chunks() const { return static_cast<int>(chunks_.size()); }

  /// Declare the conservative screen footprint of the chunk added as
  /// `chunk_index`: the pixel rect [x0,x1)×[y0,y1) outside which the
  /// chunk's map kernel emits nothing but placeholders (the renderer
  /// passes the kernel's own launch rect, camera.project_box of the
  /// brick's world box, so the bound is exact). Two effects:
  ///   * an EMPTY rect culls the chunk — it is never staged or mapped
  ///     (stats().chunks_culled counts them; dealing positions of the
  ///     other chunks are unchanged, so residency caches still predict
  ///     placement);
  ///   * under PerReducer barriers, once GPU g has partitioned the last
  ///     of its chunks whose footprint touches reducer r's key range,
  ///     the (g, r) send buffer flushes early and counts as final — a
  ///     reducer no longer waits for mappers that cannot contribute to
  ///     it (per-(mapper, reducer) final-flush readiness).
  /// Emitted keys are CHECKed (debug builds) against the footprint's
  /// owner set. Chunks without a footprint conservatively contribute to
  /// every reducer; Global mode only culls, never flushes early.
  void set_chunk_footprint(int chunk_index, int x0, int y0, int x1, int y1);

  // --- driver hooks (install before start()) ------------------------------
  /// GPU `gpu`'s stream is free again after a stage+map quantum (its
  /// D2H finished; partition/sends continue inside the plan). THE
  /// preemption point: the driver may issue this plan's next quantum,
  /// another plan's, or leave the lane idle.
  void on_lane_free(std::function<void(int gpu)> cb) { lane_free_cb_ = std::move(cb); }
  /// Reducer `reducer`'s sort quantum became issuable. Under PerReducer
  /// barriers this fires the moment that reducer's inbox completes
  /// (inbox-completion order); under Global barriers it fires for every
  /// reducer, in index order, when the routing barrier passes.
  void on_reducer_ready(std::function<void(int reducer)> cb) {
    reducer_ready_cb_ = std::move(cb);
  }
  /// Reducer `reducer`'s sort quantum completed. Under PerReducer
  /// barriers its reduce quantum is issuable from this moment (a
  /// driver that does not use eager barriers chains here).
  void on_sort_done(std::function<void(int reducer)> cb) {
    sort_done_cb_ = std::move(cb);
  }
  /// The routing barrier passed — every sort quantum is now issuable.
  /// Under PerReducer barriers this is informational, not a gate: it
  /// fires when the last send drains, after the final
  /// on_reducer_ready, by which point sorts (and, for zero-pair
  /// reducers, whole sort+reduce chains) may already have run.
  void on_sorts_ready(std::function<void()> cb) { sorts_ready_cb_ = std::move(cb); }
  /// Every sort completed — every reduce quantum is now issuable.
  /// Informational under PerReducer barriers (reduces chain off their
  /// own sorts; in the all-empty-inbox corner the frame can even
  /// finish before this fires).
  void on_reduces_ready(std::function<void()> cb) { reduces_ready_cb_ = std::move(cb); }
  /// Reducer `reducer`'s reduce quantum completed: its tile of the key
  /// domain is final. Fires before on_finished for the last tile.
  void on_tile_done(std::function<void(int reducer)> cb) { tile_cb_ = std::move(cb); }
  /// The last reduce quantum completed; stats() is finalized. The plan
  /// must not be destroyed from inside this hook (the completing
  /// quantum's callback frame is still on the stack) — defer teardown
  /// to a fresh engine event.
  void on_finished(std::function<void()> cb) { finished_cb_ = std::move(cb); }
  /// A stage+map quantum failed (JobConfig::fault_hook said so) and its
  /// detection timeout elapsed: the chunk is restored as the lane's
  /// next pending quantum and the lane is free again. Fires before
  /// on_lane_free for the same event; `attempt` counts this failure
  /// (retry n+1 will present attempt n+1 to the fault hook). Without a
  /// driver, greedy mode retries on the same lane immediately.
  void on_quantum_failed(std::function<void(int gpu, int chunk_index, int attempt)> cb) {
    quantum_failed_cb_ = std::move(cb);
  }

  /// Build mapper/reducer processes, deal chunks, anchor t0 at the
  /// current engine time. GPUs with no chunks retire immediately.
  /// Issues nothing — the driver pulls quanta from here on.
  void start();
  bool started() const { return started_; }

  /// Issue every sort quantum the moment it becomes ready (its
  /// barrier-mode-specific readiness, see BarrierMode) and every
  /// reduce quantum the moment it becomes issuable, without driver
  /// involvement. Map quanta stay driver-controlled — this is the mode
  /// a preemptive scheduler wants: brick-granular control of the GPU
  /// lanes, hands-off per-reducer barrier work (contention is
  /// arbitrated by the simulated resources). run_to_completion implies
  /// it.
  void set_eager_barriers(bool eager) { eager_barriers_ = eager; }

  // --- stage+map quanta ----------------------------------------------------
  /// Chunks dealt to `gpu` not yet issued.
  int pending_map_quanta(int gpu) const;
  /// A stage+map quantum of THIS plan currently occupies `gpu`.
  bool lane_busy(int gpu) const;
  /// Issue the next chunk on `gpu`: (disk) -> H2D -> kernel -> D2H.
  /// Requires pending_map_quanta(gpu) > 0 and !lane_busy(gpu).
  void issue_map_quantum(int gpu);

  /// Fail-stop recovery: move every not-yet-issued chunk of `gpu` onto
  /// `survivors` (round-robin), preserving all per-(mapper, reducer)
  /// dataflow bookkeeping — reducers stop waiting on the dead lane for
  /// the moved work and start waiting on its survivors. An in-flight
  /// quantum on `gpu` (if any) still completes there (fail-stop at the
  /// quantum boundary); once idle the dead mapper retires, flushing the
  /// fragments it already produced (host-side mapper state survives the
  /// GPU's death — see src/fault/README.md). Pixels are placement-
  /// independent, so the redistributed frame composites bit-identically.
  /// Callable any time between start() and the routing barrier.
  void redistribute_lane(int gpu, const std::vector<int>& survivors);

  // --- sort quanta ---------------------------------------------------------
  bool sorts_ready() const { return sorts_ready_; }
  /// Reducer `reducer`'s sort quantum is issuable: under PerReducer
  /// barriers, its inbox is complete; under Global, the routing
  /// barrier passed.
  bool reducer_ready(int reducer) const;
  /// Absolute engine time `reducer` became ready (0 until it did).
  double reducer_ready_s(int reducer) const;
  /// Absolute engine times `reducer`'s sort quantum was issued /
  /// completed (0 until then) — critical-path boundaries.
  double sort_issue_s(int reducer) const;
  double sort_done_s(int reducer) const;
  bool sort_pending(int reducer) const;
  void issue_sort_quantum(int reducer);

  // --- reduce quanta -------------------------------------------------------
  bool reduces_ready() const { return reduces_ready_; }
  bool reduce_pending(int reducer) const;
  void issue_reduce_quantum(int reducer);

  int num_reducers() const { return static_cast<int>(reducers_.size()); }
  bool finished() const { return finished_; }

  /// Engine time start() anchored the plan at (t0 of the relative
  /// JobStats phase stamps).
  double t0_s() const { return t0_; }

  /// Absolute engine time reducer `r`'s tile completed (finalized
  /// frames only; the last tile's time equals the frame finish).
  double tile_finish_s(int reducer) const;

  /// Number of mappers that can contribute fragments to reducer `r`
  /// (pairs whose chunk footprints touch r's key range, counted at
  /// start()). 0 means a background-only tile: with footprints seeded
  /// it goes final before any map quantum, so latency metrics (TTFP)
  /// should measure the first tile with contributors instead.
  int reducer_contributors(int reducer) const;

  /// Finalized statistics; valid once finished().
  const JobStats& stats() const;

  /// Greedy monolithic driver: issue every quantum as soon as it is
  /// available until the plan finishes, pumping the cluster's engine.
  /// Reproduces the paper's whole-frame job event-for-event. Chains
  /// after (does not replace) any installed hooks.
  JobStats run_to_completion();

 private:
  struct GpuState;
  struct ReducerState;

  void begin_staging(int gpu, int chunk_index);
  /// Wedge `gpu`'s stream for detect_s, then restore the chunk, free
  /// the lane, and fire on_quantum_failed (the injected-failure path).
  void fail_quantum(int gpu, int chunk_index, double detect_s, const char* kind);
  void after_disk(int gpu, int chunk_index);
  void after_h2d(int gpu, int chunk_index);
  void run_map(int gpu, int chunk_index);
  void after_kernel(int gpu, int chunk_index, std::shared_ptr<KvBuffer> out);
  void lane_freed(int gpu);
  void partition_and_send(int gpu, int chunk_index, std::shared_ptr<KvBuffer> out);
  void flush_outbox(int gpu, int reducer);
  void send_payload(int gpu, int reducer, std::shared_ptr<KvBuffer> payload,
                    std::uint64_t send_trace_id);
  void maybe_final_flush(int gpu);
  void maybe_finish_routing();
  /// The (gpu, reducer) pair went final: gpu partitioned the last chunk
  /// that could contribute to reducer. Flushes the pair's outbox early
  /// under PerReducer barriers (Global keeps the paper's schedule).
  void pair_final(int gpu, int reducer);
  void maybe_reducer_ready(int reducer);
  void mark_reducer_ready(int reducer);
  void sort_done(int reducer);
  void reduce_done(int reducer);
  void finalize_stats();
  bool per_reducer_barriers() const {
    return config_.barrier_mode == BarrierMode::PerReducer;
  }

  cluster::Cluster& cluster_;
  JobConfig config_;
  MapperFactory mapper_factory_;
  ReducerFactory reducer_factory_;
  CombinerFactory combiner_factory_;

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<int> chunk_gpu_;  // explicit assignment or -1

  struct Footprint {
    int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
    bool set = false;
  };
  std::vector<Footprint> footprints_;  // parallel to chunks_
  /// Conservative per-chunk reducer owner masks (computed at start()
  /// from footprints + partitioner; all-ones without a footprint).
  std::vector<std::vector<std::uint8_t>> chunk_masks_;

  std::vector<std::unique_ptr<GpuState>> gpus_;
  std::vector<std::unique_ptr<ReducerState>> reducers_;
  std::unique_ptr<Partitioner> partitioner_;

  std::function<void(int)> lane_free_cb_;
  std::function<void(int)> reducer_ready_cb_;
  std::function<void(int)> sort_done_cb_;
  std::function<void()> sorts_ready_cb_;
  std::function<void()> reduces_ready_cb_;
  std::function<void(int)> tile_cb_;
  std::function<void()> finished_cb_;
  std::function<void(int, int, int)> quantum_failed_cb_;

  // Routing bookkeeping (identical roles to the monolithic job).
  int mappers_remaining_ = 0;
  int partitions_in_flight_ = 0;
  std::uint64_t sends_in_flight_ = 0;
  /// Every mapper finished partitioning: each reducer's expected
  /// inbound-send count is final (the PerReducer readiness gate).
  bool routing_resolved_ = false;
  bool sorts_ready_ = false;
  bool reduces_ready_ = false;
  int sorts_remaining_ = 0;
  int reduces_remaining_ = 0;
  std::vector<double> tile_finish_s_;
  std::vector<int> reducer_contributors_;  // frozen at start()
  std::vector<int> chunk_attempts_;        // issue attempts per chunk

  double t0_ = 0.0;
  bool started_ = false;
  bool finished_ = false;
  bool greedy_ = false;          // run_to_completion auto-issues map quanta
  bool eager_barriers_ = false;  // sort/reduce quanta self-issue at barriers

  JobStats stats_;
};

}  // namespace vrmr::mr
