#pragma once

// The Reducer interface (§3.1.2). After the counting sort, each reducer
// iterates its key groups: for the volume renderer, one group is every
// ray fragment that landed on one pixel; the reduce depth-sorts them
// and composites front-to-back.
//
// Reducers may run on CPU or GPU (the paper found the CPU faster at
// their scales because of the per-pixel fragment sort); placement only
// affects the simulated cost, the functional path is identical.

#include <cstddef>
#include <cstdint>

namespace vrmr::mr {

enum class ReducePlacement { Cpu, Gpu };

inline const char* to_string(ReducePlacement p) {
  return p == ReducePlacement::Cpu ? "cpu" : "gpu";
}

class Reducer {
 public:
  virtual ~Reducer() = default;

  /// Called once before the first reduce() on this reducer process.
  virtual void begin(int reducer_index) { (void)reducer_index; }

  /// Reduce one key group: `count` homogeneous values of the job's
  /// value_size, laid out contiguously starting at `values`.
  virtual void reduce(std::uint32_t key, const std::byte* values, std::size_t count) = 0;

  /// Called after the last reduce() on this reducer process.
  virtual void end() {}
};

}  // namespace vrmr::mr
