#pragma once

// The paper's θ(n) sort (§3.1.2): "a specialized counting sort on the
// CPU or GPU (depending on the amount of data) ... since the library
// knows the minimum and maximum keys for each node, as well as the
// maximum number of keys".
//
// counting_sort produces a stable, key-grouped buffer plus a group
// index so the reducer can iterate (key, values[]) runs without any
// further comparisons. Stability matters: within one pixel the values
// arrive in mapper order and the reducer's depth sort is the only
// reordering allowed (keeps the pipeline deterministic).

#include <cstdint>
#include <vector>

#include "mr/kv_buffer.hpp"

namespace vrmr::mr {

/// Where a sort executes; Auto picks the GPU above a pair-count
/// threshold, mirroring the paper's "depending on the amount of data".
enum class SortPlacement { Auto, Cpu, Gpu };

const char* to_string(SortPlacement p);

/// Key-grouped output of a counting sort.
struct SortedGroups {
  KvBuffer sorted;                       // pairs ordered by key, stable
  std::vector<std::uint32_t> group_keys; // distinct keys, ascending
  std::vector<std::uint32_t> group_offsets;  // size()+1 prefix: group g is
                                             // sorted[offsets[g], offsets[g+1])
  std::size_t num_groups() const { return group_keys.size(); }
};

/// Stable counting sort of `input` whose keys all lie in [key_lo,
/// key_hi). Placeholder keys are not allowed here — the partition phase
/// must have dropped them. θ(n + k) time, θ(n + k) space.
SortedGroups counting_sort(const KvBuffer& input, std::uint32_t key_lo,
                           std::uint32_t key_hi);

}  // namespace vrmr::mr
