#pragma once

// A Chunk is "a collection of work to be mapped" (§3.1.2) — for the
// volume renderer, one brick of the volume. The MapReduce runtime only
// needs three things from a chunk: how much GPU memory staging it
// requires (to enforce the fit-in-VRAM restriction and to charge the
// H2D copy), how many bytes the node's disk must deliver (out-of-core
// mode), and a human-readable label. Everything else is between the
// concrete chunk type and the mapper that consumes it.

#include <cstdint>
#include <string>

namespace vrmr::mr {

class Chunk {
 public:
  virtual ~Chunk() = default;

  /// GPU memory required to stage this chunk (texture + working set).
  virtual std::uint64_t device_bytes() const = 0;

  /// Bytes read from disk when the job runs out-of-core. Defaults to
  /// the staged size (raw voxel payload); compressed chunks override
  /// this with their stored size.
  virtual std::uint64_t disk_bytes() const { return device_bytes(); }

  /// Bytes that actually move when this chunk's payload travels — what
  /// the brick cache holds, the H2D copy ships and a peer shard sends
  /// over the fabric. Defaults to device_bytes() (uncompressed);
  /// compressed chunks return the encoded size. device_bytes() stays
  /// the LOGICAL size: the mapper's working set and the decompressed
  /// texture are full-sized regardless of the wire format.
  virtual std::uint64_t stored_bytes() const { return device_bytes(); }

  /// GPU-lane seconds to expand the stored payload to device_bytes()
  /// after the H2D copy; 0 for uncompressed chunks. FramePlan charges
  /// this on the GPU stream between staging and the map kernel.
  virtual double decompress_s() const { return 0.0; }

  virtual std::string label() const { return "chunk"; }
};

}  // namespace vrmr::mr
