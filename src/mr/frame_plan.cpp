#include "mr/frame_plan.hpp"

#include <algorithm>
#include <array>

#include "util/log.hpp"

namespace vrmr::mr {

struct FramePlan::GpuState {
  std::unique_ptr<Mapper> mapper;
  std::vector<int> chunk_indices;
  std::size_t cursor = 0;  // next chunk to issue

  // Streaming send buffers, one per reducer (§3.1.2 buffered sends).
  std::vector<KvBuffer> outbox;
  std::unique_ptr<Combiner> combiner;  // optional mapper-side partial reduce
  /// Per-reducer count of this GPU's chunks whose footprint owner mask
  /// includes that reducer. Decremented as each chunk's partition
  /// completes; hitting zero finalizes the (mapper, reducer) pair
  /// (pair_final) — the per-pair refinement of the final flush.
  std::vector<int> contrib;
  int pending_partitions = 0;  // partition tasks still queued on the CPU
  bool lane_busy = false;      // a stage+map quantum currently in flight
  bool issued_all = false;     // every chunk has entered the pipeline
  bool finished = false;       // final flush done, mapper retired
};

struct FramePlan::ReducerState {
  std::unique_ptr<Reducer> reducer;
  KvBuffer inbox;
  SortedGroups groups;
  /// Sends flushed toward this reducer whose payloads have not landed
  /// yet (combine + fabric transit). With final_pairs == num GPUs, a
  /// zero here means the inbox is complete — the PerReducer readiness.
  std::uint64_t sends_pending = 0;
  /// (mapper, reducer) pairs finalized toward this reducer: mappers
  /// that have partitioned their last chunk whose footprint could
  /// contribute here. Without footprints a mapper finalizes all its
  /// pairs at its final flush, which makes this gate equivalent to the
  /// old all-mappers routing_resolved_ gate.
  int final_pairs = 0;
  bool ready = false;        // sort quantum issuable (mode-specific)
  double ready_s = 0.0;      // absolute engine time ready flipped
  double sort_issue_s = 0.0; // absolute engine time sort was issued
  double sort_done_s = 0.0;  // absolute engine time sort completed
  bool sort_issued = false;
  bool sort_completed = false;
  bool reduce_issued = false;
};

FramePlan::FramePlan(cluster::Cluster& cluster, JobConfig config)
    : cluster_(cluster), config_(std::move(config)) {
  config_.validate();
}

FramePlan::~FramePlan() = default;

void FramePlan::add_chunk(std::unique_ptr<Chunk> chunk, int gpu) {
  VRMR_CHECK_MSG(!started_, "cannot add chunks after start()");
  VRMR_CHECK(chunk != nullptr);
  VRMR_CHECK_MSG(gpu < cluster_.total_gpus(), "gpu " << gpu << " out of range");
  // Enforce the §3.1.1 restriction early: "any single map task must be
  // able to fit in the main memory of the GPU".
  VRMR_CHECK_MSG(chunk->device_bytes() <= cluster_.config().hw.gpu.vram_bytes,
                 "chunk '" << chunk->label() << "' (" << chunk->device_bytes()
                           << " B) exceeds GPU VRAM ("
                           << cluster_.config().hw.gpu.vram_bytes
                           << " B); brick the input smaller");
  chunks_.push_back(std::move(chunk));
  chunk_gpu_.push_back(gpu < 0 ? -1 : gpu);
  footprints_.push_back(Footprint{});
}

void FramePlan::set_chunk_footprint(int chunk_index, int x0, int y0, int x1,
                                    int y1) {
  VRMR_CHECK_MSG(!started_, "cannot set footprints after start()");
  VRMR_CHECK(chunk_index >= 0 &&
             chunk_index < static_cast<int>(footprints_.size()));
  footprints_[static_cast<std::size_t>(chunk_index)] =
      Footprint{x0, y0, x1, y1, true};
}

void FramePlan::start() {
  VRMR_CHECK_MSG(!started_, "FramePlan::start is single-use");
  VRMR_CHECK_MSG(mapper_factory_ != nullptr, "mapper factory not set");
  VRMR_CHECK_MSG(reducer_factory_ != nullptr, "reducer factory not set");
  VRMR_CHECK_MSG(!chunks_.empty(), "no chunks queued");
  started_ = true;

  const int num_gpus = cluster_.total_gpus();
  partitioner_ = make_partitioner(config_.partition, config_.domain, num_gpus);

  // Build per-GPU mapper processes and deal chunks.
  gpus_.clear();
  for (int g = 0; g < num_gpus; ++g) {
    auto state = std::make_unique<GpuState>();
    state->mapper = mapper_factory_(g, cluster_.gpu(g));
    VRMR_CHECK(state->mapper != nullptr);
    state->mapper->init(cluster_.gpu(g));
    for (int r = 0; r < num_gpus; ++r) state->outbox.emplace_back(config_.value_size);
    if (combiner_factory_) {
      state->combiner = combiner_factory_(g);
      VRMR_CHECK(state->combiner != nullptr);
    }
    gpus_.push_back(std::move(state));
  }
  // Per-chunk conservative reducer owner masks: the partitioner's owner
  // set of the chunk's screen footprint; all-ones without a footprint.
  std::uint64_t culled = 0;
  chunk_masks_.assign(chunks_.size(), {});
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    const Footprint& fp = footprints_[i];
    auto& mask = chunk_masks_[i];
    if (!fp.set) {
      mask.assign(static_cast<std::size_t>(num_gpus), 1);
    } else if (fp.x1 <= fp.x0 || fp.y1 <= fp.y0) {
      mask.assign(static_cast<std::size_t>(num_gpus), 0);  // off-screen
    } else {
      partitioner_->owners_in_rect(fp.x0, fp.y0, fp.x1, fp.y1, mask);
    }
  }

  int deal = 0;
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    // Dealing positions advance for EVERY chunk, culled or not, so the
    // brick -> GPU mapping (and thus residency-cache hits) is identical
    // with and without footprints.
    const int g = chunk_gpu_[i] >= 0 ? chunk_gpu_[i] : (deal++ % num_gpus);
    const auto& mask = chunk_masks_[i];
    const bool on_screen =
        std::any_of(mask.begin(), mask.end(), [](std::uint8_t m) { return m != 0; });
    if (!on_screen) {
      // Empty footprint: the kernel's launch rect is empty, it can emit
      // nothing — skip staging and mapping entirely.
      ++culled;
      continue;
    }
    gpus_[static_cast<std::size_t>(g)]->chunk_indices.push_back(static_cast<int>(i));
  }

  // One reducer process per GPU process.
  reducers_.clear();
  for (int r = 0; r < num_gpus; ++r) {
    auto state = std::make_unique<ReducerState>();
    state->reducer = reducer_factory_(r);
    VRMR_CHECK(state->reducer != nullptr);
    state->inbox = KvBuffer(config_.value_size);
    reducers_.push_back(std::move(state));
  }
  tile_finish_s_.assign(static_cast<std::size_t>(num_gpus), 0.0);
  chunk_attempts_.assign(chunks_.size(), 0);

  stats_ = JobStats{};
  stats_.num_gpus = num_gpus;
  stats_.num_nodes = cluster_.num_nodes();
  stats_.num_chunks = static_cast<int>(chunks_.size());
  stats_.chunks_culled = culled;
  stats_.per_gpu.resize(static_cast<std::size_t>(num_gpus));
  stats_.per_reducer.resize(static_cast<std::size_t>(num_gpus));

  t0_ = cluster_.engine().now();
  mappers_remaining_ = num_gpus;
  // Set up-front (not at the barrier transitions): under PerReducer
  // barriers sorts and reduces start draining before any frame-global
  // transition fires.
  sorts_remaining_ = num_gpus;
  reduces_remaining_ = num_gpus;

  // Per-(mapper, reducer) contribution counts, and the pairs that are
  // final before any work runs (chunkless GPUs; reducers outside every
  // footprint dealt to a GPU).
  bool any_reducer_final_at_start = false;
  reducer_contributors_.assign(static_cast<std::size_t>(num_gpus), 0);
  for (int g = 0; g < num_gpus; ++g) {
    auto& gs = *gpus_[static_cast<std::size_t>(g)];
    gs.contrib.assign(static_cast<std::size_t>(num_gpus), 0);
    for (const int ci : gs.chunk_indices) {
      const auto& mask = chunk_masks_[static_cast<std::size_t>(ci)];
      for (int r = 0; r < num_gpus; ++r) {
        gs.contrib[static_cast<std::size_t>(r)] += mask[static_cast<std::size_t>(r)];
      }
    }
    for (int r = 0; r < num_gpus; ++r) {
      if (gs.contrib[static_cast<std::size_t>(r)] == 0) {
        auto& rs = *reducers_[static_cast<std::size_t>(r)];
        if (++rs.final_pairs == num_gpus) any_reducer_final_at_start = true;
      } else {
        ++reducer_contributors_[static_cast<std::size_t>(r)];
      }
    }
  }

  // GPUs that were dealt no chunks retire their mapper immediately —
  // their (empty) final flush cannot complete routing on its own
  // because some other GPU holds chunks. The exception is a fully
  // culled frame (every chunk off-screen): retiring the last mapper
  // would then cascade sort+reduce and finish the frame synchronously
  // INSIDE start(), breaking the "issues nothing" contract drivers
  // rely on — defer the retire sweep to a fresh engine event.
  const bool all_culled = std::all_of(
      gpus_.begin(), gpus_.end(),
      [](const std::unique_ptr<GpuState>& gs) { return gs->chunk_indices.empty(); });
  if (all_culled) {
    cluster_.engine().schedule_after(0.0, [this] {
      for (int g = 0; g < static_cast<int>(gpus_.size()); ++g) {
        auto& gs = *gpus_[static_cast<std::size_t>(g)];
        gs.issued_all = true;
        maybe_final_flush(g);
      }
    });
  } else {
    for (int g = 0; g < num_gpus; ++g) {
      auto& gs = *gpus_[static_cast<std::size_t>(g)];
      if (gs.chunk_indices.empty()) {
        gs.issued_all = true;
        maybe_final_flush(g);
      }
    }
    // Reducers no footprint can reach are ready before any map quantum
    // runs — deferred for the same issues-nothing reason.
    if (per_reducer_barriers() && any_reducer_final_at_start) {
      cluster_.engine().schedule_after(0.0, [this] {
        for (int r = 0; r < static_cast<int>(reducers_.size()); ++r) {
          maybe_reducer_ready(r);
        }
      });
    }
  }
}

// --- stage+map quanta --------------------------------------------------------

int FramePlan::pending_map_quanta(int gpu) const {
  const auto& gs = *gpus_.at(static_cast<std::size_t>(gpu));
  return static_cast<int>(gs.chunk_indices.size() - gs.cursor);
}

bool FramePlan::lane_busy(int gpu) const {
  return gpus_.at(static_cast<std::size_t>(gpu))->lane_busy;
}

void FramePlan::issue_map_quantum(int gpu) {
  VRMR_CHECK_MSG(started_, "issue before start()");
  auto& gs = *gpus_.at(static_cast<std::size_t>(gpu));
  VRMR_CHECK_MSG(gs.cursor < gs.chunk_indices.size(),
                 "no pending map quanta on gpu " << gpu);
  VRMR_CHECK_MSG(!gs.lane_busy, "gpu " << gpu << " lane already busy");
  gs.lane_busy = true;
  const int ci = gs.chunk_indices[gs.cursor++];
  const int attempt = ++chunk_attempts_[static_cast<std::size_t>(ci)];
  if (auto* tr = config_.trace.recorder) {
    tr->begin(cluster_.engine().now(), config_.trace.pid, gpu, "map", "map",
              {{"chunk", chunks_[static_cast<std::size_t>(ci)]->label()},
               {"session", std::to_string(config_.trace.session)},
               {"frame", std::to_string(config_.trace.frame_id)}});
  }
  if (config_.fault_hook) {
    const QuantumFault fault = config_.fault_hook(gpu, ci, attempt);
    if (fault.fail) {
      fail_quantum(gpu, ci, fault.detect_s, fault.kind);
      return;
    }
  }
  begin_staging(gpu, ci);
}

void FramePlan::fail_quantum(int gpu, int chunk_index, double detect_s,
                             const char* kind) {
  ++stats_.quanta_failed;
  // The lane is wedged until the failure is detected (a stuck read, a
  // missed ack): charge the detection timeout on the GPU stream, then
  // restore the chunk and release the lane.
  const std::string kind_str = kind != nullptr ? kind : "quantum";
  auto land = [this, gpu, chunk_index, kind_str] {
    auto& gs = *gpus_[static_cast<std::size_t>(gpu)];
    if (auto* tr = config_.trace.recorder) {
      const double now = cluster_.engine().now();
      tr->instant(now, config_.trace.pid, gpu, "fault." + kind_str, "fault",
                  {{"chunk", chunks_[static_cast<std::size_t>(chunk_index)]->label()},
                   {"attempt", std::to_string(
                       chunk_attempts_[static_cast<std::size_t>(chunk_index)])},
                   {"frame", std::to_string(config_.trace.frame_id)}});
      tr->end(now, config_.trace.pid, gpu);  // closes "map"
    }
    // The cursor already advanced past the chunk and nothing since can
    // have removed entries below it, so stepping back re-queues exactly
    // this chunk as the lane's next quantum. issued_all stays false —
    // the mapper cannot retire with a retry outstanding.
    --gs.cursor;
    VRMR_DCHECK(gs.chunk_indices[gs.cursor] == chunk_index);
    gs.lane_busy = false;
    if (quantum_failed_cb_) {
      quantum_failed_cb_(gpu, chunk_index,
                         chunk_attempts_[static_cast<std::size_t>(chunk_index)]);
    }
    if (lane_free_cb_) lane_free_cb_(gpu);
    if (greedy_ && !gs.lane_busy && gs.cursor < gs.chunk_indices.size()) {
      issue_map_quantum(gpu);  // immediate same-lane retry
    }
  };
  if (detect_s > 0.0) {
    cluster_.gpu_stream(gpu).acquire(
        detect_s, [land = std::move(land)](sim::SimTime, sim::SimTime) { land(); });
  } else {
    cluster_.engine().schedule_after(0.0, std::move(land));
  }
}

void FramePlan::redistribute_lane(int gpu, const std::vector<int>& survivors) {
  VRMR_CHECK_MSG(started_, "redistribute before start()");
  VRMR_CHECK_MSG(!finished_, "redistribute after the plan finished");
  VRMR_CHECK_MSG(!survivors.empty(), "redistribute needs at least one survivor");
  auto& gs = *gpus_.at(static_cast<std::size_t>(gpu));
  for (const int s : survivors) {
    VRMR_CHECK_MSG(s >= 0 && s < static_cast<int>(gpus_.size()) && s != gpu,
                   "bad survivor lane " << s);
  }
  if (gs.cursor >= gs.chunk_indices.size()) return;  // nothing pending

  // The dead lane holds pending chunks, so its mapper has not retired:
  // the routing barrier is still open and no reducer can be ready yet
  // for any pair the moves below reopen (proof: a moved chunk's mask
  // bit for r implies contrib[gpu][r] >= 1, so (gpu, r) is not final
  // and r's final_pairs < num mappers).
  VRMR_DCHECK(!sorts_ready_);

  std::vector<int> moved(gs.chunk_indices.begin() +
                             static_cast<std::ptrdiff_t>(gs.cursor),
                         gs.chunk_indices.end());
  gs.chunk_indices.resize(gs.cursor);

  const int num_reducers = static_cast<int>(reducers_.size());
  for (std::size_t i = 0; i < moved.size(); ++i) {
    const int ci = moved[i];
    const int target = survivors[i % survivors.size()];
    auto& gt = *gpus_[static_cast<std::size_t>(target)];
    // Reopen a retired target mapper: it has new chunks to issue.
    if (gt.finished) {
      gt.finished = false;
      ++mappers_remaining_;
    }
    gt.issued_all = false;
    gt.chunk_indices.push_back(ci);

    const auto& mask = chunk_masks_[static_cast<std::size_t>(ci)];
    for (int r = 0; r < num_reducers; ++r) {
      if (!mask[static_cast<std::size_t>(r)]) continue;
      // Target first: a zero contribution count means the (target, r)
      // pair was counted final — reopen it before the count goes up.
      if (gt.contrib[static_cast<std::size_t>(r)]++ == 0) {
        --reducers_[static_cast<std::size_t>(r)]->final_pairs;
      }
      // Source: this chunk will never be partitioned by `gpu`.
      if (--gs.contrib[static_cast<std::size_t>(r)] == 0) {
        pair_final(gpu, r);
      }
    }
  }

  // An idle dead lane retires its mapper now (flushing fragments its
  // completed quanta already produced); a busy one retires via
  // lane_freed when the in-flight quantum lands.
  if (!gs.lane_busy && gs.cursor >= gs.chunk_indices.size()) {
    gs.issued_all = true;
    maybe_final_flush(gpu);
  }

  if (greedy_) {
    for (const int s : survivors) {
      cluster_.engine().schedule_after(0.0, [this, s] {
        if (!lane_busy(s) && pending_map_quanta(s) > 0) issue_map_quantum(s);
      });
    }
  }
}

void FramePlan::begin_staging(int g, int chunk_index) {
  const Chunk& chunk = *chunks_[static_cast<std::size_t>(chunk_index)];
  if (config_.staging_hook && config_.staging_hook(g, chunk)) {
    // Already resident on this GPU (brick cache hit): skip the disk
    // read and the H2D copy entirely — the map kernel can launch as
    // soon as the GPU stream is free. Saved-byte counters are STORED
    // bytes: that is what the skipped transfer would have shipped (the
    // cache holds compressed payloads, so a hit still pays its
    // decompress quantum in after_h2d).
    stats_.chunks_resident += 1;
    stats_.bytes_h2d_saved += chunk.stored_bytes();
    if (config_.include_disk_io) stats_.bytes_disk_saved += chunk.disk_bytes();
    after_h2d(g, chunk_index);
    return;
  }
  // Peer hydration: a miss may be served from a sibling shard's warm
  // cache instead of disk — the hook owns the (simulated) fabric
  // transfer and resumes the plan at the H2D copy when the compressed
  // payload lands in host memory.
  if (config_.fetch_hook &&
      config_.fetch_hook(g, chunk,
                         [this, g, chunk_index] { after_disk(g, chunk_index); })) {
    stats_.chunks_hydrated += 1;
    stats_.bytes_hydrated += chunk.stored_bytes();
    if (config_.include_disk_io) stats_.bytes_disk_saved += chunk.disk_bytes();
    return;
  }
  if (config_.include_disk_io) {
    const std::uint64_t bytes = chunk.disk_bytes();
    stats_.bytes_disk += bytes;
    io::VirtualDisk& disk = cluster_.disk(cluster_.node_of_gpu(g));
    stats_.disk_busy_s += disk.model().read_time(bytes);
    disk.read(bytes, [this, g, chunk_index] { after_disk(g, chunk_index); });
  } else {
    after_disk(g, chunk_index);
  }
}

void FramePlan::after_disk(int g, int chunk_index) {
  // Synchronous H2D of the chunk's 3-D texture: occupies both the
  // node's PCIe link and the GPU stream (§3.1.2). The copy ships the
  // STORED payload (compressed chunks move fewer bytes; the expansion
  // back to device_bytes() is the decompress quantum in after_h2d).
  const int node = cluster_.node_of_gpu(g);
  const Chunk& chunk = *chunks_[static_cast<std::size_t>(chunk_index)];
  const std::uint64_t bytes = chunk.stored_bytes();
  stats_.bytes_h2d += bytes;
  stats_.bytes_logical_staged += chunk.device_bytes();
  const double duration = cluster_.config().hw.pcie.transfer_time(bytes);
  stats_.pcie_busy_s += duration;
  stats_.gpu_busy_s += duration;
  const std::array<sim::Resource*, 2> rs = {&cluster_.pcie(node), &cluster_.gpu_stream(g)};
  sim::Resource::acquire_multi(rs, duration,
                               [this, g, chunk_index](sim::SimTime, sim::SimTime) {
                                 after_h2d(g, chunk_index);
                               });
}

void FramePlan::after_h2d(int g, int chunk_index) {
  // Decompress quantum: expand the stored payload to the logical
  // texture on this GPU's stream, strictly before the map kernel. Both
  // staging paths land here (a cache hit holds the compressed payload
  // too), so hits and misses pay the same expansion. Because the
  // quantum runs on the same stream whose kernel completion stamps
  // t_map_done, critical-path attribution folds it into StageMap with
  // no change to the exact finish − arrival partition
  // (obs/critical_path.hpp).
  const Chunk& chunk = *chunks_[static_cast<std::size_t>(chunk_index)];
  const double expand_s = chunk.decompress_s();
  if (expand_s > 0.0) {
    stats_.chunks_decompressed += 1;
    stats_.decompress_s_total += expand_s;
    stats_.gpu_busy_s += expand_s;
    if (auto* tr = config_.trace.recorder) {
      tr->begin(cluster_.engine().now(), config_.trace.pid, g, "decompress",
                "compress",
                {{"chunk", chunk.label()},
                 {"frame", std::to_string(config_.trace.frame_id)}});
    }
    cluster_.gpu_stream(g).acquire(
        expand_s, [this, g, chunk_index](sim::SimTime, sim::SimTime) {
          if (auto* tr = config_.trace.recorder) {
            tr->end(cluster_.engine().now(), config_.trace.pid, g);
          }
          run_map(g, chunk_index);
        });
    return;
  }
  run_map(g, chunk_index);
}

void FramePlan::run_map(int g, int chunk_index) {
  auto& gs = *gpus_[static_cast<std::size_t>(g)];
  const Chunk& chunk = *chunks_[static_cast<std::size_t>(chunk_index)];

  // Functional kernel execution happens here (host threads); its
  // simulated duration is charged onto the GPU stream afterwards.
  auto out = std::make_shared<KvBuffer>(config_.value_size);
  const MapOutcome outcome = gs.mapper->map(cluster_.gpu(g), chunk, *out);
  if (config_.verify_every_thread_emits && outcome.threads > 0) {
    VRMR_CHECK_MSG(out->size() == outcome.threads,
                   "every-thread-emits violated for chunk '"
                       << chunk.label() << "': " << out->size() << " pairs from "
                       << outcome.threads << " threads");
  }

  const double duration =
      cluster_.gpu(g).props().kernel_time(outcome.samples, out->bytes());
  auto& pg = stats_.per_gpu[static_cast<std::size_t>(g)];
  pg.chunks += 1;
  pg.samples += outcome.samples;
  pg.threads += outcome.threads;
  pg.pairs += out->size();
  pg.kernel_s += duration;
  stats_.total_samples += outcome.samples;
  stats_.gpu_busy_s += duration;

  cluster_.gpu_stream(g).acquire(
      duration, [this, g, chunk_index, out](sim::SimTime, sim::SimTime end) {
        stats_.t_map_done = std::max(stats_.t_map_done, end - t0_);
        after_kernel(g, chunk_index, out);
      });
}

void FramePlan::after_kernel(int g, int chunk_index, std::shared_ptr<KvBuffer> out) {
  // D2H of the emitted pairs (fragments + placeholders — placeholders
  // are still resident on the device at this point, §3.1.1).
  const int node = cluster_.node_of_gpu(g);
  const std::uint64_t bytes = out->bytes();
  stats_.bytes_d2h += bytes;
  const double duration = cluster_.config().hw.pcie.transfer_time(bytes);
  stats_.pcie_busy_s += duration;
  stats_.gpu_busy_s += duration;
  const std::array<sim::Resource*, 2> rs = {&cluster_.pcie(node), &cluster_.gpu_stream(g)};
  sim::Resource::acquire_multi(
      rs, duration, [this, g, node, chunk_index, out](sim::SimTime, sim::SimTime) {
        // GPU is free again: the quantum ends here (the paper's overlap
        // of communication with further ray casting) while the CPU
        // partitions this chunk's output in parallel.
        ++partitions_in_flight_;
        ++gpus_[static_cast<std::size_t>(g)]->pending_partitions;
        const double partition_time =
            static_cast<double>(out->size()) /
            cluster_.config().hw.cpu.partition_rate_pairs_per_s;
        stats_.cpu_busy_s += partition_time;
        cluster_.cpu(node).acquire(partition_time,
                                   [this, g, chunk_index, out](sim::SimTime, sim::SimTime) {
                                     partition_and_send(g, chunk_index, out);
                                   });
        lane_freed(g);
      });
}

void FramePlan::lane_freed(int g) {
  auto& gs = *gpus_[static_cast<std::size_t>(g)];
  gs.lane_busy = false;
  if (auto* tr = config_.trace.recorder) {
    tr->end(cluster_.engine().now(), config_.trace.pid, g);  // closes "map"
  }
  if (gs.cursor >= gs.chunk_indices.size()) {
    gs.issued_all = true;
    maybe_final_flush(g);
  }
  if (lane_free_cb_) lane_free_cb_(g);
  if (greedy_ && !gs.lane_busy && gs.cursor < gs.chunk_indices.size()) {
    issue_map_quantum(g);
  }
}

void FramePlan::partition_and_send(int g, int chunk_index,
                                   std::shared_ptr<KvBuffer> out) {
  auto& gs = *gpus_[static_cast<std::size_t>(g)];
  const int num_reducers = static_cast<int>(reducers_.size());
  auto& pg = stats_.per_gpu[static_cast<std::size_t>(g)];
  const auto& mask = chunk_masks_[static_cast<std::size_t>(chunk_index)];

  for (std::size_t i = 0; i < out->size(); ++i) {
    const std::uint32_t key = out->key(i);
    if (key == kPlaceholderKey) {
      ++pg.placeholders;
      ++stats_.placeholders;
      continue;
    }
    VRMR_CHECK_MSG(key < config_.domain.num_keys,
                   "emitted key " << key << " outside dense domain [0, "
                                  << config_.domain.num_keys << ")");
    ++stats_.fragments;
    const int owner = partitioner_->owner(key);
    // Footprint conservativeness: every emitted key must belong to a
    // reducer the chunk's declared footprint admits.
    VRMR_DCHECK(mask[static_cast<std::size_t>(owner)] != 0);
    gs.outbox[static_cast<std::size_t>(owner)].append(key, out->value(i));
  }

  // Buffered streaming sends (§3.1.2): flush any destination buffer
  // that reached the threshold.
  for (int r = 0; r < num_reducers; ++r) {
    if (gs.outbox[static_cast<std::size_t>(r)].bytes() >= config_.send_buffer_bytes) {
      flush_outbox(g, r);
    }
  }

  --partitions_in_flight_;
  --gs.pending_partitions;

  // Per-pair finality: this was the last of g's chunks able to reach r.
  // Flush-only here; readiness marking waits until after the barrier
  // bookkeeping below so that when this completion also resolves the
  // whole routing barrier, t_routed is stamped before any zero-pair
  // cascade a readiness mark could trigger (same stamp-before-readiness
  // ordering maybe_finish_routing documents).
  bool any_pair_final = false;
  for (int r = 0; r < num_reducers; ++r) {
    if (mask[static_cast<std::size_t>(r)] &&
        --gs.contrib[static_cast<std::size_t>(r)] == 0) {
      any_pair_final = true;
      pair_final(g, r);
    }
  }

  maybe_final_flush(g);
  maybe_finish_routing();

  if (any_pair_final && per_reducer_barriers()) {
    for (int r = 0; r < num_reducers; ++r) {
      if (mask[static_cast<std::size_t>(r)] &&
          gs.contrib[static_cast<std::size_t>(r)] == 0) {
        maybe_reducer_ready(r);
      }
    }
  }
}

void FramePlan::pair_final(int g, int r) {
  auto& rs = *reducers_[static_cast<std::size_t>(r)];
  ++rs.final_pairs;
  // Early flush only under PerReducer barriers: Global mode keeps the
  // paper's message schedule (threshold + final flush) event-for-event.
  if (per_reducer_barriers()) flush_outbox(g, r);
}

void FramePlan::flush_outbox(int g, int r) {
  auto& gs = *gpus_[static_cast<std::size_t>(g)];
  KvBuffer& box = gs.outbox[static_cast<std::size_t>(r)];
  if (box.empty()) return;
  auto payload = std::make_shared<KvBuffer>(std::move(box));
  box = KvBuffer(config_.value_size);

  // Hold the routing barrier open for the whole flush (combine + send),
  // and reducer r's inbox open for this payload specifically.
  ++sends_in_flight_;
  ++reducers_[static_cast<std::size_t>(r)]->sends_pending;

  std::uint64_t trace_id = 0;
  if (auto* tr = config_.trace.recorder) {
    trace_id = tr->next_async_id();
    tr->async_begin(cluster_.engine().now(), config_.trace.pid, trace_id, "send",
                    "send",
                    {{"from", std::to_string(g)},
                     {"to", std::to_string(r)},
                     {"pairs", std::to_string(payload->size())},
                     {"frame", std::to_string(config_.trace.frame_id)}});
  }

  if (gs.combiner != nullptr) {
    // Mapper-side partial reduce: group this buffer by key and let the
    // combiner collapse each group before it ships.
    const std::uint64_t pairs_in = payload->size();
    const SortedGroups groups = counting_sort(*payload, 0, config_.domain.num_keys);
    auto combined = std::make_shared<KvBuffer>(config_.value_size);
    for (std::size_t gi = 0; gi < groups.num_groups(); ++gi) {
      const std::uint32_t lo = groups.group_offsets[gi];
      const std::uint32_t hi = groups.group_offsets[gi + 1];
      gs.combiner->combine(groups.group_keys[gi], groups.sorted.value(lo), hi - lo,
                           *combined);
    }
    stats_.combine_input_pairs += pairs_in;
    stats_.combine_output_pairs += combined->size();

    // The grouping + combine runs on the mapper node's CPU.
    const auto& hw = cluster_.config().hw;
    const double duration =
        static_cast<double>(pairs_in) / hw.cpu.sort_rate_pairs_per_s +
        static_cast<double>(pairs_in) / hw.cpu.reduce_rate_frags_per_s;
    stats_.cpu_busy_s += duration;
    const int node = cluster_.node_of_gpu(g);
    cluster_.cpu(node).acquire(duration,
                               [this, g, r, combined, trace_id](sim::SimTime, sim::SimTime) {
                                 send_payload(g, r, combined, trace_id);
                               });
    return;
  }
  send_payload(g, r, payload, trace_id);
}

void FramePlan::send_payload(int g, int r, std::shared_ptr<KvBuffer> payload,
                             std::uint64_t send_trace_id) {
  if (payload->empty()) {
    // A combiner may legitimately collapse a buffer to nothing.
    --sends_in_flight_;
    --reducers_[static_cast<std::size_t>(r)]->sends_pending;
    if (auto* tr = config_.trace.recorder) {
      tr->async_end(cluster_.engine().now(), config_.trace.pid, send_trace_id,
                    "send", "send");
    }
    // Barrier bookkeeping first: if this was the last send, the
    // routing barrier stamps (and sweeps readiness, r included) before
    // any zero-pair cascade this reducer's readiness could trigger.
    maybe_finish_routing();
    maybe_reducer_ready(r);
    return;
  }
  const int src_node = cluster_.node_of_gpu(g);
  const int dst_node = cluster_.node_of_gpu(r);
  const std::uint64_t bytes = payload->bytes();
  stats_.bytes_net += bytes;
  ++stats_.net_messages;
  if (src_node != dst_node) {
    stats_.bytes_net_inter += bytes;
    // The sender's NIC port serializes overhead + payload (fabric.hpp);
    // intra-node sends bypass the NIC entirely.
    stats_.nic_busy_s += cluster_.fabric().model().per_message_overhead_s +
                         static_cast<double>(bytes) /
                             cluster_.fabric().model().bandwidth_Bps;
  }
  cluster_.fabric().send(src_node, dst_node, bytes, [this, r, payload, send_trace_id] {
    reducers_[static_cast<std::size_t>(r)]->inbox.append_buffer(*payload);
    --sends_in_flight_;
    --reducers_[static_cast<std::size_t>(r)]->sends_pending;
    if (auto* tr = config_.trace.recorder) {
      tr->async_end(cluster_.engine().now(), config_.trace.pid, send_trace_id,
                    "send", "send");
    }
    // Barrier bookkeeping first (see the empty-payload branch); the
    // drain transition's sweep still marks this reducer ready before
    // on_sorts_ready fires, preserving the ready-then-sorts_ready
    // order on the final send.
    maybe_finish_routing();
    maybe_reducer_ready(r);
  });
}

void FramePlan::maybe_final_flush(int g) {
  auto& gs = *gpus_[static_cast<std::size_t>(g)];
  if (gs.finished || !gs.issued_all || gs.pending_partitions != 0) return;
  gs.finished = true;
  for (int r = 0; r < static_cast<int>(reducers_.size()); ++r) flush_outbox(g, r);
  --mappers_remaining_;
  maybe_finish_routing();
}

void FramePlan::maybe_finish_routing() {
  if (sorts_ready_) return;
  if (mappers_remaining_ != 0 || partitions_in_flight_ != 0) return;
  // Every mapper finished partitioning: expected inbound-send counts
  // are final.
  const bool first_resolve = !routing_resolved_;
  routing_resolved_ = true;

  // Stamp the routing barrier BEFORE any readiness marking: marking a
  // reducer ready can synchronously cascade its zero-pair sort+reduce
  // (through eager issuing or a driver's ready callback) — with every
  // inbox empty that cascade finishes the whole frame, and
  // finalize_stats must see t_routed by then.
  const bool drained = sends_in_flight_ == 0;
  if (drained) {
    sorts_ready_ = true;
    stats_.t_routed = cluster_.engine().now() - t0_;
  }

  if (per_reducer_barriers()) {
    // Sweep on newly-final counts (any reducer whose inbox is already
    // complete becomes ready, index order) and on the drain (the final
    // send's reducer goes ready here, before sorts_ready_cb_). Between
    // those, each landing send marks its own reducer.
    if (first_resolve || drained) {
      for (int r = 0; r < static_cast<int>(reducers_.size()); ++r) {
        maybe_reducer_ready(r);
      }
    }
  } else if (drained) {
    // Global barrier: every reducer becomes ready at this one event.
    for (int r = 0; r < static_cast<int>(reducers_.size()); ++r) {
      mark_reducer_ready(r);
    }
  }
  if (!drained) return;
  if (sorts_ready_cb_) sorts_ready_cb_();
  if (greedy_ || eager_barriers_) {
    for (int r = 0; r < static_cast<int>(reducers_.size()); ++r) {
      if (sort_pending(r)) issue_sort_quantum(r);
    }
  }
}

void FramePlan::maybe_reducer_ready(int r) {
  if (!per_reducer_barriers()) return;
  auto& rs = *reducers_[static_cast<std::size_t>(r)];
  // Ready when every (mapper, r) pair is final — each mapper has
  // partitioned (and flushed) the last chunk that could reach r — and
  // every flushed send has landed. Without footprints, pairs finalize
  // at each mapper's final flush, making this the old "all mappers
  // finished partitioning" gate exactly.
  if (rs.ready || rs.final_pairs != static_cast<int>(gpus_.size()) ||
      rs.sends_pending != 0) {
    return;
  }
  mark_reducer_ready(r);
  if (greedy_ || eager_barriers_) issue_sort_quantum(r);
}

void FramePlan::mark_reducer_ready(int r) {
  auto& rs = *reducers_[static_cast<std::size_t>(r)];
  rs.ready = true;
  rs.ready_s = cluster_.engine().now();
  if (auto* tr = config_.trace.recorder) {
    tr->instant(rs.ready_s, config_.trace.pid, config_.trace.reducer_tid_base + r,
                "reducer_ready", "barrier",
                {{"pairs", std::to_string(rs.inbox.size())},
                 {"frame", std::to_string(config_.trace.frame_id)}});
  }
  if (reducer_ready_cb_) reducer_ready_cb_(r);
}

// --- sort quanta -------------------------------------------------------------

bool FramePlan::reducer_ready(int reducer) const {
  return reducers_.at(static_cast<std::size_t>(reducer))->ready;
}

double FramePlan::reducer_ready_s(int reducer) const {
  return reducers_.at(static_cast<std::size_t>(reducer))->ready_s;
}

double FramePlan::sort_issue_s(int reducer) const {
  return reducers_.at(static_cast<std::size_t>(reducer))->sort_issue_s;
}

double FramePlan::sort_done_s(int reducer) const {
  return reducers_.at(static_cast<std::size_t>(reducer))->sort_done_s;
}

bool FramePlan::sort_pending(int reducer) const {
  const auto& rs = *reducers_.at(static_cast<std::size_t>(reducer));
  return rs.ready && !rs.sort_issued;
}

void FramePlan::issue_sort_quantum(int r) {
  auto& rs = *reducers_.at(static_cast<std::size_t>(r));
  VRMR_CHECK_MSG(rs.ready, "sort quantum " << r << " not ready ("
                               << (per_reducer_barriers()
                                       ? "inbox incomplete"
                                       : "routing barrier open")
                               << ")");
  VRMR_CHECK_MSG(!rs.sort_issued, "sort quantum " << r << " already issued");
  rs.sort_issued = true;
  rs.sort_issue_s = cluster_.engine().now();
  if (auto* tr = config_.trace.recorder) {
    tr->begin(rs.sort_issue_s, config_.trace.pid,
              config_.trace.reducer_tid_base + r, "sort", "sort",
              {{"pairs", std::to_string(rs.inbox.size())},
               {"frame", std::to_string(config_.trace.frame_id)}});
  }

  const auto& hw = cluster_.config().hw;
  const std::uint64_t pairs = rs.inbox.size();
  stats_.per_reducer[static_cast<std::size_t>(r)].pairs_in = pairs;

  if (pairs == 0) {
    rs.groups = SortedGroups{};
    rs.groups.sorted = KvBuffer(config_.value_size);
    sort_done(r);
    return;
  }

  // Functional sort (deterministic regardless of placement).
  rs.groups = counting_sort(rs.inbox, 0, config_.domain.num_keys);
  stats_.per_reducer[static_cast<std::size_t>(r)].groups = rs.groups.num_groups();

  const bool on_gpu =
      config_.sort == SortPlacement::Gpu ||
      (config_.sort == SortPlacement::Auto && pairs > config_.gpu_sort_threshold_pairs);
  stats_.per_reducer[static_cast<std::size_t>(r)].sorted_on_gpu = on_gpu;

  const int node = cluster_.node_of_gpu(r);
  if (on_gpu) {
    // H2D -> device counting sort -> D2H, on the co-located GPU.
    const std::uint64_t bytes = rs.inbox.bytes();
    const double copy = hw.pcie.transfer_time(bytes);
    const double kernel = hw.gpu.kernel_launch_overhead_s +
                          static_cast<double>(pairs) / hw.gpu_sort.sort_rate_pairs_per_s;
    stats_.pcie_busy_s += 2.0 * copy;
    stats_.gpu_busy_s += 2.0 * copy + kernel;
    const std::array<sim::Resource*, 2> rsrc = {&cluster_.pcie(node),
                                                &cluster_.gpu_stream(r)};
    sim::Resource::acquire_multi(rsrc, copy, [this, r, node, kernel, copy](sim::SimTime,
                                                                           sim::SimTime) {
      cluster_.gpu_stream(r).acquire(kernel, [this, r, node, copy](sim::SimTime,
                                                                   sim::SimTime) {
        const std::array<sim::Resource*, 2> back = {&cluster_.pcie(node),
                                                    &cluster_.gpu_stream(r)};
        sim::Resource::acquire_multi(
            back, copy, [this, r](sim::SimTime, sim::SimTime) { sort_done(r); });
      });
    });
  } else {
    const double duration = static_cast<double>(pairs) / hw.cpu.sort_rate_pairs_per_s;
    stats_.cpu_busy_s += duration;
    cluster_.cpu(node).acquire(duration,
                               [this, r](sim::SimTime, sim::SimTime) { sort_done(r); });
  }
}

void FramePlan::sort_done(int r) {
  auto& rs_done = *reducers_[static_cast<std::size_t>(r)];
  rs_done.sort_completed = true;
  rs_done.sort_done_s = cluster_.engine().now();
  if (auto* tr = config_.trace.recorder) {
    tr->end(rs_done.sort_done_s, config_.trace.pid,
            config_.trace.reducer_tid_base + r);  // closes "sort"
  }
  // Stamp the sort barrier BEFORE the completion callback or chaining:
  // a zero-pair reduce issued from either completes synchronously, and
  // when this was the last sort that cascade finishes the frame —
  // finalize_stats must see t_sorted by then.
  const bool last = --sorts_remaining_ == 0;
  if (last) {
    stats_.t_sorted = cluster_.engine().now() - t0_;
    reduces_ready_ = true;
  }
  if (sort_done_cb_) sort_done_cb_(r);
  // Per-reducer chaining: this reducer's tile proceeds to compositing
  // immediately — it never waits for the other sorts.
  if (per_reducer_barriers() && (greedy_ || eager_barriers_) &&
      reduce_pending(r)) {
    issue_reduce_quantum(r);
  }
  if (last) {
    if (reduces_ready_cb_) reduces_ready_cb_();
    if (greedy_ || eager_barriers_) {
      // Under PerReducer barriers every other reduce already chained at
      // its own sort; this loop only picks up stragglers (Global mode
      // issues everything here).
      for (int rr = 0; rr < static_cast<int>(reducers_.size()); ++rr) {
        if (reduce_pending(rr)) issue_reduce_quantum(rr);
      }
    }
  }
}

// --- reduce quanta -----------------------------------------------------------

bool FramePlan::reduce_pending(int reducer) const {
  const auto& rs = *reducers_.at(static_cast<std::size_t>(reducer));
  if (rs.reduce_issued) return false;
  return per_reducer_barriers() ? rs.sort_completed : reduces_ready_;
}

void FramePlan::issue_reduce_quantum(int r) {
  auto& rs = *reducers_.at(static_cast<std::size_t>(r));
  VRMR_CHECK_MSG(per_reducer_barriers() ? rs.sort_completed : reduces_ready_,
                 "reduce quantum " << r << " not ready ("
                                   << (per_reducer_barriers()
                                           ? "own sort outstanding"
                                           : "sorts outstanding")
                                   << ")");
  VRMR_CHECK_MSG(!rs.reduce_issued, "reduce quantum " << r << " already issued");
  rs.reduce_issued = true;

  const auto& hw = cluster_.config().hw;
  const std::uint64_t pairs = rs.groups.sorted.size();
  if (auto* tr = config_.trace.recorder) {
    tr->begin(cluster_.engine().now(), config_.trace.pid,
              config_.trace.reducer_tid_base + r, "reduce", "reduce",
              {{"pairs", std::to_string(pairs)},
               {"frame", std::to_string(config_.trace.frame_id)}});
  }

  // Functional reduce.
  rs.reducer->begin(r);
  const auto& groups = rs.groups;
  for (std::size_t gidx = 0; gidx < groups.num_groups(); ++gidx) {
    const std::uint32_t key = groups.group_keys[gidx];
    const std::uint32_t lo = groups.group_offsets[gidx];
    const std::uint32_t hi = groups.group_offsets[gidx + 1];
    rs.reducer->reduce(key, groups.sorted.value(lo), hi - lo);
  }
  rs.reducer->end();

  if (pairs == 0) {
    reduce_done(r);
    return;
  }

  const int node = cluster_.node_of_gpu(r);
  if (config_.reduce == ReducePlacement::Cpu) {
    const double duration = static_cast<double>(pairs) / hw.cpu.reduce_rate_frags_per_s;
    stats_.cpu_busy_s += duration;
    cluster_.cpu(node).acquire(
        duration, [this, r](sim::SimTime, sim::SimTime) { reduce_done(r); });
  } else {
    // GPU compositing: pairs up, kernel, finished pixels back (the
    // option §3.1.2 weighs and rejects at small scales).
    const std::uint64_t up_bytes = rs.groups.sorted.bytes();
    const std::uint64_t down_bytes = groups.num_groups() * 16;  // RGBA float4
    const double up = hw.pcie.transfer_time(up_bytes);
    const double kernel =
        hw.gpu.kernel_launch_overhead_s +
        static_cast<double>(pairs) / hw.gpu_sort.reduce_rate_frags_per_s;
    const double down = hw.pcie.transfer_time(down_bytes);
    stats_.pcie_busy_s += up + down;
    stats_.gpu_busy_s += up + kernel + down;
    const std::array<sim::Resource*, 2> rsrc = {&cluster_.pcie(node),
                                                &cluster_.gpu_stream(r)};
    sim::Resource::acquire_multi(
        rsrc, up, [this, r, node, kernel, down](sim::SimTime, sim::SimTime) {
          cluster_.gpu_stream(r).acquire(
              kernel, [this, r, node, down](sim::SimTime, sim::SimTime) {
                const std::array<sim::Resource*, 2> back = {&cluster_.pcie(node),
                                                            &cluster_.gpu_stream(r)};
                sim::Resource::acquire_multi(
                    back, down,
                    [this, r](sim::SimTime, sim::SimTime) { reduce_done(r); });
              });
        });
  }
}

void FramePlan::reduce_done(int r) {
  tile_finish_s_[static_cast<std::size_t>(r)] = cluster_.engine().now();
  if (auto* tr = config_.trace.recorder) {
    tr->end(tile_finish_s_[static_cast<std::size_t>(r)], config_.trace.pid,
            config_.trace.reducer_tid_base + r);  // closes "reduce"
  }
  if (tile_cb_) tile_cb_(r);
  if (--reduces_remaining_ == 0) {
    finished_ = true;
    finalize_stats();
    if (finished_cb_) finished_cb_();
  }
}

double FramePlan::tile_finish_s(int reducer) const {
  return tile_finish_s_.at(static_cast<std::size_t>(reducer));
}

int FramePlan::reducer_contributors(int reducer) const {
  return reducer_contributors_.at(static_cast<std::size_t>(reducer));
}

void FramePlan::finalize_stats() {
  const double t_end = cluster_.engine().now() - t0_;
  stats_.runtime_s = t_end;
  double kernel_busy_total = 0.0;
  for (const auto& pg : stats_.per_gpu) kernel_busy_total += pg.kernel_s;
  stats_.stage.map_s = kernel_busy_total / stats_.num_gpus;
  stats_.stage.sort_s = stats_.t_sorted - stats_.t_routed;
  stats_.stage.reduce_s = t_end - stats_.t_sorted;
  stats_.stage.total_s = t_end;
  stats_.stage.partition_io_s = std::max(
      0.0, t_end - stats_.stage.map_s - stats_.stage.sort_s - stats_.stage.reduce_s);

  VRMR_DEBUG("mr.plan") << "runtime=" << stats_.runtime_s << "s map=" << stats_.stage.map_s
                        << "s part+io=" << stats_.stage.partition_io_s
                        << "s sort=" << stats_.stage.sort_s
                        << "s reduce=" << stats_.stage.reduce_s
                        << "s fragments=" << stats_.fragments;
}

const JobStats& FramePlan::stats() const {
  VRMR_CHECK_MSG(finished_, "stats() before the plan finished");
  return stats_;
}

JobStats FramePlan::run_to_completion() {
  if (!started_) start();
  greedy_ = true;

  auto& engine = cluster_.engine();
  for (int g = 0; g < static_cast<int>(gpus_.size()); ++g) {
    engine.schedule_after(0.0, [this, g] {
      if (!lane_busy(g) && pending_map_quanta(g) > 0) issue_map_quantum(g);
    });
  }
  engine.run();

  VRMR_CHECK_MSG(finished_,
                 "pipeline deadlocked: mappers=" << mappers_remaining_
                     << " partitions=" << partitions_in_flight_
                     << " sends=" << sends_in_flight_);
  return stats_;
}

}  // namespace vrmr::mr
