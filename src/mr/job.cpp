#include "mr/job.hpp"

#include <algorithm>
#include <array>

#include "util/log.hpp"

namespace vrmr::mr {

void JobConfig::validate() const {
  VRMR_CHECK_MSG(value_size > 0, "JobConfig.value_size must be set");
  VRMR_CHECK_MSG(domain.num_keys > 0, "JobConfig.domain.num_keys must be set");
  if (partition == PartitionStrategy::Tiled) {
    VRMR_CHECK_MSG(domain.image_width > 0, "Tiled partitioning needs image_width");
  }
}

struct Job::GpuState {
  std::unique_ptr<Mapper> mapper;
  std::vector<int> chunk_indices;
  std::size_t cursor = 0;

  // Streaming send buffers, one per reducer (§3.1.2 buffered sends).
  std::vector<KvBuffer> outbox;
  std::unique_ptr<Combiner> combiner;  // optional mapper-side partial reduce
  int pending_partitions = 0;  // partition tasks still queued on the CPU
  bool issued_all = false;     // every chunk has entered the pipeline
  bool finished = false;       // final flush done, mapper retired
};

struct Job::ReducerState {
  std::unique_ptr<Reducer> reducer;
  KvBuffer inbox;
  SortedGroups groups;
};

Job::Job(cluster::Cluster& cluster, JobConfig config)
    : cluster_(cluster), config_(std::move(config)) {
  config_.validate();
}

Job::~Job() = default;

void Job::add_chunk(std::unique_ptr<Chunk> chunk, int gpu) {
  VRMR_CHECK_MSG(!ran_, "cannot add chunks after run()");
  VRMR_CHECK(chunk != nullptr);
  VRMR_CHECK_MSG(gpu < cluster_.total_gpus(), "gpu " << gpu << " out of range");
  // Enforce the §3.1.1 restriction early: "any single map task must be
  // able to fit in the main memory of the GPU".
  VRMR_CHECK_MSG(chunk->device_bytes() <= cluster_.config().hw.gpu.vram_bytes,
                 "chunk '" << chunk->label() << "' (" << chunk->device_bytes()
                           << " B) exceeds GPU VRAM ("
                           << cluster_.config().hw.gpu.vram_bytes
                           << " B); brick the input smaller");
  chunks_.push_back(std::move(chunk));
  chunk_gpu_.push_back(gpu < 0 ? -1 : gpu);
}

JobStats Job::run() {
  VRMR_CHECK_MSG(!ran_, "Job::run is single-use");
  VRMR_CHECK_MSG(mapper_factory_ != nullptr, "mapper factory not set");
  VRMR_CHECK_MSG(reducer_factory_ != nullptr, "reducer factory not set");
  VRMR_CHECK_MSG(!chunks_.empty(), "no chunks queued");
  ran_ = true;

  const int num_gpus = cluster_.total_gpus();
  partitioner_ = make_partitioner(config_.partition, config_.domain, num_gpus);

  // Build per-GPU mapper processes and deal chunks.
  gpus_.clear();
  for (int g = 0; g < num_gpus; ++g) {
    auto state = std::make_unique<GpuState>();
    state->mapper = mapper_factory_(g, cluster_.gpu(g));
    VRMR_CHECK(state->mapper != nullptr);
    state->mapper->init(cluster_.gpu(g));
    for (int r = 0; r < num_gpus; ++r) state->outbox.emplace_back(config_.value_size);
    if (combiner_factory_) {
      state->combiner = combiner_factory_(g);
      VRMR_CHECK(state->combiner != nullptr);
    }
    gpus_.push_back(std::move(state));
  }
  int deal = 0;
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    const int g = chunk_gpu_[i] >= 0 ? chunk_gpu_[i] : (deal++ % num_gpus);
    gpus_[static_cast<std::size_t>(g)]->chunk_indices.push_back(static_cast<int>(i));
  }

  // One reducer process per GPU process.
  reducers_.clear();
  for (int r = 0; r < num_gpus; ++r) {
    auto state = std::make_unique<ReducerState>();
    state->reducer = reducer_factory_(r);
    VRMR_CHECK(state->reducer != nullptr);
    state->inbox = KvBuffer(config_.value_size);
    reducers_.push_back(std::move(state));
  }

  stats_ = JobStats{};
  stats_.num_gpus = num_gpus;
  stats_.num_nodes = cluster_.num_nodes();
  stats_.num_chunks = static_cast<int>(chunks_.size());
  stats_.per_gpu.resize(static_cast<std::size_t>(num_gpus));
  stats_.per_reducer.resize(static_cast<std::size_t>(num_gpus));

  auto& engine = cluster_.engine();
  t0_ = engine.now();
  base_gpu_busy_ = cluster_.total_gpu_busy();
  base_pcie_busy_ = cluster_.total_pcie_busy();
  base_nic_busy_ = cluster_.total_nic_busy();
  base_disk_busy_ = cluster_.total_disk_busy();
  base_cpu_busy_ = 0.0;
  for (int n = 0; n < cluster_.num_nodes(); ++n)
    base_cpu_busy_ += cluster_.cpu(n).busy_time();

  mappers_remaining_ = num_gpus;
  for (int g = 0; g < num_gpus; ++g) {
    engine.schedule_after(0.0, [this, g] { process_next_chunk(g); });
  }

  engine.run();

  VRMR_CHECK_MSG(routing_finished_ && sorts_remaining_ == 0 && reduces_remaining_ == 0,
                 "pipeline deadlocked: mappers=" << mappers_remaining_
                     << " partitions=" << partitions_in_flight_
                     << " sends=" << sends_in_flight_);

  // --- finalize statistics ----------------------------------------------
  const double t_end = engine.now() - t0_;
  stats_.runtime_s = t_end;
  double kernel_busy_total = 0.0;
  for (const auto& pg : stats_.per_gpu) kernel_busy_total += pg.kernel_s;
  stats_.stage.map_s = kernel_busy_total / num_gpus;
  stats_.stage.sort_s = stats_.t_sorted - stats_.t_routed;
  stats_.stage.reduce_s = t_end - stats_.t_sorted;
  stats_.stage.total_s = t_end;
  stats_.stage.partition_io_s = std::max(
      0.0, t_end - stats_.stage.map_s - stats_.stage.sort_s - stats_.stage.reduce_s);

  stats_.gpu_busy_s = cluster_.total_gpu_busy() - base_gpu_busy_;
  stats_.pcie_busy_s = cluster_.total_pcie_busy() - base_pcie_busy_;
  stats_.nic_busy_s = cluster_.total_nic_busy() - base_nic_busy_;
  stats_.disk_busy_s = cluster_.total_disk_busy() - base_disk_busy_;
  double cpu_busy = 0.0;
  for (int n = 0; n < cluster_.num_nodes(); ++n) cpu_busy += cluster_.cpu(n).busy_time();
  stats_.cpu_busy_s = cpu_busy - base_cpu_busy_;

  VRMR_DEBUG("mr.job") << "runtime=" << stats_.runtime_s << "s map=" << stats_.stage.map_s
                       << "s part+io=" << stats_.stage.partition_io_s
                       << "s sort=" << stats_.stage.sort_s
                       << "s reduce=" << stats_.stage.reduce_s
                       << "s fragments=" << stats_.fragments;
  return stats_;
}

// --- map phase -------------------------------------------------------------

void Job::process_next_chunk(int g) {
  auto& gs = *gpus_[static_cast<std::size_t>(g)];
  if (gs.cursor >= gs.chunk_indices.size()) {
    gs.issued_all = true;
    maybe_final_flush(g);
    return;
  }
  const int ci = gs.chunk_indices[gs.cursor++];
  const Chunk& chunk = *chunks_[static_cast<std::size_t>(ci)];
  if (config_.staging_hook && config_.staging_hook(g, chunk)) {
    // Already resident on this GPU (brick cache hit): skip the disk
    // read and the H2D copy entirely — the map kernel can launch as
    // soon as the GPU stream is free.
    stats_.chunks_resident += 1;
    stats_.bytes_h2d_saved += chunk.device_bytes();
    if (config_.include_disk_io) stats_.bytes_disk_saved += chunk.disk_bytes();
    after_h2d(g, ci);
    return;
  }
  if (config_.include_disk_io) {
    const std::uint64_t bytes = chunks_[static_cast<std::size_t>(ci)]->disk_bytes();
    stats_.bytes_disk += bytes;
    cluster_.disk(cluster_.node_of_gpu(g)).read(bytes, [this, g, ci] { after_disk(g, ci); });
  } else {
    after_disk(g, ci);
  }
}

void Job::after_disk(int g, int chunk_index) {
  // Synchronous H2D of the chunk's 3-D texture: occupies both the
  // node's PCIe link and the GPU stream (§3.1.2).
  const int node = cluster_.node_of_gpu(g);
  const std::uint64_t bytes = chunks_[static_cast<std::size_t>(chunk_index)]->device_bytes();
  stats_.bytes_h2d += bytes;
  const std::array<sim::Resource*, 2> rs = {&cluster_.pcie(node), &cluster_.gpu_stream(g)};
  sim::Resource::acquire_multi(rs, cluster_.config().hw.pcie.transfer_time(bytes),
                               [this, g, chunk_index](sim::SimTime, sim::SimTime) {
                                 after_h2d(g, chunk_index);
                               });
}

void Job::after_h2d(int g, int chunk_index) {
  auto& gs = *gpus_[static_cast<std::size_t>(g)];
  const Chunk& chunk = *chunks_[static_cast<std::size_t>(chunk_index)];

  // Functional kernel execution happens here (host threads); its
  // simulated duration is charged onto the GPU stream afterwards.
  auto out = std::make_shared<KvBuffer>(config_.value_size);
  const MapOutcome outcome = gs.mapper->map(cluster_.gpu(g), chunk, *out);
  if (config_.verify_every_thread_emits && outcome.threads > 0) {
    VRMR_CHECK_MSG(out->size() == outcome.threads,
                   "every-thread-emits violated for chunk '"
                       << chunk.label() << "': " << out->size() << " pairs from "
                       << outcome.threads << " threads");
  }

  const double duration =
      cluster_.gpu(g).props().kernel_time(outcome.samples, out->bytes());
  auto& pg = stats_.per_gpu[static_cast<std::size_t>(g)];
  pg.chunks += 1;
  pg.samples += outcome.samples;
  pg.threads += outcome.threads;
  pg.pairs += out->size();
  pg.kernel_s += duration;
  stats_.total_samples += outcome.samples;

  cluster_.gpu_stream(g).acquire(
      duration, [this, g, chunk_index, out, outcome](sim::SimTime, sim::SimTime end) {
        stats_.t_map_done = std::max(stats_.t_map_done, end - t0_);
        after_kernel(g, chunk_index, out, outcome);
      });
}

void Job::after_kernel(int g, int /*chunk_index*/, std::shared_ptr<KvBuffer> out,
                       MapOutcome /*outcome*/) {
  // D2H of the emitted pairs (fragments + placeholders — placeholders
  // are still resident on the device at this point, §3.1.1).
  const int node = cluster_.node_of_gpu(g);
  const std::uint64_t bytes = out->bytes();
  stats_.bytes_d2h += bytes;
  const std::array<sim::Resource*, 2> rs = {&cluster_.pcie(node), &cluster_.gpu_stream(g)};
  sim::Resource::acquire_multi(
      rs, cluster_.config().hw.pcie.transfer_time(bytes),
      [this, g, node, out](sim::SimTime, sim::SimTime) {
        // GPU is free again: stage the next chunk immediately (the
        // paper's overlap of communication with further ray casting),
        // while the CPU partitions this chunk's output in parallel.
        ++partitions_in_flight_;
        ++gpus_[static_cast<std::size_t>(g)]->pending_partitions;
        const double partition_time =
            static_cast<double>(out->size()) /
            cluster_.config().hw.cpu.partition_rate_pairs_per_s;
        cluster_.cpu(node).acquire(partition_time,
                                   [this, g, out](sim::SimTime, sim::SimTime) {
                                     partition_and_send(g, out);
                                   });
        process_next_chunk(g);
      });
}

void Job::partition_and_send(int g, std::shared_ptr<KvBuffer> out) {
  auto& gs = *gpus_[static_cast<std::size_t>(g)];
  const int num_reducers = static_cast<int>(reducers_.size());
  auto& pg = stats_.per_gpu[static_cast<std::size_t>(g)];

  for (std::size_t i = 0; i < out->size(); ++i) {
    const std::uint32_t key = out->key(i);
    if (key == kPlaceholderKey) {
      ++pg.placeholders;
      ++stats_.placeholders;
      continue;
    }
    VRMR_CHECK_MSG(key < config_.domain.num_keys,
                   "emitted key " << key << " outside dense domain [0, "
                                  << config_.domain.num_keys << ")");
    ++stats_.fragments;
    gs.outbox[static_cast<std::size_t>(partitioner_->owner(key))].append(key,
                                                                         out->value(i));
  }

  // Buffered streaming sends (§3.1.2): flush any destination buffer
  // that reached the threshold.
  for (int r = 0; r < num_reducers; ++r) {
    if (gs.outbox[static_cast<std::size_t>(r)].bytes() >= config_.send_buffer_bytes) {
      flush_outbox(g, r);
    }
  }

  --partitions_in_flight_;
  --gs.pending_partitions;
  maybe_final_flush(g);
  maybe_finish_routing();
}

void Job::flush_outbox(int g, int r) {
  auto& gs = *gpus_[static_cast<std::size_t>(g)];
  KvBuffer& box = gs.outbox[static_cast<std::size_t>(r)];
  if (box.empty()) return;
  auto payload = std::make_shared<KvBuffer>(std::move(box));
  box = KvBuffer(config_.value_size);

  // Hold the routing barrier open for the whole flush (combine + send).
  ++sends_in_flight_;

  if (gs.combiner != nullptr) {
    // Mapper-side partial reduce: group this buffer by key and let the
    // combiner collapse each group before it ships.
    const std::uint64_t pairs_in = payload->size();
    const SortedGroups groups = counting_sort(*payload, 0, config_.domain.num_keys);
    auto combined = std::make_shared<KvBuffer>(config_.value_size);
    for (std::size_t gi = 0; gi < groups.num_groups(); ++gi) {
      const std::uint32_t lo = groups.group_offsets[gi];
      const std::uint32_t hi = groups.group_offsets[gi + 1];
      gs.combiner->combine(groups.group_keys[gi], groups.sorted.value(lo), hi - lo,
                           *combined);
    }
    stats_.combine_input_pairs += pairs_in;
    stats_.combine_output_pairs += combined->size();

    // The grouping + combine runs on the mapper node's CPU.
    const auto& hw = cluster_.config().hw;
    const double duration =
        static_cast<double>(pairs_in) / hw.cpu.sort_rate_pairs_per_s +
        static_cast<double>(pairs_in) / hw.cpu.reduce_rate_frags_per_s;
    const int node = cluster_.node_of_gpu(g);
    cluster_.cpu(node).acquire(duration,
                               [this, g, r, combined](sim::SimTime, sim::SimTime) {
                                 send_payload(g, r, combined);
                               });
    return;
  }
  send_payload(g, r, payload);
}

void Job::send_payload(int g, int r, std::shared_ptr<KvBuffer> payload) {
  if (payload->empty()) {
    // A combiner may legitimately collapse a buffer to nothing.
    --sends_in_flight_;
    maybe_finish_routing();
    return;
  }
  const int src_node = cluster_.node_of_gpu(g);
  const int dst_node = cluster_.node_of_gpu(r);
  const std::uint64_t bytes = payload->bytes();
  stats_.bytes_net += bytes;
  if (src_node != dst_node) stats_.bytes_net_inter += bytes;
  ++stats_.net_messages;
  cluster_.fabric().send(src_node, dst_node, bytes, [this, r, payload] {
    reducers_[static_cast<std::size_t>(r)]->inbox.append_buffer(*payload);
    --sends_in_flight_;
    maybe_finish_routing();
  });
}

void Job::maybe_final_flush(int g) {
  auto& gs = *gpus_[static_cast<std::size_t>(g)];
  if (gs.finished || !gs.issued_all || gs.pending_partitions != 0) return;
  gs.finished = true;
  for (int r = 0; r < static_cast<int>(reducers_.size()); ++r) flush_outbox(g, r);
  mapper_finished(g);
}

void Job::mapper_finished(int /*g*/) {
  --mappers_remaining_;
  maybe_finish_routing();
}

void Job::maybe_finish_routing() {
  if (routing_finished_) return;
  if (mappers_remaining_ != 0 || partitions_in_flight_ != 0 || sends_in_flight_ != 0)
    return;
  routing_finished_ = true;
  stats_.t_routed = cluster_.engine().now() - t0_;
  start_sort_phase();
}

// --- sort phase ------------------------------------------------------------

void Job::start_sort_phase() {
  const int num_reducers = static_cast<int>(reducers_.size());
  sorts_remaining_ = num_reducers;
  const auto& hw = cluster_.config().hw;

  for (int r = 0; r < num_reducers; ++r) {
    auto& rs = *reducers_[static_cast<std::size_t>(r)];
    const std::uint64_t pairs = rs.inbox.size();
    stats_.per_reducer[static_cast<std::size_t>(r)].pairs_in = pairs;

    if (pairs == 0) {
      rs.groups = SortedGroups{};
      rs.groups.sorted = KvBuffer(config_.value_size);
      sort_done(r);
      continue;
    }

    // Functional sort (deterministic regardless of placement).
    rs.groups = counting_sort(rs.inbox, 0, config_.domain.num_keys);
    stats_.per_reducer[static_cast<std::size_t>(r)].groups = rs.groups.num_groups();

    const bool on_gpu =
        config_.sort == SortPlacement::Gpu ||
        (config_.sort == SortPlacement::Auto && pairs > config_.gpu_sort_threshold_pairs);
    stats_.per_reducer[static_cast<std::size_t>(r)].sorted_on_gpu = on_gpu;

    const int node = cluster_.node_of_gpu(r);
    if (on_gpu) {
      // H2D -> device counting sort -> D2H, on the co-located GPU.
      const std::uint64_t bytes = rs.inbox.bytes();
      const double copy = hw.pcie.transfer_time(bytes);
      const double kernel = hw.gpu.kernel_launch_overhead_s +
                            static_cast<double>(pairs) / hw.gpu_sort.sort_rate_pairs_per_s;
      const std::array<sim::Resource*, 2> rsrc = {&cluster_.pcie(node),
                                                  &cluster_.gpu_stream(r)};
      sim::Resource::acquire_multi(rsrc, copy, [this, r, node, kernel, copy](sim::SimTime,
                                                                             sim::SimTime) {
        cluster_.gpu_stream(r).acquire(kernel, [this, r, node, copy](sim::SimTime,
                                                                     sim::SimTime) {
          const std::array<sim::Resource*, 2> back = {&cluster_.pcie(node),
                                                      &cluster_.gpu_stream(r)};
          sim::Resource::acquire_multi(
              back, copy, [this, r](sim::SimTime, sim::SimTime) { sort_done(r); });
        });
      });
    } else {
      const double duration =
          static_cast<double>(pairs) / hw.cpu.sort_rate_pairs_per_s;
      cluster_.cpu(node).acquire(duration,
                                 [this, r](sim::SimTime, sim::SimTime) { sort_done(r); });
    }
  }
}

void Job::sort_done(int /*r*/) {
  if (--sorts_remaining_ == 0) {
    stats_.t_sorted = cluster_.engine().now() - t0_;
    start_reduce_phase();
  }
}

// --- reduce phase ------------------------------------------------------------

void Job::start_reduce_phase() {
  const int num_reducers = static_cast<int>(reducers_.size());
  reduces_remaining_ = num_reducers;
  const auto& hw = cluster_.config().hw;

  for (int r = 0; r < num_reducers; ++r) {
    auto& rs = *reducers_[static_cast<std::size_t>(r)];
    const std::uint64_t pairs = rs.groups.sorted.size();

    // Functional reduce.
    rs.reducer->begin(r);
    const auto& groups = rs.groups;
    for (std::size_t gidx = 0; gidx < groups.num_groups(); ++gidx) {
      const std::uint32_t key = groups.group_keys[gidx];
      const std::uint32_t lo = groups.group_offsets[gidx];
      const std::uint32_t hi = groups.group_offsets[gidx + 1];
      rs.reducer->reduce(key, groups.sorted.value(lo), hi - lo);
    }
    rs.reducer->end();

    if (pairs == 0) {
      reduce_done(r);
      continue;
    }

    const int node = cluster_.node_of_gpu(r);
    if (config_.reduce == ReducePlacement::Cpu) {
      const double duration =
          static_cast<double>(pairs) / hw.cpu.reduce_rate_frags_per_s;
      cluster_.cpu(node).acquire(
          duration, [this, r](sim::SimTime, sim::SimTime) { reduce_done(r); });
    } else {
      // GPU compositing: pairs up, kernel, finished pixels back (the
      // option §3.1.2 weighs and rejects at small scales).
      const std::uint64_t up_bytes = rs.groups.sorted.bytes();
      const std::uint64_t down_bytes = groups.num_groups() * 16;  // RGBA float4
      const double up = hw.pcie.transfer_time(up_bytes);
      const double kernel =
          hw.gpu.kernel_launch_overhead_s +
          static_cast<double>(pairs) / hw.gpu_sort.reduce_rate_frags_per_s;
      const double down = hw.pcie.transfer_time(down_bytes);
      const std::array<sim::Resource*, 2> rsrc = {&cluster_.pcie(node),
                                                  &cluster_.gpu_stream(r)};
      sim::Resource::acquire_multi(
          rsrc, up, [this, r, node, kernel, down](sim::SimTime, sim::SimTime) {
            cluster_.gpu_stream(r).acquire(
                kernel, [this, r, node, down](sim::SimTime, sim::SimTime) {
                  const std::array<sim::Resource*, 2> back = {&cluster_.pcie(node),
                                                              &cluster_.gpu_stream(r)};
                  sim::Resource::acquire_multi(
                      back, down,
                      [this, r](sim::SimTime, sim::SimTime) { reduce_done(r); });
                });
          });
    }
  }
}

void Job::reduce_done(int /*r*/) { --reduces_remaining_; }

}  // namespace vrmr::mr
