#include "mr/job.hpp"

#include "mr/frame_plan.hpp"

namespace vrmr::mr {

const char* to_string(BarrierMode mode) {
  switch (mode) {
    case BarrierMode::Global: return "global";
    case BarrierMode::PerReducer: return "per-reducer";
  }
  return "?";
}

void JobConfig::validate() const {
  VRMR_CHECK_MSG(value_size > 0, "JobConfig.value_size must be set");
  VRMR_CHECK_MSG(domain.num_keys > 0, "JobConfig.domain.num_keys must be set");
  if (partition == PartitionStrategy::Tiled) {
    VRMR_CHECK_MSG(domain.image_width > 0, "Tiled partitioning needs image_width");
  }
}

Job::Job(cluster::Cluster& cluster, JobConfig config)
    : plan_(std::make_unique<FramePlan>(cluster, std::move(config))) {}

Job::~Job() = default;

void Job::set_mapper_factory(MapperFactory factory) {
  plan_->set_mapper_factory(std::move(factory));
}

void Job::set_reducer_factory(ReducerFactory factory) {
  plan_->set_reducer_factory(std::move(factory));
}

void Job::set_combiner_factory(CombinerFactory factory) {
  plan_->set_combiner_factory(std::move(factory));
}

void Job::add_chunk(std::unique_ptr<Chunk> chunk, int gpu) {
  VRMR_CHECK_MSG(!ran_, "cannot add chunks after run()");
  plan_->add_chunk(std::move(chunk), gpu);
}

int Job::num_chunks() const { return plan_->num_chunks(); }

JobStats Job::run() {
  VRMR_CHECK_MSG(!ran_, "Job::run is single-use");
  ran_ = true;
  return plan_->run_to_completion();
}

}  // namespace vrmr::mr
