#pragma once

// Optional combiner (mapper-side partial reduce).
//
// The paper *omitted* this stage: "we specifically omitted partial
// reduce/combine because it didn't increase performance for our volume
// renderer" (§3.1). We implement it anyway so that decision can be
// reproduced quantitatively (bench_ablation_combiner): a combiner only
// pays off when a mapper emits many pairs per key — volume rendering
// with bricks ≈ GPUs emits roughly one fragment per (pixel, mapper), so
// there is nothing to combine, while histogram-style jobs collapse
// thousands of pairs per key and benefit enormously.
//
// Semantics: when a send buffer flushes, its pairs are grouped by key
// (stable counting sort) and each group is passed to the combiner,
// which emits replacement pairs into the outgoing buffer. Combining
// must be a *local* reduction: correct only if the reducer's final
// reduction is insensitive to pre-aggregation of same-mapper values
// (commutative/associative reductions such as sums, maxima, counts —
// or depth-ordered compositing when one mapper's fragments are
// depth-contiguous per pixel).

#include <cstddef>
#include <cstdint>

#include "mr/kv_buffer.hpp"

namespace vrmr::mr {

class Combiner {
 public:
  virtual ~Combiner() = default;

  /// Combine one key group (`count` values, contiguous at `values`)
  /// into zero or more replacement pairs appended to `out`.
  virtual void combine(std::uint32_t key, const std::byte* values, std::size_t count,
                       KvBuffer& out) = 0;
};

}  // namespace vrmr::mr
