#pragma once

// Key-value storage honoring the paper's §3.1.1 restrictions:
//
//   * "Keys are always four-byte integers."
//   * "Emitted values are homogeneous in size" — one fixed value_size
//     per buffer, checked on every append.
//   * "Every GPU thread must emit a key-value pair. If the thread
//     computes a useless key-value pair, the kernel emits a
//     later-discarded place holder" — placeholders are real entries
//     with key == kPlaceholderKey; they occupy GPU memory and PCIe
//     bandwidth (and are charged as such) until the partition phase
//     drops them.
//
// Storage is struct-of-arrays (keys | packed values), which is both the
// GPU-friendly layout the paper describes and what lets the counting
// sort scatter values with one memcpy per pair.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace vrmr::mr {

/// Key marking a discarded placeholder emission (all-ones, never a
/// valid pixel index: the paper's dense key domain starts at 0).
inline constexpr std::uint32_t kPlaceholderKey = 0xFFFFFFFFu;

class KvBuffer {
 public:
  KvBuffer() : value_size_(0) {}
  explicit KvBuffer(std::uint32_t value_size) : value_size_(value_size) {
    VRMR_CHECK_MSG(value_size > 0, "value_size must be positive");
  }

  std::uint32_t value_size() const { return value_size_; }
  std::size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }

  /// Total bytes of keys + values (what H2D/D2H/network transfers cost).
  std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(size()) * (sizeof(std::uint32_t) + value_size_);
  }

  void reserve(std::size_t pairs) {
    keys_.reserve(pairs);
    values_.reserve(pairs * value_size_);
  }

  void clear() {
    keys_.clear();
    values_.clear();
  }

  void append(std::uint32_t key, const void* value) {
    keys_.push_back(key);
    const auto* p = static_cast<const std::byte*>(value);
    values_.insert(values_.end(), p, p + value_size_);
  }

  void append_placeholder() {
    keys_.push_back(kPlaceholderKey);
    values_.insert(values_.end(), value_size_, std::byte{0});
  }

  /// Bulk append of n parallel (key, value) arrays — the device-to-host
  /// readback path after a kernel writes its per-thread output slots.
  void append_bulk(std::span<const std::uint32_t> keys, const void* values) {
    keys_.insert(keys_.end(), keys.begin(), keys.end());
    const auto* p = static_cast<const std::byte*>(values);
    values_.insert(values_.end(), p, p + keys.size() * value_size_);
  }

  /// Concatenate `other` (same value_size required).
  void append_buffer(const KvBuffer& other) {
    if (other.empty()) return;
    VRMR_CHECK_MSG(other.value_size_ == value_size_,
                   "value_size mismatch: " << other.value_size_ << " vs " << value_size_);
    keys_.insert(keys_.end(), other.keys_.begin(), other.keys_.end());
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  }

  std::uint32_t key(std::size_t i) const { return keys_[i]; }
  const std::byte* value(std::size_t i) const { return values_.data() + i * value_size_; }
  std::byte* mutable_value(std::size_t i) { return values_.data() + i * value_size_; }

  std::span<const std::uint32_t> keys() const { return keys_; }
  std::span<const std::byte> values() const { return values_; }

  /// Number of placeholder entries currently held.
  std::size_t placeholder_count() const {
    std::size_t n = 0;
    for (auto k : keys_)
      if (k == kPlaceholderKey) ++n;
    return n;
  }

  // --- typed helpers -----------------------------------------------------

  template <typename V>
  void append_typed(std::uint32_t key_, const V& v) {
    static_assert(std::is_trivially_copyable_v<V>);
    VRMR_DCHECK(sizeof(V) == value_size_);
    append(key_, &v);
  }

  template <typename V>
  const V& value_as(std::size_t i) const {
    static_assert(std::is_trivially_copyable_v<V>);
    VRMR_DCHECK(sizeof(V) == value_size_);
    return *reinterpret_cast<const V*>(value(i));
  }

  /// Typed construction helper for user code.
  template <typename V>
  static KvBuffer for_value_type() {
    static_assert(std::is_trivially_copyable_v<V>);
    return KvBuffer(sizeof(V));
  }

 private:
  std::uint32_t value_size_;
  std::vector<std::uint32_t> keys_;
  std::vector<std::byte> values_;
};

}  // namespace vrmr::mr
