#include "mr/sorter.hpp"

#include <cstring>

#include "util/check.hpp"

namespace vrmr::mr {

const char* to_string(SortPlacement p) {
  switch (p) {
    case SortPlacement::Auto: return "auto";
    case SortPlacement::Cpu: return "cpu";
    case SortPlacement::Gpu: return "gpu";
  }
  return "?";
}

SortedGroups counting_sort(const KvBuffer& input, std::uint32_t key_lo,
                           std::uint32_t key_hi) {
  VRMR_CHECK_MSG(key_hi > key_lo, "empty key range");
  const std::size_t n = input.size();
  const std::size_t k = key_hi - key_lo;

  SortedGroups out;
  out.sorted = KvBuffer(input.value_size());
  if (n == 0) return out;

  // Histogram.
  std::vector<std::uint32_t> counts(k, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t key = input.key(i);
    VRMR_CHECK_MSG(key != kPlaceholderKey, "placeholder reached sort at index " << i);
    VRMR_CHECK_MSG(key >= key_lo && key < key_hi,
                   "key " << key << " outside [" << key_lo << ", " << key_hi << ")");
    ++counts[key - key_lo];
  }

  // Exclusive prefix sum -> scatter positions; also build the group
  // index over non-empty keys.
  std::vector<std::uint32_t> positions(k);
  std::uint32_t running = 0;
  for (std::size_t c = 0; c < k; ++c) {
    positions[c] = running;
    if (counts[c] > 0) {
      out.group_keys.push_back(key_lo + static_cast<std::uint32_t>(c));
      out.group_offsets.push_back(running);
    }
    running += counts[c];
  }
  out.group_offsets.push_back(running);

  // Stable scatter.
  const std::uint32_t vs = input.value_size();
  std::vector<std::uint32_t> sorted_keys(n);
  std::vector<std::byte> sorted_values(n * vs);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t c = input.key(i) - key_lo;
    const std::uint32_t pos = positions[c]++;
    sorted_keys[pos] = input.key(i);
    std::memcpy(sorted_values.data() + static_cast<std::size_t>(pos) * vs,
                input.value(i), vs);
  }

  out.sorted.append_bulk(sorted_keys, sorted_values.data());
  return out;
}

}  // namespace vrmr::mr
