#pragma once

// Partitioning of the dense key domain across reducer processes.
//
// The paper (§3.1.1) uses per-pixel round-robin — "a modulo is
// sufficient to determine the reducer to which a key-value pair must be
// sent" — and reports it as empirically the highest-performing
// distribution. We implement it plus the two alternatives the paper
// weighed for direct-send compositing (§6: "checkerboard, tiled, or
// striped distribution") so the ablation bench can compare them.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace vrmr::mr {

enum class PartitionStrategy {
  PixelRoundRobin,  // owner = key % R                   (paper's choice)
  Striped,          // contiguous key ranges (scanline bands)
  Tiled,            // 2-D screen tiles dealt round-robin
};

const char* to_string(PartitionStrategy s);

/// Facts about the key domain the partitioner may exploit. Keys are
/// pixel indices y*width + x (§3.1.2), dense in [0, num_keys).
struct PartitionDomain {
  std::uint32_t num_keys = 0;
  std::uint32_t image_width = 0;   // 0 when keys are not pixels
  std::uint32_t tile_size = 32;    // Tiled strategy tile edge
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  explicit Partitioner(int num_partitions) : num_partitions_(num_partitions) {
    VRMR_CHECK(num_partitions >= 1);
  }

  int num_partitions() const { return num_partitions_; }

  /// Which reducer owns `key`. Must be pure and total on the domain.
  virtual int owner(std::uint32_t key) const = 0;

  /// Conservative owner set of the pixel rect [x0,x1)×[y0,y1): set
  /// mask[r] = 1 for every reducer that MAY own a key in the rect (a
  /// superset is fine; missing an actual owner is not). The base class
  /// answers "all reducers", always safe. FramePlan uses this with
  /// per-chunk screen footprints to finalize (mapper, reducer) pairs
  /// early — see FramePlan::set_chunk_footprint.
  virtual void owners_in_rect(int x0, int y0, int x1, int y1,
                              std::vector<std::uint8_t>& mask) const {
    (void)x0; (void)y0; (void)x1; (void)y1;
    mask.assign(static_cast<std::size_t>(num_partitions_), 1);
  }

 private:
  int num_partitions_;
};

std::unique_ptr<Partitioner> make_partitioner(PartitionStrategy strategy,
                                              const PartitionDomain& domain,
                                              int num_partitions);

}  // namespace vrmr::mr
