#pragma once

// "Speed-of-light" analysis (paper §6.3): the theoretical floor for each
// pipeline activity assuming perfect overlap and zero contention, used
// to show "that we come very close to achieving those" peaks. Disk time
// is reported separately and excluded from the bound, exactly as the
// paper excludes disk from its speed-of-light calculations.

#include "cluster/cluster.hpp"
#include "mr/stats.hpp"

namespace vrmr::mr {

struct SpeedOfLight {
  double map_compute_s = 0.0;  // samples / aggregate GPU sample rate
  double h2d_s = 0.0;          // staged bytes / aggregate PCIe bandwidth
  double d2h_s = 0.0;          // emitted bytes / aggregate PCIe bandwidth
  double net_s = 0.0;          // inter-node bytes / aggregate NIC bandwidth
  double sort_s = 0.0;         // pairs / aggregate CPU sort rate
  double reduce_s = 0.0;       // fragments / aggregate CPU reduce rate
  double disk_s = 0.0;         // informational, excluded from bounds

  /// Lower bound with perfect overlap: the slowest single activity.
  double pipelined_bound_s = 0.0;
  /// Lower bound with zero overlap: the serial sum.
  double serial_bound_s = 0.0;

  /// achieved / bound efficiency in (0, 1]; closeness to 1 is the
  /// paper's "computation is no longer the limiting factor" argument.
  double efficiency(double achieved_s) const {
    return achieved_s > 0.0 ? pipelined_bound_s / achieved_s : 0.0;
  }
};

SpeedOfLight speed_of_light(const JobStats& stats, const cluster::ClusterConfig& config);

}  // namespace vrmr::mr
