#pragma once

// Deterministic fault injection for the shard farm.
//
// A FaultPlan is a seeded, simulated-time-scheduled list of fault
// events. Faults fire at simulated engine times (never wall clock), and
// random plans draw from the seeded util/rng generators only — so every
// test and bench that installs the same plan replays bit-identically,
// fault for fault. The plan itself is passive data; each byte-moving
// layer consumes the events addressed to it:
//
//   DiskReadError -> RenderService staging (mr::JobConfig::fault_hook)
//   FabricDrop    -> net::Fabric::set_fault_injector (reliable sends retry)
//   FabricDelay   -> net::Fabric::set_fault_injector (extra wire latency)
//   LaneStall     -> cluster gpu stream occupied for param_s
//   LaneDeath     -> lane blacklisted, pending quanta redistributed
//   ShardCrash    -> RenderService stops serving; frontend fails over
//
// See src/fault/README.md for the taxonomy, the determinism contract,
// and the replay recipe.

#include <cstdint>
#include <string>
#include <vector>

namespace vrmr::fault {

enum class FaultKind {
  DiskReadError,  // one staging read fails; the quantum is retried
  FabricDrop,     // one fabric message is lost in flight
  FabricDelay,    // one fabric message arrives param_s late
  LaneStall,      // a GPU stream is wedged for param_s
  LaneDeath,      // a GPU lane fail-stops; survivors absorb its work
  ShardCrash,     // a whole shard stops serving mid-drain
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::DiskReadError;
  /// Simulated time on the target shard's engine at/after which the
  /// fault fires (exact for scheduled faults; "next matching operation
  /// at or after" for operation-attached faults like DiskReadError).
  double time_s = 0.0;
  int shard = 0;    // owning shard (0 when driving a bare RenderService)
  int target = -1;  // gpu or node index within the shard; -1 = any
  /// Stall duration / extra delivery delay / failure detection latency,
  /// per kind. 0 lets the consumer pick its default.
  double param_s = 0.0;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t seed() const { return seed_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Appends an explicit event. Chainable.
  FaultPlan& add(FaultEvent event);

  /// Appends `count` seeded events of `kind`: times uniform in
  /// [t0_s, t1_s), shard uniform in [0, num_shards), target uniform in
  /// [0, num_targets) (or -1 when num_targets <= 0). Deterministic in
  /// (seed, sequence of add_random calls) — wall clock never enters.
  FaultPlan& add_random(FaultKind kind, int count, double t0_s, double t1_s,
                        int num_shards, int num_targets, double param_s = 0.0);

  /// All events, sorted by (time_s, insertion order).
  std::vector<FaultEvent> events() const;
  /// Events addressed to one shard, same order.
  std::vector<FaultEvent> events_for(int shard) const;
  std::vector<FaultEvent> events_for(int shard, FaultKind kind) const;

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t draw_streams_ = 0;  // rng stream per add_random call
  std::vector<FaultEvent> events_;  // insertion order
};

}  // namespace vrmr::fault
