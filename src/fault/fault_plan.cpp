#include "fault/fault_plan.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace vrmr::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::DiskReadError: return "disk_read_error";
    case FaultKind::FabricDrop: return "fabric_drop";
    case FaultKind::FabricDelay: return "fabric_delay";
    case FaultKind::LaneStall: return "lane_stall";
    case FaultKind::LaneDeath: return "lane_death";
    case FaultKind::ShardCrash: return "shard_crash";
  }
  return "unknown";
}

FaultPlan& FaultPlan::add(FaultEvent event) {
  VRMR_CHECK_MSG(event.time_s >= 0.0, "fault time must be non-negative");
  VRMR_CHECK_MSG(event.shard >= 0, "fault shard must be non-negative");
  events_.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::add_random(FaultKind kind, int count, double t0_s,
                                 double t1_s, int num_shards, int num_targets,
                                 double param_s) {
  VRMR_CHECK(count >= 0);
  VRMR_CHECK(t1_s >= t0_s && t0_s >= 0.0);
  VRMR_CHECK(num_shards >= 1);
  // One PCG stream per add_random call: inserting a call never perturbs
  // the draws of earlier calls, and replays are exact for a given call
  // sequence.
  Pcg32 rng(seed_, draw_streams_++);
  for (int i = 0; i < count; ++i) {
    FaultEvent e;
    e.kind = kind;
    e.time_s = t0_s + rng.next_double() * (t1_s - t0_s);
    e.shard = static_cast<int>(rng.next_below(static_cast<std::uint32_t>(num_shards)));
    e.target = num_targets <= 0
                   ? -1
                   : static_cast<int>(
                         rng.next_below(static_cast<std::uint32_t>(num_targets)));
    e.param_s = param_s;
    events_.push_back(e);
  }
  return *this;
}

std::vector<FaultEvent> FaultPlan::events() const {
  std::vector<FaultEvent> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time_s < b.time_s;
                   });
  return sorted;
}

std::vector<FaultEvent> FaultPlan::events_for(int shard) const {
  std::vector<FaultEvent> out;
  for (const FaultEvent& e : events()) {
    if (e.shard == shard) out.push_back(e);
  }
  return out;
}

std::vector<FaultEvent> FaultPlan::events_for(int shard, FaultKind kind) const {
  std::vector<FaultEvent> out;
  for (const FaultEvent& e : events()) {
    if (e.shard == shard && e.kind == kind) out.push_back(e);
  }
  return out;
}

}  // namespace vrmr::fault
