#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file exported by obs::TraceRecorder.

Checks (stdlib only, no third-party deps):
  * the file parses as JSON with a `traceEvents` array (or is a bare array);
  * every event has a numeric `ts`, integer `pid`/`tid`, and a string `ph`;
  * duration events: every E closes a B on the same (pid, tid) track, and
    timestamps are non-decreasing per track (the recorder runs on one
    simulated clock per process);
  * async events: every e closes a b with the same (cat, id), none left open;
  * metadata events (ph=M) carry the name they claim to set;
  * optional --require PREFIX[:MIN] flags assert at least MIN (default 1)
    events whose name starts with PREFIX exist (e.g. --require preempt,
    --require retry.:2 — CI gates fault benches on fault./retry./failover.
    events actually reaching the export).

Exit code 0 on success, 1 on any violation (each violation is printed).

Usage:
  python3 tools/validate_trace.py trace.json [--require PREFIX[:MIN]]...
"""

import argparse
import json
import sys


def load_events(path):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if isinstance(doc, list):
        return doc
    if isinstance(doc, dict) and isinstance(doc.get("traceEvents"), list):
        return doc["traceEvents"]
    raise ValueError("expected a JSON array or an object with 'traceEvents'")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="path to the trace-event JSON file")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="PREFIX[:MIN]",
        help="assert at least MIN (default 1) events whose name starts "
        "with PREFIX",
    )
    args = parser.parse_args()

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"FAIL: cannot load {args.trace}: {err}")
        return 1

    errors = []
    open_spans = {}  # (pid, tid) -> list of begin names (stack)
    last_ts = {}  # (pid, tid) -> last timestamp seen on the track
    open_async = {}  # (cat, id) -> count of unmatched b events
    name_counts = {}  # event name -> occurrences (metadata excluded)

    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            errors.append(f"{where}: missing phase 'ph'")
            continue
        pid, tid, ts = event.get("pid"), event.get("tid"), event.get("ts")
        if not isinstance(pid, int) or not isinstance(tid, int):
            errors.append(f"{where} (ph={ph}): pid/tid must be integers")
            continue
        if ph != "M" and not isinstance(ts, (int, float)):
            errors.append(f"{where} (ph={ph}): missing numeric 'ts'")
            continue
        name = event.get("name")
        if ph in ("B", "i", "b", "e", "M") and not isinstance(name, str):
            errors.append(f"{where} (ph={ph}): missing string 'name'")
            continue
        if isinstance(name, str) and ph != "M":
            name_counts[name] = name_counts.get(name, 0) + 1

        track = (pid, tid)
        if ph in ("B", "E", "i", "X"):
            if track in last_ts and ts < last_ts[track]:
                errors.append(
                    f"{where} ({name}): ts {ts} goes backwards on track "
                    f"pid={pid} tid={tid} (last {last_ts[track]})"
                )
            last_ts[track] = ts

        if ph == "B":
            open_spans.setdefault(track, []).append(name)
        elif ph == "E":
            stack = open_spans.get(track)
            if not stack:
                errors.append(
                    f"{where}: E with no open B on track pid={pid} tid={tid}"
                )
            else:
                stack.pop()
        elif ph in ("b", "e"):
            cat = event.get("cat")
            async_id = event.get("id")
            if not isinstance(cat, str) or async_id is None:
                errors.append(f"{where} ({name}, ph={ph}): needs 'cat' and 'id'")
                continue
            key = (cat, str(async_id))
            if ph == "b":
                open_async[key] = open_async.get(key, 0) + 1
            else:
                if open_async.get(key, 0) <= 0:
                    errors.append(
                        f"{where} ({name}): async end with no open begin for "
                        f"cat={cat} id={async_id}"
                    )
                else:
                    open_async[key] -= 1

    for (pid, tid), stack in open_spans.items():
        for name in stack:
            errors.append(f"unclosed span '{name}' on track pid={pid} tid={tid}")
    for (cat, async_id), count in open_async.items():
        if count > 0:
            errors.append(
                f"{count} unclosed async event(s) for cat={cat} id={async_id}"
            )

    for requirement in args.require:
        prefix, _, min_text = requirement.rpartition(":")
        if prefix and min_text.isdigit():
            minimum = int(min_text)
        else:
            prefix, minimum = requirement, 1
        found = sum(
            count
            for name, count in name_counts.items()
            if name.startswith(prefix)
        )
        if found < minimum:
            errors.append(
                f"required event prefix '{prefix}': found {found}, "
                f"need >= {minimum}"
            )

    if errors:
        for error in errors:
            print(f"FAIL: {error}")
        print(f"{len(errors)} violation(s) in {len(events)} events")
        return 1
    print(f"OK: {len(events)} events, all tracks balanced")
    return 0


if __name__ == "__main__":
    sys.exit(main())
