// Fault-tolerant shard farm A/B: a seeded FaultPlan crashes one of two
// shards mid-drain, and the farm must deliver EVERY accepted frame with
// pixels bit-identical to the fault-free run — faults cost time, never
// frames and never values.
//
// Scenario. A batch orbit is pinned to shard 0 (the victim). The plan
// injects a disk read error at t=0 (the first quantum fails, is
// detected after the timeout, and retries), a brief lane stall, and a
// ShardCrash between the middle frames' fault-free delivery times —
// half the orbit is already delivered, half is the crash snapshot
// (the first frame absorbs the cold disk reads, so a makespan
// fraction would land inside it). drain() meets the dead
// shard, fails it over: the session re-pins to shard 1, the crash
// snapshot's undelivered frames re-issue there in order, and — with
// failover_prepush on — the crashed cache's warm bricks are pre-pushed
// over the inter-shard fabric first (send_reliable: the plan's
// FabricDrop on shard 1 forces one retransmit on the way). The orbit is
// served out-of-core, so the A/B is real bytes: warm handoff renders
// the re-issued frames against pushed bricks, the cold baseline
// (failover_prepush off) re-reads every brick from disk at 5 ms seek.
//
// Acceptance (exit code gates Release CI): zero frames lost in both
// failover modes, every delivered image bit-identical to the fault-free
// orbit, and warm-failover time-to-first-pixel of the first re-issued
// frame strictly beats the cold disk re-read.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common.hpp"
#include "fault/fault_plan.hpp"
#include "service/frontend.hpp"
#include "util/check.hpp"

using namespace vrmr;

namespace {

Int3 orbit_dims() { return bench::fast_mode() ? Int3{24, 24, 24} : Int3{32, 32, 32}; }
int orbit_frames() { return bench::fast_mode() ? 4 : 6; }

volren::RenderOptions orbit_options(int gpus) {
  volren::RenderOptions options;
  options.image_width = bench::image_size();
  options.image_height = bench::image_size();
  options.cast.decimation = bench::decimation_for(orbit_dims());
  options.distance = 1.1f;
  options.elevation = 0.25f;
  options.target_bricks = 4 * gpus;
  // Out-of-core serving: a cold re-issued frame pays the disk per
  // brick, which is exactly what the warm handoff is supposed to beat.
  options.include_disk_io = true;
  return options;
}

struct FarmRun {
  std::vector<service::FrameRecord> records;  // delivery order
  service::FrontendStats stats;
  std::uint64_t quanta_retried = 0;  // summed over shards
  std::uint64_t faults_injected = 0;
  /// First-tile time of the first RE-ISSUED frame on the failover
  /// shard's timeline (that shard is idle until failover, so this is
  /// the time from failover start to its first recovered pixel).
  double ttfp_reissued_s = 0.0;
};

FarmRun run_farm(const volren::Volume& volume, const fault::FaultPlan* plan,
                 bool prepush, bool attach_trace) {
  service::FrontendConfig config;
  config.shards = 2;
  config.gpus_per_shard = 2;
  config.service.keep_images = true;
  config.failover_prepush = prepush;
  service::ServiceFrontend frontend(config);
  if (attach_trace) {
    if (obs::TraceRecorder* recorder = bench::trace_recorder()) {
      frontend.set_trace(recorder, /*pid_base=*/0);
      recorder->set_process_name(0, "shard 0 (victim)");
      recorder->set_process_name(1, "shard 1 (survivor)");
    }
  }

  service::SessionProfile profile;
  profile.name = "victim-orbit";
  profile.pin_shard = 0;
  service::Session session = frontend.open_session(profile);

  FarmRun run;
  session.on_frame(
      [&run](const service::FrameRecord& frame) { run.records.push_back(frame); });
  session.submit_orbit(volume, orbit_options(config.gpus_per_shard),
                       orbit_frames(), 0.0, 0.0);
  if (plan != nullptr) frontend.install_fault_plan(*plan);
  frontend.drain();

  run.stats = frontend.stats();
  for (const service::ShardStats& shard : run.stats.shards) {
    run.quanta_retried += shard.service.quanta_retried;
    run.faults_injected += shard.service.faults_injected;
  }
  const std::size_t reissued =
      static_cast<std::size_t>(run.stats.frames_reissued);
  if (reissued > 0 && reissued <= run.records.size()) {
    // Deliveries are ordered: the shard-0 frames first, then the
    // re-issued tail on shard 1 (whose clock starts at failover).
    run.ttfp_reissued_s =
        run.records[run.records.size() - reissued].first_tile_s;
  }
  return run;
}

/// Every delivered image bit-identical to the clean run's, by delivery
/// index (frame ids change across re-issue; delivery order does not).
bool images_match(const FarmRun& clean, const FarmRun& faulted) {
  if (clean.records.size() != faulted.records.size()) return false;
  for (std::size_t i = 0; i < clean.records.size(); ++i) {
    if (volren::compare_images(clean.records[i].image,
                               faulted.records[i].image)
            .max_abs != 0.0)
      return false;
  }
  return true;
}

}  // namespace

int main() {
  bench::print_header("bench_fault_tolerance",
                      "seeded shard crash mid-drain: zero lost frames, "
                      "bit-identical pixels, warm failover vs cold re-read");

  const volren::Volume volume = volren::datasets::skull(orbit_dims());
  const int kFrames = orbit_frames();

  // Fault-free baseline: the images every fault run must reproduce and
  // the makespan that anchors the crash time.
  const FarmRun clean = run_farm(volume, nullptr, /*prepush=*/true,
                                 /*attach_trace=*/false);
  VRMR_CHECK_MSG(static_cast<int>(clean.records.size()) == kFrames,
                 "fault-free run lost frames");
  VRMR_CHECK_MSG(kFrames >= 4, "need frames on both sides of the crash");
  // Mid-drain, anchored to deliveries: halfway between the two middle
  // frames' finish times, so the faulted replay — shifted a little by
  // the retry and the stall — still has frames on both sides.
  const double crash_t = 0.5 * (clean.records[kFrames / 2 - 1].finish_s +
                                clean.records[kFrames / 2].finish_s);

  // The seeded plan, replayed identically by both failover modes: a
  // disk error and a lane stall on the victim first (retry + stall
  // coverage), then the mid-drain crash. The FabricDrop on shard 1
  // swallows the first inbound pre-push, forcing a retransmit.
  fault::FaultPlan plan(0x5EED);
  plan.add({fault::FaultKind::DiskReadError, 0.0, 0, -1})
      .add({fault::FaultKind::LaneStall, 0.0, 0, 1, 2e-4})
      .add({fault::FaultKind::ShardCrash, crash_t, 0, -1})
      .add({fault::FaultKind::FabricDrop, 0.0, 1, -1});

  const FarmRun warm = run_farm(volume, &plan, /*prepush=*/true,
                                /*attach_trace=*/true);
  const FarmRun cold = run_farm(volume, &plan, /*prepush=*/false,
                                /*attach_trace=*/false);

  const bool zero_lost = static_cast<int>(warm.records.size()) == kFrames &&
                         static_cast<int>(cold.records.size()) == kFrames;
  const bool pixels_identical =
      images_match(clean, warm) && images_match(clean, cold);
  const bool failed_over =
      warm.stats.failovers == 1 && warm.stats.sessions_repinned == 1 &&
      warm.stats.frames_reissued > 0 &&
      warm.stats.frames_reissued < static_cast<std::uint64_t>(kFrames) &&
      cold.stats.frames_reissued == warm.stats.frames_reissued;
  const bool handoff_warm =
      warm.stats.bricks_prepushed > 0 && cold.stats.bricks_prepushed == 0;
  const bool retried = warm.quanta_retried >= 1 && warm.faults_injected >= 3;
  const double ttfp_ratio =
      warm.ttfp_reissued_s > 0.0
          ? cold.ttfp_reissued_s / warm.ttfp_reissued_s
          : std::numeric_limits<double>::infinity();

  const bool gate_met = zero_lost && pixels_identical && failed_over &&
                        handoff_warm && retried && ttfp_ratio > 1.0;

  Table table({"scenario", "frames", "makespan_s", "reissued", "prepushed",
               "ttfp_reissued_s"});
  const auto row = [&table](const char* name, const FarmRun& run) {
    table.add_row({name, std::to_string(run.records.size()),
                   Table::num(run.stats.makespan_s, 4),
                   std::to_string(run.stats.frames_reissued),
                   std::to_string(run.stats.bricks_prepushed),
                   run.ttfp_reissued_s > 0.0
                       ? Table::num(run.ttfp_reissued_s, 4)
                       : std::string("-")});
  };
  row("fault-free", clean);
  row("crash + warm failover", warm);
  row("crash + cold failover", cold);
  std::cout << table.to_string() << "\n"
            << "crash at " << Table::num(crash_t, 4) << " s ("
            << warm.stats.frames_reissued << "/" << kFrames
            << " frames re-issued); first recovered pixel: warm "
            << Table::num(warm.ttfp_reissued_s, 4) << " s vs cold "
            << Table::num(cold.ttfp_reissued_s, 4) << " s ("
            << Table::num(ttfp_ratio, 2) << "x, "
            << warm.stats.bricks_prepushed << " bricks / "
            << warm.stats.bytes_prepushed << " B pre-pushed); pixels "
            << (pixels_identical ? "identical" : "DIFFER") << ", "
            << warm.quanta_retried << " quantum retr"
            << (warm.quanta_retried == 1 ? "y" : "ies") << "\n"
            << (gate_met
                    ? "acceptance: zero frames lost, bit-identical pixels, "
                      "warm failover beats the cold disk re-read\n"
                    : "ACCEPTANCE MISSED: frames lost, pixels differ, or "
                      "warm failover no faster than cold re-read\n");
  bench::maybe_print_csv("fault", table);
  bench::write_gate_summary(
      "fault", ttfp_ratio, 1.0, gate_met,
      {{"frames_expected", static_cast<double>(kFrames)},
       {"frames_delivered_warm", static_cast<double>(warm.records.size())},
       {"frames_delivered_cold", static_cast<double>(cold.records.size())},
       {"frames_reissued", static_cast<double>(warm.stats.frames_reissued)},
       {"crash_time_s", crash_t},
       {"makespan_clean_s", clean.stats.makespan_s},
       {"makespan_warm_s", warm.stats.makespan_s},
       {"makespan_cold_s", cold.stats.makespan_s},
       {"ttfp_warm_s", warm.ttfp_reissued_s},
       {"ttfp_cold_s", cold.ttfp_reissued_s},
       {"ttfp_ratio", ttfp_ratio},
       {"bricks_prepushed", static_cast<double>(warm.stats.bricks_prepushed)},
       {"bytes_prepushed", static_cast<double>(warm.stats.bytes_prepushed)},
       {"quanta_retried", static_cast<double>(warm.quanta_retried)},
       {"faults_injected", static_cast<double>(warm.faults_injected)},
       {"pixels_identical", pixels_identical ? 1.0 : 0.0}});
  bench::write_trace();
  return gate_met ? 0 : 1;
}
