// §1/§6.2: "our library ... still allows for out-of-core algorithms
// (including rendering)" and "only a minimal number of GPUs is required
// to efficiently render a volume out of core" (§7). We sweep GPU count
// for a volume whose bricks stream from disk, and contrast with the
// in-core run: the disk cost dominates but the pipeline still completes
// and still scales while mappers overlap reads with ray casting.

#include "common.hpp"

int main() {
  using namespace vrmr;
  using namespace vrmr::bench;

  print_header("bench_out_of_core", "§6.2 out-of-core rendering");

  const Int3 dims{512, 512, 512};
  Table table({"gpus", "in-core_s", "out-of-core_s", "disk_s (busy)", "disk bytes",
               "slowdown"});
  for (const int gpus : {1, 2, 4, 8}) {
    volren::RenderOptions base;
    base.target_bricks = std::max(8, gpus);  // stream several bricks per GPU

    const volren::RenderResult in_core = run_point({"skull", dims, gpus}, base);
    volren::RenderOptions ooc = base;
    ooc.include_disk_io = true;
    const volren::RenderResult out_core = run_point({"skull", dims, gpus}, ooc);

    table.add_row({std::to_string(gpus), Table::num(in_core.stats.runtime_s, 3),
                   Table::num(out_core.stats.runtime_s, 3),
                   Table::num(out_core.stats.disk_busy_s, 3),
                   format_bytes(out_core.stats.bytes_disk),
                   Table::num(out_core.stats.runtime_s / in_core.stats.runtime_s, 2) + "x"});
  }
  std::cout << table.to_string() << "\n"
            << "expected: out-of-core frames are disk-bound (the paper's §6.2\n"
            << "thrashing discussion) yet complete correctly at every GPU count;\n"
            << "per-node disks mean more nodes also buy read bandwidth.\n";
  return 0;
}
