// Ablation for §3.1.1's design decision: "Partitioning is done in a
// per-pixel round-robin fashion. This is, empirically, the
// highest-performing method." We sweep the three distributions the
// paper weighed (round-robin / striped / tiled) and report both runtime
// and the load-balance spread across reducers that explains it:
// round-robin deals every pixel run evenly, striped and tiled leave
// whole reducers idle when the volume's footprint misses their bands.

#include "common.hpp"

int main() {
  using namespace vrmr;
  using namespace vrmr::bench;

  print_header("bench_ablation_partition",
               "§3.1.1 partition-strategy decision (round-robin wins)");

  const std::vector<std::pair<std::string, mr::PartitionStrategy>> strategies = {
      {"round-robin", mr::PartitionStrategy::PixelRoundRobin},
      {"striped", mr::PartitionStrategy::Striped},
      {"tiled", mr::PartitionStrategy::Tiled},
  };

  for (const Int3 dims : {Int3{256, 256, 256}, Int3{512, 512, 512}}) {
    Table table({"strategy", "gpus", "total_s", "sort+reduce_s", "max/mean reducer load",
                 "idle reducers"});
    for (const auto& [name, strategy] : strategies) {
      for (const int gpus : {8, 16}) {
        volren::RenderOptions options;
        options.partition = strategy;
        const volren::RenderResult r = run_point({"skull", dims, gpus}, options);

        // Load balance across reducers.
        std::uint64_t max_load = 0, total_load = 0;
        int idle = 0;
        for (const auto& red : r.stats.per_reducer) {
          max_load = std::max(max_load, red.pairs_in);
          total_load += red.pairs_in;
          if (red.pairs_in == 0) ++idle;
        }
        const double mean_load =
            static_cast<double>(total_load) / std::max<size_t>(1, r.stats.per_reducer.size());
        table.add_row({name, std::to_string(gpus), Table::num(r.stats.runtime_s, 4),
                       Table::num(r.stats.stage.sort_s + r.stats.stage.reduce_s, 4),
                       Table::num(static_cast<double>(max_load) / std::max(1.0, mean_load), 2),
                       std::to_string(idle)});
      }
    }
    std::cout << dims_label(dims) << ":\n" << table.to_string() << "\n";
  }
  std::cout
      << "expected: round-robin's max/mean stays ~1.0 (perfect balance, the paper's\n"
      << "stated reason for choosing it); striped/tiled leave reducers idle and skew\n"
      << "sort+reduce onto a subset.\n"
      << "\n"
      << "deviation (see EXPERIMENTS.md): on *total* time our fabric model can favor\n"
      << "the sparse strategies at high GPU counts — they simply post fewer\n"
      << "(mapper, reducer) messages, and the calibrated per-message software cost\n"
      << "dominates at these fragment volumes. The paper's measured round-robin\n"
      << "advantage came from load balance on its real 2010 MPI stack, an effect\n"
      << "that outweighs message count only when fragment volume is much larger\n"
      << "than the bricks≈GPUs configurations produce. At the paper's 8-GPU sweet\n"
      << "spot the three strategies agree to ~15% here, with round-robin's balance\n"
      << "metrics exactly as the paper describes.\n";
  return 0;
}
