// Elastic shard farm A/B: a deliberately skewed workload — every orbit
// session pinned to shard 0, shard 1 idle — served once with static
// placement and once with the steady-state rebalancer migrating
// sessions at horizon frame boundaries. Live migration must be free of
// the classic costs: zero frames lost, every migrated session's pixels
// bit-identical to the unmigrated run, and the farm's aggregate fps at
// least 1.4x the static pinning (an idle sibling is capacity the
// control plane must be able to reach).
//
// Two side scenarios ride along. (1) Warm handoff: a session whose
// bricks are resident on the source migrates mid-stream; with
// HandoffConfig::migration_prepush the source cache is pre-pushed over
// the fabric and the first post-move frame's first pixel must beat the
// cold re-read (the orbit is served out-of-core, so the cold target
// pays the disk per brick). (2) Elasticity: a one-shard farm under a
// burst backlog autoscales up to a second shard, the rebalancer fills
// it, and the farm scales back down when the burst drains — emitting
// the scale.up / scale.down trace events CI validates.
//
// Acceptance (exit code gates Release CI): rebalanced fps >= 1.4x
// static, zero frames lost anywhere, migrated pixels bit-identical,
// warm-handoff first post-move pixel strictly beats the cold re-read,
// and the autoscale run both grows and shrinks the farm.

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common.hpp"
#include "service/frontend.hpp"
#include "util/check.hpp"

using namespace vrmr;

namespace {

Int3 orbit_dims() { return bench::fast_mode() ? Int3{24, 24, 24} : Int3{32, 32, 32}; }
int orbit_frames() { return bench::fast_mode() ? 3 : 5; }
int orbit_sessions() { return 4; }

volren::RenderOptions orbit_options(int gpus) {
  volren::RenderOptions options;
  options.image_width = bench::image_size();
  options.image_height = bench::image_size();
  options.cast.decimation = bench::decimation_for(orbit_dims());
  options.distance = 1.1f;
  options.elevation = 0.25f;
  options.target_bricks = 4 * gpus;
  // Out-of-core serving: a migrated session on a cold target pays the
  // disk per brick, which is exactly what the warm handoff must beat.
  options.include_disk_io = true;
  return options;
}

struct FarmRun {
  /// Delivery order per frontend session index.
  std::map<int, std::vector<service::FrameRecord>> records;
  service::FrontendStats stats;
  int delivered = 0;
};

/// The skewed-farm scenario: `orbit_sessions()` batch orbits all pinned
/// to shard 0 of a two-shard farm, rebalancer on or off.
FarmRun run_skewed(const volren::Volume& volume, bool rebalance,
                   double period_s, int trace_pid_base) {
  service::FrontendConfig config;
  config.shards = 2;
  config.gpus_per_shard = 2;
  config.service.keep_images = true;
  config.rebalance.enabled = rebalance;
  config.rebalance.period_s = period_s;
  config.rebalance.skew_ratio = 1.5;
  config.rebalance.max_moves_per_pass = 2;
  service::ServiceFrontend frontend(config);
  obs::TraceRecorder* recorder =
      trace_pid_base >= 0 ? bench::trace_recorder() : nullptr;
  if (recorder != nullptr) {
    frontend.set_trace(recorder, trace_pid_base);
    recorder->set_process_name(trace_pid_base, "rebalance: shard 0 (hot)");
    recorder->set_process_name(trace_pid_base + 1, "rebalance: shard 1");
  }

  FarmRun run;
  std::vector<service::Session> sessions;
  for (int i = 0; i < orbit_sessions(); ++i) {
    service::SessionProfile profile;
    profile.name = "orbit-" + std::to_string(i);
    profile.pin_shard = 0;  // the skew: everyone dogpiles shard 0
    service::Session s = frontend.open_session(profile);
    s.on_frame([&run, i](const service::FrameRecord& frame) {
      run.records[i].push_back(frame);
      ++run.delivered;
    });
    s.submit_orbit(volume, orbit_options(config.gpus_per_shard),
                   orbit_frames(), 0.0, 0.0);
    sessions.push_back(s);
  }
  frontend.drain();
  run.stats = frontend.stats();
  return run;
}

struct HandoffRun {
  std::vector<service::FrameRecord> records;
  service::FrontendStats stats;
  /// First-pixel time of the first POST-MOVE frame on the target's
  /// timeline (idle until the migration lands there).
  double ttfp_moved_s = 0.0;
};

/// The warm-handoff scenario: one frame renders on shard 0 (warming its
/// cache), then the rest of the orbit migrates to idle shard 1 — with
/// or without the migration pre-push.
HandoffRun run_handoff(const volren::Volume& volume, bool prepush,
                       bool migrate, int trace_pid_base) {
  service::FrontendConfig config;
  config.shards = 2;
  config.gpus_per_shard = 2;
  config.service.keep_images = true;
  config.handoff.migration_prepush = prepush;
  service::ServiceFrontend frontend(config);
  obs::TraceRecorder* recorder =
      trace_pid_base >= 0 ? bench::trace_recorder() : nullptr;
  if (recorder != nullptr) {
    frontend.set_trace(recorder, trace_pid_base);
    recorder->set_process_name(trace_pid_base, "handoff: shard 0 (source)");
    recorder->set_process_name(trace_pid_base + 1, "handoff: shard 1 (target)");
  }

  HandoffRun run;
  service::SessionProfile profile;
  profile.name = "mover";
  profile.pin_shard = 0;
  service::Session s = frontend.open_session(profile);
  s.on_frame([&run](const service::FrameRecord& frame) {
    run.records.push_back(frame);
  });
  const volren::RenderOptions options = orbit_options(config.gpus_per_shard);
  // Phase 1: one frame warms the source.
  service::RenderRequest first;
  first.volume = &volume;
  first.options = options;
  s.submit(first);
  frontend.drain();
  // Phase 2: the rest of the orbit queues, then moves live.
  s.submit_orbit(volume, options, orbit_frames(), 0.0, 0.0);
  if (migrate) frontend.migrate_session(s, 1);
  frontend.drain();
  run.stats = frontend.stats();
  if (run.records.size() > 1) run.ttfp_moved_s = run.records[1].first_tile_s;
  return run;
}

/// The elasticity scenario: a one-shard farm under a burst backlog,
/// autoscale capacity for two shards.
FarmRun run_autoscale(const volren::Volume& volume, double period_s,
                      int trace_pid_base) {
  service::FrontendConfig config;
  config.shards = 1;
  config.gpus_per_shard = 2;
  config.service.keep_images = true;
  config.rebalance.enabled = true;  // fills the capacity autoscale adds
  config.rebalance.period_s = period_s;
  config.rebalance.skew_ratio = 1.5;
  config.rebalance.max_moves_per_pass = 2;
  config.autoscale.enabled = true;
  config.autoscale.min_shards = 1;
  config.autoscale.max_shards = 2;
  config.autoscale.scale_up_backlog_s = period_s * 0.5;
  config.autoscale.scale_down_backlog_s = 1e-9;
  service::ServiceFrontend frontend(config);
  obs::TraceRecorder* recorder =
      trace_pid_base >= 0 ? bench::trace_recorder() : nullptr;
  if (recorder != nullptr) {
    frontend.set_trace(recorder, trace_pid_base);
    recorder->set_process_name(trace_pid_base, "autoscale: shard 0");
    recorder->set_process_name(trace_pid_base + 1, "autoscale: shard 1 (added)");
  }

  FarmRun run;
  std::vector<service::Session> sessions;
  for (int i = 0; i < orbit_sessions(); ++i) {
    service::Session s =
        frontend.open_session("burst-" + std::to_string(i));
    s.on_frame([&run, i](const service::FrameRecord& frame) {
      run.records[i].push_back(frame);
      ++run.delivered;
    });
    s.submit_orbit(volume, orbit_options(config.gpus_per_shard),
                   orbit_frames(), 0.0, 0.0);
    sessions.push_back(s);
  }
  frontend.drain();
  run.stats = frontend.stats();
  return run;
}

/// Per-session delivery-order pixel identity (frame ids change across a
/// migration; per-session delivery order does not).
bool images_match(const FarmRun& a, const FarmRun& b) {
  if (a.records.size() != b.records.size()) return false;
  for (const auto& [session, frames] : a.records) {
    const auto it = b.records.find(session);
    if (it == b.records.end() || it->second.size() != frames.size())
      return false;
    for (std::size_t f = 0; f < frames.size(); ++f) {
      if (volren::compare_images(frames[f].image, it->second[f].image)
              .max_abs != 0.0)
        return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::print_header("bench_elastic_farm",
                      "skewed farm rebalancing vs static pinning: zero lost "
                      "frames, bit-identical pixels, warm migration handoff, "
                      "elastic scale up/down");

  const volren::Volume volume = volren::datasets::skull(orbit_dims());
  const int expected = orbit_sessions() * orbit_frames();

  // Static baseline first: its makespan anchors the control cadence
  // (a handful of control passes fit inside the skewed run).
  const FarmRun pinned = run_skewed(volume, /*rebalance=*/false,
                                    /*period_s=*/0.0, /*trace_pid_base=*/-1);
  VRMR_CHECK_MSG(pinned.delivered == expected, "static run lost frames");
  const double period_s = std::max(1e-4, pinned.stats.makespan_s / 16.0);

  const FarmRun balanced =
      run_skewed(volume, /*rebalance=*/true, period_s, /*trace_pid_base=*/0);
  const HandoffRun unmoved = run_handoff(volume, /*prepush=*/true,
                                         /*migrate=*/false, -1);
  const HandoffRun warm = run_handoff(volume, /*prepush=*/true,
                                      /*migrate=*/true, /*trace_pid_base=*/4);
  const HandoffRun cold = run_handoff(volume, /*prepush=*/false,
                                      /*migrate=*/true, -1);
  const FarmRun elastic = run_autoscale(volume, period_s, /*trace_pid_base=*/8);

  // --- gates ---------------------------------------------------------------
  const bool zero_lost =
      pinned.delivered == expected && balanced.delivered == expected &&
      elastic.delivered == expected &&
      warm.records.size() == unmoved.records.size() &&
      cold.records.size() == unmoved.records.size();
  const bool rebalanced =
      balanced.stats.rebalance_migrations > 0 &&
      balanced.stats.shards[1].service.frames_total > 0 &&
      pinned.stats.shards[1].service.frames_total == 0;
  const double fps_ratio = pinned.stats.fps > 0.0
                               ? balanced.stats.fps / pinned.stats.fps
                               : std::numeric_limits<double>::infinity();
  const bool pixels_identical = images_match(pinned, balanced);
  bool handoff_pixels = warm.records.size() == unmoved.records.size() &&
                        cold.records.size() == unmoved.records.size();
  for (std::size_t f = 0; handoff_pixels && f < unmoved.records.size(); ++f) {
    handoff_pixels =
        volren::compare_images(unmoved.records[f].image, warm.records[f].image)
                .max_abs == 0.0 &&
        volren::compare_images(unmoved.records[f].image, cold.records[f].image)
                .max_abs == 0.0;
  }
  const bool handoff_warm = warm.stats.bricks_prepushed > 0 &&
                            cold.stats.bricks_prepushed == 0 &&
                            warm.ttfp_moved_s > 0.0 &&
                            warm.ttfp_moved_s < cold.ttfp_moved_s;
  const double ttfp_ratio = warm.ttfp_moved_s > 0.0
                                ? cold.ttfp_moved_s / warm.ttfp_moved_s
                                : std::numeric_limits<double>::infinity();
  const bool scaled = elastic.stats.shards_added >= 1 &&
                      elastic.stats.shards_drained >= 1 &&
                      elastic.stats.shards[1].service.frames_total > 0;

  const bool gate_met = zero_lost && rebalanced && fps_ratio >= 1.4 &&
                        pixels_identical && handoff_pixels && handoff_warm &&
                        scaled;

  Table table({"scenario", "frames", "makespan_s", "agg_fps", "migrations",
               "prepushed"});
  const auto row = [&table](const char* name, const FarmRun& run) {
    table.add_row({name, std::to_string(run.delivered),
                   Table::num(run.stats.makespan_s, 4),
                   Table::num(run.stats.fps, 1),
                   std::to_string(run.stats.migrations),
                   std::to_string(run.stats.bricks_prepushed)});
  };
  row("static pinning (hot shard 0)", pinned);
  row("rebalanced (horizon rounds)", balanced);
  row("autoscale 1->2->1 shards", elastic);
  std::cout << table.to_string() << "\n"
            << "aggregate fps " << Table::num(pinned.stats.fps, 1) << " -> "
            << Table::num(balanced.stats.fps, 1) << " ("
            << Table::num(fps_ratio, 2) << "x, gate >= 1.4x) via "
            << balanced.stats.rebalance_migrations
            << " rebalance migration(s); pixels "
            << (pixels_identical && handoff_pixels ? "identical" : "DIFFER")
            << "\n"
            << "warm handoff: first post-move pixel "
            << Table::num(warm.ttfp_moved_s, 4) << " s vs cold re-read "
            << Table::num(cold.ttfp_moved_s, 4) << " s ("
            << Table::num(ttfp_ratio, 2) << "x, "
            << warm.stats.bricks_prepushed << " bricks / "
            << warm.stats.bytes_prepushed << " B pre-pushed)\n"
            << "elasticity: +" << elastic.stats.shards_added << " / -"
            << elastic.stats.shards_drained << " shards ("
            << elastic.stats.shards[1].service.frames_total
            << " frames on the added shard)\n"
            << (gate_met
                    ? "acceptance: rebalancing reaches the idle sibling, "
                      "migration loses nothing, warm handoff beats the cold "
                      "re-read\n"
                    : "ACCEPTANCE MISSED: fps gain, delivery, pixel identity, "
                      "warm handoff, or elasticity fell short\n");
  bench::maybe_print_csv("elastic", table);
  bench::write_gate_summary(
      "elastic", fps_ratio, 1.4, gate_met,
      {{"frames_expected", static_cast<double>(expected)},
       {"frames_static", static_cast<double>(pinned.delivered)},
       {"frames_rebalanced", static_cast<double>(balanced.delivered)},
       {"frames_autoscale", static_cast<double>(elastic.delivered)},
       {"fps_static", pinned.stats.fps},
       {"fps_rebalanced", balanced.stats.fps},
       {"fps_ratio", fps_ratio},
       {"rebalance_migrations",
        static_cast<double>(balanced.stats.rebalance_migrations)},
       {"frames_migrated", static_cast<double>(balanced.stats.frames_migrated)},
       {"control_period_s", period_s},
       {"ttfp_warm_s", warm.ttfp_moved_s},
       {"ttfp_cold_s", cold.ttfp_moved_s},
       {"ttfp_ratio", ttfp_ratio},
       {"bricks_prepushed", static_cast<double>(warm.stats.bricks_prepushed)},
       {"bytes_prepushed", static_cast<double>(warm.stats.bytes_prepushed)},
       {"shards_added", static_cast<double>(elastic.stats.shards_added)},
       {"shards_drained", static_cast<double>(elastic.stats.shards_drained)},
       {"pixels_identical", pixels_identical && handoff_pixels ? 1.0 : 0.0}});
  bench::write_trace();
  return gate_met ? 0 : 1;
}
