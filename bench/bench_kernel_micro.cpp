// Micro-benchmarks (google-benchmark) of the functional kernel pieces:
// trilinear texture sampling, transfer-function lookup, the full
// per-brick cast (host wall time of the functional simulation — NOT
// simulated seconds), and the effect of early ray termination on
// charged sample counts.

#include <benchmark/benchmark.h>

#include "gpusim/device.hpp"
#include "gpusim/texture.hpp"
#include "util/rng.hpp"
#include "volren/datasets.hpp"
#include "volren/raycast.hpp"
#include "volren/renderer.hpp"

namespace {

using namespace vrmr;

gpusim::Device& bench_device() {
  static gpusim::DeviceProps props = [] {
    gpusim::DeviceProps p;
    p.vram_bytes = 2ULL << 30;
    return p;
  }();
  static gpusim::Device dev(0, props);
  return dev;
}

void BM_Texture3DTrilinearSample(benchmark::State& state) {
  const Int3 dims{64, 64, 64};
  gpusim::Texture3D tex(bench_device(), dims);
  std::vector<float> voxels(static_cast<size_t>(dims.volume()));
  Pcg32 rng(3);
  for (auto& v : voxels) v = rng.next_float();
  tex.upload(voxels);
  Pcg32 coords(5);
  float acc = 0.0f;
  for (auto _ : state) {
    const Vec3 p{coords.uniform(0, 64), coords.uniform(0, 64), coords.uniform(0, 64)};
    acc += tex.sample(p);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Texture3DTrilinearSample);

void BM_TransferFunctionLookup(benchmark::State& state) {
  gpusim::Texture1D tex(bench_device(), 256);
  tex.upload(volren::TransferFunction::bone().bake(256));
  Pcg32 rng(9);
  Vec4 acc{};
  for (auto _ : state) {
    acc = acc + tex.sample(rng.next_float());
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransferFunctionLookup);

void BM_CastBrickFunctional(benchmark::State& state) {
  const int image = static_cast<int>(state.range(0));
  const volren::Volume volume = volren::datasets::skull({64, 64, 64});
  volren::RenderOptions options;
  options.image_width = image;
  options.image_height = image;
  const volren::FrameSetup frame = volren::make_frame(volume, options);
  const volren::BrickLayout layout(volume.dims(), volume.world_extent(), 64, 1);
  gpusim::Texture1D tf(bench_device(), 256);
  tf.upload(frame.transfer.bake(256));

  std::uint64_t samples = 0;
  for (auto _ : state) {
    const volren::BrickCastOutput out =
        volren::cast_brick(bench_device(), volume, layout.brick(0), frame, tf);
    samples = out.samples;
    benchmark::DoNotOptimize(out.keys.data());
  }
  state.counters["samples"] = static_cast<double>(samples);
  state.SetItemsProcessed(static_cast<std::int64_t>(samples) * state.iterations());
}
BENCHMARK(BM_CastBrickFunctional)->Arg(128)->Arg(256);

void BM_EarlyRayTerminationSavings(benchmark::State& state) {
  // Dense transfer function: ERT should cut charged samples hard.
  const bool ert_on = state.range(0) != 0;
  const volren::Volume volume = volren::datasets::skull({64, 64, 64});
  volren::RenderOptions options;
  options.image_width = 128;
  options.image_height = 128;
  options.transfer = volren::TransferFunction::grayscale_ramp(0.9f);
  options.cast.ert_threshold = ert_on ? 0.98f : 2.0f;
  const volren::FrameSetup frame = volren::make_frame(volume, options);
  const volren::BrickLayout layout(volume.dims(), volume.world_extent(), 64, 1);
  gpusim::Texture1D tf(bench_device(), 256);
  tf.upload(frame.transfer.bake(256));

  std::uint64_t samples = 0;
  for (auto _ : state) {
    const volren::BrickCastOutput out =
        volren::cast_brick(bench_device(), volume, layout.brick(0), frame, tf);
    samples = out.samples;
  }
  state.counters["charged_samples"] = static_cast<double>(samples);
}
BENCHMARK(BM_EarlyRayTerminationSavings)->Arg(0)->Arg(1);

void BM_GridLaunchOverhead(benchmark::State& state) {
  // Empty kernel over a 512²-pixel grid of 16x16 blocks: the functional
  // dispatch cost of the CUDA-style launch machinery.
  auto& dev = bench_device();
  for (auto _ : state) {
    dev.launch_2d(Int3{32, 32, 1}, Int3{16, 16, 1}, [](const gpusim::ThreadCtx&) {});
  }
  state.SetItemsProcessed(32 * 32 * 256 * state.iterations());
}
BENCHMARK(BM_GridLaunchOverhead);

}  // namespace

BENCHMARK_MAIN();
