// Compressed bricks A/B: the same byte budget holds a multiple of the
// logical working set when the cache stores encoded payloads, and a
// cold shard warms from a sibling's cache faster than from disk.
//
// Part 1 — residency multiplier. A plume orbit (the one seed dataset
// whose uniform column + background really RLE-compresses; the skull
// and supernova proxies are continuous fields that fall back to raw)
// re-demands the same brick set every frame against a per-GPU budget
// sized BETWEEN the stored and logical working sets: compression off,
// the set overflows and LRU's sequential flush starves every re-demand;
// compression on, the encoded set fits outright at the SAME budget and
// the warm frames hit everything. Pixels must be bit-identical either
// way — the codec changes sizes and times, never values.
//
// Part 2 — cold-shard warm-up. A two-shard farm serves the volume
// out-of-core (RenderOptions::include_disk_io): shard 0 warms, then a
// pinned session renders cold on shard 1. With peer hydration the cold
// shard's misses ship the stored payloads over the inter-shard fabric
// (microseconds of latency at fabric bandwidth) instead of re-reading
// disk (5 ms seek per brick at 75 MB/s), so time-to-first-pixel drops.
//
// Acceptance (exit code gates Release CI): compression-on demand hit
// rate >= 1.5x compression-off at the equal byte budget, hydrated
// time-to-first-pixel strictly beats the disk re-read, pixels
// identical.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "compress/brick_codec.hpp"
#include "service/frontend.hpp"
#include "service/render_service.hpp"
#include "util/check.hpp"

using namespace vrmr;

namespace {

Int3 orbit_dims() { return bench::fast_mode() ? Int3{24, 24, 32} : Int3{32, 32, 64}; }
int orbit_frames() { return bench::fast_mode() ? 4 : 6; }

volren::RenderOptions orbit_options(int gpus) {
  volren::RenderOptions options;
  options.image_width = bench::image_size();
  options.image_height = bench::image_size();
  options.cast.decimation = bench::decimation_for(orbit_dims());
  options.transfer = volren::TransferFunction::fire();
  options.distance = 1.2f;
  options.elevation = 0.3f;
  options.target_bricks = 4 * gpus;  // fine bricks: a real eviction stream
  // Serve out-of-core: misses pay the disk (stored bytes under
  // compression — the cheaper read), hits skip it entirely.
  options.include_disk_io = true;
  return options;
}

/// Per-GPU working-set footprints of one frame (mr::FramePlan deals
/// brick i to GPU i % gpus): .first = logical bytes (what compression
/// off charges the cache), .second = RLE-stored bytes (what
/// compression on charges against the SAME budget).
std::pair<std::uint64_t, std::uint64_t> per_gpu_footprints(
    const volren::Volume& volume, const volren::BrickLayout& layout, int gpus) {
  const compress::RleCodec rle;
  const compress::CompressionPlan plan = compress::analyze(volume, layout, rle);
  std::vector<std::uint64_t> logical(static_cast<std::size_t>(gpus), 0);
  std::vector<std::uint64_t> stored(static_cast<std::size_t>(gpus), 0);
  for (const volren::BrickInfo& brick : layout.bricks()) {
    const std::size_t g = static_cast<std::size_t>(brick.id % gpus);
    logical[g] += brick.device_bytes();
    stored[g] += plan.brick(brick.id).stored_bytes;
  }
  return {*std::max_element(logical.begin(), logical.end()),
          *std::max_element(stored.begin(), stored.end())};
}

struct OrbitResult {
  double demand_hit_rate = 0.0;  // post-warmup frames only
  double residency_multiplier = 1.0;
  double makespan_s = 0.0;
  double decompress_s_total = 0.0;
  std::uint64_t bytes_h2d_saved = 0;
  std::uint64_t bytes_disk_saved = 0;
  std::map<std::uint64_t, volren::Image> images;  // frame_id -> image
};

OrbitResult run_orbit(const volren::Volume& volume, compress::Codec codec,
                      std::uint64_t capacity, int gpus) {
  sim::Engine engine;
  cluster::Cluster cluster(engine,
                           cluster::ClusterConfig::with_total_gpus(gpus));
  service::ServiceConfig config;
  config.compression = codec;
  config.cache_capacity_override = capacity;
  config.keep_images = true;
  service::RenderService service(cluster, config);
  // VRMR_TRACE: each codec run is its own trace process (independent
  // simulated timelines).
  if (obs::TraceRecorder* recorder = bench::trace_recorder()) {
    static int next_pid = 0;
    service.set_trace(recorder, next_pid);
    recorder->set_process_name(next_pid, std::string("orbit ") +
                                             compress::to_string(codec));
    ++next_pid;
  }

  service::Session session = service.open_session("orbit");
  volren::RenderOptions options = orbit_options(gpus);
  for (int f = 0; f < orbit_frames(); ++f) {
    options.azimuth =
        6.2831853f * static_cast<float>(f) / static_cast<float>(orbit_frames());
    service::RenderRequest request;
    request.volume = &volume;
    request.options = options;
    session.submit(request);
  }
  service.drain();

  const service::ServiceStats stats = service.stats();
  OrbitResult result;
  result.makespan_s = stats.makespan_s;
  result.decompress_s_total = stats.decompress_s_total;
  result.bytes_h2d_saved = stats.bytes_h2d_saved;
  std::uint64_t hits = 0, misses = 0;
  for (const service::FrameRecord& frame : service.frames()) {
    result.images[frame.frame_id] = frame.image;
    result.bytes_disk_saved += frame.stats.bytes_disk_saved;
    if (frame.frame_id == 0) continue;  // cold frame warms any cache
    hits += frame.cache_hits;
    misses += frame.cache_misses;
  }
  result.demand_hit_rate =
      static_cast<double>(hits) / static_cast<double>(hits + misses);
  if (stats.cache.stored_bytes_admitted > 0) {
    result.residency_multiplier =
        static_cast<double>(stats.cache.logical_bytes_admitted) /
        static_cast<double>(stats.cache.stored_bytes_admitted);
  }
  return result;
}

/// Time-to-first-pixel of ONE cold frame on shard 1 after shard 0
/// served the same volume, hydration on or off. Out-of-core serving:
/// every miss either re-reads disk or ships from the warm sibling.
struct ColdStart {
  double ttfp_s = 0.0;
  std::uint64_t bricks_hydrated = 0;
  std::uint64_t bytes_hydrated = 0;
  std::uint64_t bytes_disk_avoided = 0;
};

ColdStart run_cold_start(const volren::Volume& volume, bool hydration,
                         int gpus_per_shard) {
  service::FrontendConfig config;
  config.shards = 2;
  config.gpus_per_shard = gpus_per_shard;
  config.enable_peer_hydration = hydration;
  config.service.compression = compress::Codec::Rle;
  service::ServiceFrontend frontend(config);
  if (obs::TraceRecorder* recorder = bench::trace_recorder()) {
    // Only the hydrated run attaches — one cold-start timeline in the
    // export is enough to follow the shard-to-shard arrows. Pids 0..1
    // belong to the orbit runs; the farm's shards take 2..3.
    if (hydration) {
      frontend.set_trace(recorder, /*pid_base=*/2);
      recorder->set_process_name(2, "farm shard 0 (warm)");
      recorder->set_process_name(3, "farm shard 1 (cold)");
    }
  }

  volren::RenderOptions options = orbit_options(gpus_per_shard);
  options.include_disk_io = true;

  service::SessionProfile warm_profile;
  warm_profile.name = "warm";
  warm_profile.pin_shard = 0;
  service::Session warm = frontend.open_session(warm_profile);
  warm.submit_orbit(volume, options, 2, 0.0, 0.0);
  frontend.drain();

  service::SessionProfile cold_profile;
  cold_profile.name = "cold";
  cold_profile.priority = service::Priority::Interactive;
  cold_profile.pin_shard = 1;
  service::Session cold = frontend.open_session(cold_profile);
  ColdStart result;
  cold.on_frame([&](const service::FrameRecord& frame) {
    result.ttfp_s = frame.first_tile_s - frame.arrival_s;
  });
  service::RenderRequest request;
  request.volume = &volume;
  request.options = options;
  cold.submit(request);
  frontend.drain();

  const service::FrontendStats stats = frontend.stats();
  result.bricks_hydrated = stats.bricks_hydrated;
  result.bytes_hydrated = stats.bytes_hydrated_from_peers;
  result.bytes_disk_avoided = stats.bytes_disk_avoided;
  return result;
}

}  // namespace

int main() {
  bench::print_header("bench_compression",
                      "compressed bricks: cache residency multiplier + "
                      "cold-shard warm hydration");

  const int gpus = 4;
  const volren::Volume volume = volren::datasets::plume(orbit_dims());

  // Size the shared budget BETWEEN the stored and logical per-GPU
  // working sets: the encoded bricks fit with headroom, the raw ones
  // overflow — the same bytes, opposite fates.
  const volren::BrickLayout layout =
      volren::choose_layout(volume, orbit_options(gpus), gpus);
  const auto [logical_bytes, stored_bytes] =
      per_gpu_footprints(volume, layout, gpus);
  const std::uint64_t capacity = 2 * stored_bytes;
  VRMR_CHECK_MSG(capacity < logical_bytes,
                 "the plume must compress enough that twice its stored "
                 "working set still undercuts the logical one (stored "
                     << stored_bytes << " vs logical " << logical_bytes << ")");

  const OrbitResult off = run_orbit(volume, compress::Codec::None, capacity, gpus);
  const OrbitResult on = run_orbit(volume, compress::Codec::Rle, capacity, gpus);

  bool pixels_identical = off.images.size() == on.images.size();
  if (pixels_identical) {
    for (const auto& [frame_id, image] : off.images) {
      const auto it = on.images.find(frame_id);
      if (it == on.images.end() ||
          volren::compare_images(image, it->second).max_abs != 0.0) {
        pixels_identical = false;
        break;
      }
    }
  }
  const double hit_ratio =
      off.demand_hit_rate > 0.0
          ? on.demand_hit_rate / off.demand_hit_rate
          : std::numeric_limits<double>::infinity();

  const ColdStart disk = run_cold_start(volume, /*hydration=*/false, 2);
  const ColdStart hydrated = run_cold_start(volume, /*hydration=*/true, 2);
  const double ttfp_ratio =
      hydrated.ttfp_s > 0.0 ? disk.ttfp_s / hydrated.ttfp_s
                            : std::numeric_limits<double>::infinity();

  const bool gate_met = hit_ratio >= 1.5 && ttfp_ratio > 1.0 &&
                        hydrated.bricks_hydrated > 0 && pixels_identical;

  Table table({"codec", "demand_hit_rate", "residency_x", "makespan_s",
               "decompress_us", "h2d_saved", "disk_saved"});
  for (const auto* result : {&off, &on}) {
    table.add_row({compress::to_string(result == &on ? compress::Codec::Rle
                                                     : compress::Codec::None),
                   Table::num(result->demand_hit_rate, 3),
                   Table::num(result->residency_multiplier, 2),
                   Table::num(result->makespan_s, 4),
                   Table::num(result->decompress_s_total * 1e6, 2),
                   std::to_string(result->bytes_h2d_saved),
                   std::to_string(result->bytes_disk_saved)});
  }
  std::cout << table.to_string() << "\n"
            << "demand hit-rate ratio (rle/none) at equal budget: "
            << Table::num(hit_ratio, 2) << "x (budget " << capacity
            << " B/GPU; stored set " << stored_bytes << ", logical "
            << logical_bytes << ")\n"
            << "cold-shard time-to-first-pixel: disk "
            << Table::num(disk.ttfp_s, 4) << " s vs hydrated "
            << Table::num(hydrated.ttfp_s, 4) << " s ("
            << Table::num(ttfp_ratio, 2) << "x, "
            << hydrated.bricks_hydrated << " bricks / "
            << hydrated.bytes_hydrated << " B over the fabric); pixels "
            << (pixels_identical ? "identical" : "DIFFER") << "\n"
            << (gate_met
                    ? "acceptance: rle >= 1.5x demand hit rate at the same "
                      "byte budget, hydration beats the disk re-read\n"
                    : "ACCEPTANCE MISSED: hit-rate ratio < 1.5x, hydration "
                      "no faster than disk, or pixels differ\n");
  bench::maybe_print_csv("compression", table);
  bench::write_gate_summary(
      "compression", hit_ratio, 1.5, gate_met,
      {{"demand_hit_rate_none", off.demand_hit_rate},
       {"demand_hit_rate_rle", on.demand_hit_rate},
       {"residency_multiplier", on.residency_multiplier},
       {"makespan_none_s", off.makespan_s},
       {"makespan_rle_s", on.makespan_s},
       {"decompress_s_total", on.decompress_s_total},
       {"ttfp_disk_s", disk.ttfp_s},
       {"ttfp_hydrated_s", hydrated.ttfp_s},
       {"ttfp_ratio", ttfp_ratio},
       {"bricks_hydrated", static_cast<double>(hydrated.bricks_hydrated)},
       {"bytes_hydrated", static_cast<double>(hydrated.bytes_hydrated)},
       {"bytes_disk_avoided",
        static_cast<double>(hydrated.bytes_disk_avoided)},
       {"pixels_identical", pixels_identical ? 1.0 : 0.0}});
  bench::write_trace();
  return gate_met ? 0 : 1;
}
