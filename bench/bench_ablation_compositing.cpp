// Ablation for §6's compositing decision: "We chose direct-send
// compositing because it allows an overlap of communication and
// computation, and also because it fits within the MapReduce model."
// Binary swap (Ma et al. 1994) is the classic alternative; we run both
// on identical frames and report runtime plus exchanged bytes.
//
// Expected shape: direct-send overlaps fragment routing with further
// ray casting, so it wins at the paper's scales (bricks ≈ GPUs, a few
// nodes); binary swap's log2(G) synchronous rounds each move O(pixels)
// bytes and cannot overlap the map phase.

#include "common.hpp"

#include "volren/binary_swap.hpp"

int main() {
  using namespace vrmr;
  using namespace vrmr::bench;

  print_header("bench_ablation_compositing", "§6 direct-send vs binary-swap");

  for (const Int3 dims : {Int3{256, 256, 256}, Int3{512, 512, 512}}) {
    Table table({"gpus", "direct-send_s", "ds exposed comm_s", "binary-swap_s",
                 "bs swap_s", "ds net", "bs net"});
    for (const int gpus : {2, 4, 8, 16}) {
      const volren::Volume volume = volren::datasets::skull(dims);
      volren::RenderOptions options;
      options.image_width = image_size();
      options.image_height = image_size();
      options.cast.decimation = decimation_for(dims);
      options.transfer = volren::TransferFunction::bone();
      options.distance = 1.2f;
      options.azimuth = 0.65f;
      options.elevation = 0.3f;
      options.target_bricks = gpus;

      sim::Engine e1;
      cluster::Cluster c1(e1, cluster::ClusterConfig::with_total_gpus(gpus));
      const volren::RenderResult direct = volren::render_mapreduce(c1, volume, options);

      sim::Engine e2;
      cluster::Cluster c2(e2, cluster::ClusterConfig::with_total_gpus(gpus));
      const volren::BinarySwapResult swap = volren::render_binary_swap(c2, volume, options);

      // Communication the pipeline failed to hide behind ray casting:
      // direct-send streams fragments during the map phase, so only the
      // tail after the last kernel is exposed; binary swap's rounds are
      // synchronous and fully exposed by construction.
      const double ds_exposed = direct.stats.t_routed - direct.stats.t_map_done;
      table.add_row({std::to_string(gpus), Table::num(direct.stats.runtime_s, 4),
                     Table::num(ds_exposed, 4), Table::num(swap.runtime_s, 4),
                     Table::num(swap.swap_s, 4), format_bytes(direct.stats.bytes_net),
                     format_bytes(swap.bytes_net)});
    }
    std::cout << dims_label(dims) << ":\n" << table.to_string() << "\n";
  }
  std::cout
      << "reading this table: the paper chose direct-send on design grounds —\n"
      << "overlap with computation and fit with the MapReduce model (§6) — without\n"
      << "publishing a binary-swap measurement. The quantified trade-off: binary\n"
      << "swap posts only G·log2(G) messages, so at these small GPU counts its raw\n"
      << "compositing span can undercut direct-send's all-to-all; but its exchanged\n"
      << "bytes grow linearly with G (bs net column) while direct-send's stay\n"
      << "~flat, and its rounds are synchronous barriers (bs swap_s is fully\n"
      << "exposed) whereas direct-send hides most routing under the map phase\n"
      << "(ds exposed << total). At hundreds of GPUs — the regime the paper argues\n"
      << "for — the byte scaling and barrier costs reverse the comparison.\n";
  return 0;
}
