// Micro-ablation (google-benchmark) for §3.1.2's sort/reduce choices:
//   * the θ(n) counting sort against std::stable_sort — the dense
//     4-byte key domain is what buys the linear-time specialization;
//   * CPU vs GPU sort placement cost (modeled transfer + kernel), the
//     "depending on the amount of data" switch;
//   * the reduce-side per-pixel depth sort that made CPU compositing
//     beat GPU compositing at the paper's scales.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>

#include "cluster/hardware_model.hpp"
#include "mr/sorter.hpp"
#include "util/rng.hpp"
#include "volren/fragment.hpp"

namespace {

using namespace vrmr;

mr::KvBuffer make_fragments(std::size_t n, std::uint32_t num_keys, std::uint64_t seed) {
  mr::KvBuffer buf(sizeof(volren::RayFragment));
  Pcg32 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    volren::RayFragment frag;
    frag.depth = rng.next_float();
    frag.brick = rng.next_below(64);
    buf.append(rng.next_below(num_keys), &frag);
  }
  return buf;
}

void BM_CountingSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::uint32_t keys = 512 * 512;
  const mr::KvBuffer buf = make_fragments(n, keys, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mr::counting_sort(buf, 0, keys));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_CountingSort)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_StdStableSortBaseline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const mr::KvBuffer buf = make_fragments(n, 512 * 512, 42);
  for (auto _ : state) {
    std::vector<std::uint32_t> order(buf.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      return buf.key(a) < buf.key(b);
    });
    benchmark::DoNotOptimize(order);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_StdStableSortBaseline)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

/// Modeled placement cost: what the DES charges for a sort of n pairs on
/// CPU vs GPU (H2D + kernel + D2H). The crossover is the paper's
/// "depending on the amount of data".
void BM_ModeledSortPlacement(benchmark::State& state) {
  const auto pairs = static_cast<double>(state.range(0));
  const auto hw = cluster::HardwareModel::ncsa_accelerator_cluster();
  double cpu_s = 0.0, gpu_s = 0.0;
  for (auto _ : state) {
    cpu_s = pairs / hw.cpu.sort_rate_pairs_per_s;
    const double bytes = pairs * (4 + sizeof(volren::RayFragment));
    gpu_s = 2.0 * hw.pcie.transfer_time(static_cast<std::uint64_t>(bytes)) +
            hw.gpu.kernel_launch_overhead_s + pairs / hw.gpu_sort.sort_rate_pairs_per_s;
    benchmark::DoNotOptimize(cpu_s);
    benchmark::DoNotOptimize(gpu_s);
  }
  state.counters["cpu_ms"] = cpu_s * 1e3;
  state.counters["gpu_ms"] = gpu_s * 1e3;
  state.counters["gpu_wins"] = gpu_s < cpu_s ? 1 : 0;
}
BENCHMARK(BM_ModeledSortPlacement)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 24);

/// Reduce-side work: depth-sorting each pixel's fragment list is the
/// cost that kept compositing on the CPU (§3.1.2).
void BM_ReduceDepthSortAndComposite(benchmark::State& state) {
  const auto frags_per_pixel = static_cast<std::size_t>(state.range(0));
  Pcg32 rng(7);
  std::vector<volren::RayFragment> group(frags_per_pixel);
  for (auto& f : group) {
    f.depth = rng.next_float();
    f.brick = rng.next_below(64);
    f.a = 0.1f;
  }
  std::vector<volren::RayFragment> scratch;
  for (auto _ : state) {
    scratch = group;
    std::sort(scratch.begin(), scratch.end());
    Rgba accum = Rgba::transparent();
    for (const auto& f : scratch) accum = composite_over(accum, f.color());
    benchmark::DoNotOptimize(accum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(frags_per_pixel) * state.iterations());
}
BENCHMARK(BM_ReduceDepthSortAndComposite)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
