// Ablation for §3.1's omission: "we specifically omitted partial
// reduce/combine because it didn't increase performance for our volume
// renderer". Two workloads make the decision quantitative:
//
//   1. the volume renderer itself — with bricks ≈ GPUs, one mapper
//      emits ~one fragment per pixel, so there is nothing to combine
//      and the extra grouping pass only costs CPU time (the paper's
//      conclusion);
//   2. a histogram reduction — thousands of pairs per key per mapper —
//      where the same combiner hook shrinks traffic by orders of
//      magnitude (why general MapReduce libraries keep the stage).

#include "common.hpp"

#include <map>

#include "mr/combiner.hpp"
#include "mr/job.hpp"
#include "util/rng.hpp"
#include "volren/fragment.hpp"

namespace {

using namespace vrmr;

/// Depth-sorts and pre-composites a mapper's fragments for one pixel
/// into a single fragment. Only applied when one mapper's fragments
/// are depth-contiguous per pixel — guaranteed here by measuring, not
/// assuming: the bench reports key-collision rates.
class FragmentCombiner final : public mr::Combiner {
 public:
  void combine(std::uint32_t key, const std::byte* values, std::size_t count,
               mr::KvBuffer& out) override {
    if (count == 1) {
      out.append(key, values);
      return;
    }
    std::vector<volren::RayFragment> frags(count);
    std::memcpy(frags.data(), values, count * sizeof(volren::RayFragment));
    std::sort(frags.begin(), frags.end());
    Rgba accum = Rgba::transparent();
    for (const auto& f : frags) accum = composite_over(accum, f.color());
    volren::RayFragment merged = frags.front();
    merged.set_color(accum);
    out.append_typed(key, merged);
  }
};

}  // namespace

int main() {
  using namespace vrmr;
  using namespace vrmr::bench;

  print_header("bench_ablation_combiner", "§3.1 (omitted combiner) ablation");

  // --- workload 1: the volume renderer -----------------------------------
  {
    Table table({"combiner", "gpus", "total_s", "pairs in", "pairs out",
                 "collision rate"});
    for (const int gpus : {4, 8}) {
      for (const bool enabled : {false, true}) {
        const volren::Volume volume = volren::datasets::skull({256, 256, 256});
        sim::Engine engine;
        cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(gpus));
        volren::RenderOptions options;
        options.image_width = image_size();
        options.image_height = image_size();
        options.transfer = volren::TransferFunction::bone();
        options.distance = 1.2f;

        // Drive the pipeline manually so the combiner hook is reachable.
        const volren::FrameSetup frame = volren::make_frame(volume, options);
        mr::JobConfig config;
        config.value_size = sizeof(volren::RayFragment);
        config.domain.num_keys =
            static_cast<std::uint32_t>(options.image_width) * options.image_height;
        config.domain.image_width = static_cast<std::uint32_t>(options.image_width);
        mr::Job job(cluster, config);
        job.set_mapper_factory([&](int, gpusim::Device&) {
          return std::make_unique<volren::RayCastMapper>(volume, frame);
        });
        std::vector<std::vector<volren::FinishedPixel>> pieces(
            static_cast<size_t>(gpus));
        job.set_reducer_factory([&](int r) {
          return std::make_unique<volren::CompositeReducer>(
              options.cast.ert_threshold, options.background,
              &pieces[static_cast<size_t>(r)]);
        });
        if (enabled) {
          job.set_combiner_factory(
              [](int) { return std::make_unique<FragmentCombiner>(); });
        }
        // Visibility-ordered slab assignment keeps one mapper's
        // fragments depth-contiguous per pixel (combining stays exact).
        const Int3 brick_dims = volren::BrickLayout::choose_brick_dims(
            volume.dims(), gpus);
        const volren::BrickLayout layout(volume.dims(), volume.world_extent(),
                                         brick_dims, 1);
        for (const volren::BrickInfo& info : layout.bricks()) {
          job.add_chunk(std::make_unique<volren::BrickChunk>(volume, info));
        }
        const mr::JobStats stats = job.run();
        const double collision =
            stats.combine_input_pairs > 0
                ? static_cast<double>(stats.combine_input_pairs) /
                      std::max<std::uint64_t>(1, stats.combine_output_pairs)
                : static_cast<double>(stats.fragments) / std::max<std::uint64_t>(
                      1, stats.fragments);
        table.add_row({enabled ? "on" : "off", std::to_string(gpus),
                       Table::num(stats.runtime_s, 4),
                       std::to_string(enabled ? stats.combine_input_pairs
                                              : stats.fragments),
                       std::to_string(enabled ? stats.combine_output_pairs
                                              : stats.fragments),
                       Table::num(collision, 2) + "x"});
      }
    }
    std::cout << "volume rendering, 256^3 (bricks ≈ GPUs):\n" << table.to_string()
              << "expected: ~1x collisions — combining cannot shrink fragment\n"
                 "traffic, it only adds a grouping pass. The paper's omission.\n\n";
  }

  // --- workload 2: histogram reduction ------------------------------------
  {
    // Reuse the mr-level sum machinery from the histogram example shape.
    class HistChunk final : public mr::Chunk {
     public:
      explicit HistChunk(std::uint32_t n) : n_(n) {}
      std::uint64_t device_bytes() const override { return n_ * 4; }
      std::uint32_t n() const { return n_; }

     private:
      std::uint32_t n_;
    };
    class HistMapper final : public mr::Mapper {
     public:
      mr::MapOutcome map(gpusim::Device&, const mr::Chunk& chunk,
                         mr::KvBuffer& out) override {
        const auto& h = dynamic_cast<const HistChunk&>(chunk);
        Pcg32 rng(h.n());
        for (std::uint32_t i = 0; i < h.n(); ++i) {
          const std::uint64_t one = 1;
          out.append_typed(rng.next_below(256), one);
        }
        return {h.n(), out.size()};
      }
    };
    class SumCombiner final : public mr::Combiner {
     public:
      void combine(std::uint32_t key, const std::byte* values, std::size_t count,
                   mr::KvBuffer& out) override {
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < count; ++i) {
          std::uint64_t v;
          std::memcpy(&v, values + i * 8, 8);
          total += v;
        }
        out.append_typed(key, total);
      }
    };
    class NullReducer final : public mr::Reducer {
     public:
      void reduce(std::uint32_t, const std::byte*, std::size_t) override {}
    };

    Table table({"combiner", "total_s", "net bytes", "pairs shipped"});
    for (const bool enabled : {false, true}) {
      sim::Engine engine;
      cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(8));
      mr::JobConfig config;
      config.value_size = 8;
      config.domain.num_keys = 256;
      mr::Job job(cluster, config);
      job.set_mapper_factory(
          [](int, gpusim::Device&) { return std::make_unique<HistMapper>(); });
      job.set_reducer_factory([](int) { return std::make_unique<NullReducer>(); });
      if (enabled) {
        job.set_combiner_factory([](int) { return std::make_unique<SumCombiner>(); });
      }
      for (int c = 0; c < 32; ++c)
        job.add_chunk(std::make_unique<HistChunk>(200000));
      const mr::JobStats stats = job.run();
      table.add_row({enabled ? "on" : "off", Table::num(stats.runtime_s, 4),
                     format_bytes(stats.bytes_net),
                     std::to_string(enabled ? stats.combine_output_pairs
                                            : stats.fragments)});
    }
    std::cout << "histogram reduction, 6.4M pairs over 256 keys:\n" << table.to_string()
              << "expected: the same hook collapses traffic by ~1000x here — the\n"
                 "combiner is valuable in general, just not for this renderer.\n";
  }
  return 0;
}
