// Cache-policy A/B: an Interactive orbit session sharing one shard
// with a Batch full-volume scan, Lru vs Arc brick-cache admission.
//
// The adversarial pattern LRU cannot survive: the interactive session
// re-demands the same small working set every frame (twice-touched,
// hot), while the batch session streams a time-series export — every
// batch frame scans a DIFFERENT volume larger than the per-GPU cache
// budget, so each of its bricks is demanded exactly once and the scan
// pushes everything else out of a recency-only cache. Under Arc the
// hot set is promoted to the frequency list T2 after its second touch
// and the one-pass scan churns through T1/B1 without ever reaching it
// (scan resistance), so the interactive demand hit rate survives the
// scan with no orbit hint and no prefetcher help (the prefetcher only
// serves hinted sessions — this bench measures the demand stream the
// ROADMAP calls out).
//
// The schedule is self-pacing (no timing constants to mis-tune): the
// interactive session warms up with two back-to-back orbit frames,
// its second completion submits the whole batch backlog, and every
// batch completion submits the next interactive orbit frame — so
// under Lru every post-warmup interactive frame faces a freshly
// flushed cache, the worst case the ROADMAP describes.
//
// Acceptance (exit code gates Release CI): Arc >= 1.5x the Lru
// interactive demand hit rate, batch makespan no worse than 1.05x
// Lru, pixels identical across policies.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "service/render_service.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

using namespace vrmr;

namespace {

Int3 live_dims() { return bench::fast_mode() ? Int3{32, 32, 32} : Int3{64, 64, 64}; }
Int3 scan_dims() { return bench::fast_mode() ? Int3{64, 64, 64} : Int3{128, 128, 128}; }
int scan_frames() { return bench::fast_mode() ? 6 : 8; }

volren::RenderOptions options_for(Int3 dims) {
  volren::RenderOptions options;
  options.image_width = bench::image_size();
  options.image_height = bench::image_size();
  options.cast.decimation = bench::decimation_for(dims);
  options.distance = 1.2f;
  options.elevation = 0.3f;
  return options;
}

/// Largest per-GPU staging footprint of one frame of this layout
/// (mr::FramePlan deals brick i to GPU i % gpus).
std::uint64_t per_gpu_bytes(const volren::BrickLayout& layout, int gpus) {
  std::vector<std::uint64_t> bytes(static_cast<std::size_t>(gpus), 0);
  for (const volren::BrickInfo& brick : layout.bricks()) {
    bytes[static_cast<std::size_t>(brick.id % gpus)] += brick.device_bytes();
  }
  return *std::max_element(bytes.begin(), bytes.end());
}

struct RunResult {
  double interactive_hit_rate = 0.0;
  double interactive_p50_latency_s = 0.0;
  double batch_makespan_s = 0.0;
  double makespan_s = 0.0;
  service::BrickCacheStats cache;
  /// (session, frame_id) -> image, for the cross-policy pixel check.
  std::map<std::pair<int, std::uint64_t>, volren::Image> images;
};

RunResult run(service::CachePolicy policy, int gpus) {
  const int total_interactive = 2 + scan_frames();  // warmup + one per scan

  const volren::Volume live_volume = volren::datasets::skull(live_dims());
  std::vector<volren::Volume> scan_volumes;
  scan_volumes.reserve(static_cast<std::size_t>(scan_frames()));
  for (int f = 0; f < scan_frames(); ++f) {
    // Distinct Volume objects = distinct cache volume ids: a
    // time-series export demands every brick exactly once (one-pass
    // scan), never re-touching a frame it already staged.
    scan_volumes.push_back(volren::datasets::supernova(scan_dims()));
  }

  volren::RenderOptions live_options = options_for(live_dims());
  live_options.transfer = volren::TransferFunction::bone();
  live_options.target_bricks = gpus;
  volren::RenderOptions scan_options = options_for(scan_dims());
  scan_options.transfer = volren::TransferFunction::fire();
  scan_options.target_bricks = 8 * gpus;  // stream in fine bricks

  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(gpus));

  // Size the per-GPU budget from the workload so the adversarial
  // relationship holds at either scale: the hot set fits with room to
  // spare, one scan frame does not.
  const std::uint64_t live_bytes = per_gpu_bytes(
      volren::choose_layout(live_volume, live_options, gpus), gpus);
  const std::uint64_t scan_bytes = per_gpu_bytes(
      volren::choose_layout(scan_volumes.front(), scan_options, gpus), gpus);
  const std::uint64_t capacity = 3 * live_bytes;
  VRMR_CHECK_MSG(scan_bytes >= 2 * capacity,
                 "scan frame must overflow the cache budget (got "
                     << scan_bytes << " vs budget " << capacity << ")");

  service::ServiceConfig config;
  config.policy = service::SchedulingPolicy::Fifo;
  config.cache_policy = policy;
  config.cache_capacity_override = capacity;
  config.keep_images = true;
  service::RenderService service(cluster, config);
  // VRMR_TRACE: each policy run is its own trace process (independent
  // simulated timelines).
  if (obs::TraceRecorder* recorder = bench::trace_recorder()) {
    static int next_pid = 0;
    service.set_trace(recorder, next_pid);
    recorder->set_process_name(next_pid, std::string(to_string(policy)) +
                                             " cache A/B");
    ++next_pid;
  }

  service::Session live =
      service.open_session("orbit", service::Priority::Interactive);
  service::Session batch =
      service.open_session("export", service::Priority::Batch);

  int live_submitted = 0;
  auto submit_live = [&] {
    volren::RenderOptions options = live_options;
    options.azimuth = 6.2831853f * static_cast<float>(live_submitted) /
                      static_cast<float>(total_interactive);
    ++live_submitted;
    service::RenderRequest request;
    request.volume = &live_volume;
    request.options = options;
    request.arrival_s = 0.0;  // clamps to the submit-time clock
    live.submit(request);
  };

  // Warmup completes -> the export arrives; each export frame
  // completes -> the scientist asks for the next orbit view, against a
  // cache the scan just churned through.
  live.on_frame([&](const service::FrameRecord& frame) {
    if (frame.frame_id != 1) return;  // second warmup frame only
    for (volren::Volume& volume : scan_volumes) {
      service::RenderRequest request;
      request.volume = &volume;
      request.options = scan_options;
      request.arrival_s = 0.0;
      batch.submit(request);
    }
  });
  batch.on_frame([&](const service::FrameRecord&) {
    if (live_submitted < total_interactive) submit_live();
  });

  submit_live();  // warmup frame 0
  submit_live();  // warmup frame 1 — its completion releases the scan
  service.drain();

  const service::ServiceStats stats = service.stats();
  RunResult result;
  result.makespan_s = stats.makespan_s;
  result.cache = stats.cache;

  std::vector<double> live_latencies;
  std::uint64_t live_hits = 0, live_misses = 0;
  double batch_first_arrival = std::numeric_limits<double>::infinity();
  double batch_last_finish = 0.0;
  // frames() is the zero-copy view — stats() would duplicate every
  // kept image a second time just to walk the records.
  for (const service::FrameRecord& frame : service.frames()) {
    result.images[{frame.session, frame.frame_id}] = frame.image;
    if (frame.session == 0) {
      live_hits += frame.cache_hits;
      live_misses += frame.cache_misses;
      live_latencies.push_back(frame.latency_s());
    } else {
      batch_first_arrival = std::min(batch_first_arrival, frame.arrival_s);
      batch_last_finish = std::max(batch_last_finish, frame.finish_s);
    }
  }
  VRMR_CHECK_MSG(live_submitted == total_interactive,
                 "expected every scan completion to trigger an orbit frame");
  result.interactive_hit_rate =
      static_cast<double>(live_hits) / static_cast<double>(live_hits + live_misses);
  result.interactive_p50_latency_s = percentile(live_latencies, 50.0);
  result.batch_makespan_s = batch_last_finish - batch_first_arrival;
  return result;
}

}  // namespace

int main() {
  bench::print_header("bench_cache_policies",
                      "scan-resistant brick cache (Arc vs Lru A/B)");

  const int gpus = 4;
  const RunResult lru = run(service::CachePolicy::Lru, gpus);
  const RunResult arc = run(service::CachePolicy::Arc, gpus);

  bool pixels_identical = lru.images.size() == arc.images.size();
  if (pixels_identical) {
    for (const auto& [key, image] : lru.images) {
      const auto it = arc.images.find(key);
      if (it == arc.images.end() ||
          volren::compare_images(image, it->second).max_abs != 0.0) {
        pixels_identical = false;
        break;
      }
    }
  }

  const double hit_ratio =
      lru.interactive_hit_rate > 0.0
          ? arc.interactive_hit_rate / lru.interactive_hit_rate
          : std::numeric_limits<double>::infinity();
  const double makespan_ratio =
      lru.batch_makespan_s > 0.0 ? arc.batch_makespan_s / lru.batch_makespan_s
                                 : 1.0;
  const bool gate_met =
      hit_ratio >= 1.5 && makespan_ratio <= 1.05 && pixels_identical;

  Table table({"policy", "live_hit_rate", "live_p50_latency_s",
               "batch_makespan_s", "evictions", "t2_hits", "ghost_hits",
               "arc_p_bytes"});
  for (const auto* result : {&lru, &arc}) {
    const bool is_arc = result == &arc;
    table.add_row(
        {service::to_string(is_arc ? service::CachePolicy::Arc
                                   : service::CachePolicy::Lru),
         Table::num(result->interactive_hit_rate, 3),
         Table::num(result->interactive_p50_latency_s, 5),
         Table::num(result->batch_makespan_s, 4),
         std::to_string(result->cache.evictions),
         std::to_string(result->cache.t2_hits),
         std::to_string(result->cache.b1_ghost_hits +
                        result->cache.b2_ghost_hits),
         Table::num(result->cache.arc_p_bytes, 0)});
  }
  std::cout << table.to_string() << "\n"
            << "interactive demand hit-rate ratio (arc/lru): "
            << Table::num(hit_ratio, 2) << "x; batch makespan ratio (arc/lru): "
            << Table::num(makespan_ratio, 3) << "; pixels "
            << (pixels_identical ? "identical" : "DIFFER") << "\n"
            << (gate_met
                    ? "acceptance: arc >= 1.5x interactive demand hit rate "
                      "under a concurrent scan, batch no worse than 1.05x\n"
                    : "ACCEPTANCE MISSED: arc < 1.5x interactive hit rate, "
                      "batch makespan regressed, or pixels differ\n");
  bench::maybe_print_csv("cache_policies", table);
  bench::write_gate_summary(
      "cache_policies", hit_ratio, 1.5, gate_met,
      {{"live_hit_rate_lru", lru.interactive_hit_rate},
       {"live_hit_rate_arc", arc.interactive_hit_rate},
       {"live_p50_latency_lru_s", lru.interactive_p50_latency_s},
       {"live_p50_latency_arc_s", arc.interactive_p50_latency_s},
       {"batch_makespan_lru_s", lru.batch_makespan_s},
       {"batch_makespan_arc_s", arc.batch_makespan_s},
       {"batch_makespan_ratio", makespan_ratio}});
  bench::write_trace();
  return gate_met ? 0 : 1;
}
