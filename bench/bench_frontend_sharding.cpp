// Sharded-frontend scaling bench: aggregate frames/sec of a
// ServiceFrontend as the shard count grows, on a mixed
// interactive+batch session population (half the sessions orbit
// interactively with frames trickling in, half queue a batch export at
// t=0, each on its own volume).
//
// Shards are whole independent clusters, so this measures how close the
// frontend's placement gets to linear scaling: the acceptance bar is
// >= 1.7x aggregate fps at 2 shards vs 1 on the same workload.
//
// CSV rows carry a leading "shards" column (bench::shards_row) so
// VRMR_CSV_PATH output stays machine-parseable next to the
// single-cluster benches.

#include <string>
#include <vector>

#include "common.hpp"
#include "service/frontend.hpp"
#include "util/stats.hpp"

using namespace vrmr;

namespace {

int frames_per_session() { return bench::fast_mode() ? 6 : 8; }

Int3 sharding_dims() {
  return bench::fast_mode() ? Int3{64, 64, 64} : Int3{128, 128, 128};
}

volren::RenderOptions sharding_options(Int3 dims) {
  volren::RenderOptions options;
  options.image_width = bench::image_size();
  options.image_height = bench::image_size();
  options.transfer = volren::TransferFunction::fire();
  options.distance = 1.2f;
  options.elevation = 0.3f;
  options.cast.decimation = std::max(1, std::max({dims.x, dims.y, dims.z}) / 48);
  return options;
}

struct SweepResult {
  service::FrontendStats stats;
  /// p95 over the pooled per-frame latencies of interactive sessions.
  double p95_interactive = 0.0;
};

/// `sessions` total, alternating Interactive (orbit, trickling
/// arrivals) and Batch (full export at t=0), each on its own volume.
SweepResult run_mixed(int shards, int sessions) {
  const Int3 dims = sharding_dims();
  std::vector<volren::Volume> volumes;
  volumes.reserve(static_cast<std::size_t>(sessions));
  for (int s = 0; s < sessions; ++s)
    volumes.push_back(s % 2 == 0 ? volren::datasets::supernova(dims)
                                 : volren::datasets::skull(dims));

  service::FrontendConfig config;
  config.shards = shards;
  config.gpus_per_shard = 4;
  config.service.policy = service::SchedulingPolicy::RoundRobin;
  service::ServiceFrontend frontend(config);

  const volren::RenderOptions options = sharding_options(dims);
  for (int s = 0; s < sessions; ++s) {
    const bool is_interactive = s % 2 == 0;
    service::Session session = frontend.open_session(
        (is_interactive ? "live" : "batch") + std::to_string(s),
        is_interactive ? service::Priority::Interactive
                       : service::Priority::Batch);
    session.submit_orbit(volumes[static_cast<std::size_t>(s)], options,
                         frames_per_session(), 0.0,
                         is_interactive ? 0.02 : 0.0);
  }

  SweepResult result;
  frontend.drain();
  result.stats = frontend.stats();
  std::vector<double> latencies;
  for (int s = 0; s < frontend.num_shards(); ++s) {
    service::RenderService& backend = frontend.shard(s);
    for (const service::FrameRecord& frame : backend.frames()) {
      if (backend.session_profile(frame.session).priority ==
          service::Priority::Interactive)
        latencies.push_back(frame.latency_s());
    }
  }
  result.p95_interactive = percentile(latencies, 95.0);
  return result;
}

}  // namespace

int main() {
  bench::print_header("bench_frontend_sharding",
                      "sharded serving tier (beyond the paper: ROADMAP "
                      "multi-cluster sharding)");
  std::cout << "volumes " << bench::dims_label(sharding_dims()) << ", "
            << frames_per_session()
            << " frames per session, 4 GPUs per shard, mixed "
               "interactive+batch (alternating)\n\n";

  Table sweep(bench::shards_headers({"sessions", "frames", "makespan", "fps",
                                     "speedup", "p95 live", "hit%", "util%"}));
  double fps_1shard_8sessions = 0.0;
  double fps_2shard_8sessions = 0.0;
  for (int sessions : {4, 8}) {
    double fps_one_shard = 0.0;
    for (int shards : {1, 2, 4}) {
      const SweepResult r = run_mixed(shards, sessions);
      if (shards == 1) fps_one_shard = r.stats.fps;
      if (sessions == 8 && shards == 1) fps_1shard_8sessions = r.stats.fps;
      if (sessions == 8 && shards == 2) fps_2shard_8sessions = r.stats.fps;
      double util = 0.0;
      for (const service::ShardStats& shard : r.stats.shards)
        util += shard.service.cluster_utilization;
      util /= static_cast<double>(r.stats.shards.size());
      sweep.add_row(bench::shards_row(
          shards,
          {std::to_string(sessions), std::to_string(r.stats.frames_total),
           format_seconds(r.stats.makespan_s), Table::num(r.stats.fps, 2),
           Table::num(r.stats.fps / fps_one_shard, 2),
           format_seconds(r.p95_interactive),
           Table::num(100.0 * r.stats.cache_hit_rate, 1),
           Table::num(100.0 * util, 1)}));
    }
  }
  std::cout << sweep.to_string() << "\n";
  bench::maybe_print_csv("frontend_sharding_sweep", sweep);

  const double speedup = fps_2shard_8sessions / fps_1shard_8sessions;
  std::cout << "mixed load, 8 sessions: " << Table::num(fps_1shard_8sessions, 2)
            << " fps on 1 shard -> " << Table::num(fps_2shard_8sessions, 2)
            << " fps on 2 shards (speedup " << Table::num(speedup, 2) << "x; "
            << (speedup >= 1.7 ? "PASS" : "FAIL")
            << " the >=1.7x acceptance bar)\n";
  return speedup >= 1.7 ? 0 : 1;
}
