// Figure 3: per-stage runtime breakdown (Map, Partition + I/O, Sort,
// Reduce) versus GPU count for 128³, 256³, 512³ and 1024³ volumes at
// 512². The paper's qualitative claims to reproduce:
//   * map time scales ~linearly down with GPU count;
//   * communication grows with GPU count, so runtime bottoms out around
//     8 GPUs for volumes up to 512³;
//   * the 1024³ volume keeps improving from 16 to 32 GPUs because the
//     compute saving outweighs the extra communication.

#include "common.hpp"

int main() {
  using namespace vrmr;
  using namespace vrmr::bench;

  print_header("bench_fig3_breakdown", "Fig. 3 (stacked per-stage runtimes)");

  const std::vector<Int3> volumes = {{128, 128, 128}, {256, 256, 256},
                                     {512, 512, 512}, {1024, 1024, 1024}};
  const std::vector<int> gpu_counts = {1, 2, 4, 8, 16, 32};

  Table table({"volume", "gpus", "map_s", "part+io_s", "sort_s", "reduce_s", "total_s",
               "bricks", "frag(M)"});
  for (const Int3 dims : volumes) {
    double best_total = 1e30;
    int best_gpus = 0;
    for (const int gpus : gpu_counts) {
      // The paper's 1024³ series starts at 2 GPUs (one 4 GiB volume
      // cannot fit a single device).
      if (dims.x == 1024 && gpus == 1) continue;
      const volren::RenderResult r = run_point({"skull", dims, gpus});
      const auto& s = r.stats.stage;
      table.add_row({dims_label(dims), std::to_string(gpus), Table::num(s.map_s, 4),
                     Table::num(s.partition_io_s, 4), Table::num(s.sort_s, 4),
                     Table::num(s.reduce_s, 4), Table::num(s.total_s, 4),
                     std::to_string(r.num_bricks),
                     Table::num(static_cast<double>(r.stats.fragments) / 1e6, 2)});
      if (s.total_s < best_total) {
        best_total = s.total_s;
        best_gpus = gpus;
      }
    }
    std::cout << table.to_string();
    maybe_print_csv("fig3_" + dims_label(dims), table);
    std::cout << "-> " << dims_label(dims) << ": best configuration " << best_gpus
              << " GPUs at " << format_seconds(best_total) << "\n\n";
    table = Table({"volume", "gpus", "map_s", "part+io_s", "sort_s", "reduce_s",
                   "total_s", "bricks", "frag(M)"});
  }
  return 0;
}
