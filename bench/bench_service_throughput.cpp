// Serving-throughput bench for the render service (src/service): how
// many frames/sec one simulated cluster sustains as concurrent render
// sessions multiply, and what the per-GPU brick residency cache buys
// for multi-frame sessions (turntable orbits re-stage the same bricks
// every frame without it).
//
// Three parts:
//   1. sessions x GPUs x cache on/off sweep (saturated arrivals);
//   2. out-of-core serving (disk-resident volumes), cache on/off;
//   3. scheduling-policy comparison on a mixed interactive+batch load,
//      with per-session p50/p95/p99 latency.

#include <string>
#include <vector>

#include "common.hpp"
#include "service/render_service.hpp"
#include "util/stats.hpp"

using namespace vrmr;

namespace {

struct WorkloadResult {
  service::ServiceStats stats;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;  // across all frames
};

int frames_per_session() { return bench::fast_mode() ? 6 : 8; }

Int3 service_dims() {
  return bench::fast_mode() ? Int3{96, 96, 96} : Int3{192, 192, 192};
}

volren::RenderOptions service_options(Int3 dims) {
  volren::RenderOptions options;
  options.image_width = bench::image_size();
  options.image_height = bench::image_size();
  options.transfer = volren::TransferFunction::fire();
  options.distance = 1.2f;
  options.elevation = 0.3f;
  // Functional decimation only; the simulated clock still pays for the
  // logical resolution (DESIGN.md §2).
  options.cast.decimation = std::max(1, std::max({dims.x, dims.y, dims.z}) / 48);
  return options;
}

/// One saturated configuration: `sessions` turntable sessions, each
/// orbiting its own volume, all frames queued at t=0.
WorkloadResult run_saturated(int gpus, int sessions, bool cache, bool disk_io,
                             service::SchedulingPolicy policy =
                                 service::SchedulingPolicy::RoundRobin) {
  const Int3 dims = service_dims();
  std::vector<volren::Volume> volumes;
  volumes.reserve(static_cast<std::size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    volumes.push_back(volren::datasets::supernova(dims));
  }

  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(gpus));
  service::ServiceConfig config;
  config.policy = policy;
  config.enable_brick_cache = cache;
  service::RenderService svc(cluster, config);

  volren::RenderOptions options = service_options(dims);
  options.include_disk_io = disk_io;
  for (int s = 0; s < sessions; ++s) {
    service::Session session = svc.open_session("orbit" + std::to_string(s));
    session.submit_orbit(volumes[static_cast<std::size_t>(s)], options,
                         frames_per_session(), 0.0, 0.0);
  }

  WorkloadResult result;
  svc.drain();
  result.stats = svc.stats();
  std::vector<double> latencies;
  for (const service::FrameRecord& f : result.stats.frames)
    latencies.push_back(f.latency_s());
  result.p50 = percentile(latencies, 50.0);
  result.p95 = percentile(latencies, 95.0);
  result.p99 = percentile(latencies, 99.0);
  return result;
}

std::string pct(double x) { return Table::num(100.0 * x, 1); }

}  // namespace

int main() {
  bench::print_header("bench_service_throughput",
                      "serving scenario (beyond the paper: ROADMAP north star)");
  std::cout << "volumes " << bench::dims_label(service_dims()) << ", "
            << frames_per_session() << "-frame orbit per session\n\n";

  // --- part 1: sessions x GPUs x cache -----------------------------------
  Table sweep({"gpus", "sessions", "cache", "frames", "makespan", "fps", "p50",
               "p95", "p99", "hit%", "util%", "h2d saved"});
  WorkloadResult headline_cold, headline_warm;  // gpus=4, sessions=1 cells
  for (int gpus : {4, 8}) {
    for (int sessions : {1, 2, 4, 8}) {
      for (bool cache : {false, true}) {
        const WorkloadResult r = run_saturated(gpus, sessions, cache, false);
        if (gpus == 4 && sessions == 1) (cache ? headline_warm : headline_cold) = r;
        sweep.add_row({std::to_string(gpus), std::to_string(sessions),
                       cache ? "on" : "off", std::to_string(r.stats.frames_total),
                       format_seconds(r.stats.makespan_s),
                       Table::num(r.stats.fps, 2), format_seconds(r.p50),
                       format_seconds(r.p95), format_seconds(r.p99),
                       pct(r.stats.cache_hit_rate),
                       pct(r.stats.cluster_utilization),
                       format_bytes(r.stats.bytes_h2d_saved)});
      }
    }
  }
  std::cout << sweep.to_string() << "\n";
  bench::maybe_print_csv("service_throughput_sweep", sweep);

  // Acceptance demonstration: same-session multi-frame workload must be
  // faster with the brick cache than without.
  std::cout << "single-session orbit on 4 GPUs: "
            << Table::num(headline_cold.stats.fps, 2) << " fps cold -> "
            << Table::num(headline_warm.stats.fps, 2) << " fps warm (speedup "
            << Table::num(headline_warm.stats.fps / headline_cold.stats.fps, 2)
            << "x, hit rate " << pct(headline_warm.stats.cache_hit_rate) << "%)\n\n";

  // --- part 2: out-of-core serving ---------------------------------------
  Table ooc({"gpus", "sessions", "cache", "fps", "p95", "disk read", "hit%"});
  for (bool cache : {false, true}) {
    const WorkloadResult r = run_saturated(4, 4, cache, true);
    std::uint64_t disk_bytes = 0;
    for (const service::FrameRecord& f : r.stats.frames)
      disk_bytes += f.stats.bytes_disk;
    ooc.add_row({"4", "4", cache ? "on" : "off", Table::num(r.stats.fps, 2),
                 format_seconds(r.p95), format_bytes(disk_bytes),
                 pct(r.stats.cache_hit_rate)});
  }
  std::cout << "out-of-core serving (volumes staged from disk):\n"
            << ooc.to_string() << "\n";
  bench::maybe_print_csv("service_out_of_core", ooc);

  // --- part 3: scheduling policies on a mixed workload --------------------
  // One interactive orbit session (frames trickle in) vs one batch
  // animation session (all frames at t=0). Priority admission serves
  // the Interactive class first under every policy, so the interactive
  // tail stays bounded by one batch frame; the policies still differ in
  // how they order the batch backlog and the interactive bursts.
  Table policies({"policy", "session", "frames", "p50", "p95", "p99", "fps"});
  for (const service::SchedulingPolicy policy :
       {service::SchedulingPolicy::Fifo, service::SchedulingPolicy::RoundRobin,
        service::SchedulingPolicy::ShortestJobFirst}) {
    const Int3 dims = service_dims();
    // The interactive session previews a smaller volume, so the SJF
    // cost model can rank its frames ahead of the batch export.
    const Int3 preview{dims.x / 2, dims.y / 2, dims.z / 2};
    const volren::Volume interactive_volume = volren::datasets::skull(preview);
    const volren::Volume batch_volume = volren::datasets::supernova(dims);

    sim::Engine engine;
    cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(4));
    service::ServiceConfig config;
    config.policy = policy;
    service::RenderService svc(cluster, config);

    volren::RenderOptions options = service_options(dims);
    service::Session batch =
        svc.open_session("batch", service::Priority::Batch);
    batch.submit_orbit(batch_volume, options, 2 * frames_per_session(), 0.0,
                       0.0);
    service::Session interactive =
        svc.open_session("interactive", service::Priority::Interactive);
    interactive.submit_orbit(interactive_volume, options, frames_per_session(),
                             0.0, 0.05);

    svc.drain();
    const service::ServiceStats stats = svc.stats();
    for (const service::SessionStats& session : stats.sessions) {
      policies.add_row({service::to_string(policy), session.name,
                        std::to_string(session.frames),
                        format_seconds(session.p50_latency_s),
                        format_seconds(session.p95_latency_s),
                        format_seconds(session.p99_latency_s),
                        Table::num(session.fps, 2)});
    }
  }
  std::cout << "mixed interactive+batch workload, per-session latency:\n"
            << policies.to_string() << "\n";
  bench::maybe_print_csv("service_policies", policies);
  return 0;
}
