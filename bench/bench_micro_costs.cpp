// §3 micro-cost anchors, the paper's calibration points:
//   * "loading a 64³ block from disk takes approximately 20 ms"
//   * "Transfering that brick to the GPU takes less than 0.2 ms
//      (less than 1% overhead)"
//   * "Transmitting final ray fragments from the GPU to the CPU also
//      requires very little time (empirically found to be less than 2 ms)"
// These are measured on the simulated resources, not merely recomputed
// from the model constants: each row drives the actual DES path.

#include <iostream>

#include "common.hpp"
#include "io/disk.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

int main() {
  using namespace vrmr;
  using namespace vrmr::bench;

  print_header("bench_micro_costs", "§3 measured cost anchors");

  const cluster::HardwareModel hw = cluster::HardwareModel::ncsa_accelerator_cluster();
  const std::uint64_t brick64 = 64ULL * 64 * 64 * sizeof(float);  // 1 MiB

  Table table({"operation", "bytes", "measured", "paper", "pass"});

  // Disk load of a 64^3 brick through the simulated disk.
  {
    sim::Engine engine;
    io::VirtualDisk disk(engine, hw.disk, "disk");
    double done = 0.0;
    engine.schedule_at(0.0, [&] { disk.read(brick64, [&] { done = engine.now(); }); });
    engine.run();
    table.add_row({"disk read 64^3 brick", format_bytes(brick64), format_seconds(done),
                   "~20 ms", (done > 0.010 && done < 0.030) ? "yes" : "NO"});
  }

  // H2D of the same brick over the node's PCIe link (synchronous, so it
  // also occupies the GPU stream — both are charged).
  {
    sim::Engine engine;
    sim::Resource pcie(engine, "pcie");
    sim::Resource gpu(engine, "gpu");
    double done = 0.0;
    engine.schedule_at(0.0, [&] {
      const std::array<sim::Resource*, 2> rs = {&pcie, &gpu};
      sim::Resource::acquire_multi(rs, hw.pcie.transfer_time(brick64),
                                   [&](sim::SimTime, sim::SimTime t) { done = t; });
    });
    engine.run();
    table.add_row({"H2D 64^3 brick", format_bytes(brick64), format_seconds(done),
                   "<0.2 ms", done < 0.2e-3 ? "yes" : "NO"});
    const double overhead_vs_disk = done / hw.disk.read_time(brick64);
    table.add_row({"  as fraction of disk load", "-",
                   Table::num(100.0 * overhead_vs_disk, 2) + " %", "<1 %",
                   overhead_vs_disk < 0.01 ? "yes" : "NO"});
  }

  // D2H of a full image's worth of ray fragments (512² pixels, ~2
  // bricks deep, 28 B per pair).
  {
    const std::uint64_t fragment_bytes = 512ULL * 512 * 28;  // one image of pairs
    sim::Engine engine;
    sim::Resource pcie(engine, "pcie");
    double done = 0.0;
    engine.schedule_at(0.0, [&] {
      pcie.acquire(hw.pcie.transfer_time(fragment_bytes),
                   [&](sim::SimTime, sim::SimTime t) { done = t; });
    });
    engine.run();
    table.add_row({"D2H ray fragments (512^2 pairs)", format_bytes(fragment_bytes),
                   format_seconds(done), "<2 ms", done < 2e-3 ? "yes" : "NO"});
  }

  // Network: one fragment message between nodes (for scale).
  {
    sim::Engine engine;
    net::Fabric fabric(engine, hw.fabric, 2);
    const std::uint64_t msg = 512ULL * 512 / 8 * 28;  // one reducer's share at 8 GPUs
    double done = 0.0;
    engine.schedule_at(0.0, [&] { fabric.send(0, 1, msg, [&] { done = engine.now(); }); });
    engine.run();
    table.add_row({"fabric send (1/8 image of pairs)", format_bytes(msg),
                   format_seconds(done), "-", "-"});
  }

  std::cout << table.to_string();
  return 0;
}
