// Preemption-latency bench: interactive queue-wait percentiles
// (p50/p95/p99) behind a growing batch backlog, monolithic whole-frame
// execution vs. the brick-granular quantum pipeline.
//
// The paper's execution model is one indivisible MapReduce job per
// frame: an interactive frame arriving mid-export waits for the whole
// running batch frame. The quantum scheduler preempts at the next
// brick boundary instead, so the interactive wait is bounded by one
// stage+map quantum — this bench quantifies that gap (the acceptance
// bar is >= 2x lower interactive p95 under the quantum pipeline) and
// reports time-to-first-tile, the latency win of streamed delivery.
//
// Scale: the batch session exports a supernova volume with fine bricks
// (8 per GPU — the paper's brick-size knob repurposed as a
// preemption-granularity knob); the interactive session orbits a skull
// with frames trickling in while batch frames are mid-render.

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "common.hpp"
#include "service/render_service.hpp"
#include "util/stats.hpp"

using namespace vrmr;

namespace {

Int3 batch_dims() { return bench::fast_mode() ? Int3{48, 48, 48} : Int3{96, 96, 96}; }
Int3 live_dims() { return bench::fast_mode() ? Int3{32, 32, 32} : Int3{64, 64, 64}; }
int interactive_frames() { return bench::fast_mode() ? 8 : 12; }

volren::RenderOptions options_for(Int3 dims) {
  volren::RenderOptions options;
  options.image_width = bench::image_size();
  options.image_height = bench::image_size();
  options.cast.decimation = bench::decimation_for(dims);
  options.distance = 1.2f;
  options.elevation = 0.3f;
  return options;
}

struct RunResult {
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;   // interactive queue wait
  double mean_first_tile_gap = 0.0;          // frame finish - first tile
  double batch_frame_s = 0.0;                // max batch service time
  double makespan_s = 0.0;
  std::uint64_t preemptions = 0;
};

RunResult run(service::PipelineMode mode, int backlog, int gpus) {
  const volren::Volume batch_volume = volren::datasets::supernova(batch_dims());
  const volren::Volume live_volume = volren::datasets::skull(live_dims());

  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(gpus));
  service::ServiceConfig config;
  config.pipeline = mode;
  // Pin the paper's global barriers: this gate measures brick-boundary
  // preemption in isolation. The serving default (PerReducer) frees
  // lanes earlier on its own, which would pad the p95 win and could
  // mask a preemption regression; bench_time_to_first_pixel owns the
  // barrier-mode comparison.
  config.barrier_mode = mr::BarrierMode::Global;
  service::RenderService service(cluster, config);
  // VRMR_TRACE: each (pipeline, backlog) run is its own trace process
  // (independent simulated timelines).
  if (obs::TraceRecorder* recorder = bench::trace_recorder()) {
    static int next_pid = 0;
    service.set_trace(recorder, next_pid);
    recorder->set_process_name(next_pid, std::string(to_string(mode)) +
                                             " backlog " +
                                             std::to_string(backlog));
    ++next_pid;
  }

  service::Session batch = service.open_session("batch", service::Priority::Batch);
  service::Session live =
      service.open_session("live", service::Priority::Interactive);

  volren::RenderOptions batch_options = options_for(batch_dims());
  batch_options.transfer = volren::TransferFunction::fire();
  batch_options.target_bricks = 8 * gpus;  // fine quanta
  for (int f = 0; f < backlog; ++f) {
    service::RenderRequest request;
    request.volume = &batch_volume;
    request.options = batch_options;
    request.arrival_s = 0.0;
    batch.submit(request);
  }
  // Interactive frames trickle in while the backlog renders. Scanline
  // bands (vs. the paper's balanced pixel round-robin) skew reducer
  // loads so the first-tile column measures real streamed-delivery
  // headroom instead of a structurally-zero gap.
  volren::RenderOptions live_options = options_for(live_dims());
  live_options.partition = mr::PartitionStrategy::Striped;
  live.submit_orbit(live_volume, live_options, interactive_frames(), 0.003,
                    0.006);
  service.drain();

  const service::ServiceStats stats = service.stats();
  RunResult result;
  std::vector<double> waits;
  for (const service::FrameRecord& frame : stats.frames) {
    if (frame.session == 0) {
      result.batch_frame_s = std::max(result.batch_frame_s, frame.service_s());
    } else {
      waits.push_back(frame.queue_wait_s());
      result.mean_first_tile_gap += frame.finish_s - frame.first_tile_s;
    }
  }
  result.p50 = percentile(waits, 50.0);
  result.p95 = percentile(waits, 95.0);
  result.p99 = percentile(waits, 99.0);
  result.mean_first_tile_gap /= static_cast<double>(waits.size());
  result.makespan_s = stats.makespan_s;
  result.preemptions = stats.preemptions;
  return result;
}

}  // namespace

int main() {
  bench::print_header("bench_preemption_latency",
                      "interactive latency vs. batch backlog (quantum pipeline)");

  const int gpus = 4;
  const std::vector<int> backlogs = bench::fast_mode()
                                        ? std::vector<int>{4, 12, 24}
                                        : std::vector<int>{8, 24, 50};

  Table table({"backlog", "pipeline", "wait_p50_s", "wait_p95_s", "wait_p99_s",
               "first_tile_gap_s", "batch_frame_s", "makespan_s", "preemptions",
               "p95_speedup"});
  bool bar_met = true;
  RunResult deepest_mono, deepest_quantum;
  for (const int backlog : backlogs) {
    const RunResult mono = run(service::PipelineMode::Monolithic, backlog, gpus);
    const RunResult quantum = run(service::PipelineMode::Quantum, backlog, gpus);
    deepest_mono = mono;
    deepest_quantum = quantum;
    const double speedup = quantum.p95 > 0.0 ? mono.p95 / quantum.p95
                                             : std::numeric_limits<double>::infinity();
    bar_met = bar_met && speedup >= 2.0;
    table.add_row({std::to_string(backlog), "monolithic", Table::num(mono.p50, 5),
                   Table::num(mono.p95, 5), Table::num(mono.p99, 5),
                   Table::num(mono.mean_first_tile_gap, 5),
                   Table::num(mono.batch_frame_s, 5), Table::num(mono.makespan_s, 4),
                   std::to_string(mono.preemptions), ""});
    table.add_row({std::to_string(backlog), "quantum", Table::num(quantum.p50, 5),
                   Table::num(quantum.p95, 5), Table::num(quantum.p99, 5),
                   Table::num(quantum.mean_first_tile_gap, 5),
                   Table::num(quantum.batch_frame_s, 5),
                   Table::num(quantum.makespan_s, 4),
                   std::to_string(quantum.preemptions),
                   Table::num(speedup, 2) + "x"});
  }
  std::cout << table.to_string() << "\n"
            << (bar_met ? "acceptance: interactive p95 >= 2x better under the "
                          "quantum pipeline at every backlog depth\n"
                        : "ACCEPTANCE MISSED: quantum p95 < 2x better at some "
                          "backlog depth\n");
  bench::maybe_print_csv("preemption_latency", table);
  // Machine-readable trajectory point: the deepest backlog's numbers.
  // Zero quantum p95 is a perfect run: serialize like the gate treats
  // it (infinite speedup -> null in the JSON, not 0.0).
  const double deepest_speedup =
      deepest_quantum.p95 > 0.0 ? deepest_mono.p95 / deepest_quantum.p95
                                : std::numeric_limits<double>::infinity();
  bench::write_gate_summary(
      "preemption", deepest_speedup, 2.0, bar_met,
      {{"backlog", static_cast<double>(backlogs.back())},
       {"wait_p95_monolithic_s", deepest_mono.p95},
       {"wait_p95_quantum_s", deepest_quantum.p95},
       {"first_tile_gap_quantum_s", deepest_quantum.mean_first_tile_gap}});
  bench::write_trace();
  return bar_met ? 0 : 1;
}
