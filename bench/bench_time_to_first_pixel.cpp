// Time-to-first-pixel bench: per-reducer dataflow readiness
// (mr::BarrierMode::PerReducer) vs the paper's frame-global barriers
// (Global), measured at the plan level on a single frame.
//
// Under Global barriers a frame's first streamed tile waits for every
// chunk's partitions and sends to drain AND for every reducer's sort —
// the slowest lane gates the fastest tile. PerReducer readiness issues
// each reducer's sort the moment its own inbox completes and chains
// its reduce immediately after, so the first tile's critical path is
// its own dataflow only. This bench quantifies that gap on the paper's
// communication-bound configuration (§6.3: at 16 GPUs the map-phase
// communication dwarfs compute), with Striped partitioning so reducer
// loads are realistically skewed.
//
// Acceptance gate (exit code, wired into Release CI): PerReducer mode
// shows >= 1.3x lower first-tile latency than Global at the headline
// scale, with pixel-identical frames in both modes. A BENCH_ttfp.json
// summary records the headline metrics for cross-PR trajectory.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common.hpp"
#include "volren/image.hpp"

using namespace vrmr;

namespace {

struct ModeResult {
  double first_tile_s = 0.0;
  double last_tile_s = 0.0;
  double runtime_s = 0.0;
  volren::Image image;
  mr::JobStats stats;
};

struct Scene {
  std::string dataset;
  Int3 dims;
  int gpus = 0;
  bool headline = false;  // the acceptance-gated row
};

ModeResult run_mode(mr::BarrierMode mode, const Scene& scene,
                    bool footprints = true) {
  const volren::Volume volume =
      volren::datasets::by_name(scene.dataset, scene.dims);
  sim::Engine engine;
  cluster::Cluster cluster(engine,
                           cluster::ClusterConfig::with_total_gpus(scene.gpus));

  volren::RenderOptions options;
  options.image_width = bench::image_size();
  options.image_height = bench::image_size();
  options.cast.decimation = bench::decimation_for(scene.dims);
  options.distance = 1.2f;
  options.elevation = 0.3f;
  options.partition = mr::PartitionStrategy::Striped;
  options.barrier_mode = mode;
  options.screen_footprints = footprints;
  // VRMR_TRACE: each plan-level run records as its own trace process
  // (runs use independent simulated timelines).
  if (obs::TraceRecorder* recorder = bench::trace_recorder()) {
    static int next_pid = 0;
    options.trace.recorder = recorder;
    options.trace.pid = next_pid++;
    recorder->set_process_name(
        options.trace.pid,
        scene.dataset + " " + to_string(mode) +
            (footprints ? "" : " no-footprints"));
  }

  const volren::BrickLayout layout =
      volren::choose_layout(volume, options, scene.gpus);
  auto frame =
      volren::plan_frame(cluster, volume, options, mr::StagingHook{}, layout);
  const mr::JobStats stats = frame->plan().run_to_completion();

  ModeResult result;
  // First tile = first tile with contributing mappers: a stripe no
  // brick projects into is background known before any map quantum
  // (with footprints it finishes at ~t0), which would make the TTFP
  // ratio measure culling instead of pixel latency.
  result.first_tile_s = std::numeric_limits<double>::infinity();
  result.last_tile_s = 0.0;
  for (int r = 0; r < frame->num_tiles(); ++r) {
    const double t = frame->plan().tile_finish_s(r);
    if (frame->plan().reducer_contributors(r) > 0) {
      result.first_tile_s = std::min(result.first_tile_s, t);
    }
    result.last_tile_s = std::max(result.last_tile_s, t);
  }
  if (!std::isfinite(result.first_tile_s)) {  // fully culled frame
    result.first_tile_s = result.last_tile_s;
  }
  result.runtime_s = stats.runtime_s;
  result.stats = stats;
  result.image = frame->finish().image;
  return result;
}

}  // namespace

int main() {
  bench::print_header("bench_time_to_first_pixel",
                      "per-reducer readiness vs global barriers (TTFP)");

  // The headline row is the paper's communication-bound point (the
  // Fig. 3 regime where the per-message cost of direct-send's
  // all-to-all dominates at high GPU counts): there the post-map tail
  // — send drain plus the frame-global sort barrier — is the dominant
  // share of first-tile latency, and dissolving the barriers pays
  // directly. The compute-bound rows (big volume, fewer GPUs) show the
  // win shrinking as map compute grows to dominate TTFP.
  std::vector<Scene> scenes;
  if (bench::fast_mode()) {
    scenes = {{"skull", {128, 128, 128}, 8, false},
              {"supernova", {256, 256, 256}, 16, true}};
  } else {
    scenes = {{"skull", {256, 256, 256}, 8, false},
              {"supernova", {256, 256, 256}, 16, true},
              {"supernova", {1024, 1024, 1024}, 16, false}};
  }

  Table table({"dataset", "dims", "gpus", "barrier", "first_tile_s",
               "last_tile_s", "spread_s", "runtime_s", "ttfp_speedup",
               "pixels"});
  bool gate_met = true;
  double headline_speedup = 0.0, headline_global = 0.0, headline_chained = 0.0;
  double headline_spread_global = 0.0, headline_spread_chained = 0.0;
  for (const Scene& scene : scenes) {
    const ModeResult global = run_mode(mr::BarrierMode::Global, scene);
    const ModeResult chained = run_mode(mr::BarrierMode::PerReducer, scene);
    const volren::ImageDiff diff = volren::compare_images(global.image, chained.image);
    const bool identical = diff.max_abs == 0.0;
    const double speedup =
        chained.first_tile_s > 0.0 ? global.first_tile_s / chained.first_tile_s
                                   : 0.0;
    if (scene.headline) {
      gate_met = gate_met && identical && speedup >= 1.3;
      headline_speedup = speedup;
      headline_global = global.first_tile_s;
      headline_chained = chained.first_tile_s;
      headline_spread_global = global.last_tile_s - global.first_tile_s;
      headline_spread_chained = chained.last_tile_s - chained.first_tile_s;
      // Per-(mapper, reducer) final-flush readiness rides on screen
      // footprints: each pair's outbox flushes at its last contributing
      // brick's partition instead of the mapper's last brick overall.
      // That must never regress TTFP (same flush count per pair, each
      // at an earlier-or-equal time) — and pixels must be identical
      // (footprints are exactly the kernel's launch rects).
      const ModeResult no_fp =
          run_mode(mr::BarrierMode::PerReducer, scene, /*footprints=*/false);
      const volren::ImageDiff fp_diff =
          volren::compare_images(no_fp.image, chained.image);
      const bool fp_ok = fp_diff.max_abs == 0.0 &&
                         chained.first_tile_s <= no_fp.first_tile_s;
      if (!fp_ok) {
        std::cout << "ACCEPTANCE MISSED: screen footprints regressed TTFP ("
                  << chained.first_tile_s << "s with vs " << no_fp.first_tile_s
                  << "s without) or changed pixels\n";
      }
      gate_met = gate_met && fp_ok;
    } else {
      gate_met = gate_met && identical;
    }
    for (const auto* run : {&global, &chained}) {
      const bool is_global = run == &global;
      table.add_row(
          {scene.dataset, bench::dims_label(scene.dims),
           std::to_string(scene.gpus), is_global ? "global" : "per-reducer",
           Table::num(run->first_tile_s, 5), Table::num(run->last_tile_s, 5),
           Table::num(run->last_tile_s - run->first_tile_s, 5),
           Table::num(run->runtime_s, 5),
           is_global ? "" : Table::num(speedup, 2) + "x" +
                                (scene.headline ? " <- gate" : ""),
           identical ? "identical" : "DIFFER"});
    }
  }

  std::cout << table.to_string() << "\n"
            << (gate_met
                    ? "acceptance: per-reducer readiness cuts first-tile "
                      "latency >= 1.3x at the headline scale, pixels identical\n"
                    : "ACCEPTANCE MISSED: < 1.3x first-tile speedup at the "
                      "headline scale (or pixels differ)\n");
  bench::maybe_print_csv("time_to_first_pixel", table);
  bench::write_gate_summary(
      "ttfp", headline_speedup, 1.3, gate_met,
      {{"first_tile_global_s", headline_global},
       {"first_tile_per_reducer_s", headline_chained},
       {"tile_spread_global_s", headline_spread_global},
       {"tile_spread_per_reducer_s", headline_spread_chained}});
  bench::write_trace();
  return gate_met ? 0 : 1;
}
