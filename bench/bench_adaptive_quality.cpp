// Adaptive quality A/B: an overloaded shard serving an interactive
// orbit against a batch scan backlog, SLO controller on vs off.
//
// The scenario the ROADMAP's adaptive-quality item describes: a
// scientist orbits a dataset at a fixed cadence while batch export
// traffic keeps every lane busy. Full-quality interactive frames cost
// more than the cadence budget, so without intervention the orbit
// session falls behind its own arrivals and latency grows without
// bound. With the SLO controller armed (ServiceConfig::
// interactive_slo_s), admission serves each interactive frame from a
// pyramid level whose calibrated cost estimate fits the remaining
// deadline budget, and enqueues a full-quality refinement for the same
// view behind it (FrameRecord::refines_frame_id).
//
// The SLO itself is not a magic constant: a calibration phase probes
// the actual served latency of one contention-free frame at level 0
// and at the deepest degradation level, and the bench pins the SLO at
// their geometric mean — strictly between "full quality fits" (it
// must not) and "coarse quality fits" (it must), at either VRMR_FAST
// or paper scale. The brick cache is off throughout: every frame
// stages what it renders, so the staging-bytes criterion measures
// brick sizes rather than residency luck (bench_cache_policies owns
// the residency story), and both A/B runs see identical per-frame
// costs.
//
// Each run opens with a short warmup orbit (excluded from the gate):
// the controller's admission decisions ride the online cost
// calibration (SessionStats::cost_scale), and judging the steady state
// on the first-ever frames would measure the calibrator's cold start
// instead of the controller.
//
// Acceptance (exit code gates Release CI):
//   * interactive preview p95 latency <= SLO with the controller on,
//     with every measured preview served degraded and later refined at
//     full quality;
//   * the same workload with the controller off blows the SLO at p95;
//   * preview staging traffic (bytes H2D across measured previews) is
//     <= 1/4 of what the controller-off run stages for the same frames
//     — coarse bricks are small, that is the point of them.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "service/render_service.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

using namespace vrmr;

namespace {

Int3 live_dims() { return bench::fast_mode() ? Int3{64, 64, 64} : Int3{128, 128, 128}; }
Int3 scan_dims() { return bench::fast_mode() ? Int3{64, 64, 64} : Int3{128, 128, 128}; }
int live_brick() { return bench::fast_mode() ? 16 : 32; }
int live_frames() { return bench::fast_mode() ? 12 : 16; }
int warmup_frames() { return 3; }
int scan_frames() { return bench::fast_mode() ? 6 : 8; }
constexpr int kMaxDegradeLod = 2;

volren::RenderOptions live_options() {
  volren::RenderOptions options;
  options.image_width = bench::image_size();
  options.image_height = bench::image_size();
  options.cast.decimation = bench::decimation_for(live_dims());
  options.brick_size = live_brick();
  options.transfer = volren::TransferFunction::bone();
  options.distance = 1.2f;
  options.elevation = 0.3f;
  return options;
}

volren::RenderOptions scan_options(int gpus) {
  volren::RenderOptions options;
  options.image_width = bench::image_size();
  options.image_height = bench::image_size();
  options.cast.decimation = bench::decimation_for(scan_dims());
  options.transfer = volren::TransferFunction::fire();
  // Fine bricks keep the batch preemption grain (one brick quantum)
  // small relative to a coarse interactive frame.
  options.target_bricks = 8 * gpus;
  return options;
}

service::ServiceConfig base_config() {
  service::ServiceConfig config;
  config.enable_brick_cache = false;  // stage-per-frame; see header
  config.max_degrade_lod = kMaxDegradeLod;
  return config;
}

/// Served latency of ONE contention-free frame at pyramid level `lod`
/// (via the request-side floor, no SLO controller): the pure service
/// time the SLO is calibrated against.
double probe_latency_s(const volren::Volume& volume, int lod, int gpus) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(gpus));
  service::RenderService service(cluster, base_config());
  service::Session session =
      service.open_session("probe", service::Priority::Interactive);
  service::RenderRequest request;
  request.volume = &volume;
  request.options = live_options();
  request.options.max_lod = lod;
  session.submit(request);
  service.drain();
  const service::FrameRecord& record = service.frames().front();
  VRMR_CHECK_MSG(record.lod == lod, "probe expected to serve level "
                                        << lod << ", got " << record.lod);
  return record.latency_s();
}

struct RunResult {
  double p95_latency_s = 0.0;
  double max_latency_s = 0.0;
  std::uint64_t preview_bytes_h2d = 0;
  int previews_degraded = 0;    // measured previews served above level 0
  std::uint64_t frames_degraded = 0;      // run-wide (includes warmup)
  std::uint64_t refinements_served = 0;   // run-wide
  double makespan_s = 0.0;
};

RunResult run(bool controller_on, double slo_s, double warmup_spacing_s,
              int gpus, const volren::Volume& live_volume,
              const std::vector<volren::Volume>& scan_volumes) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(gpus));
  service::ServiceConfig config = base_config();
  config.interactive_slo_s = controller_on ? slo_s : 0.0;
  service::RenderService service(cluster, config);
  if (obs::TraceRecorder* recorder = bench::trace_recorder()) {
    static int next_pid = 0;
    service.set_trace(recorder, next_pid);
    recorder->set_process_name(next_pid, controller_on ? "slo controller on"
                                                       : "slo controller off");
    ++next_pid;
  }

  service::Session live =
      service.open_session("orbit", service::Priority::Interactive);
  service::Session batch =
      service.open_session("export", service::Priority::Batch);

  const int total_live = warmup_frames() + live_frames();
  const double measure_start_s =
      warmup_spacing_s * static_cast<double>(warmup_frames());
  std::set<std::uint64_t> measured;
  for (int f = 0; f < total_live; ++f) {
    service::RenderRequest request;
    request.volume = &live_volume;
    request.options = live_options();
    request.options.azimuth =
        6.2831853f * static_cast<float>(f) / static_cast<float>(total_live);
    // Warmup views arrive at a relaxed spacing (calibration settles);
    // then the scientist's cadence equals the SLO: each view arrives
    // one deadline after the previous. A backend that meets the SLO
    // keeps up; one that does not falls further behind every frame.
    const int m = f - warmup_frames();
    request.arrival_s = m < 0 ? warmup_spacing_s * static_cast<double>(f)
                              : measure_start_s + slo_s * static_cast<double>(m);
    const std::uint64_t id = live.submit(request);
    if (m >= 0) measured.insert(id);
  }
  // The overload: a batch export backlog, all arrived at t=0, that
  // keeps every lane busy whenever the orbit session is idle.
  for (const volren::Volume& volume : scan_volumes) {
    service::RenderRequest request;
    request.volume = &volume;
    request.options = scan_options(gpus);
    batch.submit(request);
  }
  service.drain();

  const service::ServiceStats stats = service.stats();
  RunResult result;
  result.frames_degraded = stats.frames_degraded;
  result.refinements_served = stats.refinements_served;
  result.makespan_s = stats.makespan_s;
  std::vector<double> latencies;
  for (const service::FrameRecord& frame : service.frames()) {
    // Measured interactive previews only: refinements deliver on the
    // client session but link back via refines_frame_id.
    if (frame.session != 0 || frame.refines_frame_id >= 0) continue;
    if (measured.find(frame.frame_id) == measured.end()) continue;
    latencies.push_back(frame.latency_s());
    result.preview_bytes_h2d += frame.stats.bytes_h2d;
    if (frame.lod > 0) ++result.previews_degraded;
  }
  VRMR_CHECK_MSG(static_cast<int>(latencies.size()) == live_frames(),
                 "expected " << live_frames() << " measured previews, got "
                             << latencies.size());
  result.p95_latency_s = percentile(latencies, 95.0);
  result.max_latency_s = *std::max_element(latencies.begin(), latencies.end());
  return result;
}

}  // namespace

int main() {
  bench::print_header("bench_adaptive_quality",
                      "SLO-driven progressive refinement (controller A/B)");

  const int gpus = 2;
  const volren::Volume live_volume = volren::datasets::skull(live_dims());
  std::vector<volren::Volume> scan_volumes;
  scan_volumes.reserve(static_cast<std::size_t>(scan_frames()));
  for (int f = 0; f < scan_frames(); ++f) {
    scan_volumes.push_back(volren::datasets::supernova(scan_dims()));
  }

  // Calibrate the SLO from what this machine-independent simulated
  // cluster actually does: strictly between the coarse and full
  // served latencies (geometric mean), so "full blows it, coarse
  // meets it" is a property of the controller, not of a constant.
  const double full_s = probe_latency_s(live_volume, 0, gpus);
  const double coarse_s = probe_latency_s(live_volume, kMaxDegradeLod, gpus);
  VRMR_CHECK_MSG(full_s > 1.5 * coarse_s,
                 "degradation ladder too flat to separate SLO outcomes (L0="
                     << full_s << "s, L" << kMaxDegradeLod << "=" << coarse_s
                     << "s)");
  const double slo_s = std::sqrt(full_s * coarse_s);
  const double warmup_spacing_s = 3.0 * full_s;

  const RunResult off =
      run(false, slo_s, warmup_spacing_s, gpus, live_volume, scan_volumes);
  const RunResult on =
      run(true, slo_s, warmup_spacing_s, gpus, live_volume, scan_volumes);

  const bool slo_met = on.p95_latency_s <= slo_s;
  const bool slo_blown_without = off.p95_latency_s > slo_s;
  const bool refined = on.previews_degraded == live_frames() &&
                       on.refinements_served == on.frames_degraded &&
                       on.frames_degraded > 0 && off.frames_degraded == 0;
  const double bytes_ratio =
      off.preview_bytes_h2d > 0
          ? static_cast<double>(on.preview_bytes_h2d) /
                static_cast<double>(off.preview_bytes_h2d)
          : std::numeric_limits<double>::infinity();
  const bool coarse_bytes_small = bytes_ratio <= 0.25;
  const bool gate_met =
      slo_met && slo_blown_without && refined && coarse_bytes_small;
  const double p95_ratio = on.p95_latency_s > 0.0
                               ? off.p95_latency_s / on.p95_latency_s
                               : std::numeric_limits<double>::infinity();

  Table table({"controller", "p95_latency_s", "max_latency_s", "slo_s",
               "degraded", "refined", "preview_bytes_h2d", "makespan_s"});
  for (const auto* result : {&off, &on}) {
    table.add_row({result == &on ? "on" : "off",
                   Table::num(result->p95_latency_s, 5),
                   Table::num(result->max_latency_s, 5), Table::num(slo_s, 5),
                   std::to_string(result->frames_degraded),
                   std::to_string(result->refinements_served),
                   std::to_string(result->preview_bytes_h2d),
                   Table::num(result->makespan_s, 4)});
  }
  std::cout << table.to_string() << "\n"
            << "probed latencies: L0 " << Table::num(full_s, 5) << "s, L"
            << kMaxDegradeLod << " " << Table::num(coarse_s, 5)
            << "s; slo (geomean) " << Table::num(slo_s, 5) << "s\n"
            << "interactive p95 ratio (off/on): " << Table::num(p95_ratio, 2)
            << "x; preview staging ratio (on/off): "
            << Table::num(bytes_ratio, 4) << "\n"
            << (gate_met
                    ? "acceptance: p95 <= slo with the controller, blown "
                      "without, every preview refined, coarse staging <= 1/4\n"
                    : "ACCEPTANCE MISSED: slo not met/not blown, refinements "
                      "missing, or coarse staging too heavy\n");
  bench::maybe_print_csv("adaptive_quality", table);
  bench::write_gate_summary(
      "quality", p95_ratio, 1.0, gate_met,
      {{"slo_s", slo_s},
       {"probe_full_s", full_s},
       {"probe_coarse_s", coarse_s},
       {"p95_on_s", on.p95_latency_s},
       {"p95_off_s", off.p95_latency_s},
       {"max_on_s", on.max_latency_s},
       {"frames_degraded", static_cast<double>(on.frames_degraded)},
       {"refinements_served", static_cast<double>(on.refinements_served)},
       {"preview_bytes_on", static_cast<double>(on.preview_bytes_h2d)},
       {"preview_bytes_off", static_cast<double>(off.preview_bytes_h2d)},
       {"preview_bytes_ratio", bytes_ratio}});
  bench::write_trace();
  return gate_met ? 0 : 1;
}
