// §6.3 bottleneck analysis: "a 1024³ volume ... across 8 GPUs requires
// 515 ms of communication and 503 ms of computation. If we increase
// this to 16 GPUs, the communication time raises ... and the
// computation decreases to 97 ms" — computation stops being the
// bottleneck. This bench reproduces that comparison and the
// speed-of-light table the argument rests on.

#include "common.hpp"

#include "mr/analysis.hpp"

int main() {
  using namespace vrmr;
  using namespace vrmr::bench;

  print_header("bench_bottleneck", "§6.3 (communication vs computation, speed of light)");

  const Int3 dims{1024, 1024, 1024};
  Table table({"gpus", "compute_s (map)", "comm_s (part+io)", "ratio", "paper compute",
               "paper comm"});
  struct PaperPoint {
    int gpus;
    const char* compute;
    const char* comm;
  };
  const std::vector<PaperPoint> paper = {{8, "0.503", "0.515"}, {16, "0.097", ">1.0*"}};

  for (const PaperPoint& p : paper) {
    const volren::RenderResult r = run_point({"skull", dims, p.gpus});
    const auto& s = r.stats.stage;
    table.add_row({std::to_string(p.gpus), Table::num(s.map_s, 3),
                   Table::num(s.partition_io_s, 3),
                   Table::num(s.partition_io_s / std::max(1e-12, s.map_s), 2),
                   p.compute, p.comm});

    if (p.gpus == 16) {
      // Speed-of-light decomposition at the paper's second data point.
      const mr::SpeedOfLight sol =
          speed_of_light(r.stats, cluster::ClusterConfig::with_total_gpus(p.gpus));
      Table light({"activity", "floor_s", "note"});
      light.add_row({"map compute", Table::num(sol.map_compute_s, 4),
                     "samples / aggregate GPU rate"});
      light.add_row({"H2D staging", Table::num(sol.h2d_s, 4), "volume bytes / PCIe"});
      light.add_row({"D2H fragments", Table::num(sol.d2h_s, 4), ""});
      light.add_row({"network", Table::num(sol.net_s, 4), "inter-node fragment bytes"});
      light.add_row({"sort", Table::num(sol.sort_s, 4), "θ(n) counting sort"});
      light.add_row({"reduce", Table::num(sol.reduce_s, 4), "depth sort + composite"});
      light.add_row({"pipelined bound", Table::num(sol.pipelined_bound_s, 4),
                     "max of the above"});
      light.add_row({"achieved", Table::num(r.stats.runtime_s, 4),
                     "efficiency " + Table::num(sol.efficiency(r.stats.runtime_s), 2)});
      std::cout << "speed-of-light at 16 GPUs (disk excluded, as in §6.3):\n"
                << light.to_string() << "\n";
    }
  }

  std::cout << "communication vs computation, 1024^3 (paper values alongside):\n"
            << table.to_string() << "\n"
            << "(*) the paper reports >1 s of map-phase communication at 16 GPUs; our\n"
            << "    model keeps the same qualitative conclusion — computation is no\n"
            << "    longer the bottleneck (ratio >> 1) — with a smaller absolute gap,\n"
            << "    since our fabric charges calibrated per-message costs rather than\n"
            << "    the paper's unreported MPI stack behaviour (EXPERIMENTS.md).\n";
  return 0;
}
