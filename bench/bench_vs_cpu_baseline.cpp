// Footnote 1 of the paper: "Moreland et al. show that Paraview can
// render 346M VPS using 512 processes on 256 nodes. Using 16 GPUs on 4
// nodes, we achieve more than double this rate."
//
// Two comparisons here:
//   1. our 1024³ @ 16 GPUs VPS against the published 346 MVPS constant;
//   2. the same MapReduce pipeline run on an emulated CPU cluster —
//      identical topology, but each "device" samples at a 2010 CPU
//      core's rate and staging bypasses PCIe-class links — showing the
//      GPU advantage the paper leads with (§1).

#include "common.hpp"

namespace {

// A quad-core 2010 Xeon ray-casts ~8-10 M trilinear samples/s/core with
// software filtering; one "device" = one 4-core node's worth.
vrmr::cluster::HardwareModel cpu_cluster_model() {
  vrmr::cluster::HardwareModel hw =
      vrmr::cluster::HardwareModel::ncsa_accelerator_cluster();
  hw.gpu.name = "CpuNodeDevice (4 cores, software sampling)";
  hw.gpu.sample_rate_per_s = 36e6;  // 4 cores x ~9 M samples/s
  hw.gpu.kernel_launch_overhead_s = 5e-6;
  // "Staging" is a host memcpy, not a PCIe hop.
  hw.pcie.bandwidth_Bps = hw.cpu.memcpy_bandwidth_Bps;
  hw.pcie.latency_s = 1e-6;
  return hw;
}

}  // namespace

int main() {
  using namespace vrmr;
  using namespace vrmr::bench;

  print_header("bench_vs_cpu_baseline", "footnote 1 (ParaView 346 MVPS reference)");

  const Int3 dims{1024, 1024, 1024};
  constexpr double kParaviewMvps = 346.0;

  Table table({"renderer", "gpus/nodes", "frame_s", "MVPS", "vs ParaView 346 MVPS"});

  // Our system at the paper's comparison point: 16 GPUs on 4 nodes.
  const volren::RenderResult gpu16 = run_point({"skull", dims, 16});
  table.add_row({"MapReduce GPU (this work)", "16 / 4", Table::num(gpu16.stats.runtime_s, 3),
                 Table::num(gpu16.mvps(), 0),
                 Table::num(gpu16.mvps() / kParaviewMvps, 2) + "x"});

  // Same pipeline, emulated CPU cluster, same 4 nodes (16 "devices" =
  // 4 per node sharing the cores' throughput 4 ways).
  {
    const volren::Volume volume = volren::datasets::skull(dims);
    sim::Engine engine;
    cluster::HardwareModel hw = cpu_cluster_model();
    hw.gpu.sample_rate_per_s /= 4.0;  // 4 device-processes share a node's cores
    cluster::Cluster cluster(engine,
                             cluster::ClusterConfig::with_total_gpus(16, hw));
    volren::RenderOptions options;
    options.image_width = image_size();
    options.image_height = image_size();
    options.cast.decimation = decimation_for(dims);
    options.transfer = volren::TransferFunction::bone();
    options.distance = 1.2f;
    options.azimuth = 0.65f;
    options.elevation = 0.3f;
    options.target_bricks = 16;
    const volren::RenderResult r = volren::render_mapreduce(cluster, volume, options);
    table.add_row({"MapReduce CPU-emulated", "16 / 4", Table::num(r.stats.runtime_s, 3),
                   Table::num(r.mvps(), 0),
                   Table::num(r.mvps() / kParaviewMvps, 2) + "x"});
  }

  table.add_row({"ParaView (Moreland et al.)", "512 procs / 256 nodes", "-",
                 Table::num(kParaviewMvps, 0), "1.00x (published)"});

  std::cout << table.to_string() << "\n"
            << "paper's claim: 16 GPUs on 4 nodes deliver more than 2x ParaView's\n"
            << "346 MVPS. Expected: row 1 >= ~2x; the CPU-emulated pipeline lands\n"
            << "well below, reproducing the GPU-vs-CPU gap that motivates §1.\n";
  return 0;
}
