#pragma once

// Shared harness for the figure-reproduction benches.
//
// Scale: by default every bench runs the paper's exact evaluation
// geometry — 512² images (§5) and logical volumes up to 1024³ — with
// the functional sampling loop decimated per DESIGN.md §2 (stored proxy
// grids, every logical step charged to the simulated clock). Set
// VRMR_FAST=1 to drop to 256² images for quicker iteration; the bench
// header lines record whichever scale was used.

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "volren/datasets.hpp"
#include "volren/renderer.hpp"

namespace vrmr::bench {

inline bool fast_mode() {
  const char* env = std::getenv("VRMR_FAST");
  return env != nullptr && env[0] == '1';
}

/// VRMR_CSV_PATH=<file>: CSV blocks append to this file instead of
/// interleaving with the stdout tables (setting it implies CSV mode).
inline const char* csv_path() {
  const char* env = std::getenv("VRMR_CSV_PATH");
  return (env != nullptr && env[0] != '\0') ? env : nullptr;
}

/// VRMR_CSV=1: figure benches also emit machine-readable CSV blocks
/// (for regenerating the plots).
inline bool csv_mode() {
  const char* env = std::getenv("VRMR_CSV");
  return (env != nullptr && env[0] == '1') || csv_path() != nullptr;
}

/// VRMR_TRACE=<path>: flight-recorder export for a bench run. The
/// benches attach this recorder to their serving layers and write the
/// Chrome trace-event JSON at exit (open in Perfetto). Unset (the
/// default, and how the gates run in CI) returns nullptr — the benches
/// then exercise and measure the recorder-off zero-cost path.
inline obs::TraceRecorder* trace_recorder() {
  const char* env = std::getenv("VRMR_TRACE");
  if (env == nullptr || env[0] == '\0') return nullptr;
  static obs::TraceRecorder recorder;
  return &recorder;
}

/// Export the VRMR_TRACE trace (no-op when unset); call once at exit.
inline void write_trace() {
  const char* env = std::getenv("VRMR_TRACE");
  if (env == nullptr || env[0] == '\0') return;
  if (trace_recorder()->write_file(env)) {
    std::cout << "trace: " << trace_recorder()->size() << " events -> " << env
              << "\n";
  }
}

/// Machine-readable bench summary: writes BENCH_<name>.json (cwd, or
/// $VRMR_BENCH_JSON_DIR when set) with the scale tag and a flat metric
/// map, so the perf trajectory stays comparable across PRs without
/// parsing stdout tables. Metrics print with full double precision.
inline void write_json_summary(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& metrics) {
  const char* dir = std::getenv("VRMR_BENCH_JSON_DIR");
  const std::string path = (dir != nullptr && dir[0] != '\0')
                               ? std::string(dir) + "/BENCH_" + name + ".json"
                               : "BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    VRMR_ERROR("bench") << "write_json_summary: cannot open " << path;
    return;
  }
  out.precision(17);
  out << "{\n  \"bench\": \"" << name << "\",\n  \"scale\": \""
      << (fast_mode() ? "fast" : "paper") << "\"";
  for (const auto& [key, value] : metrics) {
    // JSON has no inf/nan literals; emit null so parsers keep working.
    out << ",\n  \"" << key << "\": ";
    if (std::isfinite(value)) out << value;
    else out << "null";
  }
  out << "\n}\n";
}

/// Gating benches all publish the same result triple — the measured
/// speedup (or ratio), the threshold it is gated against, and whether
/// the gate passed — so the CI summary step can parse one shape out of
/// every BENCH_*.json. Appends {gate_speedup, gate_threshold,
/// gate_pass (1/0)} to `metrics` and writes the summary.
inline void write_gate_summary(
    const std::string& name, double speedup, double threshold, bool pass,
    std::vector<std::pair<std::string, double>> metrics) {
  metrics.emplace_back("gate_speedup", speedup);
  metrics.emplace_back("gate_threshold", threshold);
  metrics.emplace_back("gate_pass", pass ? 1.0 : 0.0);
  write_json_summary(name, metrics);
}

inline void maybe_print_csv(const std::string& name, const Table& table) {
  if (!csv_mode()) return;
  if (const char* path = csv_path()) {
    std::ofstream out(path, std::ios::app);
    if (!out) {
      VRMR_ERROR("bench") << "VRMR_CSV_PATH: cannot open " << path
                          << " for append";
      return;
    }
    out << "--- csv: " << name << " ---\n" << table.to_csv() << "--- end csv ---\n";
    return;
  }
  std::cout << "--- csv: " << name << " ---\n" << table.to_csv() << "--- end csv ---\n";
}

// Sharding sweeps: every row carries a leading "shards" column so the
// VRMR_CSV_PATH output stays machine-parseable alongside the
// single-cluster benches (parsers key on the column name, and rows
// from different shard counts land in one CSV block).
inline std::vector<std::string> shards_headers(std::vector<std::string> rest) {
  rest.insert(rest.begin(), "shards");
  return rest;
}

inline std::vector<std::string> shards_row(int shards,
                                           std::vector<std::string> rest) {
  rest.insert(rest.begin(), std::to_string(shards));
  return rest;
}

inline int image_size() { return fast_mode() ? 256 : 512; }

/// Functional decimation for a logical volume: exact up to 128³, then
/// proportional (1024³ -> stride 8). Cost accounting always uses the
/// logical resolution.
inline int decimation_for(Int3 dims) {
  const int max_dim = std::max({dims.x, dims.y, dims.z});
  return std::max(1, max_dim / 128);
}

struct SweepPoint {
  std::string dataset;
  Int3 dims;
  int gpus = 1;
};

inline std::string dims_label(Int3 d) {
  if (d.x == d.y && d.y == d.z) return std::to_string(d.x) + "^3";
  return std::to_string(d.x) + "x" + std::to_string(d.y) + "x" + std::to_string(d.z);
}

/// Render one sweep point on a fresh simulated cluster with the paper's
/// configuration (bone TF for skull, fire otherwise; bricks ≈ GPUs).
inline volren::RenderResult run_point(const SweepPoint& point,
                                      volren::RenderOptions options = {}) {
  const volren::Volume volume = volren::datasets::by_name(point.dataset, point.dims);
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(point.gpus));

  options.image_width = image_size();
  options.image_height = image_size();
  options.cast.decimation = decimation_for(point.dims);
  options.transfer = point.dataset == "skull" ? volren::TransferFunction::bone()
                                              : volren::TransferFunction::fire();
  // Frame the volume like the paper's teaser renders: close enough to
  // fill most of the image.
  options.distance = 1.2f;
  options.azimuth = 0.65f;
  options.elevation = 0.3f;
  // At least two bricks whenever one would overflow VRAM (1024³ floats
  // exceed a 4 GiB device once the ghost shell is added).
  // A staged brick must fit VRAM alongside the mapper's static data
  // (transfer-function texture, output slots) — leave headroom.
  const std::uint64_t vram_budget = cluster.config().hw.gpu.vram_bytes - (64u << 20);
  options.target_bricks = point.gpus;
  while (true) {
    const Int3 brick_dims = volren::BrickLayout::choose_brick_dims(
        point.dims, options.target_bricks);
    const Int3 padded{std::min(point.dims.x, brick_dims.x + 2),
                      std::min(point.dims.y, brick_dims.y + 2),
                      std::min(point.dims.z, brick_dims.z + 2)};
    if (static_cast<std::uint64_t>(padded.volume()) * sizeof(float) <= vram_budget) {
      break;
    }
    options.target_bricks *= 2;
  }
  return volren::render_mapreduce(cluster, volume, options);
}

inline void print_header(const std::string& bench, const std::string& figure) {
  std::cout << "=== " << bench << " — reproduces " << figure << " ===\n"
            << "image " << image_size() << "x" << image_size()
            << (fast_mode() ? " (VRMR_FAST)" : " (paper scale)")
            << "; times are simulated seconds on the calibrated NCSA "
               "Accelerator Cluster model (DESIGN.md §5)\n\n";
}

}  // namespace vrmr::bench
