// Figure 4: frames/second (left panel) and million voxels/second
// (right panel) versus GPU count for every volume size, plus the
// 512x512x2048 Plume (§5). Qualitative shapes to reproduce:
//   * FPS rises with GPUs up to the ≈8-GPU sweet spot, then falls off
//     as direct-send communication grows;
//   * VPS rises steeply with volume size (the paper's headline scaling
//     argument): a bigger volume amortizes fixed pipeline costs;
//   * the 1024³ volume reaches the highest absolute VPS.

#include "common.hpp"

int main() {
  using namespace vrmr;
  using namespace vrmr::bench;

  print_header("bench_fig4_fps_vps", "Fig. 4 (FPS and VPS vs GPU count)");

  struct Series {
    std::string dataset;
    Int3 dims;
  };
  const std::vector<Series> series = {{"skull", {128, 128, 128}},
                                      {"skull", {256, 256, 256}},
                                      {"skull", {512, 512, 512}},
                                      {"skull", {1024, 1024, 1024}},
                                      {"plume", {512, 512, 2048}}};
  const std::vector<int> gpu_counts = {1, 2, 4, 8, 16, 32};

  Table fps({"volume", "g=1", "g=2", "g=4", "g=8", "g=16", "g=32"});
  Table vps({"volume", "g=1", "g=2", "g=4", "g=8", "g=16", "g=32"});
  for (const Series& s : series) {
    std::vector<std::string> fps_row{dims_label(s.dims)};
    std::vector<std::string> vps_row{dims_label(s.dims)};
    // 1024^3 floats leave no VRAM headroom on one device (paper: the
      // 1024^3 series starts at 2 GPUs).
      const bool too_big_for_one = s.dims.volume() * 4 >= (4LL << 30);
    for (const int gpus : gpu_counts) {
      if (gpus == 1 && too_big_for_one) {
        fps_row.push_back("-");
        vps_row.push_back("-");
        continue;
      }
      const volren::RenderResult r = run_point({s.dataset, s.dims, gpus});
      fps_row.push_back(Table::num(r.fps(), 2));
      vps_row.push_back(Table::num(r.mvps(), 0));
    }
    fps.add_row(fps_row);
    vps.add_row(vps_row);
  }

  std::cout << "Frames per second (Fig. 4 left):\n" << fps.to_string() << "\n";
  std::cout << "Million voxels per second (Fig. 4 right):\n" << vps.to_string() << "\n";
  maybe_print_csv("fig4_fps", fps);
  maybe_print_csv("fig4_vps", vps);
  std::cout << "Reference point (paper footnote 1): ParaView reaches 346 MVPS on 512\n"
               "processes; the paper's 16 GPUs more than double it — compare the\n"
               "1024^3 row at g=16 above and see bench_vs_cpu_baseline.\n";
  return 0;
}
