// Streamed tile delivery: a client watches its frame arrive piece by
// piece instead of waiting for the last reducer.
//
// Each reduce quantum completes one *tile* — one reducer's share of the
// image — and the session's on_tile callback fires at that moment on
// the simulated timeline, strictly before the frame's own on_frame
// event. An interactive viewer can progressively refine its display
// from the first tile on; this example prints, per frame, when each
// tile landed relative to the frame's completion, and how much of the
// frame's latency the first tile shaved off.
//
// A batch export runs concurrently to show preemption + streaming
// together: the interactive session's tiles keep flowing with bounded
// delay even while the export grinds through its backlog.
//
//   $ ./examples/example_streaming_tiles [gpus]

#include <cstdlib>
#include <iostream>
#include <vector>

#include "vrmr.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace vrmr;
  const int gpus = argc > 1 ? std::atoi(argv[1]) : 4;

  const volren::Volume skull = volren::datasets::skull({64, 64, 64});
  const volren::Volume supernova = volren::datasets::supernova({64, 64, 64});

  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(gpus));
  service::RenderService svc(cluster);  // quantum pipeline by default

  volren::RenderOptions options;
  options.image_width = 256;
  options.image_height = 256;
  options.cast.decimation = 2;

  // The batch export whose frames the interactive session preempts.
  service::Session batch = svc.open_session("export", service::Priority::Batch);
  options.transfer = volren::TransferFunction::fire();
  volren::RenderOptions batch_options = options;
  batch_options.target_bricks = 4 * gpus;  // fine preemption granularity
  batch.submit_orbit(supernova, batch_options, 8, 0.0, 0.0);

  service::SessionProfile viewer_profile;
  viewer_profile.name = "viewer";
  viewer_profile.priority = service::Priority::Interactive;
  viewer_profile.orbit = service::OrbitHint{6, 0.05};
  service::Session viewer = svc.open_session(viewer_profile);

  // Scanline-band partitioning skews the reducers' loads (center bands
  // carry most fragments), so the light tiles land visibly earlier —
  // with the paper's pixel round-robin every reducer carries the same
  // load and the whole frame arrives almost at once.
  options.partition = mr::PartitionStrategy::Striped;

  struct TileLog {
    int reducer;
    double finish_s;
    std::size_t pixels;
  };
  std::vector<TileLog> tiles;
  viewer.on_tile([&](const service::TileRecord& tile) {
    tiles.push_back({tile.reducer, tile.finish_s, tile.pixels.size()});
  });

  Table table({"frame", "arrival_s", "first_tile_s", "finish_s", "tiles",
               "first_tile_saves_s", "tile_times_s"});
  viewer.on_frame([&](const service::FrameRecord& frame) {
    std::string times;
    for (const TileLog& tile : tiles) {
      if (!times.empty()) times += " ";
      times += Table::num(tile.finish_s, 4);
    }
    table.add_row({std::to_string(frame.frame_id), Table::num(frame.arrival_s, 4),
                   Table::num(frame.first_tile_s, 4), Table::num(frame.finish_s, 4),
                   std::to_string(frame.tiles),
                   Table::num(frame.finish_s - frame.first_tile_s, 4), times});
    tiles.clear();
  });
  options.transfer = volren::TransferFunction::bone();
  viewer.submit_orbit(skull, options, 6, 0.01, 0.05);

  svc.drain();

  const service::ServiceStats stats = svc.stats();
  std::cout << "=== streamed tiles: viewer session (" << gpus
            << " GPUs, one tile per reducer) ===\n"
            << table.to_string() << "\n"
            << "service: " << stats.frames_total << " frames, "
            << stats.tiles_total << " tiles streamed, " << stats.preemptions
            << " preemptions, " << stats.bricks_prefetched
            << " bricks prefetched\n";

  // Sanity for CI smoke runs: every viewer frame delivered all its
  // tiles, and the first tile landed strictly before the frame — the
  // strict check only makes sense with several tiles per frame (at one
  // GPU the single tile's completion IS the frame finish).
  for (const service::FrameRecord& frame : stats.frames) {
    if (frame.session != 1) continue;
    const bool streamed_early = gpus == 1 ? frame.first_tile_s <= frame.finish_s
                                          : frame.first_tile_s < frame.finish_s;
    if (frame.tiles != gpus || !streamed_early) {
      VRMR_ERROR("example") << "tile streaming violated for frame "
                            << frame.frame_id;
      return 1;
    }
  }
  return 0;
}
