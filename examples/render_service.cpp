// Serving scenario: one simulated cluster multiplexing a mixed
// population of render sessions — two scientists interactively orbiting
// their datasets (frames trickle in at interactive rates) while a batch
// animation export queues a full turntable at once. The round-robin
// scheduler keeps the interactive sessions responsive and the per-GPU
// brick cache keeps every session's bricks warm between frames.
//
//   $ ./examples/example_render_service [gpus]

#include <cstdlib>
#include <iostream>

#include "vrmr.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace vrmr;
  const int gpus = argc > 1 ? std::atoi(argv[1]) : 8;

  const volren::Volume skull = volren::datasets::skull({96, 96, 96});
  const volren::Volume supernova = volren::datasets::supernova({96, 96, 96});
  const volren::Volume plume = volren::datasets::plume({64, 64, 128});

  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(gpus));

  service::ServiceConfig config;
  config.policy = service::SchedulingPolicy::RoundRobin;
  service::RenderService svc(cluster, config);

  volren::RenderOptions options;
  options.image_width = 256;
  options.image_height = 256;
  options.cast.decimation = 2;

  // Two interactive orbit sessions: 30 ms between frames (~33 Hz hand
  // motion), starting staggered.
  options.transfer = volren::TransferFunction::bone();
  const auto alice = svc.open_session("alice/skull");
  svc.submit_orbit(alice, skull, options, 24, 0.0, 0.03);

  options.transfer = volren::TransferFunction::fire();
  const auto bob = svc.open_session("bob/supernova");
  svc.submit_orbit(bob, supernova, options, 24, 0.1, 0.03);

  // One batch animation export: the whole turntable queued at t=0.
  const auto batch = svc.open_session("batch/plume");
  svc.submit_orbit(batch, plume, options, 32, 0.0, 0.0);

  const service::ServiceStats stats = svc.run();

  Table sessions({"session", "frames", "p50", "p95", "p99", "mean", "fps", "hit%"});
  for (const service::SessionSummary& s : stats.sessions) {
    sessions.add_row({s.name, std::to_string(s.frames),
                      format_seconds(s.p50_latency_s),
                      format_seconds(s.p95_latency_s),
                      format_seconds(s.p99_latency_s),
                      format_seconds(s.mean_latency_s), Table::num(s.fps, 2),
                      Table::num(100.0 * s.cache_hit_rate(), 1)});
  }

  std::cout << "render service on " << gpus << " GPUs, policy "
            << service::to_string(config.policy) << ", brick cache "
            << (config.enable_brick_cache ? "on" : "off") << "\n\n"
            << sessions.to_string() << "\n"
            << stats.frames_total << " frames in "
            << format_seconds(stats.makespan_s) << " simulated ("
            << Table::num(stats.fps, 2) << " fps aggregate), cluster "
            << Table::num(100.0 * stats.cluster_utilization, 1)
            << "% busy\ncache: " << Table::num(100.0 * stats.cache_hit_rate, 1)
            << "% hit rate, " << format_bytes(stats.bytes_h2d_saved)
            << " of H2D upload avoided\n";
  return 0;
}
