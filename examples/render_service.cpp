// Serving scenario: one simulated cluster multiplexing a mixed
// population of render sessions — two scientists interactively orbiting
// their datasets (frames trickle in at interactive rates) while a batch
// animation export queues a full turntable at once. Sessions are
// first-class handles: frames are delivered through on_frame callbacks
// as they complete on the simulated timeline, interactive sessions are
// admitted ahead of the batch class, and the per-GPU brick cache keeps
// every session's bricks warm between frames.
//
//   $ ./examples/example_render_service [gpus]

#include <cstdlib>
#include <iostream>

#include "vrmr.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace vrmr;
  const int gpus = argc > 1 ? std::atoi(argv[1]) : 8;

  const volren::Volume skull = volren::datasets::skull({96, 96, 96});
  const volren::Volume supernova = volren::datasets::supernova({96, 96, 96});
  const volren::Volume plume = volren::datasets::plume({64, 64, 128});

  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(gpus));

  service::ServiceConfig config;
  config.policy = service::SchedulingPolicy::RoundRobin;
  service::RenderService svc(cluster, config);

  volren::RenderOptions options;
  options.image_width = 256;
  options.image_height = 256;
  options.cast.decimation = 2;

  // Two interactive orbit sessions: 30 ms between frames (~33 Hz hand
  // motion), starting staggered. The orbit hint is how a later prefetch
  // stage will know which bricks the next frame needs.
  service::SessionProfile alice_profile;
  alice_profile.name = "alice/skull";
  alice_profile.priority = service::Priority::Interactive;
  alice_profile.orbit = service::OrbitHint{24, 0.03};
  service::Session alice = svc.open_session(alice_profile);
  options.transfer = volren::TransferFunction::bone();
  alice.submit_orbit(skull, options, 24, 0.0, 0.03);

  service::SessionProfile bob_profile;
  bob_profile.name = "bob/supernova";
  bob_profile.priority = service::Priority::Interactive;
  bob_profile.orbit = service::OrbitHint{24, 0.03};
  service::Session bob = svc.open_session(bob_profile);
  options.transfer = volren::TransferFunction::fire();
  bob.submit_orbit(supernova, options, 24, 0.1, 0.03);

  // One batch animation export: the whole turntable queued at t=0.
  // Priority admission keeps it from head-of-line-blocking the
  // scientists; it soaks up whatever the cluster has left.
  service::Session batch =
      svc.open_session("batch/plume", service::Priority::Batch);
  batch.submit_orbit(plume, options, 32, 0.0, 0.0);

  // Event-driven delivery: alice's frames stream back as they finish on
  // the simulated timeline (a real client would encode/display here).
  int alice_delivered = 0;
  double alice_last_finish = 0.0;
  alice.on_frame([&](const service::FrameRecord& frame) {
    ++alice_delivered;
    alice_last_finish = frame.finish_s;
  });

  svc.drain();
  const service::ServiceStats stats = svc.stats();

  Table sessions(
      {"session", "class", "frames", "p50", "p95", "p99", "mean", "fps", "hit%"});
  for (const service::SessionStats& s : stats.sessions) {
    sessions.add_row({s.name, service::to_string(s.priority),
                      std::to_string(s.frames),
                      format_seconds(s.p50_latency_s),
                      format_seconds(s.p95_latency_s),
                      format_seconds(s.p99_latency_s),
                      format_seconds(s.mean_latency_s), Table::num(s.fps, 2),
                      Table::num(100.0 * s.cache_hit_rate(), 1)});
  }

  std::cout << "render service on " << gpus << " GPUs, policy "
            << service::to_string(config.policy) << ", brick cache "
            << (config.enable_brick_cache ? "on" : "off") << "\n\n"
            << sessions.to_string() << "\n"
            << alice_delivered << " frames streamed to alice's callback, last at "
            << format_seconds(alice_last_finish) << "\n"
            << stats.frames_total << " frames in "
            << format_seconds(stats.makespan_s) << " simulated ("
            << Table::num(stats.fps, 2) << " fps aggregate), cluster "
            << Table::num(100.0 * stats.cluster_utilization, 1)
            << "% busy\ncache: " << Table::num(100.0 * stats.cache_hit_rate, 1)
            << "% hit rate, " << format_bytes(stats.bytes_h2d_saved)
            << " of H2D upload avoided\n";
  return 0;
}
