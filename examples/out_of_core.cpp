// Out-of-core rendering (paper §1/§6.2): the volume lives in a bricked
// file on disk, bricks stream through the pipeline, and no GPU ever
// holds more than its chunk.
//
// This example exercises the real artifacts end to end:
//   1. brick the Plume proxy into a VRBF file on the actual filesystem,
//   2. read it back brick by brick (BrickFileReader),
//   3. render with include_disk_io so every staging read is charged to
//      the simulated per-node disks (calibrated: 64³ brick ≈ 20 ms),
//   4. compare against the in-core run: same pixels, slower frame.
//
//   $ ./examples/out_of_core [out.ppm]

#include <filesystem>
#include <numeric>
#include <iostream>

#include "cluster/cluster.hpp"
#include "io/brick_file.hpp"
#include "io/brick_streamer.hpp"
#include "sim/engine.hpp"
#include "util/units.hpp"
#include "volren/bricking.hpp"
#include "volren/datasets.hpp"
#include "volren/renderer.hpp"

int main(int argc, char** argv) {
  using namespace vrmr;
  namespace fs = std::filesystem;
  const std::string out_path = argc > 1 ? argv[1] : "out_of_core.ppm";

  // The paper's non-cubic dataset, scaled down: 64 x 64 x 256 plume.
  const Int3 dims{64, 64, 256};
  const volren::Volume source = volren::datasets::plume(dims);
  const int brick_size = 64;
  const volren::BrickLayout layout(dims, source.world_extent(), brick_size, 1);

  // --- 1. offline bricking to a VRBF file (untimed, like the paper) ---
  const fs::path vrbf = fs::temp_directory_path() / "vrmr_plume.vrbf";
  {
    io::BrickFileWriter writer(vrbf, dims, brick_size, 1, layout.num_bricks());
    for (const volren::BrickInfo& b : layout.bricks()) {
      writer.append_brick(b.grid_pos, b.padded_dims,
                          source.materialize(b.padded_origin, b.padded_dims));
    }
    writer.finalize();
  }
  std::cout << "bricked " << source.name() << " " << dims << " -> " << vrbf << " ("
            << format_bytes(fs::file_size(vrbf)) << ", " << layout.num_bricks()
            << " bricks)\n";

  // --- 2. reload the volume through the prefetching streamer -----------
  // The streamer keeps a bounded window resident (here: 2 bricks), the
  // shape of the paper's out-of-core streaming — the full volume never
  // sits in memory twice.
  io::BrickFileReader reader(vrbf);
  std::vector<int> schedule(static_cast<size_t>(reader.num_bricks()));
  std::iota(schedule.begin(), schedule.end(), 0);
  io::BrickStreamer streamer(reader, schedule, /*window=*/2);
  std::vector<float> voxels(static_cast<size_t>(dims.volume()));
  while (!streamer.done()) {
    const int i = streamer.next_brick();
    const io::BrickRecord& rec = reader.record(i);
    const std::vector<float> payload = streamer.consume();
    const volren::BrickInfo& info = layout.brick(layout.brick_id(rec.grid_pos));
    // Scatter the padded payload's core region into the dense array.
    size_t src = 0;
    for (int z = 0; z < rec.padded_dims.z; ++z) {
      for (int y = 0; y < rec.padded_dims.y; ++y) {
        for (int x = 0; x < rec.padded_dims.x; ++x, ++src) {
          const Int3 g = info.padded_origin + Int3{x, y, z};
          voxels[(static_cast<size_t>(g.z) * dims.y + g.y) * dims.x + g.x] = payload[src];
        }
      }
    }
  }
  const volren::Volume volume("plume-from-disk", dims,
                              std::make_shared<volren::ArraySource>(dims, std::move(voxels)));
  std::cout << "streamed " << streamer.reads() << " bricks ("
            << format_bytes(streamer.bytes_read()) << ") through a 2-brick window\n";

  // --- 3. render in-core vs out-of-core --------------------------------
  volren::RenderOptions options;
  options.image_width = 384;
  options.image_height = 384;
  options.transfer = volren::TransferFunction::fire();
  options.brick_size = brick_size;
  options.elevation = 0.15f;

  auto render_with = [&](bool disk) {
    sim::Engine engine;
    cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(4));
    volren::RenderOptions opt = options;
    opt.include_disk_io = disk;
    return volren::render_mapreduce(cluster, volume, opt);
  };
  const volren::RenderResult in_core = render_with(false);
  const volren::RenderResult out_of_core = render_with(true);
  out_of_core.image.write_ppm(out_path);

  const volren::ImageDiff diff =
      volren::compare_images(in_core.image, out_of_core.image);
  std::cout << "in-core frame:     " << format_seconds(in_core.stats.runtime_s) << "\n"
            << "out-of-core frame: " << format_seconds(out_of_core.stats.runtime_s)
            << "  (disk read " << format_bytes(out_of_core.stats.bytes_disk) << ", busy "
            << format_seconds(out_of_core.stats.disk_busy_s) << ")\n"
            << "image difference:  " << diff.max_abs << " (identical pixels expected)\n"
            << "image written to " << out_path << "\n";

  fs::remove(vrbf);
  return diff.max_abs == 0.0 ? 0 : 1;
}
