// The MapReduce library as a general substrate (paper §7 hopes the
// library "would allow commodity GPUs to be added cheaply to large
// clusters ... for many tasks"): a scalar-field histogram job that has
// nothing to do with rendering. Bricks map to (bin, count) pairs; the
// reduce phase sums counts per bin.
//
//   $ ./examples/histogram_mr

#include <iostream>
#include <map>

#include "cluster/cluster.hpp"
#include "mr/job.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "volren/bricking.hpp"
#include "volren/datasets.hpp"
#include "volren/raycast.hpp"

namespace {

using namespace vrmr;

constexpr std::uint32_t kBins = 32;

/// Map: histogram one brick's core voxels locally on the "GPU", then
/// emit one (bin, count) pair per bin — a classic combiner-free
/// MapReduce formulation with a dense key domain, exactly the shape the
/// library's restrictions (§3.1.1) demand.
class HistogramMapper final : public mr::Mapper {
 public:
  explicit HistogramMapper(const volren::Volume& volume) : volume_(&volume) {}

  mr::MapOutcome map(gpusim::Device& device, const mr::Chunk& chunk,
                     mr::KvBuffer& out) override {
    const auto& brick_chunk = dynamic_cast<const volren::BrickChunk&>(chunk);
    const volren::BrickInfo& brick = brick_chunk.info();

    // Stage the brick (counts against VRAM like any other chunk).
    const gpusim::DeviceAllocation staged =
        device.allocate(brick.device_bytes(), "histogram-brick");

    std::vector<std::uint64_t> bins(kBins, 0);
    for (int z = 0; z < brick.core_dims.z; ++z) {
      for (int y = 0; y < brick.core_dims.y; ++y) {
        for (int x = 0; x < brick.core_dims.x; ++x) {
          const float v = volume_->voxel_clamped(brick.core_origin + Int3{x, y, z});
          const auto bin = std::min(kBins - 1, static_cast<std::uint32_t>(v * kBins));
          ++bins[bin];
        }
      }
    }
    for (std::uint32_t b = 0; b < kBins; ++b) {
      const std::uint64_t count = bins[b];
      out.append_typed(b, count);
    }
    mr::MapOutcome outcome;
    outcome.samples = static_cast<std::uint64_t>(brick.core_voxels());
    outcome.threads = kBins;
    return outcome;
  }

 private:
  const volren::Volume* volume_;
};

class BinSumReducer final : public mr::Reducer {
 public:
  explicit BinSumReducer(std::map<std::uint32_t, std::uint64_t>* totals)
      : totals_(totals) {}
  void reduce(std::uint32_t key, const std::byte* values, std::size_t count) override {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t v;
      std::memcpy(&v, values + i * sizeof(v), sizeof(v));
      total += v;
    }
    (*totals_)[key] = total;
  }

 private:
  std::map<std::uint32_t, std::uint64_t>* totals_;
};

}  // namespace

int main() {
  const Int3 dims{128, 128, 128};
  const volren::Volume volume = volren::datasets::skull(dims);

  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(4));

  mr::JobConfig config;
  config.value_size = sizeof(std::uint64_t);
  config.domain.num_keys = kBins;

  mr::Job job(cluster, config);
  job.set_mapper_factory(
      [&](int, gpusim::Device&) { return std::make_unique<HistogramMapper>(volume); });
  std::map<std::uint32_t, std::uint64_t> totals;
  job.set_reducer_factory(
      [&](int) { return std::make_unique<BinSumReducer>(&totals); });

  const volren::BrickLayout layout(dims, volume.world_extent(), 64, 0);
  for (const volren::BrickInfo& info : layout.bricks()) {
    job.add_chunk(std::make_unique<volren::BrickChunk>(volume, info));
  }
  const mr::JobStats stats = job.run();

  std::uint64_t total_voxels = 0;
  for (const auto& [bin, count] : totals) total_voxels += count;

  std::cout << "scalar histogram of " << volume.name() << " " << dims << " via MapReduce ("
            << layout.num_bricks() << " bricks, " << cluster.total_gpus() << " GPUs, "
            << format_seconds(stats.runtime_s) << " simulated)\n\n";
  std::uint64_t peak = 1;
  for (const auto& [bin, count] : totals) peak = std::max(peak, count);
  for (std::uint32_t b = 0; b < kBins; ++b) {
    const std::uint64_t count = totals.count(b) ? totals[b] : 0;
    const int bar = static_cast<int>(60.0 * static_cast<double>(count) /
                                     static_cast<double>(peak));
    std::cout << vrmr::Table::num(static_cast<double>(b) / kBins, 2) << " | "
              << std::string(static_cast<size_t>(bar), '#') << " " << count << "\n";
  }
  std::cout << "\ntotal voxels binned: " << total_voxels << " (expected "
            << dims.volume() << ")\n";
  return total_voxels == static_cast<std::uint64_t>(dims.volume()) ? 0 : 1;
}
