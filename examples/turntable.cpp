// Interactive-visualization scenario: a turntable animation (the
// paper's motivating use case is scientists orbiting their data). One
// cluster is reused across frames — the simulated clock keeps running,
// and per-frame statistics show a stable frame rate.
//
//   $ ./examples/turntable [frames] [out_prefix]

#include <cstdlib>
#include <iostream>

#include "cluster/cluster.hpp"
#include "sim/engine.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "volren/datasets.hpp"
#include "volren/renderer.hpp"

int main(int argc, char** argv) {
  using namespace vrmr;
  const int frames = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::string prefix = argc > 2 ? argv[2] : "turntable";

  const volren::Volume volume = volren::datasets::supernova({96, 96, 96});
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(8));

  volren::RenderOptions options;
  options.image_width = 256;
  options.image_height = 256;
  options.transfer = volren::TransferFunction::fire();
  options.elevation = 0.35f;

  Table table({"frame", "azimuth", "time", "fps", "fragments"});
  StatAccumulator frame_times;
  for (int f = 0; f < frames; ++f) {
    options.azimuth = 6.2831853f * static_cast<float>(f) / static_cast<float>(frames);
    const volren::RenderResult result = volren::render_mapreduce(cluster, volume, options);
    frame_times.add(result.stats.runtime_s);
    table.add_row({std::to_string(f), Table::num(options.azimuth, 2),
                   format_seconds(result.stats.runtime_s), Table::num(result.fps(), 2),
                   std::to_string(result.stats.fragments)});
    if (f == 0 || f == frames - 1) {
      result.image.write_ppm(prefix + "_" + std::to_string(f) + ".ppm");
    }
  }

  std::cout << table.to_string() << "\n"
            << "mean frame " << format_seconds(frame_times.mean()) << " (stddev "
            << format_seconds(frame_times.stddev()) << "), "
            << Table::num(1.0 / frame_times.mean(), 2) << " fps sustained\n"
            << "simulated session length: " << format_seconds(engine.now()) << "\n"
            << "first/last frames written to " << prefix << "_*.ppm\n";
  return 0;
}
