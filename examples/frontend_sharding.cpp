// Sharded serving tier: a ServiceFrontend spreads render sessions
// across independent clusters behind one Session-handle API. Sessions
// are placed on their first submit — least outstanding cost, except
// that a session whose volume is already warm on some shard sticks to
// it (brick affinity): carol shows up after alice and reuses alice's
// skull, so she lands on alice's shard and her first frame hits the
// cache instead of restaging from disk.
//
// The epilogue shows the farm's control plane: carol migrates live to
// the least-loaded shard (her queued frames move with her, callbacks
// retained, and the skull's warm bricks are pre-pushed over the
// inter-shard fabric so her first post-move frame renders warm), then
// the now-quiet source shard drains and retires — its remaining
// sessions migrate off through the same primitive.
//
//   $ ./examples/example_frontend_sharding [shards] [gpus_per_shard]

#include <cstdlib>
#include <iostream>

#include "vrmr.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace vrmr;
  const int shards = argc > 1 ? std::atoi(argv[1]) : 2;
  const int gpus_per_shard = argc > 2 ? std::atoi(argv[2]) : 4;

  const volren::Volume skull = volren::datasets::skull({64, 64, 64});
  const volren::Volume supernova = volren::datasets::supernova({64, 64, 64});
  const volren::Volume plume = volren::datasets::plume({48, 48, 96});

  service::FrontendConfig config;
  config.shards = shards;
  config.gpus_per_shard = gpus_per_shard;
  config.service.policy = service::SchedulingPolicy::RoundRobin;
  service::ServiceFrontend frontend(config);

  // VRMR_TRACE=<path>: flight-recorder export of the whole farm —
  // shard i records as trace process i; open the file in Perfetto.
  obs::TraceRecorder recorder;
  const char* trace_path = std::getenv("VRMR_TRACE");
  if (trace_path != nullptr && trace_path[0] != '\0') {
    frontend.set_trace(&recorder);
  }

  volren::RenderOptions options;
  options.image_width = 128;
  options.image_height = 128;

  // Interactive users on their own datasets spread across shards...
  service::Session alice =
      frontend.open_session("alice/skull", service::Priority::Interactive);
  options.transfer = volren::TransferFunction::bone();
  alice.submit_orbit(skull, options, 12, 0.0, 0.03);

  service::Session bob =
      frontend.open_session("bob/supernova", service::Priority::Interactive);
  options.transfer = volren::TransferFunction::fire();
  bob.submit_orbit(supernova, options, 12, 0.02, 0.03);

  // ...a batch export lands on whichever shard is lightest...
  service::Session batch =
      frontend.open_session("batch/plume", service::Priority::Batch);
  batch.submit_orbit(plume, options, 16, 0.0, 0.0);

  frontend.drain();  // warm the shards

  // ...and a returning user re-opens alice's dataset: brick affinity
  // routes her to the shard where the skull is still resident.
  service::Session carol =
      frontend.open_session("carol/skull", service::Priority::Interactive);
  options.transfer = volren::TransferFunction::bone();
  carol.submit_orbit(skull, options, 12, 0.0, 0.03);
  frontend.drain();

  // Live migration: move carol to the placement policy's pick among
  // the *other* shards while her next orbit is queued. Her callbacks
  // stay installed, the queued frames re-issue on the target in order,
  // and the skull's warm bricks ride ahead over the fabric.
  int carol_from = -1;
  if (shards > 1) {
    carol_from = frontend.shard_of(carol);
    carol.submit_orbit(skull, options, 12, 0.0, 0.03);
    frontend.migrate_session(carol);
    frontend.drain();

    // Elasticity: the shard carol left drains and retires — any
    // sessions still placed there migrate off first, so nothing is
    // lost. (add_shard() is the inverse; AutoscaleConfig automates
    // both against aggregate backlog.)
    frontend.drain_shard(carol_from);
  }

  Table placements({"session", "class", "shard", "frames", "p95", "fps", "hit%"});
  for (const service::Session& s : {alice, bob, batch, carol}) {
    const service::SessionStats stats = s.stats();
    placements.add_row({stats.name, service::to_string(stats.priority),
                        std::to_string(frontend.shard_of(s)),
                        std::to_string(stats.frames),
                        format_seconds(stats.p95_latency_s),
                        Table::num(stats.fps, 2),
                        Table::num(100.0 * stats.cache_hit_rate(), 1)});
  }

  const service::FrontendStats stats = frontend.stats();
  Table per_shard({"shard", "sessions", "frames", "makespan", "fps", "hit%"});
  for (const service::ShardStats& shard : stats.shards) {
    per_shard.add_row({std::to_string(shard.shard),
                       std::to_string(shard.sessions),
                       std::to_string(shard.service.frames_total),
                       format_seconds(shard.service.makespan_s),
                       Table::num(shard.service.fps, 2),
                       Table::num(100.0 * shard.service.cache_hit_rate, 1)});
  }

  std::cout << "frontend: " << shards << " shards x " << gpus_per_shard
            << " GPUs, policy " << service::to_string(config.service.policy)
            << "\n\n"
            << placements.to_string() << "\n"
            << per_shard.to_string() << "\n"
            << stats.frames_total << " frames total, farm makespan "
            << format_seconds(stats.makespan_s) << " ("
            << Table::num(stats.fps, 2) << " fps aggregate), "
            << format_bytes(stats.bytes_h2d_saved) << " of H2D upload avoided\n"
            << "carol hit " << Table::num(100.0 * carol.stats().cache_hit_rate(), 1)
            << "% of her bricks warm on shard " << frontend.shard_of(carol)
            << "\n";
  if (carol_from >= 0) {
    std::cout << "control plane: " << stats.migrations << " migration(s), "
              << stats.frames_migrated << " frames moved live, "
              << stats.bricks_prepushed << " warm bricks ("
              << format_bytes(stats.bytes_prepushed)
              << ") pre-pushed; shard " << carol_from
              << " drained and retired (" << stats.shards_drained
              << " drained total)\n";
  }
  if (trace_path != nullptr && trace_path[0] != '\0' &&
      recorder.write_file(trace_path)) {
    std::cout << "trace: " << recorder.size() << " events -> " << trace_path
              << "\n";
  }
  return 0;
}
