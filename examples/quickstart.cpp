// Quickstart: render one frame of the synthetic Skull dataset on a
// simulated 8-GPU cluster (2 nodes × 4 GPUs, the paper's testbed
// packing) and write the image plus a run report.
//
//   $ ./examples/quickstart [out.ppm]

#include <iostream>

#include "cluster/cluster.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "volren/datasets.hpp"
#include "volren/renderer.hpp"

int main(int argc, char** argv) {
  using namespace vrmr;
  const std::string out_path = argc > 1 ? argv[1] : "quickstart.ppm";

  // 1. A volume. Datasets are procedural proxies of the paper's Skull /
  //    Supernova / Plume (DESIGN.md §2); any VolumeSource works.
  const volren::Volume volume = volren::datasets::skull({128, 128, 128});

  // 2. A simulated cluster: 8 GPUs packed 4 per node, hardware model
  //    calibrated to the paper's NCSA Accelerator Cluster.
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(8));

  // 3. Render options: image size, camera orbit, transfer function,
  //    bricking (defaults to ≈ one brick per GPU, the paper's sweet
  //    spot), and the MapReduce knobs (§3.1).
  volren::RenderOptions options;
  options.image_width = 512;
  options.image_height = 512;
  options.transfer = volren::TransferFunction::bone();
  options.azimuth = 0.7f;
  options.elevation = 0.25f;

  const volren::RenderResult result = volren::render_mapreduce(cluster, volume, options);
  result.image.write_ppm(out_path);

  // 4. The paper's figures of merit (§4.2) plus the Fig.-3 stage split.
  std::cout << "Rendered " << volume.name() << " " << volume.dims() << " on "
            << cluster.total_gpus() << " GPUs (" << cluster.num_nodes() << " nodes)\n"
            << "  bricks:     " << result.num_bricks << " of edge " << result.brick_size
            << "\n"
            << "  frame time: " << format_seconds(result.stats.runtime_s) << "  ("
            << Table::num(result.fps(), 2) << " fps)\n"
            << "  throughput: " << Table::num(result.mvps(), 1) << " Mvox/s\n"
            << "  fragments:  " << result.stats.fragments << " (+"
            << result.stats.placeholders << " placeholders discarded)\n\n";

  Table stage({"stage", "time", "share"});
  const auto& s = result.stats.stage;
  auto row = [&](const char* name, double t) {
    stage.add_row({name, format_seconds(t), Table::num(100.0 * t / s.total_s, 1) + " %"});
  };
  row("map (ray casting)", s.map_s);
  row("partition + I/O", s.partition_io_s);
  row("sort", s.sort_s);
  row("reduce (compositing)", s.reduce_s);
  row("total", s.total_s);
  std::cout << stage.to_string() << "\nimage written to " << out_path << "\n";
  return 0;
}
