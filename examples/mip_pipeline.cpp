// Pluggability demo (paper §6.1): "If the user wished to use splatting
// or slicing instead of ray casting, the map phase is all that would
// need to be changed." Here we swap the map kernel for maximum-
// intensity projection (MIP) and the reducer for a max-merge — the
// partition and sort stages are reused untouched.
//
//   $ ./examples/mip_pipeline [out.ppm]

#include <atomic>
#include <iostream>
#include <limits>

#include "cluster/cluster.hpp"
#include "mr/job.hpp"
#include "sim/engine.hpp"
#include "util/units.hpp"
#include "volren/datasets.hpp"
#include "volren/marching.hpp"
#include "volren/renderer.hpp"

namespace {

using namespace vrmr;

/// Per-brick maximum intensity along the ray. 8-byte homogeneous value.
struct MipValue {
  float intensity;
  float depth;
};
static_assert(sizeof(MipValue) == 8);

/// Custom mapper: same staging/launch skeleton as RayCastMapper, but
/// the per-thread program keeps a running max instead of compositing.
class MipMapper final : public mr::Mapper {
 public:
  MipMapper(const volren::Volume& volume, volren::FrameSetup frame)
      : volume_(&volume), frame_(std::move(frame)) {}

  mr::MapOutcome map(gpusim::Device& device, const mr::Chunk& chunk,
                     mr::KvBuffer& out) override {
    const auto& brick_chunk = dynamic_cast<const volren::BrickChunk&>(chunk);
    const volren::BrickInfo& brick = brick_chunk.info();
    const volren::Camera& camera = frame_.camera;

    const volren::PixelRect rect = camera.project_box(brick.world_box);
    if (rect.empty()) return {};

    Int3 stored;
    const std::vector<float> voxels =
        volume_->materialize(brick.padded_origin, brick.padded_dims, 1, &stored);
    gpusim::Texture3D texture(device, stored, brick.device_bytes());
    texture.upload(voxels);

    const Int3 block{16, 16, 1};
    const Int3 grid{ceil_div(rect.width(), 16), ceil_div(rect.height(), 16), 1};
    const std::int64_t row = static_cast<std::int64_t>(grid.x) * 16;
    const std::int64_t threads = row * grid.y * 16;
    std::vector<std::uint32_t> keys(static_cast<size_t>(threads), mr::kPlaceholderKey);
    std::vector<MipValue> values(static_cast<size_t>(threads));

    const Aabb volume_box = volume_->world_box();
    const Vec3 dims_f = to_vec3(volume_->dims());
    const Vec3 extent = volume_->world_extent();
    const float dt = frame_.cast.step_size(*volume_);
    const Vec3 origin_f = to_vec3(brick.padded_origin);
    std::atomic<std::uint64_t> samples{0};

    device.launch_2d(grid, block, [&](const gpusim::ThreadCtx& ctx) {
      const int px = rect.x0 + ctx.global_x();
      const int py = rect.y0 + ctx.global_y();
      const size_t slot = static_cast<size_t>(ctx.global_y()) * row + ctx.global_x();
      if (px >= rect.x1 || py >= rect.y1) return;
      const Ray ray = camera.pixel_ray(px, py);
      float v0, v1, te, tx;
      if (!volume_box.intersect(ray, 0.0f, std::numeric_limits<float>::max(), &v0, &v1))
        return;
      if (!brick.world_box.intersect(ray, v0, v1, &te, &tx)) return;

      float best = 0.0f;
      float best_t = te;
      std::uint64_t n = 0;
      for (float t = te + 0.5f * dt; t < tx; t += dt, ++n) {
        const Vec3 gv = (ray.at(t) / extent) * dims_f;
        const float s = texture.sample(gv - origin_f);
        if (s > best) {
          best = s;
          best_t = t;
        }
      }
      samples.fetch_add(n, std::memory_order_relaxed);
      if (best > 0.0f) {
        keys[slot] = static_cast<std::uint32_t>(py) * camera.width() + px;
        values[slot] = MipValue{best, best_t};
      }
    });

    out.append_bulk(keys, values.data());
    return {samples.load(), static_cast<std::uint64_t>(threads)};
  }

 private:
  const volren::Volume* volume_;
  volren::FrameSetup frame_;
};

/// Custom reducer: max over the per-brick maxima — order-independent,
/// so no depth sort is needed at all.
class MaxReducer final : public mr::Reducer {
 public:
  explicit MaxReducer(std::vector<volren::FinishedPixel>* out) : out_(out) {}
  void reduce(std::uint32_t key, const std::byte* values, std::size_t count) override {
    float best = 0.0f;
    for (std::size_t i = 0; i < count; ++i) {
      MipValue v;
      std::memcpy(&v, values + i * sizeof(MipValue), sizeof(v));
      best = std::max(best, v.intensity);
    }
    out_->push_back({key, Vec3{best, best, best}});
  }

 private:
  std::vector<volren::FinishedPixel>* out_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "mip.ppm";

  const volren::Volume volume = volren::datasets::supernova({96, 96, 96});
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(4));

  volren::RenderOptions options;
  options.image_width = 384;
  options.image_height = 384;
  const volren::FrameSetup frame = volren::make_frame(volume, options);

  mr::JobConfig config;
  config.value_size = sizeof(MipValue);
  config.domain.num_keys = 384 * 384;
  config.domain.image_width = 384;

  mr::Job job(cluster, config);
  job.set_mapper_factory([&](int, gpusim::Device&) {
    return std::make_unique<MipMapper>(volume, frame);
  });
  std::vector<std::vector<volren::FinishedPixel>> pieces(
      static_cast<size_t>(cluster.total_gpus()));
  job.set_reducer_factory([&](int r) {
    return std::make_unique<MaxReducer>(&pieces[static_cast<size_t>(r)]);
  });

  const volren::BrickLayout layout(volume.dims(), volume.world_extent(),
                                   volren::BrickLayout::choose_brick_size(volume.dims(), 4),
                                   1);
  for (const volren::BrickInfo& info : layout.bricks()) {
    job.add_chunk(std::make_unique<volren::BrickChunk>(volume, info));
  }

  const mr::JobStats stats = job.run();
  const volren::Image image = volren::stitch_image(384, 384, Vec3{0, 0, 0}, pieces);
  image.write_ppm(out_path);

  std::cout << "MIP render of " << volume.name() << " via the same MapReduce pipeline\n"
            << "  frame time: " << format_seconds(stats.runtime_s) << "\n"
            << "  fragments:  " << stats.fragments << "\n"
            << "  only the Mapper and Reducer were swapped — partition and\n"
            << "  sort stages are the stock library code (paper §6.1).\n"
            << "image written to " << out_path << "\n";
  return 0;
}
