// Fabric under injected faults: the delivery and ordering contract the
// failover layer leans on.
//
//   - send() is an unreliable datagram: a dropped message still
//     serializes on its ports but on_delivered never fires.
//   - send_reliable() retransmits (ack timeout, exponential backoff)
//     until delivery, then fires exactly once.
//   - Ordering: between a fixed (src, dst) pair, fault-FREE messages
//     deliver FIFO (serial tx/rx ports). Retransmission can reorder a
//     reliable message behind later traffic — asserted here so the
//     documented caveat stays true.
//   - FabricDelay-style extra latency shifts delivery without loss.

#include <gtest/gtest.h>

#include <vector>

#include "net/fabric.hpp"
#include "sim/engine.hpp"

namespace vrmr::net {
namespace {

FabricModel simple_model() {
  FabricModel m;
  m.latency_s = 1e-3;     // 1 ms wire
  m.bandwidth_Bps = 1e6;  // 1 MB/s => 1 B = 1 us
  m.intra_node_bandwidth_Bps = 1e7;
  m.intra_node_latency_s = 1e-4;
  m.per_message_overhead_s = 0.0;
  m.retransmit_timeout_s = 0.5;
  return m;
}

/// Drops the messages whose fabric-wide ordinal is listed.
FaultInjector drop_ordinals(std::vector<std::uint64_t> ordinals) {
  return [ordinals = std::move(ordinals)](int, int, std::uint64_t,
                                          std::uint64_t seq) {
    FaultDecision d;
    for (const std::uint64_t target : ordinals) d.drop = d.drop || seq == target;
    return d;
  };
}

TEST(FabricFaults, DroppedDatagramNeverDelivers) {
  sim::Engine e;
  Fabric fabric(e, simple_model(), 2);
  fabric.set_fault_injector(drop_ordinals({0}));
  bool delivered = false;
  e.schedule_at(0.0, [&] { fabric.send(0, 1, 1000, [&] { delivered = true; }); });
  e.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(fabric.drops(), 1u);
  EXPECT_EQ(fabric.retransmits(), 0u);
  // The wire did the work: the sender's port was still occupied.
  EXPECT_GT(fabric.tx(0).busy_time(), 0.0);
}

TEST(FabricFaults, ReliableSendRetransmitsUntilDelivered) {
  sim::Engine e;
  Fabric fabric(e, simple_model(), 2);
  // First two attempts (ordinals 0 and 1) drop; the third lands.
  fabric.set_fault_injector(drop_ordinals({0, 1}));
  double delivered_at = -1.0;
  int deliveries = 0;
  e.schedule_at(0.0, [&] {
    fabric.send_reliable(0, 1, 1000, [&] {
      delivered_at = e.now();
      ++deliveries;
    });
  });
  e.run();
  EXPECT_EQ(deliveries, 1);  // exactly once, despite three attempts
  EXPECT_EQ(fabric.drops(), 2u);
  EXPECT_EQ(fabric.retransmits(), 2u);
  // Later than the fault-free ideal: the ack timeouts are in the path.
  EXPECT_GT(delivered_at, fabric.ideal_transfer_time(0, 1, 1000));
}

TEST(FabricFaults, FaultFreeReliableMatchesDatagramTiming) {
  sim::Engine e;
  Fabric fabric(e, simple_model(), 2);
  double reliable_at = -1.0;
  sim::Engine e2;
  Fabric plain(e2, simple_model(), 2);
  double datagram_at = -1.0;
  e.schedule_at(0.0,
                [&] { fabric.send_reliable(0, 1, 5000, [&] { reliable_at = e.now(); }); });
  e2.schedule_at(0.0,
                 [&] { plain.send(0, 1, 5000, [&] { datagram_at = e2.now(); }); });
  e.run();
  e2.run();
  EXPECT_DOUBLE_EQ(reliable_at, datagram_at);
  EXPECT_EQ(fabric.retransmits(), 0u);
}

TEST(FabricFaults, FaultFreePairDeliversFifo) {
  // The ordering guarantee hydration relies on: without faults, the
  // serial tx/rx ports deliver a (src, dst) pair's messages in send
  // order.
  sim::Engine e;
  Fabric fabric(e, simple_model(), 2);
  std::vector<int> order;
  e.schedule_at(0.0, [&] {
    for (int i = 0; i < 4; ++i)
      fabric.send_reliable(0, 1, 1000 * (4 - i),  // big first
                           [&order, i] { order.push_back(i); });
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(FabricFaults, RetransmissionReordersBehindLaterTraffic) {
  // The documented caveat: a dropped reliable message can land AFTER a
  // later message of the same pair — per-pair FIFO holds only
  // fault-free. Consumers that need order across loss must sequence at
  // a higher layer (failover floors re-issued arrivals instead).
  sim::Engine e;
  Fabric fabric(e, simple_model(), 2);
  fabric.set_fault_injector(drop_ordinals({0}));
  std::vector<int> order;
  e.schedule_at(0.0, [&] {
    fabric.send_reliable(0, 1, 1000, [&] { order.push_back(0); });  // dropped once
    fabric.send_reliable(0, 1, 1000, [&] { order.push_back(1); });
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(FabricFaults, ExtraDelayShiftsDeliveryWithoutLoss) {
  sim::Engine e;
  Fabric fabric(e, simple_model(), 2);
  const double kExtra = 0.75;
  fabric.set_fault_injector([kExtra](int, int, std::uint64_t, std::uint64_t seq) {
    FaultDecision d;
    if (seq == 0) d.extra_delay_s = kExtra;
    return d;
  });
  double delivered_at = -1.0;
  e.schedule_at(0.0,
                [&] { fabric.send(0, 1, 1000, [&] { delivered_at = e.now(); }); });
  e.run();
  EXPECT_NEAR(delivered_at, fabric.ideal_transfer_time(0, 1, 1000) + kExtra, 1e-12);
  EXPECT_EQ(fabric.drops(), 0u);
}

TEST(FabricFaults, InjectorSeesFabricWideOrdinals) {
  sim::Engine e;
  Fabric fabric(e, simple_model(), 3);
  std::vector<std::uint64_t> seen;
  fabric.set_fault_injector([&seen](int, int, std::uint64_t, std::uint64_t seq) {
    seen.push_back(seq);
    return FaultDecision{};
  });
  e.schedule_at(0.0, [&] {
    fabric.send(0, 1, 10, nullptr);
    fabric.send(1, 2, 10, nullptr);
    fabric.send(2, 0, 10, nullptr);
  });
  e.run();
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2}));
}

}  // namespace
}  // namespace vrmr::net
