#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "sim/engine.hpp"

namespace vrmr::net {
namespace {

FabricModel simple_model() {
  FabricModel m;
  m.latency_s = 1e-3;                  // 1 ms wire
  m.bandwidth_Bps = 1e6;               // 1 MB/s => 1 B = 1 us
  m.intra_node_bandwidth_Bps = 1e7;
  m.intra_node_latency_s = 1e-4;
  m.per_message_overhead_s = 0.0;
  return m;
}

TEST(Fabric, PointToPointTiming) {
  sim::Engine e;
  Fabric fabric(e, simple_model(), 2);
  double delivered_at = -1.0;
  e.schedule_at(0.0, [&] {
    fabric.send(0, 1, 1000000, [&] { delivered_at = e.now(); });
  });
  e.run();
  // 1 MB at 1 MB/s = 1 s serialization + 1 ms latency.
  EXPECT_NEAR(delivered_at, 1.001, 1e-9);
}

TEST(Fabric, SenderPortSerializesMessages) {
  sim::Engine e;
  Fabric fabric(e, simple_model(), 3);
  std::vector<double> deliveries;
  e.schedule_at(0.0, [&] {
    fabric.send(0, 1, 1000000, [&] { deliveries.push_back(e.now()); });
    fabric.send(0, 2, 1000000, [&] { deliveries.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(deliveries.size(), 2u);
  // Second message waits for the sender's tx port.
  EXPECT_NEAR(deliveries[0], 1.001, 1e-9);
  EXPECT_NEAR(deliveries[1], 2.001, 1e-9);
}

TEST(Fabric, ReceiverPortSerializesIncast) {
  sim::Engine e;
  Fabric fabric(e, simple_model(), 3);
  std::vector<double> deliveries;
  e.schedule_at(0.0, [&] {
    fabric.send(0, 2, 1000000, [&] { deliveries.push_back(e.now()); });
    fabric.send(1, 2, 1000000, [&] { deliveries.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(deliveries.size(), 2u);
  // Different senders, same receiver: rx port is the bottleneck.
  EXPECT_NEAR(deliveries[0], 1.001, 1e-9);
  EXPECT_NEAR(deliveries[1], 2.001, 1e-9);
}

TEST(Fabric, DisjointPairsProceedInParallel) {
  sim::Engine e;
  Fabric fabric(e, simple_model(), 4);
  std::vector<double> deliveries;
  e.schedule_at(0.0, [&] {
    fabric.send(0, 1, 1000000, [&] { deliveries.push_back(e.now()); });
    fabric.send(2, 3, 1000000, [&] { deliveries.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_NEAR(deliveries[0], 1.001, 1e-9);
  EXPECT_NEAR(deliveries[1], 1.001, 1e-9);  // no shared port => no queueing
}

TEST(Fabric, IntraNodeBypassesNic) {
  sim::Engine e;
  Fabric fabric(e, simple_model(), 2);
  double delivered_at = -1.0;
  e.schedule_at(0.0, [&] {
    fabric.send(0, 0, 1000000, [&] { delivered_at = e.now(); });
  });
  e.run();
  // 1 MB at 10 MB/s = 0.1 s + 0.1 ms latency; NIC untouched.
  EXPECT_NEAR(delivered_at, 0.1001, 1e-9);
  EXPECT_EQ(fabric.tx(0).busy_time(), 0.0);
  EXPECT_EQ(fabric.inter_node_bytes(), 0u);
  EXPECT_EQ(fabric.total_bytes(), 1000000u);
}

TEST(Fabric, PerMessageOverheadCharged) {
  sim::Engine e;
  FabricModel m = simple_model();
  m.per_message_overhead_s = 0.5;
  Fabric fabric(e, m, 2);
  double delivered_at = -1.0;
  e.schedule_at(0.0, [&] { fabric.send(0, 1, 1000000, [&] { delivered_at = e.now(); }); });
  e.run();
  EXPECT_NEAR(delivered_at, 1.501, 1e-9);
}

TEST(Fabric, IntraNodeSendsSkipPerMessageOverhead) {
  // per_message_overhead_s models the NIC's per-message fixed cost
  // (interrupt, doorbell, descriptor). An intra-node copy never
  // touches the NIC, so a nonzero overhead must not change its timing
  // — same 0.1001 s as with overhead zero (IntraNodeBypassesNic).
  sim::Engine e;
  FabricModel m = simple_model();
  m.per_message_overhead_s = 0.5;
  Fabric fabric(e, m, 2);
  double delivered_at = -1.0;
  e.schedule_at(0.0, [&] {
    fabric.send(0, 0, 1000000, [&] { delivered_at = e.now(); });
  });
  e.run();
  EXPECT_NEAR(delivered_at, 0.1001, 1e-9);
}

TEST(Fabric, CountsBytesAndMessages) {
  sim::Engine e;
  Fabric fabric(e, simple_model(), 3);
  e.schedule_at(0.0, [&] {
    fabric.send(0, 1, 100, nullptr);
    fabric.send(1, 2, 200, nullptr);
    fabric.send(2, 2, 300, nullptr);  // intra-node
  });
  e.run();
  EXPECT_EQ(fabric.total_bytes(), 600u);
  EXPECT_EQ(fabric.inter_node_bytes(), 300u);
  EXPECT_EQ(fabric.messages(), 3u);
  fabric.reset_accounting();
  EXPECT_EQ(fabric.total_bytes(), 0u);
  EXPECT_EQ(fabric.messages(), 0u);
}

TEST(Fabric, IdealTransferTimeMatchesUncontendedSend) {
  sim::Engine e;
  Fabric fabric(e, simple_model(), 2);
  double delivered_at = -1.0;
  e.schedule_at(0.0, [&] { fabric.send(0, 1, 12345, [&] { delivered_at = e.now(); }); });
  e.run();
  EXPECT_NEAR(delivered_at, fabric.ideal_transfer_time(0, 1, 12345), 1e-12);
  EXPECT_LT(fabric.ideal_transfer_time(0, 0, 12345),
            fabric.ideal_transfer_time(0, 1, 12345));
}

TEST(Fabric, RejectsBadNodeIds) {
  sim::Engine e;
  Fabric fabric(e, simple_model(), 2);
  EXPECT_THROW(fabric.send(0, 5, 10, nullptr), vrmr::CheckError);
  EXPECT_THROW(fabric.send(-1, 0, 10, nullptr), vrmr::CheckError);
}

}  // namespace
}  // namespace vrmr::net
