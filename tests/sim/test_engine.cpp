#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "util/check.hpp"

namespace vrmr::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0.0);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, ProcessesEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 3.0);
}

TEST(Engine, EqualTimesFireInSchedulingOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine e;
  double fired_at = -1.0;
  e.schedule_at(5.0, [&] {
    e.schedule_after(2.5, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_EQ(fired_at, 7.5);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) e.schedule_after(1.0, chain);
  };
  e.schedule_at(0.0, chain);
  e.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(e.now(), 99.0);
  EXPECT_EQ(e.events_processed(), 100u);
}

TEST(Engine, RejectsSchedulingInThePast) {
  Engine e;
  e.schedule_at(10.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(5.0, [] {}), vrmr::CheckError);
}

TEST(Engine, RejectsNullCallback) {
  Engine e;
  EXPECT_THROW(e.schedule_at(1.0, nullptr), vrmr::CheckError);
}

TEST(Engine, StepProcessesExactlyOneEvent) {
  Engine e;
  int count = 0;
  e.schedule_at(1.0, [&] { ++count; });
  e.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 1);
  EXPECT_EQ(e.now(), 1.0);
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(Engine, ResetClearsClockAndQueue) {
  Engine e;
  e.schedule_at(1.0, [] {});
  e.run();
  e.schedule_at(9.0, [] { FAIL() << "must not fire after reset"; });
  e.reset();
  EXPECT_EQ(e.now(), 0.0);
  EXPECT_TRUE(e.empty());
  e.run();
  EXPECT_EQ(e.events_processed(), 0u);
}

TEST(Join, FiresExactlyAtZero) {
  int fired = 0;
  Join join(3, [&] { ++fired; });
  join.arrive();
  join.arrive();
  EXPECT_EQ(fired, 0);
  join.arrive();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(join.remaining(), 0);
}

TEST(Join, ZeroCountFiresImmediately) {
  int fired = 0;
  Join join(0, [&] { ++fired; });
  EXPECT_EQ(fired, 1);
}

TEST(Join, OverArrivalThrows) {
  Join join(1, [] {});
  join.arrive();
  EXPECT_THROW(join.arrive(), vrmr::CheckError);
}

}  // namespace
}  // namespace vrmr::sim
