#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace vrmr::sim {
namespace {

TEST(Resource, SerializesOverlappingAcquires) {
  Engine e;
  Resource r(e, "disk");
  std::vector<std::pair<double, double>> intervals;
  auto record = [&](SimTime s, SimTime t) { intervals.emplace_back(s, t); };
  e.schedule_at(0.0, [&] {
    r.acquire(2.0, record);
    r.acquire(3.0, record);  // queued behind the first
  });
  e.run();
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0], std::make_pair(0.0, 2.0));
  EXPECT_EQ(intervals[1], std::make_pair(2.0, 5.0));
  EXPECT_EQ(e.now(), 5.0);
}

TEST(Resource, IdleGapsDoNotAccumulateBusy) {
  Engine e;
  Resource r(e, "gpu");
  e.schedule_at(0.0, [&] { r.acquire(1.0, nullptr); });
  e.schedule_at(10.0, [&] { r.acquire(1.0, nullptr); });
  e.run();
  EXPECT_EQ(r.busy_time(), 2.0);
  EXPECT_EQ(r.jobs(), 2u);
  // Second job occupies [10, 11): 2 busy seconds over an 11 s horizon.
  EXPECT_NEAR(r.utilization(11.0), 2.0 / 11.0, 1e-12);
}

TEST(Resource, WaitAccounting) {
  Engine e;
  Resource r(e, "nic");
  e.schedule_at(0.0, [&] {
    r.acquire(4.0, nullptr);
    r.acquire(1.0, nullptr);  // waits 4
  });
  e.run();
  EXPECT_EQ(r.total_wait(), 4.0);
  EXPECT_EQ(r.wait_stats().max(), 4.0);
  EXPECT_EQ(r.wait_stats().count(), 2u);
}

TEST(Resource, ZeroDurationCompletesAtNow) {
  Engine e;
  Resource r(e, "x");
  double completed = -1.0;
  e.schedule_at(2.0, [&] { r.acquire(0.0, [&](SimTime, SimTime t) { completed = t; }); });
  e.run();
  EXPECT_EQ(completed, 2.0);
}

TEST(Resource, NegativeDurationThrows) {
  Engine e;
  Resource r(e, "x");
  e.schedule_at(0.0, [&] { EXPECT_THROW(r.acquire(-1.0, nullptr), vrmr::CheckError); });
  e.run();
}

TEST(Resource, AcquireMultiStartsWhenAllFree) {
  Engine e;
  Resource a(e, "pcie");
  Resource b(e, "gpu");
  std::vector<std::pair<double, double>> got;
  e.schedule_at(0.0, [&] {
    a.acquire(5.0, nullptr);  // pcie busy until 5
    b.acquire(2.0, nullptr);  // gpu busy until 2
    const std::array<Resource*, 2> both = {&a, &b};
    Resource::acquire_multi(both, 1.0,
                            [&](SimTime s, SimTime t) { got.emplace_back(s, t); });
  });
  e.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], std::make_pair(5.0, 6.0));  // waits for the later of the two
  EXPECT_EQ(a.free_at(), 6.0);
  EXPECT_EQ(b.free_at(), 6.0);
}

TEST(Resource, AcquireMultiChargesBothResources) {
  Engine e;
  Resource a(e, "a");
  Resource b(e, "b");
  e.schedule_at(0.0, [&] {
    const std::array<Resource*, 2> both = {&a, &b};
    Resource::acquire_multi(both, 3.0, nullptr);
  });
  e.run();
  EXPECT_EQ(a.busy_time(), 3.0);
  EXPECT_EQ(b.busy_time(), 3.0);
  EXPECT_EQ(a.jobs(), 1u);
  EXPECT_EQ(b.jobs(), 1u);
}

TEST(Resource, ResetAccountingKeepsSchedule) {
  Engine e;
  Resource r(e, "x");
  e.schedule_at(0.0, [&] { r.acquire(2.0, nullptr); });
  e.run();
  r.reset_accounting();
  EXPECT_EQ(r.busy_time(), 0.0);
  EXPECT_EQ(r.jobs(), 0u);
  EXPECT_EQ(r.free_at(), 2.0);  // schedule preserved
}

TEST(ResourcePool, UsesLeastLoadedServer) {
  Engine e;
  ResourcePool pool(e, "cpu", 2);
  std::vector<std::pair<double, double>> got;
  auto record = [&](SimTime s, SimTime t) { got.emplace_back(s, t); };
  e.schedule_at(0.0, [&] {
    pool.acquire(4.0, record);  // server 0: [0,4)
    pool.acquire(1.0, record);  // server 1: [0,1)
    pool.acquire(1.0, record);  // server 1 again: [1,2)
  });
  e.run();
  // Completions arrive in simulated-time order.
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], std::make_pair(0.0, 1.0));  // server 1, first short job
  EXPECT_EQ(got[1], std::make_pair(1.0, 2.0));  // server 1, second short job
  EXPECT_EQ(got[2], std::make_pair(0.0, 4.0));  // server 0, long job
  EXPECT_EQ(pool.busy_time(), 6.0);
  EXPECT_EQ(pool.jobs(), 3u);
}

TEST(ResourcePool, SaturationQueues) {
  Engine e;
  ResourcePool pool(e, "cpu", 2);
  double last_end = 0.0;
  e.schedule_at(0.0, [&] {
    for (int i = 0; i < 6; ++i) {
      pool.acquire(1.0, [&](SimTime, SimTime t) { last_end = std::max(last_end, t); });
    }
  });
  e.run();
  // 6 unit jobs on 2 servers => makespan 3.
  EXPECT_EQ(last_end, 3.0);
}

TEST(ResourcePool, RejectsZeroServers) {
  Engine e;
  EXPECT_THROW(ResourcePool(e, "bad", 0), vrmr::CheckError);
}

}  // namespace
}  // namespace vrmr::sim
